# Convenience targets; plain pytest/python work equally well.

.PHONY: install test bench examples experiments clean

install:
	pip install -e . --no-build-isolation || python setup.py develop

test:
	pytest tests/

bench:
	pytest benchmarks/ --benchmark-only

examples:
	for f in examples/*.py; do echo "== $$f"; python $$f > /dev/null || exit 1; done

experiments:
	python -m repro.experiments all -o benchmarks/out --json

clean:
	rm -rf build dist *.egg-info src/*.egg-info .pytest_benchmarks .benchmarks
	find . -name __pycache__ -type d -exec rm -rf {} +
