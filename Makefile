# Convenience targets; plain pytest/python work equally well.

.PHONY: install test bench examples experiments docs-check clean

install:
	pip install -e . --no-build-isolation || python setup.py develop

test:
	PYTHONPATH=src python -m pytest -x -q

bench:
	PYTHONPATH=src pytest benchmarks/ --benchmark-only

examples:
	for f in examples/*.py; do echo "== $$f"; PYTHONPATH=src python $$f > /dev/null || exit 1; done

experiments:
	PYTHONPATH=src python -m repro.experiments all --jobs auto -o benchmarks/out --json

docs-check:
	PYTHONPATH=src python tools/check_doc_snippets.py docs/TUTORIAL.md docs/PERFORMANCE.md

clean:
	rm -rf build dist *.egg-info src/*.egg-info .pytest_benchmarks .benchmarks benchmarks/.benchmarks
	find . -name __pycache__ -type d -exec rm -rf {} +
