# Convenience targets; plain pytest/python work equally well.

.PHONY: install test bench bench-service bench-cluster bench-telemetry bench-replay bench-tuner bench-native bench-conflict-free bench-report examples experiments serve serve-cluster cluster-smoke telemetry-smoke tune-demo docs-check clean

install:
	pip install -e . --no-build-isolation || python setup.py develop

test:
	PYTHONPATH=src python -m pytest -x -q

bench:
	PYTHONPATH=src pytest benchmarks/ --benchmark-only

bench-service:
	PYTHONPATH=src python -m repro.service bench --out benchmarks/out/service.txt

bench-cluster:
	PYTHONPATH=src pytest benchmarks/bench_cluster.py -q

bench-telemetry:
	PYTHONPATH=src pytest benchmarks/bench_telemetry.py -q

bench-replay:
	PYTHONPATH=src pytest benchmarks/bench_trace_replay.py -q

bench-tuner:
	PYTHONPATH=src pytest benchmarks/bench_tuner.py -q

bench-native:
	PYTHONPATH=src pytest benchmarks/bench_native.py -q

bench-conflict-free:
	PYTHONPATH=src pytest benchmarks/bench_conflict_free.py -q

bench-report:
	python tools/bench_report.py

examples:
	for f in examples/*.py; do echo "== $$f"; PYTHONPATH=src python $$f > /dev/null || exit 1; done

experiments:
	PYTHONPATH=src python -m repro.experiments all --jobs auto -o benchmarks/out --json

serve:
	PYTHONPATH=src python -m repro.service serve

serve-cluster:
	PYTHONPATH=src python -m repro.cluster serve

cluster-smoke:
	PYTHONPATH=src python tools/cluster_smoke.py

telemetry-smoke:
	PYTHONPATH=src python tools/telemetry_smoke.py

tune-demo:
	PYTHONPATH=src python -m repro.tuner transpose
	PYTHONPATH=src python -m repro.tuner sum
	PYTHONPATH=src python -m repro.tuner sort
	PYTHONPATH=src python -m repro.tuner permutation
	PYTHONPATH=src python -m repro.tuner gather

docs-check:
	PYTHONPATH=src python tools/check_doc_snippets.py docs/TUTORIAL.md docs/PERFORMANCE.md docs/SERVICE.md docs/INTERNALS.md docs/TUNER.md docs/STORAGE.md docs/CLUSTER.md docs/TELEMETRY.md

clean:
	rm -rf build dist *.egg-info src/*.egg-info .pytest_benchmarks .benchmarks benchmarks/.benchmarks benchmarks/.store
	# Pre-unification cache dirs: keep removing them for one release.
	rm -rf benchmarks/.sweep_cache benchmarks/.trace_store benchmarks/.tune_cache
	find . -name __pycache__ -type d -exec rm -rf {} +
