"""Legacy setup shim.

The execution environment has no `wheel` package, so PEP 660 editable
installs (`pip install -e .` with build isolation) are unavailable; this
shim enables `pip install -e . --no-use-pep517 --no-build-isolation`.
All metadata lives in pyproject.toml.
"""
from setuptools import setup

setup()
