"""The (p, l) cost landscape of the HMM sum.

Not a numbered paper artifact, but the picture Section VII paints in
prose: the latency-bound valley (small p, large l), the bandwidth floor
(large p), and the p ~ lw ridge between them.  Rendered as a text
heatmap next to the Table I predictions for the same grid.
"""

import numpy as np

from repro import HMM, HMMParams
from repro.analysis.costmodel import sum_time
from repro.analysis.terms import Params
from repro.viz import render_heatmap

from _util import emit, once

P_VALUES = [64, 128, 256, 512, 1024, 2048, 4096]
L_VALUES = [8, 32, 128, 512]


def test_landscape_hmm_sum(benchmark, rng):
    def run():
        n, w, d = 1 << 13, 16, 8
        vals = rng.normal(size=n)
        measured = np.zeros((len(L_VALUES), len(P_VALUES)))
        predicted = np.zeros_like(measured)
        for i, l in enumerate(L_VALUES):
            for j, p in enumerate(P_VALUES):
                machine = HMM(HMMParams(num_dmms=d, width=w, global_latency=l))
                measured[i, j] = machine.sum(vals, p)[1].cycles
                predicted[i, j] = sum_time(
                    "hmm", Params(n=n, p=p, w=w, l=l, d=d)
                )
        return measured, predicted

    measured, predicted = once(benchmark, run)
    chart = render_heatmap(
        L_VALUES, P_VALUES, measured,
        title="HMM sum time units, n=8192 w=16 d=8 (rows: l, cols: p)",
        row_label="latency l", col_label="threads p",
    )
    chart += "\n\n" + render_heatmap(
        L_VALUES, P_VALUES, predicted,
        title="Table I prediction (unit coefficients) on the same grid",
        row_label="latency l", col_label="threads p",
    )
    emit("landscape_hmm_sum", chart)

    # The landscape's shape: monotone in l at fixed p, monotone-ish in
    # p at fixed l, and the measured/predicted ratio stays in a tight
    # band across the entire grid.
    assert (np.diff(measured, axis=0) >= 0).all()  # more latency never helps
    ratio = measured / predicted
    assert ratio.max() / ratio.min() < 4.0
