"""Trace replay vs. event vs. batch on a Figure-4-style latency sweep.

The replay engine's reason to exist: a latency sweep re-prices the same
warp transaction trace at every point, so after one instrumented
capture, each remaining point is a cache hit — one vectorized slot
count (cached per policy) plus a lean integer pass over the compiled
op stream, with no thread-program re-execution.  This bench times the
same sweep under all three modes, asserts the cycle counts are
identical everywhere, and records the warm-replay speedup.

Artifacts:

* ``benchmarks/out/replay.txt`` — human-readable comparison table;
* ``BENCH_replay.json`` (repo root) — machine-readable record with the
  pass/fail criterion, a schema other benches can adopt.
"""

import json
import os
import pathlib
import platform
import time

import numpy as np
import pytest

from _util import emit, format_rows
from repro import HMM, UMM, HMMParams, MachineParams
from repro.machine.replay import default_store, reset_default_store


@pytest.fixture(autouse=True)
def _restore_store_env():
    """Leave the process-wide trace-store override as we found it."""
    saved = os.environ.get("REPRO_TRACE_STORE_DIR")
    yield
    if saved is None:
        os.environ.pop("REPRO_TRACE_STORE_DIR", None)
    else:
        os.environ["REPRO_TRACE_STORE_DIR"] = saved
    reset_default_store()

ROOT = pathlib.Path(__file__).resolve().parent.parent

#: Figure 4 sweeps latency at fixed width/workload; same shape, bigger:
#: w=4, 64 warps, 32 latency points.
WIDTH = 4
NUM_THREADS = 256
N = 4096
LATENCIES = tuple(range(2, 130, 4))

#: Acceptance threshold: warm replay must beat the batch engine by this
#: factor on the sweep.
MIN_SPEEDUP = 5.0

RNG = np.random.default_rng(20130520)
VALUES = RNG.standard_normal(N)


def _sweep(machine_for, mode):
    """Run the latency sweep once; return (seconds, cycles-per-point)."""
    t0 = time.perf_counter()
    cycles = [machine_for(l, mode).sum(VALUES, NUM_THREADS)[1].cycles
              for l in LATENCIES]
    return time.perf_counter() - t0, cycles


def _flat(l, mode):
    return UMM(MachineParams(width=WIDTH, latency=l), mode=mode)


def _hmm(l, mode):
    return HMM(HMMParams(num_dmms=8, width=WIDTH, global_latency=l),
               mode=mode)


def _isolated_store(tmpdir):
    os.environ["REPRO_TRACE_STORE_DIR"] = str(tmpdir)
    reset_default_store()


def _measure(tmp_path):
    """Both sweeps under all three modes; returns (rows, metrics)."""
    rows, metrics = [], {}
    for label, machine_for in (("umm_sum", _flat), ("hmm_sum", _hmm)):
        t_event, c_event = _sweep(machine_for, "event")
        t_batch, c_batch = _sweep(machine_for, "batch")
        _isolated_store(tmp_path / label)
        _sweep(machine_for, "replay")        # cold: one capture + hits
        t_warm, c_warm = _sweep(machine_for, "replay")  # warm: all hits
        store = default_store().stats()
        assert c_event == c_batch == c_warm, f"{label}: modes disagree"
        assert store.captures == 1, store.describe()
        assert store.hits >= 2 * len(LATENCIES) - 1, store.describe()
        rows.append({
            "workload": label,
            "points": len(LATENCIES),
            "event_ms": round(t_event * 1e3, 1),
            "batch_ms": round(t_batch * 1e3, 1),
            "replay_warm_ms": round(t_warm * 1e3, 1),
            "replay_vs_event": round(t_event / t_warm, 1),
            "replay_vs_batch": round(t_batch / t_warm, 1),
            "cycles_first_last": [c_event[0], c_event[-1]],
        })
    metrics["replay_vs_batch_speedup"] = min(
        r["replay_vs_batch"] for r in rows)
    metrics["replay_vs_event_speedup"] = min(
        r["replay_vs_event"] for r in rows)
    metrics["equivalence"] = True  # asserted above, per point
    return rows, metrics


def test_replay_sweep_speedup(tmp_path):
    """Warm replay beats the batch engine ≥ 5x at identical cycles."""
    rows, metrics = _measure(tmp_path)

    emit("replay", format_rows(
        ["workload", "points", "event ms", "batch ms", "replay ms",
         "vs event", "vs batch"],
        [(r["workload"], r["points"], r["event_ms"], r["batch_ms"],
          r["replay_warm_ms"], f"{r['replay_vs_event']}x",
          f"{r['replay_vs_batch']}x") for r in rows],
    ))

    record = {
        "bench": "trace_replay",
        "schema_version": 1,
        "host": {
            "python": platform.python_version(),
            "numpy": np.__version__,
            "machine": platform.machine(),
        },
        "config": {
            "width": WIDTH,
            "num_threads": NUM_THREADS,
            "n": N,
            "latency_points": len(LATENCIES),
            "latency_range": [LATENCIES[0], LATENCIES[-1]],
        },
        "rows": rows,
        "metrics": metrics,
        "criteria": {
            "min_replay_vs_batch_speedup": MIN_SPEEDUP,
            "pass": metrics["replay_vs_batch_speedup"] >= MIN_SPEEDUP,
        },
    }
    (ROOT / "BENCH_replay.json").write_text(
        json.dumps(record, indent=2, sort_keys=True) + "\n")

    assert record["criteria"]["pass"], (
        f"warm replay only {metrics['replay_vs_batch_speedup']}x over batch "
        f"(need {MIN_SPEEDUP}x)")


def test_speed_replay_warm_point(benchmark, tmp_path):
    """pytest-benchmark row: one warm replay re-costing of the sweep shape."""
    _isolated_store(tmp_path)
    _flat(2, "replay").sum(VALUES, NUM_THREADS)  # capture once

    def run():
        return _flat(77, "replay").sum(VALUES, NUM_THREADS)[1]

    report = benchmark(run)
    assert report.engine == "replay"
