"""The cost service under load — micro-batched vs unbatched serving.

Drives the full closed-loop comparison from
:mod:`repro.service.loadgen`: many concurrent clients replay a
Zipf-skewed Table I workload against a live server, four ways:

* **unbatched** — batch size 1, coalescing off: a naive server, one
  oracle evaluation per request, strictly in turn.
* **batched** — the dynamic micro-batcher (window + coalescing), cache
  off: the acceptance row — identical requests inside and across
  batching windows share one evaluation, so served throughput scales
  with the *unique*-spec rate.
* **batched+cache cold / warm** — the persistent result cache layered
  on top, first from empty and then fully warm.

The emitted table records throughput, latency quantiles, evaluations
performed, batch shapes, coalescing counts, rejections, and cache hit
rate.  EXPERIMENTS.md's acceptance criterion: the batched row sustains
at least 5x the unbatched row's throughput (both cache-off).
"""

import shutil
import tempfile
from pathlib import Path

from repro.service.loadgen import render_comparison, run_comparison

from _util import emit, once, write_bench_json

DURATION_S = 10.0
CLIENTS = 128
BATCH_SIZE = 128
ZIPF_S = 2.5


def test_service_throughput(benchmark):
    tmp = Path(tempfile.mkdtemp(prefix="bench-service-"))
    try:
        rows = once(
            benchmark,
            run_comparison,
            duration=DURATION_S,
            clients=CLIENTS,
            batch_size=BATCH_SIZE,
            zipf_s=ZIPF_S,
            cache_dir=tmp / "cache",
        )
    finally:
        shutil.rmtree(tmp, ignore_errors=True)

    by_name = {r["name"]: r for r in rows}
    header = (
        f"cost service, closed loop: {CLIENTS} clients, "
        f"{DURATION_S:g}s per config, zipf s={ZIPF_S}, "
        f"batch window <= {BATCH_SIZE}\n"
    )
    emit("service", header + "\n" + render_comparison(rows))

    base = by_name["unbatched"]
    batched = by_name["batched"]
    assert base["requests"] > 0 and batched["requests"] > 0
    # The tentpole claim: micro-batching (window + coalescing) wins >= 5x
    # on hot-spot traffic with the cache off in both configurations.
    assert batched["rps"] >= 5.0 * base["rps"], (batched["rps"], base["rps"])
    # The cache only ever helps on top.
    assert by_name["batched+cache warm"]["rps"] >= batched["rps"]
    # The naive config really did one evaluation per request.
    assert base["evaluations"] == base["requests"]

    speedup = batched["rps"] / base["rps"]
    write_bench_json(
        "service",
        config={
            "duration_s": DURATION_S,
            "clients": CLIENTS,
            "batch_size": BATCH_SIZE,
            "zipf_s": ZIPF_S,
        },
        rows=rows,
        metrics={
            "unbatched_rps": round(base["rps"], 1),
            "batched_rps": round(batched["rps"], 1),
            "batched_vs_unbatched": round(speedup, 2),
            "warm_cache_rps": round(by_name["batched+cache warm"]["rps"], 1),
        },
        criteria={
            "min_batched_vs_unbatched": 5.0,
            "pass": bool(speedup >= 5.0),
        },
    )
