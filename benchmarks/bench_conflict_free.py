"""Conflict-free kernel suite: replay pricing and naive-vs-cf cycles.

Two claims from the PR-9 suite, measured:

1. **Replay leverage** — the conflict-free sort is replay-eligible, so
   a latency sweep re-prices one captured trace: after the capture,
   every point is a store hit.  Warm replay must beat the event engine
   ≥ 5x over a ≥ 12-point sweep at bit-identical cycles, under both
   the Python and the native re-pricing backend.
2. **Conflict removal** — against the naive bitonic network the
   unfused conflict-free layout removes exactly the avoidable excess
   slots (transaction parity) and the fused burst variant removes
   transactions too; the offline permutation beats the naive round
   schedule on the bank-adversarial transpose target.

Artifacts:

* ``benchmarks/out/conflict_free.txt`` — human-readable tables;
* ``BENCH_conflict_free.json`` (repo root) — machine-readable record
  with the pass/fail criteria (same schema as ``BENCH_replay.json``).
"""

import json
import os
import pathlib
import platform
import time

import numpy as np
import pytest

from _util import emit, format_rows
from repro import MachineParams
from repro.machine.engine import MachineEngine
from repro.machine.policy import DMMBankPolicy
from repro.machine.replay import default_store, reset_default_store
from repro.core.kernels.conflict_free import flat_cf_permutation, flat_cf_sort
from repro.core.kernels.sorting import flat_bitonic_sort


@pytest.fixture(autouse=True)
def _restore_store_env():
    """Leave the process-wide trace-store override as we found it."""
    saved = os.environ.get("REPRO_TRACE_STORE_DIR")
    yield
    if saved is None:
        os.environ.pop("REPRO_TRACE_STORE_DIR", None)
    else:
        os.environ["REPRO_TRACE_STORE_DIR"] = saved
    reset_default_store()


ROOT = pathlib.Path(__file__).resolve().parent.parent

WIDTH = 8
N = 1024
NUM_THREADS = 128
#: 16 points — the acceptance criterion requires >= 12.
LATENCIES = tuple(range(2, 130, 8))

#: Warm replay must beat the event engine by this factor on the sweep.
MIN_SPEEDUP = 5.0

RNG = np.random.default_rng(20130520)
VALUES = RNG.standard_normal(N)


def _engine(l, mode, backend=None):
    return MachineEngine(MachineParams(width=WIDTH, latency=l),
                         DMMBankPolicy(), name="dmm", mode=mode,
                         backend=backend)


def _sweep(mode, backend=None):
    """Time the cf-sort latency sweep; return (seconds, cycles/point)."""
    t0 = time.perf_counter()
    cycles = [
        flat_cf_sort(_engine(l, mode, backend), VALUES, NUM_THREADS)[1].cycles
        for l in LATENCIES
    ]
    return time.perf_counter() - t0, cycles


def _isolated_store(tmpdir):
    os.environ["REPRO_TRACE_STORE_DIR"] = str(tmpdir)
    reset_default_store()


def _measure_replay(tmp_path):
    """The sweep under event vs warm replay, per pricing backend."""
    t_event, c_event = _sweep("event")
    rows = []
    for backend in ("python", "native"):
        _isolated_store(tmp_path / backend)
        _sweep("replay", backend)                    # cold: capture + hits
        t_warm, c_warm = _sweep("replay", backend)   # warm: all hits
        store = default_store().stats()
        assert c_warm == c_event, f"{backend}: replay cycles diverge"
        assert store.captures == 1, store.describe()
        assert store.hits >= 2 * len(LATENCIES) - 1, store.describe()
        rows.append({
            "backend": backend,
            "points": len(LATENCIES),
            "event_ms": round(t_event * 1e3, 1),
            "replay_warm_ms": round(t_warm * 1e3, 1),
            "replay_vs_event": round(t_event / t_warm, 1),
            "cycles_first_last": [c_event[0], c_event[-1]],
            "identical_cycles": True,  # asserted above, per point
        })
    return rows


def _excess(report):
    return sum(s.excess_slots for s in report.unit_stats.values())


def _measure_variants():
    """Naive vs conflict-free cycle/slot rows at a fixed latency."""
    l = LATENCIES[0]
    rows = []
    _, naive = flat_bitonic_sort(_engine(l, "event"), VALUES, NUM_THREADS)
    _, parity = flat_cf_sort(_engine(l, "event"), VALUES, NUM_THREADS,
                             fused=False)
    _, fused = flat_cf_sort(_engine(l, "event"), VALUES, NUM_THREADS)
    for label, rep in (("sort/naive", naive),
                       ("sort/conflict-free", parity),
                       ("sort/fused", fused)):
        rows.append({
            "workload": label, "l": l, "cycles": rep.cycles,
            "transactions": rep.total_transactions(),
            "excess_slots": _excess(rep),
        })
    i = np.arange(N, dtype=np.int64)
    perm = (i % WIDTH) * (N // WIDTH) + i // WIDTH
    for schedule in ("naive", "conflict-free"):
        _, rep = flat_cf_permutation(_engine(l, "event"), VALUES, perm,
                                     NUM_THREADS, schedule=schedule)
        rows.append({
            "workload": f"permutation/{schedule}", "l": l,
            "cycles": rep.cycles,
            "transactions": rep.total_transactions(),
            "excess_slots": _excess(rep),
        })
    return rows


def test_conflict_free_replay_and_parity(tmp_path):
    """Warm replay ≥ 5x over event; cf variants remove every excess
    slot at naive transaction parity."""
    replay_rows = _measure_replay(tmp_path)
    variant_rows = _measure_variants()

    emit("conflict_free", format_rows(
        ["backend", "points", "event ms", "replay ms", "vs event"],
        [(r["backend"], r["points"], r["event_ms"], r["replay_warm_ms"],
          f"{r['replay_vs_event']}x") for r in replay_rows],
    ) + "\n\n" + format_rows(
        ["workload", "l", "cycles", "transactions", "excess slots"],
        [(r["workload"], r["l"], r["cycles"], r["transactions"],
          r["excess_slots"]) for r in variant_rows],
    ))

    by_label = {r["workload"]: r for r in variant_rows}
    naive, parity = by_label["sort/naive"], by_label["sort/conflict-free"]
    speedup = min(r["replay_vs_event"] for r in replay_rows)
    criteria = {
        "min_replay_vs_event_speedup": MIN_SPEEDUP,
        "min_sweep_points": 12,
        "replay_cycles_identical": all(
            r["identical_cycles"] for r in replay_rows),
        "cf_zero_excess": all(
            r["excess_slots"] == 0 for r in variant_rows
            if "naive" not in r["workload"]),
        "cf_transaction_parity": (
            parity["transactions"] == naive["transactions"]),
        "cf_beats_naive": (
            parity["cycles"] < naive["cycles"]
            and by_label["sort/fused"]["cycles"] < parity["cycles"]
            and by_label["permutation/conflict-free"]["cycles"]
            < by_label["permutation/naive"]["cycles"]),
    }
    criteria["pass"] = (
        speedup >= MIN_SPEEDUP
        and len(LATENCIES) >= criteria["min_sweep_points"]
        and criteria["replay_cycles_identical"]
        and criteria["cf_zero_excess"]
        and criteria["cf_transaction_parity"]
        and criteria["cf_beats_naive"]
    )
    record = {
        "bench": "conflict_free",
        "schema_version": 1,
        "host": {
            "python": platform.python_version(),
            "numpy": np.__version__,
            "machine": platform.machine(),
        },
        "config": {
            "width": WIDTH,
            "num_threads": NUM_THREADS,
            "n": N,
            "latency_points": len(LATENCIES),
            "latency_range": [LATENCIES[0], LATENCIES[-1]],
        },
        "rows": replay_rows + variant_rows,
        "metrics": {
            "replay_vs_event_speedup": speedup,
            "sort_excess_slots_removed": naive["excess_slots"],
        },
        "criteria": criteria,
    }
    (ROOT / "BENCH_conflict_free.json").write_text(
        json.dumps(record, indent=2, sort_keys=True) + "\n")

    assert criteria["pass"], json.dumps(criteria, indent=2)


def test_speed_cf_replay_warm_point(benchmark, tmp_path):
    """pytest-benchmark row: one warm replay re-pricing of the cf sort."""
    _isolated_store(tmp_path)
    flat_cf_sort(_engine(2, "replay"), VALUES, NUM_THREADS)  # capture

    def run():
        return flat_cf_sort(_engine(77, "replay"), VALUES, NUM_THREADS)[1]

    report = benchmark(run)
    assert report.engine == "replay"
