"""Ablations — how much of the model's behaviour each mechanism carries.

* **ABL-1, pipelining**: the same kernels on a port that holds until
  completion.  Quantifies how much of the models' throughput is the
  ``x + l - 1`` pipelining rule (vs ``x·l`` serialization).
* **ABL-2, slot policies**: stride sweeps under the bank-conflict,
  address-group, and ideal policies — the cost the DMM/UMM rules attach
  to bad layouts, and where the two machines differ.
* **ABL-3, shared-memory padding**: the tiled transpose with and without
  the ``w + 1`` stride — the classic bank-conflict pitfall, quantified.

ABL-1 and ABL-2 reuse the experiments CLI's grids and point tasks and
route through the sweep executor, so benchmark runs and ``python -m
repro.experiments ablations`` share cache entries.
"""

from functools import partial

from repro import HMMParams, MachineParams
from repro.analysis.sweeps import run_sweep
from repro.machine.engine import MachineEngine
from repro.machine.hmm import HMMEngine
from repro.machine.policy import IdealPolicy, UMMGroupPolicy
from repro.core.kernels.hmm_sum import hmm_sum
from repro.core.kernels.matmul import hmm_transpose
from repro.core.kernels.reduction import sum_kernel
from repro.experiments.ablations import (
    PIPELINING_GRID,
    POLICY_GRID,
    pipelining_task,
    policy_task,
)

from _util import emit, format_rows, once


def test_ablation_pipelining(benchmark):
    """Without pipelining, contiguous access degenerates from
    ~n/w + l to ~(n/w)·l — the paper's pipeline model is what makes
    bandwidth-bound algorithms possible at all."""

    def run():
        pts = run_sweep(
            partial(pipelining_task, mode="batch"),
            PIPELINING_GRID,
            jobs="auto",
            cache=True,
            mode="batch",
            label="bench/ablations/pipelining",
        )
        return [
            [p.params["l"], "yes" if p.params["pipelined"] else "no", p.cycles]
            for p in pts
        ]

    rows = once(benchmark, run)
    emit(
        "ablation_pipelining",
        "contiguous read of 4096 cells, w=16, p=512\n"
        + format_rows(["l", "pipelined", "time units"], rows),
    )
    by_key = {(l, piped): c for l, piped, c in rows}
    for l in (8, 64, 256):
        slowdown = by_key[(l, "no")] / by_key[(l, "yes")]
        # Unpipelined cost is l x transactions; pipelining overlaps up
        # to one in-flight request per warp, so the speed-up factor is
        # ~min(l, p/w) = min(l, 32) here.
        assert slowdown > min(l, 32) / 2, (l, slowdown)


def test_ablation_policies_stride_sweep(benchmark):
    """Slot policies under stride-s access: the DMM charges the bank
    conflict degree gcd-style, the UMM charges the group spread, the
    ideal policy charges nothing — three different machines from one
    access pattern."""

    def run():
        pts = run_sweep(
            partial(policy_task, mode="batch"),
            POLICY_GRID,
            jobs="auto",
            cache=True,
            mode="batch",
            label="bench/ablations/policies",
        )
        cycles = {
            (p.params["stride"], p.params["policy"]): p.cycles for p in pts
        }
        return [
            [s, cycles[(s, "dmm")], cycles[(s, "umm")], cycles[(s, "ideal")]]
            for s in (1, 2, 4, 16, 17)
        ]

    rows = once(benchmark, run)
    emit(
        "ablation_policies",
        "stride-s read of 4096 cells, w=16 l=8 p=256\n"
        + format_rows(["stride", "DMM", "UMM", "ideal"], rows),
    )
    by_stride = {r[0]: r for r in rows}
    # Stride 1: everyone equal (coalesced, conflict-free).
    assert by_stride[1][1] == by_stride[1][2] == by_stride[1][3]
    # Stride w: both machines collapse to ~w x ideal.
    assert by_stride[16][1] > 8 * by_stride[16][3]
    assert by_stride[16][2] > 8 * by_stride[16][3]
    # Odd stride (w+1): conflict-free on the DMM, still spread across
    # groups on the UMM - the patterns where the DMM is stronger.
    assert by_stride[17][1] < by_stride[17][2]


def test_ablation_policy_swap_on_hmm_sum(benchmark, rng):
    """Running the HMM sum with the global policy swapped to ideal
    isolates how much of the cost the coalescing rule accounts for; the
    Theorem 7 kernel is fully coalesced, so the answer must be 'almost
    nothing' — evidence the algorithm, not luck, earns its bound."""

    def run():
        n, p = 1 << 13, 512
        vals = rng.normal(size=n)
        params = HMMParams(num_dmms=8, width=16, global_latency=128)
        real = hmm_sum(HMMEngine(params), vals, p)[1].cycles
        ideal = hmm_sum(
            HMMEngine(params, global_policy=IdealPolicy()), vals, p
        )[1].cycles
        return real, ideal

    real, ideal = once(benchmark, run)
    emit(
        "ablation_hmm_sum_policy",
        f"HMM sum, n=8192 p=512 w=16 l=128: group policy {real} vs "
        f"ideal policy {ideal} time units (ratio {real / ideal:.3f})",
    )
    assert real <= 1.05 * ideal


def test_ablation_transpose_padding(benchmark, rng):
    """ABL-3: the shared-tile transpose with stride w vs w + 1."""

    def run():
        a = rng.normal(size=(64, 64))
        rows = []
        for l in (2, 32):
            params = HMMParams(num_dmms=4, width=16, global_latency=l)
            _, padded = hmm_transpose(HMMEngine(params), a, padded=True)
            _, naive = hmm_transpose(HMMEngine(params), a, padded=False)
            rows.append([
                l,
                naive.cycles,
                padded.cycles,
                f"{naive.cycles / padded.cycles:.2f}x",
                naive.shared_stats().excess_slots,
                padded.shared_stats().excess_slots,
            ])
        return rows

    rows = once(benchmark, run)
    emit(
        "ablation_transpose_padding",
        "64x64 transpose via shared tiles, d=4 w=16\n"
        + format_rows(
            ["l", "naive", "padded", "speed-up", "naive excess slots",
             "padded excess slots"],
            rows,
        ),
    )
    for l, naive, padded, _, naive_excess, padded_excess in rows:
        assert padded_excess == 0
        assert naive_excess > 0
        assert naive > padded
    # At low global latency the conflicts dominate the total.
    assert rows[0][1] > 1.5 * rows[0][2]


def test_ablation_compute_vs_memory_split(benchmark, rng):
    """Time attribution sanity: at l = 1 the flat sum is compute/slot
    bound; at l = 256 the same launch is latency-bound.  The ablation
    confirms the model's time units respond to the intended mechanism."""

    def run():
        n, p, w = 1 << 12, 64, 16
        vals = rng.normal(size=n)
        out = {}
        for l in (1, 256):
            eng = MachineEngine(MachineParams(width=w, latency=l), UMMGroupPolicy())
            a = eng.array_from(vals, "a")
            report = eng.launch(sum_kernel(a, n), p)
            out[l] = report
        return out

    out = once(benchmark, run)
    emit(
        "ablation_latency_regimes",
        format_rows(
            ["l", "cycles", "slots", "transactions"],
            [
                [l, r.cycles, r.total_slots(), r.total_transactions()]
                for l, r in out.items()
            ],
        ),
    )
    # Same traffic, wildly different time: latency is the only change.
    assert out[1].total_slots() == out[256].total_slots()
    assert out[256].cycles > 10 * out[1].cycles
