"""Shared helpers for the reproduction benchmarks.

Every benchmark both *times* a representative simulator run (via
pytest-benchmark) and *reproduces* a paper artifact — a table row, a
figure series, an optimality check.  The reproduction output is printed
and written to ``benchmarks/out/<name>.txt`` (overwriting any previous
run) so the artifacts survive the run; EXPERIMENTS.md quotes them.
"""

from __future__ import annotations

import json
import pathlib
import platform
from typing import Iterable

OUT_DIR = pathlib.Path(__file__).resolve().parent / "out"
ROOT = pathlib.Path(__file__).resolve().parent.parent


def emit(name: str, text: str) -> None:
    """Print a reproduction artifact and persist it under benchmarks/out."""
    OUT_DIR.mkdir(parents=True, exist_ok=True)
    banner = f"\n===== {name} =====\n"
    print(banner + text)
    with open(OUT_DIR / f"{name}.txt", "w") as fh:
        fh.write(text + "\n")


def format_rows(headers: list[str], rows: Iterable[Iterable]) -> str:
    """Fixed-width text table."""
    str_rows = [[str(c) for c in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in str_rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))

    def fmt(cells):
        return "  ".join(c.rjust(widths[i]) for i, c in enumerate(cells)).rstrip()

    lines = [fmt(headers), "  ".join("-" * w for w in widths)]
    lines.extend(fmt(row) for row in str_rows)
    return "\n".join(lines)


def write_bench_json(
    name: str,
    *,
    config: dict,
    rows: list,
    metrics: dict,
    criteria: dict,
) -> dict:
    """Write ``BENCH_<name>.json`` at the repo root and return the record.

    The machine-readable twin of :func:`emit`, using the schema
    ``bench_trace_replay.py`` introduced (``schema_version`` 1): host
    info, the benchmark configuration, per-row results, derived
    metrics, and the pass/fail criteria — one committed file per bench,
    so the performance trajectory is diffable across PRs.
    ``criteria`` must contain a boolean ``"pass"`` entry.
    """
    import numpy as np

    if "pass" not in criteria:
        raise ValueError(f"criteria for {name!r} must include 'pass'")
    record = {
        "bench": name,
        "schema_version": 1,
        "host": {
            "python": platform.python_version(),
            "numpy": np.__version__,
            "machine": platform.machine(),
        },
        "config": config,
        "rows": rows,
        "metrics": metrics,
        "criteria": criteria,
    }
    (ROOT / f"BENCH_{name}.json").write_text(
        json.dumps(record, indent=2, sort_keys=True) + "\n")
    return record


def once(benchmark, fn, *args, **kwargs):
    """Run ``fn`` exactly once under pytest-benchmark timing.

    The reproduction sweeps are deterministic simulator runs — repeating
    them only re-measures the same Python work, so one round keeps the
    benchmark suite fast while still reporting wall-clock cost.
    """
    return benchmark.pedantic(fn, args=args, kwargs=kwargs, rounds=1, iterations=1)
