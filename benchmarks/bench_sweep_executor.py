"""The sweep executor itself — serial-vs-sharded and cold-vs-warm.

One benchmark runs the Table I sum sweep (all models) three ways against
a throwaway cache directory:

* **serial-event** — ``jobs=1``, ``mode="event"``, no cache: the
  pre-executor baseline, every point simulated step by step in-process.
* **cold** — ``jobs="auto"``, ``mode="batch"``, empty cache: the
  executor's fast path, sharded across worker processes.
* **warm** — the same sweep again: every point a cache hit, nothing
  re-simulated.

The emitted table records wall-clock, speed-ups, and the host CPU count
(the cold speed-up scales with cores; the warm one does not).  Cycle
counts must be identical in all three configurations — the executor's
core guarantee.
"""

import os
import time
from functools import partial

from repro.analysis.executor import SweepExecutor
from repro.analysis.terms import Params
from repro.experiments.table1 import SUM_GRID, sum_task

from _util import emit, format_rows, once, write_bench_json

SEED = 20130520
MODELS = ("pram", "umm", "dmm", "hmm")
POINTS = [Params(**q) for q in SUM_GRID]


def _run_all(executor: SweepExecutor, mode: str) -> tuple[float, dict]:
    start = time.perf_counter()
    cycles = {}
    for model in MODELS:
        pts = executor.run(
            partial(sum_task, model=model, seed=SEED, mode=mode),
            POINTS,
            mode=mode,
            label=f"bench/sweep-executor/{model}",
        )
        cycles[model] = [p.cycles for p in pts]
    return time.perf_counter() - start, cycles


def test_sweep_executor_speedups(benchmark, tmp_path):
    cache_dir = tmp_path / "sweep_cache"

    def run():
        serial_s, serial = _run_all(
            SweepExecutor(jobs=1, cache=False), "event"
        )
        cold_ex = SweepExecutor(jobs="auto", cache=True, cache_dir=cache_dir)
        cold_s, cold = _run_all(cold_ex, "batch")
        warm_ex = SweepExecutor(jobs="auto", cache=True, cache_dir=cache_dir)
        warm_s, warm = _run_all(warm_ex, "batch")
        return {
            "serial_s": serial_s,
            "cold_s": cold_s,
            "warm_s": warm_s,
            "serial": serial,
            "cold": cold,
            "warm": warm,
            "warm_hits": warm_ex.cache.hits,
            "warm_misses": warm_ex.cache.misses,
        }

    r = once(benchmark, run)
    total = len(POINTS) * len(MODELS)
    rows = [
        ["serial-event", "1", "event", "no", f"{r['serial_s']:.3f}", "1.00x"],
        [
            "cold", "auto", "batch", "empty", f"{r['cold_s']:.3f}",
            f"{r['serial_s'] / r['cold_s']:.2f}x",
        ],
        [
            "warm", "auto", "batch", "full", f"{r['warm_s']:.3f}",
            f"{r['serial_s'] / r['warm_s']:.2f}x",
        ],
    ]
    emit(
        "sweep_executor",
        f"Table I sum sweep, {len(POINTS)} points x {len(MODELS)} models "
        f"= {total} measurements   (host: {os.cpu_count()} CPUs)\n"
        + format_rows(
            ["config", "jobs", "mode", "cache", "wall s", "vs serial-event"],
            rows,
        )
        + f"\nwarm run: {r['warm_hits']} hits / {r['warm_misses']} misses",
    )

    # The executor's core guarantee: identical cycles in every config.
    assert r["cold"] == r["serial"]
    assert r["warm"] == r["serial"]
    # A warm rerun re-measures nothing...
    assert r["warm_hits"] == total
    assert r["warm_misses"] == 0
    # ...and reading the cache beats re-simulating by a wide margin.
    assert r["serial_s"] / r["warm_s"] >= 3.0, (r["serial_s"], r["warm_s"])

    warm_speedup = r["serial_s"] / r["warm_s"]
    write_bench_json(
        "sweep_executor",
        config={
            "points": len(POINTS),
            "models": list(MODELS),
            "measurements": total,
            "cpus": os.cpu_count(),
        },
        rows=[
            {"config": "serial-event", "jobs": 1, "mode": "event",
             "cache": "no", "wall_s": round(r["serial_s"], 4)},
            {"config": "cold", "jobs": "auto", "mode": "batch",
             "cache": "empty", "wall_s": round(r["cold_s"], 4),
             "speedup_vs_serial": round(r["serial_s"] / r["cold_s"], 2)},
            {"config": "warm", "jobs": "auto", "mode": "batch",
             "cache": "full", "wall_s": round(r["warm_s"], 4),
             "speedup_vs_serial": round(warm_speedup, 2)},
        ],
        metrics={
            "warm_speedup_vs_serial": round(warm_speedup, 2),
            "warm_hits": r["warm_hits"],
            "warm_misses": r["warm_misses"],
        },
        criteria={
            "cycles_identical": True,
            "min_warm_speedup": 3.0,
            "pass": bool(warm_speedup >= 3.0 and r["warm_misses"] == 0),
        },
    )
