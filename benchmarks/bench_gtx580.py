"""The paper's flagship configuration (Section III): GeForce GTX 580.

d = 16 SMs, w = 32, latency "several hundred cycles" (400 here), up to
1536 resident threads per SM.  Runs the two headline algorithms at
realistic launch shapes and prints measured time units next to the
Table I predictions — the numbers the paper implies but never tabulates.
"""

import numpy as np

from repro import GTX580, HMM
from repro.analysis.costmodel import convolution_time, sum_time
from repro.analysis.terms import Params

from _util import emit, format_rows, once


def test_gtx580_headline_numbers(benchmark, rng):
    def run():
        machine = HMM(GTX580)
        rows = []
        for n, p in ((1 << 14, 2048), (1 << 16, 8192), (1 << 17, 16384)):
            vals = rng.normal(size=n)
            total, report = machine.sum(vals, p)
            assert np.isclose(total, vals.sum())
            q = Params(n=n, p=p, w=32, l=400, d=16)
            rows.append(["sum", n, p, report.cycles,
                         f"{sum_time('hmm', q):.0f}",
                         f"{report.cycles / sum_time('hmm', q):.2f}"])
        for (n, k), p in (((1 << 12, 32), 4096), ((1 << 13, 64), 8192)):
            x = rng.normal(size=k)
            y = rng.normal(size=n + k - 1)
            z, report = machine.convolve(x, y, p)
            assert np.allclose(z, np.correlate(y, x, "valid"))
            q = Params(n=n, k=k, p=p, w=32, l=400, d=16)
            rows.append(["convolution", n, p, report.cycles,
                         f"{convolution_time('hmm', q):.0f}",
                         f"{report.cycles / convolution_time('hmm', q):.2f}"])
        return rows

    rows = once(benchmark, run)
    emit(
        "gtx580_headline",
        "GTX580 preset: d=16, w=32, l=400 (paper Section III)\n"
        + format_rows(
            ["problem", "n", "p", "measured", "Table I pred", "ratio"], rows
        ),
    )
    for row in rows:
        assert 0.2 <= float(row[5]) <= 5.0  # prediction brackets measurement
