"""Figures 1-5 — the paper's illustrative artifacts, regenerated.

* F1/F2 (architectures): structural invariants of the simulated machines
  plus a configuration dump.
* F3 (banks and address groups, w = 4): the layout table.
* F4 (pipelined global access, w = 4, l = 5): the exact 8-time-unit
  example, with the pipeline occupancy chart.
* F5 (the summing tree): the level-by-level combination pattern.
"""

import numpy as np
import pytest

from repro import FIG4_PARAMS, GTX580, TraceRecorder
from repro.machine.engine import MachineEngine
from repro.machine.hmm import HMMEngine
from repro.machine.policy import UMMGroupPolicy
from repro.viz import render_banks_and_groups, render_sum_tree

from _util import emit, once


def test_fig12_architecture(benchmark):
    """Figure 1/2: machine structure — d DMMs (w banks, latency 1) plus
    one UMM (w banks, latency l), a sea of threads in warps of w."""

    def build():
        eng = HMMEngine(GTX580)
        lines = [
            "HMM(GTX580): "
            f"d={GTX580.num_dmms} DMMs, w={GTX580.width} banks each, "
            f"shared latency {GTX580.shared_latency}, global latency "
            f"{GTX580.global_latency}, max {GTX580.max_threads()} threads",
        ]
        lines.append(f"  global unit: {eng.global_unit!r}")
        lines.append(f"  shared units: {len(eng.shared_units)} x "
                     f"{eng.shared_units[0]!r}")
        return eng, "\n".join(lines)

    eng, text = once(benchmark, build)
    emit("fig12_architecture", text)
    assert len(eng.shared_units) == 16
    assert eng.global_unit.policy.name == "umm-group"
    assert all(u.policy.name == "dmm-bank" for u in eng.shared_units)
    assert all(u.latency == 1 for u in eng.shared_units)
    assert eng.global_unit.latency == 400


def test_fig3_banks_and_groups(benchmark):
    out = once(benchmark, render_banks_and_groups, 16, 4)
    emit("fig3_banks_groups", out)
    # Row A[2] of the paper's table: addresses 8-11.
    row = next(l for l in out.splitlines() if l.startswith("A[2]"))
    assert [int(tok) for tok in row.split()[1:]] == [8, 9, 10, 11]


def test_fig4_pipeline_example(benchmark):
    """The exact example: W(0) reads {15, 2, 6, 0} (3 address groups),
    W(1) reads {8..11} (1 group), l = 5 -> 8 time units."""

    def run():
        eng = MachineEngine(FIG4_PARAMS, UMMGroupPolicy(), name="umm")
        a = eng.alloc(16, "a")
        a.set(np.arange(16.0))
        tr = TraceRecorder()
        pattern = {0: np.array([15, 2, 6, 0]), 1: np.array([8, 9, 10, 11])}

        def prog(warp):
            vals = yield warp.read(a, pattern[warp.warp_id])
            assert np.allclose(np.sort(vals), np.sort(pattern[warp.warp_id]))

        report = eng.launch(prog, 8, trace=tr)
        return report, tr.render_pipeline_timeline("mem", latency=5)

    report, chart = once(benchmark, run)
    emit(
        "fig4_pipeline",
        "paper: (3 + 1) + 5 - 1 = 8 time units\n"
        f"measured: {report.cycles} time units\n" + chart,
    )
    assert report.cycles == 8


def test_fig5_sum_tree(benchmark):
    out = once(benchmark, render_sum_tree, 8)
    emit("fig5_sum_tree", out)
    assert "{0,1,2,3,4,5,6,7}" in out.splitlines()[-1]
