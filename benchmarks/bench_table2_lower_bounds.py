"""Table II — every measured run respects every limitation, and each
algorithm stays within a constant factor of its lower bound (the paper's
optimality theorems, checked empirically across the sweeps).

The sweeps route through the sweep executor (``jobs="auto"``, persistent
cache) using the same picklable point tasks as the experiments CLI, so
reruns and the CLI share cache entries.
"""

from functools import partial

import pytest

from repro.analysis.lower_bounds import CONV_BOUNDS, SUM_BOUNDS
from repro.analysis.optimality import check_optimality
from repro.analysis.sweeps import run_sweep
from repro.analysis.tables import render_table2
from repro.analysis.terms import Params
from repro.experiments.table1 import conv_task, measure_sum, sum_task

from _util import emit, format_rows, once

SEED = 20130520

SUM_GRID = [
    dict(n=n, p=p, w=16, l=l, d=8)
    for n in (1 << 10, 1 << 12, 1 << 13)
    for p in (64, 256, 1024)
    for l in (4, 32, 256)
]

CONV_GRID = [
    dict(n=n, k=k, p=p, w=16, l=l, d=8)
    for n, k in ((1 << 9, 8), (1 << 10, 16))
    for p in (128, 512, 2048)
    for l in (4, 64)
]

SUM_POINTS = [Params(**q) for q in SUM_GRID]
CONV_POINTS = [Params(**q) for q in CONV_GRID]


def _sweep(task, points, model: str, label: str):
    rows = run_sweep(
        partial(task, model=model, seed=SEED, mode="batch"),
        points,
        jobs="auto",
        cache=True,
        mode="batch",
        label=label,
    )
    return [r.params for r in rows], [r.cycles for r in rows]


def test_table2_rendered(benchmark):
    """The table itself, symbolically and at the paper-scale point."""
    out = once(
        benchmark,
        lambda: render_table2() + "\n\n"
        + render_table2(Params(n=1 << 16, k=32, p=1024, w=32, l=200, d=16)),
    )
    emit("table2_rendered", out)
    assert "Ω(nk/dw)" in out


@pytest.mark.parametrize("model", ["pram", "umm", "dmm", "hmm"])
def test_table2_sum_optimality(benchmark, model):
    points, measured = once(
        benchmark, _sweep, sum_task, SUM_POINTS, model,
        f"bench/table2-sum/{model}",
    )
    report = check_optimality(SUM_BOUNDS[model], points, measured)
    emit(f"table2_sum_{model}", f"sum on {model}: {report.describe()}")
    assert report.sound, report.describe()
    # Optimal: within a modest constant of the max-limitation bound.
    assert report.tight_within(16.0), report.describe()


@pytest.mark.parametrize("model", ["pram", "umm", "dmm", "hmm"])
def test_table2_conv_optimality(benchmark, model):
    points, measured = once(
        benchmark, _sweep, conv_task, CONV_POINTS, model,
        f"bench/table2-conv/{model}",
    )
    report = check_optimality(CONV_BOUNDS[model], points, measured)
    emit(f"table2_conv_{model}", f"convolution on {model}: {report.describe()}")
    assert report.sound, report.describe()
    assert report.tight_within(16.0), report.describe()


def test_table2_per_limitation_breakdown(benchmark, rng):
    """One worked example: each HMM-sum limitation evaluated next to the
    measurement, showing which limitation binds in which regime."""

    def run():
        rows = []
        for q in (
            dict(n=1 << 13, p=64, w=16, l=256, d=8),    # latency-bound
            dict(n=1 << 13, p=4096, w=16, l=4, d=8),    # bandwidth-bound
            dict(n=1 << 6, p=64, w=16, l=4, d=8),       # reduction-bound
        ):
            vals = rng.normal(size=q["n"])
            cycles = measure_sum("hmm", q, vals, mode="batch")
            params = Params(**q)
            lims = {
                name: f(params) for name, f in SUM_BOUNDS["hmm"].items()
            }
            binding = max(lims, key=lims.get)
            rows.append(
                [q["n"], q["p"], q["l"], cycles]
                + [f"{lims[k]:.0f}" for k in ("speed-up", "bandwidth", "latency", "reduction")]
                + [binding]
            )
        return rows

    rows = once(benchmark, run)
    emit(
        "table2_binding_limitations",
        format_rows(
            ["n", "p", "l", "measured", "speed-up", "bandwidth", "latency",
             "reduction", "binding"],
            rows,
        ),
    )
    assert rows[0][-1] == "latency"
    assert rows[1][-1] == "bandwidth"
