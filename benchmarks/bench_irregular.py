"""Irregular workloads: SpMV, compaction, BFS.

Not paper artifacts — the demonstration that the model, reproduced
faithfully, prices the *irregular* access patterns GPU programmers
actually fight: data-dependent gathers, scatter with collisions,
frontier expansion.  Each row pairs the measured cost with the
structural quantity the model says should drive it.
"""

import networkx as nx
import numpy as np
import pytest

from repro import TraceRecorder
from repro.machine.engine import MachineEngine
from repro.machine.hmm import HMMEngine
from repro.machine.policy import UMMGroupPolicy
from repro.machine.trace import slots_histogram
from repro.params import HMMParams, MachineParams
from repro.core.kernels.bfs import adjacency_from_graph, hmm_bfs
from repro.core.kernels.compaction import hmm_compact
from repro.core.kernels.spmv import flat_spmv, hmm_spmv

from _util import emit, format_rows, once


def test_irregular_spmv(benchmark, rng):
    """SpMV: the scattered x-gather dominates the flat machine and the
    HMM's shared staging removes the latency from it."""

    def run():
        m = n = 64
        rows = []
        for density in (0.05, 0.15, 0.4):
            A = rng.normal(size=(m, n)) * (rng.random((m, n)) < density)
            x = rng.normal(size=n)
            tr = TraceRecorder()
            eng = MachineEngine(MachineParams(width=8, latency=150),
                                UMMGroupPolicy())
            yf, rf = flat_spmv(eng, A, x, 64, trace=tr)
            heng = HMMEngine(HMMParams(num_dmms=8, width=8, global_latency=150))
            yh, rh = hmm_spmv(heng, A, x, 64)
            assert np.allclose(yf, A @ x) and np.allclose(yh, A @ x)
            gather_hist = slots_histogram(
                [r for r in tr.records if r.array == "spmv.x"], "mem"
            )
            avg_gather = (
                sum(k * v for k, v in gather_hist.items())
                / max(sum(gather_hist.values()), 1)
            )
            rows.append([density, rf.cycles, rh.cycles,
                         f"{rf.cycles / rh.cycles:.1f}x",
                         f"{avg_gather:.1f}"])
        return rows

    rows = once(benchmark, run)
    emit(
        "irregular_spmv",
        "CSR SpMV, 64x64, w=8 p=64 l=150 d=8\n"
        + format_rows(
            ["density", "flat UMM", "HMM", "flat/HMM", "avg gather slots"],
            rows,
        ),
    )
    for row in rows:
        assert float(row[3][:-1]) > 1.5


def test_irregular_compaction(benchmark, rng):
    """Compaction cost is survivor-rate-insensitive (the scan dominates
    and the monotone scatter never exceeds 2 slots)."""

    def run():
        n, p = 1 << 11, 256
        vals = rng.normal(size=n)
        rows = []
        for rate in (0.01, 0.5, 0.99):
            keep = rng.random(n) < rate
            eng = HMMEngine(HMMParams(num_dmms=8, width=16, global_latency=64))
            out, cycles = hmm_compact(eng, vals, keep, p)
            assert np.allclose(out, vals[keep])
            rows.append([rate, int(keep.sum()), cycles])
        return rows

    rows = once(benchmark, run)
    emit(
        "irregular_compaction",
        "stream compaction, n=2048 w=16 p=256 d=8 l=64\n"
        + format_rows(["keep rate", "survivors", "time units"], rows),
    )
    cycles = [r[2] for r in rows]
    assert max(cycles) < 1.35 * min(cycles)


def test_irregular_bfs(benchmark, rng):
    """BFS cost tracks the level structure: diameter-bound graphs pay
    per-level latency, expander-like graphs pay frontier bandwidth."""

    def run():
        factory = lambda: HMMEngine(
            HMMParams(num_dmms=4, width=8, global_latency=48)
        )
        rows = []
        for name, graph in (
            ("path-64 (diameter 63)", nx.path_graph(64)),
            ("star-63 (diameter 2)", nx.star_graph(63)),
            ("random p=0.08", nx.erdos_renyi_graph(64, 0.08, seed=4)),
        ):
            adj = adjacency_from_graph(graph)
            dist, cycles = hmm_bfs(factory, adj, 0, 32)
            nodes = sorted(graph.nodes())
            ref = nx.single_source_shortest_path_length(graph, nodes[0])
            levels = max(ref.values()) if ref else 0
            expected = np.full(len(nodes), -1)
            for node, dd in ref.items():
                expected[nodes.index(node)] = dd
            assert np.array_equal(dist, expected), name
            rows.append([name, levels, cycles, cycles // max(levels, 1)])
        return rows

    rows = once(benchmark, run)
    emit(
        "irregular_bfs",
        "level-synchronous BFS on 64 nodes, d=4 w=8 l=48 p=32\n"
        + format_rows(["graph", "levels", "time units", "per level"], rows),
    )
    by_name = {r[0]: r for r in rows}
    # The deep path pays ~levels x per-level cost; the star finishes in
    # a couple of levels despite equal node count.
    assert by_name["path-64 (diameter 63)"][2] > \
        5 * by_name["star-63 (diameter 2)"][2]


def test_irregular_merge(benchmark, rng):
    """Merge-path: the diagonal searches and segment merges are
    dependent-read chains; shared staging removes their latency."""
    from repro.core.kernels.merge import flat_merge, hmm_merge

    def run():
        rows = []
        for size in (256, 1024):
            a = np.sort(rng.normal(size=size))
            b = np.sort(rng.normal(size=size))
            ref = np.sort(np.concatenate([a, b]))
            eng = MachineEngine(MachineParams(width=8, latency=100),
                                UMMGroupPolicy())
            of, rf = flat_merge(eng, a, b, 128)
            heng = HMMEngine(HMMParams(num_dmms=8, width=8, global_latency=100))
            oh, rh = hmm_merge(heng, a, b, 128)
            assert np.array_equal(of, ref) and np.array_equal(oh, ref)
            rows.append([2 * size, rf.cycles, rh.cycles,
                         f"{rf.cycles / rh.cycles:.2f}x"])
        return rows

    rows = once(benchmark, run)
    emit(
        "irregular_merge",
        "merge of two sorted arrays, w=8 p=128 l=100 d=8\n"
        + format_rows(["n total", "flat UMM", "HMM", "flat/HMM"], rows),
    )
    assert all(float(r[3][:-1]) > 1.5 for r in rows)
