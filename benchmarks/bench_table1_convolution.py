"""Table I, row "Direct convolution" — measured vs the paper's closed
forms on every model, plus the Theorem 9 claims (d-fold speed-up, linear
global traffic, crossover against the flat machines).

The grid sweep routes through the sweep executor (``jobs="auto"``,
persistent cache); the subset of points shared with the experiments CLI
reuses its cache entries.
"""

from functools import partial

import pytest

from repro import HMM, UMM, HMMParams, MachineParams
from repro.analysis.costmodel import CONV_FORMULAS
from repro.analysis.fitting import fit_terms
from repro.analysis.sweeps import run_sweep
from repro.analysis.terms import Params
from repro.experiments.table1 import conv_task, measure_convolution

from _util import emit, format_rows, once

SEED = 20130520

GRID = [
    dict(n=n, k=k, p=p, w=16, l=l, d=8)
    for n, k in ((1 << 9, 8), (1 << 10, 16), (1 << 11, 16))
    for p in (128, 512, 2048)
    for l in (8, 64)
]
POINTS = [Params(**q) for q in GRID]


def _sweep(model: str) -> tuple[list[Params], list[int]]:
    rows = run_sweep(
        partial(conv_task, model=model, seed=SEED, mode="batch"),
        POINTS,
        jobs="auto",
        cache=True,
        mode="batch",
        label=f"bench/table1-conv/{model}",
    )
    return [r.params for r in rows], [r.cycles for r in rows]


#: Models fitted against their Corollary-10-style Table I row.  The HMM
#: is fitted against the unconditional Theorem 9 form, which includes
#: the dk/w staging terms the sweep's small chunks make visible.
_FORMULA_KEY = {
    "sequential": "sequential",
    "pram": "pram",
    "dmm": "dmm",
    "umm": "umm",
    "hmm": "hmm_general",
}


@pytest.mark.parametrize("model", ["sequential", "pram", "umm", "dmm", "hmm"])
def test_table1_conv_shape(benchmark, model):
    points, measured = once(benchmark, _sweep, model)
    formula = CONV_FORMULAS[_FORMULA_KEY[model]]
    fit = fit_terms(formula, points, measured)

    rows = [
        [q.n, q.k, q.p, q.l, t, f"{formula(q):.0f}", f"{t / formula(q):.2f}"]
        for q, t in zip(points, measured)
    ]
    emit(
        f"table1_conv_{model}",
        f"model: {model}   formula: {formula.text()}\n"
        + fit.describe()
        + "\n"
        + format_rows(
            ["n", "k", "p", "l", "measured", "unit-coef pred", "ratio"], rows
        ),
    )
    assert fit.r_squared >= 0.97, fit.describe()
    assert all(c <= 12.0 for c in fit.coefficients), fit.describe()


def test_table1_conv_model_ordering(benchmark, rng):
    """PRAM <= HMM <= DMM/UMM <= sequential at GPU-like parameters."""

    def run():
        q = dict(n=1 << 11, k=16, p=2048, w=16, l=64, d=8)
        x = rng.normal(size=q["k"])
        y = rng.normal(size=q["n"] + q["k"] - 1)
        return {
            m: measure_convolution(m, q, x, y, mode="batch")
            for m in ("sequential", "pram", "umm", "dmm", "hmm")
        }

    cycles = once(benchmark, run)
    emit(
        "table1_conv_ordering",
        format_rows(
            ["model", "time units (n=2048, k=16, p=2048, w=16, l=64, d=8)"],
            sorted(cycles.items(), key=lambda kv: kv[1]),
        ),
    )
    assert cycles["pram"] < cycles["hmm"]
    assert cycles["hmm"] < cycles["umm"]
    assert cycles["umm"] < cycles["sequential"]


def test_table1_conv_dmm_count_speedup(benchmark, rng):
    """The nk/(dw) speed-up term: in the compute-bound regime, doubling
    the number of DMMs (with per-DMM threads fixed) roughly halves the
    time — the paper's reason to model multiple SMs at all."""

    def run():
        k, n, w, l = 32, 1 << 11, 8, 8
        x = rng.normal(size=k)
        y = rng.normal(size=n + k - 1)
        series = {}
        for d in (1, 2, 4, 8):
            machine = HMM(HMMParams(num_dmms=d, width=w, global_latency=l))
            series[d] = machine.convolve(x, y, 32 * d)[1].cycles
        return series

    series = once(benchmark, run)
    rows = [[d, c, f"{series[1] / c:.2f}x"] for d, c in series.items()]
    emit(
        "table1_conv_dmm_speedup",
        "HMM direct convolution, n=2048 k=32 w=8 l=8, 32 threads per DMM\n"
        + format_rows(["d", "time units", "speed-up vs d=1"], rows),
    )
    assert series[1] / series[2] > 1.7
    assert series[2] / series[4] > 1.7
    assert series[4] / series[8] > 1.5


def test_table1_conv_crossover_with_flat(benchmark, rng):
    """Who wins where: at l = 1 the flat UMM matches the HMM (no latency
    to hide — the HMM's only edge is d-fold compute), while at realistic
    latency the HMM wins by a growing factor."""

    def run():
        k, n, w, d, p = 16, 1 << 10, 16, 8, 512
        x = rng.normal(size=k)
        y = rng.normal(size=n + k - 1)
        rows = []
        for l in (1, 8, 64, 256):
            flat = UMM(MachineParams(width=w, latency=l)).convolve(x, y, p)[1].cycles
            hier = HMM(
                HMMParams(num_dmms=d, width=w, global_latency=l)
            ).convolve(x, y, p)[1].cycles
            rows.append((l, flat, hier, flat / hier))
        return rows

    rows = once(benchmark, run)
    emit(
        "table1_conv_crossover",
        "flat UMM vs HMM, n=1024 k=16 w=16 d=8 p=512\n"
        + format_rows(
            ["l", "flat UMM", "HMM", "flat/HMM"],
            [[l, f, h, f"{r:.2f}x"] for l, f, h, r in rows],
        ),
    )
    ratios = {l: r for l, f, h, r in rows}
    assert ratios[256] > ratios[8]  # the HMM's edge grows with latency
    assert ratios[256] > 3.0
