"""Autotuner on the conflicted transpose: finds +1 padding, fast.

The acceptance demo for ``repro.tuner``: a tiled HMM transpose whose
shared tile is addressed at natural stride ``w`` (every transposed
write a full ``w``-way bank conflict).  The tuner must

* discover the classic fix — ``pad=1`` (or an equivalent skew) — and
  drive the modeled DMM slot count down to the conflict-free count,
* recover at least 90% of the analytic optimum (the hand-written
  conflict-free layout's cost), and
* do the same search at least 5x faster replay-backed than
  event-backed: replay captures one trace per layout and re-prices the
  remaining latency points from it, the event engine re-executes every
  point.

Artifacts:

* ``benchmarks/out/tuner.txt`` — human-readable comparison;
* ``BENCH_tuner.json`` (repo root) — machine-readable record with the
  pass/fail criteria (baseline vs tuned units, search wall-clock).
"""

import os
import time

import pytest

from _util import emit, format_rows, write_bench_json
from repro.machine.replay import reset_default_store
from repro.tuner import tune
from repro.tuner.demos import run_config


@pytest.fixture(autouse=True)
def _restore_store_env():
    """Leave the process-wide trace-store override as we found it."""
    saved = os.environ.get("REPRO_TRACE_STORE_DIR")
    yield
    if saved is None:
        os.environ.pop("REPRO_TRACE_STORE_DIR", None)
    else:
        os.environ["REPRO_TRACE_STORE_DIR"] = saved
    reset_default_store()


#: Big enough that one event-mode costing is real work (36 tiles), and
#: a 12-point latency grid so replay's capture-once pays off.
SHAPE = {"w": 8, "d": 4, "m": 48}
LATENCIES = tuple(range(2, 26, 2))

MIN_RECOVERY = 0.9
MIN_SPEEDUP = 5.0


def _isolated_store(tmpdir):
    os.environ["REPRO_TRACE_STORE_DIR"] = str(tmpdir)
    reset_default_store()


def _search(mode: str, tmp_path):
    """One full exhaustive search in ``mode``; returns (seconds, report).

    No result cache and a private trace store, so the two modes time
    exactly the same amount of fresh work.
    """
    _isolated_store(tmp_path / mode)
    t0 = time.perf_counter()
    report = tune("transpose", shape=SHAPE, latencies=LATENCIES,
                  mode=mode, cache=False, jobs=1)
    return time.perf_counter() - t0, report


def test_tuner_finds_padding(tmp_path):
    """The tuner lands on the conflict-free layout, replay-accelerated."""
    t_replay, rep_replay = _search("replay", tmp_path)
    t_event, rep_event = _search("event", tmp_path)

    # Same search, same answer, regardless of the costing engine.
    assert rep_replay.best.config == rep_event.best.config
    assert rep_replay.best.cost == rep_event.best.cost
    assert rep_replay.baseline.cost == rep_event.baseline.cost

    best = rep_replay.best
    baseline = rep_replay.baseline

    # The seeded conflict is real and the fix removes it entirely:
    # modeled DMM slots drop to the conflict-free count.
    assert baseline.extra["shared_excess_slots"] > 0
    assert best.extra["shared_excess_slots"] == 0
    # The classic +1-padding fix or an equivalent skew.
    assert best.config["pad"] == 1 or best.config["skew"] > 0

    # Analytic optimum: the hand-written conflict-free (+1 pad) layout.
    optimum = float(sum(
        run_config("transpose", {"pad": 1, "skew": 0}, SHAPE, l, "batch")[0]
        for l in LATENCIES))
    recovery = optimum / best.cost
    speedup = t_event / t_replay

    rows = [
        {
            "mode": mode,
            "search_s": round(seconds, 3),
            "evaluations": rep.evaluations,
            "baseline_units": rep.baseline.cost,
            "tuned_units": rep.best.cost,
            "best_config": rep.best.config,
            "certificate": rep.certificate,
            "equivalent": rep.equivalent,
        }
        for mode, seconds, rep in (
            ("replay", t_replay, rep_replay), ("event", t_event, rep_event))
    ]
    emit("tuner", format_rows(
        ["mode", "search s", "evals", "baseline", "tuned", "best", "cert"],
        [(r["mode"], r["search_s"], r["evaluations"],
          int(r["baseline_units"]), int(r["tuned_units"]),
          str(r["best_config"]), r["certificate"]) for r in rows],
    ))

    metrics = {
        "improvement": round(baseline.cost / best.cost, 3),
        "optimum_recovery": round(recovery, 4),
        "replay_vs_event_speedup": round(speedup, 2),
        "baseline_shared_excess_slots": baseline.extra["shared_excess_slots"],
        "tuned_shared_excess_slots": best.extra["shared_excess_slots"],
    }
    record = write_bench_json(
        "tuner",
        config={
            "shape": SHAPE,
            "latency_points": len(LATENCIES),
            "latency_range": [LATENCIES[0], LATENCIES[-1]],
            "strategy": "exhaustive",
        },
        rows=rows,
        metrics=metrics,
        criteria={
            "min_optimum_recovery": MIN_RECOVERY,
            "min_replay_vs_event_speedup": MIN_SPEEDUP,
            "pass": bool(
                recovery >= MIN_RECOVERY
                and speedup >= MIN_SPEEDUP
                and best.extra["shared_excess_slots"] == 0
                and rep_replay.equivalent and rep_event.equivalent
            ),
        },
    )
    assert record["criteria"]["pass"], (
        f"recovery {recovery:.2f} (need {MIN_RECOVERY}), replay speedup "
        f"{speedup:.1f}x (need {MIN_SPEEDUP}x)")


def test_speed_tune_replay(benchmark, tmp_path):
    """pytest-benchmark row: one warm replay-backed exhaustive search."""
    _isolated_store(tmp_path)
    small = {"w": 8, "d": 2, "m": 16}
    lats = (4, 16)
    tune("transpose", shape=small, latencies=lats, mode="replay",
         cache=False)  # populate the trace store

    def run():
        return tune("transpose", shape=small, latencies=lats,
                    mode="replay", cache=False)

    report = benchmark.pedantic(run, rounds=1, iterations=1)
    assert report.certificate == "conflict-free"
