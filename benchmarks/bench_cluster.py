"""The sharded cost-oracle cluster under zipfian load — scaling + chaos.

Drives :func:`repro.cluster.bench.run_cluster_comparison`: a closed-loop
zipf-skewed Table I workload against (1) one cache-off ``repro.service``
process, (2) the same shard configuration ×3 behind the consistent-hash
router (cache off — the compute-bound scaling row), (3) the cluster
with caches and hot-key warming on, and (4) the warm cluster again with
one shard SIGKILLed mid-run.

Two acceptance dimensions:

* **scaling** — the cluster's throughput over the single shard's.  The
  subsystem target is ≥2x, which requires hardware that can actually
  run the shard processes in parallel; on a host with fewer than 3 CPUs
  the shards time-slice one core and the cluster's relay hop is pure
  overhead, so the criterion degrades to a bounded-overhead floor
  (≥0.5x) and the record says so (``host_limited``).  The 2x target is
  always recorded and asserted wherever the hardware can express it.
* **availability** — the shard-kill run must finish with **zero**
  client-visible failures: the router reroutes (oracle requests are
  deterministic and idempotent), the client retries, nobody notices.
  This criterion holds on any host.
"""

import os

from repro.cluster.bench import (
    render_cluster_comparison,
    run_cluster_comparison,
)

from _util import emit, once, write_bench_json

SHARDS = 3
REPLICAS = 2
DURATION_S = 8.0
CLIENTS = 64
ZIPF_S = 2.5
SEED = 7

#: The subsystem's scaling claim — asserted when the host has enough
#: CPUs to run the shards in parallel at all.
TARGET_SPEEDUP = 2.0
#: Sanity floor on CPU-starved hosts: the router+replication layer may
#: not cost more than half the single shard's throughput.
OVERHEAD_FLOOR = 0.5


def test_cluster_throughput_and_chaos(benchmark):
    cpus = os.cpu_count() or 1
    host_limited = cpus < SHARDS
    min_speedup = OVERHEAD_FLOOR if host_limited else TARGET_SPEEDUP

    result = once(
        benchmark,
        run_cluster_comparison,
        shards=SHARDS,
        replicas=REPLICAS,
        duration=DURATION_S,
        clients=CLIENTS,
        zipf_s=ZIPF_S,
        seed=SEED,
    )

    header = (
        f"cost-oracle cluster, closed loop: {CLIENTS} clients, "
        f"{DURATION_S:g}s per config, zipf s={ZIPF_S}, seed={SEED}, "
        f"{SHARDS} shards x replicas={REPLICAS}  (host: {cpus} CPUs)\n"
    )
    emit("cluster", header + "\n" + render_cluster_comparison(result))

    rows = {r["name"]: r for r in result["rows"]}
    single = rows["single-shard"]
    clustered = rows[f"cluster-{SHARDS}shard"]
    assert single["requests"] > 0 and clustered["requests"] > 0
    assert single["errors"] == 0 and clustered["errors"] == 0
    # Seeds are recorded so a run is reproducible bit-for-bit at the
    # workload level (same spec sequence per client).
    assert single["seed"] == clustered["seed"] == SEED

    speedup = result["speedup"]
    kill_errors = result["kill_errors"]
    assert speedup >= min_speedup, (speedup, min_speedup)
    # The availability claim is unconditional: a SIGKILLed shard must
    # not surface a single client-visible failure.
    assert kill_errors == 0, kill_errors

    warm_tel = result["telemetry"].get("warm", {})
    chaos_router = result["telemetry"].get("chaos", {}).get("router", {})
    write_bench_json(
        "cluster",
        config={**result["config"], "cpus": cpus},
        rows=result["rows"],
        metrics={
            "single_rps": single["rps"],
            "cluster_rps": clustered["rps"],
            "speedup": speedup,
            "kill_errors": kill_errors,
            "kill_reroutes": chaos_router.get("reroutes", 0),
            "warm_pushes": warm_tel.get("warming", {})
            .get("pushes_sent_total", 0),
            "warm_remote_hits": warm_tel.get("warming", {})
            .get("hits_remote_total", 0),
            "per_shard": warm_tel.get("per_shard", {}),
        },
        criteria={
            "target_speedup": TARGET_SPEEDUP,
            "min_speedup": min_speedup,
            "host_limited": host_limited,
            "max_kill_errors": 0,
            "pass": bool(speedup >= min_speedup and kill_errors == 0),
        },
    )
