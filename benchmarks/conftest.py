"""Benchmark fixtures."""

import sys
import pathlib

import numpy as np
import pytest

# Make benchmarks/_util importable regardless of invocation directory.
sys.path.insert(0, str(pathlib.Path(__file__).resolve().parent))


@pytest.fixture
def rng() -> np.random.Generator:
    return np.random.default_rng(20130520)
