"""Lemma 1 / Theorem 2 — contiguous memory access.

The foundational cost bound everything else builds on:
``O(n/w + nl/p + l)`` for one array, unchanged for up to ``w`` arrays
accessed in turn.  Fits across the (n, p, l) grid on both machines,
plus the exact pipeline-saturation behaviour at the p = lw boundary.
"""

import numpy as np
import pytest

from repro.analysis.fitting import fit_terms
from repro.analysis.terms import Formula, Params, T_L, T_N_W, T_NL_P
from repro.machine.engine import MachineEngine
from repro.machine.policy import DMMBankPolicy, UMMGroupPolicy
from repro.params import MachineParams
from repro.core.kernels.contiguous import contiguous_read, multi_array_access

from _util import emit, format_rows, once

LEMMA1 = Formula("lemma1", (T_N_W, T_NL_P, T_L))

GRID = [
    dict(n=n, p=p, l=l)
    for n in (1 << 10, 1 << 12, 1 << 14)
    for p in (32, 128, 1024)
    for l in (1, 16, 128)
]


def _engine(policy, l):
    return MachineEngine(MachineParams(width=16, latency=l), policy())


@pytest.mark.parametrize("policy", [DMMBankPolicy, UMMGroupPolicy])
def test_lemma1_shape(benchmark, policy):
    def run():
        points, measured = [], []
        for q in GRID:
            eng = _engine(policy, q["l"])
            a = eng.alloc(q["n"])
            points.append(Params(n=q["n"], p=q["p"], w=16, l=q["l"]))
            measured.append(eng.launch(contiguous_read(a, q["n"]), q["p"]).cycles)
        return points, measured

    points, measured = once(benchmark, run)
    fit = fit_terms(LEMMA1, points, measured)
    rows = [
        [q.n, q.p, q.l, t, f"{LEMMA1(q):.0f}"]
        for q, t in zip(points, measured)
    ]
    emit(
        f"lemma1_{policy.name}",
        f"contiguous read, {policy.name}: {LEMMA1.text()}\n"
        + fit.describe() + "\n"
        + format_rows(["n", "p", "l", "measured", "unit-coef pred"], rows),
    )
    # The true law is ~max(n/w, nl/p) + l; fitting the paper's *sum* of
    # terms therefore lands coefficients in (0.3, 1.1] — the n/w weight
    # dips where the latency term covers part of the bandwidth cost.
    assert fit.r_squared > 0.999, fit.describe()
    assert 0.3 <= fit.coefficient_for("n/w") <= 1.1, fit.describe()
    assert 0.8 <= fit.coefficient_for("nl/p") <= 1.1, fit.describe()


def test_lemma1_saturation_boundary(benchmark):
    """At p >= lw the pipeline saturates: time = n/w + l - 1 exactly.
    Below, the latency term takes over: time ~ nl/p."""

    def run():
        n, w = 1 << 12, 16
        rows = []
        for l in (8, 64):
            for p in (w * l // 4, w * l, 4 * w * l):
                eng = _engine(UMMGroupPolicy, l)
                a = eng.alloc(n)
                cycles = eng.launch(contiguous_read(a, n), p).cycles
                rows.append([l, p, p // (w * l), cycles, n // w + l - 1])
        return rows

    rows = once(benchmark, run)
    emit(
        "lemma1_saturation",
        format_rows(["l", "p", "p/(lw)", "measured", "saturated bound"], rows),
    )
    for l, p, ratio, cycles, bound in rows:
        if ratio >= 1:
            assert cycles == bound, (l, p)
        else:
            assert cycles > bound, (l, p)


def test_theorem2_multi_array(benchmark):
    """Accessing several arrays in turn costs the same as one array of
    the total size (Theorem 2), for k <= w arrays."""

    def run():
        w, l, p, total = 16, 32, 256, 1 << 12
        rows = []
        for num_arrays in (1, 2, 4, 8, 16):
            eng = _engine(UMMGroupPolicy, l)
            size = total // num_arrays
            arrays = [eng.alloc(size) for _ in range(num_arrays)]
            cycles = eng.launch(
                multi_array_access(arrays, [size] * num_arrays), p
            ).cycles
            rows.append([num_arrays, cycles])
        return rows

    rows = once(benchmark, run)
    emit(
        "theorem2_multi_array",
        "total 4096 cells split across k arrays, w=16 l=32 p=256\n"
        + format_rows(["k arrays", "time units"], rows),
    )
    base = rows[0][1]
    for _, cycles in rows:
        assert cycles <= 1.5 * base  # same bound regardless of k <= w
