"""The unified artifact store's warm path vs the pre-unification cache.

The store refactor (docs/STORAGE.md) must not tax the hot path: a warm
sweep rerun used to be a dict lookup into shards loaded at startup, and
with the store it is a memory-tier LRU hit.  This benchmark rebuilds
the legacy warm path faithfully (one JSON-lines shard dir loaded into a
dict, hit counter and all), fills a `ResultCache` — now a facade over
the store's ``sweep`` namespace — with the same entries, and times
per-lookup latency three ways:

* **legacy-warm** — the pre-unification in-memory shard map;
* **store-warm** — memory-tier hits (the steady state of every warm
  sweep, replay, and tune run);
* **store-disk** — cold-process first touches: framed read, integrity
  verification, promotion into memory (was: parse every shard line at
  startup, amortized — reported for context, not gated).

Hit rates must be identical (1.0: every key present in both), and the
store's warm path must stay within 5% of legacy plus a small absolute
floor (the per-op delta is tens of nanoseconds; the floor keeps the
gate meaningful — a disk-read-per-hit regression is ~100x — without
flaking on scheduler noise).
"""

import json
import time
from pathlib import Path

from repro.analysis.executor import ResultCache

from _util import emit, format_rows, once, write_bench_json

ENTRIES = 512
ROUNDS = 7  # best-of, to shave scheduler noise
FINGERPRINT = "bench-store"
ALLOWED_REGRESSION = 1.05
NOISE_FLOOR_US = 2.0


class LegacySweepCache:
    """The pre-unification warm path: shard files -> dict at startup."""

    def __init__(self, directory: Path) -> None:
        self._entries: dict[str, tuple[int, dict]] = {}
        self.hits = 0
        self.misses = 0
        for shard in sorted(Path(directory).glob("shard_*.jsonl")):
            for line in shard.read_text().splitlines():
                try:
                    entry = json.loads(line)
                    self._entries[str(entry["key"])] = (
                        int(entry["cycles"]), dict(entry.get("extra", {}))
                    )
                except (ValueError, KeyError, TypeError):
                    continue

    def get(self, key: str):
        found = self._entries.get(key)
        if found is None:
            self.misses += 1
            return None
        self.hits += 1
        return found


def _keys():
    import hashlib

    return [
        hashlib.sha256(f"bench-store-point-{i}".encode()).hexdigest()
        for i in range(ENTRIES)
    ]


def _payload(i: int) -> tuple[int, dict]:
    return 40 + i, {"slots": i % 7, "unit": "shared"}


def _per_get_us(cache, keys) -> float:
    best = float("inf")
    for _ in range(ROUNDS):
        start = time.perf_counter()
        for key in keys:
            assert cache.get(key) is not None
        best = min(best, time.perf_counter() - start)
    return best / len(keys) * 1e6


def test_store_warm_path(benchmark, tmp_path):
    keys = _keys()

    def run():
        # Legacy shard dir and store namespace carrying identical entries.
        legacy_dir = tmp_path / "legacy"
        legacy_dir.mkdir()
        with open(legacy_dir / "shard_00.jsonl", "w") as fh:
            for i, key in enumerate(keys):
                cycles, extra = _payload(i)
                fh.write(json.dumps({
                    "key": key, "fingerprint": FINGERPRINT,
                    "cycles": cycles, "extra": extra,
                }) + "\n")

        store_dir = tmp_path / "store"
        warm = ResultCache(store_dir, FINGERPRINT)
        for i, key in enumerate(keys):
            warm.put(key, *_payload(i))

        legacy = LegacySweepCache(legacy_dir)
        legacy_us = _per_get_us(legacy, keys)
        store_us = _per_get_us(warm, keys)

        cold = ResultCache(store_dir, FINGERPRINT)  # cold memory tier
        start = time.perf_counter()
        for key in keys:
            assert cold.get(key) is not None
        disk_us = (time.perf_counter() - start) / len(keys) * 1e6

        return {
            "legacy_us": legacy_us,
            "store_us": store_us,
            "disk_us": disk_us,
            "legacy_rate": legacy.hits / (legacy.hits + legacy.misses),
            "store_rate": warm.hits / (warm.hits + warm.misses),
        }

    r = once(benchmark, run)
    budget_us = r["legacy_us"] * ALLOWED_REGRESSION + NOISE_FLOOR_US
    rows = [
        ["legacy-warm", f"{r['legacy_us']:.3f}", f"{r['legacy_rate']:.2f}"],
        ["store-warm", f"{r['store_us']:.3f}", f"{r['store_rate']:.2f}"],
        ["store-disk", f"{r['disk_us']:.3f}", "1.00"],
    ]
    emit(
        "store",
        f"warm-path lookups, {ENTRIES} entries, best of {ROUNDS} rounds\n"
        + format_rows(["config", "per-get us", "hit rate"], rows)
        + f"\ngate: store-warm <= legacy-warm x {ALLOWED_REGRESSION}"
        f" + {NOISE_FLOOR_US}us = {budget_us:.3f}us",
    )

    # Identical hit rates: every key answered by both implementations.
    assert r["legacy_rate"] == r["store_rate"] == 1.0, r
    # The gate: no warm-path regression beyond 5% (+ noise floor).
    assert r["store_us"] <= budget_us, (r["store_us"], budget_us)

    write_bench_json(
        "store",
        config={
            "entries": ENTRIES,
            "rounds": ROUNDS,
            "allowed_regression": ALLOWED_REGRESSION,
            "noise_floor_us": NOISE_FLOOR_US,
        },
        rows=[
            {"config": "legacy-warm",
             "per_get_us": round(r["legacy_us"], 4),
             "hit_rate": r["legacy_rate"]},
            {"config": "store-warm",
             "per_get_us": round(r["store_us"], 4),
             "hit_rate": r["store_rate"]},
            {"config": "store-disk",
             "per_get_us": round(r["disk_us"], 4),
             "hit_rate": 1.0},
        ],
        metrics={
            "warm_ratio_vs_legacy": round(r["store_us"] / r["legacy_us"], 3),
            "budget_us": round(budget_us, 4),
        },
        criteria={
            "hit_rates_identical": True,
            "max_warm_regression": ALLOWED_REGRESSION,
            "pass": bool(
                r["store_us"] <= budget_us
                and r["legacy_rate"] == r["store_rate"] == 1.0
            ),
        },
    )
