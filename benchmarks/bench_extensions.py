"""Extensions — the companion algorithms the paper's line of work rests
on, reproduced on the same machinery.

* prefix-sums (ref [17]): the HMM scan's O(1)-latency structure vs the
  flat scan's l·log n;
* offline permutation (refs [13], [19]): conflict-free scheduling vs the
  naive order on an adversarial permutation;
* tiled matrix multiplication: DMM scaling of the canonical CUDA kernel.
"""

import numpy as np
import pytest

from repro import HMM, UMM, HMMParams, MachineParams
from repro.machine.engine import MachineEngine
from repro.machine.hmm import HMMEngine
from repro.machine.policy import DMMBankPolicy
from repro.params import MachineParams as MP
from repro.core.kernels.matmul import hmm_matmul
from repro.core.kernels.permutation import (
    conflict_free_permutation_schedule,
    naive_permutation_schedule,
    permutation_kernel,
)

from _util import emit, format_rows, once


def test_extension_prefix_sums_scaling(benchmark, rng):
    """HMM vs flat-UMM prefix sums across latency — the same shape as
    the sum (Table I), transferred to a harder primitive."""

    def run():
        n, p, d, w = 1 << 12, 512, 8, 16
        vals = rng.normal(size=n)
        rows = []
        for l in (8, 64, 256):
            flat = UMM(MachineParams(width=w, latency=l)).prefix_sums(vals, p)
            hier = HMM(
                HMMParams(num_dmms=d, width=w, global_latency=l)
            ).prefix_sums(vals, p)
            assert np.allclose(flat[0], np.cumsum(vals))
            assert np.allclose(hier[0], np.cumsum(vals))
            rows.append([l, flat[1].cycles, hier[1].cycles,
                         f"{flat[1].cycles / hier[1].cycles:.2f}x"])
        return rows

    rows = once(benchmark, run)
    emit(
        "extension_prefix_sums",
        "inclusive prefix-sums, n=4096 p=512 w=16 d=8\n"
        + format_rows(["l", "flat UMM", "HMM", "flat/HMM"], rows),
    )
    ratios = [float(r[3][:-1]) for r in rows]
    assert ratios[-1] > ratios[0]  # the HMM's edge grows with latency
    assert ratios[-1] > 2.0


def test_extension_permutation(benchmark, rng):
    """Conflict-free offline permutation vs the naive schedule on random
    and adversarial permutations (the experiment of ref [19])."""

    def run():
        n, w, p, l = 1 << 10, 16, 128, 16
        adversarial = (np.arange(n) % (n // w)) * w + np.arange(n) // (n // w)
        random_perm = rng.permutation(n)
        rows = []
        for name, perm in (("random", random_perm), ("adversarial", adversarial)):
            cycles = {}
            for sched_name, scheduler in (
                ("naive", naive_permutation_schedule),
                ("conflict-free", conflict_free_permutation_schedule),
            ):
                eng = MachineEngine(MP(width=w, latency=l), DMMBankPolicy())
                a = eng.array_from(np.arange(n, dtype=float))
                b = eng.alloc(n)
                schedule = scheduler(perm, w)
                report = eng.launch(permutation_kernel(a, b, perm, schedule), p)
                expected = np.empty(n)
                expected[perm] = np.arange(n)
                assert np.allclose(b.to_numpy(), expected)
                cycles[sched_name] = report.cycles
            rows.append([
                name,
                cycles["naive"],
                cycles["conflict-free"],
                f"{cycles['naive'] / cycles['conflict-free']:.2f}x",
            ])
        return rows

    rows = once(benchmark, run)
    emit(
        "extension_permutation",
        "offline permutation on the DMM, n=1024 w=16 p=128 l=16\n"
        + format_rows(["permutation", "naive", "conflict-free", "speed-up"], rows),
    )
    adversarial_speedup = float(rows[1][3][:-1])
    assert adversarial_speedup > 3.0
    # The conflict-free schedule costs the same on any permutation.
    assert abs(rows[0][2] - rows[1][2]) <= 2


def test_extension_matmul_scaling(benchmark, rng):
    """Tiled matmul: time scales down with d (tiles are independent)."""

    def run():
        m, w = 32, 8
        a = rng.normal(size=(m, m))
        b = rng.normal(size=(m, m))
        rows = []
        for d in (1, 2, 4):
            eng = HMMEngine(HMMParams(num_dmms=d, width=w, global_latency=32))
            c, report = hmm_matmul(eng, a, b)
            assert np.allclose(c, a @ b)
            rows.append([d, report.cycles])
        return rows

    rows = once(benchmark, run)
    emit(
        "extension_matmul",
        "32x32 tiled matmul, w=8 l=32, one warp per DMM\n"
        + format_rows(["d", "time units"], rows),
    )
    assert rows[0][1] > 1.7 * rows[1][1]
    assert rows[1][1] > 1.5 * rows[2][1]


def test_extension_string_matching(benchmark, rng):
    """Approximate string matching (ref [18]): the flat machines pay
    ~l per anti-diagonal; the HMM's chunked DP drops that to 1."""
    from repro.core.kernels.string_matching import (
        flat_approximate_match,
        hmm_approximate_match,
        reference_approximate_match,
    )
    from repro.machine.policy import UMMGroupPolicy
    from repro.params import HMMParams as HP

    def run():
        m, n, w, p = 8, 512, 8, 64
        pv = rng.integers(0, 4, m).astype(float)
        tv = rng.integers(0, 4, n).astype(float)
        ref = reference_approximate_match(pv, tv)
        rows = []
        for l in (8, 64, 256):
            eng = MachineEngine(MP(width=w, latency=l), UMMGroupPolicy())
            out_f, rf = flat_approximate_match(eng, pv, tv, p)
            heng = HMMEngine(HP(num_dmms=8, width=w, global_latency=l))
            out_h, rh = hmm_approximate_match(heng, pv, tv, p)
            assert np.allclose(out_f, ref) and np.allclose(out_h, ref)
            rows.append([l, rf.cycles, rh.cycles,
                         f"{rf.cycles / rh.cycles:.1f}x"])
        return rows

    rows = once(benchmark, run)
    emit(
        "extension_string_matching",
        "approximate matching, m=8 n=512 w=8 p=64 d=8\n"
        + format_rows(["l", "flat UMM", "HMM", "flat/HMM"], rows),
    )
    ratios = [float(r[3][:-1]) for r in rows]
    assert all(r > 5 for r in ratios)
    assert ratios[-1] > ratios[0]  # the edge grows with latency


def test_extension_sorting(benchmark, rng):
    """Bitonic sort: chunk stages in shared memory vs all-global."""
    from repro.core.kernels.sorting import flat_bitonic_sort, hmm_bitonic_sort
    from repro.machine.policy import UMMGroupPolicy
    from repro.params import HMMParams as HP

    def run():
        n, w, p = 1 << 10, 8, 256
        vals = rng.normal(size=n)
        rows = []
        for l in (8, 64, 256):
            eng = MachineEngine(MP(width=w, latency=l), UMMGroupPolicy())
            out_f, rf = flat_bitonic_sort(eng, vals, p)
            heng = HMMEngine(HP(num_dmms=8, width=w, global_latency=l))
            out_h, rh = hmm_bitonic_sort(heng, vals, p)
            assert np.allclose(out_f, np.sort(vals))
            assert np.allclose(out_h, np.sort(vals))
            rows.append([l, rf.cycles, rh.cycles,
                         f"{rf.cycles / rh.cycles:.2f}x"])
        return rows

    rows = once(benchmark, run)
    emit(
        "extension_sorting",
        "bitonic sort, n=1024 w=8 p=256 d=8\n"
        + format_rows(["l", "flat UMM", "HMM", "flat/HMM"], rows),
    )
    ratios = [float(r[3][:-1]) for r in rows]
    # The HMM still pays l on its O(log^2 d) cross-chunk stages, so the
    # edge is a roughly constant ~3x here rather than growing with l.
    assert all(r > 2.0 for r in ratios)


def test_extension_matvec(benchmark, rng):
    """Dense matvec: staging x into the shared memories (HMM) vs
    re-reading it from global memory (flat)."""
    from repro.core.kernels.matvec import flat_matvec, hmm_matvec
    from repro.machine.policy import UMMGroupPolicy
    from repro.params import HMMParams as HP

    def run():
        m = n = 64
        A = rng.normal(size=(m, n))
        x = rng.normal(size=n)
        rows = []
        for l in (8, 64, 256):
            eng = MachineEngine(MP(width=8, latency=l), UMMGroupPolicy())
            yf, rf = flat_matvec(eng, A, x, 64)
            heng = HMMEngine(HP(num_dmms=8, width=8, global_latency=l))
            yh, rh = hmm_matvec(heng, A, x, 64)
            assert np.allclose(yf, A @ x) and np.allclose(yh, A @ x)
            rows.append([l, rf.cycles, rh.cycles,
                         f"{rf.cycles / rh.cycles:.2f}x"])
        return rows

    rows = once(benchmark, run)
    emit(
        "extension_matvec",
        "64x64 dense matvec, w=8 p=64 d=8\n"
        + format_rows(["l", "flat UMM", "HMM", "flat/HMM"], rows),
    )
    ratios = [float(r[3][:-1]) for r in rows]
    assert all(r > 1.5 for r in ratios)


def test_extension_histogram(benchmark, rng):
    """Private-histogram scatter: exact counts at every skew; the racy
    naive kernel loses updates and is flagged by the race detector."""
    from repro import TraceRecorder
    from repro.core.kernels.histogram import hmm_histogram, hmm_histogram_racy
    from repro.params import HMMParams as HP

    def run():
        n, bins = 1 << 10, 16
        rows = []
        for skew, data in (
            ("uniform", rng.integers(0, bins, n).astype(float)),
            ("zipf-ish", np.minimum(
                rng.geometric(0.4, n) - 1, bins - 1).astype(float)),
            ("all-hot", np.zeros(n)),
        ):
            eng = HMMEngine(HP(num_dmms=8, width=8, global_latency=32))
            counts, report = hmm_histogram(eng, data, bins)
            ref = np.bincount(data.astype(int), minlength=bins)
            assert np.allclose(counts, ref), skew
            tr = TraceRecorder()
            eng2 = HMMEngine(HP(num_dmms=8, width=8, global_latency=32))
            racy_counts, _ = hmm_histogram_racy(eng2, data, bins, 64, trace=tr)
            rows.append([
                skew, int(counts.sum()), report.cycles,
                int(racy_counts.sum()), len(tr.detect_races()),
            ])
        return rows

    rows = once(benchmark, run)
    emit(
        "extension_histogram",
        "histogram of 1024 items into 16 bins, d=8 w=8 l=32\n"
        + format_rows(
            ["skew", "exact total", "time units", "racy total", "races flagged"],
            rows,
        ),
    )
    for skew, exact, _cycles, racy, races in rows:
        assert exact == 1024
        assert racy < 1024  # the naive kernel always loses updates here
        assert races > 0
