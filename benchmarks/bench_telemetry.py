"""Streaming telemetry overhead under zipfian load — the ≤5% claim.

The telemetry subsystem rides along with every request the cluster
serves: each shard samples its metrics into ring-buffer time series,
the router multiplexes every shard's event feed onto one ordered
``/v1/events`` stream, and a live SSE consumer tails it — all while
the closed-loop load generator drives the ring.  None of that may
meaningfully tax the serving path.

Two configurations of the same deployment shape (subprocess shards —
real parallelism, like production — behind an in-process router,
caches off so both runs are compute-bound and deterministic):

* **telemetry-off** — shards launched with ``--no-telemetry``, router
  with ``multiplex=False``: the pre-telemetry serving path.
* **telemetry-on** — recorders sampling on every shard, the shard
  feeds multiplexed onto the router stream, and a live SSE subscriber
  consuming it for the whole run (the worst case: streaming writes
  interleave with request relay on the router's loop).

Acceptance: the telemetry-on configuration keeps at least 95% of the
telemetry-off throughput (``overhead_pct <= 5``).  Both runs must end
with zero client-visible errors, and the SSE consumer must actually
have received events (otherwise the "overhead" run measured nothing).
"""

import tempfile
import threading
from pathlib import Path

from repro.cluster.loadgen import drive_url
from repro.cluster.supervisor import BackgroundRouter, ClusterSupervisor
from repro.service.client import ServiceClient
from repro.telemetry import sse_events

from _util import emit, format_rows, once, write_bench_json

SHARDS = 2
CLIENTS = 16
DURATION_S = 3.0
WARM_S = 1.5
ROUNDS = 3
ZIPF_S = 2.5
SEED = 7

MAX_OVERHEAD_PCT = 5.0
MIN_STREAMED_EVENTS = 10


def _best_drive(url: str) -> "tuple[object, list[object]]":
    """Warm once, then best-of-``ROUNDS`` closed-loop runs."""
    drive_url(url, duration=WARM_S, clients=CLIENTS,
              zipf_s=ZIPF_S, seed=SEED)
    runs = [
        drive_url(url, duration=DURATION_S, clients=CLIENTS,
                  zipf_s=ZIPF_S, seed=SEED)
        for _ in range(ROUNDS)
    ]
    return max(runs, key=lambda r: r.rps), runs


def _run_config(store_root: Path, *, telemetry: bool) -> dict:
    extra = [] if telemetry else ["--no-telemetry"]
    out: dict = {}
    with ClusterSupervisor(SHARDS, store_root=store_root, cache=False,
                           extra_args=extra) as sup:
        with BackgroundRouter(sup.shard_urls, port=0,
                              multiplex=telemetry) as router:
            consumer = None
            streamed = {"events": 0}
            if telemetry:
                def consume() -> None:
                    # Runs until the router drains: the stream delivers
                    # the router.drain sentinel, then the server closes
                    # the connection and the generator ends.
                    for _ in sse_events(router.url, timeout=120.0):
                        streamed["events"] += 1

                consumer = threading.Thread(target=consume, daemon=True,
                                            name="bench-telemetry-sse")
                consumer.start()
            best, runs = _best_drive(router.url)
            assert best.errors == 0, best.errors
            if telemetry:
                out["events_emitted"] = (
                    ServiceClient(router.url, retries=1).metrics()
                    .get("cluster", {}).get("events", {}).get("emitted", 0))
        if consumer is not None:
            consumer.join(timeout=30)
            out["events_streamed"] = streamed["events"]
    out["best"] = best
    out["all_rps"] = [round(r.rps, 1) for r in runs]
    return out


def _run_comparison() -> dict:
    with tempfile.TemporaryDirectory(prefix="bench-telemetry-") as tmp:
        off = _run_config(Path(tmp) / "off", telemetry=False)
        on = _run_config(Path(tmp) / "on", telemetry=True)

    off_rps, on_rps = off["best"].rps, on["best"].rps
    rows = [off["best"].row("telemetry-off"), on["best"].row("telemetry-on")]
    rows[0]["rounds"] = rows[1]["rounds"] = ROUNDS
    return {
        "rows": rows,
        "off_rps": off_rps,
        "on_rps": on_rps,
        "off_all_rps": off["all_rps"],
        "on_all_rps": on["all_rps"],
        "overhead_pct": max(0.0, 100.0 * (off_rps - on_rps) / off_rps),
        "events_emitted": on["events_emitted"],
        "events_streamed": on["events_streamed"],
    }


def test_telemetry_overhead(benchmark):
    result = once(benchmark, _run_comparison)

    overhead = result["overhead_pct"]
    table = format_rows(
        ["config", "rps", "p50_ms", "p95_ms", "requests", "errors"],
        [[r["name"], r["rps"], r["p50_ms"], r["p95_ms"],
          r["requests"], r["errors"]] for r in result["rows"]],
    )
    emit(
        "telemetry",
        f"streaming telemetry overhead: {SHARDS} subprocess shards, "
        f"{CLIENTS} clients, best of {ROUNDS}x{DURATION_S:g}s, "
        f"zipf s={ZIPF_S}, seed={SEED}\n\n{table}\n\n"
        f"overhead: {overhead:.2f}% of telemetry-off rps "
        f"(budget {MAX_OVERHEAD_PCT:g}%)\n"
        f"events: emitted={result['events_emitted']} "
        f"streamed-live={result['events_streamed']}",
    )

    assert result["events_streamed"] >= MIN_STREAMED_EVENTS, result
    passed = overhead <= MAX_OVERHEAD_PCT
    write_bench_json(
        "telemetry",
        config={
            "shards": SHARDS, "clients": CLIENTS,
            "duration_s": DURATION_S, "rounds": ROUNDS,
            "zipf_s": ZIPF_S, "seed": SEED,
        },
        rows=result["rows"],
        metrics={
            "off_rps": round(result["off_rps"], 1),
            "on_rps": round(result["on_rps"], 1),
            "overhead_pct": round(overhead, 2),
            "events_emitted": result["events_emitted"],
            "events_streamed": result["events_streamed"],
        },
        criteria={
            "max_overhead_pct": MAX_OVERHEAD_PCT,
            "min_streamed_events": MIN_STREAMED_EVENTS,
            "pass": bool(passed),
        },
    )
    assert passed, (result["off_rps"], result["on_rps"], overhead)
