"""Table I, row "Sum" — measured time units on every model vs the paper's
closed forms.

For each model the sweep measures simulator time units, fits them against
the Table I terms (non-negative least squares), and prints measured vs
predicted rows.  Reproduction criteria: R^2 >= 0.98, fitted coefficients
O(1), and the orderings the paper claims (HMM < DMM/UMM at high latency;
the HMM's latency term vanishing once p >= lw).

The grid sweeps route through the sweep executor (``jobs="auto"``,
persistent cache), sharing cache entries with ``python -m
repro.experiments`` — a warm benchmark rerun re-measures nothing.
"""

from functools import partial

import pytest

from repro import HMM, UMM, HMMParams, MachineParams
from repro.analysis.costmodel import SUM_FORMULAS
from repro.analysis.fitting import fit_terms
from repro.analysis.sweeps import run_sweep
from repro.analysis.terms import Params
from repro.experiments.table1 import SUM_GRID, measure_sum, sum_task

from _util import emit, format_rows, once

SEED = 20130520

#: The sweep grid: paper-shaped parameters scaled to simulator size
#: (shared with the experiments CLI, so the cache is too).
GRID = SUM_GRID
POINTS = [Params(**q) for q in GRID]


def _sweep(model: str) -> tuple[list[Params], list[int]]:
    rows = run_sweep(
        partial(sum_task, model=model, seed=SEED, mode="batch"),
        POINTS,
        jobs="auto",
        cache=True,
        mode="batch",
        label=f"bench/table1-sum/{model}",
    )
    return [r.params for r in rows], [r.cycles for r in rows]


@pytest.mark.parametrize("model", ["sequential", "pram", "umm", "dmm", "hmm"])
def test_table1_sum_shape(benchmark, model):
    points, measured = once(benchmark, _sweep, model)
    formula = SUM_FORMULAS[model]
    fit = fit_terms(formula, points, measured)

    rows = []
    for q, t in zip(points, measured):
        rows.append(
            [q.n, q.p, q.l, t, f"{formula(q):.0f}", f"{t / formula(q):.2f}"]
        )
    emit(
        f"table1_sum_{model}",
        f"model: {model}   formula: {formula.text()}\n"
        + fit.describe()
        + "\n"
        + format_rows(["n", "p", "l", "measured", "unit-coef pred", "ratio"], rows),
    )

    assert fit.r_squared >= 0.98, fit.describe()
    # Fitted coefficients stay O(1): no hidden super-constant factors.
    # (The log-n coefficient also absorbs the algorithms' fixed phase
    # overheads, so it runs a little above the others.)
    assert all(c <= 12.0 for c in fit.coefficients), fit.describe()


def test_table1_sum_model_ordering(benchmark, rng):
    """The whole-table ordering at a paper-scale point: PRAM <= HMM <=
    DMM/UMM <= sequential (each inequality strict at GPU parameters)."""

    def run():
        q = dict(n=1 << 13, p=1024, w=16, l=64, d=8)
        vals = rng.normal(size=q["n"])
        return {
            m: measure_sum(m, q, vals, mode="batch")
            for m in ("sequential", "pram", "umm", "dmm", "hmm")
        }

    cycles = once(benchmark, run)
    emit(
        "table1_sum_ordering",
        format_rows(
            ["model", "time units (n=8192, p=1024, w=16, l=64, d=8)"],
            sorted(cycles.items(), key=lambda kv: kv[1]),
        ),
    )
    assert cycles["pram"] < cycles["hmm"]
    assert cycles["hmm"] < cycles["umm"]
    assert cycles["umm"] < cycles["sequential"]
    assert cycles["hmm"] < cycles["dmm"]


def test_table1_sum_hmm_latency_term_vanishes(benchmark, rng):
    """Theorem 7: once p >= lw the nl/p term is hidden by bandwidth —
    quadrupling l barely moves the HMM time, while the flat UMM time
    scales with l·log n."""

    def run():
        n, p, w, d = 1 << 14, 4096, 16, 16
        vals = rng.normal(size=n)
        out = {}
        for l in (64, 256):
            hmm = HMM(HMMParams(num_dmms=d, width=w, global_latency=l))
            out[("hmm", l)] = hmm.sum(vals, p)[1].cycles
            umm = UMM(MachineParams(width=w, latency=l))
            out[("umm", l)] = umm.sum(vals, p)[1].cycles
        return out

    out = once(benchmark, run)
    hmm_growth = out[("hmm", 256)] / out[("hmm", 64)]
    umm_growth = out[("umm", 256)] / out[("umm", 64)]
    emit(
        "table1_sum_latency_hiding",
        format_rows(
            ["machine", "l=64", "l=256", "growth"],
            [
                ["hmm", out[("hmm", 64)], out[("hmm", 256)], f"{hmm_growth:.2f}x"],
                ["umm", out[("umm", 64)], out[("umm", 256)], f"{umm_growth:.2f}x"],
            ],
        ),
    )
    assert hmm_growth < 1.9  # bounded: nl/p <= n/w once p >= lw
    assert umm_growth > 2.1  # the l·log n term scales with l
    assert hmm_growth + 0.4 < umm_growth
