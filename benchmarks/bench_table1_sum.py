"""Table I, row "Sum" — measured time units on every model vs the paper's
closed forms.

For each model the sweep measures simulator time units, fits them against
the Table I terms (non-negative least squares), and prints measured vs
predicted rows.  Reproduction criteria: R^2 >= 0.98, fitted coefficients
O(1), and the orderings the paper claims (HMM < DMM/UMM at high latency;
the HMM's latency term vanishing once p >= lw).
"""

import numpy as np
import pytest

from repro import DMM, HMM, PRAM, SequentialMachine, UMM, HMMParams, MachineParams
from repro.analysis.costmodel import SUM_FORMULAS
from repro.analysis.fitting import fit_terms
from repro.analysis.terms import Params

from _util import emit, format_rows, once

#: The sweep grid: paper-shaped parameters scaled to simulator size.
GRID = [
    dict(n=n, p=p, w=16, l=l, d=8)
    for n in (1 << 10, 1 << 12, 1 << 13)
    for p in (64, 256, 1024)
    for l in (16, 128)
]


def _measure_model(model: str, q: dict, vals: np.ndarray) -> int:
    n, p, w, l, d = q["n"], q["p"], q["w"], q["l"], q["d"]
    if model == "sequential":
        return SequentialMachine().sum(vals).cycles
    if model == "pram":
        return PRAM(p).sum(vals).cycles
    if model == "dmm":
        return DMM(MachineParams(width=w, latency=l)).sum(vals, p)[1].cycles
    if model == "umm":
        return UMM(MachineParams(width=w, latency=l)).sum(vals, p)[1].cycles
    if model == "hmm":
        machine = HMM(HMMParams(num_dmms=d, width=w, global_latency=l))
        return machine.sum(vals, p)[1].cycles
    raise ValueError(model)


def _sweep(model: str, rng) -> tuple[list[Params], list[int]]:
    points, measured = [], []
    for q in GRID:
        vals = rng.normal(size=q["n"])
        points.append(Params(**q))
        measured.append(_measure_model(model, q, vals))
    return points, measured


@pytest.mark.parametrize("model", ["sequential", "pram", "umm", "dmm", "hmm"])
def test_table1_sum_shape(benchmark, model, rng):
    points, measured = once(benchmark, _sweep, model, rng)
    formula = SUM_FORMULAS[model]
    fit = fit_terms(formula, points, measured)

    rows = []
    for q, t in zip(points, measured):
        rows.append(
            [q.n, q.p, q.l, t, f"{formula(q):.0f}", f"{t / formula(q):.2f}"]
        )
    emit(
        f"table1_sum_{model}",
        f"model: {model}   formula: {formula.text()}\n"
        + fit.describe()
        + "\n"
        + format_rows(["n", "p", "l", "measured", "unit-coef pred", "ratio"], rows),
    )

    assert fit.r_squared >= 0.98, fit.describe()
    # Fitted coefficients stay O(1): no hidden super-constant factors.
    # (The log-n coefficient also absorbs the algorithms' fixed phase
    # overheads, so it runs a little above the others.)
    assert all(c <= 12.0 for c in fit.coefficients), fit.describe()


def test_table1_sum_model_ordering(benchmark, rng):
    """The whole-table ordering at a paper-scale point: PRAM <= HMM <=
    DMM/UMM <= sequential (each inequality strict at GPU parameters)."""

    def run():
        q = dict(n=1 << 13, p=1024, w=16, l=64, d=8)
        vals = rng.normal(size=q["n"])
        return {
            m: _measure_model(m, q, vals)
            for m in ("sequential", "pram", "umm", "dmm", "hmm")
        }

    cycles = once(benchmark, run)
    emit(
        "table1_sum_ordering",
        format_rows(
            ["model", "time units (n=8192, p=1024, w=16, l=64, d=8)"],
            sorted(cycles.items(), key=lambda kv: kv[1]),
        ),
    )
    assert cycles["pram"] < cycles["hmm"]
    assert cycles["hmm"] < cycles["umm"]
    assert cycles["umm"] < cycles["sequential"]
    assert cycles["hmm"] < cycles["dmm"]


def test_table1_sum_hmm_latency_term_vanishes(benchmark, rng):
    """Theorem 7: once p >= lw the nl/p term is hidden by bandwidth —
    quadrupling l barely moves the HMM time, while the flat UMM time
    scales with l·log n."""

    def run():
        n, p, w, d = 1 << 14, 4096, 16, 16
        vals = rng.normal(size=n)
        out = {}
        for l in (64, 256):
            hmm = HMM(HMMParams(num_dmms=d, width=w, global_latency=l))
            out[("hmm", l)] = hmm.sum(vals, p)[1].cycles
            umm = UMM(MachineParams(width=w, latency=l))
            out[("umm", l)] = umm.sum(vals, p)[1].cycles
        return out

    out = once(benchmark, run)
    hmm_growth = out[("hmm", 256)] / out[("hmm", 64)]
    umm_growth = out[("umm", 256)] / out[("umm", 64)]
    emit(
        "table1_sum_latency_hiding",
        format_rows(
            ["machine", "l=64", "l=256", "growth"],
            [
                ["hmm", out[("hmm", 64)], out[("hmm", 256)], f"{hmm_growth:.2f}x"],
                ["umm", out[("umm", 64)], out[("umm", 256)], f"{umm_growth:.2f}x"],
            ],
        ),
    )
    assert hmm_growth < 1.9  # bounded: nl/p <= n/w once p >= lw
    assert umm_growth > 2.1  # the l·log n term scales with l
    assert hmm_growth + 0.4 < umm_growth
