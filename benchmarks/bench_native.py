"""Native compiled backend vs. the pure-Python hot loops.

The native backend moves the three mechanical loops — the replay
pricer's heap event loop, the batch engine's wave/port scans, and the
per-policy slot counting — into a small C library compiled on demand
with the system ``cc``.  Semantics stay in Python; the contract is
*bit-identical* results (asserted per point here and exhaustively in
``tests/native/``).  This bench records the two speedups the backend
exists for:

* ``event_loop`` — warm re-pricing of a captured trace across a
  latency sweep: the evaluator's decode and slot tables are cached, so
  this isolates the heap event loop itself.  Target ≥ 5x.
* ``repricing_cold`` — a fresh :class:`ReplayCostEvaluator` per
  measurement (decode + slot counting + pricing), the cold cost a
  sweep pays on first touch of a trace.  Target ≥ 3x.

Artifacts:

* ``benchmarks/out/native.txt`` — human-readable comparison table;
* ``BENCH_native.json`` (repo root) — machine-readable record with the
  pass/fail criteria.
"""

import os
import time

import numpy as np
import pytest

from _util import emit, format_rows, write_bench_json
from repro import HMM, HMMParams
from repro.machine.policy import DMMBankPolicy
from repro.machine.replay import (
    ReplayCostEvaluator,
    default_store,
    reset_default_store,
)
from repro.native import native_available, native_kernels

pytestmark = pytest.mark.skipif(
    not native_available(), reason="no usable C compiler on this host"
)

#: Figure-4-shaped workload, sized so the op stream is long enough for
#: loop cost to dominate: 8 DMMs, 128 warps, ~6k trace ops.
PARAMS = dict(num_dmms=8, width=4, global_latency=32, shared_latency=2)
N = 16384
NUM_THREADS = 512
LATENCIES = tuple(range(2, 66, 2))
COLD_LATENCIES = LATENCIES[:8]

MIN_EVENT_LOOP_SPEEDUP = 5.0
MIN_COLD_REPRICING_SPEEDUP = 3.0

RNG = np.random.default_rng(20130520)
VALUES = RNG.standard_normal(N)


@pytest.fixture(autouse=True)
def _isolated_store(tmp_path):
    """Private artifact store; leave the process-wide override as found."""
    saved = os.environ.get("REPRO_STORE_DIR")
    os.environ["REPRO_STORE_DIR"] = str(tmp_path / "store")
    reset_default_store()
    yield
    if saved is None:
        os.environ.pop("REPRO_STORE_DIR", None)
    else:
        os.environ["REPRO_STORE_DIR"] = saved
    reset_default_store()


def _capture_trace():
    """Capture one HMM sum trace and return the stored object."""
    params = HMMParams(**PARAMS)
    HMM(params, mode="replay").sum(VALUES, NUM_THREADS)  # capture
    HMM(params, mode="replay").sum(VALUES, NUM_THREADS)  # hit: register key
    store = default_store()
    fulls = [k for keys in store._keys_by_struct.values() for k in keys]
    assert fulls, "trace capture did not land in the store"
    return store._ns.get(fulls[0])


def _sweep_kwargs(n_units, latency):
    return dict(
        latencies=[latency] * n_units,
        policies=[DMMBankPolicy()] * n_units,
        pipelined=[True] * n_units,
    )


def _warm_sweep(trace, backend):
    """Latency sweep on a warmed evaluator; returns (seconds, cycles)."""
    n = len(trace.meta["unit_names"])
    ev = ReplayCostEvaluator(trace, backend=backend)
    ev.evaluate(**_sweep_kwargs(n, LATENCIES[0]))  # warm decode + tables
    t0 = time.perf_counter()
    cycles = [ev.evaluate(**_sweep_kwargs(n, l))[0].cycles
              for l in LATENCIES]
    return time.perf_counter() - t0, cycles


def _cold_sweep(trace, backend):
    """Fresh evaluator + short sweep; returns (seconds, cycles)."""
    n = len(trace.meta["unit_names"])
    t0 = time.perf_counter()
    ev = ReplayCostEvaluator(trace, backend=backend)
    cycles = [ev.evaluate(**_sweep_kwargs(n, l))[0].cycles
              for l in COLD_LATENCIES]
    return time.perf_counter() - t0, cycles


def test_native_backend_speedup():
    """Native heap loop ≥ 5x, cold re-pricing ≥ 3x, at identical cycles."""
    trace = _capture_trace()
    assert native_kernels() is not None  # build outside the timed region

    t_warm_p, c_warm_p = _warm_sweep(trace, "python")
    t_warm_n, c_warm_n = _warm_sweep(trace, "native")
    assert c_warm_p == c_warm_n, "backends disagree on the warm sweep"

    t_cold_p, c_cold_p = _cold_sweep(trace, "python")
    t_cold_n, c_cold_n = _cold_sweep(trace, "native")
    assert c_cold_p == c_cold_n, "backends disagree on the cold sweep"

    rows = [
        {
            "scenario": "event_loop",
            "points": len(LATENCIES),
            "python_ms": round(t_warm_p * 1e3, 1),
            "native_ms": round(t_warm_n * 1e3, 1),
            "speedup": round(t_warm_p / t_warm_n, 1),
            "cycles_first_last": [c_warm_p[0], c_warm_p[-1]],
        },
        {
            "scenario": "repricing_cold",
            "points": len(COLD_LATENCIES),
            "python_ms": round(t_cold_p * 1e3, 1),
            "native_ms": round(t_cold_n * 1e3, 1),
            "speedup": round(t_cold_p / t_cold_n, 1),
            "cycles_first_last": [c_cold_p[0], c_cold_p[-1]],
        },
    ]
    metrics = {
        "event_loop_speedup": rows[0]["speedup"],
        "cold_repricing_speedup": rows[1]["speedup"],
        "trace_ops": int(len(trace.op_warp)),
        "equivalence": True,  # asserted above, per point
    }

    emit("native", format_rows(
        ["scenario", "points", "python ms", "native ms", "speedup"],
        [(r["scenario"], r["points"], r["python_ms"], r["native_ms"],
          f"{r['speedup']}x") for r in rows],
    ))

    record = write_bench_json(
        "native",
        config={
            **PARAMS,
            "n": N,
            "num_threads": NUM_THREADS,
            "latency_points": len(LATENCIES),
            "cold_latency_points": len(COLD_LATENCIES),
        },
        rows=rows,
        metrics=metrics,
        criteria={
            "min_event_loop_speedup": MIN_EVENT_LOOP_SPEEDUP,
            "min_cold_repricing_speedup": MIN_COLD_REPRICING_SPEEDUP,
            "pass": (
                metrics["event_loop_speedup"] >= MIN_EVENT_LOOP_SPEEDUP
                and metrics["cold_repricing_speedup"]
                >= MIN_COLD_REPRICING_SPEEDUP
            ),
        },
    )
    assert record["criteria"]["pass"], (
        f"native speedups {metrics['event_loop_speedup']}x warm / "
        f"{metrics['cold_repricing_speedup']}x cold below targets "
        f"({MIN_EVENT_LOOP_SPEEDUP}x / {MIN_COLD_REPRICING_SPEEDUP}x)")


def test_speed_native_warm_point(benchmark):
    """pytest-benchmark row: one native re-pricing of the trace."""
    trace = _capture_trace()
    n = len(trace.meta["unit_names"])
    ev = ReplayCostEvaluator(trace, backend="native")
    ev.evaluate(**_sweep_kwargs(n, 2))  # warm build + decode + tables

    def run():
        return ev.evaluate(**_sweep_kwargs(n, 77))[0]

    result = benchmark(run)
    assert result.cycles > 0
