"""Simulator throughput — wall-clock cost of the simulation itself.

Not a paper artifact: these benchmarks track the speed of the
discrete-event engine (warp transactions per second) so regressions in
the simulator's own performance are visible.  pytest-benchmark runs
these with proper repetition since they are cheap and deterministic.
"""

import numpy as np
import pytest

from repro import HMM, UMM, HMMParams, MachineParams
from repro.machine.engine import MachineEngine
from repro.machine.policy import UMMGroupPolicy
from repro.core.kernels.contiguous import contiguous_read


def test_speed_contiguous_read(benchmark):
    """Raw transaction throughput of the flat engine."""
    eng = MachineEngine(MachineParams(width=32, latency=100), UMMGroupPolicy())
    a = eng.alloc(1 << 14)

    def run():
        return eng.launch(contiguous_read(a, 1 << 14), 1024).cycles

    cycles = benchmark(run)
    assert cycles > 0


def test_speed_hmm_sum(benchmark, rng):
    """End-to-end HMM sum including allocation (the common usage)."""
    vals = rng.normal(size=1 << 12)
    machine = HMM(HMMParams(num_dmms=8, width=32, global_latency=200))

    def run():
        return machine.sum(vals, 512)

    total, report = benchmark(run)
    assert np.isclose(total, vals.sum())


def test_speed_hmm_convolution(benchmark, rng):
    x = rng.normal(size=16)
    y = rng.normal(size=(1 << 10) + 15)
    machine = HMM(HMMParams(num_dmms=8, width=32, global_latency=200))

    def run():
        return machine.convolve(x, y, 1024)

    z, report = benchmark(run)
    assert np.allclose(z, np.correlate(y, x, "valid"))


# -- batch vs event ----------------------------------------------------------
#
# The vectorized batch engine must agree with the event scheduler on
# every cycle count while being substantially faster on the regular
# workloads it is built for.  These benchmarks time both engines on the
# same launches, assert the cycle counts match, and persist the
# comparison table to benchmarks/out/engine_speed.txt.

import time

from _util import emit, format_rows, write_bench_json
from repro.core.kernels.hmm_sum import hmm_sum
from repro.machine.hmm import HMMEngine
from repro.machine.policy import DMMBankPolicy


def _best_of(fn, reps=3):
    best = None
    result = None
    for _ in range(reps):
        t0 = time.perf_counter()
        result = fn()
        dt = time.perf_counter() - t0
        best = dt if best is None or dt < best else best
    return best, result


def _contiguous_case(policy, n, p, mode):
    eng = MachineEngine(MachineParams(width=32, latency=100), policy(), mode=mode)
    a = eng.alloc(n)
    return _best_of(lambda: eng.launch(contiguous_read(a, n), p).cycles)


def _hmm_sum_case(vals, p, mode):
    def run():
        eng = HMMEngine(
            HMMParams(num_dmms=8, width=32, global_latency=200), mode=mode
        )
        total, report = hmm_sum(eng, vals, p)
        return total, report.cycles

    return _best_of(run)


def test_speed_contiguous_read_batch(benchmark):
    """Transaction throughput of the batch engine on the same launch."""
    eng = MachineEngine(
        MachineParams(width=32, latency=100), UMMGroupPolicy(), mode="batch"
    )
    a = eng.alloc(1 << 14)

    def run():
        return eng.launch(contiguous_read(a, 1 << 14), 1024).cycles

    cycles = benchmark(run)
    assert cycles > 0


def test_batch_vs_event_comparison(rng):
    """Wall-clock comparison table: batch speedup at identical cycles."""
    records = []

    for policy in (UMMGroupPolicy, DMMBankPolicy):
        for n_log in (16, 18):
            n, p = 1 << n_log, 1024
            t_ev, c_ev = _contiguous_case(policy, n, p, "event")
            t_ba, c_ba = _contiguous_case(policy, n, p, "batch")
            assert c_ba == c_ev
            records.append({
                "workload": f"contiguous_read[{policy().name}] "
                            f"n=2^{n_log} p={p}",
                "event_ms": round(t_ev * 1e3, 2),
                "batch_ms": round(t_ba * 1e3, 2),
                "speedup": round(t_ev / t_ba, 2),
                "cycles": c_ev,
            })

    for n_log in (18, 20):
        vals = rng.normal(size=1 << n_log)
        t_ev, (total_ev, c_ev) = _hmm_sum_case(vals, 512, "event")
        t_ba, (total_ba, c_ba) = _hmm_sum_case(vals, 512, "batch")
        assert c_ba == c_ev
        assert total_ba == total_ev
        records.append({
            "workload": f"hmm_sum n=2^{n_log} p=512",
            "event_ms": round(t_ev * 1e3, 2),
            "batch_ms": round(t_ba * 1e3, 2),
            "speedup": round(t_ev / t_ba, 2),
            "cycles": c_ev,
        })

    emit(
        "engine_speed",
        format_rows(
            ["workload", "event ms", "batch ms", "speedup", "cycles"],
            [(r["workload"], f"{r['event_ms']:.1f}", f"{r['batch_ms']:.1f}",
              f"{r['speedup']:.1f}x", r["cycles"]) for r in records],
        ),
    )
    speedups = [r["speedup"] for r in records]
    write_bench_json(
        "engine_speed",
        config={"reps": 3, "workloads": [r["workload"] for r in records]},
        rows=records,
        metrics={
            "min_speedup": min(speedups),
            "max_speedup": max(speedups),
        },
        criteria={
            # Golden equivalence is the hard criterion (asserted above);
            # the batch engine must also not be slower overall.
            "cycles_identical": True,
            "min_speedup_floor": 1.0,
            "pass": bool(min(speedups) >= 1.0),
        },
    )
