"""Simulator throughput — wall-clock cost of the simulation itself.

Not a paper artifact: these benchmarks track the speed of the
discrete-event engine (warp transactions per second) so regressions in
the simulator's own performance are visible.  pytest-benchmark runs
these with proper repetition since they are cheap and deterministic.
"""

import numpy as np
import pytest

from repro import HMM, UMM, HMMParams, MachineParams
from repro.machine.engine import MachineEngine
from repro.machine.policy import UMMGroupPolicy
from repro.core.kernels.contiguous import contiguous_read


def test_speed_contiguous_read(benchmark):
    """Raw transaction throughput of the flat engine."""
    eng = MachineEngine(MachineParams(width=32, latency=100), UMMGroupPolicy())
    a = eng.alloc(1 << 14)

    def run():
        return eng.launch(contiguous_read(a, 1 << 14), 1024).cycles

    cycles = benchmark(run)
    assert cycles > 0


def test_speed_hmm_sum(benchmark, rng):
    """End-to-end HMM sum including allocation (the common usage)."""
    vals = rng.normal(size=1 << 12)
    machine = HMM(HMMParams(num_dmms=8, width=32, global_latency=200))

    def run():
        return machine.sum(vals, 512)

    total, report = benchmark(run)
    assert np.isclose(total, vals.sum())


def test_speed_hmm_convolution(benchmark, rng):
    x = rng.normal(size=16)
    y = rng.normal(size=(1 << 10) + 15)
    machine = HMM(HMMParams(num_dmms=8, width=32, global_latency=200))

    def run():
        return machine.convolve(x, y, 1024)

    z, report = benchmark(run)
    assert np.allclose(z, np.correlate(y, x, "valid"))
