"""Machine-checking the tuner's ``conflict-free`` certificates (PR 9).

The demo tasks that claim ``conflict_certificate`` promise that their
winning configuration admits zero avoidable conflicted transactions and
that the claim is oblivious (input-independent).  This file discharges
the promise two ways: end-to-end through :func:`repro.tuner.tune`
(the search must terminate on the certificate), and directly through
the trace-level pass in :mod:`repro.analysis.certify` — the
"machine-checked, not author-asserted" half the demos docstring points
at.
"""

import numpy as np
import pytest

from repro.analysis.certify import certify_launch
from repro.machine.engine import MachineEngine
from repro.machine.policy import DMMBankPolicy
from repro.machine.replay import reset_default_store
from repro.params import MachineParams
from repro.tuner import TASKS, get_task, tune
from repro.core.kernels.conflict_free import (
    flat_cf_sort,
    generalized_permutation_schedule,
    oblivious_permutation_kernel,
)


@pytest.fixture(autouse=True)
def _isolated_stores(tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_TRACE_STORE_DIR", str(tmp_path / "traces"))
    monkeypatch.setenv("REPRO_TUNE_CACHE_DIR", str(tmp_path / "tune_cache"))
    reset_default_store()
    yield
    reset_default_store()


SORT_SHAPE = {"w": 8, "n": 128}
PERM_SHAPE = {"w": 8, "n": 128}


class TestSortTask:
    def test_tuner_certifies_conflict_free_network(self):
        report = tune("sort", shape=SORT_SHAPE, latencies=(4,))
        assert report.best.config["network"] == "conflict-free"
        assert report.certificate == "conflict-free"
        assert report.certified
        assert report.improvement > 1.0
        assert report.equivalent
        # Never more work than the (tiny) space; the early-exit path
        # itself is pinned by the transpose tests in test_tuner.py.
        assert report.evaluations <= get_task("sort").space(SORT_SHAPE).size

    def test_task_is_replay_backed(self):
        report = tune("sort", shape=SORT_SHAPE, latencies=(4,),
                      mode="auto")
        assert report.mode == "replay"
        # The conflict-free winner rides the replay engine; the naive
        # baseline lives in a refused module and falls back to event.
        assert report.best.extra["engine"].startswith("replay")


class TestMachineCheckedCertificates:
    """certify_launch re-proves each task's certificate claim."""

    def test_all_certificate_tasks_declare_obliviousness(self):
        claimants = [t for t in TASKS.values() if t.conflict_certificate]
        assert {t.name for t in claimants} >= {"sort", "permutation"}
        assert all(t.oblivious for t in claimants)

    def test_sort_winner_certified(self):
        w, n = SORT_SHAPE["w"], SORT_SHAPE["n"]
        params = MachineParams(width=w, latency=4)

        def run(rng, trace):
            eng = MachineEngine(params, DMMBankPolicy(), name="dmm")
            flat_cf_sort(eng, rng.standard_normal(n), min(4 * w, n),
                         fused=False, trace=trace)

        report = certify_launch(run, width=w)
        assert report.certified, report.describe()

    def test_permutation_winner_certified(self):
        w, n = PERM_SHAPE["w"], PERM_SHAPE["n"]
        params = MachineParams(width=w, latency=4)
        i = np.arange(n, dtype=np.int64)
        perm = (i % w) * (n // w) + i // w  # the task's adversarial target
        sched = generalized_permutation_schedule(perm, w)

        def run(rng, trace):
            eng = MachineEngine(params, DMMBankPolicy(), name="dmm")
            a = eng.array_from(rng.standard_normal(n), "a")
            b = eng.alloc(n, "b")
            eng.launch(oblivious_permutation_kernel(a, b, perm, sched),
                       min(8 * w, n), trace=trace)

        report = certify_launch(run, width=w)
        assert report.certified, report.describe()

    def test_naive_baseline_fails_the_same_check(self):
        """The check has teeth: the conflicted baseline is refused."""
        from repro.core.kernels.sorting import flat_bitonic_sort

        w, n = SORT_SHAPE["w"], SORT_SHAPE["n"]
        params = MachineParams(width=w, latency=4)

        def run(rng, trace):
            eng = MachineEngine(params, DMMBankPolicy(), name="dmm")
            flat_bitonic_sort(eng, rng.standard_normal(n), min(4 * w, n),
                              trace=trace)

        report = certify_launch(run, width=w)
        assert report.oblivious
        assert not report.certified
        assert report.avoidable_excess_slots > 0
