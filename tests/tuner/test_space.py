"""Parameter spaces: grids, sampling, neighborhoods, validation."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.tuner.space import Axis, ParamSpace


@pytest.fixture
def space() -> ParamSpace:
    return ParamSpace([
        Axis("pad", (0, 1, 2)),
        Axis("skew", (0, 1)),
        Axis("dispatch", ("fifo", "round-robin")),
    ])


class TestAxis:
    def test_rejects_empty_and_duplicates(self):
        with pytest.raises(ConfigurationError):
            Axis("pad", ())
        with pytest.raises(ConfigurationError):
            Axis("pad", (1, 1))
        with pytest.raises(ConfigurationError):
            Axis("", (1,))

    def test_index_of(self):
        axis = Axis("pad", (0, 2, 4))
        assert axis.index_of(4) == 2
        with pytest.raises(ConfigurationError):
            axis.index_of(3)


class TestParamSpace:
    def test_size_and_grid(self, space):
        assert space.size == 12
        grid = list(space.grid())
        assert len(grid) == 12
        # Row-major in axis order, all distinct.
        assert grid[0] == {"pad": 0, "skew": 0, "dispatch": "fifo"}
        assert grid[-1] == {"pad": 2, "skew": 1, "dispatch": "round-robin"}
        assert len({tuple(sorted(c.items())) for c in grid}) == 12

    def test_validate(self, space):
        space.validate({"pad": 1, "skew": 0, "dispatch": "fifo"})
        with pytest.raises(ConfigurationError):
            space.validate({"pad": 1, "skew": 0})  # missing axis
        with pytest.raises(ConfigurationError):
            space.validate({"pad": 9, "skew": 0, "dispatch": "fifo"})

    def test_sample_without_replacement(self, space):
        rng = np.random.default_rng(0)
        sampled = space.sample(12, rng)
        assert len({tuple(sorted(c.items())) for c in sampled}) == 12
        # Oversampling clamps to the grid size.
        assert len(space.sample(99, rng)) == 12
        for c in sampled:
            space.validate(c)

    def test_sample_deterministic(self, space):
        a = space.sample(5, np.random.default_rng(7))
        b = space.sample(5, np.random.default_rng(7))
        assert a == b

    def test_neighbors(self, space):
        corner = {"pad": 0, "skew": 0, "dispatch": "fifo"}
        moves = space.neighbors(corner)
        assert {"pad": 1, "skew": 0, "dispatch": "fifo"} in moves
        assert len(moves) == 3  # one step up each axis, no step down
        middle = {"pad": 1, "skew": 0, "dispatch": "fifo"}
        assert len(space.neighbors(middle)) == 4

    def test_duplicate_axis_names_rejected(self):
        with pytest.raises(ConfigurationError):
            ParamSpace([Axis("p", (1,)), Axis("p", (2,))])
        with pytest.raises(ConfigurationError):
            ParamSpace([])

    def test_roundtrip_indices(self, space):
        for config in space.grid():
            assert space.config_at(space.indices_of(config)) == config
