"""End-to-end autotuner: demo tasks, certificates, modes, CLI."""

import json

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.machine.replay import reset_default_store
from repro.tuner import TASKS, get_task, resolve_tune_mode, tune
from repro.tuner.__main__ import main as tuner_main
from repro.tuner.demos import run_config

#: Small transpose shape: 4 tiles of 4x4, 12-point layout space.
SHAPE = {"w": 4, "d": 2, "m": 8}
LATS = (3, 9)


@pytest.fixture(autouse=True)
def _isolated_stores(tmp_path, monkeypatch):
    """Private trace store and tune cache per test."""
    monkeypatch.setenv("REPRO_TRACE_STORE_DIR", str(tmp_path / "traces"))
    monkeypatch.setenv("REPRO_TUNE_CACHE_DIR", str(tmp_path / "tune_cache"))
    reset_default_store()
    yield
    reset_default_store()


def tune_transpose(**kw):
    kw.setdefault("shape", SHAPE)
    kw.setdefault("latencies", LATS)
    return tune("transpose", **kw)


class TestTranspose:
    def test_finds_conflict_free_layout(self):
        report = tune_transpose()
        # The acceptance property: the seeded stride-w conflict is
        # real, and the tuner removes every avoidable DMM slot.
        assert report.baseline.extra["shared_excess_slots"] > 0
        assert report.best.extra["shared_excess_slots"] == 0
        assert report.best.config["pad"] == 1 or report.best.config["skew"] > 0
        assert report.best.cost < report.baseline.cost
        assert report.improvement > 1.0
        assert report.certificate == "conflict-free"
        assert report.certified

    def test_transformed_kernel_output_identical(self):
        """The tuned layout changes where tile cells live, not what the
        kernel computes: bitwise-identical transpose output."""
        report = tune_transpose()
        task = get_task("transpose")
        base_out, _, _ = task.run(report.baseline.config, SHAPE, LATS[0],
                                  "batch")
        best_out, _, _ = task.run(report.best.config, SHAPE, LATS[0],
                                  "batch")
        assert np.array_equal(base_out, best_out)
        # And it really is the transpose of the input matrix.
        from repro.tuner.demos import _transpose_matrix

        assert np.array_equal(best_out, _transpose_matrix(SHAPE).T)
        assert report.equivalent

    def test_replay_and_event_costs_agree(self):
        by_mode = {m: tune_transpose(mode=m, cache=False)
                   for m in ("replay", "event", "batch")}
        costs = {m: r.best.cost for m, r in by_mode.items()}
        assert len(set(costs.values())) == 1, costs
        assert len({r.best.cycles[str(LATS[0])]
                    for r in by_mode.values()}) == 1
        # Replay actually engaged (capture on first sight of a layout).
        assert by_mode["replay"].best.extra["engine"].startswith("replay")

    def test_advice_verdicts_flip(self):
        report = tune_transpose()
        before = report.advice_before
        after = report.advice_after
        assert any("shared" in f for f in before["findings"])
        shared = [u for name, u in after["units"].items()
                  if name.startswith("shared")]
        assert shared
        assert all(u["efficiency"] == 1.0 for u in shared)

    def test_history_and_report_dict(self):
        report = tune_transpose()
        assert report.history[0][0] == {"pad": 0, "skew": 0}  # baseline first
        assert report.evaluations == len(report.history)
        d = report.to_dict()
        json.dumps(d)  # wire-safe
        assert d["task"] == "transpose"
        assert d["certificate"] == "conflict-free"
        assert d["best"]["config"] == report.best.config
        text = report.render()
        assert "certified optimal early" in text
        assert "outputs equivalent: yes" in text


class TestCertificates:
    def test_early_exit_skips_rest_of_space(self):
        # Greedy from the conflicted baseline steps straight into a
        # conflict-free neighbour; the certificate must stop the search
        # well before the 12-config space is exhausted.
        report = tune_transpose(strategy="greedy", seed=0)
        assert report.certificate == "conflict-free"
        space = get_task("transpose").space(SHAPE)
        assert report.evaluations < space.size

    def test_sum_has_lower_bound_certificate_path(self):
        task = get_task("sum")
        shape = task.shape({"n": 256})
        assert task.lower_bound(shape, 4) is not None
        report = tune("sum", shape={"n": 256}, latencies=(4,))
        # Raising p toward p >= lw must beat the p=16 baseline.
        assert report.best.config["p"] > report.baseline.config["p"]
        assert report.improvement > 1.0
        assert report.equivalent  # same sum, any occupancy
        if report.certificate is not None:
            assert report.certificate == "lower-bound"

    def test_occupancy_task_never_conflict_certified(self):
        # Every sum candidate is conflict-free; stopping on that would
        # freeze the baseline. The task must not claim the certificate.
        assert not get_task("sum").conflict_certificate
        report = tune("sum", shape={"n": 256}, latencies=(4,))
        assert report.certificate != "conflict-free"


class TestModesAndFallback:
    def test_auto_mode_resolution(self):
        assert resolve_tune_mode(get_task("transpose"), "auto") == "replay"
        assert resolve_tune_mode(get_task("sum"), "auto") == "replay"
        assert resolve_tune_mode(get_task("gather"), "auto") == "batch"
        # PR 9: the permutation task rides the oblivious offline kernel
        # (the schedule is launch-closure data), so auto resolves to
        # replay — as does the new sort task.
        assert resolve_tune_mode(get_task("permutation"), "auto") == "replay"
        assert resolve_tune_mode(get_task("sort"), "auto") == "replay"
        assert resolve_tune_mode(get_task("gather"), "event") == "event"

    def test_gather_refuses_replay_but_stays_correct(self):
        shape = {"n": 64}
        forced = tune("gather", shape=shape, latencies=(4,), mode="replay")
        auto = tune("gather", shape=shape, latencies=(4,), mode="auto")
        # The refusal registry routes the data-dependent kernel to the
        # exact event engine; costs match the batch-backed auto run.
        assert forced.best.extra["engine"] == "replay-refused"
        assert auto.mode == "batch"
        assert forced.best.cost == auto.best.cost
        assert forced.best.config == auto.best.config

    def test_permutation_conflict_free_schedule_wins(self):
        report = tune("permutation", shape={"n": 128}, latencies=(8,))
        assert report.best.config["schedule"] == "conflict-free"
        assert report.improvement > 1.0
        assert report.equivalent
        assert report.certificate == "conflict-free"


class TestValidation:
    def test_rejects_unknowns(self):
        with pytest.raises(ConfigurationError):
            tune("fft")
        with pytest.raises(ConfigurationError):
            tune("transpose", strategy="gradient-descent")
        with pytest.raises(ConfigurationError):
            tune("transpose", latencies=(0,))
        with pytest.raises(ConfigurationError):
            tune("transpose", shape={"k": 3})
        with pytest.raises(ConfigurationError):
            get_task("transpose").shape({"m": 0})

    def test_budget_is_respected(self):
        report = tune_transpose(strategy="random", budget=3, seed=1)
        assert report.evaluations <= 3

    def test_cache_reuse_gives_identical_report(self):
        first = tune_transpose()
        second = tune_transpose()
        assert second.best.config == first.best.config
        assert second.best.cost == first.best.cost
        assert second.history == first.history


class TestCLI:
    def test_list(self, capsys):
        assert tuner_main(["--list"]) == 0
        out = capsys.readouterr().out
        for name in TASKS:
            assert name in out

    def test_tune_text(self, capsys):
        rc = tuner_main([
            "transpose", "--shape", "w=4", "d=2", "m=8",
            "--latencies", "3", "--no-cache",
        ])
        assert rc == 0
        out = capsys.readouterr().out
        assert "tune transpose" in out
        assert "certified optimal early" in out

    def test_tune_json(self, capsys):
        rc = tuner_main([
            "transpose", "--shape", "w=4", "d=2", "m=8",
            "--latencies", "3", "--json", "--no-cache",
            "--strategy", "greedy", "--budget", "6",
        ])
        assert rc == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["task"] == "transpose"
        assert payload["best"]["extra"]["shared_excess_slots"] == 0

    def test_bad_shape_is_error_exit(self, capsys):
        rc = tuner_main([
            "permutation", "--shape", "n=7", "--no-cache", "--latencies", "4",
        ])
        assert rc == 2
        assert "error:" in capsys.readouterr().err
