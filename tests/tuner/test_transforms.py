"""Layout transforms and the transparent array wrapper."""

import numpy as np
import pytest

from repro.errors import AddressError, ConfigurationError
from repro.machine.memory import MemorySpace
from repro.tuner.transforms import (
    Compose,
    Identity,
    Pad,
    Permute,
    Skew,
    compose,
    wrap,
)

from conftest import make_dmm


def _injective(transform, logical):
    idx = np.arange(logical, dtype=np.int64)
    mapped = transform.map_indices(idx)
    assert len(np.unique(mapped)) == logical
    assert mapped.min() >= 0
    assert mapped.max() < transform.physical_size(logical)


class TestTransforms:
    def test_identity(self):
        t = Identity()
        idx = np.arange(10, dtype=np.int64)
        assert np.array_equal(t.map_indices(idx), idx)
        assert t.physical_size(10) == 10

    @pytest.mark.parametrize("pad", [0, 1, 3])
    def test_pad_injective_and_sized(self, pad):
        t = Pad(row_length=8, pad=pad)
        _injective(t, 64)
        assert t.physical_size(64) == 8 * (8 + pad)
        # Row r starts pad cells later per row.
        assert t.map_indices(np.asarray([8]))[0] == 8 + pad

    @pytest.mark.parametrize("skew", [0, 1, 3, 7])
    def test_skew_injective_size_preserving(self, skew):
        t = Skew(row_length=8, skew=skew)
        _injective(t, 64)
        assert t.physical_size(64) == 64
        # Stays within the row: row r occupies [8r, 8r+8).
        mapped = t.map_indices(np.arange(64, dtype=np.int64))
        assert np.array_equal(mapped // 8, np.arange(64) // 8)

    def test_skew_spreads_columns_across_banks(self):
        # A logical column under skew=1 hits every bank once — the
        # model-level fact the transpose fix relies on.
        t = Skew(row_length=8, skew=1)
        col = np.arange(8, dtype=np.int64) * 8  # logical column 0
        banks = t.map_indices(col) % 8
        assert sorted(banks.tolist()) == list(range(8))

    def test_permute(self):
        t = Permute(perm=tuple(reversed(range(6))))
        _injective(t, 6)
        assert t.map_indices(np.asarray([0]))[0] == 5
        with pytest.raises(ConfigurationError):
            Permute(perm=(0, 0, 1))
        with pytest.raises(AddressError):
            t.map_indices(np.asarray([6]))

    def test_compose_and_helper(self):
        t = compose(Skew(8, 1), Pad(8, 2))
        assert isinstance(t, Compose)
        _injective(t, 64)
        # pad applies to the skewed (physical-row) index.
        idx = np.arange(64, dtype=np.int64)
        expect = Pad(8, 2).map_indices(Skew(8, 1).map_indices(idx))
        assert np.array_equal(t.map_indices(idx), expect)
        assert compose(Identity(), Identity()).physical_size(5) == 5
        assert isinstance(compose(), Identity)

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            Pad(row_length=0, pad=1)
        with pytest.raises(ConfigurationError):
            Pad(row_length=8, pad=-1)
        with pytest.raises(ConfigurationError):
            Skew(row_length=8, skew=8)

    def test_transforms_are_hashable(self):
        # Frozen dataclasses over primitive fields: usable as replay
        # launch-key feed values and dict keys alike.
        assert hash(Pad(8, 1)) != hash(Pad(8, 2))
        assert Pad(8, 1) == Pad(8, 1)
        hash(Compose(Skew(8, 1), Pad(8, 1)))


class TestTransformedArray:
    def test_wrapper_matches_handle_interface(self):
        space = MemorySpace("m")
        handle = space.alloc(9 * 8, "tile")
        arr = wrap(handle, Pad(8, 1), size=64, name="tile")
        assert arr.space is space
        assert len(arr) == 64
        assert "pad" in arr.describe()
        vals = np.arange(64, dtype=np.float64)
        arr.set(vals)
        assert np.array_equal(arr.to_numpy(), vals)
        arr.fill(3.0)
        assert np.array_equal(arr.to_numpy(), np.full(64, 3.0))

    def test_addresses_are_remapped(self):
        space = MemorySpace("m")
        handle = space.alloc(9 * 8, "tile")
        arr = wrap(handle, Pad(8, 1), size=64)
        # Logical row 1, col 0 lives at physical cell 9.
        assert arr.addresses(np.asarray([8]))[0] == handle.base + 9

    def test_bounds_checked_on_logical_size(self):
        space = MemorySpace("m")
        handle = space.alloc(100, "tile")
        arr = wrap(handle, Identity(), size=64)
        with pytest.raises(AddressError):
            arr.addresses(np.asarray([64]))
        with pytest.raises(AddressError):
            arr.set(np.zeros(65))

    def test_wrap_rejects_undersized_handle(self):
        space = MemorySpace("m")
        handle = space.alloc(64, "tile")
        with pytest.raises(ConfigurationError):
            wrap(handle, Pad(8, 1), size=64)  # needs 72 cells

    def test_kernel_sees_identical_values_under_any_layout(self):
        """A kernel run against a wrapped array computes the same
        result as against a plain handle — the transform only moves
        cells."""
        def doubler(arr, n):
            def program(warp):
                v = yield warp.read(arr, warp.tids % n)
                yield warp.write(arr, warp.tids % n, v * 2.0)
            return program

        results = {}
        for label, transform, phys in (
            ("plain", Identity(), 32),
            ("padded", Pad(8, 1), 36),
            ("skewed", Skew(8, 3), 32),
        ):
            eng = make_dmm(width=8)
            handle = eng.alloc(phys, "a")
            arr = wrap(handle, transform, size=32)
            arr.set(np.arange(32, dtype=np.float64))
            report = eng.launch(doubler(arr, 32), 32)
            results[label] = (arr.to_numpy(), report.cycles)
        base_vals, _ = results["plain"]
        for label in ("padded", "skewed"):
            assert np.array_equal(results[label][0], base_vals), label

    def test_conflicted_column_write_fixed_by_pad_and_skew(self):
        """The bank-conflict arithmetic end to end: a column write is
        w-way conflicted under identity, conflict-free under +1 pad or
        unit skew."""
        def column_write(arr, w):
            def program(warp):
                yield warp.write(arr, warp.tids * w, warp.tids * 1.0)
            return program

        slots = {}
        for label, transform, phys in (
            ("identity", Identity(), 64),
            ("pad1", Pad(8, 1), 72),
            ("skew1", Skew(8, 1), 64),
        ):
            eng = make_dmm(width=8)
            arr = wrap(eng.alloc(phys, "t"), transform, size=64)
            report = eng.launch(column_write(arr, 8), 8)
            slots[label] = report.unit_stats["mem"].slots
        assert slots["identity"] == 8  # full w-way conflict
        assert slots["pad1"] == 1
        assert slots["skew1"] == 1
