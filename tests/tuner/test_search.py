"""Search strategies: convergence, budgets, no re-proposals, determinism."""

import pytest

from repro.errors import ConfigurationError
from repro.tuner.search import (
    STRATEGIES,
    AnnealSearch,
    ExhaustiveSearch,
    GreedySearch,
    RandomSearch,
    make_strategy,
)
from repro.tuner.space import Axis, ParamSpace


@pytest.fixture
def space() -> ParamSpace:
    return ParamSpace([
        Axis("x", tuple(range(6))),
        Axis("y", tuple(range(6))),
    ])


def bowl(config: dict) -> float:
    """Convex synthetic cost: unique optimum at (4, 2)."""
    return (config["x"] - 4) ** 2 + (config["y"] - 2) ** 2 + 1.0


def drive(strategy, cost_fn, max_rounds: int = 200) -> None:
    """Run the ask/tell loop until the strategy stops proposing."""
    for _ in range(max_rounds):
        batch = strategy.propose()
        if not batch:
            return
        for config in batch:
            strategy.observe(config, cost_fn(config))
    raise AssertionError("strategy never terminated")


class TestProtocol:
    @pytest.mark.parametrize("name", STRATEGIES)
    def test_never_reproposes_and_stays_in_budget(self, name, space):
        strategy = make_strategy(name, space, budget=20, seed=3)
        proposed = []
        for _ in range(200):
            batch = strategy.propose()
            if not batch:
                break
            proposed.extend(tuple(sorted(c.items())) for c in batch)
            for config in batch:
                strategy.observe(config, bowl(config))
        assert len(proposed) == len(set(proposed))
        assert strategy.evaluations <= 20
        assert strategy.remaining() == 20 - strategy.evaluations

    @pytest.mark.parametrize("name", STRATEGIES)
    def test_deterministic(self, name, space):
        def run():
            s = make_strategy(name, space, budget=15, seed=11)
            drive(s, bowl)
            return s.best, s.best_cost, sorted(s.seen)

        assert run() == run()

    def test_budget_validation(self, space):
        with pytest.raises(ConfigurationError):
            ExhaustiveSearch(space, budget=0)
        with pytest.raises(ConfigurationError):
            make_strategy("gradient-descent", space)

    def test_best_tracks_minimum(self, space):
        s = ExhaustiveSearch(space)
        drive(s, bowl)
        assert s.seen[
            '{"x": 4, "y": 2}'
        ] == s.best_cost  # json key of the optimum


class TestConvergence:
    def test_exhaustive_finds_optimum_exactly(self, space):
        s = ExhaustiveSearch(space)
        drive(s, bowl)
        assert s.evaluations == space.size
        assert s.best == {"x": 4, "y": 2}
        assert s.best_cost == 1.0

    def test_random_covers_space_without_budget(self, space):
        s = RandomSearch(space, seed=5)
        drive(s, bowl)
        assert s.evaluations == space.size
        assert s.best == {"x": 4, "y": 2}

    def test_greedy_descends_bowl_from_corner(self, space):
        # A convex bowl has no spurious local optima: the hill-climb
        # must walk from (0, 0) to the global optimum well inside the
        # grid-size budget.
        s = GreedySearch(space, budget=30, seed=0, start={"x": 0, "y": 0})
        drive(s, bowl)
        assert s.best == {"x": 4, "y": 2}
        assert s.evaluations <= 30

    def test_anneal_finds_optimum_with_full_budget(self, space):
        s = AnnealSearch(space, seed=2, start={"x": 0, "y": 0})
        drive(s, bowl, max_rounds=space.size + 5)
        assert s.best == {"x": 4, "y": 2}

    def test_greedy_restarts_past_local_optimum(self):
        # x=0 and x=9 are both locally optimal on this 1-D cost; a
        # budget beyond the first basin forces a random restart, which
        # must eventually reach the better basin.
        space = ParamSpace([Axis("x", tuple(range(10)))])
        costs = {0: 5.0, 1: 6.0, 2: 7.0, 3: 8.0, 4: 9.0,
                 5: 9.0, 6: 8.0, 7: 6.0, 8: 4.0, 9: 2.0}
        s = GreedySearch(space, seed=1, start={"x": 1})
        drive(s, lambda c: costs[c["x"]])
        assert s.best == {"x": 9}


class TestStartingPoint:
    def test_greedy_proposes_start_first(self, space):
        start = {"x": 3, "y": 3}
        s = GreedySearch(space, seed=0, start=start)
        assert s.propose() == [start]

    def test_start_validated(self, space):
        with pytest.raises(ConfigurationError):
            GreedySearch(space, start={"x": 99, "y": 0})
        with pytest.raises(ConfigurationError):
            AnnealSearch(space, start={"x": 0})
