"""Machine parameter validation and presets."""

import pytest

from repro.errors import ConfigurationError
from repro.params import (
    FIG4_PARAMS,
    GTX580,
    TINY,
    HMMParams,
    MachineParams,
    is_power_of_two,
    log2_ceil,
    next_power_of_two,
    validate_thread_count,
    warps_for,
)


class TestMachineParams:
    def test_defaults(self):
        p = MachineParams()
        assert p.width == 32 and p.latency == 1
        assert p.w == 32 and p.l == 1  # paper-notation aliases

    def test_width_must_be_power_of_two(self):
        with pytest.raises(ConfigurationError):
            MachineParams(width=12)

    def test_positive_latency(self):
        with pytest.raises(ConfigurationError):
            MachineParams(latency=0)

    def test_with_latency(self):
        p = MachineParams(width=8, latency=2).with_latency(9)
        assert p.latency == 9 and p.width == 8

    def test_frozen(self):
        with pytest.raises(Exception):
            MachineParams().width = 64  # type: ignore[misc]


class TestHMMParams:
    def test_paper_aliases(self):
        p = HMMParams(num_dmms=4, width=8, global_latency=100)
        assert (p.d, p.w, p.l) == (4, 8, 100)

    def test_derived_machines(self):
        p = HMMParams(num_dmms=2, width=8, global_latency=50, shared_latency=3)
        assert p.shared_params() == MachineParams(width=8, latency=3)
        assert p.global_params() == MachineParams(width=8, latency=50)

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            HMMParams(num_dmms=0)
        with pytest.raises(ConfigurationError):
            HMMParams(width=3)
        with pytest.raises(ConfigurationError):
            HMMParams(global_latency=0)
        with pytest.raises(ConfigurationError):
            HMMParams(width=32, max_threads_per_dmm=16)

    def test_with_helpers(self):
        p = HMMParams(num_dmms=2, global_latency=10)
        assert p.with_global_latency(99).global_latency == 99
        assert p.with_num_dmms(7).num_dmms == 7

    def test_presets(self):
        assert GTX580.num_dmms == 16 and GTX580.width == 32
        assert FIG4_PARAMS.width == 4 and FIG4_PARAMS.latency == 5
        assert TINY.num_dmms == 2

    def test_max_threads(self):
        assert GTX580.max_threads() == 16 * 1536
        assert HMMParams().max_threads() is None


class TestHelpers:
    def test_warps_for(self):
        assert warps_for(32, 32) == 1
        assert warps_for(33, 32) == 2
        assert warps_for(1, 32) == 1
        with pytest.raises(ConfigurationError):
            warps_for(0, 32)

    def test_validate_thread_count(self):
        validate_thread_count(64, width=32)
        validate_thread_count(64, width=32, num_dmms=2, require_full_warps=True)
        with pytest.raises(ConfigurationError):
            validate_thread_count(0, width=32)
        with pytest.raises(ConfigurationError):
            validate_thread_count(48, width=32, num_dmms=2, require_full_warps=True)

    def test_log2_ceil(self):
        assert log2_ceil(1) == 0
        assert log2_ceil(2) == 1
        assert log2_ceil(3) == 2
        assert log2_ceil(1024) == 10
        with pytest.raises(ConfigurationError):
            log2_ceil(0)

    def test_power_of_two_helpers(self):
        assert is_power_of_two(8) and not is_power_of_two(6)
        assert not is_power_of_two(0)
        assert next_power_of_two(5) == 8
        assert next_power_of_two(8) == 8
