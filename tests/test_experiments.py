"""The experiment drivers and the ``python -m repro.experiments`` CLI.

These run reduced versions of the full sweeps (the benchmark suite does
the heavy ones); here we check the drivers' plumbing, rendering, and
pass/fail logic.
"""

import numpy as np
import pytest

from repro.experiments.figures import reproduce_figures, run_figure4_example
from repro.experiments.table1 import (
    Table1Result,
    measure_convolution,
    measure_sum,
)
from repro.experiments.table2 import reproduce_table2


class TestMeasureHelpers:
    Q = dict(n=256, k=8, p=32, w=8, l=4, d=2)

    @pytest.mark.parametrize(
        "model", ["sequential", "pram", "dmm", "umm", "hmm"]
    )
    def test_measure_sum_positive(self, model, rng):
        vals = rng.normal(size=self.Q["n"])
        assert measure_sum(model, self.Q, vals) > 0

    @pytest.mark.parametrize(
        "model", ["sequential", "pram", "dmm", "umm", "hmm"]
    )
    def test_measure_conv_positive(self, model, rng):
        x = rng.normal(size=self.Q["k"])
        y = rng.normal(size=self.Q["n"] + self.Q["k"] - 1)
        assert measure_convolution(model, self.Q, x, y) > 0

    def test_unknown_model(self, rng):
        with pytest.raises(ValueError):
            measure_sum("tpu", self.Q, rng.normal(size=16))


class TestFigures:
    def test_figure4_is_eight(self):
        cycles, chart = run_figure4_example()
        assert cycles == 8
        assert "W(0)" in chart

    def test_reproduce_figures_renders(self):
        result = reproduce_figures()
        text = result.render()
        assert result.fig4_cycles == 8
        for token in ("Figure 3", "Figure 4", "Figure 5", "GTX580"):
            assert token in text


class TestCLI:
    def test_figures_subcommand(self, capsys, tmp_path):
        from repro.experiments.__main__ import main

        code = main(["figures", "-o", str(tmp_path)])
        out = capsys.readouterr().out
        assert code == 0
        assert "PASS" in out
        assert (tmp_path / "figures.txt").exists()

    def test_bad_subcommand(self):
        from repro.experiments.__main__ import main

        with pytest.raises(SystemExit):
            main(["nonsense"])

    def test_figures_advise_writes_verdicts(self, capsys, tmp_path):
        from repro.experiments.__main__ import main
        from repro.experiments.figures import FIG4_LATENCY_GRID

        code = main(["figures", "-o", str(tmp_path), "--advise",
                     "--no-cache"])
        out = capsys.readouterr().out
        assert code == 0
        assert "Kernel advisor verdicts" in out
        advise = (tmp_path / "advise.txt").read_text()
        # One verdict line per Figure 4 launch, each with a regime.
        for q in FIG4_LATENCY_GRID:
            assert f"fig4 l={q['l']}" in advise
        assert "-bound" in advise

    def test_advise_without_advisable_launches(self, capsys):
        from repro.experiments.__main__ import main

        assert main(["table2", "--advise", "--no-cache"]) == 0
        out = capsys.readouterr().out
        assert "no advisable launches" in out


class TestTable1ResultLogic:
    def test_all_shapes_hold_thresholds(self):
        from repro.analysis.fitting import FitResult

        good = FitResult(("n",), (1.0,), 0.999, 0.05)
        bad_r2 = FitResult(("n",), (1.0,), 0.5, 0.05)
        bad_coef = FitResult(("n",), (99.0,), 0.999, 0.05)
        base = dict(
            sum_points=[], conv_points=[],
            sum_measured={}, conv_measured={},
        )
        assert Table1Result(
            sum_fits={"m": good}, conv_fits={"m": good}, **base
        ).all_shapes_hold()
        assert not Table1Result(
            sum_fits={"m": bad_r2}, conv_fits={"m": good}, **base
        ).all_shapes_hold()
        assert not Table1Result(
            sum_fits={"m": good}, conv_fits={"m": bad_coef}, **base
        ).all_shapes_hold()


class TestAblationsDriver:
    def test_reproduce_ablations(self):
        from repro.experiments.ablations import reproduce_ablations

        result = reproduce_ablations()
        assert result.mechanisms_all_matter()
        text = result.render()
        for token in ("pipelining", "slot policies", "padding"):
            assert token in text

    def test_cli_ablations_subcommand(self, capsys, tmp_path):
        from repro.experiments.__main__ import main

        code = main(["ablations", "-o", str(tmp_path)])
        assert code == 0
        assert (tmp_path / "ablations.txt").exists()
        assert "PASS" in capsys.readouterr().out


class TestJSONExport:
    def test_json_requires_out(self):
        from repro.experiments.__main__ import main

        with pytest.raises(SystemExit):
            main(["figures", "--json"])

    def test_figures_json(self, capsys, tmp_path):
        import json

        from repro.experiments.__main__ import main

        code = main(["figures", "-o", str(tmp_path), "--json"])
        assert code == 0
        summary = json.loads((tmp_path / "summary.json").read_text())
        assert summary["pass"] is True
        assert summary["figure4_cycles"] == 8
        assert summary["seed"] == 20130520


class TestCLISweepFlags:
    """The executor-facing CLI surface: --jobs/--mode/--no-cache/
    --cache-stats, and the documented summary.json schema."""

    @pytest.fixture(autouse=True)
    def _isolated_cache(self, tmp_path, monkeypatch):
        monkeypatch.setenv(
            "REPRO_SWEEP_CACHE_DIR", str(tmp_path / "sweep_cache")
        )

    def test_table2_json_smoke_schema(self, capsys, tmp_path):
        """``table2 -o DIR --json`` exits 0 and writes the documented
        summary.json: the seed, per-model soundness/worst-ratio, and the
        top-level pass flag."""
        import json

        from repro.experiments.__main__ import main

        code = main(["table2", "-o", str(tmp_path), "--json"])
        assert code == 0
        summary = json.loads((tmp_path / "summary.json").read_text())
        assert summary["seed"] == 20130520
        assert summary["pass"] is True
        for problem in ("sum", "convolution"):
            for model in ("pram", "dmm", "umm", "hmm"):
                rep = summary["table2"][problem][model]
                assert rep["sound"] is True
                assert isinstance(rep["worst_ratio"], float)

    def test_figures_parallel_jobs(self, capsys, tmp_path):
        from repro.experiments.__main__ import main

        code = main(["figures", "--jobs", "2", "-o", str(tmp_path)])
        assert code == 0
        assert "PASS" in capsys.readouterr().out

    def test_figures_jobs_auto_and_mode_event(self, capsys):
        from repro.experiments.__main__ import main

        assert main(["figures", "--jobs", "auto", "--mode", "event"]) == 0

    def test_figures_no_cache(self, capsys, tmp_path):
        from repro.experiments.__main__ import main

        code = main(["figures", "--no-cache"])
        assert code == 0
        assert not (tmp_path / "sweep_cache").exists()

    def test_cache_stats_standalone(self, capsys):
        from repro.experiments.__main__ import main

        assert main(["--cache-stats"]) == 0
        assert "sweep cache:" in capsys.readouterr().out

    def test_cache_warm_rerun_identical_artifacts(self, capsys, tmp_path):
        from repro.experiments.__main__ import main

        cold_dir, warm_dir = tmp_path / "cold", tmp_path / "warm"
        assert main(["figures", "-o", str(cold_dir)]) == 0
        assert main(["figures", "-o", str(warm_dir)]) == 0
        capsys.readouterr()
        assert (
            (cold_dir / "figures.txt").read_text()
            == (warm_dir / "figures.txt").read_text()
        )

    def test_bad_jobs_value_rejected(self):
        from repro.experiments.__main__ import main

        with pytest.raises(SystemExit):
            main(["figures", "--jobs", "soon"])

    def test_no_subcommand_without_cache_stats_errors(self):
        from repro.experiments.__main__ import main

        with pytest.raises(SystemExit):
            main([])


class TestFullDrivers:
    """The complete Table I / Table II sweeps (the same runs the CLI and
    the benchmarks make) — slowish but the core reproduction criteria."""

    def test_reproduce_table1_holds(self):
        from repro.experiments.table1 import reproduce_table1

        result = reproduce_table1()
        assert result.all_shapes_hold(), result.render()
        # The HMM sum's nl/p coefficient is the cleanest signal: ~1.
        fit = result.sum_fits["hmm"]
        assert 0.7 <= fit.coefficient_for("nl/p") <= 1.5

    def test_reproduce_table2_holds(self):
        from repro.experiments.table2 import reproduce_table2

        result = reproduce_table2()
        assert result.all_sound_and_tight(), result.render()
        # The PRAM sum is essentially at its bound.
        assert result.sum_reports["pram"].worst_ratio < 2.0
