"""MetricsRecorder: manual-clock sampling, retention rings, and the
persist → load → restore round trip through the artifact store."""

import asyncio

import pytest

from repro.service.clock import ManualClock
from repro.store import ArtifactStore
from repro.telemetry import (
    EventBus,
    MetricsRecorder,
    RingSeries,
    flatten_numeric,
    telemetry_store_key,
)


class TestFlatten:
    def test_numeric_leaves_get_dotted_paths(self):
        snap = {
            "requests_total": 7,
            "cache": {"hit_rate": 0.25, "entries": 4},
            "store": {"sweep": {"hits_local": 2}},
        }
        assert flatten_numeric(snap) == {
            "requests_total": 7.0,
            "cache.hit_rate": 0.25,
            "cache.entries": 4.0,
            "store.sweep.hits_local": 2.0,
        }

    def test_bools_strings_and_lists_are_skipped(self):
        snap = {"ok": True, "name": "svc", "series": [1, 2], "n": 3}
        assert flatten_numeric(snap) == {"n": 3.0}


class TestSampling:
    def test_sample_records_each_leaf_at_the_clock_time(self):
        clock = ManualClock()
        state = {"n": 1}
        rec = MetricsRecorder(lambda: state, clock=clock, retention=10)
        rec.sample()
        clock._now = 2.0
        state["n"] = 5
        rec.sample()
        series = rec.series("n")
        assert list(series.times) == [0.0, 2.0]
        assert list(series.values) == [1.0, 5.0]
        assert rec.values("n") == [1.0, 5.0]
        assert rec.values("missing") == []
        assert rec.samples == 2

    def test_retention_keeps_only_the_last_n(self):
        clock = ManualClock()
        state = {"n": 0}
        rec = MetricsRecorder(lambda: state, clock=clock, retention=3)
        for i in range(6):
            state["n"] = i
            rec.sample()
        assert rec.values("n") == [3.0, 4.0, 5.0]
        assert len(rec.series("n")) == 3

    def test_source_exceptions_are_counted_not_raised(self):
        def broken():
            raise RuntimeError("gauge on fire")

        rec = MetricsRecorder(broken, clock=ManualClock())
        assert rec.sample() == {}
        assert rec.source_errors == 1
        assert rec.samples == 0

    def test_max_series_cap_is_first_observed_wins(self):
        rec = MetricsRecorder(lambda: {"a": 1, "b": 2, "c": 3},
                              clock=ManualClock(), max_series=2)
        rec.sample()
        assert len(rec.series_names()) == 2

    def test_sample_emits_a_bus_event(self):
        clock = ManualClock()
        bus = EventBus(clock=clock)
        rec = MetricsRecorder(lambda: {"n": 1}, clock=clock, bus=bus)
        rec.sample()
        (event,) = bus.since(0)
        assert event["type"] == "sample"
        assert event["data"] == {"t": 0.0, "series": 1, "n": 1}

    def test_invalid_knobs_raise(self):
        with pytest.raises(ValueError):
            MetricsRecorder(dict, resolution_s=0.0)
        with pytest.raises(ValueError):
            MetricsRecorder(dict, retention=0)


class TestRunLoop:
    def test_run_samples_once_per_resolution_until_stopped(self):
        async def main():
            clock = ManualClock()
            rec = MetricsRecorder(lambda: {"n": 1}, resolution_s=1.0,
                                  clock=clock)
            task = asyncio.ensure_future(rec.run())
            await clock.drain()
            assert rec.samples == 0  # nothing before the first tick
            for expected in (1, 2, 3):
                await clock.advance(1.0)
                assert rec.samples == expected
            rec.stop()
            await clock.advance(1.0)
            await task  # exits cleanly, no extra sample
            assert rec.samples == 3

        asyncio.run(main())


class TestPersistence:
    def test_persist_is_a_noop_without_a_store(self):
        rec = MetricsRecorder(lambda: {"n": 1}, clock=ManualClock())
        rec.sample()
        assert rec.persist() is None
        assert rec.restore() is False
        assert rec.snapshot()["persisted"] is False

    def test_persist_load_restore_round_trip(self, tmp_path):
        space = ArtifactStore(tmp_path).namespace("telemetry")
        clock = ManualClock()
        state = {"n": 0}
        rec = MetricsRecorder(lambda: state, clock=clock, retention=10,
                              store_space=space, name="svc")
        for i in range(3):
            clock._now = float(i)
            state["n"] = i * 10
            rec.sample()
        key = rec.persist()
        assert key == telemetry_store_key("svc")

        artifact = MetricsRecorder.load(space, "svc")
        assert artifact["name"] == "svc"
        assert artifact["samples"] == 3
        assert artifact["series"]["n"] == {"t": [0.0, 1.0, 2.0],
                                           "v": [0.0, 10.0, 20.0]}
        assert MetricsRecorder.load(space, "nobody") is None

        fresh = MetricsRecorder(lambda: state, clock=ManualClock(),
                                retention=10, store_space=space, name="svc")
        assert fresh.restore() is True
        assert fresh.values("n") == [0.0, 10.0, 20.0]
        # Live sampling appends after the restored history.
        state["n"] = 99
        fresh.sample()
        assert fresh.values("n") == [0.0, 10.0, 20.0, 99.0]


class TestRingSeries:
    def test_last_and_as_dict(self):
        series = RingSeries(2)
        assert series.last is None
        series.append(1.0, 10.0)
        series.append(2.0005, 20.0)
        series.append(3.0, 30.0)  # evicts the first point
        assert series.last == 30.0
        assert series.as_dict() == {"t": [2.001, 3.0], "v": [20.0, 30.0]}
