"""EventBus: ordering, resume cursors, bounded retention, manual-clock
waits.  Everything here is deterministic — no wall-clock sleeps."""

import asyncio

import pytest

from repro.service.clock import ManualClock
from repro.telemetry import EventBus


def run(coro):
    return asyncio.run(coro)


class TestOrdering:
    def test_seq_starts_at_one_and_is_contiguous(self):
        bus = EventBus(clock=ManualClock())
        emitted = [bus.emit("tick", i=i) for i in range(5)]
        assert [e["seq"] for e in emitted] == [1, 2, 3, 4, 5]
        assert bus.last_seq == 5
        assert bus.since(0) == emitted

    def test_event_shape_and_timestamp_come_from_the_clock(self):
        clock = ManualClock()
        clock._now = 12.5034
        bus = EventBus(clock=clock)
        event = bus.emit("shard.down", shard="http://127.0.0.1:9001")
        assert event == {
            "seq": 1, "ts": 12.503, "type": "shard.down",
            "data": {"shard": "http://127.0.0.1:9001"},
        }

    def test_since_returns_strictly_after_the_cursor(self):
        bus = EventBus(clock=ManualClock())
        for i in range(4):
            bus.emit("tick", i=i)
        tail = bus.since(2)
        assert [e["seq"] for e in tail] == [3, 4]
        assert bus.since(4) == []
        assert [e["seq"] for e in bus.since(0, limit=2)] == [1, 2]


class TestRetention:
    def test_ring_drops_oldest_and_counts_them(self):
        bus = EventBus(capacity=4, clock=ManualClock())
        for i in range(10):
            bus.emit("tick", i=i)
        assert bus.dropped == 6
        assert [e["seq"] for e in bus.since(0)] == [7, 8, 9, 10]
        snap = bus.snapshot()
        assert snap == {
            "emitted": 10, "buffered": 4, "dropped": 6, "capacity": 4,
            "by_type": {"tick": 10},
        }

    def test_capacity_must_be_positive(self):
        with pytest.raises(ValueError):
            EventBus(capacity=0)

    def test_poll_body_cursor_semantics(self):
        bus = EventBus(clock=ManualClock())
        assert bus.poll_body(0, []) == {
            "events": [], "next_from": 0, "last_seq": 0, "dropped": 0,
        }
        bus.emit("a")
        bus.emit("b")
        events = bus.since(0)
        body = bus.poll_body(0, events)
        assert body["next_from"] == 2
        assert body["last_seq"] == 2
        assert body["events"] is events


class TestWaiting:
    def test_wait_since_returns_immediately_when_events_exist(self):
        async def main():
            bus = EventBus(clock=ManualClock())
            bus.emit("ready")
            events = await bus.wait_since(0, timeout_s=60.0)
            assert [e["type"] for e in events] == ["ready"]

        run(main())

    def test_wait_since_wakes_on_emit(self):
        async def main():
            clock = ManualClock()
            bus = EventBus(clock=clock)
            waiter = asyncio.ensure_future(bus.wait_since(0, timeout_s=60.0))
            await clock.drain()
            assert not waiter.done()
            bus.emit("ping", x=1)
            await clock.drain()
            assert waiter.done()
            assert [e["type"] for e in waiter.result()] == ["ping"]

        run(main())

    def test_wait_since_times_out_empty(self):
        async def main():
            clock = ManualClock()
            bus = EventBus(clock=clock)
            waiter = asyncio.ensure_future(bus.wait_since(0, timeout_s=5.0))
            await clock.drain()  # let the waiter park on its timer
            await clock.advance(5.0)
            assert waiter.done()
            assert waiter.result() == []

        run(main())

    def test_zero_timeout_never_parks(self):
        async def main():
            bus = EventBus(clock=ManualClock())
            assert await bus.wait_since(0, timeout_s=0.0) == []

        run(main())
