"""Live ring membership: ``/v1/store/keys``, ``/v1/ring/add`` and
``/v1/ring/drain`` round trips with the hot-artifact handoff."""

import pytest

from repro.cluster.supervisor import BackgroundCluster
from repro.service.client import ServiceClient, ServiceError
from repro.service.server import BackgroundServer

from tests.cluster.util import poll_until


@pytest.fixture
def isolated_store(monkeypatch, tmp_path):
    monkeypatch.setenv("REPRO_STORE_DIR", str(tmp_path / "store"))
    return tmp_path


class TestStoreKeys:
    def test_lists_namespaces_with_their_keys(self, isolated_store):
        with BackgroundServer(cache=True,
                              cache_dir=isolated_store / "cache",
                              telemetry_persist=True) as srv:
            client = ServiceClient(srv.url)
            body = client.store_keys()
            spaces = body["namespaces"]
            assert {"sweep", "trace", "telemetry"} <= set(spaces)
            assert spaces["sweep"] == []
            client.sweep("sum", "hmm", {"p": 64, "n": [512, 1024],
                                        "l": [16]})
            spaces = client.store_keys()["namespaces"]
            assert len(spaces["sweep"]) >= 1
            assert all(len(k) == 64 for k in spaces["sweep"])


class TestRingAdd:
    def test_add_routes_traffic_to_the_new_shard(self, isolated_store):
        with BackgroundCluster(2) as ring:
            client = ServiceClient(ring.url)
            spawned = ring.add_shard()
            assert spawned not in client.metrics()["cluster"]["ring"]["shards"]

            body = client.ring_add(spawned)
            assert body["added"] is True
            assert body["shard"] == spawned
            assert spawned in body["shards"]
            assert abs(sum(body["ownership"].values()) - 1.0) < 0.01

            ringinfo = client.metrics()["cluster"]["ring"]
            assert ringinfo["alive"][spawned] is True
            # The new member serves its share: some spec must route
            # to it and every request still answers.
            for n in (512, 1024, 2048, 4096, 8192, 16384):
                client.cost("sum", "hmm", {"n": n, "p": 64})
            assert client.metrics()["cluster"]["router"]["ring_adds"] == 1

    def test_add_is_idempotent_for_members(self, isolated_store):
        with BackgroundCluster(2) as ring:
            client = ServiceClient(ring.url)
            body = client.ring_add(ring.shard_urls[0])
            assert body == {"added": False, "reason": "already_member",
                            "shards": ring.shard_urls}

    def test_add_refuses_an_unreachable_shard(self, isolated_store):
        with BackgroundCluster(1) as ring:
            client = ServiceClient(ring.url, retries=0)
            with pytest.raises(ServiceError) as err:
                client.ring_add("http://127.0.0.1:9")
            assert err.value.status == 400
            assert err.value.code == "shard_unreachable"

    def test_add_validates_the_url(self, isolated_store):
        with BackgroundCluster(1) as ring:
            client = ServiceClient(ring.url, retries=0)
            for bad in ("ftp://127.0.0.1:80", "http://127.0.0.1",
                        "not a url"):
                with pytest.raises(ServiceError) as err:
                    client.ring_add(bad)
                assert err.value.status == 400


class TestRingDrain:
    def test_drain_hands_off_artifacts_and_removes_the_shard(
            self, isolated_store):
        with BackgroundCluster(2, cache_root=isolated_store / "cache") as ring:
            client = ServiceClient(ring.url)
            # Materialise store artifacts that the drain must hand off.
            client.sweep("sum", "hmm", {"p": 64, "n": [512, 1024],
                                        "l": [16, 64]})
            baseline = {
                n: client.cost("sum", "hmm", {"n": n, "p": 64})["cycles"]
                for n in (512, 1024, 4096)
            }
            # Ring placement depends on the ephemeral ports, so pick a
            # victim that verifiably owns artifacts to hand off.
            victim = next(
                url for url in ring.shard_urls
                if ServiceClient(url).store_keys()["namespaces"]["sweep"])
            body = client.ring_drain(victim)
            assert body["drained"] is True
            assert body["shard"] == victim
            assert victim not in body["shards"]
            handoff = body["handoff"]
            assert handoff["failed"] == 0
            assert handoff["keys"] >= 1
            assert handoff["keys"] == (handoff["pushed"]
                                       + handoff["skipped"])

            ringinfo = client.metrics()["cluster"]["ring"]
            assert victim not in ringinfo["shards"]
            assert victim not in ringinfo["alive"]
            # Every answer is unchanged with the survivor serving alone.
            for n, cycles in baseline.items():
                assert client.cost("sum", "hmm",
                                   {"n": n, "p": 64})["cycles"] == cycles
            router = client.metrics()["cluster"]["router"]
            assert router["ring_drains"] == 1
            assert router["handoff_failures"] == 0

    def test_drain_unknown_shard_is_404(self, isolated_store):
        with BackgroundCluster(2) as ring:
            client = ServiceClient(ring.url, retries=0)
            with pytest.raises(ServiceError) as err:
                client.ring_drain("http://127.0.0.1:9")
            assert err.value.status == 404
            assert err.value.code == "unknown_shard"

    def test_drain_refuses_the_last_shard(self, isolated_store):
        with BackgroundCluster(1) as ring:
            client = ServiceClient(ring.url, retries=0)
            with pytest.raises(ServiceError) as err:
                client.ring_drain(ring.shard_urls[0])
            assert err.value.status == 400
            assert err.value.code == "last_shard"


class TestMembershipEvents:
    def test_add_and_drain_emit_ring_events(self, isolated_store):
        with BackgroundCluster(2, multiplex=True) as ring:
            client = ServiceClient(ring.url)
            spawned = ring.add_shard()
            client.ring_add(spawned)
            client.ring_drain(ring.shard_urls[0])
            events = poll_until(lambda: (
                lambda evs: evs
                if {"ring.add", "ring.drain"} <= {e["type"] for e in evs}
                else None
            )(client.events(from_seq=0, timeout_s=0.0)["events"]))
            assert events is not None
            add = next(e for e in events if e["type"] == "ring.add")
            assert add["data"]["shard"] == spawned
            drain = next(e for e in events if e["type"] == "ring.drain")
            assert drain["data"]["shard"] == ring.shard_urls[0]
            assert drain["data"]["failed"] == 0
            assert drain["data"]["keys"] == (drain["data"]["pushed"]
                                             + drain["data"]["skipped"])
