"""Dashboard rendering is a pure function: golden snapshots + sparkline
units.  Any layout change must update these goldens deliberately."""

from repro.viz import render_dashboard, sparkline

CLUSTER_METRICS = {
    "cluster": {
        "ring": {
            "shards": ["http://127.0.0.1:9001", "http://127.0.0.1:9002"],
            "alive": {"http://127.0.0.1:9001": True,
                      "http://127.0.0.1:9002": False},
            "ownership": {"http://127.0.0.1:9001": 0.53,
                          "http://127.0.0.1:9002": 0.47},
        },
        "router": {"requests_total": 120, "reroutes": 2,
                   "no_live_shard_503": 0},
        "hot": {"hot_keys": {"spec:sum-n4096": 42}, "top_k": 8},
        "events": {"emitted": 57, "dropped": 0},
    },
    "shards": {
        "http://127.0.0.1:9001": {
            "requests_total": 80, "cache": {"hit_rate": 0.5},
            "warming": {"received_stored": 3},
        },
        "http://127.0.0.1:9002": {"error": "connect refused"},
    },
}
CLUSTER_HISTORY = {"rps": {"cluster": [10.0, 20.0, 30.0],
                           "http://127.0.0.1:9001": [5.0, 6.0, 7.0]}}
CLUSTER_EVENTS = [
    {"seq": 56, "ts": 12.3, "type": "shard.down",
     "data": {"shard": "http://127.0.0.1:9002"}},
    {"seq": 57, "ts": 12.5, "type": "sample", "data": {"n": 9}},
]

CLUSTER_GOLDEN = """\
== repro telemetry =============================================
source http://127.0.0.1:8799  shards 1/2 up  requests 120  reroutes 2  503s 0
rps ▁▄█  last 30.0
shard                  state  req  hit%  warm_rx  rps  trend
http://127.0.0.1:9001  up     80   50    3        7.0  ▁▄█
http://127.0.0.1:9002  down   -    -     -        -
hot keys (1/8): 42 spec:sum-n4096
events: 57 emitted, 0 dropped
  #56 12.3s shard.down shard=http://127.0.0.1:9002
  #57 12.5s sample n=9"""

SERVICE_GOLDEN = """\
== repro telemetry =============================================
source http://127.0.0.1:9001  requests 5  rejected 0  uptime 42s
shard    state  req  hit%  warm_rx  rps  trend
service  up     5    100   0        -
events: 3 emitted, 0 dropped"""


class TestGolden:
    def test_cluster_render_matches_golden(self):
        out = render_dashboard(CLUSTER_METRICS,
                               source="http://127.0.0.1:8799",
                               history=CLUSTER_HISTORY,
                               events=CLUSTER_EVENTS)
        assert out == CLUSTER_GOLDEN

    def test_render_is_deterministic(self):
        args = dict(source="http://127.0.0.1:8799",
                    history=CLUSTER_HISTORY, events=CLUSTER_EVENTS)
        assert (render_dashboard(CLUSTER_METRICS, **args)
                == render_dashboard(CLUSTER_METRICS, **args))

    def test_single_service_render_matches_golden(self):
        metrics = {
            "requests_total": 5, "rejected": 0, "uptime_s": 42.0,
            "cache": {"hit_rate": 1.0},
            "warming": {"received_stored": 0},
            "telemetry": {"events": {"emitted": 3, "dropped": 0}},
        }
        out = render_dashboard(metrics, source="http://127.0.0.1:9001")
        assert out == SERVICE_GOLDEN

    def test_long_history_adds_the_rps_chart(self):
        history = {"rps": {"cluster": [10.0, 20.0, 30.0, 40.0, 50.0]}}
        out = render_dashboard(CLUSTER_METRICS, history=history)
        assert "rps" in out
        assert "poll" in out  # the ascii_chart x-label

    def test_long_hot_keys_are_truncated_with_ellipsis(self):
        metrics = {
            "cluster": {
                "ring": {"shards": [], "alive": {}},
                "router": {},
                "hot": {"hot_keys": {"spec:" + "x" * 100: 9}, "top_k": 8},
                "events": {},
            },
            "shards": {},
        }
        out = render_dashboard(metrics)
        (hot_line,) = [ln for ln in out.splitlines()
                       if ln.startswith("hot keys")]
        assert hot_line.endswith("…")
        assert len(hot_line) < 70


class TestSparkline:
    def test_empty_is_empty(self):
        assert sparkline([]) == ""

    def test_flat_series_renders_the_floor_glyph(self):
        assert sparkline([5, 5, 5]) == "▁▁▁"

    def test_ramp_spans_the_glyph_range(self):
        out = sparkline(list(range(1, 10)))
        assert out == "▁▁▂▃▄▅▆▇█"
        assert out[0] == "▁" and out[-1] == "█"

    def test_width_keeps_the_tail(self):
        assert sparkline([0, 0, 0, 9, 9, 9], width=3) == "▁▁▁"

    def test_pinned_scale(self):
        assert sparkline([0.0, 0.5, 1.0], lo=0.0, hi=1.0) == "▁▄█"
        # Values above the pinned ceiling clamp to the top glyph.
        assert sparkline([2.0], lo=0.0, hi=1.0) == "█"
