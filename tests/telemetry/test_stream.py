"""Streaming transports: SSE framing, the drain sentinel, and live
server round trips (SSE and long-poll agree, resume never duplicates)."""

import asyncio

from repro.service.client import ServiceClient
from repro.service.clock import ManualClock
from repro.service.server import BackgroundServer
from repro.telemetry import (
    SSE_HEARTBEAT,
    EventBus,
    poll_events,
    sse_events,
    sse_frame,
    sse_head,
    stream_over_http,
)

from tests.cluster.util import poll_until

COST = {"n": 1024, "p": 64}


class FakeWriter:
    """Collects written bytes; drain is a no-op."""

    def __init__(self) -> None:
        self.chunks: list[bytes] = []

    def write(self, data: bytes) -> None:
        self.chunks.append(data)

    async def drain(self) -> None:
        pass

    @property
    def payload(self) -> bytes:
        return b"".join(self.chunks)


class TestFraming:
    def test_head_has_no_content_length(self):
        head = sse_head()
        assert b"text/event-stream" in head
        assert b"Content-Length" not in head
        assert head.endswith(b"\r\n\r\n")

    def test_frame_carries_the_whole_event_as_data(self):
        event = {"seq": 7, "ts": 1.5, "type": "ping", "data": {"x": 1}}
        frame = sse_frame(event).decode()
        assert frame.startswith("id: 7\nevent: ping\ndata: ")
        assert frame.endswith("\n\n")
        assert '"seq": 7' in frame


class TestStreamOverHttp:
    def test_limit_closes_after_n_events(self):
        async def main():
            clock = ManualClock()
            bus = EventBus(clock=clock)
            for i in range(5):
                bus.emit("tick", i=i)
            writer = FakeWriter()
            sent = await stream_over_http(writer, bus, from_seq=0,
                                          max_events=3)
            assert sent == 3
            expected = sse_head() + b"".join(
                sse_frame(e) for e in bus.since(0, limit=3))
            assert writer.payload == expected

        asyncio.run(main())

    def test_resume_from_seq_skips_delivered_events(self):
        async def main():
            bus = EventBus(clock=ManualClock())
            for i in range(4):
                bus.emit("tick", i=i)
            writer = FakeWriter()
            await stream_over_http(writer, bus, from_seq=2, max_events=2)
            assert writer.payload == sse_head() + b"".join(
                sse_frame(e) for e in bus.since(2))

        asyncio.run(main())

    def test_drain_sentinel_is_the_last_frame(self):
        async def main():
            clock = ManualClock()
            bus = EventBus(clock=clock)
            stop = asyncio.Event()
            bus.emit("server.start")
            # The shutdown ordering both servers use: sentinel first,
            # stop flag second — the open stream must still deliver it.
            bus.emit("server.drain")
            stop.set()
            writer = FakeWriter()
            sent = await stream_over_http(writer, bus, from_seq=0,
                                          stop=stop, heartbeat_s=60.0)
            assert sent == 2
            assert b"event: server.drain" in writer.payload

        asyncio.run(main())

    def test_idle_stream_heartbeats_then_obeys_stop(self):
        async def main():
            clock = ManualClock()
            bus = EventBus(clock=clock)
            stop = asyncio.Event()
            writer = FakeWriter()
            task = asyncio.ensure_future(stream_over_http(
                writer, bus, from_seq=0, stop=stop, heartbeat_s=5.0))
            await clock.drain()  # let the stream park on its idle wait
            await clock.advance(5.0)  # one idle wait elapses
            assert SSE_HEARTBEAT in writer.chunks
            stop.set()
            await clock.advance(5.0)
            assert (await task) == 0

        asyncio.run(main())


class TestLiveServer:
    def test_sse_and_long_poll_agree_and_resume_is_exact(self):
        with BackgroundServer(cache=False,
                              telemetry_resolution_s=0.1) as srv:
            client = ServiceClient(srv.url)
            client.cost("sum", "hmm", COST)

            streamed = list(sse_events(srv.url, from_seq=0, limit=2))
            assert len(streamed) == 2
            assert streamed[0]["type"] == "server.start"

            events, cursor = poll_events(srv.url, client=client)
            assert events[:2] == streamed
            seqs = [e["seq"] for e in events]
            assert seqs == list(range(1, len(seqs) + 1))

            # Resume from the cursor: strictly newer events only.
            more = poll_until(
                lambda: poll_events(srv.url, from_seq=cursor,
                                    client=client)[0])
            assert min(e["seq"] for e in more) == cursor + 1

    def test_long_poll_blocks_until_the_next_event(self):
        with BackgroundServer(cache=False,
                              telemetry_resolution_s=0.2) as srv:
            client = ServiceClient(srv.url)
            cursor = client.events(from_seq=0, timeout_s=0.0)["next_from"]
            # The recorder samples every 0.2 s; a 30 s long poll must
            # return as soon as the next sample lands, not after 30 s.
            body = client.events(from_seq=cursor, timeout_s=30.0)
            assert body["events"]
            assert all(e["seq"] > cursor for e in body["events"])

    def test_events_query_validation_is_400(self):
        from tests.cluster.util import raw_request

        with BackgroundServer(cache=False) as srv:
            status, body = raw_request(
                srv.url, "GET", "/v1/events?from=-1")
            assert status == 400
            status, body = raw_request(
                srv.url, "GET", "/v1/events?limit=0")
            assert status == 400
            assert b"limit" in body
