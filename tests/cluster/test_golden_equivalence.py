"""Golden equivalence: the cluster answers with the *same bytes* as a
single-process service.

Both sides boot cold (fresh result-cache directories) and receive the
identical raw request bytes; assertions compare raw response bodies,
not parsed JSON, because the router's contract is byte-level relay.
Sweep/tune bodies embed per-request cache hit/miss deltas, so each
endpoint comparison uses specs disjoint from the others' — overlap
would hit on the single service's one cache but only sometimes on a
shard's.
"""

import pytest

from repro.cluster.supervisor import BackgroundCluster
from repro.service.server import BackgroundServer

from tests.cluster.util import raw_request

# Disjoint spec families per endpoint (see module docstring).
COST_SPECS = [
    {"kernel": "sum", "model": "hmm", "n": 1024, "p": 64},
    {"kernel": "sum", "model": "hmm", "n": 1024, "p": 64, "w": 16,
     "l": 16, "d": 8, "mode": "batch"},  # same spec, defaults spelled out
    {"kernel": "convolution", "model": "hmm", "n": 4096, "k": 64,
     "p": 128},
    {"kernel": "sum", "model": "dmm", "n": 65536, "p": 256, "w": 32},
]
SWEEP_PAYLOAD = {
    "kernel": "sum", "model": "hmm",
    "axes": {"n": [2048, 8192], "p": [32], "w": [16, 32]},
}
TUNE_PAYLOAD = {"task": "sum", "budget": 6, "strategy": "random",
                "seed": 11}
ADVISE_TARGET = ("/v1/advise?kernel=convolution&model=hmm&n=16384&k=32"
                 "&p=64&w=16&l=16&d=8")
BAD_SPECS = [
    {"kernel": "sum", "model": "hmm", "n": 4096, "p": 64, "w": 5},
    {"kernel": "nope", "model": "hmm", "n": 4096, "p": 64},
    {"kernel": "sum", "model": "hmm", "n": -1, "p": 64},
    "not even an object",
]


@pytest.fixture(scope="module")
def pair(tmp_path_factory):
    root = tmp_path_factory.mktemp("golden")
    with BackgroundServer(cache=True, cache_dir=root / "single") as single:
        with BackgroundCluster(num_shards=3,
                               cache_root=root / "ring") as ring:
            yield single.url, ring.url


def both(pair, method, target, payload=None):
    single_url, ring_url = pair
    return (raw_request(single_url, method, target, payload),
            raw_request(ring_url, method, target, payload))


class TestGoldenBytes:
    def test_cost_bodies_identical(self, pair):
        for spec in COST_SPECS:
            alone, ring = both(pair, "POST", "/v1/cost", spec)
            assert alone == ring, spec
            assert alone[0] == 200

    def test_cost_repeat_hits_cache_identically(self, pair):
        # Second time around the single service hits its cache and the
        # cluster hits the owning shard's — the bytes must not change.
        for spec in COST_SPECS:
            alone, ring = both(pair, "POST", "/v1/cost", spec)
            assert alone == ring
            assert alone[0] == 200

    def test_sweep_bodies_identical_cold_and_warm(self, pair):
        cold_alone, cold_ring = both(pair, "POST", "/v1/sweep",
                                     SWEEP_PAYLOAD)
        assert cold_alone == cold_ring
        assert cold_alone[0] == 200
        assert b'"misses": 4' in cold_alone[1]
        # Identical payload → same routing key → same shard: the rerun
        # is all cache hits on both sides.
        warm_alone, warm_ring = both(pair, "POST", "/v1/sweep",
                                     SWEEP_PAYLOAD)
        assert warm_alone == warm_ring
        assert b'"hits": 4' in warm_alone[1]

    def test_tune_bodies_identical(self, pair):
        alone, ring = both(pair, "POST", "/v1/tune", TUNE_PAYLOAD)
        assert alone == ring
        assert alone[0] == 200

    def test_advise_bodies_identical(self, pair):
        alone, ring = both(pair, "GET", ADVISE_TARGET)
        assert alone == ring
        assert alone[0] == 200


class TestGoldenErrors:
    def test_protocol_errors_identical(self, pair):
        for spec in BAD_SPECS:
            alone, ring = both(pair, "POST", "/v1/cost", spec)
            assert alone == ring, spec
            assert alone[0] == 400

    def test_not_found_identical(self, pair):
        alone, ring = both(pair, "GET", "/v1/definitely-not-a-route")
        assert alone == ring
        assert alone[0] == 404

    def test_method_not_allowed_identical(self, pair):
        alone, ring = both(pair, "GET", "/v1/cost")
        assert alone == ring
        assert alone[0] == 405
        alone, ring = both(pair, "POST", "/healthz")
        assert alone[0] == ring[0] == 405

    def test_advise_wrong_model_identical(self, pair):
        target = "/v1/advise?kernel=sum&model=exact&n=1024&p=64"
        alone, ring = both(pair, "GET", target)
        assert alone == ring
        assert alone[0] == 400
