"""Consistent-hash ring: determinism, succession, stability."""

import pytest

from repro.cluster.ring import HashRing, ring_position

SHARDS = ["http://127.0.0.1:9001", "http://127.0.0.1:9002",
          "http://127.0.0.1:9003"]


class TestRingBasics:
    def test_position_is_deterministic(self):
        assert ring_position("key") == ring_position("key")
        assert ring_position("key") != ring_position("yek")

    def test_same_inputs_same_ring(self):
        a, b = HashRing(SHARDS), HashRing(SHARDS)
        for key in ("k1", "k2", "spec:abc", ""):
            assert a.owners(key, 3) == b.owners(key, 3)

    def test_owners_are_distinct_and_bounded(self):
        ring = HashRing(SHARDS)
        owners = ring.owners("some-key", 3)
        assert len(owners) == 3
        assert len(set(owners)) == 3
        assert set(owners) == set(SHARDS)
        # Asking for more owners than shards returns every shard once.
        assert len(ring.owners("some-key", 10)) == 3

    def test_primary_is_first_of_succession(self):
        ring = HashRing(SHARDS)
        for key in (f"key-{i}" for i in range(50)):
            assert ring.owners(key, 3)[0] == ring.owners(key, 1)[0]

    def test_empty_and_bad_args_rejected(self):
        with pytest.raises(ValueError):
            HashRing([])
        with pytest.raises(ValueError):
            HashRing(SHARDS, vnodes=0)

    def test_duplicate_shards_collapse(self):
        ring = HashRing([SHARDS[0], SHARDS[0], SHARDS[1]])
        assert ring.shards == [SHARDS[0], SHARDS[1]]


class TestStability:
    def test_dead_shard_only_remaps_its_own_keys(self):
        """Losing one shard must not move keys owned by the others."""
        ring = HashRing(SHARDS)
        keys = [f"spec:{i}" for i in range(500)]
        before = {key: ring.owners(key, 1)[0] for key in keys}
        dead = SHARDS[1]
        after = {
            key: ring.owners(key, 1, alive=lambda s: s != dead)[0]
            for key in keys
        }
        for key in keys:
            if before[key] != dead:
                assert after[key] == before[key]
            else:
                assert after[key] != dead
                # The inheriting shard is the key's ring successor.
                assert after[key] == ring.owners(key, 2)[1]

    def test_alive_filter_can_empty_the_ring(self):
        ring = HashRing(SHARDS)
        assert ring.owners("key", 1, alive=lambda s: False) == []

    def test_distribution_is_roughly_even(self):
        ring = HashRing(SHARDS, vnodes=128)
        counts = {shard: 0 for shard in SHARDS}
        for i in range(3000):
            counts[ring.owners(f"key-{i}")[0]] += 1
        for count in counts.values():
            assert 500 < count < 1800  # loose: no shard starves or hogs

    def test_ownership_fractions_sum_to_one(self):
        ring = HashRing(SHARDS)
        own = ring.ownership()
        assert set(own) == set(SHARDS)
        assert abs(sum(own.values()) - 1.0) < 1e-9
        assert all(frac > 0 for frac in own.values())
