"""Hot-key replication and cross-shard cache warming, end to end, plus
the ``/v1/store/push``/``pull`` transfer protocol on a single shard."""

import hashlib
import time

import pytest

from repro.cluster.supervisor import BackgroundCluster
from repro.service.client import ServiceClient, ServiceError
from repro.service.server import BackgroundServer
from repro.store import ArtifactStore

from tests.cluster.util import poll_until

HOT_PARAMS = {"n": 4096, "p": 64}


def _key(text: str) -> str:
    return hashlib.sha256(text.encode()).hexdigest()


class TestWarmingEndToEnd:
    def test_hot_key_is_replicated_and_served_remotely(self, tmp_path):
        with BackgroundCluster(
            num_shards=3, cache_root=tmp_path, replicas=2,
            hot_min_count=2, hot_top_k=4, hot_window_s=2.0,
        ) as ring:
            client = ServiceClient(ring.url)

            def hammer(times: int) -> None:
                for _ in range(times):
                    client.cost("sum", "hmm", HOT_PARAMS)
                    time.sleep(0.02)

            hammer(20)  # promote + give the router a hot-set refresh

            def replicated():
                body = client.metrics()
                warming = body["cluster"]["warming"]
                router = body["cluster"]["router"]
                return (warming["pushes_sent_total"] >= 1
                        and router["warm_headers_set"] >= 1
                        and body)

            body = poll_until(replicated, timeout_s=15.0)
            assert body, "hot key never replicated"

            # A replica now holds the artifact: some shard reports a
            # warm-received entry…
            received = sum(
                shard["warming"]["received_stored"]
                for shard in body["shards"].values()
            )
            assert received >= 1

            # …and continued traffic round-robins onto it, serving the
            # answer from the warmed (remote-pushed) entry.
            def served_remotely():
                hammer(5)
                warming = client.metrics()["cluster"]["warming"]
                return warming["hits_remote_total"] >= 1

            assert poll_until(served_remotely, timeout_s=15.0), \
                "no request was ever served from a warmed replica"

            router = client.metrics()["cluster"]["router"]
            assert router["hot_spread"] >= 1  # traffic actually spread

    def test_cold_keys_are_not_replicated(self, tmp_path):
        with BackgroundCluster(
            num_shards=3, cache_root=tmp_path, replicas=2,
            hot_min_count=1000, hot_window_s=2.0,
        ) as ring:
            client = ServiceClient(ring.url)
            for n in (1024, 2048, 4096):
                client.cost("sum", "hmm", {"n": n, "p": 64})
            body = client.metrics()
            assert body["cluster"]["warming"]["pushes_sent_total"] == 0
            assert body["cluster"]["router"]["warm_headers_set"] == 0


@pytest.fixture()
def shard(tmp_path):
    with BackgroundServer(cache=True, cache_dir=tmp_path / "cache") as srv:
        with ServiceClient(srv.url) as client:
            yield client


@pytest.fixture()
def local_ns(tmp_path):
    """A namespace named like the shard's result cache, in a separate
    directory — the 'sending peer' side of a push."""
    return ArtifactStore(tmp_path / "peer").namespace(
        "sweep", "json", persist=True
    )


def _push_body(ns, key):
    import base64

    blob = ns.get_framed(key)
    assert blob is not None
    return blob, {
        "namespace": "sweep", "key": key,
        "entry": base64.b64encode(blob).decode("ascii"),
    }


class TestPushPullProtocol:
    def test_push_then_pull_round_trips_the_exact_bytes(self, shard,
                                                        local_ns):
        import base64

        key = _key("round-trip")
        local_ns.put(key, {"key": key, "cycles": 42, "extra": {}})
        blob, body = _push_body(local_ns, key)

        reply = shard._request("POST", "/v1/store/push", body)
        assert reply["result"] == "stored"
        pulled = shard._request(
            "GET", f"/v1/store/pull?namespace=sweep&key={key}"
        )
        assert base64.b64decode(pulled["entry"]) == blob

        # Pushing the same entry again is a duplicate, not an error.
        assert shard._request(
            "POST", "/v1/store/push", body
        )["result"] == "duplicate"

        warming = shard.metrics()["warming"]
        assert warming["received_stored"] == 1
        assert warming["received_duplicates"] == 1

    def test_corrupted_in_flight_push_is_rejected_not_stored(self, shard,
                                                             local_ns):
        import base64

        key = _key("corrupted")
        local_ns.put(key, {"key": key, "cycles": 7, "extra": {}})
        blob, _ = _push_body(local_ns, key)
        # Flip one payload byte: digest check must fail on the receiver.
        corrupted = blob[:-2] + bytes([blob[-2] ^ 1]) + blob[-1:]
        body = {"namespace": "sweep", "key": key,
                "entry": base64.b64encode(corrupted).decode("ascii")}

        with pytest.raises(ServiceError) as err:
            shard._request("POST", "/v1/store/push", body)
        assert err.value.status == 400
        assert err.value.code == "integrity"

        # Nothing was stored: the pull misses.
        with pytest.raises(ServiceError) as err:
            shard._request(
                "GET", f"/v1/store/pull?namespace=sweep&key={key}"
            )
        assert err.value.status == 404
        assert shard.metrics()["warming"]["received_rejected"] == 1

    def test_unknown_namespace_is_400(self, shard, local_ns):
        key = _key("nowhere")
        local_ns.put(key, {"key": key, "cycles": 1, "extra": {}})
        _, body = _push_body(local_ns, key)
        body["namespace"] = "sweep"  # frame says sweep…
        with pytest.raises(ServiceError) as err:
            shard._request("POST", "/v1/store/push",
                           {**body, "namespace": "bogus"})
        assert err.value.status == 400
        assert err.value.code == "unknown_namespace"
        with pytest.raises(ServiceError) as err:
            shard._request(
                "GET", f"/v1/store/pull?namespace=bogus&key={key}"
            )
        assert err.value.code == "unknown_namespace"

    def test_pull_unknown_key_is_404(self, shard):
        with pytest.raises(ServiceError) as err:
            shard._request(
                "GET", "/v1/store/pull?namespace=sweep&key=" + "0" * 64
            )
        assert err.value.status == 404
