"""Shared helpers for cluster tests: raw-byte HTTP, metric polling."""

import json
import socket
import time
from urllib.parse import urlsplit


def raw_request(url: str, method: str, target: str, payload=None,
                timeout: float = 60.0):
    """One HTTP request over a bare socket; returns (status, body_bytes).

    Byte-level on purpose: the golden-equivalence guarantee is about the
    exact bytes a client reads, so no JSON decode happens here.
    """
    split = urlsplit(url)
    body = b"" if payload is None else json.dumps(payload).encode()
    with socket.create_connection((split.hostname, split.port),
                                  timeout=timeout) as sock:
        head = (
            f"{method} {target} HTTP/1.1\r\n"
            f"Host: {split.hostname}:{split.port}\r\n"
            f"Content-Length: {len(body)}\r\n"
            "Content-Type: application/json\r\n"
            "Connection: close\r\n\r\n"
        )
        sock.sendall(head.encode() + body)
        data = b""
        while True:
            chunk = sock.recv(65536)
            if not chunk:
                break
            data += chunk
    status_line, _, rest = data.partition(b"\r\n")
    _, _, body_bytes = rest.partition(b"\r\n\r\n")
    return int(status_line.split()[1]), body_bytes


def poll_until(predicate, timeout_s: float = 20.0, interval_s: float = 0.1):
    """Poll ``predicate`` until truthy; returns its value or ``None``."""
    deadline = time.monotonic() + timeout_s
    while time.monotonic() < deadline:
        value = predicate()
        if value:
            return value
        time.sleep(interval_s)
    return None
