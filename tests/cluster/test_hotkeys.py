"""Hot-key sketch: promotion, demotion, bounds — deterministic time."""

from repro.cluster.hotkeys import HotKeyTracker


class FakeClock:
    """Minimal injectable clock (monotonic only, manual advance)."""

    def __init__(self) -> None:
        self.now = 0.0

    def monotonic(self) -> float:
        return self.now

    def advance(self, seconds: float) -> None:
        self.now += seconds


def make_tracker(**kwargs):
    clock = FakeClock()
    defaults = dict(window_s=10.0, buckets=10, top_k=2, min_count=3,
                    clock=clock)
    defaults.update(kwargs)
    return HotKeyTracker(**defaults), clock


class TestPromotion:
    def test_cold_until_min_count(self):
        tracker, _ = make_tracker(min_count=3)
        tracker.observe("k")
        tracker.observe("k")
        assert tracker.hot_keys() == []
        tracker.observe("k")
        assert tracker.hot_keys() == ["k"]

    def test_top_k_caps_the_promoted_set(self):
        tracker, _ = make_tracker(top_k=2, min_count=1)
        for key, count in (("a", 10), ("b", 5), ("c", 3)):
            for _ in range(count):
                tracker.observe(key)
        assert tracker.hot_keys() == ["a", "b"]
        assert tracker.is_hot("a")
        assert not tracker.is_hot("c")

    def test_hottest_first_with_deterministic_ties(self):
        tracker, _ = make_tracker(top_k=3, min_count=1)
        for key in ("b", "a"):
            for _ in range(4):
                tracker.observe(key)
        assert tracker.hot_keys() == ["a", "b"]  # tie → key order


class TestWindow:
    def test_old_traffic_expires(self):
        tracker, clock = make_tracker(window_s=10.0, buckets=10, min_count=3)
        for _ in range(5):
            tracker.observe("k")
        assert tracker.is_hot("k")
        clock.advance(11.0)
        assert tracker.hot_keys() == []
        assert tracker.counts().get("k", 0) == 0

    def test_window_slides_rather_than_resets(self):
        tracker, clock = make_tracker(window_s=10.0, buckets=10, min_count=4)
        for _ in range(3):
            tracker.observe("k")
        clock.advance(5.0)
        tracker.observe("k")  # 3 old + 1 recent = 4 within the window
        assert tracker.is_hot("k")
        clock.advance(6.0)  # first burst (t=0) now expired; only 1 left
        assert not tracker.is_hot("k")
        assert tracker.counts()["k"] == 1

    def test_long_idle_clears_everything(self):
        tracker, clock = make_tracker()
        for _ in range(5):
            tracker.observe("k")
        clock.advance(1e6)
        tracker.observe("other")
        assert tracker.counts() == {"other": 1}


class TestWindowBoundary:
    """Bucket expiry is exact: alive strictly inside the window, gone
    at precisely ``window_s`` after the observation's bucket."""

    def test_burst_survives_until_exactly_window_s(self):
        tracker, clock = make_tracker(window_s=10.0, buckets=10, min_count=1)
        for _ in range(5):
            tracker.observe("k")  # lands in bucket [0, 1)
        clock.now = 9.999  # last instant still inside the window
        assert tracker.counts()["k"] == 5
        assert tracker.is_hot("k")
        clock.now = 10.0  # exactly one window later: bucket 0 expires
        assert tracker.counts().get("k", 0) == 0
        assert tracker.hot_keys() == []

    def test_boundary_clears_only_the_expired_bucket(self):
        # Expiry is bucket-granular: a bucket starting at t expires
        # exactly at t + window_s, independent of the other buckets.
        tracker, clock = make_tracker(window_s=10.0, buckets=10, min_count=1)
        tracker.observe("old")  # bucket [0, 1)
        clock.now = 9.0
        tracker.observe("new")  # bucket [9, 10)
        clock.now = 10.0  # the boundary drops "old", keeps "new"
        assert tracker.counts() == {"new": 1}
        clock.now = 18.999  # "new"'s bucket still inside its window
        assert tracker.counts() == {"new": 1}
        clock.now = 19.0  # 9.0 + window_s: expires exactly at it
        assert tracker.counts() == {}


class TestBounds:
    def test_bucket_key_cap_drops_new_cold_keys(self):
        tracker, _ = make_tracker(max_keys_per_bucket=2, min_count=1)
        tracker.observe("a")
        tracker.observe("b")
        tracker.observe("c")  # bucket full: dropped
        tracker.observe("a")  # existing key: still counted
        counts = tracker.counts()
        assert counts["a"] == 2
        assert "c" not in counts

    def test_snapshot_shape(self):
        tracker, _ = make_tracker(min_count=1)
        tracker.observe("k")
        snap = tracker.snapshot()
        assert snap["tracked_keys"] == 1
        assert snap["hot_keys"] == {"k": 1}
        assert snap["window_s"] == 10.0
