"""Router behaviour over a live thread-based ring: routing, failure
handling, drain, and metrics aggregation."""

import pytest

from repro.cluster.supervisor import BackgroundCluster, BackgroundRouter
from repro.service.client import ServiceClient, Unavailable

from tests.cluster.util import poll_until, raw_request

COST = {"kernel": "sum", "model": "hmm", "n": 4096, "p": 64}


@pytest.fixture(scope="module")
def cluster(tmp_path_factory):
    root = tmp_path_factory.mktemp("ring-caches")
    with BackgroundCluster(num_shards=3, cache_root=root) as ring:
        yield ring


class TestRouting:
    def test_cost_round_trip(self, cluster):
        body = ServiceClient(cluster.url).cost("sum", "hmm",
                                               {"n": 4096, "p": 64})
        assert body["cycles"] > 0
        assert body["params"]["n"] == 4096

    def test_same_spec_lands_on_same_shard(self, cluster):
        client = ServiceClient(cluster.url)
        before = client.metrics()["cluster"]["router"]["forwards"]
        for _ in range(4):
            client.cost("sum", "hmm", {"n": 8192, "p": 128})
        after = client.metrics()["cluster"]["router"]["forwards"]
        grew = [url for url in after
                if after[url] - before.get(url, 0) >= 4]
        assert len(grew) == 1  # all four hit one owner (cold key)

    def test_equivalent_specs_share_an_owner(self, cluster):
        """Defaulted fields are canonicalized before routing."""
        client = ServiceClient(cluster.url)
        before = client.metrics()["cluster"]["router"]["forwards"]
        # Same spec, one spelled with explicit defaults.
        client.cost("sum", "hmm", {"n": 16384, "p": 64})
        client.cost("sum", "hmm", {"n": 16384, "p": 64, "w": 16, "l": 16,
                                   "d": 8}, mode="batch")
        after = client.metrics()["cluster"]["router"]["forwards"]
        grew = [url for url in after if after[url] - before.get(url, 0) >= 2]
        assert len(grew) == 1

    def test_unknown_route_is_404(self, cluster):
        status, body = raw_request(cluster.url, "GET", "/v1/nonsense")
        assert status == 404
        assert b"not_found" in body

    def test_wrong_method_is_405(self, cluster):
        status, body = raw_request(cluster.url, "GET", "/v1/cost")
        assert status == 405
        assert b"method_not_allowed" in body

    def test_shard_400_is_relayed(self, cluster):
        bad = {"kernel": "sum", "model": "hmm", "n": 4096, "p": 64, "w": 5}
        status, body = raw_request(cluster.url, "POST", "/v1/cost", bad)
        assert status == 400
        assert b"power of two" in body

    def test_healthz_lists_shards(self, cluster):
        body = ServiceClient(cluster.url).healthz()
        assert body["status"] == "ok"
        assert sorted(body["shards"]) == sorted(cluster.shard_urls)
        assert set(body["shards"].values()) == {"up"}

    def test_metrics_aggregates_ring_and_shards(self, cluster):
        body = ServiceClient(cluster.url).metrics()
        ring = body["cluster"]["ring"]
        assert sorted(ring["shards"]) == sorted(cluster.shard_urls)
        assert abs(sum(ring["ownership"].values()) - 1.0) < 1e-3
        assert set(body["shards"]) == set(cluster.shard_urls)
        for shard_body in body["shards"].values():
            assert "requests_total" in shard_body  # full service snapshot
        assert "hot" in body["cluster"]
        assert "warming" in body["cluster"]


class TestFailureHandling:
    def test_dead_shard_reroutes_without_client_visible_error(self):
        # The long health interval keeps the probe loop out of the
        # race: only the failed forward itself may mark the shard down,
        # so the passive path (mark + reroute) is what gets asserted.
        with BackgroundCluster(num_shards=3,
                               health_interval_s=60.0) as ring:
            client = ServiceClient(ring.url)
            answers = {}
            for n in (1024, 2048, 4096, 8192, 16384, 32768):
                answers[n] = client.cost("sum", "hmm",
                                         {"n": n, "p": 64})["cycles"]
            # Kill a shard that demonstrably owns at least one of the
            # specs, so re-requesting them must hit the dead socket.
            forwards = client.metrics()["cluster"]["router"]["forwards"]
            victim = max(forwards, key=forwards.get)
            dead = ring.stop_shard(ring.shard_urls.index(victim))
            # Every spec — including those owned by the dead shard —
            # still answers, with identical cycles.
            for n, cycles in answers.items():
                assert client.cost("sum", "hmm",
                                   {"n": n, "p": 64})["cycles"] == cycles
            metrics = client.metrics()
            router = metrics["cluster"]["router"]
            assert metrics["cluster"]["ring"]["alive"][dead] is False
            assert router["shard_failures"] >= 1
            assert router["reroutes"] >= 1

    def test_all_shards_dead_gives_503_with_retry_after(self):
        # Ports from the ephemeral range with nothing listening.
        bogus = ["http://127.0.0.1:9", "http://127.0.0.1:13"]
        with BackgroundRouter(bogus, health_interval_s=30.0) as fr:
            status, body = raw_request(fr.url, "POST", "/v1/cost", COST)
            assert status == 503
            assert b"no_live_shard" in body
            client = ServiceClient(fr.url, retries=1, backoff_s=0.0,
                                   sleep=lambda s: None)
            with pytest.raises(Unavailable):
                client.cost("sum", "hmm", {"n": 1024, "p": 64})

    def test_draining_router_rejects_with_503(self):
        with BackgroundCluster(num_shards=1) as ring:
            client = ServiceClient(ring.url)
            assert client.healthz()["status"] == "ok"
        # After exit the router thread is gone; nothing to assert beyond
        # a clean teardown (no hang, no exception).

    def test_manual_clock_health_loop_recovers_restarted_shard(self):
        # Deterministic down→up round trip: the *failed forward* marks
        # the shard down (passive path, no clock involved), then only
        # the health loop — driven by explicit ManualClock advances,
        # never wall time — may bring the restarted shard back.
        import asyncio
        from urllib.parse import urlsplit

        from repro.service.clock import ManualClock
        from repro.service.server import BackgroundServer

        clock = ManualClock()
        shard = BackgroundServer(cache=False)
        shard.__enter__()
        url, port = shard.url, urlsplit(shard.url).port
        replacement = None
        try:
            with BackgroundRouter([url], health_interval_s=5.0,
                                  clock=clock, multiplex=False) as fr:
                client = ServiceClient(fr.url, retries=0)
                baseline = client.cost("sum", "hmm",
                                       {"n": 1024, "p": 64})["cycles"]
                shard.stop()
                status, body = raw_request(fr.url, "POST", "/v1/cost", COST)
                assert status == 503
                assert b"no_live_shard" in body
                assert client.healthz()["shards"][url] == "down"

                replacement = BackgroundServer(cache=False, port=port)
                replacement.__enter__()
                assert replacement.url == url
                # Still down: no wall time passes for the health loop.
                assert client.healthz()["shards"][url] == "down"

                def tick() -> bool:
                    # Fire the next health-probe timer inside the
                    # router's loop; the probe itself is a real network
                    # round trip, so poll for its verdict to land.
                    asyncio.run_coroutine_threadsafe(
                        clock.advance(5.0), fr._loop).result(30)
                    return client.healthz()["shards"][url] == "up"

                assert poll_until(tick, timeout_s=20.0)
                assert client.cost("sum", "hmm",
                                   {"n": 1024, "p": 64})["cycles"] == baseline
        finally:
            if replacement is not None:
                replacement.stop()
            shard.stop()

    def test_health_loop_marks_recovery(self):
        with BackgroundCluster(num_shards=2,
                               health_interval_s=0.1) as ring:
            client = ServiceClient(ring.url)
            dead = ring.stop_shard(1)
            # Trigger passive marking with one request, then wait for
            # the health loop to keep it dead (no flapping back).
            client.cost("sum", "hmm", {"n": 1024, "p": 64})
            seen = poll_until(
                lambda: client.healthz()["shards"][dead] == "down",
                timeout_s=10.0,
            )
            assert seen


class TestStoreRoutes:
    def test_store_pull_unknown_key_404_through_router(self, cluster):
        status, body = raw_request(
            cluster.url, "GET",
            "/v1/store/pull?namespace=sweep&key=" + "0" * 64,
        )
        assert status == 404
        assert b"not_found" in body

    def test_store_push_bad_base64_relays_400(self, cluster):
        payload = {"namespace": "sweep", "key": "abc123", "entry": "@@@"}
        status, body = raw_request(cluster.url, "POST", "/v1/store/push",
                                   payload)
        assert status == 400
        assert b"base64" in body
