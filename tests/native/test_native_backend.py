"""The native compiled backend: selection, build cache, and fallback.

Equivalence of the actual numbers lives in
``test_native_equivalence.py``; this file covers the machinery — the
``backend=`` / ``$REPRO_BACKEND`` resolution rules, the content-hashed
build cache in the artifact store, the warn-once Python fallback when
no compiler exists, and the per-backend counters.
"""

import warnings

import pytest

from repro.errors import ConfigurationError
from repro.native import (
    BACKEND_ENV,
    NATIVE_METRICS,
    native_available,
    native_kernels,
    native_metrics_snapshot,
    reset_native,
    resolve_backend,
)
from repro.native import build as native_build


@pytest.fixture(autouse=True)
def isolated_native(tmp_path, monkeypatch):
    """Each test gets a private store, a clean env, and fresh state."""
    monkeypatch.setenv("REPRO_STORE_DIR", str(tmp_path / "store"))
    monkeypatch.delenv(BACKEND_ENV, raising=False)
    monkeypatch.delenv("CC", raising=False)
    reset_native()
    NATIVE_METRICS.reset()
    yield
    reset_native()
    NATIVE_METRICS.reset()


class TestResolveBackend:
    def test_default_is_python(self):
        assert resolve_backend(None) == "python"
        assert resolve_backend("python") == "python"
        assert resolve_backend("native") == "native"

    def test_env_default(self, monkeypatch):
        monkeypatch.setenv(BACKEND_ENV, "native")
        assert resolve_backend(None) == "native"
        # Explicit argument beats the environment.
        assert resolve_backend("python") == "python"

    def test_normalization(self, monkeypatch):
        assert resolve_backend(" Native ") == "native"
        monkeypatch.setenv(BACKEND_ENV, "  PYTHON ")
        assert resolve_backend(None) == "python"

    def test_invalid_argument(self):
        with pytest.raises(ConfigurationError):
            resolve_backend("fortran")

    def test_invalid_env(self, monkeypatch):
        monkeypatch.setenv(BACKEND_ENV, "cuda")
        with pytest.raises(ConfigurationError):
            resolve_backend(None)


@pytest.mark.skipif(
    not native_available(), reason="no usable C compiler on this host"
)
class TestBuildCache:
    def test_first_build_compiles_then_caches(self):
        reset_native()
        NATIVE_METRICS.reset()
        assert native_kernels() is not None
        assert NATIVE_METRICS.builds == 1
        assert NATIVE_METRICS.build_cache_hits == 0
        # Same process, new state: the materialized .so is reused
        # without invoking the compiler.
        reset_native()
        assert native_kernels() is not None
        assert NATIVE_METRICS.builds == 1
        assert NATIVE_METRICS.build_cache_hits == 1

    def test_library_lands_in_store_namespace(self):
        assert native_kernels() is not None
        ns = native_build._store_namespace()
        key = native_build.build_key(
            native_build.SOURCE.read_text(),
            native_build.compiler_identity(native_build.compiler()),
        )
        # Framed store entry plus the loadable (unframed) copy.
        assert ns.get(key) is not None
        assert (ns.directory / "lib" / f"{key}.so").exists()

    def test_store_entry_rehydrates_lib(self):
        """Deleting the loadable copy re-materializes it from the store
        entry without recompiling."""
        assert native_kernels() is not None
        ns = native_build._store_namespace()
        key = native_build.build_key(
            native_build.SOURCE.read_text(),
            native_build.compiler_identity(native_build.compiler()),
        )
        (ns.directory / "lib" / f"{key}.so").unlink()
        reset_native()
        NATIVE_METRICS.reset()
        assert native_kernels() is not None
        assert NATIVE_METRICS.builds == 0
        assert NATIVE_METRICS.build_cache_hits == 1
        assert (ns.directory / "lib" / f"{key}.so").exists()

    def test_kernel_table_complete(self):
        kernels = native_kernels()
        assert set(kernels) == {
            "repro_replay_price",
            "repro_slot_counts",
            "repro_batch_sim",
            "repro_safe_prefix",
            "repro_wave_starts",
        }


class TestMissingCompilerFallback:
    def test_warns_once_and_falls_back(self, monkeypatch):
        monkeypatch.setenv("CC", "/bin/false")
        reset_native()
        NATIVE_METRICS.reset()
        assert not native_available()
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            assert native_kernels() is None
            assert native_kernels() is None
        relevant = [w for w in caught
                    if issubclass(w.category, RuntimeWarning)]
        assert len(relevant) == 1
        assert "falling back" in str(relevant[0].message)
        assert NATIVE_METRICS.python_fallbacks == 2
        assert NATIVE_METRICS.builds == 0

    def test_engine_still_runs(self, monkeypatch, rng):
        """backend="native" without a compiler silently prices in
        Python — same numbers, no exception."""
        import numpy as np

        from repro import DMM, MachineParams

        monkeypatch.setenv("CC", "/bin/false")
        reset_native()
        x = rng.normal(size=256)
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", RuntimeWarning)
            native = DMM(MachineParams(width=4, latency=5), mode="batch",
                         backend="native").sum(x, 32)
        python = DMM(MachineParams(width=4, latency=5), mode="batch",
                     backend="python").sum(x, 32)
        assert native[0] == python[0]
        assert native[1].cycles == python[1].cycles

    def test_nonexistent_compiler_detail(self, monkeypatch):
        monkeypatch.setenv("CC", "/no/such/compiler")
        reset_native()
        lib, how, detail = native_build.load_library()
        assert lib is None
        assert how == "unavailable"
        assert "no usable C compiler" in detail


class TestMetricsSnapshot:
    def test_snapshot_shape(self):
        snap = native_metrics_snapshot()
        for field in ("native_calls", "python_fallbacks",
                      "build_cache_hits", "builds"):
            assert isinstance(snap[field], int)
        assert snap["default_backend"] == "python"
        # Nothing has tried to build yet: availability is unknown, and
        # the snapshot must not trigger a compile to find out.
        assert snap["available"] is None
        assert NATIVE_METRICS.builds == 0

    def test_snapshot_after_use(self):
        if not native_available():
            pytest.skip("no usable C compiler on this host")
        snap = native_metrics_snapshot()
        assert snap["available"] is True

    def test_invalid_env_reported(self, monkeypatch):
        monkeypatch.setenv(BACKEND_ENV, "cuda")
        assert native_metrics_snapshot()["default_backend"] == "invalid"
