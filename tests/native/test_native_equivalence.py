"""Bit-identity of the native backend against the Python loops.

The native backend's contract is *exact* equivalence: same cycles,
same per-unit statistics, same memory images, for both the batch
engine's three hot scans and the replay evaluator's heap loop, across
machines, dispatch policies, latencies, and partial warps.
"""

import numpy as np
import pytest

from conftest import make_dmm, make_hmm, make_umm
from repro import DMM, HMM, UMM, HMMParams, MachineParams
from repro.machine.policy import DMMBankPolicy, IdealPolicy, UMMGroupPolicy
from repro.machine.replay import (
    ReplayCostEvaluator,
    default_store,
    reset_default_store,
)
from repro.native import NATIVE_METRICS, native_available, reset_native

pytestmark = pytest.mark.skipif(
    not native_available(), reason="no usable C compiler on this host"
)

RNG = np.random.default_rng(20130520)
X1024 = RNG.standard_normal(1024)
X256 = RNG.standard_normal(256)


@pytest.fixture(autouse=True)
def isolated(tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_STORE_DIR", str(tmp_path / "store"))
    monkeypatch.delenv("REPRO_BACKEND", raising=False)
    reset_default_store()
    reset_native()
    yield
    reset_default_store()
    reset_native()


def assert_reports_equal(expected, actual):
    assert actual.cycles == expected.cycles
    assert actual.compute_ops == expected.compute_ops
    assert actual.compute_cycles == expected.compute_cycles
    assert actual.barrier_releases == expected.barrier_releases
    assert set(actual.unit_stats) == set(expected.unit_stats)
    for name, stats in expected.unit_stats.items():
        assert actual.unit_stats[name] == stats, name


class TestBatchEquivalence:
    """mode="batch" with backend="native" matches backend="python"."""

    @pytest.mark.parametrize("machine_cls", [DMM, UMM])
    @pytest.mark.parametrize("kernel", ["sum", "prefix_sums"])
    def test_flat_kernels(self, machine_cls, kernel):
        # 512 threads / width 16 = 32 warps, enough to clear the
        # scalar small-queue cutoff so the native scans actually run.
        params = MachineParams(width=16, latency=16)
        vp, rp = getattr(
            machine_cls(params, mode="batch", backend="python"), kernel
        )(X1024, 512)
        before = NATIVE_METRICS.native_calls
        vn, rn = getattr(
            machine_cls(params, mode="batch", backend="native"), kernel
        )(X1024, 512)
        assert NATIVE_METRICS.native_calls > before
        np.testing.assert_array_equal(np.asarray(vp), np.asarray(vn))
        assert_reports_equal(rp, rn)

    def test_hmm_sum_and_convolution(self):
        params = HMMParams(num_dmms=4, width=8, global_latency=32,
                           shared_latency=2)
        for call in (
            lambda m: m.sum(X1024, 128),
            lambda m: m.convolve(X256[:16], X1024, 128),
        ):
            vp, rp = call(HMM(params, mode="batch", backend="python"))
            vn, rn = call(HMM(params, mode="batch", backend="native"))
            np.testing.assert_array_equal(np.asarray(vp), np.asarray(vn))
            assert_reports_equal(rp, rn)

    def test_matches_event_engine(self):
        """Native batch stays equivalent to the exact event scheduler."""
        params = MachineParams(width=8, latency=24)
        ve, re_ = DMM(params, mode="event").prefix_sums(X1024, 64)
        vn, rn = DMM(params, mode="batch", backend="native").prefix_sums(
            X1024, 64
        )
        np.testing.assert_array_equal(np.asarray(ve), np.asarray(vn))
        assert rn.cycles == re_.cycles
        assert rn.unit_stats["mem"] == re_.unit_stats["mem"]

    def test_partial_warps_and_memory_image(self):
        """37 threads (ragged last warp): results and the full memory
        image must match the python backend exactly."""
        outs = {}
        for backend in ("python", "native"):
            eng = make_dmm(width=4, latency=7, mode="batch", backend=backend)
            a = eng.array_from(X256[:64], "a")
            out = eng.alloc(64, "out")

            def prog(warp):
                vals = yield warp.read(a, warp.tids)
                yield warp.write(out, warp.tids, vals * 3.0)
                vals = yield warp.read(out, warp.tids)
                yield warp.write(out, warp.tids, vals + 1.0)

            report = eng.launch(prog, 37)
            outs[backend] = (report, out.to_numpy())
        rp, mem_p = outs["python"]
        rn, mem_n = outs["native"]
        assert_reports_equal(rp, rn)
        np.testing.assert_array_equal(mem_p, mem_n)

    def test_env_default_backend(self, monkeypatch):
        """$REPRO_BACKEND=native is picked up by backend=None engines."""
        monkeypatch.setenv("REPRO_BACKEND", "native")
        eng = make_umm(width=8, latency=12, mode="batch")
        assert eng.backend == "native"
        NATIVE_METRICS.reset()
        vp, rp = UMM(MachineParams(width=8, latency=12), mode="batch",
                     backend="python").sum(X1024, 128)
        vn, rn = UMM(MachineParams(width=8, latency=12),
                     mode="batch").sum(X1024, 128)
        assert NATIVE_METRICS.native_calls > 0
        assert vp == vn
        assert_reports_equal(rp, rn)


def _capture_hmm_trace():
    """Capture one HMM trace (barriers + multi-unit) and return it."""
    params = HMMParams(num_dmms=2, width=4, global_latency=9,
                       shared_latency=2)
    HMM(params, mode="replay").sum(X256, 32)
    HMM(params, mode="replay").sum(X256, 32)  # hit: registers the key
    store = default_store()
    fulls = [k for keys in store._keys_by_struct.values() for k in keys]
    assert fulls
    return store._ns.get(fulls[0])


class TestReplayEquivalence:
    """The native replay pricer is bit-identical to the Python loop."""

    def test_evaluator_sweep(self):
        trace = _capture_hmm_trace()
        names = trace.meta["unit_names"]
        n = len(names)
        policy_sets = [
            [DMMBankPolicy()] * n,
            [UMMGroupPolicy()] * n,
            [IdealPolicy()] * n,
            [UMMGroupPolicy(), *([DMMBankPolicy()] * (n - 1))],
        ]
        for dispatch in ("fifo", "round-robin"):
            for lats in ([3] * n, [17] * n, list(range(2, 2 + n))):
                for policies in policy_sets:
                    for pips in ([True] * n, [False] * n):
                        ev_p = ReplayCostEvaluator(trace, backend="python")
                        ev_n = ReplayCostEvaluator(trace, backend="native")
                        rp, sp = ev_p.evaluate(
                            latencies=lats, policies=policies,
                            pipelined=pips, dispatch=dispatch,
                        )
                        before = NATIVE_METRICS.native_calls
                        rn, sn = ev_n.evaluate(
                            latencies=lats, policies=policies,
                            pipelined=pips, dispatch=dispatch,
                        )
                        assert NATIVE_METRICS.native_calls > before
                        assert rp == rn
                        assert sp == sn

    def test_per_call_backend_override(self):
        trace = _capture_hmm_trace()
        n = len(trace.meta["unit_names"])
        ev = ReplayCostEvaluator(trace, backend="python")
        kw = dict(latencies=[5] * n, policies=[DMMBankPolicy()] * n,
                  pipelined=[True] * n)
        rp, sp = ev.evaluate(**kw)
        rn, sn = ev.evaluate(backend="native", **kw)
        assert rp == rn
        assert sp == sn

    def test_replay_launch_end_to_end(self):
        """Full replay hits under $REPRO_BACKEND=native return the same
        report and memory as python-backend hits."""
        params = HMMParams(num_dmms=2, width=4, global_latency=9,
                           shared_latency=2)
        results = {}
        for backend in ("python", "native"):
            reset_default_store()
            m = HMM(params, mode="replay", backend=backend)
            m.sum(X256, 32)  # capture
            results[backend] = HMM(
                params, mode="replay", backend=backend
            ).sum(X256, 32)  # hit: re-priced from the stored trace
        vp, rp = results["python"]
        vn, rn = results["native"]
        assert rp.engine == rn.engine == "replay"
        assert vp == vn
        assert_reports_equal(rp, rn)

    def test_flat_replay_partial_warp_round_robin(self):
        from repro.machine.engine import MachineEngine
        from repro.params import MachineParams as MP

        def run(backend):
            reset_default_store()
            reports = []
            for _ in range(2):
                eng = MachineEngine(
                    MP(width=4, latency=5), DMMBankPolicy(), name="dmm",
                    dispatch="round-robin", mode="replay", backend=backend,
                )
                a = eng.array_from(X256[:64], "a")
                out = eng.alloc(64, "out")

                def prog(warp):
                    vals = yield warp.read(a, warp.tids)
                    yield warp.write(out, warp.tids, vals * 2.0)

                reports.append((eng.launch(prog, 37), out.to_numpy()))
            return reports

        py = run("python")
        nat = run("native")
        assert nat[1][0].engine == "replay"
        for (rp, mem_p), (rn, mem_n) in zip(py, nat):
            assert rp.cycles == rn.cycles
            assert rp.barrier_releases == rn.barrier_releases
            np.testing.assert_array_equal(mem_p, mem_n)
