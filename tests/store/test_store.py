"""The unified artifact store: keys, tiers, integrity, eviction,
pinning, metrics, migration, env shims, and the maintenance CLI."""

from __future__ import annotations

import json
import os
import subprocess
import sys
import time
import warnings
from pathlib import Path

import numpy as np
import pytest

from repro.store import (
    ArtifactStore,
    STORE_METRICS,
    content_key,
    migrate_legacy,
    reset_store_metrics,
    store_metrics_snapshot,
)
from repro.store import config as store_config
from repro.store.migrate import MARKER_NAME, auto_migrate
from repro.store.store import ENVELOPE_MAGIC


@pytest.fixture(autouse=True)
def _fresh_metrics():
    reset_store_metrics()
    store_config.reset_deprecation_warnings()
    yield
    reset_store_metrics()


@pytest.fixture
def store(tmp_path) -> ArtifactStore:
    return ArtifactStore(tmp_path / "store")


def _keys(n: int) -> list[str]:
    return [content_key({"i": i}) for i in range(n)]


class TestKeysAndRoundtrip:
    def test_content_key_is_canonical(self):
        assert content_key({"b": 2, "a": 1}) == content_key({"a": 1, "b": 2})
        assert content_key({"a": 1}) != content_key({"a": 2})
        key = content_key({"a": 1})
        assert len(key) == 64 and set(key) <= set("0123456789abcdef")

    def test_bad_keys_rejected(self, store):
        ns = store.namespace("sweep")
        for bad in ("", "abc", "Z" * 64, "ab/../" + "0" * 58):
            with pytest.raises(ValueError):
                ns.get(bad)
            with pytest.raises(ValueError):
                ns.put(bad, {})

    def test_json_roundtrip_across_instances(self, store):
        key = content_key("x")
        store.namespace("sweep").put(key, {"cycles": 9, "extra": {"a": 1}})
        # A fresh namespace instance has a cold memory tier: disk hit.
        ns = store.namespace("sweep")
        assert ns.get(key) == {"cycles": 9, "extra": {"a": 1}}
        assert ns.counters.hits_disk == 1

    def test_npz_roundtrip(self, store):
        key = content_key("arrays")
        arrays = {"a": np.arange(7), "b": np.eye(3)}
        store.namespace("trace", "npz").put(key, arrays)
        got = store.namespace("trace", "npz").get(key)
        assert set(got) == {"a", "b"}
        assert np.array_equal(got["a"], arrays["a"])
        assert np.array_equal(got["b"], arrays["b"])

    def test_entry_file_is_enveloped(self, store):
        ns = store.namespace("sweep")
        key = content_key("enveloped")
        ns.put(key, {"v": 1})
        blob = ns.path_of(key).read_bytes()
        header, payload = blob.split(b"\n", 1)
        fields = header.decode().split()
        assert fields[0] == ENVELOPE_MAGIC.decode()
        assert fields[2] == "sweep" and fields[3] == key
        assert fields[6] == str(len(payload))

    def test_namespaces_are_disjoint(self, store):
        key = content_key("shared-key")
        store.namespace("sweep").put(key, {"ns": "sweep"})
        store.namespace("tune").put(key, {"ns": "tune"})
        assert store.namespace("sweep").get(key) == {"ns": "sweep"}
        assert store.namespace("tune").get(key) == {"ns": "tune"}


class TestIntegrity:
    """Corrupt or truncated entries quarantine and read as misses."""

    @pytest.mark.parametrize(
        "mangle",
        [
            lambda blob: blob[: len(blob) // 2],     # truncated
            lambda blob: blob[:-4] + b"XXXX",        # flipped payload bytes
            lambda blob: b"garbage\n" + blob,        # bogus header
            lambda blob: b"",                        # empty file
        ],
    )
    def test_corrupt_entry_quarantined(self, store, mangle):
        ns = store.namespace("sweep")
        key = content_key("to-corrupt")
        ns.put(key, {"v": 1})
        path = ns.path_of(key)
        path.write_bytes(mangle(path.read_bytes()))

        fresh = store.namespace("sweep")
        assert fresh.get(key) is None  # a miss, never a crash
        assert not path.exists()
        assert (fresh.quarantine_dir / path.name).exists()
        assert fresh.counters.integrity_failures == 1
        assert fresh.counters.quarantined == 1
        assert fresh.counters.misses == 1

    def test_wrong_namespace_entry_rejected(self, store):
        sweep = store.namespace("sweep")
        key = content_key("cross-ns")
        sweep.put(key, {"v": 1})
        tune = store.namespace("tune")
        os.makedirs(tune.directory, exist_ok=True)
        (tune.directory / sweep.path_of(key).name).write_bytes(
            sweep.path_of(key).read_bytes()
        )
        assert tune.get(key) is None  # envelope names "sweep"

    def test_recompute_after_quarantine(self, store):
        ns = store.namespace("sweep")
        key = content_key("recompute")
        ns.put(key, {"v": 1})
        ns.path_of(key).write_bytes(b"junk")
        fresh = store.namespace("sweep")
        assert fresh.get(key) is None
        fresh.put(key, {"v": 2})  # the caller recomputes and re-stores
        assert store.namespace("sweep").get(key) == {"v": 2}


class TestEvictionAndPinning:
    def test_memory_lru_evicts_oldest(self, store):
        ns = store.namespace("sweep", persist=False, max_memory_entries=2)
        k0, k1, k2 = _keys(3)
        for i, k in enumerate((k0, k1, k2)):
            ns.put(k, {"i": i})
        assert ns.counters.evictions_memory == 1
        assert ns.get(k0) is None
        assert ns.get(k2) == {"i": 2}

    def test_memory_byte_budget(self, store):
        ns = store.namespace(
            "sweep", persist=False, max_memory_entries=100,
            max_memory_bytes=1,
        )
        k0, k1 = _keys(2)
        ns.put(k0, {"i": 0})
        ns.put(k1, {"i": 1})
        # Over budget: evicts down to the single most recent entry.
        assert ns.stats().entries_memory == 1
        assert ns.get(k1) == {"i": 1}

    def test_pinned_memory_entries_survive(self, store):
        ns = store.namespace("sweep", persist=False, max_memory_entries=2)
        k0, k1, k2 = _keys(3)
        ns.put(k0, {"i": 0}, pin=True)
        ns.put(k1, {"i": 1})
        ns.put(k2, {"i": 2})
        assert ns.get(k0) == {"i": 0}  # pinned: never evicted
        assert ns.get(k1) is None      # the unpinned one went instead

    def test_disk_eviction_under_size_pressure_skips_pinned(self, store):
        entry_size = len(
            store.namespace("sweep").codec.encode({"i": 0})
        ) + 120  # payload + envelope, roughly
        ns = store.namespace("sweep", max_disk_bytes=3 * entry_size)
        keys = _keys(6)
        now = time.time()
        for i, k in enumerate(keys):
            ns.put(k, {"i": i}, pin=(i == 0))
            os.utime(ns.path_of(k), (now - 100 + i,) * 2)
        on_disk = set(ns.keys())
        assert keys[0] in on_disk, "pinned entry evicted under pressure"
        assert len(on_disk) < 6
        assert ns.counters.evictions_disk > 0
        # The survivors besides the pin are the most recently written.
        assert keys[-1] in on_disk

    def test_disk_entry_budget(self, store):
        ns = store.namespace("sweep", max_disk_entries=2)
        keys = _keys(4)
        now = time.time()
        for i, k in enumerate(keys):
            ns.put(k, {"i": i})
            os.utime(ns.path_of(k), (now - 100 + i,) * 2)
        assert sorted(ns.keys()) == sorted(keys[2:])

    def test_unpin_makes_evictable(self, store):
        ns = store.namespace("sweep", persist=False, max_memory_entries=1)
        k0, k1 = _keys(2)
        ns.put(k0, {"i": 0}, pin=True)
        ns.unpin(k0)
        ns.put(k1, {"i": 1})
        assert ns.get(k0) is None


class TestConcurrentWriters:
    """Two processes writing the same directory never corrupt it."""

    def test_parallel_writers_all_entries_valid(self, tmp_path):
        directory = tmp_path / "shared"
        script = (
            "import sys\n"
            "from repro.store import ArtifactStore, content_key\n"
            "ns = ArtifactStore(sys.argv[1]).namespace('sweep')\n"
            "who = sys.argv[2]\n"
            "for i in range(40):\n"
            "    ns.put(content_key({'i': i}), "
            "{'i': i, 'who': who, 'pad': 'x' * 256})\n"
            "print('done')\n"
        )
        env = dict(os.environ)
        env["PYTHONPATH"] = str(Path(__file__).resolve().parents[2] / "src")
        procs = [
            subprocess.Popen(
                [sys.executable, "-c", script, str(directory), who],
                env=env, stdout=subprocess.PIPE, stderr=subprocess.PIPE,
            )
            for who in ("a", "b")
        ]
        for p in procs:
            out, err = p.communicate(timeout=120)
            assert p.returncode == 0, err.decode()
            assert out.decode().strip() == "done"

        ns = ArtifactStore(directory).namespace("sweep")
        seen = dict(ns.scan())
        assert len(seen) == 40  # every key present and decodable
        for i in range(40):
            entry = seen[content_key({"i": i})]
            assert entry["i"] == i
            assert entry["who"] in ("a", "b")  # last rename won
        assert ns.counters.integrity_failures == 0
        assert not list(ns.quarantine_dir.glob("*")) \
            if ns.quarantine_dir.is_dir() else True

    def test_tmp_files_never_visible_as_entries(self, store):
        ns = store.namespace("sweep")
        ns.put(content_key("z"), {"v": 1})
        names = [p.name for p in ns.directory.iterdir()]
        assert not [n for n in names if n.startswith(".tmp-")]


class TestMetrics:
    def test_standard_namespaces_always_reported(self):
        snap = store_metrics_snapshot()
        assert set(snap) >= {"sweep", "trace", "tune"}
        assert snap["sweep"]["hits"] == 0

    def test_counters_aggregate_across_instances(self, store):
        key = content_key("m")
        store.namespace("sweep").put(key, {"v": 1})
        ns2 = store.namespace("sweep")
        ns2.get(key)            # disk hit
        ns2.get(key)            # memory hit
        ns2.get(content_key("absent"))  # miss
        snap = store_metrics_snapshot()["sweep"]
        assert snap["puts"] == 1
        assert snap["hits_disk"] == 1
        assert snap["hits_memory"] == 1
        assert snap["misses"] == 1
        assert snap["hits"] == 2
        assert 0 < snap["hit_rate"] < 1

    def test_private_counters_isolated_per_instance(self, store):
        key = content_key("m2")
        a = store.namespace("sweep")
        b = store.namespace("sweep")
        a.put(key, {"v": 1})
        b.get(key)
        assert a.counters.puts == 1 and a.counters.hits_disk == 0
        assert b.counters.puts == 0 and b.counters.hits_disk == 1

    def test_reset(self, store):
        store.namespace("sweep").put(content_key("r"), {})
        reset_store_metrics()
        assert store_metrics_snapshot()["sweep"]["puts"] == 0


class TestMigration:
    def _legacy_sweep_dir(self, tmp_path, entries) -> Path:
        legacy = tmp_path / "legacy_sweep"
        legacy.mkdir()
        lines = [
            json.dumps({"key": k, "fingerprint": "F", "cycles": c,
                        "extra": {}})
            for k, c in entries
        ]
        (legacy / "shard_ab.jsonl").write_text("\n".join(lines) + "\n")
        return legacy

    def test_jsonl_migration_imports_last_wins(self, tmp_path, store):
        key = content_key("dup")
        legacy = self._legacy_sweep_dir(
            tmp_path, [(key, 1), (key, 2)]  # same key twice: last wins
        )
        report = migrate_legacy(store.resolve_root(), sweep_dir=legacy)
        assert report.imported["sweep"] == 1
        assert store.namespace("sweep").get(key)["cycles"] == 2

    def test_migration_idempotent(self, tmp_path, store):
        keys = _keys(3)
        legacy = self._legacy_sweep_dir(
            tmp_path, [(k, i) for i, k in enumerate(keys)]
        )
        first = migrate_legacy(store.resolve_root(), sweep_dir=legacy)
        second = migrate_legacy(store.resolve_root(), sweep_dir=legacy)
        assert first.imported["sweep"] == 3
        assert second.imported.get("sweep", 0) == 0
        assert second.skipped["sweep"] == 3
        ns = store.namespace("sweep")
        assert sorted(k for k, _ in ns.scan()) == sorted(keys)

    def test_npz_migration(self, tmp_path, store):
        legacy = tmp_path / "legacy_trace"
        legacy.mkdir()
        key = content_key("trace")
        with open(legacy / f"{key}.npz", "wb") as fh:
            np.savez_compressed(fh, a=np.arange(4))
        report = migrate_legacy(store.resolve_root(), trace_dir=legacy)
        assert report.imported["trace"] == 1
        got = store.namespace("trace", "npz").get(key)
        assert np.array_equal(got["a"], np.arange(4))

    def test_corrupt_legacy_lines_skipped(self, tmp_path, store):
        key = content_key("good")
        legacy = tmp_path / "legacy_sweep"
        legacy.mkdir()
        (legacy / "shard_ab.jsonl").write_text(
            "not json at all\n"
            + json.dumps({"key": key, "fingerprint": "F", "cycles": 5,
                          "extra": {}})
            + "\n{\"key\": \"truncat"
        )
        migrate_legacy(store.resolve_root(), sweep_dir=legacy)
        assert store.namespace("sweep").get(key)["cycles"] == 5

    def test_remove_deletes_source(self, tmp_path, store):
        legacy = self._legacy_sweep_dir(tmp_path, [(content_key("x"), 1)])
        migrate_legacy(store.resolve_root(), sweep_dir=legacy, remove=True)
        assert not legacy.exists()

    def test_auto_migrate_once_via_marker(self, tmp_path, store):
        keys = _keys(2)
        legacy = self._legacy_sweep_dir(
            tmp_path, [(k, i) for i, k in enumerate(keys)]
        )
        ns = store.namespace("sweep")
        auto_migrate(ns, legacy)
        assert (ns.directory / MARKER_NAME).exists()
        assert len(list(ns.scan())) == 2
        # Marker present: a second pass ignores new legacy content.
        (legacy / "shard_cd.jsonl").write_text(
            json.dumps({"key": content_key("late"), "fingerprint": "F",
                        "cycles": 9, "extra": {}}) + "\n"
        )
        auto_migrate(store.namespace("sweep"), legacy)
        assert len(list(store.namespace("sweep").scan())) == 2

    def test_auto_migrate_upgrades_in_place(self, tmp_path):
        # A dir override pointing at an old-format cache dir: the files
        # are upgraded where they are.
        key = content_key("inplace")
        legacy = self._legacy_sweep_dir(tmp_path, [(key, 3)])
        ns = ArtifactStore(tmp_path).namespace(
            "sweep", directory=legacy
        )
        auto_migrate(ns, None)
        assert ns.get(key)["cycles"] == 3

    def test_auto_migrate_nothing_creates_nothing(self, tmp_path, store):
        ns = store.namespace("sweep")
        auto_migrate(ns, tmp_path / "does-not-exist")
        assert not ns.directory.exists()


class TestEnvShims:
    def test_legacy_dir_var_maps_and_warns_once(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_SWEEP_CACHE_DIR", str(tmp_path / "legacy"))
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            assert store_config.namespace_dir("sweep") == tmp_path / "legacy"
            store_config.namespace_dir("sweep")
        deprecations = [
            w for w in caught if issubclass(w.category, DeprecationWarning)
        ]
        assert len(deprecations) == 1
        assert "REPRO_STORE_SWEEP_DIR" in str(deprecations[0].message)

    def test_new_var_wins_over_legacy(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_SWEEP_CACHE_DIR", str(tmp_path / "old"))
        monkeypatch.setenv("REPRO_STORE_SWEEP_DIR", str(tmp_path / "new"))
        assert store_config.namespace_dir("sweep") == tmp_path / "new"

    def test_global_and_namespace_switches(self, monkeypatch):
        assert store_config.namespace_allowed("sweep")
        monkeypatch.setenv("REPRO_STORE_SWEEP", "off")
        assert not store_config.namespace_allowed("sweep")
        assert store_config.namespace_allowed("trace")
        monkeypatch.setenv("REPRO_STORE", "off")
        assert not store_config.namespace_allowed("trace")

    def test_legacy_switch_maps(self, monkeypatch):
        monkeypatch.setenv("REPRO_TRACE_STORE", "off")
        assert not store_config.namespace_allowed("trace")

    def test_store_root_env(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_STORE_DIR", str(tmp_path / "root"))
        assert store_config.default_store_root() == tmp_path / "root"
        assert (
            store_config.namespace_dir("tune")
            == tmp_path / "root" / "tune"
        )

    def test_lru_knob_with_legacy_fallback(self, monkeypatch):
        monkeypatch.setenv("REPRO_TRACE_LRU", "7")
        assert store_config.namespace_int("trace", "LRU") == 7
        monkeypatch.setenv("REPRO_STORE_TRACE_LRU", "9")
        assert store_config.namespace_int("trace", "LRU") == 9


class TestMaintenance:
    def test_clear_empties_namespace_and_quarantine(self, store):
        ns = store.namespace("sweep")
        keys = _keys(3)
        for i, k in enumerate(keys):
            ns.put(k, {"i": i})
        ns.path_of(keys[0]).write_bytes(b"junk")
        ns = store.namespace("sweep")  # cold memory tier: reads disk
        assert ns.get(keys[0]) is None  # quarantines
        removed = ns.clear()
        assert removed == 2
        assert ns.stats().entries_disk == 0
        assert not list(ns.quarantine_dir.glob("*")) \
            if ns.quarantine_dir.is_dir() else True
        assert ns.get(keys[1]) is None

    def test_delete_single_entry(self, store):
        ns = store.namespace("sweep")
        k0, k1 = _keys(2)
        ns.put(k0, {"i": 0})
        ns.put(k1, {"i": 1})
        assert ns.delete(k0)
        assert not ns.delete(k0)
        assert ns.contains(k1) and not ns.contains(k0)

    def test_cli_migrate_stats_clear(self, tmp_path):
        legacy = tmp_path / "legacy"
        legacy.mkdir()
        key = content_key("cli")
        (legacy / "shard_ab.jsonl").write_text(
            json.dumps({"key": key, "fingerprint": "F", "cycles": 1,
                        "extra": {}}) + "\n"
        )
        from repro.store.__main__ import main

        root = tmp_path / "root"
        assert main(["migrate", "--root", str(root),
                     "--sweep", str(legacy)]) == 0
        assert main(["stats", "--root", str(root)]) == 0
        assert main(["clear", "--root", str(root),
                     "--namespace", "sweep"]) == 0
        ns = ArtifactStore(root).namespace("sweep")
        assert ns.stats().entries_disk == 0
