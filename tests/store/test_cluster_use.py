"""Store behaviour under cluster use: concurrent multi-process writers
into one namespace directory, and the framed-transfer integrity check
that guards warm pushes."""

import hashlib
import os
import subprocess
import sys
from pathlib import Path

from repro.store import ArtifactStore

KEY = hashlib.sha256(b"contended").hexdigest()

_WRITER = """
import sys
from repro.store import ArtifactStore

root, tag, key = sys.argv[1], sys.argv[2], sys.argv[3]
ns = ArtifactStore(root).namespace("sweep", "json", persist=True)
for i in range(200):
    ns.put(key, {"key": key, "cycles": i, "writer": tag})
"""


def _namespace(root: Path):
    return ArtifactStore(root).namespace("sweep", "json", persist=True)


class TestConcurrentWriters:
    def test_two_processes_racing_on_one_key_leave_a_valid_entry(
        self, tmp_path
    ):
        """Both writers loop over the same key in the same directory;
        atomic temp-file + rename means whoever wins, the surviving
        entry is complete and verifiable — never a torn mix."""
        env = dict(os.environ)
        src = Path(__file__).resolve().parents[2] / "src"
        env["PYTHONPATH"] = f"{src}{os.pathsep}" + env.get("PYTHONPATH", "")
        procs = [
            subprocess.Popen(
                [sys.executable, "-c", _WRITER, str(tmp_path), tag, KEY],
                env=env,
            )
            for tag in ("a", "b")
        ]
        for proc in procs:
            assert proc.wait(timeout=120) == 0

        ns = _namespace(tmp_path)
        entry = ns.get(KEY)
        assert isinstance(entry, dict)
        assert entry["key"] == KEY
        assert entry["writer"] in ("a", "b")
        assert entry["cycles"] == 199  # each writer's last write is whole
        assert ns.counters.integrity_failures == 0
        assert not ns.quarantine_dir.exists()
        # Exactly one entry file — no stray temp files left behind.
        files = [p for p in tmp_path.rglob("*") if p.is_file()]
        assert len(files) == 1


class TestFramedTransfer:
    def test_round_trip_between_directories(self, tmp_path):
        sender = _namespace(tmp_path / "sender")
        receiver = _namespace(tmp_path / "receiver")
        key = hashlib.sha256(b"ship-me").hexdigest()
        sender.put(key, {"key": key, "cycles": 5})

        blob = sender.get_framed(key)
        assert receiver.put_framed(key, blob) == "stored"
        assert receiver.get(key) == {"key": key, "cycles": 5}
        assert receiver.counters.remote_puts == 1
        assert receiver.counters.hits_remote == 1  # attributed to warming
        # Re-push is a duplicate, not an overwrite.
        assert receiver.put_framed(key, blob) == "duplicate"
        assert receiver.counters.remote_duplicates == 1

    def test_corrupted_in_flight_blob_is_rejected_not_stored(self,
                                                             tmp_path):
        sender = _namespace(tmp_path / "sender")
        receiver = _namespace(tmp_path / "receiver")
        key = hashlib.sha256(b"mangle-me").hexdigest()
        sender.put(key, {"key": key, "cycles": 9})
        blob = bytearray(sender.get_framed(key))
        blob[-3] ^= 0xFF  # bit-rot somewhere in the payload

        assert receiver.put_framed(key, bytes(blob)) == "rejected"
        assert receiver.counters.remote_rejected == 1
        assert not receiver.contains(key)
        assert receiver.get(key) is None  # and no file was written
        assert not receiver.quarantine_dir.exists()

    def test_frame_for_another_namespace_is_rejected(self, tmp_path):
        """The envelope pins the namespace: a sweep entry pushed at a
        trace namespace must not be accepted, even if it decodes."""
        sender = _namespace(tmp_path / "sender")
        other = ArtifactStore(tmp_path / "receiver").namespace(
            "trace", "json", persist=True
        )
        key = hashlib.sha256(b"wrong-box").hexdigest()
        sender.put(key, {"key": key, "cycles": 3})

        assert other.put_framed(key, sender.get_framed(key)) == "rejected"
        assert other.counters.remote_rejected == 1
        assert not other.contains(key)

    def test_truncated_frame_is_rejected(self, tmp_path):
        sender = _namespace(tmp_path / "sender")
        receiver = _namespace(tmp_path / "receiver")
        key = hashlib.sha256(b"cut-short").hexdigest()
        sender.put(key, {"key": key, "cycles": 2})
        blob = sender.get_framed(key)

        assert receiver.put_framed(key, blob[: len(blob) // 2]) == "rejected"
        assert receiver.put_framed(key, b"") == "rejected"
        assert not receiver.contains(key)
