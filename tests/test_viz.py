"""Text figure rendering."""

import pytest

from repro.errors import ConfigurationError
from repro.viz import ascii_chart, render_banks_and_groups, render_sum_tree


class TestFigure3Rendering:
    def test_contains_all_addresses(self):
        out = render_banks_and_groups(16, 4)
        for a in range(16):
            assert f" {a}" in out or f"{a}" in out
        assert "B[0]" in out and "A[3]" in out

    def test_ragged(self):
        out = render_banks_and_groups(6, 4)
        assert "-" in out  # unused cells marked


class TestFigure5Rendering:
    def test_levels_count(self):
        out = render_sum_tree(8)
        assert "level 0" in out and "level 3" in out
        assert "level 4" not in out

    def test_final_level_sums_everything(self):
        out = render_sum_tree(8)
        last = out.splitlines()[-1]
        assert last.startswith("level 3")
        assert "{0,1,2,3,4,5,6,7}" in last

    def test_odd_n(self):
        out = render_sum_tree(5)
        last = out.splitlines()[-1]
        assert "{0,1,2,3,4}" in last

    def test_invalid(self):
        with pytest.raises(ConfigurationError):
            render_sum_tree(0)


class TestAsciiChart:
    def test_basic_render(self):
        out = ascii_chart(
            [1, 2, 3, 4],
            {"a": [10, 20, 40, 80], "b": [5, 5, 5, 5]},
            title="demo",
            x_label="n",
        )
        assert "demo" in out
        assert "o=a" in out and "x=b" in out
        assert "n in [1, 4]" in out

    def test_linear_scale(self):
        out = ascii_chart([0, 1], {"s": [1, 2]}, log_y=False)
        assert "log10" not in out

    def test_empty_rejected(self):
        with pytest.raises(ConfigurationError):
            ascii_chart([], {})

    def test_constant_series_no_crash(self):
        out = ascii_chart([1, 2], {"flat": [3, 3]})
        assert "flat" in out


class TestHeatmap:
    def test_basic_render(self):
        import numpy as np
        from repro.viz import render_heatmap

        out = render_heatmap(
            [1, 2], [10, 20, 30],
            np.array([[1.0, 10.0, 100.0], [2.0, 20.0, 200.0]]),
            title="demo", row_label="l", col_label="p",
        )
        assert "demo" in out
        assert "<- p" in out and "rows: l" in out
        assert "200" in out

    def test_shape_mismatch(self):
        import numpy as np
        from repro.errors import ConfigurationError
        from repro.viz import render_heatmap

        with pytest.raises(ConfigurationError):
            render_heatmap([1], [1, 2], np.ones((2, 2)))

    def test_constant_grid(self):
        import numpy as np
        from repro.viz import render_heatmap

        out = render_heatmap([1, 2], [3, 4], np.full((2, 2), 7.0))
        assert "7" in out
