"""Edge paths not covered by the feature-focused suites."""

import numpy as np
import pytest

from repro.errors import (
    AddressError,
    AllocationError,
    ConfigurationError,
    DeadlockError,
    KernelError,
    LockstepError,
    ReproError,
    SpaceMismatchError,
)


class TestErrorHierarchy:
    def test_all_derive_from_repro_error(self):
        for exc in (
            ConfigurationError, AllocationError, AddressError, KernelError,
            LockstepError, DeadlockError, SpaceMismatchError,
        ):
            assert issubclass(exc, ReproError)

    def test_configuration_error_is_value_error(self):
        assert issubclass(ConfigurationError, ValueError)

    def test_address_error_is_index_error(self):
        assert issubclass(AddressError, IndexError)

    def test_kernel_error_specializations(self):
        assert issubclass(LockstepError, KernelError)
        assert issubclass(DeadlockError, KernelError)


class TestNNLSFallback:
    """The pure-numpy Lawson-Hanson path used when scipy is absent."""

    def test_exact_recovery(self):
        from repro.analysis.fitting import _lawson_hanson

        rng = np.random.default_rng(0)
        design = np.abs(rng.normal(size=(40, 3))) + 0.1
        truth = np.array([1.5, 0.0, 4.0])
        coef = _lawson_hanson(design, design @ truth)
        assert np.allclose(coef, truth, atol=1e-6)

    def test_nonnegativity_enforced(self):
        from repro.analysis.fitting import _lawson_hanson

        rng = np.random.default_rng(1)
        design = np.abs(rng.normal(size=(30, 2))) + 0.1
        target = design @ np.array([2.0, -5.0])
        coef = _lawson_hanson(design, target)
        assert (coef >= 0).all()

    def test_agrees_with_scipy(self):
        from scipy.optimize import nnls as scipy_nnls

        from repro.analysis.fitting import _lawson_hanson

        rng = np.random.default_rng(2)
        design = np.abs(rng.normal(size=(25, 4)))
        target = np.abs(rng.normal(size=25)) * 10
        ours = _lawson_hanson(design, target)
        theirs, _ = scipy_nnls(design, target)
        assert np.allclose(design @ ours, design @ theirs, rtol=1e-4, atol=1e-6)

    def test_all_zero_solution(self):
        from repro.analysis.fitting import _lawson_hanson

        design = np.ones((5, 2))
        target = -np.ones(5)  # best nonnegative fit is zero
        coef = _lawson_hanson(design, target)
        assert np.allclose(coef, 0.0)


class TestWarpContextFactoryValidation:
    def test_zero_threads_rejected(self):
        from repro.machine.engine import make_warp_contexts

        with pytest.raises(ConfigurationError):
            make_warp_contexts(0, 4)


class TestMemoryAlignmentEdges:
    def test_align_capacity_exhaustion(self):
        from repro.machine.memory import MemorySpace

        space = MemorySpace("m", capacity=10)
        space.alloc(9)
        with pytest.raises(AllocationError):
            space.align(8)

    def test_align_invalid(self):
        from repro.machine.memory import MemorySpace

        with pytest.raises(AllocationError):
            MemorySpace("m").align(0)


class TestStringMatchingCodes:
    def test_string_and_array_agree(self):
        from repro.core.kernels.string_matching import (
            _codes,
            reference_approximate_match,
        )

        s1 = reference_approximate_match(_codes("ab"), _codes("aabb"))
        s2 = reference_approximate_match(
            np.array([97.0, 98.0]), np.array([97.0, 97.0, 98.0, 98.0])
        )
        assert np.allclose(s1, s2)

    def test_empty_rejected(self):
        from repro.core.kernels.string_matching import _codes

        with pytest.raises(ConfigurationError):
            _codes(np.array([]))


class TestAdvisorEdges:
    def test_report_without_global_unit(self):
        """Flat-machine reports (unit 'mem') still classify."""
        from repro.analysis.advisor import diagnose
        from repro.machine.pipeline import UnitStats
        from repro.machine.report import RunReport
        from repro.params import MachineParams

        report = RunReport(
            cycles=10, num_threads=4, num_warps=1,
            unit_stats={"mem": UnitStats(transactions=2, reads=2,
                                         requests=8, slots=2)},
        )
        advice = diagnose(report, MachineParams(width=4, latency=5))
        assert advice.units["mem"].efficiency == 1.0

    def test_empty_report(self):
        from repro.analysis.advisor import diagnose
        from repro.machine.report import RunReport
        from repro.params import MachineParams

        report = RunReport(cycles=0, num_threads=1, num_warps=0)
        advice = diagnose(report, MachineParams(width=4, latency=5))
        assert advice.findings  # always says *something*


class TestTable1Render:
    def test_render_contains_all_models(self):
        """Smoke the driver's rendering on a synthetic result."""
        from repro.analysis.fitting import FitResult
        from repro.experiments.table1 import MODELS, Table1Result

        fit = FitResult(("n",), (1.0,), 0.999, 0.01)
        result = Table1Result(
            sum_fits={m: fit for m in MODELS},
            conv_fits={m: fit for m in MODELS},
            sum_points=[], conv_points=[],
            sum_measured={}, conv_measured={},
        )
        text = result.render()
        for m in MODELS:
            assert m in text
        assert "R^2" in text


class TestSortingValidation:
    def test_empty_rejected_hmm(self):
        from repro.core.kernels.sorting import hmm_bitonic_sort
        from repro.machine.hmm import HMMEngine
        from repro.params import TINY

        with pytest.raises(ConfigurationError):
            hmm_bitonic_sort(HMMEngine(TINY), np.array([]), 4)


class TestDoctests:
    def test_machines_doctest(self):
        """The façade docstring example stays correct."""
        import doctest

        import repro.core.machines as mod

        results = doctest.testmod(mod, verbose=False)
        assert results.attempted > 0
        assert results.failed == 0
