"""Cycle-exact checks against the arithmetic the paper spells out.

These tests pin the simulator to the numbers derivable by hand from
Sections II-IV: the Figure 4 pipeline example, the contiguous-access
counts behind Lemma 1, and the bank / address-group layout of Figure 3.
"""

import numpy as np
import pytest

from repro.machine.banks import bank_group_table
from repro.machine.trace import TraceRecorder
from repro.core.kernels.contiguous import contiguous_read

from conftest import make_dmm, make_umm


class TestFigure4:
    """Two warps, w = 4, l = 5: W(0) spans address groups {0,1,3}
    (requests 15, 2, 6, 0), W(1) spans group 2 (requests 8-11).
    The paper computes (3 + 1) + 5 - 1 = 8 time units."""

    def test_total_time_units(self):
        eng = make_umm(width=4, latency=5)
        a = eng.alloc(16, "a")
        pattern = {0: np.array([15, 2, 6, 0]), 1: np.array([8, 9, 10, 11])}

        def prog(warp):
            yield warp.read(a, pattern[warp.warp_id])

        assert eng.launch(prog, 8).cycles == 8

    def test_slot_accounting(self):
        eng = make_umm(width=4, latency=5)
        a = eng.alloc(16, "a")
        tr = TraceRecorder()
        pattern = {0: np.array([15, 2, 6, 0]), 1: np.array([8, 9, 10, 11])}

        def prog(warp):
            yield warp.read(a, pattern[warp.warp_id])

        eng.launch(prog, 8, trace=tr)
        by_warp = {r.warp_id: r for r in tr.records}
        assert by_warp[0].slots == 3
        assert by_warp[1].slots == 1
        assert by_warp[1].start == 3  # queued behind W(0)

    def test_same_example_on_dmm_is_cheaper(self):
        """W(0)'s requests {15, 2, 6, 0} hit banks {3, 2, 2, 0}: conflict
        degree 2 on the DMM versus 3 address groups on the UMM, so the
        same access pattern costs 2 + 1 + 5 - 1 = 7 instead of 8 — the
        architectural difference of Figure 1."""
        eng = make_dmm(width=4, latency=5)
        a = eng.alloc(16, "a")
        pattern = {0: np.array([15, 2, 6, 0]), 1: np.array([8, 9, 10, 11])}

        def prog(warp):
            yield warp.read(a, pattern[warp.warp_id])

        assert eng.launch(prog, 8).cycles == 2 + 1 + 5 - 1


class TestContiguousAccessCounts:
    """Section IV's exact counts for [Contiguous memory access]."""

    @pytest.mark.parametrize("machine", [make_dmm, make_umm])
    def test_one_round_p_threads(self, machine):
        """n = p: p/w coalesced transactions pipeline to p/w + l - 1."""
        w, l, p = 4, 5, 32
        eng = machine(width=w, latency=l)
        a = eng.alloc(p)
        report = eng.launch(contiguous_read(a, p), p)
        assert report.cycles == p // w + l - 1

    @pytest.mark.parametrize("machine", [make_dmm, make_umm])
    def test_saturated_pipeline(self, machine):
        """p/w >= l: n/p rounds cost ~n/w + l - 1 (full overlap).

        With p/w >= l each warp's next request is due by the time the
        port frees, so the port never idles: the exact count is
        n/w + l - 1.
        """
        w, l, p, n = 4, 4, 32, 128  # p/w = 8 >= l = 4
        eng = machine(width=w, latency=l)
        a = eng.alloc(n)
        report = eng.launch(contiguous_read(a, n), p)
        assert report.cycles == n // w + l - 1

    @pytest.mark.parametrize("machine", [make_dmm, make_umm])
    def test_latency_bound_pipeline(self, machine):
        """p/w < l: each round costs l (thread reissue gating), so the
        total is (n/p) * l + (p/w - 1): latency-dominated."""
        w, l, p, n = 4, 10, 8, 64  # p/w = 2 < l
        eng = machine(width=w, latency=l)
        a = eng.alloc(n)
        report = eng.launch(contiguous_read(a, n), p)
        rounds = n // p
        assert report.cycles == (rounds - 1) * l + (p // w - 1) + l

    def test_single_warp_case(self):
        """p = w (one warp): n/p requests at l each = nl/p... exactly
        (n/w) * l total with no overlap for one warp."""
        w, l, n = 4, 6, 32
        eng = make_umm(width=w, latency=l)
        a = eng.alloc(n)
        report = eng.launch(contiguous_read(a, n), w)
        assert report.cycles == (n // w) * l

    def test_fewer_threads_than_width(self):
        """p < w: a single partial warp, n/p requests, l each."""
        w, l, p, n = 8, 5, 4, 16
        eng = make_umm(width=w, latency=l)
        a = eng.alloc(n)
        report = eng.launch(contiguous_read(a, n), p)
        assert report.cycles == (n // p) * l


class TestFigure3:
    def test_layout_matches_paper(self):
        """Figure 3: addresses 0..15 at w=4 — row g is group g, column b
        is bank b."""
        table = bank_group_table(16, 4)
        for a in range(16):
            assert table[a // 4, a % 4] == a
