"""Fitting and optimality machinery."""

import numpy as np
import pytest

from repro.analysis.costmodel import SUM_FORMULAS
from repro.analysis.fitting import FitResult, fit_terms, nnls
from repro.analysis.lower_bounds import SUM_BOUNDS
from repro.analysis.optimality import check_optimality
from repro.analysis.sweeps import SweepPoint, grid, run_sweep
from repro.analysis.terms import Formula, Params, Term
from repro.errors import ConfigurationError


def synthetic_points():
    return [
        Params(n=n, p=p, w=8, l=l)
        for n in (64, 128, 256, 512)
        for p in (8, 32)
        for l in (1, 16)
    ]


class TestNNLS:
    def test_exact_recovery(self):
        rng = np.random.default_rng(0)
        design = np.abs(rng.normal(size=(30, 3))) + 0.1
        true = np.array([2.0, 0.0, 5.0])
        coef = nnls(design, design @ true)
        assert np.allclose(coef, true, atol=1e-8)

    def test_nonnegative(self):
        rng = np.random.default_rng(1)
        design = np.abs(rng.normal(size=(20, 2)))
        target = design @ np.array([1.0, -3.0])  # unreachable negatively
        coef = nnls(design, target)
        assert (coef >= 0).all()


class TestFitTerms:
    def test_recovers_known_coefficients(self):
        formula = SUM_FORMULAS["dmm"]  # n/w + nl/p + l·log n
        points = synthetic_points()
        truth = [2.0 * q.n / q.w + 1.0 * q.n * q.l / q.p + 3.0 * q.l *
                 np.log2(q.n) for q in points]
        fit = fit_terms(formula, points, truth)
        assert fit.r_squared > 0.9999
        assert fit.coefficient_for("n/w") == pytest.approx(2.0, rel=1e-6)
        assert fit.coefficient_for("nl/p") == pytest.approx(1.0, rel=1e-6)
        assert fit.coefficient_for("l log n") == pytest.approx(3.0, rel=1e-6)

    def test_prediction_at_new_point(self):
        formula = SUM_FORMULAS["dmm"]
        points = synthetic_points()
        truth = [formula(q) for q in points]
        fit = fit_terms(formula, points, truth)
        fresh = Params(n=1024, p=16, w=8, l=8)
        assert fit.predict(formula, fresh) == pytest.approx(formula(fresh), rel=1e-6)

    def test_describe_mentions_r2(self):
        formula = SUM_FORMULAS["pram"]
        points = synthetic_points()
        fit = fit_terms(formula, points, [formula(q) for q in points])
        assert "R^2" in fit.describe()

    def test_too_few_points_rejected(self):
        formula = SUM_FORMULAS["dmm"]
        with pytest.raises(ConfigurationError):
            fit_terms(formula, [Params(n=8)], [1.0])

    def test_length_mismatch_rejected(self):
        formula = SUM_FORMULAS["pram"]
        with pytest.raises(ConfigurationError):
            fit_terms(formula, synthetic_points(), [1.0])

    def test_missing_term_keyerror(self):
        formula = SUM_FORMULAS["pram"]
        points = synthetic_points()
        fit = fit_terms(formula, points, [formula(q) for q in points])
        with pytest.raises(KeyError):
            fit.coefficient_for("nk/w")


class TestOptimality:
    def test_sound_and_tight(self):
        points = synthetic_points()
        bounds = SUM_BOUNDS["dmm"]
        measured = [
            2.0 * max(f(q) for f in bounds.values()) for q in points
        ]
        report = check_optimality(bounds, points, measured)
        assert report.sound
        assert report.worst_ratio == pytest.approx(2.0)
        assert report.tight_within(2.5)
        assert not report.tight_within(1.5)

    def test_violation_detected(self):
        points = synthetic_points()
        bounds = SUM_BOUNDS["dmm"]
        measured = [0.1 for _ in points]  # impossibly fast
        report = check_optimality(bounds, points, measured)
        assert not report.sound
        assert len(report.violations) == len(points)
        assert "VIOLATED" in report.describe()

    def test_empty_rejected(self):
        with pytest.raises(ConfigurationError):
            check_optimality(SUM_BOUNDS["dmm"], [], [])

    def test_length_mismatch(self):
        with pytest.raises(ConfigurationError):
            check_optimality(SUM_BOUNDS["dmm"], synthetic_points(), [1.0])


class TestSweeps:
    def test_grid(self):
        pts = grid(n=[4, 8], l=[1, 2])
        assert len(pts) == 4
        assert {"n": 8, "l": 2} in pts

    def test_run_sweep_plain_and_extra(self):
        points = [Params(n=4), Params(n=8)]

        def measure(q):
            if q.n == 4:
                return 10
            return 20, {"slots": 3.0}

        rows = run_sweep(measure, points)
        assert [r.cycles for r in rows] == [10, 20]
        assert rows[1].extra == {"slots": 3.0}

    def test_exceptions_propagate(self):
        def measure(q):
            raise RuntimeError("boom")

        with pytest.raises(RuntimeError):
            run_sweep(measure, [Params(n=4)])
