"""Table I formulas and the term vocabulary."""

import math

import pytest

from repro.analysis.costmodel import (
    CONV_FORMULAS,
    SUM_FORMULAS,
    convolution_time,
    sum_time,
)
from repro.analysis.terms import Params
from repro.errors import ConfigurationError


class TestParams:
    def test_defaults(self):
        q = Params(n=100)
        assert q.p == 1 and q.w == 32 and q.l == 1 and q.d == 1 and q.k == 0

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            Params(n=0)
        with pytest.raises(ConfigurationError):
            Params(n=1, p=0)
        with pytest.raises(ConfigurationError):
            Params(n=1, k=-1)


class TestSumFormulas:
    Q = Params(n=1 << 16, p=1024, w=32, l=200, d=16)

    def test_sequential(self):
        assert sum_time("sequential", self.Q) == 1 << 16

    def test_pram(self):
        assert sum_time("pram", self.Q) == pytest.approx(64 + 16)

    def test_dmm_umm_equal(self):
        assert sum_time("dmm", self.Q) == sum_time("umm", self.Q)

    def test_dmm_value(self):
        n, p, w, l = 1 << 16, 1024, 32, 200
        expected = n / w + n * l / p + l * 16
        assert sum_time("dmm", self.Q) == pytest.approx(expected)

    def test_hmm_value(self):
        n, p, w, l = 1 << 16, 1024, 32, 200
        expected = n / w + n * l / p + l + 16
        assert sum_time("hmm", self.Q) == pytest.approx(expected)

    def test_hmm_beats_dmm_when_latency_large(self):
        """The whole point of Theorem 7: HMM < DMM/UMM once l·log n
        dominates."""
        assert sum_time("hmm", self.Q) < sum_time("dmm", self.Q)

    def test_ordering_at_paper_scale(self):
        """PRAM <= HMM <= DMM/UMM <= sequential at GPU-like parameters."""
        q = self.Q
        assert sum_time("pram", q) <= sum_time("hmm", q)
        assert sum_time("hmm", q) <= sum_time("dmm", q)
        assert sum_time("dmm", q) <= sum_time("sequential", q)

    def test_unknown_model(self):
        with pytest.raises(ConfigurationError):
            sum_time("gpu", self.Q)


class TestConvolutionFormulas:
    Q = Params(n=1 << 14, k=64, p=4096, w=32, l=200, d=16)

    def test_sequential(self):
        assert convolution_time("sequential", self.Q) == (1 << 14) * 64

    def test_hmm_speedup_term(self):
        """HMM gains the d-fold nk/(dw) term over the flat machines."""
        q = self.Q
        flat = convolution_time("dmm", q)
        hier = convolution_time("hmm", q)
        assert hier < flat
        # The dominant flat term nk/w is d times the HMM's nk/(dw).
        assert flat / hier > 4

    def test_hmm_general_upper_bounds_corollary(self):
        """Theorem 9's unconditional form only adds terms."""
        q = self.Q
        assert convolution_time("hmm_general", q) >= convolution_time("hmm", q)

    def test_requires_k(self):
        with pytest.raises(ConfigurationError):
            convolution_time("dmm", Params(n=16, p=4, k=0))

    def test_formula_text_rendering(self):
        assert SUM_FORMULAS["hmm"].text() == "O(n/w + nl/p + l + log n)"
        assert CONV_FORMULAS["dmm"].text() == "O(nk/w + nkl/p + l log k)"

    def test_term_values_breakdown(self):
        q = Params(n=64, k=4, p=8, w=4, l=2, d=2)
        vals = CONV_FORMULAS["dmm"].term_values(q)
        assert vals["nk/w"] == 64.0
        assert vals["nkl/p"] == 64.0
        assert vals["l log k"] == 4.0

    def test_max_term(self):
        q = Params(n=64, k=4, p=8, w=4, l=2, d=2)
        assert CONV_FORMULAS["dmm"].max_term(q) == 64.0


class TestEdgeCases:
    def test_n_equals_one(self):
        """log terms clamp at 1 instead of vanishing."""
        q = Params(n=1, p=1, w=4, l=2)
        assert sum_time("pram", q) >= 1
        assert sum_time("hmm", q) >= 1
