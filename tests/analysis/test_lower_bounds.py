"""Table II lower bounds."""

import math

import pytest

from repro.analysis.costmodel import convolution_time, sum_time
from repro.analysis.lower_bounds import (
    CONV_BOUNDS,
    SUM_BOUNDS,
    convolution_lower_bound,
    sum_lower_bound,
)
from repro.analysis.terms import Params
from repro.errors import ConfigurationError


class TestStructure:
    def test_pram_has_no_memory_limitations(self):
        assert set(SUM_BOUNDS["pram"]) == {"speed-up", "reduction"}
        assert set(CONV_BOUNDS["pram"]) == {"speed-up", "reduction"}

    def test_memory_machines_have_all_four(self):
        for model in ("dmm", "umm", "hmm"):
            assert set(SUM_BOUNDS[model]) == {
                "speed-up", "bandwidth", "latency", "reduction"
            }

    def test_umm_aliases_dmm(self):
        assert SUM_BOUNDS["umm"] is SUM_BOUNDS["dmm"]
        assert CONV_BOUNDS["umm"] is CONV_BOUNDS["dmm"]


class TestValues:
    Q = Params(n=1 << 16, k=64, p=1024, w=32, l=200, d=16)

    def test_sum_limitations(self):
        q = self.Q
        b = SUM_BOUNDS["hmm"]
        assert b["speed-up"](q) == q.n / q.p
        assert b["bandwidth"](q) == q.n / q.w
        assert b["latency"](q) == q.n * q.l / q.p + q.l
        assert b["reduction"](q) == 16

    def test_dmm_reduction_pays_latency(self):
        q = self.Q
        assert SUM_BOUNDS["dmm"]["reduction"](q) == 200 * 16
        assert SUM_BOUNDS["hmm"]["reduction"](q) == 16

    def test_conv_speedup_hierarchy(self):
        """PRAM: nk/p; DMM/UMM: nk/w; HMM: nk/(dw)."""
        q = self.Q
        assert CONV_BOUNDS["pram"]["speed-up"](q) == q.n * q.k / q.p
        assert CONV_BOUNDS["dmm"]["speed-up"](q) == q.n * q.k / q.w
        assert CONV_BOUNDS["hmm"]["speed-up"](q) == q.n * q.k / (q.d * q.w)

    def test_combine_modes(self):
        q = self.Q
        assert sum_lower_bound("hmm", q, combine="max") <= sum_lower_bound(
            "hmm", q, combine="sum"
        )
        with pytest.raises(ConfigurationError):
            sum_lower_bound("hmm", q, combine="avg")

    def test_unknown_model(self):
        with pytest.raises(ConfigurationError):
            sum_lower_bound("cray", self.Q)

    def test_conv_requires_k(self):
        with pytest.raises(ConfigurationError):
            convolution_lower_bound("hmm", Params(n=4, k=0))


class TestConsistencyWithTable1:
    """The Table I formulas must dominate their own Table II bounds —
    the paper's optimality statement at the formula level."""

    GRID = [
        Params(n=n, k=k, p=p, w=w, l=l, d=d)
        for n in (1 << 10, 1 << 16)
        for k in (16, 64)
        for p in (64, 4096)
        for w in (16, 32)
        for l in (1, 300)
        for d in (4, 16)
    ]

    @pytest.mark.parametrize("model", ["pram", "dmm", "umm", "hmm"])
    def test_sum_upper_dominates_lower(self, model):
        for q in self.GRID:
            upper = sum_time(model, q)
            lower = sum_lower_bound(model, q, combine="max")
            assert upper >= lower * 0.999, (model, q)
            # and within a small constant (number of limitation terms):
            assert upper <= 4 * sum_lower_bound(model, q, combine="sum"), (model, q)

    @pytest.mark.parametrize("model", ["pram", "dmm", "umm", "hmm"])
    def test_conv_upper_dominates_lower(self, model):
        for q in self.GRID:
            upper = convolution_time(model, q)
            lower = convolution_lower_bound(model, q, combine="max")
            assert upper >= lower * 0.999, (model, q)
            assert upper <= 4 * convolution_lower_bound(
                model, q, combine="sum"
            ), (model, q)
