"""The machine-checked obliviousness / conflict-freedom pass."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.analysis.certify import (
    certify_launch,
    conflict_violations,
    trace_signature,
)
from repro.machine.trace import TraceRecorder
from repro.core.kernels.conflict_free import flat_cf_sort
from repro.core.kernels.merge import flat_merge
from repro.core.kernels.sorting import flat_bitonic_sort

from conftest import make_dmm


class TestTraceSignature:
    def test_same_stream_same_digest(self, rng):
        vals = rng.normal(size=64)
        sigs = []
        for _ in range(2):
            trace = TraceRecorder()
            flat_cf_sort(make_dmm(), vals.copy(), 16, trace=trace)
            sigs.append(trace_signature(trace))
        assert sigs[0] == sigs[1]

    def test_data_independence_for_oblivious_kernel(self, rng):
        """Distinct inputs, identical access stream."""
        sigs = []
        for _ in range(2):
            trace = TraceRecorder()
            flat_cf_sort(make_dmm(), rng.normal(size=64), 16, trace=trace)
            sigs.append(trace_signature(trace))
        assert sigs[0] == sigs[1]

    def test_data_dependence_detected(self, rng):
        """Merge-path splits depend on the data: digests diverge."""
        sigs = []
        for _ in range(2):
            a = np.sort(rng.normal(size=48))
            b = np.sort(rng.normal(size=16))
            trace = TraceRecorder()
            flat_merge(make_dmm(), a, b, 16, trace=trace)
            sigs.append(trace_signature(trace))
        assert sigs[0] != sigs[1]

    def test_latency_invariance(self, rng):
        """Timing is excluded: same kernel at different l, same digest."""
        vals = rng.normal(size=64)
        sigs = []
        for l in (2, 37):
            trace = TraceRecorder()
            flat_cf_sort(make_dmm(latency=l), vals.copy(), 16, trace=trace)
            sigs.append(trace_signature(trace))
        assert sigs[0] == sigs[1]


class TestConflictViolations:
    def _trace_for(self, stride, w=8):
        eng = make_dmm(width=w)
        a = eng.alloc(1024, "a")
        trace = TraceRecorder()

        def program(warp):
            yield warp.read(a, warp.tids * stride)

        eng.launch(program, w, trace=trace)
        return trace

    def test_clean_stride_has_no_violations(self):
        excess, viol = conflict_violations(self._trace_for(1), 8)
        assert excess == 0 and viol == []

    def test_bank_conflict_is_flagged(self):
        # stride = w: all 8 addresses land in bank 0 -> 8 slots, floor 1.
        excess, viol = conflict_violations(self._trace_for(8), 8)
        assert excess == 7
        assert len(viol) == 1
        v = viol[0]
        assert v.slots == 8 and v.min_slots == 1 and v.excess == 7
        assert "avoidable excess 7" in v.describe()

    def test_excess_matches_unit_stats(self, rng):
        eng = make_dmm(width=8)
        trace = TraceRecorder()
        _, report = flat_bitonic_sort(eng, rng.normal(size=256), 32,
                                      trace=trace)
        excess, _ = conflict_violations(trace, 8)
        assert excess == sum(
            s.excess_slots for s in report.unit_stats.values())

    def test_bad_width_rejected(self):
        with pytest.raises(ConfigurationError):
            conflict_violations(TraceRecorder(), 0)


class TestCertifyLaunch:
    def test_certifies_conflict_free_oblivious_kernel(self):
        def run(rng, trace):
            flat_cf_sort(make_dmm(width=8), rng.standard_normal(64), 16,
                         trace=trace)

        report = certify_launch(run, width=8)
        assert report.certified
        assert report.oblivious and report.conflict_free
        assert report.runs == 3
        assert len(set(report.signatures)) == 1
        assert report.transactions > 0
        assert "CERTIFIED" in report.describe()

    def test_refuses_conflicted_oblivious_kernel(self):
        def run(rng, trace):
            flat_bitonic_sort(make_dmm(width=8), rng.standard_normal(256),
                              32, trace=trace)

        report = certify_launch(run, width=8)
        assert report.oblivious
        assert not report.conflict_free
        assert not report.certified
        assert report.avoidable_excess_slots > 0
        assert report.violations
        assert "REFUSED" in report.describe()

    def test_refuses_non_oblivious_kernel(self):
        def run(rng, trace):
            a = np.sort(rng.standard_normal(48))
            b = np.sort(rng.standard_normal(16))
            flat_merge(make_dmm(width=8), a, b, 16, trace=trace)

        report = certify_launch(run, width=8)
        assert not report.oblivious
        assert not report.certified
        assert len(set(report.signatures)) > 1

    def test_needs_two_runs(self):
        with pytest.raises(ConfigurationError):
            certify_launch(lambda rng, trace: None, width=8, runs=1)

    def test_deterministic_in_seed(self):
        def run(rng, trace):
            flat_cf_sort(make_dmm(), rng.standard_normal(32), 8,
                         trace=trace)

        a = certify_launch(run, width=4, seed=7)
        b = certify_launch(run, width=4, seed=7)
        assert a == b
