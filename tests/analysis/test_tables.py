"""Table rendering."""

import pytest

from repro.analysis.tables import format_grid, render_table1, render_table2
from repro.analysis.terms import Params


class TestFormatGrid:
    def test_alignment(self):
        out = format_grid(["a", "long"], [["xx", "y"], ["x", "yyyy"]])
        lines = out.splitlines()
        assert len(lines) == 4
        widths = {len(l.rstrip()) for l in (lines[0], lines[2], lines[3])}
        # All rows fit within the header+rule width.
        assert max(len(l) for l in lines) == len(lines[1])


class TestTable1:
    def test_symbolic(self):
        out = render_table1()
        assert "Sequential" in out
        assert "DMM and UMM" in out
        assert "O(n/w + nl/p + l log n)" in out
        assert "O(n/w + nk/dw + nl/p + l + log k)" in out
        assert "=" not in out  # no numeric column without params

    def test_numeric(self):
        q = Params(n=1 << 16, k=32, p=1024, w=32, l=200, d=16)
        out = render_table1(q)
        assert "= 65536" in out  # sequential sum
        assert "n=65536" in out

    def test_numeric_without_k_skips_conv_numbers(self):
        q = Params(n=256, p=16, w=8, l=4)
        out = render_table1(q)
        assert "O(nk)" in out
        # The sum column is evaluated, the conv column stays symbolic.
        assert "O(n) = 256" in out


class TestTable2:
    def test_symbolic_structure(self):
        out = render_table2()
        assert "Sum" in out and "Direct convolution" in out
        for lim in ("speed-up", "bandwidth", "latency", "reduction"):
            assert lim in out
        # PRAM has no bandwidth/latency limitations.
        assert "-" in out

    def test_numeric(self):
        q = Params(n=1 << 16, k=32, p=1024, w=32, l=200, d=16)
        out = render_table2(q)
        assert "Ω(n/w) = 2048" in out
        assert "Ω(nk/dw) = 4096" in out

    def test_hmm_reduction_is_log_not_llog(self):
        out = render_table2()
        # Row order: the sum reduction row lists PRAM, DMM/UMM, HMM.
        row = next(l for l in out.splitlines() if "Ω(l log n)" in l)
        assert row.rstrip().endswith("Ω(log n)")
