"""The sweep executor: sharding, caching, and determinism guarantees.

The measure functions are module-level (picklable for the process-pool
paths) and cheap.  Invocations are counted through a side-channel file
named by ``REPRO_TEST_COUNT_FILE`` — appends are atomic enough at these
sizes and work across fork, so the counts see worker processes too.
"""

import json
import os

import pytest

from repro.analysis.executor import (
    CacheStats,
    ResultCache,
    SweepExecutor,
    describe_measure,
    point_key,
    resolve_jobs,
)
from repro.analysis.sweeps import SweepPoint, grid, run_sweep
from repro.analysis.terms import Params

GRID = list(grid(n=(8, 16, 32), l=(1, 2)))
POINTS = [Params(n=q["n"], p=4, w=4, l=q["l"]) for q in GRID]


def _count_invocation() -> None:
    path = os.environ.get("REPRO_TEST_COUNT_FILE")
    if path:
        with open(path, "a") as fh:
            fh.write("x\n")


def _invocations(path) -> int:
    return len(path.read_text().splitlines()) if path.exists() else 0


def cheap_measure(q) -> tuple[int, dict]:
    _count_invocation()
    return q.n * q.l + 7, {"n": q.n}


def cheap_measure_dict(q) -> int:
    _count_invocation()
    return q["n"] * q["l"] + 7


def failing_measure(q) -> int:
    if q.n == 16:
        raise RuntimeError("boom at n=16")
    return q.n


@pytest.fixture()
def count_file(tmp_path, monkeypatch):
    path = tmp_path / "invocations"
    monkeypatch.setenv("REPRO_TEST_COUNT_FILE", str(path))
    return path


@pytest.fixture()
def cache_dir(tmp_path):
    return tmp_path / "cache"


class TestSerialSemantics:
    def test_matches_legacy_loop(self):
        """``run_sweep`` defaults == the historical in-process loop."""
        rows = run_sweep(cheap_measure, POINTS)
        legacy = [
            SweepPoint(params=q, cycles=cheap_measure(q)[0], extra={"n": q.n})
            for q in POINTS
        ]
        assert rows == legacy

    def test_grid_order_preserved(self):
        rows = run_sweep(cheap_measure, POINTS)
        assert [r.params for r in rows] == POINTS

    def test_dict_points(self):
        pts = [dict(n=8, l=2), dict(n=16, l=1)]
        rows = run_sweep(cheap_measure_dict, pts)
        assert [r.cycles for r in rows] == [8 * 2 + 7, 16 * 1 + 7]
        assert rows[0].params is pts[0]

    def test_int_return_normalized(self):
        rows = run_sweep(cheap_measure_dict, [dict(n=8, l=1)])
        assert rows[0].extra == {}

    def test_exception_propagates_serial(self):
        with pytest.raises(RuntimeError, match="boom at n=16"):
            run_sweep(failing_measure, POINTS, jobs=1)

    def test_exception_propagates_parallel(self):
        with pytest.raises(RuntimeError, match="boom at n=16"):
            run_sweep(failing_measure, POINTS, jobs=4)


class TestParallelIdentity:
    def test_jobs4_equals_jobs1(self, cache_dir):
        serial = run_sweep(cheap_measure, POINTS, jobs=1)
        parallel = run_sweep(cheap_measure, POINTS, jobs=4)
        assert parallel == serial

    def test_jobs4_with_cache_equals_jobs1(self, cache_dir):
        serial = run_sweep(cheap_measure, POINTS, jobs=1)
        parallel = run_sweep(
            cheap_measure, POINTS, jobs=4, cache=True, cache_dir=cache_dir
        )
        assert parallel == serial

    def test_resolve_jobs_clamps(self):
        assert resolve_jobs(8, 3) == 3
        assert resolve_jobs(2, 100) == 2
        assert resolve_jobs(1, 0) == 1
        assert resolve_jobs("auto", 100) >= 1
        assert resolve_jobs("auto", 1) == 1
        with pytest.raises(ValueError):
            resolve_jobs(-1, 10)


class TestCache:
    def test_warm_rerun_all_hits_no_recompute(self, cache_dir, count_file):
        ex = SweepExecutor(cache=True, cache_dir=cache_dir)
        cold = ex.run(cheap_measure, POINTS)
        after_cold = _invocations(count_file)
        assert after_cold == len(POINTS)

        warm_ex = SweepExecutor(cache=True, cache_dir=cache_dir)
        warm = warm_ex.run(cheap_measure, POINTS)
        assert warm == cold
        assert _invocations(count_file) == after_cold  # nothing re-measured
        assert warm_ex.cache.hits == len(POINTS)
        assert warm_ex.cache.misses == 0

    def test_cache_env_off_forces_recompute(
        self, cache_dir, count_file, monkeypatch
    ):
        run_sweep(cheap_measure, POINTS, cache=True, cache_dir=cache_dir)
        monkeypatch.setenv("REPRO_SWEEP_CACHE", "off")
        run_sweep(cheap_measure, POINTS, cache=True, cache_dir=cache_dir)
        assert _invocations(count_file) == 2 * len(POINTS)

    def test_fingerprint_invalidates_and_restores(self, cache_dir, count_file):
        def run(fp):
            return SweepExecutor(
                cache=True, cache_dir=cache_dir, fingerprint=fp
            ).run(cheap_measure, POINTS)

        a1 = run("A")
        assert _invocations(count_file) == len(POINTS)
        b = run("B")  # different fingerprint: full recompute
        assert _invocations(count_file) == 2 * len(POINTS)
        a2 = run("A")  # the old entries are still valid under "A"
        assert _invocations(count_file) == 2 * len(POINTS)
        assert a1 == a2 == b

    def test_mode_distinguishes_keys(self, cache_dir, count_file):
        run_sweep(
            cheap_measure, POINTS, cache=True, cache_dir=cache_dir,
            mode="batch",
        )
        run_sweep(
            cheap_measure, POINTS, cache=True, cache_dir=cache_dir,
            mode="event",
        )
        assert _invocations(count_file) == 2 * len(POINTS)

    def test_label_not_in_key(self, cache_dir, count_file):
        run_sweep(
            cheap_measure, POINTS, cache=True, cache_dir=cache_dir, label="a"
        )
        run_sweep(
            cheap_measure, POINTS, cache=True, cache_dir=cache_dir, label="b"
        )
        assert _invocations(count_file) == len(POINTS)  # shared entries

    def test_corrupt_entry_skipped(self, cache_dir, count_file):
        ex = SweepExecutor(cache=True, cache_dir=cache_dir, fingerprint="F")
        ex.run(cheap_measure, POINTS)
        entries = sorted(cache_dir.glob("*.json"))
        assert entries
        victim = entries[0]
        blob = victim.read_bytes()
        victim.write_bytes(blob[: len(blob) // 2])  # truncate mid-entry

        warm = SweepExecutor(cache=True, cache_dir=cache_dir, fingerprint="F")
        rows = warm.run(cheap_measure, POINTS)
        assert rows == [
            SweepPoint(params=q, cycles=q.n * q.l + 7, extra={"n": q.n})
            for q in POINTS
        ]
        # Exactly the corrupted entry was recomputed...
        assert _invocations(count_file) == len(POINTS) + 1
        # ...after being quarantined, not deleted.
        quarantined = list((cache_dir / "quarantine").iterdir())
        assert [p.name for p in quarantined] == [victim.name]

    def test_legacy_shards_upgraded_in_place(self, cache_dir, count_file):
        """A cache dir holding pre-unification ``shard_*.jsonl`` files
        keeps answering: entries are imported on first open."""
        cold = SweepExecutor(
            cache=True, cache_dir=cache_dir, fingerprint="F"
        )
        cold.run(cheap_measure, POINTS)
        assert _invocations(count_file) == len(POINTS)
        # Rewrite the store entries as one legacy JSON-lines shard.
        entries = []
        for path in cache_dir.glob("*.json"):
            entries.append(json.loads(path.read_bytes().split(b"\n", 1)[1]))
            path.unlink()
        (cache_dir / ".migrated").unlink(missing_ok=True)
        (cache_dir / "shard_ab.jsonl").write_text(
            "\n".join(json.dumps(e) for e in entries) + "\n"
        )

        warm = SweepExecutor(
            cache=True, cache_dir=cache_dir, fingerprint="F"
        )
        warm.run(cheap_measure, POINTS)
        assert _invocations(count_file) == len(POINTS)  # all hits
        assert warm.cache.hits == len(POINTS)

    def test_clear_and_stats(self, cache_dir):
        ex = SweepExecutor(cache=True, cache_dir=cache_dir, fingerprint="F")
        ex.run(cheap_measure, POINTS)
        stats = ex.stats()
        assert isinstance(stats, CacheStats)
        assert stats.entries == len(POINTS)
        assert stats.stale_entries == 0
        assert stats.shards >= 1
        assert stats.size_bytes > 0
        assert ex.clear() == stats.shards
        assert ex.stats().entries == 0

    def test_stats_counts_stale(self, cache_dir):
        SweepExecutor(
            cache=True, cache_dir=cache_dir, fingerprint="OLD"
        ).run(cheap_measure, POINTS)
        stats = SweepExecutor(
            cache=True, cache_dir=cache_dir, fingerprint="NEW"
        ).stats()
        assert stats.entries == 0
        assert stats.stale_entries == len(POINTS)

    def test_no_cache_executor_stats_empty(self):
        ex = SweepExecutor(cache=False)
        assert ex.stats() == CacheStats(0, 0, 0, 0, 0, 0)
        assert ex.clear() == 0


class TestProgress:
    def test_progress_monotonic_and_complete(self, cache_dir):
        snaps = []
        run_sweep(
            cheap_measure, POINTS, cache=True, cache_dir=cache_dir,
            progress=snaps.append, label="unit/progress",
        )
        assert snaps[-1].done == snaps[-1].total == len(POINTS)
        assert all(s.label == "unit/progress" for s in snaps)
        assert all(
            a.done <= b.done for a, b in zip(snaps, snaps[1:])
        )
        assert snaps[-1].eta_s == 0.0
        assert "unit/progress" in snaps[-1].describe()

    def test_progress_reports_cache_hits(self, cache_dir):
        run_sweep(cheap_measure, POINTS, cache=True, cache_dir=cache_dir)
        snaps = []
        run_sweep(
            cheap_measure, POINTS, cache=True, cache_dir=cache_dir,
            progress=snaps.append,
        )
        assert snaps[-1].cache_hits == len(POINTS)


class TestKeys:
    def test_partial_bound_scalars_in_key(self):
        from functools import partial

        a = describe_measure(partial(cheap_measure_dict, extra=1))
        b = describe_measure(partial(cheap_measure_dict, extra=2))
        assert a != b
        assert a["fn"].endswith("cheap_measure_dict")

    def test_point_key_stable_across_point_types(self):
        desc = describe_measure(cheap_measure)
        as_params = Params(n=8, p=4, w=4, l=2)
        as_dict = {
            k: v for k, v in (("n", 8), ("p", 4), ("w", 4), ("l", 2))
        }
        k1 = point_key(desc, as_params, mode="batch", fingerprint="F")
        k2 = point_key(desc, as_params, mode="batch", fingerprint="F")
        assert k1 == k2
        assert point_key(desc, as_dict, mode="batch", fingerprint="F")

    def test_cache_roundtrip_via_file(self, cache_dir):
        key = "ab" + "0" * 62
        cache = ResultCache(cache_dir, "F")
        cache.put(key, 42, {"engine": "batch"})
        fresh = ResultCache(cache_dir, "F")
        assert fresh.get(key) == (42, {"engine": "batch"})
        # One framed entry file per key: a header line carrying the
        # payload digest, then the canonical-JSON record.
        header, payload = (
            (cache_dir / f"{key}.json").read_bytes().split(b"\n", 1)
        )
        assert header.startswith(b"repro-store 1 sweep ")
        entry = json.loads(payload)
        assert entry["fingerprint"] == "F"
        assert entry["key"] == key


class TestPoolReuse:
    def test_keep_pool_reuses_workers_across_runs(self):
        ex = SweepExecutor(jobs=2, cache=False, keep_pool=True)
        try:
            first = ex.run(cheap_measure, POINTS)
            pool = ex._pool
            assert pool is not None
            second = ex.run(cheap_measure, POINTS)
            assert ex._pool is pool  # same pool object, no respawn
            assert [p.cycles for p in first] == [p.cycles for p in second]
        finally:
            ex.close()
        assert ex._pool is None

    def test_keep_pool_grows_for_larger_job_counts(self):
        ex = SweepExecutor(jobs=1, cache=False, keep_pool=True)
        try:
            ex.run(cheap_measure, POINTS)
            small = ex._pool
            ex.jobs = 2
            ex.run(cheap_measure, POINTS)
            assert ex._pool is not small
            assert ex._pool_workers == 2
        finally:
            ex.close()

    def test_transient_default_leaves_no_pool(self):
        ex = SweepExecutor(jobs=2, cache=False)
        ex.run(cheap_measure, POINTS)
        assert ex._pool is None
        ex.close()  # no-op without a retained pool

    def test_context_manager_closes_pool(self):
        with SweepExecutor(jobs=2, cache=False, keep_pool=True) as ex:
            ex.run(cheap_measure, POINTS)
            assert ex._pool is not None
        assert ex._pool is None

    def test_keep_pool_results_match_serial(self):
        serial = SweepExecutor(jobs=1, cache=False).run(cheap_measure, POINTS)
        with SweepExecutor(jobs=2, cache=False, keep_pool=True) as ex:
            pooled = ex.run(cheap_measure, POINTS)
        assert [p.cycles for p in serial] == [p.cycles for p in pooled]
