"""Crossover analysis: formula-predicted regime boundaries match the
simulator's measured boundaries."""

import numpy as np
import pytest

from repro import HMM, UMM, HMMParams, MachineParams
from repro.analysis.costmodel import SUM_FORMULAS, sum_time
from repro.analysis.crossover import axis_values, crossover_point, saturation_point
from repro.analysis.terms import Params
from repro.errors import ConfigurationError


class TestAxisValues:
    def test_doubling(self):
        assert axis_values(4, 64) == [4, 8, 16, 32, 64]

    def test_doubling_with_ragged_top(self):
        assert axis_values(4, 48) == [4, 8, 16, 32, 48]

    def test_linear(self):
        assert axis_values(3, 6, doubling=False) == [3, 4, 5, 6]

    def test_invalid(self):
        with pytest.raises(ConfigurationError):
            axis_values(0, 8)
        with pytest.raises(ConfigurationError):
            axis_values(8, 4)


class TestCrossoverPoint:
    def test_hmm_overtakes_flat_in_latency(self):
        """The formulas put the HMM ahead of the flat machines once
        l·log n outweighs the HMM's flat l terms."""
        base = Params(n=1 << 13, p=512, w=16, l=1, d=8)
        point = crossover_point(
            SUM_FORMULAS["hmm"],
            SUM_FORMULAS["umm"],
            base,
            "l",
            axis_values(1, 1024),
        )
        assert point is not None
        assert point <= 8  # the hierarchy pays off almost immediately

    def test_never_crossing_returns_none(self):
        base = Params(n=1 << 10, p=64, w=16, l=4, d=8)
        point = crossover_point(
            SUM_FORMULAS["sequential"],
            SUM_FORMULAS["pram"],
            base,
            "l",
            axis_values(1, 64),
        )
        assert point is None  # sequential never beats the PRAM here

    def test_predicted_crossover_matches_measured(self, rng):
        """The latency at which the measured HMM sum overtakes the
        measured flat sum must agree with the formula prediction within
        one doubling step."""
        n, p, w, d = 1 << 12, 512, 16, 8
        base = Params(n=n, p=p, w=w, l=1, d=d)
        grid = axis_values(1, 256)
        predicted = crossover_point(
            SUM_FORMULAS["hmm"], SUM_FORMULAS["umm"], base, "l", grid
        )
        vals = rng.normal(size=n)
        measured = None
        for l in grid:
            hmm = HMM(HMMParams(num_dmms=d, width=w, global_latency=l))
            flat = UMM(MachineParams(width=w, latency=l))
            if hmm.sum(vals, p)[1].cycles < flat.sum(vals, p)[1].cycles:
                measured = l
                break
        assert measured is not None and predicted is not None
        # Within one doubling step of each other.
        assert predicted / 2 <= measured <= predicted * 2

    def test_bad_axis(self):
        with pytest.raises(ConfigurationError):
            crossover_point(
                SUM_FORMULAS["hmm"], SUM_FORMULAS["umm"],
                Params(n=8), "q", [1, 2],
            )


class TestSaturationPoint:
    def test_occupancy_saturates_near_lw(self):
        """Threads stop paying off (next doubling gains < 25%) within a
        couple of doublings of p = lw — where the nl/p latency term sinks
        below the n/w bandwidth floor."""
        base = Params(n=1 << 16, p=1, w=32, l=128, d=8)
        grid = axis_values(32, 1 << 16)
        point = saturation_point(
            SUM_FORMULAS["hmm"], base, "p", grid, gain_threshold=1.25
        )
        assert point is not None
        lw = 128 * 32
        assert lw / 2 <= point <= 4 * lw

    def test_measured_saturation_matches(self, rng):
        """The measured thread-scaling knee lands within a doubling of
        the predicted one."""
        n, w, l, d = 1 << 13, 16, 64, 8
        base = Params(n=n, p=1, w=w, l=l, d=d)
        grid = axis_values(64, 1 << 13)
        predicted = saturation_point(SUM_FORMULAS["hmm"], base, "p", grid)
        vals = rng.normal(size=n)
        measured = None
        prev_cycles = None
        for p in grid:
            machine = HMM(HMMParams(num_dmms=d, width=w, global_latency=l))
            cycles = machine.sum(vals, p)[1].cycles
            if prev_cycles is not None and prev_cycles / cycles < 1.10:
                measured = prev_p
                break
            prev_cycles, prev_p = cycles, p
        assert predicted is not None and measured is not None
        assert predicted / 4 <= measured <= predicted * 4

    def test_unsaturating_returns_none(self):
        base = Params(n=1 << 20, p=1, w=32, l=1, d=1)
        grid = axis_values(1, 64)
        # With n huge and p tiny the n/p-ish terms keep paying.
        point = saturation_point(SUM_FORMULAS["pram"], base, "p", grid)
        assert point is None

    def test_too_few_values(self):
        with pytest.raises(ConfigurationError):
            saturation_point(SUM_FORMULAS["pram"], Params(n=8), "p", [4])


class TestPredictAPI:
    def test_facade_predictions_match_costmodel(self):
        machine = HMM(HMMParams(num_dmms=8, width=16, global_latency=100))
        expected = sum_time(
            "hmm", Params(n=4096, p=256, w=16, l=100, d=8)
        )
        assert machine.predict_sum(4096, 256) == expected

    def test_prediction_brackets_measurement(self, rng):
        """The unit-coefficient estimate lands within the constant-factor
        band the fits establish (1/4x .. 4x here)."""
        machine = HMM(HMMParams(num_dmms=8, width=16, global_latency=64))
        vals = rng.normal(size=4096)
        _, report = machine.sum(vals, 512)
        predicted = machine.predict_sum(4096, 512)
        assert predicted / 4 <= report.cycles <= 4 * predicted

    def test_flat_prediction(self):
        machine = UMM(MachineParams(width=16, latency=32))
        assert machine.predict_sum(1024, 64) == sum_time(
            "umm", Params(n=1024, p=64, w=16, l=32)
        )
        assert machine.predict_convolution(256, 8, 64) > 0
