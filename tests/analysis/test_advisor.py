"""The kernel performance advisor."""

import numpy as np
import pytest

from repro import DMM, HMM, UMM, HMMParams, MachineParams
from repro.analysis.advisor import Regime, diagnose
from repro.core.kernels.contiguous import contiguous_read, strided_read

from conftest import make_dmm, make_umm


class TestUnitDiagnosis:
    def test_clean_kernel_full_efficiency(self):
        eng = make_umm(width=8)
        a = eng.alloc(256)
        report = eng.launch(contiguous_read(a, 256), 32)
        advice = diagnose(report, eng.params)
        assert advice.units["mem"].is_clean()
        assert advice.units["mem"].requests_per_slot == 8.0

    def test_strided_kernel_flagged(self):
        eng = make_umm(width=8)
        a = eng.alloc(256)
        report = eng.launch(strided_read(a, 256, 8), 32)
        advice = diagnose(report, eng.params)
        assert not advice.units["mem"].is_clean(0.95)
        assert any("avoidable" in f for f in advice.findings)

    def test_naive_transpose_flagged(self, rng):
        machine = HMM(HMMParams(num_dmms=2, width=8, global_latency=4))
        _, report = machine.transpose(rng.normal(size=(16, 16)), padded=False)
        advice = diagnose(report, machine.params)
        flagged = [f for f in advice.findings if "shared" in f]
        assert flagged

    def test_padded_transpose_clean(self, rng):
        machine = HMM(HMMParams(num_dmms=2, width=8, global_latency=4))
        _, report = machine.transpose(rng.normal(size=(16, 16)), padded=True)
        advice = diagnose(report, machine.params)
        assert all(d.is_clean() for d in advice.units.values())


class TestRegime:
    def test_latency_bound_at_low_occupancy(self, rng):
        machine = HMM(HMMParams(num_dmms=4, width=32, global_latency=400))
        _, report = machine.sum(rng.normal(size=4096), 64)
        advice = diagnose(report, machine.params)
        assert advice.regime is Regime.LATENCY_BOUND
        assert advice.occupancy_ratio < 1.0
        assert any("p >= lw" in f for f in advice.findings)

    def test_bandwidth_bound_at_high_occupancy(self, rng):
        machine = HMM(HMMParams(num_dmms=8, width=8, global_latency=2))
        _, report = machine.sum(rng.normal(size=1 << 13), 4096)
        advice = diagnose(report, machine.params)
        assert advice.regime is Regime.BANDWIDTH_BOUND
        assert any("bandwidth-bound" in f for f in advice.findings)

    def test_render_mentions_regime_and_units(self, rng):
        machine = UMM(MachineParams(width=8, latency=16))
        _, report = machine.sum(rng.normal(size=512), 64)
        advice = diagnose(report, machine.params)
        text = advice.render()
        assert "regime:" in text
        assert "mem" in text
        assert "occupancy" in text

    def test_flat_machine_params_accepted(self, rng):
        eng = make_dmm(width=8, latency=32)
        a = eng.alloc(128)
        report = eng.launch(contiguous_read(a, 128), 16)
        advice = diagnose(report, eng.params)
        assert advice.regime in (Regime.LATENCY_BOUND, Regime.BANDWIDTH_BOUND)

    def test_clean_run_reports_no_pathologies(self, rng):
        machine = HMM(HMMParams(num_dmms=8, width=8, global_latency=2))
        _, report = machine.sum(rng.normal(size=1 << 13), 4096)
        advice = diagnose(report, machine.params)
        # Bandwidth-bound is expected and reported, but no conflict or
        # occupancy pathology should be flagged.
        assert not any("avoidable" in f for f in advice.findings)
        assert not any("raising the thread count" in f for f in advice.findings)


class TestEdgeCases:
    def test_compute_only_kernel(self):
        """A kernel issuing zero memory transactions: no division by
        zero anywhere, compute-bound regime, units read as clean."""
        def compute_only(warp):
            yield warp.compute(10)

        eng = make_umm(width=8, latency=16)
        report = eng.launch(compute_only, 32)
        assert report.total_slots() == 0
        advice = diagnose(report, eng.params)
        assert advice.regime is Regime.COMPUTE_BOUND
        for d in advice.units.values():
            assert d.slots == 0
            assert d.efficiency == 1.0
            assert d.is_clean()
        assert np.isfinite(advice.occupancy_ratio)
        advice.render()  # no formatting crash either

    def test_single_partial_warp(self):
        """p smaller than the warp width: one partial warp issuing one
        aligned transaction — sane occupancy and regime, no crash."""
        eng = make_umm(width=8, latency=4)
        a = eng.alloc(8)

        def one_read(warp):
            yield warp.read(a, warp.tids)

        report = eng.launch(one_read, 3)
        assert report.num_warps == 1
        assert report.num_threads == 3
        assert report.unit_stats["mem"].slots == 1
        advice = diagnose(report, eng.params)
        assert advice.regime is Regime.LATENCY_BOUND
        assert 0.0 < advice.occupancy_ratio < 1.0
        # Three live lanes in one group: no avoidable slot, but the
        # occupancy rule must point at the tiny launch.
        assert not any("avoidable" in f for f in advice.findings)
        assert any("p >= lw" in f for f in advice.findings)
        advice.render()
