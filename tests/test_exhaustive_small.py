"""Exhaustive verification on tiny instances.

Where the space of inputs is small enough to enumerate completely, do
so: every permutation, every binary string, every size/thread
combination.  These tests close the gap that randomized suites leave —
on these instances the kernels are verified, not sampled.
"""

import itertools

import numpy as np
import pytest

from repro.core.kernels.permutation import (
    conflict_free_permutation_schedule,
    permutation_kernel,
)
from repro.core.kernels.sorting import flat_bitonic_sort
from repro.core.kernels.string_matching import (
    flat_approximate_match,
    reference_approximate_match,
)
from repro.core.machines import run_flat_prefix_sums, run_flat_sum

from conftest import make_dmm, make_hmm, make_umm


class TestAllPermutationsOfFour:
    """All 4! = 24 permutations of n = 4 cells at w = 2: the schedule
    decomposes every one into 2 conflict-free rounds and the kernel
    applies it exactly."""

    @pytest.mark.parametrize("perm", list(itertools.permutations(range(4))))
    def test_schedule_and_apply(self, perm):
        perm = np.array(perm)
        w = 2
        sched = conflict_free_permutation_schedule(perm, w)
        assert sorted(sched.ravel().tolist()) == [0, 1, 2, 3]
        for row in sched:
            assert np.unique(row % w).size == w
            assert np.unique(perm[row] % w).size == w
        eng = make_dmm(width=w, latency=2)
        a = eng.array_from(np.arange(4.0))
        b = eng.alloc(4)
        report = eng.launch(permutation_kernel(a, b, perm, sched), 2)
        expected = np.empty(4)
        expected[perm] = np.arange(4)
        assert np.allclose(b.to_numpy(), expected)
        assert report.conflict_free()


class TestAllTinySorts:
    """Every permutation of 4 distinct values sorts correctly, at every
    thread count from 1 to 8."""

    @pytest.mark.parametrize("perm", list(itertools.permutations(range(4))))
    def test_all_orders(self, perm):
        for p in (1, 3, 8):
            out, _ = flat_bitonic_sort(
                make_umm(width=4, latency=2), np.array(perm, dtype=float), p
            )
            assert out.tolist() == [0.0, 1.0, 2.0, 3.0], (perm, p)

    def test_all_binary_strings_of_six(self):
        """The 0-1 principle's premise, checked directly: all 64 binary
        inputs of length 6 sort correctly (so all inputs do)."""
        for bits in range(64):
            vals = np.array([(bits >> i) & 1 for i in range(6)], dtype=float)
            out, _ = flat_bitonic_sort(make_umm(width=4, latency=1), vals, 4)
            assert (np.diff(out) >= 0).all(), bits


class TestAllTinyEditDistances:
    """Every (pattern, text) pair over the binary alphabet with
    m <= 2, n <= 4 matches the reference DP — 2^m * 2^n cases each."""

    @pytest.mark.parametrize("m", [1, 2])
    @pytest.mark.parametrize("n", [1, 2, 3, 4])
    def test_binary_alphabet(self, m, n):
        for pbits in range(1 << m):
            pv = np.array([(pbits >> i) & 1 for i in range(m)], dtype=float)
            for tbits in range(1 << n):
                tv = np.array([(tbits >> i) & 1 for i in range(n)], dtype=float)
                out, _ = flat_approximate_match(
                    make_umm(width=4, latency=1), pv, tv, 4
                )
                ref = reference_approximate_match(pv, tv)
                assert np.allclose(out, ref), (pv, tv)


class TestAllTinySumsAndScans:
    """Every size 1..12 at every thread count 1..8 (flat) and every DMM
    count 1..3 (HMM): sums and scans are exact."""

    def test_flat_all_shapes(self):
        for n in range(1, 13):
            vals = np.arange(1.0, n + 1.0)
            for p in range(1, 9):
                total, _ = run_flat_sum(make_umm(width=4, latency=3), vals, p)
                assert total == n * (n + 1) / 2, (n, p)
                scan, _ = run_flat_prefix_sums(
                    make_umm(width=4, latency=3), vals, p
                )
                assert np.allclose(scan, np.cumsum(vals)), (n, p)

    def test_hmm_all_shapes(self):
        from repro.core.kernels.hmm_sum import hmm_sum
        from repro.core.kernels.prefix import hmm_prefix_sums

        for n in range(1, 13):
            vals = np.arange(1.0, n + 1.0)
            for d in (1, 2, 3):
                for p in (1, 2, 5, 8):
                    eng = make_hmm(num_dmms=d, width=4, global_latency=3)
                    total, _ = hmm_sum(eng, vals, p)
                    assert total == n * (n + 1) / 2, (n, d, p)
                    eng2 = make_hmm(num_dmms=d, width=4, global_latency=3)
                    scan, _ = hmm_prefix_sums(eng2, vals, p)
                    assert np.allclose(scan, np.cumsum(vals)), (n, d, p)


class TestAllTinyConvolutions:
    """Every (k, n) with k <= n <= 6 over small integer inputs, every
    thread count in {1, 3, 8, 24}: flat and HMM convolutions are exact."""

    def test_flat_and_hmm(self):
        from repro.core.kernels.hmm_conv import hmm_convolution
        from repro.core.machines import run_flat_convolution

        rng = np.random.default_rng(7)
        for n in range(1, 7):
            for k in range(1, n + 1):
                x = rng.integers(-2, 3, k).astype(float)
                y = rng.integers(-2, 3, n + k - 1).astype(float)
                ref = np.correlate(y, x, "valid")
                for p in (1, 3, 8, 24):
                    z, _ = run_flat_convolution(
                        make_umm(width=4, latency=2), x, y, p
                    )
                    assert np.allclose(z, ref), (n, k, p, "flat")
                z2, _ = hmm_convolution(
                    make_hmm(num_dmms=2, width=4, global_latency=3), x, y, 6
                )
                assert np.allclose(z2, ref), (n, k, "hmm")
