"""Sequential RAM and PRAM baselines (Table I columns 1-2)."""

import math

import numpy as np
import pytest

from repro.core.pram import PRAM
from repro.core.sequential import SequentialMachine
from repro.errors import ConfigurationError


class TestSequential:
    def test_sum_value_and_cost(self, rng):
        vals = rng.normal(size=100)
        r = SequentialMachine().sum(vals)
        assert np.isclose(r.value, vals.sum())
        assert r.cycles == 100 + 99  # n reads, n-1 additions
        assert r.accesses == 100
        assert r.arithmetic == 99

    def test_sum_single_element(self):
        r = SequentialMachine().sum(np.array([7.0]))
        assert r.value == 7.0
        assert r.arithmetic == 0

    def test_sum_empty_rejected(self):
        with pytest.raises(ConfigurationError):
            SequentialMachine().sum(np.array([]))

    def test_convolution_value(self, rng):
        x = rng.normal(size=5)
        y = rng.normal(size=20)
        r = SequentialMachine().convolution(x, y)
        assert np.allclose(r.value, np.correlate(y, x, "valid"))

    def test_convolution_cost_is_theta_nk(self, rng):
        x = rng.normal(size=4)
        y = rng.normal(size=35)  # n = 32
        r = SequentialMachine().convolution(x, y)
        nk = 32 * 4
        assert nk <= r.cycles <= 5 * nk

    def test_convolution_invalid(self, rng):
        with pytest.raises(ConfigurationError):
            SequentialMachine().convolution(np.array([]), np.array([1.0]))
        with pytest.raises(ConfigurationError):
            SequentialMachine().convolution(np.ones(5), np.ones(3))


class TestPRAMSum:
    @pytest.mark.parametrize("n", [1, 2, 7, 16, 100, 1000])
    @pytest.mark.parametrize("p", [1, 3, 16, 256])
    def test_value(self, rng, n, p):
        vals = rng.integers(-5, 10, n).astype(float)
        r = PRAM(p).sum(vals)
        assert np.isclose(r.value, vals.sum()), (n, p)

    def test_lemma3_cost_shape(self, rng):
        """O(n/p + log n) with small constants."""
        for n in (64, 1024):
            for p in (4, 32, 1024):
                vals = rng.normal(size=n)
                r = PRAM(p).sum(vals)
                predicted = n / p + math.log2(n)
                assert r.cycles <= 2 * predicted + 2, (n, p)
                assert r.cycles >= max(n / p - 1, math.log2(min(p, n))), (n, p)

    def test_work_bounded_by_n(self, rng):
        vals = rng.normal(size=100)
        r = PRAM(8).sum(vals)
        assert r.work == 99  # exactly n - 1 additions

    def test_single_processor_is_sequential(self, rng):
        vals = rng.normal(size=50)
        r = PRAM(1).sum(vals)
        assert r.cycles == 49

    def test_invalid_processors(self):
        with pytest.raises(ConfigurationError):
            PRAM(0)


class TestPRAMConvolution:
    @pytest.mark.parametrize("k,n", [(1, 4), (3, 10), (4, 16), (8, 64)])
    @pytest.mark.parametrize("p", [1, 8, 64, 512])
    def test_value(self, rng, k, n, p):
        x = rng.integers(1, 5, k).astype(float)
        y = rng.integers(1, 5, n + k - 1).astype(float)
        r = PRAM(p).convolution(x, y)
        assert np.allclose(r.value, np.correlate(y, x, "valid")), (k, n, p)

    def test_lemma4_cost_shape(self, rng):
        """O(nk/p + log k) with small constants."""
        for k, n in ((8, 64), (16, 128)):
            for p in (8, 64, n * k):
                x = rng.normal(size=k)
                y = rng.normal(size=n + k - 1)
                r = PRAM(p).convolution(x, y)
                predicted = n * k / p + math.log2(k)
                assert r.cycles <= 3 * predicted + 3, (k, n, p)

    def test_more_processors_never_slower(self, rng):
        x = rng.normal(size=8)
        y = rng.normal(size=71)
        c1 = PRAM(8).convolution(x, y).cycles
        c2 = PRAM(64).convolution(x, y).cycles
        c3 = PRAM(512).convolution(x, y).cycles
        assert c1 >= c2 >= c3

    def test_invalid_input(self, rng):
        with pytest.raises(ConfigurationError):
            PRAM(4).convolution(np.ones(5), np.ones(3))
