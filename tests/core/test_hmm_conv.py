"""Direct convolution on the HMM (Theorem 9, Corollary 10)."""

import math

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.machine.trace import TraceRecorder
from repro.core.kernels.hmm_conv import hmm_convolution
from repro.core.machines import run_flat_convolution

from conftest import make_hmm, make_umm


def reference(x, y):
    return np.correlate(y, x, mode="valid")


class TestCorrectness:
    @pytest.mark.parametrize("k,n", [(1, 4), (2, 16), (4, 64), (8, 64), (3, 10)])
    @pytest.mark.parametrize("p", [4, 16, 64])
    def test_value_matches_numpy(self, rng, k, n, p):
        x = rng.integers(1, 5, k).astype(float)
        y = rng.integers(1, 5, n + k - 1).astype(float)
        z, _ = hmm_convolution(make_hmm(num_dmms=2, width=4), x, y, p)
        assert np.allclose(z, reference(x, y)), (k, n, p)

    @pytest.mark.parametrize("d", [1, 2, 4, 8])
    def test_across_dmm_counts(self, rng, d):
        x = rng.normal(size=4)
        y = rng.normal(size=67)
        z, _ = hmm_convolution(make_hmm(num_dmms=d, width=4), x, y, 32)
        assert np.allclose(z, reference(x, y))

    def test_more_dmms_than_chunks(self, rng):
        """d > n: trailing DMMs have no chunk and stay idle."""
        x = rng.normal(size=2)
        y = rng.normal(size=4)  # n = 3 < d = 8
        z, _ = hmm_convolution(make_hmm(num_dmms=8, width=4), x, y, 16)
        assert np.allclose(z, reference(x, y))

    def test_tail_chunk_shorter_than_k(self, rng):
        """n % d leaves a tail chunk smaller than k: still correct."""
        x = rng.normal(size=4)
        y = rng.normal(size=16)  # n = 13, d = 4 -> chunks 4,4,4,1
        z, _ = hmm_convolution(make_hmm(num_dmms=4, width=4), x, y, 16)
        assert np.allclose(z, reference(x, y))

    def test_many_threads_per_output(self, rng):
        """q = p/d > chunk size exercises the block-combining path in
        shared memory."""
        x = rng.normal(size=4)
        y = rng.normal(size=11)  # n = 8, chunks of 4
        z, _ = hmm_convolution(make_hmm(num_dmms=2, width=4), x, y, 64)
        assert np.allclose(z, reference(x, y))

    def test_no_races(self, rng):
        tr = TraceRecorder()
        x = rng.normal(size=4)
        y = rng.normal(size=35)
        z, _ = hmm_convolution(make_hmm(num_dmms=2, width=4), x, y, 16, trace=tr)
        assert np.allclose(z, reference(x, y))
        assert tr.detect_races() == []


class TestValidation:
    def test_k_greater_than_n_rejected(self, rng):
        with pytest.raises(ConfigurationError):
            hmm_convolution(
                make_hmm(), rng.normal(size=8), rng.normal(size=9), 8
            )


class TestTheorem9Shape:
    def test_within_constants_of_formula(self, rng):
        w, d = 8, 4
        for k, n in ((8, 128), (16, 256)):
            for p in (32, 128):
                for l in (4, 64):
                    x = rng.normal(size=k)
                    y = rng.normal(size=n + k - 1)
                    eng = make_hmm(num_dmms=d, width=w, global_latency=l)
                    _, report = hmm_convolution(eng, x, y, p)
                    predicted = (
                        (n + d * k) / w
                        + n * k / (d * w)
                        + (n + d * k) * l / p
                        + l
                        + math.log2(k)
                    )
                    assert report.cycles <= 8 * predicted, (k, n, p, l)
                    assert report.cycles >= predicted / 8, (k, n, p, l)

    def test_dmm_parallelism_speedup(self, rng):
        """The nk/(dw) term: with compute-bound parameters, doubling d
        roughly halves the time (Corollary 10's headline)."""
        k, n, w, l = 16, 256, 4, 4
        x = rng.normal(size=k)
        y = rng.normal(size=n + k - 1)
        cycles = {}
        for d in (1, 2, 4):
            p = 16 * d  # keep per-DMM thread count fixed
            eng = make_hmm(num_dmms=d, width=w, global_latency=l)
            _, report = hmm_convolution(eng, x, y, p)
            cycles[d] = report.cycles
        assert cycles[1] / cycles[2] > 1.6
        assert cycles[2] / cycles[4] > 1.5

    def test_beats_flat_machine(self, rng):
        """Theorem 9 vs Theorem 8 at realistic latency: staging into the
        d latency-1 shared memories wins."""
        k, n, w, l, d, p = 8, 256, 8, 128, 8, 256
        x = rng.normal(size=k)
        y = rng.normal(size=n + k - 1)
        _, flat = run_flat_convolution(make_umm(width=w, latency=l), x, y, p)
        eng = make_hmm(num_dmms=d, width=w, global_latency=l)
        _, hier = hmm_convolution(eng, x, y, p)
        assert hier.cycles < flat.cycles / 2

    def test_global_traffic_is_linear_not_nk(self, rng):
        """Step 1/3 move O(n + dk) cells through the global memory; the
        O(nk) operand reads all hit shared memory."""
        k, n, d, w = 8, 128, 4, 8
        x = rng.normal(size=k)
        y = rng.normal(size=n + k - 1)
        eng = make_hmm(num_dmms=d, width=w, global_latency=16)
        _, report = hmm_convolution(eng, x, y, 64)
        global_requests = report.stats_for("global").requests
        assert global_requests <= 2 * (n + d * k) + 2 * n
        shared_requests = report.shared_stats().requests
        assert shared_requests >= n * k  # the actual multiply operands


class TestFewerThreadsThanDMMs:
    """Regression: with p < d the output must still be fully covered by
    the DMMs that received threads (found by hypothesis)."""

    def test_conv_p_less_than_d(self, rng):
        x = np.array([3.0])
        y = np.array([1.0, 0.0, -2.0])  # k=1, n=3
        z, _ = hmm_convolution(make_hmm(num_dmms=4, width=4), x, y, 2)
        assert np.allclose(z, [3.0, 0.0, -6.0])

    def test_conv_single_thread(self, rng):
        xv = rng.normal(size=3)
        yv = rng.normal(size=12)
        z, _ = hmm_convolution(make_hmm(num_dmms=8, width=4), xv, yv, 1)
        assert np.allclose(z, np.correlate(yv, xv, "valid"))
