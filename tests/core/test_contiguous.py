"""Contiguous access kernels (Lemma 1, Theorem 2)."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.machine.trace import TraceRecorder
from repro.core.kernels.contiguous import (
    contiguous_copy,
    contiguous_read,
    contiguous_write,
    multi_array_access,
    strided_read,
)

from conftest import make_dmm, make_umm


class TestCorrectness:
    def test_copy_moves_data(self, rng):
        eng = make_umm()
        vals = rng.normal(size=37)
        src = eng.array_from(vals, "src")
        dst = eng.alloc(37, "dst")
        eng.launch(contiguous_copy(src, dst, 37), 8)
        assert np.allclose(dst.to_numpy(), vals)

    def test_write_fills(self):
        eng = make_umm()
        a = eng.alloc(20)
        eng.launch(contiguous_write(a, 20, 3.5), 8)
        assert (a.to_numpy() == 3.5).all()

    def test_partial_tail_not_touched(self):
        eng = make_umm()
        a = eng.alloc(16)
        a.fill(-1.0)
        eng.launch(contiguous_write(a, 10, 1.0), 8)
        out = a.to_numpy()
        assert (out[:10] == 1.0).all()
        assert (out[10:] == -1.0).all()


class TestConflictFreedom:
    @pytest.mark.parametrize("n,p", [(64, 16), (100, 32), (31, 8)])
    def test_contiguous_never_conflicts_dmm(self, n, p):
        eng = make_dmm(width=4)
        a = eng.alloc(n)
        report = eng.launch(contiguous_read(a, n), p)
        assert report.conflict_free()

    @pytest.mark.parametrize("n,p", [(64, 16), (100, 32)])
    def test_contiguous_fully_coalesced_umm(self, n, p):
        eng = make_umm(width=4)
        a = eng.alloc(n)
        report = eng.launch(contiguous_read(a, n), p)
        assert report.conflict_free()

    def test_one_transaction_per_width_cells(self):
        eng = make_umm(width=4)
        a = eng.alloc(64)
        report = eng.launch(contiguous_read(a, 64), 16)
        assert report.stats_for("mem").transactions == 64 // 4
        assert report.stats_for("mem").slots == 64 // 4


class TestStridedAntiPattern:
    def test_stride_width_conflicts_on_dmm(self):
        eng = make_dmm(width=4)
        a = eng.alloc(64)
        report = eng.launch(strided_read(a, 64, 4), 16)
        assert not report.conflict_free()

    def test_stride_width_uncoalesced_on_umm(self):
        eng = make_umm(width=4)
        a = eng.alloc(64)
        report = eng.launch(strided_read(a, 64, 4), 16)
        assert report.stats_for("mem").slots > report.stats_for("mem").transactions

    def test_stride_one_is_contiguous(self):
        eng = make_dmm(width=4)
        a = eng.alloc(64)
        report = eng.launch(strided_read(a, 64, 1), 16)
        assert report.conflict_free()

    def test_strided_slower_than_contiguous(self):
        w = 8
        eng1 = make_dmm(width=w, latency=2)
        a1 = eng1.alloc(256)
        base = eng1.launch(contiguous_read(a1, 256), 32).cycles
        eng2 = make_dmm(width=w, latency=2)
        a2 = eng2.alloc(256)
        strided = eng2.launch(strided_read(a2, 256, w), 32).cycles
        assert strided > base * (w / 2)


class TestMultiArray:
    def test_theorem2_shape(self):
        """k <= w arrays of total size n in O(n/w + nl/p + l)."""
        w, l, p = 4, 5, 16
        eng = make_umm(width=w, latency=l)
        arrays = [eng.alloc(32) for _ in range(3)]
        report = eng.launch(multi_array_access(arrays, [32, 32, 32]), p)
        n = 96
        upper = 4 * (n / w + n * l / p + l)
        assert report.cycles <= upper

    def test_different_sizes(self):
        eng = make_umm(width=4)
        arrays = [eng.alloc(16), eng.alloc(8)]
        report = eng.launch(multi_array_access(arrays, [16, 5]), 8)
        assert report.total_requests() == 16 + 5

    def test_size_mismatch_rejected(self):
        eng = make_umm()
        arrays = [eng.alloc(16)]
        with pytest.raises(ConfigurationError):
            multi_array_access(arrays, [16, 8])


class TestValidation:
    def test_oversized_access_rejected(self):
        eng = make_umm()
        a = eng.alloc(8)
        with pytest.raises(ConfigurationError):
            contiguous_read(a, 9)

    def test_zero_size_rejected(self):
        eng = make_umm()
        a = eng.alloc(8)
        with pytest.raises(ConfigurationError):
            contiguous_read(a, 0)

    def test_bad_stride_rejected(self):
        eng = make_umm()
        a = eng.alloc(8)
        with pytest.raises(ConfigurationError):
            strided_read(a, 8, 0)


class TestLemma1Shape:
    """Measured time within small constants of n/w + nl/p + l across a
    grid — the Lemma 1 claim."""

    @pytest.mark.parametrize("machine", [make_dmm, make_umm])
    def test_upper_and_lower_envelope(self, machine):
        for n in (64, 256):
            for p in (8, 32, 64):
                for l in (1, 8, 32):
                    eng = machine(width=8, latency=l)
                    a = eng.alloc(n)
                    cycles = eng.launch(contiguous_read(a, n), p).cycles
                    predicted = n / 8 + n * l / p + l
                    assert cycles <= 2 * predicted, (n, p, l, cycles)
                    assert cycles >= predicted / 4, (n, p, l, cycles)
