"""Offline conflict-free permutation on the DMM (refs [13], [19])."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.core.kernels.permutation import (
    conflict_free_permutation_schedule,
    naive_permutation_schedule,
    permutation_kernel,
)

from conftest import make_dmm


def apply_permutation(eng, perm, schedule, p, n):
    a = eng.array_from(np.arange(n, dtype=float), "a")
    b = eng.alloc(n, "b")
    report = eng.launch(permutation_kernel(a, b, perm, schedule), p)
    return b.to_numpy(), report


def adversarial_perm(n, w):
    """Column-major remap: destinations of a warp all share a bank."""
    return (np.arange(n) % (n // w)) * w + np.arange(n) // (n // w)


class TestScheduleProperties:
    @pytest.mark.parametrize("n,w", [(16, 4), (64, 4), (64, 8), (256, 8)])
    def test_each_element_moved_once(self, rng, n, w):
        perm = rng.permutation(n)
        sched = conflict_free_permutation_schedule(perm, w)
        assert sched.shape == (n // w, w)
        assert sorted(sched.ravel().tolist()) == list(range(n))

    @pytest.mark.parametrize("n,w", [(16, 4), (64, 8)])
    def test_rounds_are_conflict_free_both_sides(self, rng, n, w):
        perm = rng.permutation(n)
        sched = conflict_free_permutation_schedule(perm, w)
        for row in sched:
            src_banks = row % w
            dst_banks = perm[row] % w
            assert len(set(src_banks.tolist())) == w
            assert len(set(dst_banks.tolist())) == w

    def test_adversarial_permutation_schedulable(self):
        n, w = 64, 8
        perm = adversarial_perm(n, w)
        sched = conflict_free_permutation_schedule(perm, w)
        for row in sched:
            assert len(set((perm[row] % w).tolist())) == w

    def test_identity_permutation(self):
        sched = conflict_free_permutation_schedule(np.arange(16), 4)
        assert sorted(sched.ravel().tolist()) == list(range(16))

    def test_non_multiple_rejected(self, rng):
        with pytest.raises(ConfigurationError):
            conflict_free_permutation_schedule(rng.permutation(10), 4)

    def test_non_permutation_rejected(self):
        with pytest.raises(ConfigurationError):
            conflict_free_permutation_schedule(np.array([0, 0, 2, 3]), 4)
        with pytest.raises(ConfigurationError):
            conflict_free_permutation_schedule(np.array([0, 1, 2, 9]), 4)


class TestKernel:
    @pytest.mark.parametrize("n,w,p", [(16, 4, 4), (64, 4, 16), (64, 8, 32)])
    def test_scheduled_result_correct(self, rng, n, w, p):
        perm = rng.permutation(n)
        eng = make_dmm(width=w)
        sched = conflict_free_permutation_schedule(perm, w)
        out, _ = apply_permutation(eng, perm, sched, p, n)
        expected = np.empty(n)
        expected[perm] = np.arange(n)
        assert np.allclose(out, expected)

    def test_naive_result_also_correct(self, rng):
        n, w, p = 64, 4, 16
        perm = rng.permutation(n)
        eng = make_dmm(width=w)
        out, _ = apply_permutation(
            eng, perm, naive_permutation_schedule(perm, w), p, n
        )
        expected = np.empty(n)
        expected[perm] = np.arange(n)
        assert np.allclose(out, expected)

    def test_scheduled_is_conflict_free(self, rng):
        n, w = 128, 8
        perm = adversarial_perm(n, w)
        eng = make_dmm(width=w)
        sched = conflict_free_permutation_schedule(perm, w)
        _, report = apply_permutation(eng, perm, sched, 32, n)
        assert report.conflict_free()

    def test_naive_conflicts_on_adversarial(self):
        n, w = 128, 8
        perm = adversarial_perm(n, w)
        eng = make_dmm(width=w)
        _, report = apply_permutation(
            eng, perm, naive_permutation_schedule(perm, w), 32, n
        )
        assert not report.conflict_free()

    def test_scheduled_beats_naive_on_adversarial(self):
        """The headline of ref [19]: conflict-free scheduling wins by
        roughly the conflict degree."""
        n, w, p = 256, 8, 32
        perm = adversarial_perm(n, w)
        eng1 = make_dmm(width=w, latency=4)
        _, naive = apply_permutation(
            eng1, perm, naive_permutation_schedule(perm, w), p, n
        )
        eng2 = make_dmm(width=w, latency=4)
        _, smart = apply_permutation(
            eng2, perm, conflict_free_permutation_schedule(perm, w), p, n
        )
        assert naive.cycles > 2 * smart.cycles

    def test_partial_warp_launch_rejected(self, rng):
        n, w = 16, 4
        perm = rng.permutation(n)
        eng = make_dmm(width=w)
        sched = naive_permutation_schedule(perm, w)
        a = eng.array_from(np.arange(n, dtype=float))
        b = eng.alloc(n)
        with pytest.raises(ConfigurationError):
            eng.launch(permutation_kernel(a, b, perm, sched), 6)
