"""Stream compaction (extension)."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.core.kernels.compaction import hmm_compact

from conftest import make_hmm


class TestCompaction:
    @pytest.mark.parametrize("n", [1, 7, 20, 100, 256])
    @pytest.mark.parametrize("p,d", [(4, 2), (16, 4), (32, 8)])
    def test_matches_boolean_indexing(self, rng, n, p, d):
        vals = rng.normal(size=n)
        keep = rng.random(n) < 0.4
        eng = make_hmm(num_dmms=d, width=4, global_latency=6)
        out, cycles = hmm_compact(eng, vals, keep, p)
        assert np.allclose(out, vals[keep]), (n, p, d)
        assert cycles > 0

    def test_order_preserved(self, rng):
        vals = np.arange(50.0)
        keep = (vals % 3) == 0
        eng = make_hmm(num_dmms=2, width=4)
        out, _ = hmm_compact(eng, vals, keep, 8)
        assert (np.diff(out) > 0).all()

    def test_all_dropped(self):
        eng = make_hmm(num_dmms=2, width=4)
        out, _ = hmm_compact(eng, np.arange(8.0), np.zeros(8), 8)
        assert out.size == 0

    def test_all_kept(self):
        eng = make_hmm(num_dmms=2, width=4)
        out, _ = hmm_compact(eng, np.arange(8.0), np.ones(8), 8)
        assert np.allclose(out, np.arange(8.0))

    def test_scatter_stays_nearly_coalesced(self, rng):
        """Monotone destinations: a warp's scatter spans <= 2 groups, so
        total slots stay within 2x the transaction count."""
        from repro import TraceRecorder

        vals = rng.normal(size=256)
        keep = rng.random(256) < 0.5
        tr = TraceRecorder()
        eng = make_hmm(num_dmms=4, width=8, global_latency=4)
        out, _ = hmm_compact(eng, vals, keep, 64, trace=tr)
        assert np.allclose(out, vals[keep])
        writes = [r for r in tr.records
                  if r.unit == "global" and r.array == "compact.out"]
        assert writes
        assert all(r.slots <= 2 for r in writes)

    def test_validation(self, rng):
        eng = make_hmm()
        with pytest.raises(ConfigurationError):
            hmm_compact(eng, [], [], 4)
        with pytest.raises(ConfigurationError):
            hmm_compact(eng, [1.0, 2.0], [1.0], 4)
        with pytest.raises(ConfigurationError):
            hmm_compact(eng, [1.0], [0.5], 4)

    def test_facade(self, rng):
        from repro import HMM, HMMParams

        vals = rng.normal(size=40)
        keep = vals > 0
        machine = HMM(HMMParams(num_dmms=2, width=4, global_latency=5))
        out, cycles = machine.compact(vals, keep, 16)
        assert np.allclose(out, vals[keep])
