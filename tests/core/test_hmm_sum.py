"""The sum on the HMM (Lemma 6, Theorem 7)."""

import math

import numpy as np
import pytest

from repro.machine.trace import TraceRecorder
from repro.core.kernels.hmm_sum import (
    hmm_sum,
    hmm_sum_recursive,
    hmm_sum_single_dmm,
)
from repro.core.kernels.reduction import sum_kernel

from conftest import make_hmm


class TestCorrectness:
    @pytest.mark.parametrize("n", [1, 2, 7, 16, 100, 256, 1000])
    @pytest.mark.parametrize("p", [2, 8, 32])
    def test_theorem7_value(self, rng, n, p):
        vals = rng.integers(-5, 10, n).astype(float)
        total, _ = hmm_sum(make_hmm(num_dmms=2, width=4), vals, p)
        assert np.isclose(total, vals.sum()), (n, p)

    @pytest.mark.parametrize("d", [1, 2, 4, 8])
    def test_across_dmm_counts(self, rng, d):
        vals = rng.normal(size=128)
        total, _ = hmm_sum(make_hmm(num_dmms=d, width=4), vals, 32)
        assert np.isclose(total, vals.sum())

    @pytest.mark.parametrize("n,p", [(64, 8), (200, 16), (9, 4)])
    def test_lemma6_value(self, rng, n, p):
        vals = rng.normal(size=n)
        total, _ = hmm_sum_single_dmm(make_hmm(num_dmms=4, width=4), vals, p)
        assert np.isclose(total, vals.sum())

    @pytest.mark.parametrize("n", [16, 100, 2048])
    def test_recursive_value(self, rng, n):
        vals = rng.normal(size=n)
        total, cycles = hmm_sum_recursive(make_hmm(num_dmms=2, width=4), vals, 16)
        assert np.isclose(total, vals.sum())
        assert cycles > 0

    def test_no_races(self, rng):
        tr = TraceRecorder()
        vals = rng.normal(size=64)
        total, _ = hmm_sum(make_hmm(num_dmms=2, width=4), vals, 16, trace=tr)
        assert np.isclose(total, vals.sum())
        assert tr.detect_races() == []


class TestTheorem7Shape:
    def test_within_constants_of_formula(self, rng):
        for n in (256, 1024):
            for p in (16, 64):
                for l in (4, 32, 128):
                    vals = rng.normal(size=n)
                    eng = make_hmm(num_dmms=4, width=8, global_latency=l)
                    _, report = hmm_sum(eng, vals, p)
                    predicted = n / 8 + n * l / p + l + math.log2(n)
                    assert report.cycles <= 4 * predicted, (n, p, l)
                    assert report.cycles >= predicted / 8, (n, p, l)

    def test_latency_paid_constant_times_not_per_level(self, rng):
        """Theorem 7's point: with p >= n (so nl/p <= l), going from l to
        2l adds only O(1) latency payments (the global read, the partial
        write, the final read and write), NOT the l·log n that the flat
        Lemma 5 algorithm pays — the tree levels run at latency 1."""
        n, p = 512, 512
        vals = rng.normal(size=n)
        e1 = make_hmm(num_dmms=8, width=8, global_latency=100)
        e2 = make_hmm(num_dmms=8, width=8, global_latency=200)
        _, r1 = hmm_sum(e1, vals, p)
        _, r2 = hmm_sum(e2, vals, p)
        delta = r2.cycles - r1.cycles
        assert delta <= 5 * 100  # O(1) latency payments
        flat_delta = 100 * math.log2(n)  # what Lemma 5 would add
        assert delta < flat_delta / 2

    def test_beats_flat_global_sum(self, rng):
        """The HMM algorithm beats Lemma 5 run in global memory once
        l·log n dominates."""
        n, p, l = 1024, 128, 200
        vals = rng.normal(size=n)
        eng = make_hmm(num_dmms=8, width=8, global_latency=l)
        _, smart = hmm_sum(eng, vals, p)
        eng2 = make_hmm(num_dmms=8, width=8, global_latency=l)
        a = eng2.global_from(vals, "a")
        flat = eng2.launch(sum_kernel(a, n), p)
        assert np.isclose(a.to_numpy()[0], vals.sum())
        assert smart.cycles < flat.cycles / 2

    def test_all_dmms_beat_single_dmm(self, rng):
        """Theorem 7 vs Lemma 6: using all d DMMs hides the latency that
        a single DMM cannot."""
        n, l, d = 4096, 256, 8
        p_single = 64          # one DMM's worth of threads
        p_all = p_single * d   # same per-DMM load, all DMMs
        vals = rng.normal(size=n)
        _, single = hmm_sum_single_dmm(
            make_hmm(num_dmms=d, width=8, global_latency=l), vals, p_single
        )
        _, full = hmm_sum(
            make_hmm(num_dmms=d, width=8, global_latency=l), vals, p_all
        )
        assert full.cycles < single.cycles

    def test_shared_memory_carries_the_tree(self, rng):
        """Most reduction transactions run on shared units, not global."""
        vals = rng.normal(size=512)
        eng = make_hmm(num_dmms=4, width=8, global_latency=64)
        _, report = hmm_sum(eng, vals, 64)
        shared = report.shared_stats().transactions
        glob = report.stats_for("global").transactions
        # Global traffic: the contiguous column reads + 2 writes/DMM-ish;
        # the tree levels all live in shared memory.
        assert shared > 0
        assert glob <= 512 / 8 + 3 * 4 + 4
