"""Approximate string matching (extension, ref [18])."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.machine.trace import TraceRecorder
from repro.core.kernels.string_matching import (
    flat_approximate_match,
    hmm_approximate_match,
    reference_approximate_match,
)

from conftest import make_dmm, make_hmm, make_umm


class TestReference:
    def test_exact_occurrence_scores_zero(self):
        out = reference_approximate_match(
            np.array([1.0, 2.0, 3.0]),
            np.array([9.0, 1.0, 2.0, 3.0, 9.0]),
        )
        assert out[3] == 0.0  # match ends at index 3

    def test_single_substitution(self):
        out = reference_approximate_match(
            np.array([1.0, 2.0, 3.0]),
            np.array([1.0, 9.0, 3.0]),
        )
        assert out[2] == 1.0

    def test_empty_rejected(self):
        with pytest.raises(ConfigurationError):
            reference_approximate_match(np.array([]), np.array([1.0]))

    def test_monotone_bounded_by_m(self):
        rng = np.random.default_rng(0)
        pv = rng.integers(0, 3, 5).astype(float)
        tv = rng.integers(0, 3, 30).astype(float)
        out = reference_approximate_match(pv, tv)
        assert (out <= 5).all() and (out >= 0).all()
        # Neighbouring scores differ by at most 1 (one more text char).
        assert (np.abs(np.diff(out)) <= 1).all()


class TestFlatKernel:
    @pytest.mark.parametrize("m,n", [(1, 1), (1, 10), (3, 7), (4, 33), (5, 64)])
    @pytest.mark.parametrize("p", [1, 4, 16])
    def test_matches_reference(self, rng, m, n, p):
        pv = rng.integers(0, 3, m).astype(float)
        tv = rng.integers(0, 3, n).astype(float)
        out, _ = flat_approximate_match(make_umm(), pv, tv, p)
        assert np.allclose(out, reference_approximate_match(pv, tv)), (m, n, p)

    def test_dmm_agrees(self, rng):
        pv = rng.integers(0, 4, 4).astype(float)
        tv = rng.integers(0, 4, 40).astype(float)
        o1, _ = flat_approximate_match(make_dmm(), pv, tv, 8)
        o2, _ = flat_approximate_match(make_umm(), pv, tv, 8)
        assert np.allclose(o1, o2)

    def test_string_inputs(self):
        out, _ = flat_approximate_match(make_umm(), "abc", "xxabcyy", 8)
        assert out[4] == 0.0

    def test_per_diagonal_latency_dominates(self, rng):
        """The flat DP pays ~l per diagonal: time grows linearly in l."""
        pv = rng.integers(0, 3, 4).astype(float)
        tv = rng.integers(0, 3, 64).astype(float)
        _, r1 = flat_approximate_match(make_umm(width=8, latency=10), pv, tv, 16)
        _, r2 = flat_approximate_match(make_umm(width=8, latency=40), pv, tv, 16)
        assert r2.cycles > 2.5 * r1.cycles


class TestHMMKernel:
    @pytest.mark.parametrize("m,n", [(1, 6), (3, 30), (4, 64), (2, 9)])
    @pytest.mark.parametrize("p,d", [(4, 2), (16, 4), (3, 8)])
    def test_matches_reference(self, rng, m, n, p, d):
        pv = rng.integers(0, 3, m).astype(float)
        tv = rng.integers(0, 3, n).astype(float)
        eng = make_hmm(num_dmms=d, width=4, global_latency=6)
        out, _ = hmm_approximate_match(eng, pv, tv, p)
        assert np.allclose(out, reference_approximate_match(pv, tv)), (m, n, p, d)

    def test_chunk_boundary_correctness(self, rng):
        """The 2m-overlap warm-up must reproduce exact DP values at every
        chunk boundary: check a text whose optimal alignments straddle
        the boundaries (runs of near-matches)."""
        pv = np.array([1.0, 1.0, 1.0, 1.0])
        tv = np.ones(61)
        tv[13] = 2.0  # a defect near the d=4 chunk boundary (ceil(61/4)=16)
        tv[31] = 2.0
        eng = make_hmm(num_dmms=4, width=4, global_latency=3)
        out, _ = hmm_approximate_match(eng, pv, tv, 16)
        assert np.allclose(out, reference_approximate_match(pv, tv))

    def test_no_races(self, rng):
        tr = TraceRecorder()
        pv = rng.integers(0, 3, 3).astype(float)
        tv = rng.integers(0, 3, 24).astype(float)
        eng = make_hmm(num_dmms=2, width=4, global_latency=4)
        out, _ = hmm_approximate_match(eng, pv, tv, 8, trace=tr)
        assert np.allclose(out, reference_approximate_match(pv, tv))
        assert tr.detect_races() == []

    def test_beats_flat_at_high_latency(self, rng):
        """The HMM drops the per-diagonal latency from l to 1."""
        pv = rng.integers(0, 4, 8).astype(float)
        tv = rng.integers(0, 4, 256).astype(float)
        _, flat = flat_approximate_match(
            make_umm(width=8, latency=100), pv, tv, 64
        )
        eng = make_hmm(num_dmms=8, width=8, global_latency=100)
        _, hier = hmm_approximate_match(eng, pv, tv, 64)
        assert hier.cycles * 10 < flat.cycles

    def test_facade_methods(self, rng):
        from repro import DMM, HMM, HMMParams, MachineParams

        pv = rng.integers(0, 3, 3).astype(float)
        tv = rng.integers(0, 3, 20).astype(float)
        ref = reference_approximate_match(pv, tv)
        out1, _ = DMM(MachineParams(width=4, latency=3)).approximate_match(pv, tv, 8)
        out2, _ = HMM(
            HMMParams(num_dmms=2, width=4, global_latency=5)
        ).approximate_match(pv, tv, 8)
        assert np.allclose(out1, ref)
        assert np.allclose(out2, ref)


class TestFindMatches:
    def test_exact_occurrences(self):
        from repro.core.kernels.string_matching import find_matches

        eng = make_hmm(num_dmms=2, width=4, global_latency=4)
        positions, _ = find_matches(eng, "ab", "abxxabxab", 0, 8)
        # 'ab' ends at positions 1, 5, 8.
        assert positions.tolist() == [1, 5, 8]

    def test_one_edit(self):
        from repro.core.kernels.string_matching import find_matches

        eng = make_hmm(num_dmms=2, width=4, global_latency=4)
        positions, _ = find_matches(eng, "abc", "abxdef", 1, 8)
        assert 2 in positions.tolist()  # 'abx' is one substitution away

    def test_negative_max_edits(self):
        from repro.core.kernels.string_matching import find_matches

        with pytest.raises(ConfigurationError):
            find_matches(make_hmm(), "a", "aa", -1, 4)
