"""Direct convolution on the DMM and the UMM (Theorem 8)."""

import math

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.core.machines import run_flat_convolution

from conftest import make_dmm, make_umm


def reference(x, y):
    return np.correlate(y, x, mode="valid")


class TestCorrectness:
    @pytest.mark.parametrize("k,n", [(1, 1), (1, 8), (2, 8), (4, 16), (8, 64), (5, 13)])
    @pytest.mark.parametrize("p", [1, 4, 16, 64, 256])
    def test_value_matches_numpy(self, rng, k, n, p):
        x = rng.integers(1, 5, k).astype(float)
        y = rng.integers(1, 5, n + k - 1).astype(float)
        z, _ = run_flat_convolution(make_umm(), x, y, p)
        assert np.allclose(z, reference(x, y)), (k, n, p)

    def test_dmm_and_umm_agree(self, rng):
        x = rng.normal(size=4)
        y = rng.normal(size=19)
        z1, _ = run_flat_convolution(make_dmm(), x, y, 8)
        z2, _ = run_flat_convolution(make_umm(), x, y, 8)
        assert np.allclose(z1, z2)

    def test_more_threads_than_nk(self, rng):
        """p > nk: the block count q is clamped to k."""
        x = rng.normal(size=4)
        y = rng.normal(size=11)  # n = 8, nk = 32
        z, _ = run_flat_convolution(make_umm(), x, y, 128)
        assert np.allclose(z, reference(x, y))

    def test_non_divisible_thread_split(self, rng):
        """p between n and 2n: q = 1 block (integer division)."""
        x = rng.normal(size=3)
        y = rng.normal(size=18)  # n = 16
        z, _ = run_flat_convolution(make_umm(), x, y, 24)
        assert np.allclose(z, reference(x, y))

    def test_impulse_kernel_is_identity(self, rng):
        y = rng.normal(size=16)
        z, _ = run_flat_convolution(make_umm(), np.array([1.0]), y, 8)
        assert np.allclose(z, y)


class TestValidation:
    def test_k_greater_than_n_rejected(self, rng):
        x = rng.normal(size=8)
        y = rng.normal(size=9)  # n = 2 < k
        with pytest.raises(ConfigurationError):
            run_flat_convolution(make_umm(), x, y, 4)

    def test_empty_rejected(self):
        with pytest.raises(ConfigurationError):
            run_flat_convolution(make_umm(), np.array([]), np.array([1.0]), 4)


class TestTheorem8Shape:
    @pytest.mark.parametrize("machine", [make_dmm, make_umm])
    def test_within_constants_of_formula(self, machine, rng):
        """Measured ~ nk/w + nkl/p + l·log k over the grid."""
        w = 8
        for k, n in ((4, 64), (8, 128)):
            for p in (16, 64, 256):
                for l in (1, 16):
                    x = rng.normal(size=k)
                    y = rng.normal(size=n + k - 1)
                    _, report = run_flat_convolution(
                        machine(width=w, latency=l), x, y, p
                    )
                    predicted = n * k / w + n * k * l / p + l * math.log2(k)
                    assert report.cycles <= 6 * predicted, (k, n, p, l)
                    assert report.cycles >= predicted / 8, (k, n, p, l)

    def test_speed_up_with_threads(self, rng):
        """Time decreases as p grows from n toward nk (Theorem 8's
        range).  The comparison is between the endpoints: intermediate
        points can wobble by one extra combining level's latency."""
        k, n, l = 8, 64, 64
        x = rng.normal(size=k)
        y = rng.normal(size=n + k - 1)
        cycles = []
        for p in (n // 4, n, 4 * n):
            _, report = run_flat_convolution(make_umm(width=8, latency=l), x, y, p)
            cycles.append(report.cycles)
        assert cycles[0] > 3 * cycles[1]  # p < n regime scales with p
        assert cycles[1] > 1.1 * cycles[2]  # extra threads still help,
        # though the l·log k combining cost caps the gain near p = nk

    def test_conflict_free_on_dmm(self, rng):
        x = rng.normal(size=4)
        y = rng.normal(size=35)
        _, report = run_flat_convolution(make_dmm(width=8), x, y, 16)
        assert report.conflict_free()

    def test_work_term_scales_with_k(self, rng):
        """At saturated bandwidth, doubling k doubles time."""
        n, p, w, l = 128, 128, 8, 1
        cycles = []
        for k in (4, 8):
            x = rng.normal(size=k)
            y = rng.normal(size=n + k - 1)
            _, report = run_flat_convolution(make_umm(width=w, latency=l), x, y, p)
            cycles.append(report.cycles)
        assert 1.6 <= cycles[1] / cycles[0] <= 2.4
