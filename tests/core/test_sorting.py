"""Bitonic sorting (extension)."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.machine.trace import TraceRecorder
from repro.core.kernels.sorting import (
    bitonic_sort_kernel,
    flat_bitonic_sort,
    hmm_bitonic_sort,
)

from conftest import make_dmm, make_hmm, make_umm


class TestFlatSort:
    @pytest.mark.parametrize("n", [1, 2, 3, 8, 15, 16, 100, 256])
    @pytest.mark.parametrize("p", [1, 8, 64])
    def test_sorts(self, rng, n, p):
        vals = rng.normal(size=n)
        out, _ = flat_bitonic_sort(make_umm(), vals, p)
        assert np.allclose(out, np.sort(vals)), (n, p)

    def test_already_sorted(self):
        out, _ = flat_bitonic_sort(make_umm(), np.arange(32.0), 8)
        assert np.allclose(out, np.arange(32.0))

    def test_reverse_sorted(self):
        out, _ = flat_bitonic_sort(make_umm(), np.arange(32.0)[::-1], 8)
        assert np.allclose(out, np.arange(32.0))

    def test_duplicates(self, rng):
        vals = rng.integers(0, 4, 64).astype(float)
        out, _ = flat_bitonic_sort(make_dmm(), vals, 16)
        assert np.allclose(out, np.sort(vals))

    def test_empty_rejected(self):
        with pytest.raises(ConfigurationError):
            flat_bitonic_sort(make_umm(), np.array([]), 4)

    def test_kernel_requires_power_of_two(self):
        eng = make_umm()
        a = eng.alloc(12)
        with pytest.raises(ConfigurationError):
            bitonic_sort_kernel(a, 12)

    def test_conflict_degree_bounded_by_two(self, rng):
        """Sub-warp strides cost at most 2 slots per transaction."""
        vals = rng.normal(size=256)
        _, report = flat_bitonic_sort(make_dmm(width=8), vals, 64)
        stats = report.stats_for("mem")
        assert stats.slots <= 2 * stats.transactions


class TestHMMSort:
    @pytest.mark.parametrize("n", [1, 2, 9, 16, 100, 256])
    @pytest.mark.parametrize("p,d", [(2, 2), (16, 4), (64, 8), (5, 4)])
    def test_sorts(self, rng, n, p, d):
        vals = rng.normal(size=n)
        eng = make_hmm(num_dmms=d, width=4, global_latency=6)
        out, _ = hmm_bitonic_sort(eng, vals, p)
        assert np.allclose(out, np.sort(vals)), (n, p, d)

    def test_no_races(self, rng):
        tr = TraceRecorder()
        vals = rng.normal(size=64)
        eng = make_hmm(num_dmms=2, width=4, global_latency=4)
        out, _ = hmm_bitonic_sort(eng, vals, 16, trace=tr)
        assert np.allclose(out, np.sort(vals))
        assert tr.detect_races() == []

    def test_beats_flat_at_high_latency(self, rng):
        """Chunk stages at latency 1 cut the l·log^2 n bill."""
        vals = rng.normal(size=1024)
        _, flat = flat_bitonic_sort(make_umm(width=8, latency=100), vals, 256)
        eng = make_hmm(num_dmms=8, width=8, global_latency=100)
        _, hier = hmm_bitonic_sort(eng, vals, 256)
        assert hier.cycles < flat.cycles / 2

    def test_global_stages_only_cross_chunk(self, rng):
        """Global traffic is O(n · #bursts + n·log^2 d / w)-ish, far
        below running every stage through the global port."""
        vals = rng.normal(size=512)
        eng = make_hmm(num_dmms=4, width=8, global_latency=16)
        _, report = hmm_bitonic_sort(eng, vals, 128)
        total_stages = sum(range(1, 10))  # log^2 n / 2 stages for n=512
        # If every stage touched global memory the request count would
        # be ~4 * n * total_stages; it must be far below that.
        assert report.stats_for("global").requests < 4 * 512 * total_stages / 4

    def test_single_dmm_degenerates_gracefully(self, rng):
        vals = rng.normal(size=64)
        eng = make_hmm(num_dmms=1, width=4, global_latency=8)
        out, _ = hmm_bitonic_sort(eng, vals, 8)
        assert np.allclose(out, np.sort(vals))
