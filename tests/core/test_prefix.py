"""Prefix-sums on the flat machines and the HMM (extension, ref [17])."""

import math

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.machine.trace import TraceRecorder
from repro.core.kernels.prefix import hmm_prefix_sums, level_sizes
from repro.core.machines import run_flat_prefix_sums

from conftest import make_dmm, make_hmm, make_umm


class TestLevelSizes:
    def test_power_of_two(self):
        assert level_sizes(8) == [8, 4, 2, 1]

    def test_general(self):
        assert level_sizes(7) == [7, 4, 2, 1]
        assert level_sizes(1) == [1]

    def test_invalid(self):
        with pytest.raises(ConfigurationError):
            level_sizes(0)


class TestFlatCorrectness:
    @pytest.mark.parametrize("n", [1, 2, 3, 8, 15, 16, 33, 100])
    @pytest.mark.parametrize("p", [1, 4, 32])
    def test_matches_cumsum(self, rng, n, p):
        vals = rng.integers(-4, 9, n).astype(float)
        out, _ = run_flat_prefix_sums(make_umm(), vals, p)
        assert np.allclose(out, np.cumsum(vals)), (n, p)

    def test_dmm_agrees(self, rng):
        vals = rng.normal(size=50)
        o1, _ = run_flat_prefix_sums(make_dmm(), vals, 16)
        o2, _ = run_flat_prefix_sums(make_umm(), vals, 16)
        assert np.allclose(o1, o2)

    def test_input_not_clobbered(self, rng):
        eng = make_umm()
        vals = rng.normal(size=20)
        out, _ = run_flat_prefix_sums(eng, vals, 8)
        assert np.allclose(out, np.cumsum(vals))


class TestHMMCorrectness:
    @pytest.mark.parametrize("n", [1, 2, 8, 16, 63, 100, 256])
    @pytest.mark.parametrize("p", [2, 8, 32])
    def test_matches_cumsum(self, rng, n, p):
        vals = rng.integers(-4, 9, n).astype(float)
        out, _ = hmm_prefix_sums(make_hmm(num_dmms=2, width=4), vals, p)
        assert np.allclose(out, np.cumsum(vals)), (n, p)

    @pytest.mark.parametrize("d", [1, 2, 4, 8])
    def test_across_dmm_counts(self, rng, d):
        vals = rng.normal(size=80)
        out, _ = hmm_prefix_sums(make_hmm(num_dmms=d, width=4), vals, 32)
        assert np.allclose(out, np.cumsum(vals))

    def test_no_races(self, rng):
        tr = TraceRecorder()
        vals = rng.normal(size=48)
        out, _ = hmm_prefix_sums(
            make_hmm(num_dmms=2, width=4), vals, 16, trace=tr
        )
        assert np.allclose(out, np.cumsum(vals))
        assert tr.detect_races() == []


class TestShape:
    def test_flat_shape(self, rng):
        """O(n/w + nl/p + l·log n): stride-2 sweeps cost at most a
        constant factor over the contiguous ideal."""
        for n in (64, 256):
            for p in (16, 64):
                for l in (1, 32):
                    vals = rng.normal(size=n)
                    _, report = run_flat_prefix_sums(
                        make_umm(width=8, latency=l), vals, p
                    )
                    predicted = n / 8 + n * l / p + l * math.log2(n)
                    # Constant ~12: two sweeps (up + down) of 3-4 memory
                    # operations per level plus the combine pass.
                    assert report.cycles <= 16 * predicted, (n, p, l)

    def test_hmm_beats_flat_at_high_latency(self, rng):
        """The HMM scan pays O(1) latency terms instead of l·log n."""
        n, p, l, d = 1024, 256, 200, 8
        vals = rng.normal(size=n)
        _, flat = run_flat_prefix_sums(make_umm(width=8, latency=l), vals, p)
        eng = make_hmm(num_dmms=d, width=8, global_latency=l)
        _, hier = hmm_prefix_sums(eng, vals, p)
        assert hier.cycles < flat.cycles / 2

    def test_latency_delta_is_constant(self, rng):
        """Doubling l adds O(1) latency payments (the six global
        round-trips: chunk read, totals write/read, offsets write/read,
        result write), not the O(l·log n) a flat scan pays."""
        n, p = 512, 512
        vals = rng.normal(size=n)
        e1 = make_hmm(num_dmms=8, width=8, global_latency=100)
        e2 = make_hmm(num_dmms=8, width=8, global_latency=200)
        _, r1 = hmm_prefix_sums(e1, vals, p)
        _, r2 = hmm_prefix_sums(e2, vals, p)
        delta = r2.cycles - r1.cycles
        assert delta <= 7 * 100
        # A flat scan pays ~3 accesses x 2 sweeps x log2(n) levels of l.
        assert delta < 100 * 2 * math.log2(n)


class TestFewerThreadsThanDMMs:
    """Regression companion to the convolution p < d fix: chunking must
    follow the active DMMs, not the machine's DMM count."""

    def test_scan_p_less_than_d(self, rng):
        vals = rng.normal(size=50)
        out, _ = hmm_prefix_sums(make_hmm(num_dmms=8, width=4), vals, 2)
        assert np.allclose(out, np.cumsum(vals))

    def test_scan_single_thread(self, rng):
        vals = rng.normal(size=9)
        out, _ = hmm_prefix_sums(make_hmm(num_dmms=4, width=4), vals, 1)
        assert np.allclose(out, np.cumsum(vals))
