"""The sum on the DMM and the UMM (Lemma 5)."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.core.kernels.reduction import sum_kernel

from conftest import make_dmm, make_umm


def run_sum(machine_factory, values, p, **machine_kw):
    eng = machine_factory(**machine_kw)
    a = eng.array_from(values, "a")
    report = eng.launch(sum_kernel(a, len(values)), p)
    return float(a.to_numpy()[0]), report


class TestCorrectness:
    @pytest.mark.parametrize("n", [1, 2, 3, 7, 8, 16, 33, 100, 255, 256])
    @pytest.mark.parametrize("p", [1, 4, 16, 64])
    def test_sum_value(self, rng, n, p):
        vals = rng.integers(-5, 10, n).astype(float)
        total, _ = run_sum(make_umm, vals, p)
        assert np.isclose(total, vals.sum())

    def test_dmm_and_umm_same_value(self, rng):
        vals = rng.normal(size=100)
        t1, _ = run_sum(make_dmm, vals, 16)
        t2, _ = run_sum(make_umm, vals, 16)
        assert np.isclose(t1, t2)

    def test_preserves_tail_beyond_n(self, rng):
        eng = make_umm()
        vals = rng.normal(size=8)
        a = eng.alloc(16)
        a.set(np.concatenate([vals, np.full(8, 99.0)]))
        eng.launch(sum_kernel(a, 8), 4)
        assert (a.to_numpy()[8:] == 99.0).all()

    def test_more_threads_than_elements(self, rng):
        vals = rng.normal(size=10)
        total, _ = run_sum(make_umm, vals, 512)
        assert np.isclose(total, vals.sum())


class TestValidation:
    def test_zero_n(self):
        eng = make_umm()
        a = eng.alloc(4)
        with pytest.raises(ConfigurationError):
            sum_kernel(a, 0)

    def test_oversized(self):
        eng = make_umm()
        a = eng.alloc(4)
        with pytest.raises(ConfigurationError):
            sum_kernel(a, 5)


class TestLemma5Shape:
    @pytest.mark.parametrize("machine", [make_dmm, make_umm])
    def test_within_constants_of_formula(self, machine, rng):
        """Measured ~ n/w + nl/p + l·log n across the grid."""
        import math

        for n in (64, 512):
            for p in (8, 64):
                for l in (1, 16, 64):
                    vals = rng.normal(size=n)
                    _, report = run_sum(machine, vals, p, width=8, latency=l)
                    predicted = n / 8 + n * l / p + l * math.log2(n)
                    assert report.cycles <= 4 * predicted, (n, p, l)
                    assert report.cycles >= predicted / 8, (n, p, l)

    def test_latency_log_term_dominates_at_high_l(self, rng):
        """Doubling l roughly doubles time once l·log n dominates — the
        weakness the HMM algorithm removes."""
        vals = rng.normal(size=64)
        _, r1 = run_sum(make_umm, vals, 64, width=8, latency=64)
        _, r2 = run_sum(make_umm, vals, 64, width=8, latency=128)
        assert 1.6 <= r2.cycles / r1.cycles <= 2.4

    def test_conflict_free_on_dmm(self, rng):
        """Every transaction of the Lemma 5 kernel is contiguous."""
        vals = rng.normal(size=128)
        _, report = run_sum(make_dmm, vals, 16, width=8)
        assert report.conflict_free()

    def test_work_scaling_with_threads(self, rng):
        """More threads help until p ~ n: time decreases monotonically."""
        vals = rng.normal(size=256)
        cycles = [
            run_sum(make_umm, vals, p, width=8, latency=4)[1].cycles
            for p in (4, 16, 64)
        ]
        assert cycles[0] > cycles[1] > cycles[2]


class TestGeneralizedReductions:
    """reduce_kernel / hmm_reduce: Lemma 5 / Theorem 7 for any unit-time
    commutative, associative operation."""

    @pytest.mark.parametrize("op,ref", [
        ("sum", np.sum), ("max", np.max), ("min", np.min),
    ])
    @pytest.mark.parametrize("n", [1, 7, 64, 200])
    def test_flat_named_ops(self, rng, op, ref, n):
        from repro.core.kernels.reduction import reduce_kernel

        vals = rng.normal(size=n)
        eng = make_umm()
        a = eng.array_from(vals, "a")
        eng.launch(reduce_kernel(a, n, op), 16)
        assert np.isclose(a.to_numpy()[0], ref(vals)), (op, n)

    def test_flat_prod(self, rng):
        from repro.core.kernels.reduction import reduce_kernel

        vals = rng.uniform(0.9, 1.1, 50)
        eng = make_dmm()
        a = eng.array_from(vals, "a")
        eng.launch(reduce_kernel(a, 50, "prod"), 8)
        assert np.isclose(a.to_numpy()[0], vals.prod())

    def test_unknown_op_rejected(self):
        from repro.core.kernels.reduction import reduce_kernel

        eng = make_umm()
        a = eng.alloc(8)
        with pytest.raises(ConfigurationError):
            reduce_kernel(a, 8, "median")

    @pytest.mark.parametrize("op,ref", [
        ("max", np.max), ("min", np.min),
    ])
    @pytest.mark.parametrize("n", [3, 100, 513])
    def test_hmm_named_ops(self, rng, op, ref, n):
        from repro.core.kernels.hmm_sum import hmm_reduce

        import conftest

        vals = rng.normal(size=n)
        eng = conftest.make_hmm(num_dmms=4, width=4, global_latency=8)
        got, _ = hmm_reduce(eng, vals, 32, op)
        assert np.isclose(got, ref(vals)), (op, n)

    def test_hmm_masked_identity_correct(self, rng):
        """Regression guard: masked lanes must not inject 0 into min/max
        (0 is not the identity for those operations)."""
        from repro.core.kernels.hmm_sum import hmm_reduce

        import conftest

        vals = np.full(37, 5.0)  # min is 5.0; any leaked 0 would show
        eng = conftest.make_hmm(num_dmms=2, width=4, global_latency=4)
        got, _ = hmm_reduce(eng, vals, 16, "min")
        assert got == 5.0

    def test_facade_methods(self, rng):
        from repro import HMM, UMM, HMMParams, MachineParams

        vals = rng.normal(size=99)
        got, _ = UMM(MachineParams(width=4, latency=3)).reduce(vals, 16, "max")
        assert np.isclose(got, vals.max())
        got, _ = HMM(HMMParams(num_dmms=2, width=4, global_latency=5)).reduce(
            vals, 16, "min")
        assert np.isclose(got, vals.min())

    def test_same_cost_as_sum(self, rng):
        """Any unit-time op has the same Lemma 5 cost structure."""
        from repro.core.kernels.reduction import reduce_kernel, sum_kernel

        vals = rng.normal(size=128)
        e1 = make_umm(width=8, latency=16)
        a1 = e1.array_from(vals, "a")
        r1 = e1.launch(sum_kernel(a1, 128), 32)
        e2 = make_umm(width=8, latency=16)
        a2 = e2.array_from(vals, "a")
        r2 = e2.launch(reduce_kernel(a2, 128, "max"), 32)
        assert r1.cycles == r2.cycles
