"""Tiled matrix multiplication and transpose on the HMM (extension)."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.core.kernels.matmul import hmm_matmul, hmm_transpose

from conftest import make_hmm


class TestMatmul:
    @pytest.mark.parametrize("m,d,w", [(4, 1, 4), (8, 2, 4), (16, 4, 4), (8, 8, 4)])
    def test_value(self, rng, m, d, w):
        a = rng.integers(-3, 4, (m, m)).astype(float)
        b = rng.integers(-3, 4, (m, m)).astype(float)
        c, _ = hmm_matmul(make_hmm(num_dmms=d, width=w), a, b)
        assert np.allclose(c, a @ b), (m, d, w)

    def test_identity(self, rng):
        a = rng.normal(size=(8, 8))
        c, _ = hmm_matmul(make_hmm(num_dmms=2, width=4), a, np.eye(8))
        assert np.allclose(c, a)

    def test_conflict_free_shared_access(self, rng):
        """The lane-per-column mapping produces no bank conflicts."""
        a = rng.normal(size=(8, 8))
        b = rng.normal(size=(8, 8))
        _, report = hmm_matmul(make_hmm(num_dmms=2, width=4), a, b)
        assert report.shared_stats().excess_slots == 0

    def test_global_access_coalesced(self, rng):
        a = rng.normal(size=(8, 8))
        b = rng.normal(size=(8, 8))
        _, report = hmm_matmul(make_hmm(num_dmms=2, width=4), a, b)
        g = report.stats_for("global")
        assert g.excess_slots == 0

    def test_dmm_scaling(self, rng):
        """More DMMs -> fewer tiles per DMM -> faster."""
        m, w = 16, 4
        a = rng.normal(size=(m, m))
        b = rng.normal(size=(m, m))
        _, r1 = hmm_matmul(make_hmm(num_dmms=1, width=w, global_latency=8), a, b)
        _, r4 = hmm_matmul(make_hmm(num_dmms=4, width=w, global_latency=8), a, b)
        assert r1.cycles > 2.5 * r4.cycles

    def test_size_not_multiple_of_width_rejected(self, rng):
        with pytest.raises(ConfigurationError):
            hmm_matmul(make_hmm(width=4), rng.normal(size=(6, 6)), rng.normal(size=(6, 6)))

    def test_non_square_rejected(self, rng):
        with pytest.raises(ConfigurationError):
            hmm_matmul(make_hmm(width=4), rng.normal(size=(4, 8)), rng.normal(size=(4, 8)))


class TestTranspose:
    @pytest.mark.parametrize("m,d,w", [(4, 1, 4), (8, 2, 4), (16, 4, 8)])
    @pytest.mark.parametrize("padded", [True, False])
    def test_value(self, rng, m, d, w, padded):
        if m % w:
            pytest.skip("size must be a multiple of width")
        a = rng.normal(size=(m, m))
        t, _ = hmm_transpose(make_hmm(num_dmms=d, width=w), a, padded=padded)
        assert np.allclose(t, a.T)

    def test_padded_is_conflict_free(self, rng):
        a = rng.normal(size=(16, 16))
        _, report = hmm_transpose(make_hmm(num_dmms=2, width=8), a, padded=True)
        assert report.shared_stats().excess_slots == 0

    def test_naive_has_w_way_conflicts(self, rng):
        a = rng.normal(size=(16, 16))
        _, report = hmm_transpose(make_hmm(num_dmms=2, width=8), a, padded=False)
        shared = report.shared_stats()
        # Each transposed tile-row store is a full w-way conflict.
        assert shared.conflicted_transactions > 0
        assert shared.excess_slots >= shared.conflicted_transactions * 7

    def test_padding_speeds_up_at_low_latency(self, rng):
        """With cheap global memory the shared-conflict cost shows up in
        the total; padding removes it (the CUDA folklore, quantified)."""
        a = rng.normal(size=(32, 32))
        eng_kwargs = dict(num_dmms=2, width=8, global_latency=2)
        _, fast = hmm_transpose(make_hmm(**eng_kwargs), a, padded=True)
        _, slow = hmm_transpose(make_hmm(**eng_kwargs), a, padded=False)
        assert slow.cycles > fast.cycles

    def test_global_writes_coalesced_both_ways(self, rng):
        a = rng.normal(size=(16, 16))
        _, report = hmm_transpose(make_hmm(num_dmms=2, width=8), a, padded=True)
        assert report.stats_for("global").excess_slots == 0
