"""Merging sorted arrays (extension)."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.machine.trace import TraceRecorder
from repro.core.kernels.merge import flat_merge, hmm_merge, merge_partition

from conftest import make_dmm, make_hmm, make_umm


class TestMergePartition:
    def test_basic_split(self):
        a = np.array([1.0, 3.0, 5.0])
        b = np.array([2.0, 4.0, 6.0])
        assert merge_partition(a, b, 0) == (0, 0)
        assert merge_partition(a, b, 3) == (2, 1)  # {1,2,3}
        assert merge_partition(a, b, 6) == (3, 3)

    def test_ties_resolve_toward_a(self):
        a = np.array([2.0, 2.0])
        b = np.array([2.0, 2.0])
        # The k smallest prefer a's copies first (stability).
        assert merge_partition(a, b, 2) == (2, 0)

    def test_empty_sides(self):
        assert merge_partition(np.array([]), np.array([1.0, 2.0]), 1) == (0, 1)
        assert merge_partition(np.array([1.0, 2.0]), np.array([]), 1) == (1, 0)

    def test_partition_invariant(self, rng):
        """a[:i] and b[:j] really are the k smallest (multiset check)."""
        a = np.sort(rng.integers(0, 10, 20).astype(float))
        b = np.sort(rng.integers(0, 10, 15).astype(float))
        merged = np.sort(np.concatenate([a, b]))
        for k in range(36):
            i, j = merge_partition(a, b, k)
            assert i + j == k
            taken = np.sort(np.concatenate([a[:i], b[:j]]))
            assert np.array_equal(taken, merged[:k])


class TestFlatMerge:
    @pytest.mark.parametrize("na,nb", [(0, 5), (5, 0), (1, 1), (8, 8),
                                       (13, 29), (50, 3)])
    @pytest.mark.parametrize("p", [1, 4, 32])
    def test_value(self, rng, na, nb, p):
        a = np.sort(rng.integers(0, 12, na).astype(float))
        b = np.sort(rng.integers(0, 12, nb).astype(float))
        out, _ = flat_merge(make_umm(width=4, latency=3), a, b, p)
        assert np.array_equal(out, np.sort(np.concatenate([a, b])))

    def test_with_duplicates_everywhere(self):
        a = np.full(10, 7.0)
        b = np.full(10, 7.0)
        out, _ = flat_merge(make_umm(), a, b, 8)
        assert np.array_equal(out, np.full(20, 7.0))

    def test_disjoint_ranges(self):
        a = np.arange(8.0)
        b = np.arange(8.0) + 100
        out, _ = flat_merge(make_dmm(), a, b, 4)
        assert np.array_equal(out, np.concatenate([a, b]))

    def test_unsorted_rejected(self, rng):
        with pytest.raises(ConfigurationError):
            flat_merge(make_umm(), np.array([2.0, 1.0]), np.array([1.0]), 4)

    def test_empty_rejected(self):
        with pytest.raises(ConfigurationError):
            flat_merge(make_umm(), np.array([]), np.array([]), 4)


class TestHMMMerge:
    @pytest.mark.parametrize("na,nb", [(0, 9), (16, 16), (33, 21), (7, 40)])
    @pytest.mark.parametrize("p,d", [(4, 2), (16, 4), (32, 8)])
    def test_value(self, rng, na, nb, p, d):
        a = np.sort(rng.normal(size=na))
        b = np.sort(rng.normal(size=nb))
        eng = make_hmm(num_dmms=d, width=4, global_latency=6)
        out, _ = hmm_merge(eng, a, b, p)
        assert np.array_equal(out, np.sort(np.concatenate([a, b])))

    def test_no_races(self, rng):
        tr = TraceRecorder()
        a = np.sort(rng.normal(size=24))
        b = np.sort(rng.normal(size=18))
        eng = make_hmm(num_dmms=2, width=4, global_latency=4)
        out, _ = hmm_merge(eng, a, b, 8, trace=tr)
        assert np.array_equal(out, np.sort(np.concatenate([a, b])))
        assert tr.detect_races() == []

    def test_beats_flat_at_latency(self, rng):
        """The searches and segment merges are dependent-read chains —
        exactly what latency-1 shared memory rescues."""
        a = np.sort(rng.normal(size=512))
        b = np.sort(rng.normal(size=512))
        _, flat = flat_merge(make_umm(width=8, latency=100), a, b, 128)
        eng = make_hmm(num_dmms=8, width=8, global_latency=100)
        _, hier = hmm_merge(eng, a, b, 128)
        assert hier.cycles * 1.5 < flat.cycles

    def test_skewed_partition(self, rng):
        """One array far larger than the other still partitions evenly
        by *output*, not by input."""
        a = np.sort(rng.normal(size=100))
        b = np.sort(rng.normal(size=4))
        eng = make_hmm(num_dmms=4, width=4, global_latency=5)
        out, _ = hmm_merge(eng, a, b, 16)
        assert np.array_equal(out, np.sort(np.concatenate([a, b])))
