"""Conflict-free oblivious kernel suite (PR 9 extension)."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.machine.trace import TraceRecorder
from repro.core.kernels.conflict_free import (
    cf_bitonic_merge_kernel,
    cf_bitonic_sort_kernel,
    flat_cf_merge,
    flat_cf_permutation,
    flat_cf_sort,
    generalized_naive_schedule,
    generalized_permutation_schedule,
    hmm_cf_permutation,
    hmm_cf_sort,
    oblivious_permutation_kernel,
)
from repro.core.kernels.sorting import flat_bitonic_sort

from conftest import make_dmm, make_hmm


def _excess(report) -> int:
    return sum(s.excess_slots for s in report.unit_stats.values())


class TestFlatSort:
    @pytest.mark.parametrize("n", [1, 2, 3, 8, 15, 16, 100, 256])
    @pytest.mark.parametrize("p", [4, 16, 64])
    @pytest.mark.parametrize("fused", [False, True])
    def test_sorts(self, rng, n, p, fused):
        vals = rng.normal(size=n)
        out, _ = flat_cf_sort(make_dmm(), vals, p, fused=fused)
        assert np.allclose(out, np.sort(vals)), (n, p, fused)

    @pytest.mark.parametrize("fused", [False, True])
    def test_conflict_free_on_bank_policy(self, rng, fused):
        """Zero avoidable slots on the DMM — the tentpole property."""
        _, report = flat_cf_sort(make_dmm(width=8), rng.normal(size=256),
                                 32, fused=fused)
        assert report.conflict_free()
        assert _excess(report) == 0

    def test_naive_network_is_conflicted_here(self, rng):
        """The comparison baseline really does pay excess slots."""
        _, report = flat_bitonic_sort(make_dmm(width=8),
                                      rng.normal(size=256), 32)
        assert _excess(report) > 0

    def test_unfused_matches_naive_transactions(self, rng):
        """Transaction-for-transaction parity: the unfused network
        re-addresses the naive schedule without changing its shape."""
        vals = rng.normal(size=256)
        _, naive = flat_bitonic_sort(make_dmm(width=8), vals, 32)
        _, cf = flat_cf_sort(make_dmm(width=8), vals, 32, fused=False)
        assert cf.total_transactions() == naive.total_transactions()
        assert cf.total_slots() == naive.total_slots() - _excess(naive)

    def test_fused_issues_fewer_transactions(self, rng):
        vals = rng.normal(size=256)
        _, unfused = flat_cf_sort(make_dmm(width=8), vals, 32, fused=False)
        _, fused = flat_cf_sort(make_dmm(width=8), vals, 32, fused=True)
        assert fused.total_transactions() < unfused.total_transactions()
        assert fused.cycles < unfused.cycles

    def test_duplicates_and_padding(self, rng):
        vals = rng.integers(0, 4, 100).astype(float)  # pads 100 -> 128
        out, _ = flat_cf_sort(make_dmm(), vals, 16)
        assert np.allclose(out, np.sort(vals))

    def test_empty_rejected(self):
        with pytest.raises(ConfigurationError):
            flat_cf_sort(make_dmm(), np.array([]), 4)

    def test_kernel_requires_power_of_two_size(self):
        eng = make_dmm()
        a = eng.alloc(12)
        with pytest.raises(ConfigurationError):
            cf_bitonic_sort_kernel(a, 12)

    def test_non_power_of_two_width_rejected(self):
        """The guard backs up the MachineParams-level invariant: the
        conflict-free layouts require a power-of-two width."""
        from repro.core.kernels.conflict_free import (
            _require_power_of_two_width,
        )

        with pytest.raises(ConfigurationError):
            _require_power_of_two_width(6)
        _require_power_of_two_width(8)  # no raise


class TestHMMSort:
    @pytest.mark.parametrize("n", [16, 60, 256])
    @pytest.mark.parametrize("fused", [False, True])
    def test_sorts(self, rng, n, fused):
        vals = rng.normal(size=n)
        out, _ = hmm_cf_sort(make_hmm(num_dmms=2, width=4), vals, 16,
                             fused=fused)
        assert np.allclose(out, np.sort(vals))

    def test_shared_units_conflict_free(self, rng):
        _, report = hmm_cf_sort(make_hmm(num_dmms=2, width=4),
                                rng.normal(size=128), 16)
        assert report.shared_stats().excess_slots == 0


class TestFlatMerge:
    @pytest.mark.parametrize("na,nb", [(1, 1), (5, 3), (17, 40), (96, 32)])
    @pytest.mark.parametrize("fused", [False, True])
    def test_merges(self, rng, na, nb, fused):
        a = np.sort(rng.normal(size=na))
        b = np.sort(rng.normal(size=nb))
        out, _ = flat_cf_merge(make_dmm(), a, b, 16, fused=fused)
        assert np.allclose(out, np.sort(np.concatenate([a, b])))

    def test_conflict_free(self, rng):
        a = np.sort(rng.normal(size=96))
        b = np.sort(rng.normal(size=64))
        _, report = flat_cf_merge(make_dmm(width=8), a, b, 32)
        assert report.conflict_free()

    def test_unsorted_inputs_rejected(self):
        with pytest.raises(ConfigurationError):
            flat_cf_merge(make_dmm(), np.array([2.0, 1.0]),
                          np.array([1.0]), 4)
        with pytest.raises(ConfigurationError):
            flat_cf_merge(make_dmm(), np.array([1.0]),
                          np.array([2.0, 1.0]), 4)
        with pytest.raises(ConfigurationError):
            flat_cf_merge(make_dmm(), np.array([]), np.array([]), 4)

    def test_kernel_requires_power_of_two(self):
        eng = make_dmm()
        buf = eng.alloc(12)
        with pytest.raises(ConfigurationError):
            cf_bitonic_merge_kernel(buf, 6)


def _transpose_perm(n: int, w: int) -> np.ndarray:
    i = np.arange(n, dtype=np.int64)
    return (i % w) * (n // w) + i // w


class TestGeneralizedSchedule:
    @pytest.mark.parametrize("n", [1, 4, 7, 16, 33, 128])
    @pytest.mark.parametrize("w", [1, 4, 8])
    def test_schedule_covers_each_source_once(self, rng, n, w):
        perm = rng.permutation(n).astype(np.int64)
        sched = generalized_permutation_schedule(perm, w)
        assert sched.shape == (-(-n // w), w)
        live = sched[sched < n]
        assert np.array_equal(np.sort(live), np.arange(n))

    @pytest.mark.parametrize("n", [4, 7, 33, 128])
    def test_rounds_are_degree_one(self, rng, n):
        """Per round: live sources in distinct banks, live destinations
        in distinct banks — the König-decomposition guarantee."""
        w = 4
        perm = rng.permutation(n).astype(np.int64)
        sched = generalized_permutation_schedule(perm, w)
        for rnd in sched:
            live = rnd[rnd < n]
            assert np.unique(live % w).size == live.size
            assert np.unique(perm[live] % w).size == live.size

    def test_naive_schedule_shape(self):
        sched = generalized_naive_schedule(10, 4)
        assert sched.shape == (3, 4)
        assert sched[2, 2] == 10  # virtual tail entry, masked by kernel

    def test_rejects_bad_inputs(self):
        with pytest.raises(ConfigurationError):
            generalized_permutation_schedule(np.array([0, 0]), 4)
        with pytest.raises(ConfigurationError):
            generalized_permutation_schedule(np.array([1, 2]), 4)
        with pytest.raises(ConfigurationError):
            generalized_permutation_schedule(np.array([], dtype=int), 4)
        with pytest.raises(ConfigurationError):
            generalized_naive_schedule(0, 4)


class TestFlatPermutation:
    @pytest.mark.parametrize("n", [1, 5, 16, 39, 128])
    @pytest.mark.parametrize("schedule", ["naive", "conflict-free"])
    def test_routes_values(self, rng, n, schedule):
        vals = rng.normal(size=n)
        perm = rng.permutation(n).astype(np.int64)
        out, _ = flat_cf_permutation(make_dmm(), vals, perm, 16,
                                     schedule=schedule)
        assert np.allclose(out[perm], vals)

    def test_conflict_free_beats_naive_on_adversarial(self, rng):
        n, w = 128, 8
        vals = rng.normal(size=n)
        perm = _transpose_perm(n, w)
        eng = lambda: make_dmm(width=w)
        _, naive = flat_cf_permutation(eng(), vals, perm, 32,
                                       schedule="naive")
        _, cf = flat_cf_permutation(eng(), vals, perm, 32)
        assert _excess(naive) > 0
        assert _excess(cf) == 0
        assert cf.cycles < naive.cycles

    def test_ragged_size_conflict_free(self, rng):
        """The generalized builder handles w does-not-divide n."""
        n = 53
        vals = rng.normal(size=n)
        perm = rng.permutation(n).astype(np.int64)
        _, report = flat_cf_permutation(make_dmm(width=8), vals, perm, 32)
        assert report.conflict_free()

    def test_bad_schedule_name_rejected(self, rng):
        with pytest.raises(ConfigurationError):
            flat_cf_permutation(make_dmm(), rng.normal(size=8),
                                np.arange(8), 8, schedule="greedy")

    def test_size_mismatch_rejected(self, rng):
        with pytest.raises(ConfigurationError):
            flat_cf_permutation(make_dmm(), rng.normal(size=8),
                                np.arange(9), 8)

    def test_kernel_validates_schedule_shape(self):
        eng = make_dmm()
        a = eng.array_from(np.arange(4.0), "a")
        b = eng.alloc(4, "b")
        with pytest.raises(ConfigurationError):
            oblivious_permutation_kernel(a, b, np.arange(4),
                                         np.arange(4))  # 1-D schedule


class TestHMMPermutation:
    def test_chunk_local_routes(self, rng):
        n, d, w = 64, 2, 4
        vals = rng.normal(size=n)
        # Chunk-local: permute within each DMM's contiguous half.
        perm = np.concatenate([
            rng.permutation(32), 32 + rng.permutation(32)
        ]).astype(np.int64)
        out, report = hmm_cf_permutation(make_hmm(num_dmms=d, width=w),
                                         vals, perm, 16)
        assert np.allclose(out[perm], vals)
        assert report.shared_stats().excess_slots == 0

    def test_global_routing_rejected(self, rng):
        n = 64
        perm = np.roll(np.arange(n), 1)  # crosses the chunk boundary
        with pytest.raises(ConfigurationError):
            hmm_cf_permutation(make_hmm(num_dmms=2, width=4),
                               rng.normal(size=n), perm, 16)

    def test_partial_warp_launch_rejected(self, rng):
        with pytest.raises(ConfigurationError):
            hmm_cf_permutation(make_hmm(num_dmms=2, width=4),
                               rng.normal(size=64), np.arange(64), 6)
