"""Dense matrix-vector multiply and histogram (extensions)."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.machine.trace import TraceRecorder
from repro.core.kernels.histogram import hmm_histogram, hmm_histogram_racy
from repro.core.kernels.matvec import flat_matvec, hmm_matvec

from conftest import make_dmm, make_hmm, make_umm


class TestFlatMatvec:
    @pytest.mark.parametrize("m,n", [(1, 1), (4, 4), (13, 7), (32, 20), (5, 33)])
    @pytest.mark.parametrize("p", [4, 16, 64])
    def test_value(self, rng, m, n, p):
        A = rng.normal(size=(m, n))
        x = rng.normal(size=n)
        y, _ = flat_matvec(make_umm(width=4, latency=3), A, x, p)
        assert np.allclose(y, A @ x), (m, n, p)

    def test_dmm_agrees(self, rng):
        A = rng.normal(size=(8, 12))
        x = rng.normal(size=12)
        y1, _ = flat_matvec(make_dmm(width=4), A, x, 16)
        y2, _ = flat_matvec(make_umm(width=4), A, x, 16)
        assert np.allclose(y1, y2)

    def test_accesses_coalesced(self, rng):
        """The warp-per-row formulation keeps every A read contiguous."""
        A = rng.normal(size=(16, 32))
        x = rng.normal(size=32)
        _, report = flat_matvec(make_dmm(width=8), A, x, 32)
        assert report.conflict_free()

    def test_partial_warp_rejected(self, rng):
        with pytest.raises(ConfigurationError):
            flat_matvec(make_umm(width=8), rng.normal(size=(4, 4)),
                        rng.normal(size=4), 6)

    def test_shape_mismatch_rejected(self, rng):
        with pytest.raises(ConfigurationError):
            flat_matvec(make_umm(), rng.normal(size=(4, 4)),
                        rng.normal(size=5), 8)
        with pytest.raises(ConfigurationError):
            flat_matvec(make_umm(), rng.normal(size=4), rng.normal(size=4), 8)


class TestHMMMatvec:
    @pytest.mark.parametrize("m,n", [(1, 4), (16, 16), (13, 9), (40, 24)])
    @pytest.mark.parametrize("p,d", [(8, 2), (32, 4), (16, 2)])
    def test_value(self, rng, m, n, p, d):
        A = rng.normal(size=(m, n))
        x = rng.normal(size=n)
        eng = make_hmm(num_dmms=d, width=4, global_latency=6)
        y, _ = hmm_matvec(eng, A, x, p)
        assert np.allclose(y, A @ x), (m, n, p, d)

    def test_thread_multiple_enforced(self, rng):
        eng = make_hmm(num_dmms=2, width=4)
        with pytest.raises(ConfigurationError):
            hmm_matvec(eng, rng.normal(size=(4, 4)), rng.normal(size=4), 10)

    def test_no_races(self, rng):
        tr = TraceRecorder()
        A = rng.normal(size=(12, 8))
        x = rng.normal(size=8)
        eng = make_hmm(num_dmms=2, width=4, global_latency=4)
        y, _ = hmm_matvec(eng, A, x, 16, trace=tr)
        assert np.allclose(y, A @ x)
        assert tr.detect_races() == []

    def test_staging_beats_flat_at_latency(self, rng):
        """Staging x into the shared memories wins once l is realistic —
        the Theorem 9 structure on a different kernel."""
        A = rng.normal(size=(64, 64))
        x = rng.normal(size=64)
        _, flat = flat_matvec(make_umm(width=8, latency=100), A, x, 64)
        eng = make_hmm(num_dmms=8, width=8, global_latency=100)
        _, hier = hmm_matvec(eng, A, x, 64)
        assert hier.cycles * 2 < flat.cycles

    def test_x_staged_once_per_dmm(self, rng):
        """Global traffic is O(mn + dn), not O(mn) repeated x reads."""
        m = n = 32
        d, w = 4, 8
        A = rng.normal(size=(m, n))
        x = rng.normal(size=n)
        eng = make_hmm(num_dmms=d, width=w, global_latency=8)
        _, report = hmm_matvec(eng, A, x, d * w)
        g = report.stats_for("global").requests
        assert g <= m * n + d * n + 2 * m + w  # A + staged x + y + slack


class TestHistogram:
    @pytest.mark.parametrize("n,bins,d", [(100, 8, 2), (512, 16, 4), (7, 4, 8),
                                          (1, 1, 2), (64, 3, 4)])
    def test_exact_counts(self, rng, n, bins, d):
        vals = rng.integers(0, bins, n).astype(float)
        eng = make_hmm(num_dmms=d, width=4, global_latency=6)
        counts, _ = hmm_histogram(eng, vals, bins)
        assert np.allclose(counts, np.bincount(vals.astype(int), minlength=bins))

    def test_skewed_distribution(self, rng):
        """Hot bins (all items in one bin) stay exact — the worst case
        for collision handling."""
        vals = np.zeros(200)
        eng = make_hmm(num_dmms=4, width=4, global_latency=4)
        counts, _ = hmm_histogram(eng, vals, 4)
        assert counts[0] == 200 and counts[1:].sum() == 0

    def test_race_free(self, rng):
        tr = TraceRecorder()
        vals = rng.integers(0, 8, 128).astype(float)
        eng = make_hmm(num_dmms=2, width=8, global_latency=4)
        counts, _ = hmm_histogram(eng, vals, 8, trace=tr)
        assert counts.sum() == 128
        assert tr.detect_races() == []

    def test_racy_variant_flagged_and_wrong(self, rng):
        tr = TraceRecorder()
        vals = rng.integers(0, 4, 256).astype(float)
        eng = make_hmm(num_dmms=2, width=8, global_latency=4)
        counts, _ = hmm_histogram_racy(eng, vals, 4, 64, trace=tr)
        assert counts.sum() < 256  # lost updates
        assert tr.detect_races()

    def test_input_validation(self, rng):
        eng = make_hmm()
        with pytest.raises(ConfigurationError):
            hmm_histogram(eng, [], 4)
        with pytest.raises(ConfigurationError):
            hmm_histogram(eng, [0.0, 5.0], 4)  # out of range
        with pytest.raises(ConfigurationError):
            hmm_histogram(eng, [0.5], 4)  # not integral
        with pytest.raises(ConfigurationError):
            hmm_histogram(eng, [0.0], 0)


class TestFlatFacadeSymmetry:
    def test_flat_machines_expose_matvec_and_spmv(self, rng):
        from repro import DMM, UMM, MachineParams

        A = rng.normal(size=(8, 8)) * (rng.random((8, 8)) < 0.5)
        x = rng.normal(size=8)
        for machine in (DMM(MachineParams(width=4, latency=3)),
                        UMM(MachineParams(width=4, latency=3))):
            y1, _ = machine.matvec(A, x, 8)
            y2, _ = machine.spmv(A, x, 8)
            assert np.allclose(y1, A @ x)
            assert np.allclose(y2, A @ x)
