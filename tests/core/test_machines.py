"""The DMM / UMM / HMM front-end façades."""

import numpy as np
import pytest

from repro import DMM, GTX580, HMM, UMM, HMMParams, MachineParams, TraceRecorder


class TestFlatFacades:
    def test_default_params(self):
        assert DMM().params.width == 32
        assert UMM().params.latency == 1

    def test_sum(self, rng):
        vals = rng.normal(size=100)
        total, report = UMM(MachineParams(width=8, latency=4)).sum(vals, 16)
        assert np.isclose(total, vals.sum())
        assert report.cycles > 0

    def test_sum_accepts_iterables(self):
        total, _ = DMM(MachineParams(width=4, latency=2)).sum(range(10), 4)
        assert total == 45.0

    def test_convolve(self, rng):
        x = rng.normal(size=4)
        y = rng.normal(size=19)
        z, report = DMM(MachineParams(width=4, latency=3)).convolve(x, y, 8)
        assert np.allclose(z, np.correlate(y, x, "valid"))

    def test_prefix_sums(self, rng):
        vals = rng.normal(size=30)
        out, _ = UMM(MachineParams(width=4, latency=2)).prefix_sums(vals, 8)
        assert np.allclose(out, np.cumsum(vals))

    def test_engine_gives_fresh_state(self):
        machine = UMM(MachineParams(width=4, latency=2))
        e1 = machine.engine()
        e2 = machine.engine()
        assert e1 is not e2
        a = e1.alloc(4)
        assert a.space is not e2.space

    def test_repeated_calls_independent(self, rng):
        machine = UMM(MachineParams(width=4, latency=2))
        vals = rng.normal(size=64)
        t1, r1 = machine.sum(vals, 8)
        t2, r2 = machine.sum(vals, 8)
        assert t1 == t2
        assert r1.cycles == r2.cycles

    def test_dmm_umm_policy_differs_on_scattered_access(self):
        """Sanity: the two façades really wire different policies."""
        assert DMM().engine().unit.policy.name == "dmm-bank"
        assert UMM().engine().unit.policy.name == "umm-group"


class TestHMMFacade:
    @pytest.fixture
    def machine(self):
        return HMM(HMMParams(num_dmms=4, width=4, global_latency=16))

    def test_sum(self, machine, rng):
        vals = rng.normal(size=200)
        total, report = machine.sum(vals, 32)
        assert np.isclose(total, vals.sum())

    def test_sum_variants_agree_on_value(self, machine, rng):
        vals = rng.normal(size=128)
        t1, _ = machine.sum(vals, 32)
        t2, _ = machine.sum_single_dmm(vals, 8)
        t3, _ = machine.sum_flat(vals, 32)
        assert np.isclose(t1, t2)
        assert np.isclose(t1, t3)

    def test_convolve(self, machine, rng):
        x = rng.normal(size=4)
        y = rng.normal(size=35)
        z, _ = machine.convolve(x, y, 16)
        assert np.allclose(z, np.correlate(y, x, "valid"))

    def test_prefix_sums(self, machine, rng):
        vals = rng.normal(size=100)
        out, _ = machine.prefix_sums(vals, 16)
        assert np.allclose(out, np.cumsum(vals))

    def test_matmul_and_transpose(self, machine, rng):
        a = rng.normal(size=(8, 8))
        b = rng.normal(size=(8, 8))
        c, _ = machine.matmul(a, b)
        assert np.allclose(c, a @ b)
        t, _ = machine.transpose(a)
        assert np.allclose(t, a.T)

    def test_trace_passthrough(self, machine, rng):
        tr = TraceRecorder()
        machine.sum(rng.normal(size=64), 16, trace=tr)
        assert len(tr.records) > 0

    def test_gtx580_workload(self, rng):
        """A small workload on the paper's flagship configuration."""
        machine = HMM(GTX580)
        vals = rng.normal(size=2048)
        total, report = machine.sum(vals, 1024)
        assert np.isclose(total, vals.sum())
        # 16 DMMs x 64 threads each, 2 warps per DMM.
        assert report.num_warps == 32
