"""Sparse matrix-vector multiply and BFS (extensions)."""

import networkx as nx
import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.machine.trace import TraceRecorder
from repro.core.kernels.bfs import adjacency_from_graph, hmm_bfs
from repro.core.kernels.spmv import csr_from_dense, flat_spmv, hmm_spmv

from conftest import make_dmm, make_hmm, make_umm


def sparse(rng, m, n, density):
    return rng.normal(size=(m, n)) * (rng.random((m, n)) < density)


class TestCSRConversion:
    def test_roundtrip_structure(self, rng):
        A = sparse(rng, 6, 5, 0.4)
        indptr, indices, data = csr_from_dense(A)
        assert indptr[0] == 0 and indptr[-1] == indices.size == data.size
        dense = np.zeros_like(A)
        for r in range(6):
            for k in range(indptr[r], indptr[r + 1]):
                dense[r, indices[k]] = data[k]
        assert np.allclose(dense, A)

    def test_empty_matrix(self):
        indptr, indices, data = csr_from_dense(np.zeros((3, 3)))
        assert indptr.tolist() == [0, 0, 0, 0]

    def test_non_2d_rejected(self):
        with pytest.raises(ConfigurationError):
            csr_from_dense(np.zeros(4))


class TestSpMV:
    @pytest.mark.parametrize("m,n,density", [
        (1, 1, 1.0), (8, 8, 0.3), (20, 16, 0.2), (13, 9, 0.5), (6, 6, 0.0),
    ])
    @pytest.mark.parametrize("p", [4, 8, 16])
    def test_flat_value(self, rng, m, n, density, p):
        A = sparse(rng, m, n, density)
        x = rng.normal(size=n)
        y, _ = flat_spmv(make_umm(width=4, latency=3), A, x, p)
        assert np.allclose(y, A @ x), (m, n, density, p)

    @pytest.mark.parametrize("m,n,density", [(8, 8, 0.3), (25, 17, 0.2)])
    @pytest.mark.parametrize("d", [1, 2, 4])
    def test_hmm_value(self, rng, m, n, density, d):
        A = sparse(rng, m, n, density)
        x = rng.normal(size=n)
        eng = make_hmm(num_dmms=d, width=4, global_latency=5)
        y, _ = hmm_spmv(eng, A, x, d * 8)
        assert np.allclose(y, A @ x), (m, n, density, d)

    def test_irregular_rows_no_barrier_stalls(self, rng):
        """Wildly skewed row lengths (one dense row among empties) must
        still produce correct results — the reduction is barrier-free."""
        A = np.zeros((16, 32))
        A[3] = rng.normal(size=32)  # one long row
        A[10, 5] = 2.0
        x = rng.normal(size=32)
        y, _ = flat_spmv(make_umm(width=8, latency=4), A, x, 32)
        assert np.allclose(y, A @ x)

    def test_structure_reads_coalesced_gathers_pay(self, rng):
        """The trace separates the streaming CSR reads (1 slot) from the
        scattered x gathers (multi-slot) — the model's SpMV story."""
        A = sparse(rng, 16, 64, 0.4)
        x = rng.normal(size=64)
        tr = TraceRecorder()
        _, report = flat_spmv(make_umm(width=8, latency=4), A, x, 16, trace=tr)
        gathers = [r for r in tr.records if r.array == "spmv.x"]
        streams = [r for r in tr.records if r.array in ("spmv.indices", "spmv.data")]
        # Streaming reads stay within 2 groups (rows start unaligned);
        # the data-dependent gathers scatter across many more.
        assert all(r.slots <= 2 for r in streams)
        assert max(r.slots for r in gathers) > 2

    def test_hmm_beats_flat_at_latency(self, rng):
        A = sparse(rng, 64, 64, 0.15)
        x = rng.normal(size=64)
        _, flat = flat_spmv(make_umm(width=8, latency=150), A, x, 64)
        eng = make_hmm(num_dmms=8, width=8, global_latency=150)
        _, hier = hmm_spmv(eng, A, x, 64)
        assert hier.cycles * 2 < flat.cycles

    def test_thread_validation(self, rng):
        with pytest.raises(ConfigurationError):
            flat_spmv(make_umm(width=8), sparse(rng, 4, 4, 1.0),
                      rng.normal(size=4), 6)
        with pytest.raises(ConfigurationError):
            hmm_spmv(make_hmm(num_dmms=2, width=4), sparse(rng, 4, 4, 1.0),
                     rng.normal(size=4), 6)

    def test_shape_validation(self, rng):
        with pytest.raises(ConfigurationError):
            flat_spmv(make_umm(width=4), sparse(rng, 4, 4, 1.0),
                      rng.normal(size=5), 8)


class TestBFS:
    def engine_factory(self):
        return lambda: make_hmm(num_dmms=2, width=4, global_latency=8)

    @pytest.mark.parametrize("graph", [
        nx.path_graph(10),
        nx.cycle_graph(8),
        nx.star_graph(12),
        nx.complete_graph(6),
        nx.erdos_renyi_graph(30, 0.15, seed=1),
    ])
    def test_matches_networkx(self, graph):
        adj = adjacency_from_graph(graph)
        dist, cycles = hmm_bfs(self.engine_factory(), adj, 0, 16)
        nodes = sorted(graph.nodes())
        ref = nx.single_source_shortest_path_length(graph, nodes[0])
        expected = np.full(len(nodes), -1)
        for node, d in ref.items():
            expected[nodes.index(node)] = d
        assert np.array_equal(dist, expected)
        assert cycles > 0

    def test_disconnected_components(self):
        g = nx.union(nx.path_graph(4), nx.path_graph(3), rename=("a", "b"))
        adj = adjacency_from_graph(g)
        dist, _ = hmm_bfs(self.engine_factory(), adj, 0, 8)
        assert (dist == -1).sum() == 3  # the other component unreachable

    def test_single_node(self):
        dist, _ = hmm_bfs(self.engine_factory(), np.zeros((1, 1)), 0, 4)
        assert dist.tolist() == [0]

    def test_source_validation(self):
        with pytest.raises(ConfigurationError):
            hmm_bfs(self.engine_factory(), np.zeros((3, 3)), 5, 4)
        with pytest.raises(ConfigurationError):
            hmm_bfs(self.engine_factory(), np.zeros((3, 2)), 0, 4)

    def test_different_sources_consistent(self, rng):
        g = nx.erdos_renyi_graph(20, 0.2, seed=3)
        adj = adjacency_from_graph(g)
        nodes = sorted(g.nodes())
        for src in (0, 7, 19):
            dist, _ = hmm_bfs(self.engine_factory(), adj, src, 16)
            ref = nx.single_source_shortest_path_length(g, nodes[src])
            expected = np.full(len(nodes), -1)
            for node, d in ref.items():
                expected[nodes.index(node)] = d
            assert np.array_equal(dist, expected), src

    def test_more_threads_help_on_wide_frontiers(self):
        """A star graph has one huge level: more threads shorten it."""
        adj = adjacency_from_graph(nx.star_graph(64))
        _, slow = hmm_bfs(self.engine_factory(), adj, 0, 4)
        _, fast = hmm_bfs(self.engine_factory(), adj, 0, 32)
        assert fast < slow
