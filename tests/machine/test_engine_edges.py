"""Engine edge configurations: degenerate widths, latencies, ablation
modes, and non-default HMM shapes."""

import numpy as np
import pytest

from repro.machine.engine import MachineEngine
from repro.machine.hmm import HMMEngine
from repro.machine.policy import DMMBankPolicy, IdealPolicy, UMMGroupPolicy
from repro.params import HMMParams, MachineParams
from repro.core.kernels.contiguous import contiguous_read
from repro.core.kernels.reduction import sum_kernel
from repro.core.machines import run_flat_sum

from conftest import make_hmm


class TestWidthOne:
    """w = 1: every machine degenerates to a sequential memory."""

    def test_every_access_serializes(self):
        eng = MachineEngine(MachineParams(width=1, latency=3), DMMBankPolicy())
        a = eng.alloc(8)
        report = eng.launch(contiguous_read(a, 8), 4)
        # 8 single-cell transactions through a 1-wide port.
        assert report.stats_for("mem").slots == 8
        assert report.cycles >= 8

    def test_sum_still_correct(self, rng):
        vals = rng.normal(size=20)
        eng = MachineEngine(MachineParams(width=1, latency=2), UMMGroupPolicy())
        total, _ = run_flat_sum(eng, vals, 4)
        assert np.isclose(total, vals.sum())

    def test_dmm_equals_umm_at_width_one(self, rng):
        """With one bank and one address per group the policies coincide."""
        vals = rng.normal(size=16)
        cycles = []
        for policy in (DMMBankPolicy(), UMMGroupPolicy()):
            eng = MachineEngine(MachineParams(width=1, latency=4), policy)
            a = eng.array_from(vals, "a")
            cycles.append(eng.launch(sum_kernel(a, 16), 4).cycles)
        assert cycles[0] == cycles[1]


class TestLatencyOne:
    def test_flat_latency_one_is_slot_bound(self):
        eng = MachineEngine(MachineParams(width=4, latency=1), UMMGroupPolicy())
        a = eng.alloc(64)
        report = eng.launch(contiguous_read(a, 64), 16)
        # l = 1: time = number of slots through the port exactly.
        assert report.cycles == report.stats_for("mem").slots

    def test_hmm_global_latency_one(self, rng):
        vals = rng.normal(size=64)
        from repro.core.kernels.hmm_sum import hmm_sum

        eng = make_hmm(num_dmms=2, width=4, global_latency=1)
        total, _ = hmm_sum(eng, vals, 16)
        assert np.isclose(total, vals.sum())


class TestSharedLatencyOverride:
    def test_slow_shared_memory(self):
        """shared_latency > 1 (non-paper configuration) is honoured."""
        eng = HMMEngine(
            HMMParams(num_dmms=1, width=4, global_latency=10, shared_latency=7)
        )
        s = eng.alloc_shared(0, 4)

        def prog(warp):
            yield warp.read(s, warp.local_tids)

        assert eng.launch(prog, 4).cycles == 7

    def test_slow_shared_weakens_hmm_sum(self, rng):
        """With shared as slow as global, the HMM's advantage shrinks —
        the advantage comes from the latency gap, not the hierarchy."""
        from repro.core.kernels.hmm_sum import hmm_sum

        vals = rng.normal(size=512)
        fast = HMMEngine(
            HMMParams(num_dmms=4, width=8, global_latency=64, shared_latency=1)
        )
        slow = HMMEngine(
            HMMParams(num_dmms=4, width=8, global_latency=64, shared_latency=64)
        )
        _, fast_report = hmm_sum(fast, vals, 64)
        _, slow_report = hmm_sum(slow, vals, 64)
        assert slow_report.cycles > fast_report.cycles


class TestUnpipelinedEngines:
    def test_flat_sum_correct_and_slower(self, rng):
        vals = rng.normal(size=128)
        piped = MachineEngine(MachineParams(width=4, latency=8), UMMGroupPolicy())
        total1, r1 = run_flat_sum(piped, vals, 16)
        serial = MachineEngine(
            MachineParams(width=4, latency=8), UMMGroupPolicy(), pipelined=False
        )
        total2, r2 = run_flat_sum(serial, vals, 16)
        assert np.isclose(total1, total2)
        assert r2.cycles > r1.cycles

    def test_hmm_unpipelined(self, rng):
        from repro.core.kernels.hmm_sum import hmm_sum

        vals = rng.normal(size=128)
        eng = HMMEngine(
            HMMParams(num_dmms=2, width=4, global_latency=8), pipelined=False
        )
        total, _ = hmm_sum(eng, vals, 16)
        assert np.isclose(total, vals.sum())


class TestIdealPolicyMachine:
    def test_end_to_end(self, rng):
        """The conflict-oblivious ablation machine runs every kernel."""
        vals = rng.normal(size=100)
        eng = MachineEngine(MachineParams(width=4, latency=4), IdealPolicy())
        total, report = run_flat_sum(eng, vals, 16)
        assert np.isclose(total, vals.sum())
        assert report.stats_for("mem").slots == report.stats_for("mem").transactions


class TestHMMPolicyInjection:
    def test_swapped_policies(self, rng):
        """Bank policy on global, group policy on shared: a 'what if the
        memories were wired the other way' machine."""
        from repro.core.kernels.hmm_sum import hmm_sum

        eng = HMMEngine(
            HMMParams(num_dmms=2, width=4, global_latency=8),
            global_policy=DMMBankPolicy(),
            shared_policy=UMMGroupPolicy(),
        )
        assert eng.global_unit.policy.name == "dmm-bank"
        assert eng.shared_units[0].policy.name == "umm-group"
        vals = rng.normal(size=64)
        total, _ = hmm_sum(eng, vals, 16)
        assert np.isclose(total, vals.sum())


class TestLaunchMetadata:
    def test_default_labels(self):
        eng = MachineEngine(MachineParams(width=4, latency=2),
                            UMMGroupPolicy(), name="umm")
        a = eng.alloc(4)

        def prog(warp):
            yield warp.read(a, warp.tids)

        assert eng.launch(prog, 4).label == "umm"
        assert eng.launch(prog, 4, label="custom").label == "custom"

    def test_hmm_default_label(self):
        eng = make_hmm()
        g = eng.alloc_global(4)

        def prog(warp):
            yield warp.read(g, warp.tids)

        assert eng.launch(prog, 4).label == "hmm"
