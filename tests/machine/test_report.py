"""RunReport aggregation helpers and the ops dataclasses."""

import numpy as np
import pytest

from repro.machine.ops import (
    AccessKind,
    BarrierOp,
    BarrierScope,
    ComputeOp,
    ReadOp,
    WriteOp,
)
from repro.machine.pipeline import UnitStats
from repro.machine.report import RunReport


def make_report(**unit_stats) -> RunReport:
    return RunReport(
        cycles=100,
        num_threads=64,
        num_warps=2,
        unit_stats=unit_stats,
        compute_ops=3,
        compute_cycles=7,
        barrier_releases=2,
        label="t",
    )


def stats(transactions=1, requests=4, slots=1, excess=0) -> UnitStats:
    return UnitStats(
        transactions=transactions,
        reads=transactions,
        requests=requests,
        slots=slots,
        excess_slots=excess,
        conflicted_transactions=1 if excess else 0,
    )


class TestRunReport:
    def test_totals(self):
        r = make_report(a=stats(2, 8, 2), b=stats(3, 12, 5, excess=2))
        assert r.total_transactions() == 5
        assert r.total_requests() == 20
        assert r.total_slots() == 7

    def test_conflict_free(self):
        assert make_report(a=stats()).conflict_free()
        assert not make_report(a=stats(excess=1)).conflict_free()

    def test_stats_for_missing_unit(self):
        with pytest.raises(KeyError):
            make_report(a=stats()).stats_for("b")

    def test_global_stats_resolution(self):
        r = make_report(**{"global": stats(5)})
        assert r.global_stats().transactions == 5
        # Single unnamed unit also resolves.
        r2 = make_report(mem=stats(7))
        assert r2.global_stats().transactions == 7
        # Ambiguous case raises.
        r3 = make_report(a=stats(), b=stats())
        with pytest.raises(KeyError):
            r3.global_stats()

    def test_shared_stats_aggregates(self):
        r = make_report(
            **{"global": stats(1), "shared[0]": stats(2), "shared[1]": stats(3)}
        )
        assert r.shared_stats().transactions == 5

    def test_shared_stats_empty(self):
        assert make_report(mem=stats()).shared_stats().transactions == 0

    def test_summary_mentions_everything(self):
        r = make_report(mem=stats())
        text = r.summary()
        for token in ("100 time units", "64 threads", "2 warps", "mem",
                      "barriers: 2"):
            assert token in text


class TestOps:
    def test_read_kind(self):
        from repro.machine.memory import MemorySpace

        arr = MemorySpace("m").alloc(4)
        op = ReadOp(array=arr, addresses=np.array([0, 1]),
                    result_mask=np.array([True, True]))
        assert op.kind is AccessKind.READ
        assert op.num_requests == 2

    def test_write_kind(self):
        from repro.machine.memory import MemorySpace

        arr = MemorySpace("m").alloc(4)
        op = WriteOp(array=arr, addresses=np.array([0]),
                     values=np.array([1.0]))
        assert op.kind is AccessKind.WRITE

    def test_compute_validation(self):
        assert ComputeOp(0).cycles == 0
        with pytest.raises(ValueError):
            ComputeOp(-1)

    def test_barrier_default_scope(self):
        assert BarrierOp().scope is BarrierScope.DEVICE
