"""Slot policies: the DMM/UMM cost difference in isolation."""

import numpy as np
import pytest

from repro.machine.policy import DMMBankPolicy, IdealPolicy, UMMGroupPolicy


@pytest.fixture
def dmm():
    return DMMBankPolicy()


@pytest.fixture
def umm():
    return UMMGroupPolicy()


class TestDMMBankPolicy:
    def test_contiguous_one_slot(self, dmm):
        assert dmm.slot_count(np.arange(32), 32) == 1

    def test_stride_width_full_conflict(self, dmm):
        assert dmm.slot_count(np.arange(32) * 32, 32) == 32

    def test_stride_two_half_conflict(self, dmm):
        # Stride 2 with w=32: addresses hit 16 even banks, 2 each.
        assert dmm.slot_count(np.arange(32) * 2, 32) == 2

    def test_broadcast_one_slot(self, dmm):
        assert dmm.slot_count(np.full(32, 7), 32) == 1

    def test_empty_zero_slots(self, dmm):
        assert dmm.slot_count(np.array([], dtype=np.int64), 32) == 0


class TestUMMGroupPolicy:
    def test_contiguous_aligned_one_slot(self, umm):
        assert umm.slot_count(np.arange(32), 32) == 1

    def test_contiguous_misaligned_two_slots(self, umm):
        # A warp touching addresses 16..47 spans two address groups.
        assert umm.slot_count(np.arange(32) + 16, 32) == 2

    def test_stride_width_distinct_groups(self, umm):
        assert umm.slot_count(np.arange(32) * 32, 32) == 32

    def test_broadcast_one_slot(self, umm):
        assert umm.slot_count(np.full(32, 7), 32) == 1

    def test_empty_zero_slots(self, umm):
        assert umm.slot_count(np.array([], dtype=np.int64), 32) == 0


class TestPolicyContrast:
    """Access patterns where the two machines differ — the heart of the
    DMM/UMM distinction (paper Section II)."""

    def test_stride_two_cheaper_on_umm(self, dmm, umm):
        # Stride 2 over 64 cells: DMM sees 2-way conflicts; the UMM sees
        # the same 2 address groups -> equal here.
        addrs = np.arange(32) * 2
        assert dmm.slot_count(addrs, 32) == 2
        assert umm.slot_count(addrs, 32) == 2

    def test_column_access_bad_on_dmm_only(self, dmm, umm):
        # One address per group but all in one bank (stride w):
        # catastrophic on the DMM AND on the UMM (w groups).
        addrs = np.arange(4) * 4
        assert dmm.slot_count(addrs, 4) == 4
        assert umm.slot_count(addrs, 4) == 4

    def test_permuted_within_group_good_on_both(self, dmm, umm):
        # Any permutation of one address group: one slot on both machines.
        addrs = np.array([3, 0, 2, 1]) + 8
        assert dmm.slot_count(addrs, 4) == 1
        assert umm.slot_count(addrs, 4) == 1

    def test_bank_distinct_but_scattered_groups(self, dmm, umm):
        # Distinct banks but w distinct groups: free on the DMM, w-cost
        # on the UMM — the pattern where the DMM is strictly stronger.
        addrs = np.array([0, 5, 10, 15])  # banks 0,1,2,3; groups 0,1,2,3
        assert dmm.slot_count(addrs, 4) == 1
        assert umm.slot_count(addrs, 4) == 4


class TestIdealPolicy:
    def test_always_one(self):
        pol = IdealPolicy()
        assert pol.slot_count(np.arange(32) * 32, 32) == 1
        assert pol.slot_count(np.array([], dtype=np.int64), 32) == 0
