"""Fused range operations: validation, semantics, and batch/event parity.

Complements :mod:`test_batch_equivalence` (which runs whole paper kernels
under both engines) with targeted coverage of the range-op layer itself:
the ``RangeOp`` dataclasses, the :meth:`WarpContext.read_range` /
:meth:`WarpContext.write_range` constructors, the
:func:`contiguous_range_parts` splitter the fused kernels are built on,
and the batch engine's wave dispatch for uniform and non-uniform slot
patterns.
"""

from __future__ import annotations

import numpy as np
import pytest

from conftest import make_dmm, make_umm

from repro.core.kernels.contiguous import (
    contiguous_range_parts,
    contiguous_read,
    contiguous_write,
    strided_read,
)
from repro.errors import AddressError, KernelError
from repro.machine.engine import make_warp_contexts
from repro.machine.memory import MemorySpace
from repro.machine.ops import AccessKind, ReadRangeOp, WriteRangeOp
from repro.machine.warp import WarpContext


W = 4  # machine width used throughout


def one_warp() -> WarpContext:
    return make_warp_contexts(W, W)[0]


def run_both(make_machine, build):
    """Run a launch on fresh event and batch machines; assert parity.

    ``build(machine)`` allocates arrays and returns
    ``(program, num_threads, handles)``; returns the two reports plus the
    final contents of each handle (asserted equal between modes).
    """
    reports, contents = [], []
    for mode in ("event", "batch"):
        machine = make_machine()
        program, num_threads, handles = build(machine)
        reports.append(machine.launch(program, num_threads, mode=mode))
        contents.append([h.to_numpy() for h in handles])
    ev, ba = reports
    assert ba.cycles == ev.cycles
    for got, want in zip(contents[1], contents[0]):
        np.testing.assert_array_equal(got, want)
    return ev, ba


# ---------------------------------------------------------------------------
# Op construction and validation
# ---------------------------------------------------------------------------


class TestRangeOpValidation:
    def test_read_range_builds_matrix_op(self):
        warp = one_warp()
        space = MemorySpace("m")
        a = space.alloc(16)
        idx = np.arange(8, dtype=np.int64).reshape(2, 4)
        op = warp.read_range(a, idx, compute=3)
        assert isinstance(op, ReadRangeOp)
        assert op.kind is AccessKind.READ
        assert (op.rounds, op.lanes) == (2, 4)
        assert op.compute == 3
        np.testing.assert_array_equal(op.addresses, a.base + idx)

    def test_read_range_rejects_1d_indices(self):
        warp = one_warp()
        a = MemorySpace("m").alloc(16)
        with pytest.raises(KernelError, match="rounds"):
            warp.read_range(a, np.arange(4))

    def test_read_range_rejects_wrong_lane_count(self):
        warp = one_warp()
        a = MemorySpace("m").alloc(16)
        with pytest.raises(KernelError, match=r"\(rounds, 4\)"):
            warp.read_range(a, np.zeros((2, 3), dtype=np.int64))

    def test_read_range_rejects_zero_rounds(self):
        warp = one_warp()
        a = MemorySpace("m").alloc(16)
        with pytest.raises(KernelError, match="at least one round"):
            warp.read_range(a, np.empty((0, 4), dtype=np.int64))

    def test_read_range_bounds_checked(self):
        warp = one_warp()
        a = MemorySpace("m").alloc(4)
        with pytest.raises(AddressError):
            warp.read_range(a, np.arange(8, dtype=np.int64).reshape(2, 4))

    def test_write_range_rejects_value_shape_mismatch(self):
        warp = one_warp()
        a = MemorySpace("m").alloc(16)
        idx = np.arange(8, dtype=np.int64).reshape(2, 4)
        with pytest.raises(KernelError, match="values must match"):
            warp.write_range(a, idx, np.zeros((1, 4)))

    def test_rangeop_rejects_bad_shapes_and_compute(self):
        a = MemorySpace("m").alloc(16)
        with pytest.raises(ValueError, match="matrix"):
            ReadRangeOp(array=a, addresses=np.arange(4, dtype=np.int64))
        with pytest.raises(ValueError, match="at least one round"):
            ReadRangeOp(array=a, addresses=np.empty((2, 0), dtype=np.int64))
        with pytest.raises(ValueError, match="compute"):
            ReadRangeOp(
                array=a,
                addresses=np.zeros((1, 4), dtype=np.int64),
                compute=-1,
            )
        with pytest.raises(ValueError, match="values must match"):
            WriteRangeOp(
                array=a,
                addresses=np.zeros((2, 4), dtype=np.int64),
                values=np.zeros((2, 3)),
            )


# ---------------------------------------------------------------------------
# contiguous_range_parts splitter
# ---------------------------------------------------------------------------


class TestContiguousRangeParts:
    def test_exact_fit_has_no_tails(self):
        warp = make_warp_contexts(8, W)[0]  # p = 8, two warps
        idx_mat, tails = contiguous_range_parts(warp, 32)
        assert tails == []
        assert idx_mat.shape == (4, W)
        # Round j, lane i reads element j*p + tid.
        np.testing.assert_array_equal(
            idx_mat, np.arange(4)[:, None] * 8 + np.arange(4)
        )

    def test_ragged_n_splits_tail(self):
        warps = make_warp_contexts(8, W)
        # Warp 0 (tids 0..3): round 3 reads 24..27 < 30, so all four
        # rounds are full and nothing is left for the tail.
        idx_mat, tails = contiguous_range_parts(warps[0], 30)
        assert idx_mat.shape[0] == 4
        assert tails == []
        # Warp 1 (tids 4..7): round 3 would read 28..31, of which only
        # 28 and 29 exist — a masked tail round.
        idx_mat, tails = contiguous_range_parts(warps[1], 30)
        assert idx_mat.shape[0] == 3
        assert len(tails) == 1
        idx, mask = tails[0]
        np.testing.assert_array_equal(mask, [True, True, False, False])
        np.testing.assert_array_equal(idx[mask], [28, 29])

    def test_small_n_is_all_tails(self):
        warp = make_warp_contexts(8, W)[1]  # second warp, tids 4..7
        idx_mat, tails = contiguous_range_parts(warp, 6)
        assert idx_mat is None
        assert len(tails) == 1
        idx, mask = tails[0]
        np.testing.assert_array_equal(mask, [True, True, False, False])
        np.testing.assert_array_equal(idx[mask], [4, 5])


# ---------------------------------------------------------------------------
# Event-engine semantics of fused ranges
# ---------------------------------------------------------------------------


def _per_warp_matrix(warp: WarpContext, rounds: int, n: int) -> np.ndarray:
    p = warp.num_threads
    return (np.arange(rounds, dtype=np.int64)[:, None] * p + warp.tids) % n


class TestEventSemantics:
    """A fused range must match the per-round loop it replaces exactly."""

    @pytest.mark.parametrize("compute", [0, 2])
    @pytest.mark.parametrize("maker", [make_dmm, make_umm])
    def test_read_range_matches_unfused_loop(self, maker, compute, rng):
        n, rounds, threads = 32, 5, 8
        vals = rng.normal(size=n)
        seen: dict[str, list] = {"fused": [], "loop": []}

        def fused(a):
            def program(warp):
                mat = yield warp.read_range(
                    a, _per_warp_matrix(warp, rounds, n), compute=compute
                )
                seen["fused"].append(mat)

            return program

        def unfused(a):
            def program(warp):
                rows = []
                for idx in _per_warp_matrix(warp, rounds, n):
                    rows.append((yield warp.read(a, idx)))
                    if compute:
                        yield warp.compute(compute)
                seen["loop"].append(np.stack(rows))

            return program

        cycles = {}
        for key, build in (("fused", fused), ("loop", unfused)):
            machine = maker()
            a = machine.array_from(vals)
            cycles[key] = machine.launch(build(a), threads, mode="event").cycles
        assert cycles["fused"] == cycles["loop"]
        for got, want in zip(seen["fused"], seen["loop"]):
            np.testing.assert_array_equal(got, want)

    @pytest.mark.parametrize("maker", [make_dmm, make_umm])
    def test_write_range_matches_unfused_loop(self, maker):
        n, rounds, threads = 32, 4, 8

        def fused(a):
            def program(warp):
                idx = _per_warp_matrix(warp, rounds, n)
                yield warp.write_range(a, idx, idx.astype(np.float64))

            return program

        def unfused(a):
            def program(warp):
                for idx in _per_warp_matrix(warp, rounds, n):
                    yield warp.write(a, idx, idx.astype(np.float64))

            return program

        results, cycles = [], []
        for build in (fused, unfused):
            machine = maker()
            a = machine.alloc(n)
            cycles.append(machine.launch(build(a), threads, mode="event").cycles)
            results.append(a.to_numpy())
        assert cycles[0] == cycles[1]
        np.testing.assert_array_equal(results[0], results[1])
        np.testing.assert_array_equal(results[0], np.arange(n, dtype=np.float64))

    def test_write_range_first_lane_wins_per_round(self):
        machine = make_dmm()

        def program(warp):
            idx = np.zeros((2, W), dtype=np.int64)  # every lane hits cell 0
            vals = np.array(
                [[1.0, 2.0, 3.0, 4.0], [5.0, 6.0, 7.0, 8.0]]
            )
            yield warp.write_range(a, idx, vals)

        a = machine.alloc(W)
        machine.launch(program, W, mode="event")
        # Round 0 stores lane 0's 1.0; round 1 overwrites with lane 0's 5.0.
        assert a.to_numpy()[0] == 5.0


# ---------------------------------------------------------------------------
# Batch-engine parity on range-heavy launches
# ---------------------------------------------------------------------------


class TestBatchParity:
    @pytest.mark.parametrize("maker", [make_dmm, make_umm])
    @pytest.mark.parametrize("n", [32, 30, 37, 6])
    def test_contiguous_read_ragged(self, maker, n):
        def build(machine):
            a = machine.array_from(np.arange(max(n, 1), dtype=np.float64))
            return contiguous_read(a, n), 8, [a]

        ev, ba = run_both(maker, build)
        assert ev.engine == "event"
        assert ba.engine == "batch"

    @pytest.mark.parametrize("n", [32, 30])
    def test_contiguous_write_ragged(self, n):
        def build(machine):
            a = machine.array_from(np.full(n, -1.0))
            return contiguous_write(a, n, 7.0), 8, [a]

        run_both(make_dmm, build)

    def test_strided_read_conflicted(self):
        # Stride W on a DMM: every round is a full W-way bank conflict.
        def build(machine):
            a = machine.array_from(np.arange(64, dtype=np.float64))
            return strided_read(a, 64, W), 8, [a]

        ev, ba = run_both(make_dmm, build)
        assert ba.engine == "batch"
        assert ev.unit_stats["mem"].conflicted_transactions > 0

    def test_non_uniform_slots_per_round(self):
        # Rounds with conflict degrees 1, 4, 2 exercise the per-wave
        # arbitration loop of the wave dispatcher (no uniform closed form).
        idx = np.array(
            [
                [0, 1, 2, 3],  # degree 1
                [0, 4, 8, 12],  # degree 4 (all bank 0)
                [0, 1, 4, 5],  # degree 2
            ],
            dtype=np.int64,
        )

        def build(machine):
            a = machine.array_from(np.arange(16, dtype=np.float64))

            def program(warp):
                yield warp.read_range(a, idx)

            return program, 16, [a]

        ev, ba = run_both(make_dmm, build)
        assert ba.engine == "batch"

    def test_mixed_ready_ranges_fall_to_scalar_replay(self):
        # Warps reach the range at different times (warp-dependent local
        # compute), so the wave dispatcher's equal-start precondition
        # fails and the scalar simulated dispatch must take over — still
        # exactly, still on the batch engine.
        def build(machine):
            a = machine.array_from(np.arange(32, dtype=np.float64))

            def program(warp):
                yield warp.compute(1 + 3 * warp.warp_id)
                yield warp.read_range(a, _per_warp_matrix(warp, 4, 32))

            return program, 16, [a]

        ev, ba = run_both(make_dmm, build)
        assert ba.engine == "batch"

    def test_read_range_values_identical_across_modes(self, rng):
        vals = rng.normal(size=64)
        got: dict[str, np.ndarray] = {}

        def build_for(mode):
            machine = make_umm()
            a = machine.array_from(vals)

            def program(warp):
                mat = yield warp.read_range(a, _per_warp_matrix(warp, 8, 64))
                got.setdefault(mode, []).append(mat)

            machine.launch(program, 8, mode=mode)

        build_for("event")
        build_for("batch")
        for ev_mat, ba_mat in zip(got["event"], got["batch"]):
            np.testing.assert_array_equal(ba_mat, ev_mat)

    @pytest.mark.parametrize("maker", [make_dmm, make_umm])
    def test_unit_stats_parity(self, maker):
        def build(machine):
            a = machine.array_from(np.arange(40, dtype=np.float64))
            return contiguous_read(a, 40), 12, [a]

        ev, ba = run_both(maker, build)
        s_ev, s_ba = ev.unit_stats["mem"], ba.unit_stats["mem"]
        assert s_ba.transactions == s_ev.transactions
        assert s_ba.requests == s_ev.requests
        assert s_ba.slots == s_ev.slots
        assert s_ba.conflicted_transactions == s_ev.conflicted_transactions
        assert s_ba.excess_slots == s_ev.excess_slots
        assert s_ba.port_busy_until == s_ev.port_busy_until
        assert s_ba.last_complete == s_ev.last_complete


# ---------------------------------------------------------------------------
# Store semantics and the undo log
# ---------------------------------------------------------------------------


class TestStoreAndUndo:
    def test_store_first_duplicate_wins(self):
        space = MemorySpace("m")
        a = space.alloc(4)
        addrs = a.addresses(np.array([2, 2, 1, 2]))
        space.store(addrs, np.array([10.0, 20.0, 30.0, 40.0]))
        np.testing.assert_array_equal(a.to_numpy(), [0.0, 30.0, 10.0, 0.0])

    def test_rollback_reverts_stores_newest_first(self):
        space = MemorySpace("m")
        a = space.alloc(4)
        a.set([1.0, 2.0, 3.0, 4.0])
        space.begin_undo()
        space.store(a.addresses(np.array([0, 1])), np.array([9.0, 9.0]))
        space.store(a.addresses(np.array([1, 2])), np.array([8.0, 8.0]))
        space.rollback()
        np.testing.assert_array_equal(a.to_numpy(), [1.0, 2.0, 3.0, 4.0])

    def test_rollback_handles_duplicates_within_one_store(self):
        space = MemorySpace("m")
        a = space.alloc(2)
        a.set([5.0, 6.0])
        space.begin_undo()
        space.store(a.addresses(np.array([0, 0])), np.array([1.0, 2.0]))
        space.rollback()
        np.testing.assert_array_equal(a.to_numpy(), [5.0, 6.0])

    def test_end_undo_keeps_writes(self):
        space = MemorySpace("m")
        a = space.alloc(2)
        space.begin_undo()
        space.store(a.addresses(np.array([0])), np.array([7.0]))
        space.end_undo()
        # No log left; a rollback now is a no-op rather than an error.
        space.rollback()
        assert a.to_numpy()[0] == 7.0

    def test_stores_without_undo_are_not_logged(self):
        space = MemorySpace("m")
        a = space.alloc(1)
        space.store(a.addresses(np.array([0])), np.array([3.0]))
        assert space._undo is None
        assert a.to_numpy()[0] == 3.0
