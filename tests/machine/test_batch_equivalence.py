"""Batch-mode equivalence: the fast path must be invisible.

For every supported kernel x machine x parameter combination, running
with ``mode="batch"`` must produce *identical* cycle counts and
byte-identical results to ``mode="event"`` — either by taking the
vectorized fast path or by detecting divergence and falling back.  These
tests also pin which configurations actually reach the fast path, the
configurations that route to the event engine up front (tracing,
round-robin dispatch), and the correctness of the fallback's memory
restore.
"""

import numpy as np
import pytest

from repro import DMM, HMM, UMM, FIG4_PARAMS, GTX580, HMMParams, MachineParams
from repro.errors import ConfigurationError
from repro.machine import BatchCostEngine, BatchFallback, TraceRecorder

from conftest import make_dmm, make_umm

FLAT_TINY = MachineParams(width=4, latency=2)
HMM_TINY = HMMParams(num_dmms=2, width=4, global_latency=8, shared_latency=2)

RNG = np.random.default_rng(20130520)
X64 = RNG.standard_normal(64)
Y16 = RNG.standard_normal(16)
X2048 = RNG.standard_normal(2048)
Y64 = RNG.standard_normal(64)
MAT = RNG.standard_normal((32, 32))


def run_both(make_machine, call):
    """Run ``call`` on an event- and a batch-mode machine; compare."""
    val_event, rep_event = call(make_machine("event"))
    val_batch, rep_batch = call(make_machine("batch"))
    assert rep_batch.cycles == rep_event.cycles
    assert rep_event.engine == "event"
    np.testing.assert_array_equal(np.asarray(val_event), np.asarray(val_batch))
    return rep_batch


FLAT_KERNELS = {
    "sum": lambda m: m.sum(X64, num_threads=64),
    "convolution": lambda m: m.convolve(Y16, X64, num_threads=64),
    "prefix": lambda m: m.prefix_sums(X64, num_threads=64),
}

HMM_KERNELS = {
    "sum": lambda m, data, nt: m.sum(data, num_threads=nt),
    "convolution": lambda m, data, nt: m.convolve(
        data[: data.size // 32], data, num_threads=nt
    ),
    "prefix": lambda m, data, nt: m.prefix_sums(data, num_threads=nt),
    "transpose-padded": lambda m, data, nt: m.transpose(MAT, padded=True),
    "transpose-conflicted": lambda m, data, nt: m.transpose(MAT, padded=False),
}


class TestKernelEquivalence:
    @pytest.mark.parametrize("machine_cls", [DMM, UMM], ids=["dmm", "umm"])
    @pytest.mark.parametrize(
        "params", [FLAT_TINY, FIG4_PARAMS], ids=["w4l2", "fig4"]
    )
    @pytest.mark.parametrize("kernel", sorted(FLAT_KERNELS))
    def test_flat_machines_take_fast_path(self, machine_cls, params, kernel):
        rep = run_both(
            lambda mode: machine_cls(params, mode=mode), FLAT_KERNELS[kernel]
        )
        assert rep.engine == "batch"

    @pytest.mark.parametrize(
        ("params", "data", "num_threads"),
        [(HMM_TINY, X64, 32), (GTX580, X2048, 1024)],
        ids=["tiny", "gtx580"],
    )
    @pytest.mark.parametrize("kernel", sorted(HMM_KERNELS))
    def test_hmm_takes_fast_path(self, params, data, num_threads, kernel):
        rep = run_both(
            lambda mode: HMM(params, mode=mode),
            lambda m: HMM_KERNELS[kernel](m, data, num_threads),
        )
        assert rep.engine == "batch"

    def test_partial_final_warp(self):
        rep = run_both(
            lambda mode: DMM(FLAT_TINY, mode=mode),
            lambda m: m.sum(X64[:50], num_threads=14),
        )
        assert rep.engine == "batch"

    def test_unaligned_hmm_launch(self):
        rep = run_both(
            lambda mode: HMM(HMM_TINY, mode=mode),
            lambda m: m.prefix_sums(X64[:40], num_threads=24),
        )
        assert rep.engine == "batch"


class TestModeSelection:
    def test_invalid_mode_rejected_at_construction(self):
        with pytest.raises(ConfigurationError, match="mode"):
            DMM(FLAT_TINY, mode="turbo")
        with pytest.raises(ConfigurationError, match="mode"):
            HMM(HMM_TINY, mode="turbo")

    def test_invalid_mode_rejected_at_launch(self):
        eng = make_dmm()
        a = eng.alloc(4)

        def prog(warp):
            yield warp.write(a, warp.tids, 1.0)

        with pytest.raises(ConfigurationError, match="mode"):
            eng.launch(prog, 4, mode="turbo")

    def test_launch_mode_overrides_engine_default(self):
        def call(eng):
            a = eng.array_from(X64[:4], "a")

            def prog(warp):
                vals = yield warp.read(a, warp.tids)
                yield warp.write(a, warp.tids, vals + 1.0)

            return eng.launch(prog, 4, mode="batch")

        rep = call(make_dmm(mode="event"))
        assert rep.engine == "batch"

    def test_tracing_routes_to_event_engine(self):
        eng = make_umm(mode="batch")
        a = eng.array_from(X64[:4], "a")

        def prog(warp):
            yield warp.read(a, warp.tids)

        trace = TraceRecorder()
        rep = eng.launch(prog, 4, trace=trace)
        assert rep.engine == "event"
        assert len(trace.transactions_for("mem")) == 1

    def test_round_robin_routes_to_event_engine(self):
        eng = make_dmm(dispatch="round-robin", mode="batch")
        a = eng.alloc(8)

        def prog(warp):
            yield warp.write(a, warp.tids, 1.0)

        rep = eng.launch(prog, 8)
        assert rep.engine == "event"


def _early_exit_program(a, b):
    """Warp 1 exits without the barrier warp 0 waits at.

    The event engine's retire path then releases warp 0 *back in time*
    (release time = warp 0's early arrival), making warp 0's next
    transaction arrive behind warp 1's already-dispatched ones — the
    non-monotone schedule the batch engine detects and refuses.
    """

    def prog(warp):
        if warp.warp_id == 0:
            yield warp.barrier()
            vals = yield warp.read(a, warp.lanes)
            yield warp.write(b, warp.lanes, vals + 100.0)
        else:
            vals = yield warp.read(a, warp.lanes)
            yield warp.write(b, warp.lanes + 4, vals + 1.0)
            yield warp.read(b, warp.lanes + 4)

    return prog


class TestFallback:
    def test_early_exit_falls_back_exactly(self):
        def call(eng):
            a = eng.array_from(np.arange(8.0), "a")
            b = eng.alloc(8, "b")
            rep = eng.launch(_early_exit_program(a, b), 8)
            return b.to_numpy(), rep

        vals_event, rep_event = call(make_dmm(mode="event"))
        vals_batch, rep_batch = call(make_dmm(mode="batch"))
        assert rep_batch.engine == "batch-fallback"
        assert rep_batch.cycles == rep_event.cycles
        np.testing.assert_array_equal(vals_batch, vals_event)

    def test_fallback_restores_prior_memory(self):
        # Writes applied by the abandoned batch attempt must not leak:
        # cells the program never touches keep their pre-launch values,
        # and touched cells hold exactly the event-engine results.
        eng = make_dmm(mode="batch")
        a = eng.array_from(np.arange(8.0), "a")
        b = eng.array_from(np.full(16, -5.0), "b")
        rep = eng.launch(_early_exit_program(a, b), 8)
        assert rep.engine == "batch-fallback"
        out = b.to_numpy()
        np.testing.assert_array_equal(out[8:], np.full(8, -5.0))
        assert out[:4].tolist() == [100.0, 101.0, 102.0, 103.0]
        assert out[4:8].tolist() == [1.0, 2.0, 3.0, 4.0]

    def test_fallback_stats_match_event_run(self):
        def call(eng):
            a = eng.array_from(np.arange(8.0), "a")
            b = eng.alloc(8, "b")
            return eng.launch(_early_exit_program(a, b), 8)

        rep_event = call(make_dmm(mode="event"))
        rep_batch = call(make_dmm(mode="batch"))
        assert rep_batch.total_transactions() == rep_event.total_transactions()
        assert rep_batch.total_requests() == rep_event.total_requests()

    def test_batch_engine_raises_typed_fallback(self):
        eng = make_dmm()
        a = eng.array_from(np.arange(8.0), "a")
        b = eng.alloc(8, "b")
        from repro.machine.engine import make_warp_contexts
        from repro.machine.scheduler import WarpState

        prog = _early_exit_program(a, b)
        contexts = make_warp_contexts(8, 4)
        warps = [WarpState(ctx=ctx, program=prog(ctx)) for ctx in contexts]
        with pytest.raises(BatchFallback):
            BatchCostEngine(eng._unit_for).run(warps)


class TestReportedStats:
    def test_fast_path_unit_stats_match_event(self):
        def call(mode):
            m = HMM(HMM_TINY, mode=mode)
            _, rep = m.sum(X64, num_threads=32)
            return rep

        rep_event, rep_batch = call("event"), call("batch")
        assert rep_batch.engine == "batch"
        for name, st in rep_event.unit_stats.items():
            bt = rep_batch.unit_stats[name]
            assert (bt.transactions, bt.reads, bt.writes) == (
                st.transactions,
                st.reads,
                st.writes,
            )
            assert (bt.requests, bt.slots) == (st.requests, st.slots)
            assert bt.conflicted_transactions == st.conflicted_transactions
            assert bt.excess_slots == st.excess_slots
            assert bt.port_busy_until == st.port_busy_until
            assert bt.last_complete == st.last_complete

    def test_scheduler_counters_match_event(self):
        def call(mode):
            m = UMM(FIG4_PARAMS, mode=mode)
            _, rep = m.prefix_sums(X64, num_threads=64)
            return rep

        rep_event, rep_batch = call("event"), call("batch")
        assert rep_batch.engine == "batch"
        assert rep_batch.compute_ops == rep_event.compute_ops
        assert rep_batch.compute_cycles == rep_event.compute_cycles
        assert rep_batch.barrier_releases == rep_event.barrier_releases
