"""Warp contexts: lane vectors, masking, operation construction."""

import numpy as np
import pytest

from repro.errors import KernelError
from repro.machine.engine import make_warp_contexts
from repro.machine.memory import MemorySpace
from repro.machine.ops import BarrierScope


@pytest.fixture
def arr():
    return MemorySpace("m").alloc(64, "a")


@pytest.fixture
def warp():
    return make_warp_contexts(8, 4)[0]


class TestWarpPartition:
    def test_full_warps(self):
        ctxs = make_warp_contexts(8, 4)
        assert len(ctxs) == 2
        assert ctxs[0].tids.tolist() == [0, 1, 2, 3]
        assert ctxs[1].tids.tolist() == [4, 5, 6, 7]

    def test_partial_last_warp(self):
        ctxs = make_warp_contexts(6, 4)
        assert len(ctxs) == 2
        assert ctxs[1].tids.tolist() == [4, 5]
        assert ctxs[1].num_lanes == 2

    def test_offsets_for_hmm_blocks(self):
        ctxs = make_warp_contexts(
            4, 4, dmm_id=2, first_warp_id=5, first_tid=12, total_threads=32
        )
        (ctx,) = ctxs
        assert ctx.warp_id == 5
        assert ctx.dmm_id == 2
        assert ctx.tids.tolist() == [12, 13, 14, 15]
        assert ctx.local_tids.tolist() == [0, 1, 2, 3]
        assert ctx.num_threads == 32
        assert ctx.threads_in_dmm == 4

    def test_lanes_property(self, warp):
        assert warp.lanes.tolist() == [0, 1, 2, 3]


class TestReadConstruction:
    def test_vector_indices(self, warp, arr):
        op = warp.read(arr, np.array([0, 1, 2, 3]))
        assert op.addresses.tolist() == [0, 1, 2, 3]
        assert op.result_mask.all()

    def test_scalar_broadcast(self, warp, arr):
        op = warp.read(arr, 5)
        assert op.addresses.tolist() == [5, 5, 5, 5]

    def test_mask_excludes_lanes(self, warp, arr):
        op = warp.read(arr, np.array([0, 1, 2, 3]), mask=np.array([True, False, True, False]))
        assert op.addresses.tolist() == [0, 2]
        assert op.result_mask.tolist() == [True, False, True, False]

    def test_masked_out_of_range_index_allowed(self, warp, arr):
        """Masked lanes' indices are never translated, so junk is fine."""
        op = warp.read(
            arr,
            np.array([0, 999_999, 2, -5]),
            mask=np.array([True, False, True, False]),
        )
        assert op.addresses.tolist() == [0, 2]

    def test_wrong_index_length(self, warp, arr):
        with pytest.raises(KernelError):
            warp.read(arr, np.array([0, 1]))

    def test_wrong_mask_length(self, warp, arr):
        with pytest.raises(KernelError):
            warp.read(arr, np.array([0, 1, 2, 3]), mask=np.array([True]))


class TestWriteConstruction:
    def test_values_per_lane(self, warp, arr):
        op = warp.write(arr, np.array([0, 1, 2, 3]), np.array([1.0, 2.0, 3.0, 4.0]))
        assert op.values.tolist() == [1.0, 2.0, 3.0, 4.0]

    def test_scalar_value_broadcast(self, warp, arr):
        op = warp.write(arr, np.array([0, 1, 2, 3]), 9.0)
        assert op.values.tolist() == [9.0] * 4

    def test_masked_write(self, warp, arr):
        op = warp.write(
            arr,
            np.array([0, 1, 2, 3]),
            np.array([1.0, 2.0, 3.0, 4.0]),
            mask=np.array([False, True, False, True]),
        )
        assert op.addresses.tolist() == [1, 3]
        assert op.values.tolist() == [2.0, 4.0]

    def test_wrong_value_length(self, warp, arr):
        with pytest.raises(KernelError):
            warp.write(arr, np.array([0, 1, 2, 3]), np.array([1.0]))


class TestOtherOps:
    def test_compute(self, warp):
        assert warp.compute().cycles == 1
        assert warp.compute(7).cycles == 7

    def test_compute_negative_rejected(self, warp):
        with pytest.raises(ValueError):
            warp.compute(-1)

    def test_barrier_scopes(self, warp):
        assert warp.barrier().scope is BarrierScope.DEVICE
        assert warp.sync_dmm().scope is BarrierScope.DMM
