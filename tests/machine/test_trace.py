"""Trace recording, the Figure 4 timeline, and race detection."""

import numpy as np
import pytest

from repro.machine.trace import TraceRecorder

from conftest import make_hmm, make_umm


def test_records_transactions():
    eng = make_umm(width=4, latency=5)
    a = eng.alloc(16, "a")
    tr = TraceRecorder()

    def prog(warp):
        yield warp.read(a, warp.tids)
        yield warp.write(a, warp.tids, 1.0)

    eng.launch(prog, 8, trace=tr)
    assert len(tr.records) == 4
    reads = [r for r in tr.records if r.kind.value == "read"]
    assert len(reads) == 2
    assert tr.total_slots("mem") == 4
    assert tr.transactions_for("mem") == tr.records


def test_figure4_timeline_renders_eight_units():
    eng = make_umm(width=4, latency=5)
    a = eng.alloc(16, "a")
    tr = TraceRecorder()
    pattern = {0: np.array([15, 2, 6, 0]), 1: np.array([8, 9, 10, 11])}

    def prog(warp):
        yield warp.read(a, pattern[warp.warp_id])

    report = eng.launch(prog, 8, trace=tr)
    assert report.cycles == 8
    assert tr.makespan() == 8
    chart = tr.render_pipeline_timeline("mem", latency=5)
    assert "total=8 time units" in chart
    assert "W(0)" in chart and "W(1)" in chart
    # W(0) occupies 3 issue slots, W(1) one.
    lines = {l.split()[0]: l for l in chart.splitlines() if l.startswith("W(")}
    assert lines["W(0)"].count("#") == 3
    assert lines["W(1)"].count("#") == 1


def test_timeline_empty_unit():
    tr = TraceRecorder()
    assert "no transactions" in tr.render_pipeline_timeline("mem", latency=5)


class TestRaceDetection:
    def test_clean_barrier_separated_program(self):
        eng = make_umm(width=4)
        a = eng.alloc(8)
        tr = TraceRecorder()

        def prog(warp):
            if warp.warp_id == 0:
                yield warp.write(a, warp.tids, 1.0)
            yield warp.barrier()
            if warp.warp_id == 1:
                yield warp.read(a, warp.tids - 4)

        eng.launch(prog, 8, trace=tr)
        assert tr.detect_races() == []

    def test_unsynchronized_write_read_flagged(self):
        eng = make_umm(width=4)
        a = eng.alloc(8)
        tr = TraceRecorder()

        def prog(warp):
            if warp.warp_id == 0:
                yield warp.write(a, warp.tids, 1.0)
            else:
                yield warp.read(a, warp.tids - 4)  # same cells, no barrier

        eng.launch(prog, 8, trace=tr)
        races = tr.detect_races()
        assert len(races) == 1
        assert "race" in races[0].describe()

    def test_read_read_not_a_race(self):
        eng = make_umm(width=4)
        a = eng.alloc(4)
        tr = TraceRecorder()

        def prog(warp):
            yield warp.read(a, warp.local_tids % 4)

        eng.launch(prog, 8, trace=tr)
        assert tr.detect_races() == []

    def test_disjoint_writes_not_a_race(self):
        eng = make_umm(width=4)
        a = eng.alloc(8)
        tr = TraceRecorder()

        def prog(warp):
            yield warp.write(a, warp.tids, 1.0)

        eng.launch(prog, 8, trace=tr)
        assert tr.detect_races() == []

    def test_dmm_barrier_separates_same_dmm_warps(self):
        eng = make_hmm(num_dmms=1, width=4, global_latency=5)
        s = eng.alloc_shared(0, 8)
        tr = TraceRecorder()

        def prog(warp):
            if warp.warp_in_dmm == 0:
                yield warp.write(s, warp.local_tids, 1.0)
            yield warp.sync_dmm()
            if warp.warp_in_dmm == 1:
                yield warp.read(s, warp.local_tids - 4)

        eng.launch(prog, 8, trace=tr)
        assert tr.detect_races() == []

    def test_cross_dmm_global_race_flagged(self):
        eng = make_hmm(num_dmms=2, width=4, global_latency=5)
        g = eng.alloc_global(4)
        tr = TraceRecorder()

        def prog(warp):
            if warp.dmm_id == 0:
                yield warp.write(g, warp.local_tids, 1.0)
            else:
                # DMM barrier does NOT synchronize across DMMs.
                yield warp.sync_dmm()
                yield warp.read(g, warp.local_tids)

        eng.launch(prog, 8, trace=tr)
        assert len(tr.detect_races()) == 1


def test_epochs_recorded_on_transactions():
    eng = make_umm(width=4)
    a = eng.alloc(4)
    tr = TraceRecorder()

    def prog(warp):
        yield warp.read(a, warp.tids)
        yield warp.barrier()
        yield warp.read(a, warp.tids)

    eng.launch(prog, 4, trace=tr)
    assert tr.records[0].device_epoch == 0
    assert tr.records[1].device_epoch == 1


class TestTraceStatistics:
    def test_port_utilization_bandwidth_bound(self):
        """A saturated contiguous sweep keeps the port nearly always busy."""
        from repro.machine.trace import port_utilization
        from repro.core.kernels.contiguous import contiguous_read

        eng = make_umm(width=4, latency=2)
        a = eng.alloc(256)
        tr = TraceRecorder()
        report = eng.launch(contiguous_read(a, 256), 64, trace=tr)
        util = port_utilization(tr.records, "mem", report.cycles)
        assert util > 0.9

    def test_port_utilization_latency_bound(self):
        """A single under-occupied warp leaves the port mostly idle."""
        from repro.machine.trace import port_utilization
        from repro.core.kernels.contiguous import contiguous_read

        eng = make_umm(width=4, latency=50)
        a = eng.alloc(64)
        tr = TraceRecorder()
        report = eng.launch(contiguous_read(a, 64), 4, trace=tr)
        util = port_utilization(tr.records, "mem", report.cycles)
        assert util < 0.1

    def test_slots_histogram(self):
        from repro.machine.trace import slots_histogram
        from repro.core.kernels.contiguous import strided_read

        eng = make_umm(width=4, latency=2)
        a = eng.alloc(64)
        tr = TraceRecorder()
        eng.launch(strided_read(a, 64, 4), 16, trace=tr)
        hist = slots_histogram(tr.records, "mem")
        # Stride w touches w groups per transaction: all cost 4 slots.
        assert set(hist) == {4}

    def test_empty_inputs(self):
        from repro.machine.trace import port_utilization, slots_histogram

        assert port_utilization([], "mem", 0) == 0.0
        assert slots_histogram([], "mem") == {}


class TestCaptureCap:
    """``max_transactions`` bounds recorder growth on huge launches."""

    def _spin(self, tr, rounds=4):
        eng = make_umm(width=4, latency=2)
        a = eng.alloc(16, "a")

        def prog(warp):
            for _ in range(rounds):
                yield warp.read(a, warp.tids)

        eng.launch(prog, 8, trace=tr)

    def test_rejects_nonpositive_cap(self):
        from repro.errors import ConfigurationError

        with pytest.raises(ConfigurationError):
            TraceRecorder(max_transactions=0)

    def test_unbounded_by_default(self):
        tr = TraceRecorder()
        self._spin(tr, rounds=8)
        assert len(tr.records) == 16

    def test_cap_allows_exactly_the_limit(self):
        tr = TraceRecorder(max_transactions=8)
        self._spin(tr, rounds=4)
        assert len(tr.records) == 8

    def test_overflow_raises_with_context(self):
        from repro.errors import TraceOverflowError

        tr = TraceRecorder(max_transactions=3)
        with pytest.raises(TraceOverflowError, match="3"):
            self._spin(tr, rounds=4)
