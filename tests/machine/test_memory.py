"""Memory spaces, allocation, and array handles."""

import numpy as np
import pytest

from repro.errors import AddressError, AllocationError
from repro.machine.memory import MemorySpace


class TestAllocation:
    def test_sequential_bases(self):
        space = MemorySpace("m")
        a = space.alloc(10, "a")
        b = space.alloc(5, "b")
        assert a.base == 0 and a.size == 10
        assert b.base == 10 and b.size == 5
        assert space.used == 15

    def test_alignment(self):
        space = MemorySpace("m")
        space.alloc(3, "a")
        b = space.alloc_aligned(4, 8, "b")
        assert b.base == 8

    def test_alignment_noop_when_aligned(self):
        space = MemorySpace("m")
        space.alloc(8, "a")
        b = space.alloc_aligned(4, 8, "b")
        assert b.base == 8

    def test_exhaustion(self):
        space = MemorySpace("m", capacity=16)
        space.alloc(10)
        with pytest.raises(AllocationError):
            space.alloc(10)

    def test_zero_size_rejected(self):
        space = MemorySpace("m")
        with pytest.raises(AllocationError):
            space.alloc(0)

    def test_bad_capacity(self):
        with pytest.raises(AllocationError):
            MemorySpace("m", capacity=0)


class TestArrayHandle:
    def test_address_translation(self):
        space = MemorySpace("m")
        space.alloc(7)
        arr = space.alloc(10, "x")
        addrs = arr.addresses(np.array([0, 3, 9]))
        assert addrs.tolist() == [7, 10, 16]

    def test_bounds_checked(self):
        space = MemorySpace("m")
        arr = space.alloc(10)
        with pytest.raises(AddressError):
            arr.addresses(np.array([10]))
        with pytest.raises(AddressError):
            arr.addresses(np.array([-1]))

    def test_set_and_to_numpy_roundtrip(self):
        space = MemorySpace("m")
        arr = space.alloc(5, "x")
        arr.set([1.0, 2.0, 3.0, 4.0, 5.0])
        assert arr.to_numpy().tolist() == [1.0, 2.0, 3.0, 4.0, 5.0]

    def test_fill(self):
        space = MemorySpace("m")
        arr = space.alloc(4)
        arr.fill(7.5)
        assert (arr.to_numpy() == 7.5).all()

    def test_set_scalar_broadcasts(self):
        space = MemorySpace("m")
        arr = space.alloc(3)
        arr.set(2.0)
        assert (arr.to_numpy() == 2.0).all()

    def test_set_wrong_size(self):
        space = MemorySpace("m")
        arr = space.alloc(3)
        with pytest.raises(AddressError):
            arr.set([1.0, 2.0])

    def test_len(self):
        space = MemorySpace("m")
        assert len(space.alloc(12)) == 12

    def test_arrays_are_disjoint(self):
        space = MemorySpace("m")
        a = space.alloc(4, "a")
        b = space.alloc(4, "b")
        a.fill(1.0)
        b.fill(2.0)
        assert (a.to_numpy() == 1.0).all()
        assert (b.to_numpy() == 2.0).all()


class TestRawAccess:
    def test_load_store(self):
        space = MemorySpace("m")
        space.alloc(8)
        space.store(np.array([1, 3]), np.array([10.0, 30.0]))
        assert space.load(np.array([1, 3])).tolist() == [10.0, 30.0]

    def test_duplicate_store_first_wins(self):
        """Arbitrary-CRCW: the first (lowest-lane) value is kept."""
        space = MemorySpace("m")
        space.alloc(4)
        space.store(np.array([2, 2, 2]), np.array([5.0, 6.0, 7.0]))
        assert space.load(np.array([2]))[0] == 5.0

    def test_empty_store_noop(self):
        space = MemorySpace("m")
        space.alloc(4)
        space.store(np.array([], dtype=np.int64), np.array([]))
        assert (space.load(np.arange(4)) == 0).all()

    def test_growth_preserves_data(self):
        space = MemorySpace("m")
        a = space.alloc(4)
        a.fill(3.0)
        space.alloc(10_000)  # force backing-store growth
        assert (a.to_numpy() == 3.0).all()
