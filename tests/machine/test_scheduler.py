"""Scheduler semantics: barriers, dispatch, deadlock detection."""

import numpy as np
import pytest

from repro.machine.ops import BarrierScope

from conftest import make_hmm, make_umm


class TestBarriers:
    def test_barrier_aligns_warps(self):
        """After a device barrier, all warps resume at the latest arrival."""
        eng = make_umm(width=4, latency=10)
        a = eng.alloc(8)
        resumed = {}

        def prog(warp):
            if warp.warp_id == 0:
                yield warp.read(a, warp.tids)  # busy until t=10
            yield warp.barrier()
            yield warp.compute(1)

        report = eng.launch(prog, 8)
        # Warp 1 reaches the barrier at t=0 but waits for warp 0 (t=10);
        # both then compute one unit.
        assert report.cycles == 11
        assert report.barrier_releases == 1

    def test_barrier_costs_nothing_when_synchronized(self):
        eng = make_umm()

        def prog(warp):
            yield warp.barrier()
            yield warp.barrier()

        assert eng.launch(prog, 8).cycles == 0

    def test_write_then_barrier_then_read(self):
        """The bulk-synchronous handoff pattern every kernel uses."""
        eng = make_umm(width=4)
        a = eng.alloc(8)
        got = {}

        def prog(warp):
            if warp.warp_id == 0:
                yield warp.write(a, warp.tids, 42.0)
            yield warp.barrier()
            if warp.warp_id == 1:
                vals = yield warp.read(a, warp.tids - 4)
                got["v"] = vals

        eng.launch(prog, 8)
        assert got["v"].tolist() == [42.0] * 4

    def test_finished_warps_release_barrier(self):
        """A warp that returns early does not deadlock the others."""
        eng = make_umm()

        def prog(warp):
            if warp.warp_id == 0:
                return
            yield warp.barrier()

        report = eng.launch(prog, 8)
        assert report.barrier_releases == 1

    def test_mismatched_barrier_counts_degrade_gracefully(self):
        """A warp executing extra barriers is released once every other
        live warp has finished (finished warps retire from the group) —
        the run completes instead of hanging, mirroring how the model
        treats synchronization as free alignment, not blocking I/O."""
        eng = make_umm(width=4, latency=2)
        a = eng.alloc(8)

        def prog(warp):
            yield warp.barrier()
            if warp.warp_id == 0:
                yield warp.barrier()  # extra barrier only on warp 0
                yield warp.write(a, warp.tids, 9.0)

        report = eng.launch(prog, 8)
        assert report.barrier_releases == 2
        assert a.to_numpy()[:4].tolist() == [9.0] * 4

    def test_dmm_scope_barriers_are_independent(self):
        """DMM barriers only synchronize warps of the same DMM."""
        eng = make_hmm(num_dmms=2, width=4, global_latency=20)
        g = eng.alloc_global(16)

        def prog(warp):
            if warp.dmm_id == 0:
                yield warp.read(g, warp.tids)  # slow path on DMM 0 only
            yield warp.sync_dmm()
            yield warp.compute(1)

        # 8 threads per DMM; DMM 1 never waits for DMM 0's global reads.
        report = eng.launch(prog, 16)
        assert report.barrier_releases == 2


class TestDispatchOrder:
    def test_warp_symmetric_program_order_independent(self):
        """For warp-symmetric programs (all the paper's algorithms),
        reversing per-warp work assignment does not change the cost."""
        def measure(assignment):
            eng = make_umm(width=4, latency=7)
            a = eng.alloc(64)

            def prog(warp):
                base = assignment[warp.warp_id] * 4
                yield warp.read(a, base + warp.local_tids % 4)
                yield warp.read(a, 32 + base + warp.local_tids % 4)

            return eng.launch(prog, 16).cycles

        forward = measure({0: 0, 1: 1, 2: 2, 3: 3})
        reversed_ = measure({0: 3, 1: 2, 2: 1, 3: 0})
        assert forward == reversed_

    def test_makespan_counts_last_completion(self):
        eng = make_umm(width=4, latency=5)
        a = eng.alloc(4)

        def prog(warp):
            yield warp.compute(2)
            yield warp.read(a, warp.tids)

        assert eng.launch(prog, 4).cycles == 7


class TestFifoTieBreak:
    """Equal-ready-time events dispatch in deterministic FIFO order.

    The event heap keys on ``(ready, warp_id)``, so warps that become
    runnable at the same time unit must dispatch in ascending warp-id
    order — every tie in the schedule is broken the same way on every
    run.  Warp program bodies execute at dispatch, which makes the
    order directly observable from inside the program.
    """

    def test_equal_ready_cohort_dispatches_in_warp_id_order(self):
        eng = make_umm(width=4, latency=5)
        order = []

        def prog(warp):
            order.append(warp.warp_id)
            yield warp.compute(1)

        eng.launch(prog, 32)  # 8 warps, all ready at t=0
        assert order == list(range(8))

    def test_barrier_release_cohort_dispatches_in_warp_id_order(self):
        """A release re-times every waiter to the same instant; the
        post-barrier cohort must still resume in ascending warp id."""
        eng = make_umm(width=4, latency=10)
        a = eng.alloc(4)
        order = []

        def prog(warp):
            if warp.warp_id == 0:
                yield warp.read(a, warp.lanes)  # arrives last, at t=10
            yield warp.barrier()
            order.append(warp.warp_id)
            yield warp.compute(1)

        report = eng.launch(prog, 32)
        assert report.barrier_releases == 1
        assert order == list(range(8))

    def test_equal_time_conflicting_writes_resolve_by_warp_id(self):
        """Memory effects apply in dispatch order, so when every warp
        writes the same cells at the same ready time the highest warp
        id lands last — deterministically, not arbitrarily."""
        eng = make_umm(width=4, latency=5)
        a = eng.alloc(4)

        def prog(warp):
            yield warp.write(a, warp.lanes, float(warp.warp_id))

        eng.launch(prog, 16)  # 4 warps, all writing a[0..3] at t=0
        assert a.to_numpy().tolist() == [3.0] * 4


class TestDispatchPolicies:
    """FIFO vs the paper's round-robin dispatch."""

    def _sum_cycles(self, dispatch, n, p):
        import numpy as np
        from repro.machine.engine import MachineEngine
        from repro.machine.policy import UMMGroupPolicy
        from repro.params import MachineParams
        from repro.core.kernels.reduction import sum_kernel

        eng = MachineEngine(
            MachineParams(width=4, latency=7), UMMGroupPolicy(),
            dispatch=dispatch,
        )
        vals = np.arange(float(n))
        a = eng.array_from(vals, "a")
        report = eng.launch(sum_kernel(a, n), p)
        assert a.to_numpy()[0] == vals.sum()
        return report.cycles

    def test_identical_on_single_transaction_phases(self):
        """When every warp issues exactly one transaction per phase, the
        port serves the whole cohort back to back and the finish time is
        order-independent: the policies agree exactly."""
        from repro.machine.engine import MachineEngine
        from repro.machine.policy import UMMGroupPolicy
        from repro.params import MachineParams

        def measure(dispatch):
            eng = MachineEngine(
                MachineParams(width=4, latency=9), UMMGroupPolicy(),
                dispatch=dispatch,
            )
            a = eng.alloc(64)

            def prog(warp):
                for _ in range(4):
                    yield warp.read(a, warp.tids % 64)
                    yield warp.barrier()

            return eng.launch(prog, 64).cycles

        assert measure("fifo") == measure("round-robin")

    def test_multi_op_phases_differ_by_constants_only(self):
        """Phases with several dependent transactions per warp can
        schedule slightly differently under rotation, but only by O(1)
        time units per barrier phase — never asymptotically."""
        import math

        for n in (200, 256):
            f = self._sum_cycles("fifo", n, 32)
            r = self._sum_cycles("round-robin", n, 32)
            phases = math.ceil(math.log2(n))
            assert abs(f - r) <= 2 * phases, (n, f, r)

    def test_invalid_policy_rejected(self):
        from repro.errors import KernelError
        from repro.machine.scheduler import Scheduler

        with pytest.raises(KernelError):
            Scheduler(lambda ws, op: None, dispatch="lottery")

    def test_hmm_engine_accepts_policy(self):
        import numpy as np
        from repro.core.kernels.hmm_sum import hmm_sum
        from repro.machine.hmm import HMMEngine
        from repro.params import HMMParams

        vals = np.arange(64.0)
        eng = HMMEngine(
            HMMParams(num_dmms=2, width=4, global_latency=5),
            dispatch="round-robin",
        )
        total, _ = hmm_sum(eng, vals, 16)
        assert total == vals.sum()
