"""The pipelined memory port: issue/occupancy/completion arithmetic."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.machine.ops import AccessKind
from repro.machine.pipeline import PipelinedMemoryUnit
from repro.machine.policy import DMMBankPolicy, UMMGroupPolicy


def make_unit(width=4, latency=5, policy=None, **kw):
    return PipelinedMemoryUnit(
        "test", width, latency, policy or UMMGroupPolicy(), **kw
    )


class TestSingleTransaction:
    def test_single_slot_takes_latency(self):
        """One coalesced transaction completes after l time units."""
        unit = make_unit(latency=5)
        issue = unit.issue(0, np.arange(4), AccessKind.READ)
        assert issue.start == 0
        assert issue.slots == 1
        assert issue.complete == 4  # elapsed = complete + 1 = l
        assert issue.next_ready == 5

    def test_multi_slot_transaction(self):
        """x distinct cells in one bank take l + x - 1 time units."""
        unit = make_unit(latency=5, policy=DMMBankPolicy())
        issue = unit.issue(0, np.arange(3) * 4, AccessKind.READ)  # 3-way conflict
        assert issue.slots == 3
        assert issue.complete + 1 == 5 + 3 - 1

    def test_latency_one(self):
        unit = make_unit(latency=1)
        issue = unit.issue(0, np.arange(4), AccessKind.READ)
        assert issue.complete == 0
        assert issue.next_ready == 1

    def test_empty_transaction_not_dispatched(self):
        unit = make_unit()
        issue = unit.issue(7, np.array([], dtype=np.int64), AccessKind.READ)
        assert issue.slots == 0
        assert issue.next_ready == 7
        assert unit.port_free == 0  # port untouched


class TestPipelining:
    def test_figure4_example(self):
        """Paper Figure 4: W(0) spans 3 groups, W(1) spans 1, l = 5 ->
        total 3 + 1 + 5 - 1 = 8 time units."""
        unit = make_unit(width=4, latency=5)
        first = unit.issue(0, np.array([15, 2, 6, 0]), AccessKind.READ)
        second = unit.issue(0, np.array([8, 9, 10, 11]), AccessKind.READ)
        assert first.slots == 3
        assert second.slots == 1
        assert second.start == 3  # queued behind W(0)'s three slots
        total = max(first.complete, second.complete) + 1
        assert total == 8

    def test_x_requests_same_bank(self):
        """x single-cell transactions to one bank: l + x - 1 total."""
        unit = make_unit(width=4, latency=5, policy=DMMBankPolicy())
        completes = []
        for i in range(6):
            issue = unit.issue(0, np.array([4 * i]), AccessKind.READ)
            completes.append(issue.complete)
        assert max(completes) + 1 == 5 + 6 - 1

    def test_port_serializes_issues(self):
        unit = make_unit(latency=2)
        a = unit.issue(0, np.arange(4), AccessKind.READ)
        b = unit.issue(0, np.arange(4), AccessKind.READ)
        assert a.start == 0 and b.start == 1

    def test_ready_after_port_free(self):
        """A transaction whose warp is ready late starts late."""
        unit = make_unit(latency=2)
        unit.issue(0, np.arange(4), AccessKind.READ)
        late = unit.issue(10, np.arange(4), AccessKind.READ)
        assert late.start == 10

    def test_unpipelined_ablation(self):
        """pipelined=False holds the port until completion."""
        unit = make_unit(latency=5, pipelined=False)
        a = unit.issue(0, np.arange(4), AccessKind.READ)
        b = unit.issue(0, np.arange(4), AccessKind.READ)
        assert b.start == a.complete + 1  # no overlap at all


class TestStats:
    def test_counters(self):
        unit = make_unit(width=4, latency=5)
        unit.issue(0, np.array([15, 2, 6, 0]), AccessKind.READ)
        unit.issue(0, np.arange(4), AccessKind.WRITE)
        s = unit.stats
        assert s.transactions == 2
        assert s.reads == 1 and s.writes == 1
        assert s.requests == 8
        assert s.slots == 4
        assert s.conflicted_transactions == 1
        assert s.excess_slots == 2

    def test_reset(self):
        unit = make_unit()
        unit.issue(0, np.arange(4), AccessKind.READ)
        unit.reset()
        assert unit.stats.transactions == 0
        assert unit.port_free == 0

    def test_merge(self):
        unit = make_unit()
        unit.issue(0, np.arange(4), AccessKind.READ)
        merged = unit.stats.merge(unit.stats)
        assert merged.transactions == 2
        assert merged.requests == 8


class TestValidation:
    def test_bad_width(self):
        with pytest.raises(ConfigurationError):
            make_unit(width=0)

    def test_bad_latency(self):
        with pytest.raises(ConfigurationError):
            make_unit(latency=0)
