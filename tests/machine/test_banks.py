"""Bank and address-group arithmetic (paper Section II, Figure 3)."""

import numpy as np
import pytest

from repro.machine.banks import (
    bank_group_table,
    bank_histogram,
    bank_of,
    conflict_degree,
    dedupe_addresses,
    group_count,
    group_of,
)


class TestBankMapping:
    def test_bank_of_scalar(self):
        assert bank_of(0, 4) == 0
        assert bank_of(5, 4) == 1
        assert bank_of(15, 4) == 3

    def test_bank_of_vector(self):
        addrs = np.array([0, 1, 4, 5, 9])
        assert bank_of(addrs, 4).tolist() == [0, 1, 0, 1, 1]

    def test_group_of_scalar(self):
        assert group_of(0, 4) == 0
        assert group_of(3, 4) == 0
        assert group_of(4, 4) == 1
        assert group_of(15, 4) == 3

    def test_group_of_vector(self):
        addrs = np.array([0, 3, 4, 8, 15])
        assert group_of(addrs, 4).tolist() == [0, 0, 1, 2, 3]

    def test_interleaved_mapping_consistency(self):
        """Address a sits at row a div w, column a mod w of Figure 3."""
        for a in range(64):
            assert bank_of(a, 8) == a % 8
            assert group_of(a, 8) == a // 8


class TestDedupe:
    def test_removes_duplicates(self):
        addrs = np.array([7, 7, 7, 3])
        assert sorted(dedupe_addresses(addrs).tolist()) == [3, 7]

    def test_keeps_distinct(self):
        addrs = np.array([0, 1, 2, 3])
        assert sorted(dedupe_addresses(addrs).tolist()) == [0, 1, 2, 3]

    def test_empty_and_single(self):
        assert dedupe_addresses(np.array([], dtype=np.int64)).size == 0
        assert dedupe_addresses(np.array([5])).tolist() == [5]


class TestConflictDegree:
    def test_contiguous_is_conflict_free(self):
        assert conflict_degree(np.arange(8), 8) == 1

    def test_same_bank_stride(self):
        # Stride w puts every address in bank 0.
        assert conflict_degree(np.arange(8) * 8, 8) == 8

    def test_partial_conflict(self):
        # Two addresses in bank 0, rest distinct.
        assert conflict_degree(np.array([0, 8, 1, 2]), 8) == 2

    def test_same_address_broadcast_free(self):
        """Requests to one identical address merge: no conflict."""
        assert conflict_degree(np.full(8, 42), 8) == 1

    def test_mixed_duplicates_and_conflicts(self):
        # {0, 0, 8}: two distinct addresses in bank 0.
        assert conflict_degree(np.array([0, 0, 8]), 8) == 2

    def test_empty(self):
        assert conflict_degree(np.array([], dtype=np.int64), 8) == 0

    def test_histogram_matches_degree(self):
        addrs = np.array([0, 8, 16, 1, 9, 2])
        hist = bank_histogram(addrs, 8)
        assert hist[0] == 3 and hist[1] == 2 and hist[2] == 1
        assert conflict_degree(addrs, 8) == 3


class TestGroupCount:
    def test_single_group(self):
        assert group_count(np.arange(4), 4) == 1

    def test_each_own_group(self):
        assert group_count(np.arange(4) * 4, 4) == 4

    def test_duplicates_merge(self):
        assert group_count(np.array([0, 0, 1, 2, 3]), 4) == 1

    def test_figure4_warp0(self):
        """Paper Figure 4: W(0)'s requests {15, 2, 6, 0} span 3 groups."""
        assert group_count(np.array([15, 2, 6, 0]), 4) == 3

    def test_figure4_warp1(self):
        """W(1)'s requests {8, 9, 10, 11} are one address group."""
        assert group_count(np.array([8, 9, 10, 11]), 4) == 1

    def test_empty(self):
        assert group_count(np.array([], dtype=np.int64), 4) == 0


class TestBankGroupTable:
    def test_figure3_layout(self):
        """Figure 3: 16 cells, w=4 — row g holds addresses 4g..4g+3."""
        table = bank_group_table(16, 4)
        assert table.shape == (4, 4)
        assert table.tolist() == [
            [0, 1, 2, 3],
            [4, 5, 6, 7],
            [8, 9, 10, 11],
            [12, 13, 14, 15],
        ]

    def test_ragged_tail(self):
        table = bank_group_table(6, 4)
        assert table.shape == (2, 4)
        assert table[1].tolist() == [4, 5, -1, -1]
