"""Replay-mode equivalence: trace-compiled re-costing must be invisible.

``mode="replay"`` promises *bit-identical* results to the event engine
for memory-oblivious kernels: same cycles, same per-unit statistics,
same memory effects — whether the launch was freshly captured
(``engine == "replay-capture"``) or re-costed from a stored trace
(``engine == "replay"``).  These tests pin that promise across flat and
hierarchical machines, latencies, dispatch policies, and partial warps,
plus every refusal path: non-oblivious kernels, unkeyable programs,
capture overflow, and the cross-input obliviousness self-check.
"""

import numpy as np
import pytest

from repro import DMM, HMM, UMM, HMMParams, MachineParams
from repro.errors import TraceOverflowError
from repro.machine.engine import MachineEngine
from repro.machine.policy import DMMBankPolicy
from repro.machine.replay import (
    CompiledTrace,
    TraceCompiler,
    default_store,
    derive_launch_key,
    is_replay_oblivious,
    non_oblivious,
    reset_default_store,
)
from repro.machine.trace import TraceRecorder
from repro.params import MachineParams as MP

RNG = np.random.default_rng(20130520)
X256 = RNG.standard_normal(256)
X64 = RNG.standard_normal(64)


@pytest.fixture(autouse=True)
def isolated_store(tmp_path, monkeypatch):
    """Every test gets a private on-disk store and a fresh singleton."""
    monkeypatch.setenv("REPRO_TRACE_STORE_DIR", str(tmp_path / "traces"))
    monkeypatch.delenv("REPRO_TRACE_STORE", raising=False)
    monkeypatch.delenv("REPRO_TRACE_CAPTURE_LIMIT", raising=False)
    reset_default_store()
    yield
    reset_default_store()


def assert_reports_equal(expected, actual):
    assert actual.cycles == expected.cycles
    assert actual.num_threads == expected.num_threads
    assert actual.num_warps == expected.num_warps
    assert actual.compute_ops == expected.compute_ops
    assert actual.compute_cycles == expected.compute_cycles
    assert actual.barrier_releases == expected.barrier_releases
    assert set(actual.unit_stats) == set(expected.unit_stats)
    for name, stats in expected.unit_stats.items():
        assert actual.unit_stats[name] == stats, name


class TestFlatEquivalence:
    """Flat DMM/UMM: capture run and warm hits match the event engine."""

    @pytest.mark.parametrize("machine_cls", [DMM, UMM])
    @pytest.mark.parametrize("kernel", ["sum", "prefix_sums"])
    def test_capture_then_hits_across_latencies(self, machine_cls, kernel):
        baselines = {}
        for latency in (2, 5, 17):
            m = machine_cls(MachineParams(width=4, latency=latency))
            baselines[latency] = getattr(m, kernel)(X256, 32)
        for i, latency in enumerate((2, 5, 17)):
            m = machine_cls(MachineParams(width=4, latency=latency),
                            mode="replay")
            value, report = getattr(m, kernel)(X256, 32)
            exp_value, exp_report = baselines[latency]
            np.testing.assert_array_equal(np.asarray(value),
                                          np.asarray(exp_value))
            assert_reports_equal(exp_report, report)
            assert report.engine == ("replay-capture" if i == 0 else "replay")
        stats = default_store().stats()
        assert stats.captures == 1
        assert stats.hits == 2
        assert stats.flagged_programs == 0

    def test_convolution_matches(self):
        for latency in (3, 9):
            ev = DMM(MachineParams(width=4, latency=latency)).convolve(
                X64[:8], X256, 32)
            rp = DMM(MachineParams(width=4, latency=latency),
                     mode="replay").convolve(X64[:8], X256, 32)
            np.testing.assert_array_equal(ev[0], rp[0])
            assert_reports_equal(ev[1], rp[1])
        assert default_store().stats().captures == 1

    def test_partial_warp_round_robin_dispatch(self):
        """37 threads (ragged last warp) under round-robin dispatch."""
        def build(mode):
            eng = MachineEngine(MP(width=4, latency=5), DMMBankPolicy(),
                                name="dmm", dispatch="round-robin", mode=mode)
            a = eng.array_from(X64, "a")
            out = eng.alloc(64, "out")

            def prog(warp):
                vals = yield warp.read(a, warp.tids)
                yield warp.write(out, warp.tids, vals * 2.0)

            return eng, out, prog

        eng_e, out_e, prog_e = build("event")
        expected = eng_e.launch(prog_e, 37)
        for attempt in range(2):
            eng_r, out_r, prog_r = build("replay")
            report = eng_r.launch(prog_r, 37)
            assert_reports_equal(expected, report)
            np.testing.assert_array_equal(out_r.to_numpy(), out_e.to_numpy())

    def test_memory_effects_restored_on_hit(self):
        """A replayed (not re-executed) launch still lands its writes."""
        results = []
        for _ in range(2):
            m = DMM(MachineParams(width=4, latency=5), mode="replay")
            value, report = m.sum(X256, 32)
            results.append((value, report.engine))
        assert results[0][0] == results[1][0]
        assert results[0][1] == "replay-capture"
        assert results[1][1] == "replay"

    def test_user_trace_recorder_forces_event_run(self):
        m = DMM(MachineParams(width=4, latency=5), mode="replay")
        tr = TraceRecorder()
        _, report = m.sum(X64, 16, trace=tr)
        assert report.engine == "event"
        assert tr.records  # the recorder really observed a run
        assert default_store().stats().captures == 0


class TestHMMEquivalence:
    """Hierarchical machine: global + shared units, barriers, range ops."""

    @pytest.mark.parametrize("latency", [16, 128])
    def test_sum_matches_event(self, latency):
        params = HMMParams(num_dmms=8, width=16, global_latency=latency)
        ev = HMM(params).sum(X256, 64)
        rp = HMM(params, mode="replay").sum(X256, 64)
        assert rp[0] == ev[0]
        assert_reports_equal(ev[1], rp[1])

    def test_convolution_range_ops_warm_hit(self):
        x, y = X64[:8], X256
        params16 = HMMParams(num_dmms=4, width=8, global_latency=16)
        params128 = HMMParams(num_dmms=4, width=8, global_latency=128)
        ev16 = HMM(params16).convolve(x, y, 32)
        ev128 = HMM(params128).convolve(x, y, 32)
        rp16 = HMM(params16, mode="replay").convolve(x, y, 32)
        rp128 = HMM(params128, mode="replay").convolve(x, y, 32)
        np.testing.assert_array_equal(ev16[0], rp16[0])
        np.testing.assert_array_equal(ev128[0], rp128[0])
        assert_reports_equal(ev16[1], rp16[1])
        assert_reports_equal(ev128[1], rp128[1])
        stats = default_store().stats()
        assert stats.captures == 1 and stats.hits == 1

    def test_batch_event_replay_agree(self):
        """The three engines are one cost model in three implementations."""
        params = HMMParams(num_dmms=4, width=8, global_latency=32)
        cycles = {
            mode: HMM(params, mode=mode).sum(X256, 64)[1].cycles
            for mode in ("event", "batch", "replay")
        }
        assert cycles["event"] == cycles["batch"] == cycles["replay"]


class TestRefusals:
    """Every unsound case must fall back to the event engine, correctly."""

    def test_non_oblivious_kernel_refused(self):
        m = HMM(HMMParams(num_dmms=4, width=8, global_latency=16),
                mode="replay")
        values = RNG.permutation(64).astype(float)
        out, report = m.sort(values, 32)
        np.testing.assert_array_equal(out, np.sort(values))
        assert report.engine == "replay-refused"
        stats = default_store().stats()
        assert stats.refusals >= 1 and stats.captures == 0

    def test_non_oblivious_decorator(self):
        def looks_fine(warp):
            yield warp.barrier()

        assert is_replay_oblivious(looks_fine)
        assert not is_replay_oblivious(non_oblivious(looks_fine))

    def test_unkeyable_closure_refused(self):
        class Opaque:
            pass

        token = Opaque()
        eng = MachineEngine(MP(width=4, latency=5), DMMBankPolicy(),
                            name="dmm", mode="replay")
        a = eng.array_from(X64, "a")

        def prog(warp):
            _ = token  # closure the keyer cannot canonically hash
            yield warp.read(a, warp.tids)

        report = eng.launch(prog, 16)
        assert report.engine == "replay-refused"
        assert default_store().stats().refusals == 1

    def test_capture_overflow_falls_back(self, monkeypatch):
        monkeypatch.setenv("REPRO_TRACE_CAPTURE_LIMIT", "4")
        reset_default_store()
        m = DMM(MachineParams(width=4, latency=5), mode="replay")
        value, report = m.sum(X256, 16)
        assert report.engine == "replay-refused"
        assert value == pytest.approx(
            DMM(MachineParams(width=4, latency=5)).sum(X256, 16)[0])

    def test_trace_compiler_overflow_raises(self):
        eng = MachineEngine(MP(width=4, latency=5), DMMBankPolicy(),
                            name="dmm")
        a = eng.alloc(64, "a")
        compiler = TraceCompiler(("mem",), max_transactions=2)

        def prog(warp):
            for _ in range(4):
                yield warp.read(a, warp.tids)

        with pytest.raises(TraceOverflowError):
            eng.launch(prog, 4, trace=compiler)


class TestObliviousnessSelfCheck:
    """Same program + shape, different data, different trace → flagged."""

    def _build(self, mode):
        eng = MachineEngine(MP(width=4, latency=5), DMMBankPolicy(),
                            name="dmm", mode=mode)
        a = eng.array_from(np.zeros(16), "a")
        out = eng.alloc(16, "out")

        def sneaky(warp):
            vals = yield warp.read(a, warp.tids)
            # Data-dependent addressing: not declared non-oblivious.
            addrs = np.clip(vals.astype(np.int64), 0, 15)
            yield warp.write(out, addrs, 1.0)

        return eng, a, sneaky

    def test_flagged_after_divergent_captures(self):
        eng, a, sneaky = self._build("replay")
        a.set(np.zeros(16))
        r1 = eng.launch(sneaky, 8)
        assert r1.engine == "replay-capture"
        a.set(np.arange(16, dtype=float))
        r2 = eng.launch(sneaky, 8)  # different addresses → flag
        a.set(np.zeros(16))
        r3 = eng.launch(sneaky, 8)
        assert r3.engine == "replay-refused"
        stats = default_store().stats()
        assert stats.flagged_programs == 1
        assert stats.entries_memory == 0  # flagged traces evicted

    def test_oblivious_program_not_flagged_by_new_data(self):
        for fill in (0.0, 7.0):
            m = DMM(MachineParams(width=4, latency=5), mode="replay")
            m.sum(np.full(64, fill), 16)
        stats = default_store().stats()
        assert stats.flagged_programs == 0
        assert stats.captures == 2  # distinct data → distinct full keys


class TestTraceStorePersistence:
    """Disk round-trips, cross-process sharing, and the off switch."""

    def test_disk_hit_after_singleton_reset(self):
        m = DMM(MachineParams(width=4, latency=5), mode="replay")
        m.sum(X256, 32)
        assert default_store().stats().entries_disk == 1
        reset_default_store()  # simulates a new process: memory LRU empty
        m2 = DMM(MachineParams(width=4, latency=9), mode="replay")
        _, report = m2.sum(X256, 32)
        assert report.engine == "replay"
        stats = default_store().stats()
        assert stats.hits_disk == 1 and stats.captures == 0

    def test_store_off_disables_disk(self, monkeypatch):
        monkeypatch.setenv("REPRO_TRACE_STORE", "off")
        reset_default_store()
        m = DMM(MachineParams(width=4, latency=5), mode="replay")
        m.sum(X256, 32)
        stats = default_store().stats()
        assert stats.captures == 1 and stats.entries_disk == 0

    def test_compiled_trace_npz_roundtrip(self, tmp_path):
        m = DMM(MachineParams(width=4, latency=5), mode="replay")
        m.sum(X64, 16)
        store = default_store()
        (key, trace), = store.store_namespace.scan()
        path = tmp_path / "t.npz"
        trace.save(path)
        loaded = CompiledTrace.load(path)
        assert loaded.signature() == trace.signature()
        assert loaded.meta["machine"] == trace.meta["machine"]
        ev = loaded.evaluator()
        for latency in (2, 31):
            want, _ = trace.evaluator().evaluate(
                latencies=[latency], policies=[DMMBankPolicy()],
                pipelined=[True], dispatch="fifo")
            got, _ = ev.evaluate(
                latencies=[latency], policies=[DMMBankPolicy()],
                pipelined=[True], dispatch="fifo")
            assert got.cycles == want.cycles


class TestLaunchKey:
    """The key covers the program and data; excludes replay-time knobs."""

    def _key(self, latency, data):
        eng = MachineEngine(MP(width=4, latency=latency), DMMBankPolicy(),
                            name="dmm")
        a = eng.array_from(data, "a")

        def prog(warp):
            yield warp.read(a, warp.tids)

        from repro.machine.engine import make_warp_contexts
        return derive_launch_key(
            prog, machine="flat", width=4,
            contexts=make_warp_contexts(16, 4),
            spaces=[eng.space], fingerprint="test")

    def test_latency_excluded_data_included(self):
        k1 = self._key(5, X64)
        k2 = self._key(50, X64)
        k3 = self._key(5, X64 + 1.0)
        assert k1.full == k2.full
        assert k1.struct == k3.struct
        assert k1.full != k3.full

    def test_key_stable_across_runs(self):
        """Mutable library memo caches must not churn the struct key."""
        m = HMM(HMMParams(num_dmms=8, width=16, global_latency=16),
                mode="replay")
        m.sum(X256, 64)  # populates repro.machine.warp._FULL_MASKS etc.
        m2 = HMM(HMMParams(num_dmms=8, width=16, global_latency=128),
                 mode="replay")
        _, report = m2.sum(X256, 64)
        assert report.engine == "replay"
