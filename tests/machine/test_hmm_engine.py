"""The hierarchical engine: spaces, thread partitioning, global pipeline."""

import numpy as np
import pytest

from repro.errors import ConfigurationError, SpaceMismatchError
from repro.machine.hmm import split_threads
from repro.params import HMMParams, GTX580

from conftest import make_hmm


class TestSplitThreads:
    def test_even(self):
        assert split_threads(16, 4) == [4, 4, 4, 4]

    def test_remainder_goes_first(self):
        assert split_threads(10, 4) == [3, 3, 2, 2]

    def test_fewer_threads_than_dmms(self):
        assert split_threads(2, 4) == [1, 1, 0, 0]

    def test_invalid(self):
        with pytest.raises(ConfigurationError):
            split_threads(0, 4)


class TestStructure:
    def test_architecture_shape(self):
        """Figure 2: d DMMs with w banks each plus one w-bank UMM."""
        eng = make_hmm(num_dmms=3, width=8, global_latency=11)
        assert len(eng.shared_units) == 3
        assert len(eng.shared_spaces) == 3
        assert eng.global_unit.width == 8
        assert eng.global_unit.latency == 11
        for unit in eng.shared_units:
            assert unit.width == 8
            assert unit.latency == 1  # shared memory has latency 1

    def test_gtx580_preset(self):
        """Section III: GTX580 = 16 DMMs, w = 32, up to 1536 threads/SM."""
        assert GTX580.num_dmms == 16
        assert GTX580.width == 32
        assert GTX580.max_threads_per_dmm == 1536
        assert GTX580.max_threads() == 24576

    def test_warp_to_dmm_assignment(self):
        eng = make_hmm(num_dmms=2, width=4)
        seen = {}

        def prog(warp):
            seen.setdefault(warp.dmm_id, []).append(warp.tids.tolist())
            return
            yield  # pragma: no cover

        eng.launch(prog, 16)
        assert seen[0] == [[0, 1, 2, 3], [4, 5, 6, 7]]
        assert seen[1] == [[8, 9, 10, 11], [12, 13, 14, 15]]

    def test_explicit_thread_distribution(self):
        eng = make_hmm(num_dmms=2, width=4)
        seen = {}

        def prog(warp):
            seen.setdefault(warp.dmm_id, 0)
            seen[warp.dmm_id] += warp.num_lanes
            return
            yield  # pragma: no cover

        eng.launch(prog, 12, threads_per_dmm=[12, 0])
        assert seen == {0: 12}

    def test_bad_distribution_rejected(self):
        eng = make_hmm(num_dmms=2)
        prog = lambda warp: iter(())
        with pytest.raises(ConfigurationError):
            eng.launch(prog, 8, threads_per_dmm=[4, 4, 4])
        with pytest.raises(ConfigurationError):
            eng.launch(prog, 8, threads_per_dmm=[3, 3])

    def test_thread_cap_enforced(self):
        from repro.machine.hmm import HMMEngine

        eng = HMMEngine(
            HMMParams(num_dmms=2, width=4, global_latency=5, max_threads_per_dmm=4)
        )
        prog = lambda warp: iter(())
        with pytest.raises(ConfigurationError):
            eng.launch(prog, 16)  # 8 per DMM > cap 4


class TestSpaces:
    def test_shared_memory_is_private(self):
        """A warp cannot touch another DMM's shared memory."""
        eng = make_hmm(num_dmms=2, width=4)
        s1 = eng.alloc_shared(1, 4)

        def prog(warp):
            if warp.dmm_id == 0:
                yield warp.read(s1, warp.local_tids)

        with pytest.raises(SpaceMismatchError):
            eng.launch(prog, 8)

    def test_global_memory_is_shared(self):
        eng = make_hmm(num_dmms=2, width=4)
        g = eng.alloc_global(8)

        def prog(warp):
            yield warp.write(g, warp.tids, float(warp.dmm_id + 1))

        eng.launch(prog, 8)
        assert g.to_numpy().tolist() == [1.0] * 4 + [2.0] * 4

    def test_foreign_array_rejected(self):
        eng = make_hmm()
        other = make_hmm()
        foreign = other.alloc_global(4)

        def prog(warp):
            yield warp.read(foreign, warp.local_tids)

        with pytest.raises(SpaceMismatchError):
            eng.launch(prog, 4)

    def test_alloc_shared_all_uniform_offsets(self):
        eng = make_hmm(num_dmms=3, width=4)
        handles = eng.alloc_shared_all(8, "buf")
        assert len(handles) == 3
        assert len({h.base for h in handles}) == 1  # same offset everywhere


class TestHierarchicalTiming:
    def test_shared_latency_one(self):
        eng = make_hmm(num_dmms=1, width=4, global_latency=50)
        s = eng.alloc_shared(0, 4)

        def prog(warp):
            yield warp.read(s, warp.local_tids)

        assert eng.launch(prog, 4).cycles == 1

    def test_global_latency_applies(self):
        eng = make_hmm(num_dmms=1, width=4, global_latency=50)
        g = eng.alloc_global(4)

        def prog(warp):
            yield warp.read(g, warp.tids)

        assert eng.launch(prog, 4).cycles == 50

    def test_global_pipeline_shared_across_dmms(self):
        """Warps of different DMMs serialize on the single global port:
        d coalesced transactions take d + l - 1 time units."""
        eng = make_hmm(num_dmms=4, width=4, global_latency=10)
        g = eng.alloc_global(16)

        def prog(warp):
            yield warp.read(g, warp.tids)

        assert eng.launch(prog, 16).cycles == 4 + 10 - 1

    def test_shared_ports_are_parallel(self):
        """Shared transactions of different DMMs do not serialize."""
        eng = make_hmm(num_dmms=4, width=4, global_latency=10)
        buffers = eng.alloc_shared_all(4)

        def prog(warp):
            yield warp.read(buffers[warp.dmm_id], warp.local_tids)

        assert eng.launch(prog, 16).cycles == 1

    def test_unit_stats_reported_per_space(self):
        eng = make_hmm(num_dmms=2, width=4, global_latency=5)
        g = eng.alloc_global(8)
        buffers = eng.alloc_shared_all(4)

        def prog(warp):
            v = yield warp.read(g, warp.tids)
            yield warp.write(buffers[warp.dmm_id], warp.local_tids, v)

        report = eng.launch(prog, 8)
        assert report.stats_for("global").transactions == 2
        assert report.stats_for("shared[0]").transactions == 1
        assert report.stats_for("shared[1]").transactions == 1
        assert report.shared_stats().transactions == 2
