"""The per-thread kernel adapter (CUDA-style authoring surface)."""

import numpy as np
import pytest

from repro.errors import LockstepError
from repro.machine.threadprog import thread_program

from conftest import make_hmm, make_umm


class TestBasicExecution:
    def test_elementwise_double(self, rng):
        eng = make_umm(width=4)
        vals = rng.normal(size=16)
        a = eng.array_from(vals, "a")
        b = eng.alloc(16, "b")

        def kernel(t):
            v = yield t.read(a, t.tid)
            yield t.compute(1)
            yield t.write(b, t.tid, 2 * v)

        eng.launch(thread_program(kernel), 16)
        assert np.allclose(b.to_numpy(), 2 * vals)

    def test_grid_stride_loop(self, rng):
        """More elements than threads: the CUDA grid-stride idiom."""
        eng = make_umm(width=4)
        n = 50
        vals = rng.normal(size=n)
        a = eng.array_from(vals, "a")
        b = eng.alloc(n, "b")

        def kernel(t):
            i = t.tid
            while i < n:
                v = yield t.read(a, i)
                yield t.write(b, i, v + 1)
                i += t.num_threads

        eng.launch(thread_program(kernel), 8)
        assert np.allclose(b.to_numpy(), vals + 1)

    def test_early_finish_lanes(self, rng):
        """Tail threads returning early must not stall the others."""
        eng = make_umm(width=4)
        a = eng.array_from(np.arange(16.0), "a")
        b = eng.alloc(16, "b")

        def kernel(t):
            if t.tid >= 10:
                return  # this thread has nothing to do
            v = yield t.read(a, t.tid)
            yield t.write(b, t.tid, v * 10)

        eng.launch(thread_program(kernel), 16)
        out = b.to_numpy()
        assert np.allclose(out[:10], np.arange(10.0) * 10)
        assert (out[10:] == 0).all()

    def test_idle_for_data_divergence(self, rng):
        """idle() lets some lanes skip a memory step."""
        eng = make_umm(width=4)
        a = eng.array_from(np.arange(8.0), "a")
        b = eng.alloc(8, "b")

        def kernel(t):
            v = yield t.read(a, t.tid)
            if v % 2 == 0:
                yield t.write(b, t.tid, v + 100)
            else:
                yield t.idle()

        eng.launch(thread_program(kernel), 8)
        out = b.to_numpy()
        assert out[0] == 100 and out[2] == 102
        assert out[1] == 0 and out[3] == 0

    def test_matches_vector_api_cost(self, rng):
        """The adapter produces the same transactions as the native
        warp-vector version of the same kernel — identical time units."""
        vals = rng.normal(size=64)

        def run_vector():
            eng = make_umm(width=4, latency=6)
            a = eng.array_from(vals, "a")
            b = eng.alloc(64, "b")

            def prog(warp):
                v = yield warp.read(a, warp.tids)
                yield warp.compute(1)
                yield warp.write(b, warp.tids, 2 * v)

            return eng.launch(prog, 64).cycles

        def run_thread():
            eng = make_umm(width=4, latency=6)
            a = eng.array_from(vals, "a")
            b = eng.alloc(64, "b")

            def kernel(t):
                v = yield t.read(a, t.tid)
                yield t.compute(1)
                yield t.write(b, t.tid, 2 * v)

            return eng.launch(thread_program(kernel), 64).cycles

        assert run_vector() == run_thread()

    def test_hmm_shared_memory_and_barriers(self, rng):
        """A per-thread HMM reduction using shared memory."""
        eng = make_hmm(num_dmms=2, width=4, global_latency=8)
        vals = rng.normal(size=16)
        a = eng.global_from(vals, "a")
        s = eng.alloc_shared_all(8, "s")
        out = eng.alloc_global(2, "out")

        def kernel(t):
            my_s = s[t.dmm_id]
            v = yield t.read(a, t.tid)
            yield t.write(my_s, t.local_tid, v)
            yield t.sync_dmm()
            half = 4
            while half >= 1:
                if t.local_tid < half:
                    x = yield t.read(my_s, t.local_tid)
                    y = yield t.read(my_s, t.local_tid + half)
                    yield t.write(my_s, t.local_tid, x + y)
                else:
                    yield t.idle()
                    yield t.idle()
                    yield t.idle()
                yield t.sync_dmm()
                half //= 2
            if t.local_tid == 0:
                total = yield t.read(my_s, 0)
                yield t.write(out, t.dmm_id, total)

        eng.launch(thread_program(kernel), 16)
        partials = out.to_numpy()
        assert np.isclose(partials.sum(), vals.sum())
        assert np.isclose(partials[0], vals[:8].sum())


class TestLockstepChecking:
    def test_divergent_kinds_raise(self):
        eng = make_umm(width=4)
        a = eng.alloc(8)

        def kernel(t):
            if t.tid % 2:
                yield t.read(a, t.tid)
            else:
                yield t.compute(1)

        with pytest.raises(LockstepError):
            eng.launch(thread_program(kernel), 4)

    def test_divergent_arrays_raise(self):
        eng = make_umm(width=4)
        a = eng.alloc(8)
        b = eng.alloc(8)

        def kernel(t):
            target = a if t.tid % 2 else b
            yield t.read(target, t.tid)

        with pytest.raises(LockstepError):
            eng.launch(thread_program(kernel), 4)

    def test_partial_barrier_raises(self):
        eng = make_umm(width=4)
        a = eng.alloc(8)

        def kernel(t):
            if t.tid % 2:
                yield t.barrier()
            else:
                yield t.idle()

        with pytest.raises(LockstepError):
            eng.launch(thread_program(kernel), 4)

    def test_divergent_compute_durations_raise(self):
        eng = make_umm(width=4)

        def kernel(t):
            yield t.compute(t.tid + 1)

        with pytest.raises(LockstepError):
            eng.launch(thread_program(kernel), 4)

    def test_divergence_across_warps_is_fine(self, rng):
        """Different warps may do entirely different things."""
        eng = make_umm(width=4)
        a = eng.array_from(np.arange(8.0), "a")
        b = eng.alloc(8, "b")

        def kernel(t):
            if t.warp_id == 0:
                v = yield t.read(a, t.tid)
                yield t.write(b, t.tid, v)
            else:
                yield t.compute(3)

        eng.launch(thread_program(kernel), 8)
        assert np.allclose(b.to_numpy()[:4], np.arange(4.0))
