"""Pins on the replay-eligibility registry (PR 9).

The conflict-free suite is deliberately *absent* from
``NON_OBLIVIOUS_MODULES`` — its kernels are data-oblivious by
construction, so replay may cache and re-price their traces.  The naive
sorting / merge modules stay listed (they share modules with
data-dependent kernels).  This file pins both directions so adding a
kernel module flips eligibility only as an explicit decision, and
backs the registry with the machine-checked certificate pass.
"""

import numpy as np
import pytest

from repro.analysis.certify import certify_launch
from repro.machine.replay import (
    NON_OBLIVIOUS_MODULES,
    default_store,
    is_replay_oblivious,
    reset_default_store,
)
from repro.core.kernels.conflict_free import (
    cf_bitonic_merge_kernel,
    cf_bitonic_sort_kernel,
    flat_cf_permutation,
    flat_cf_sort,
    oblivious_permutation_kernel,
)
from repro.core.kernels.merge import flat_merge
from repro.core.kernels.sorting import flat_bitonic_sort

from conftest import make_dmm


@pytest.fixture(autouse=True)
def _isolated_store(tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_TRACE_STORE_DIR", str(tmp_path / "traces"))
    reset_default_store()
    yield
    reset_default_store()


class TestRegistryPin:
    def test_registry_contents(self):
        """Exact pin: changing the refusal set is a reviewed decision."""
        assert NON_OBLIVIOUS_MODULES == frozenset({
            "repro.core.kernels.bfs",
            "repro.core.kernels.compaction",
            "repro.core.kernels.histogram",
            "repro.core.kernels.merge",
            "repro.core.kernels.permutation",
            "repro.core.kernels.sorting",
            "repro.core.kernels.spmv",
            "repro.tuner.datadep",
        })

    def test_conflict_free_module_not_listed(self):
        assert ("repro.core.kernels.conflict_free"
                not in NON_OBLIVIOUS_MODULES)

    def test_conflict_free_programs_eligible(self):
        eng = make_dmm()
        a = eng.alloc(8, "a")
        b = eng.alloc(8, "b")
        perm = np.arange(8, dtype=np.int64)
        sched = perm.reshape(2, 4)
        for program in (
            cf_bitonic_sort_kernel(a, 8),
            cf_bitonic_merge_kernel(a, 4),
            oblivious_permutation_kernel(a, b, perm, sched),
        ):
            assert is_replay_oblivious(program), program

    def test_naive_module_programs_refused(self):
        from repro.core.kernels.sorting import bitonic_sort_kernel

        eng = make_dmm()
        a = eng.alloc(8, "a")
        assert not is_replay_oblivious(bitonic_sort_kernel(a, 8))


class TestReplayBehavior:
    def test_cf_sort_captures_then_replays(self, rng):
        vals = rng.normal(size=64)
        cycles = {}
        for l in (3, 17):
            eng = make_dmm(width=8, latency=l, mode="replay")
            out, report = flat_cf_sort(eng, vals, 16)
            assert np.allclose(out, np.sort(vals))
            assert report.engine in ("replay-capture", "replay")
            cycles[l] = report.cycles
            # Event-mode ground truth at the same latency.
            _, event = flat_cf_sort(make_dmm(width=8, latency=l), vals, 16)
            assert report.cycles == event.cycles
        stats = default_store().stats()
        assert stats.captures == 1
        assert stats.hits >= 1
        assert stats.refusals == 0

    def test_cf_permutation_schedule_lives_in_the_key(self, rng):
        """Both schedules of the same permutation replay separately:
        the round schedule is launch-closure data, so each layout gets
        its own trace."""
        n, w = 64, 8
        vals = rng.normal(size=n)
        perm = rng.permutation(n).astype(np.int64)
        for schedule in ("naive", "conflict-free"):
            for _ in range(2):
                eng = make_dmm(width=w, latency=5, mode="replay")
                out, report = flat_cf_permutation(eng, vals, perm, 16,
                                                  schedule=schedule)
                assert np.allclose(out[perm], vals)
                assert report.engine in ("replay-capture", "replay")
        stats = default_store().stats()
        assert stats.captures == 2  # one per schedule
        assert stats.hits == 2
        assert stats.refusals == 0

    def test_naive_kernels_fall_back_to_event(self, rng):
        vals = rng.normal(size=64)
        eng = make_dmm(width=8, latency=5, mode="replay")
        out, report = flat_bitonic_sort(eng, vals, 16)
        assert np.allclose(out, np.sort(vals))
        assert report.engine == "replay-refused"

        a = np.sort(rng.normal(size=48))
        b = np.sort(rng.normal(size=16))
        eng = make_dmm(width=8, latency=5, mode="replay")
        out, report = flat_merge(eng, a, b, 16)
        assert np.allclose(out, np.sort(np.concatenate([a, b])))
        assert report.engine == "replay-refused"

        stats = default_store().stats()
        assert stats.refusals == 2
        assert stats.captures == 0

    def test_registry_presumption_backed_by_certificate(self):
        """The module-level presumption ('not listed => oblivious') is
        not taken on faith: the certificate pass re-proves it from the
        recorded transactions."""

        def run(rng, trace):
            flat_cf_sort(make_dmm(width=8), rng.standard_normal(64), 16,
                         trace=trace)

        assert certify_launch(run, width=8).certified
