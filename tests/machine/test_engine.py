"""Single-machine engine: launches, timing, memory effects."""

import numpy as np
import pytest

from repro.errors import SpaceMismatchError
from repro.machine.engine import MachineEngine
from repro.machine.policy import DMMBankPolicy, UMMGroupPolicy
from repro.params import MachineParams

from conftest import make_dmm, make_umm


class TestBasicExecution:
    def test_read_returns_values(self):
        eng = make_umm()
        a = eng.array_from([1.0, 2.0, 3.0, 4.0], "a")
        seen = {}

        def prog(warp):
            vals = yield warp.read(a, warp.tids)
            seen[warp.warp_id] = vals

        eng.launch(prog, 4)
        assert seen[0].tolist() == [1.0, 2.0, 3.0, 4.0]

    def test_write_lands(self):
        eng = make_umm()
        a = eng.alloc(4, "a")

        def prog(warp):
            yield warp.write(a, warp.tids, warp.tids * 10.0)

        eng.launch(prog, 4)
        assert a.to_numpy().tolist() == [0.0, 10.0, 20.0, 30.0]

    def test_masked_read_returns_zero_for_inactive(self):
        eng = make_umm()
        a = eng.array_from([5.0, 6.0, 7.0, 8.0], "a")
        seen = {}

        def prog(warp):
            mask = np.array([True, False, True, False])
            vals = yield warp.read(a, warp.tids, mask=mask)
            seen["v"] = vals

        eng.launch(prog, 4)
        assert seen["v"].tolist() == [5.0, 0.0, 7.0, 0.0]

    def test_fully_masked_op_is_free(self):
        eng = make_umm(latency=50)
        a = eng.alloc(4)

        def prog(warp):
            vals = yield warp.read(a, warp.tids, mask=np.zeros(warp.num_lanes, bool))
            assert vals.tolist() == [0.0] * warp.num_lanes

        report = eng.launch(prog, 4)
        assert report.cycles == 0
        assert report.total_transactions() == 0

    def test_collision_write_lowest_lane_wins(self):
        eng = make_umm()
        a = eng.alloc(4)

        def prog(warp):
            yield warp.write(a, 2, np.array([10.0, 20.0, 30.0, 40.0]))

        eng.launch(prog, 4)
        assert a.to_numpy()[2] == 10.0

    def test_values_persist_across_launches(self):
        eng = make_umm()
        a = eng.alloc(4)

        def write(warp):
            yield warp.write(a, warp.tids, 3.0)

        def add(warp):
            v = yield warp.read(a, warp.tids)
            yield warp.write(a, warp.tids, v + 1.0)

        eng.launch(write, 4)
        eng.launch(add, 4)
        assert (a.to_numpy() == 4.0).all()

    def test_timing_resets_across_launches(self):
        eng = make_umm(latency=9)
        a = eng.alloc(4)

        def prog(warp):
            yield warp.read(a, warp.tids)

        first = eng.launch(prog, 4)
        second = eng.launch(prog, 4)
        assert first.cycles == second.cycles == 9

    def test_empty_program(self):
        eng = make_umm()

        def prog(warp):
            return
            yield  # pragma: no cover

        report = eng.launch(prog, 8)
        assert report.cycles == 0


class TestTiming:
    def test_single_warp_read_costs_latency(self):
        eng = make_umm(width=4, latency=7)
        a = eng.alloc(4)

        def prog(warp):
            yield warp.read(a, warp.tids)

        assert eng.launch(prog, 4).cycles == 7

    def test_contiguous_round_is_warps_plus_latency(self):
        """p/w warps, one coalesced read each: p/w + l - 1 time units."""
        eng = make_umm(width=4, latency=5)
        a = eng.alloc(32)

        def prog(warp):
            yield warp.read(a, warp.tids)

        assert eng.launch(prog, 32).cycles == 32 // 4 + 5 - 1

    def test_compute_only_parallel_across_warps(self):
        """Compute never serializes across warps (threads are RAMs)."""
        eng = make_umm()

        def prog(warp):
            yield warp.compute(13)

        assert eng.launch(prog, 64).cycles == 13

    def test_thread_reissue_waits_latency(self):
        """A single warp issuing two dependent reads pays 2l."""
        eng = make_umm(width=4, latency=6)
        a = eng.alloc(8)

        def prog(warp):
            yield warp.read(a, warp.tids)
            yield warp.read(a, warp.tids + 4)

        assert eng.launch(prog, 4).cycles == 12

    def test_conflicted_warp_occupies_extra_slots(self):
        eng = make_dmm(width=4, latency=5)
        a = eng.alloc(16)

        def prog(warp):
            yield warp.read(a, warp.tids * 4)  # all bank 0: 4-way conflict

        assert eng.launch(prog, 4).cycles == 5 + 4 - 1

    def test_dmm_vs_umm_policy_difference(self):
        """Bank-distinct scattered-group access: cheap on DMM, dear on UMM."""
        pattern = np.array([0, 5, 10, 15])  # banks 0..3, groups 0..3

        def prog_for(arr):
            def prog(warp):
                yield warp.read(arr, pattern[: warp.num_lanes])
            return prog

        dmm = make_dmm(width=4, latency=5)
        a = dmm.alloc(16)
        umm = make_umm(width=4, latency=5)
        b = umm.alloc(16)
        assert dmm.launch(prog_for(a), 4).cycles == 5
        assert umm.launch(prog_for(b), 4).cycles == 5 + 4 - 1


class TestValidation:
    def test_foreign_array_rejected(self):
        eng = make_umm()
        other = make_umm()
        foreign = other.alloc(4)

        def prog(warp):
            yield warp.read(foreign, warp.tids)

        with pytest.raises(SpaceMismatchError):
            eng.launch(prog, 4)

    def test_report_metadata(self):
        eng = make_umm(width=4)
        a = eng.alloc(8)

        def prog(warp):
            yield warp.read(a, warp.tids)

        report = eng.launch(prog, 8, label="meta")
        assert report.num_threads == 8
        assert report.num_warps == 2
        assert report.label == "meta"
        assert report.stats_for("mem").transactions == 2
