"""End-to-end server tests over real sockets on an ephemeral port.

Covers the golden-equivalence guarantee (served answers are
bit-identical to direct in-process evaluation), structured 400 bodies,
admission control (429 + Retry-After at the queue bound), graceful
drain (in-flight requests complete), metrics, and a SIGTERM subprocess
smoke test.
"""

import asyncio
import json
import os
import signal
import subprocess
import sys
import threading

import pytest

from repro.analysis.terms import Params
from repro.experiments.table1 import conv_task, sum_task
from repro.service.client import AsyncServiceClient, ServiceClient, ServiceError
from repro.service.protocol import DEFAULT_SEED
from repro.service.server import BackgroundServer, ServiceServer

SRC = os.path.join(os.path.dirname(__file__), "..", "..", "src")


@pytest.fixture(scope="module")
def server():
    with BackgroundServer(cache=False) as srv:
        yield srv


@pytest.fixture()
def client(server):
    with ServiceClient(server.url) as c:
        yield c


async def _raw_request(host, port, method, path, payload=None):
    """A bare HTTP exchange: (status, headers, body) with no retries."""
    reader, writer = await asyncio.open_connection(host, port)
    try:
        body = json.dumps(payload).encode() if payload is not None else b""
        head = (
            f"{method} {path} HTTP/1.1\r\nHost: x\r\n"
            f"Content-Length: {len(body)}\r\nConnection: close\r\n\r\n"
        )
        writer.write(head.encode() + body)
        await writer.drain()
        status = int((await reader.readline()).split()[1])
        headers = {}
        while True:
            line = await reader.readline()
            if line in (b"\r\n", b"\n", b""):
                break
            name, _, value = line.decode().partition(":")
            headers[name.strip().lower()] = value.strip()
        raw = await reader.readexactly(int(headers.get("content-length", 0)))
        return status, headers, json.loads(raw) if raw else None
    finally:
        writer.close()


class TestGoldenEquivalence:
    def test_cost_sum_matches_direct_call(self, client):
        body = client.cost("sum", "hmm", {"n": 1024, "p": 64, "l": 128})
        q = Params(n=1024, k=1, p=64, w=16, l=128, d=8)
        cycles, extra = sum_task(q, model="hmm", seed=DEFAULT_SEED,
                                 mode="batch")
        assert body["cycles"] == cycles
        assert body["engine"] == extra["engine"]

    def test_cost_convolution_matches_direct_call(self, client):
        body = client.cost("convolution", "umm",
                           {"n": 512, "k": 8, "p": 128, "l": 8},
                           mode="event", seed=7)
        q = Params(n=512, k=8, p=128, w=16, l=8, d=8)
        cycles, extra = conv_task(q, model="umm", seed=7, mode="event")
        assert body["cycles"] == cycles
        assert body["engine"] == extra["engine"]

    def test_sweep_matches_per_point_direct_calls(self, client):
        body = client.sweep("sum", "dmm", {"n": [512, 1024], "p": 64,
                                           "l": [16, 32]})
        assert len(body["points"]) == 4
        for pt in body["points"]:
            p = pt["params"]
            q = Params(n=p["n"], k=1, p=p["p"], w=p["w"], l=p["l"], d=p["d"])
            cycles, _ = sum_task(q, model="dmm", seed=DEFAULT_SEED,
                                 mode="batch")
            assert pt["cycles"] == cycles

    def test_advise_reports_measured_cycles(self, client):
        body = client.advise("sum", "hmm", {"n": 1024, "p": 64})
        q = Params(n=1024, k=1, p=64, w=16, l=16, d=8)
        cycles, _ = sum_task(q, model="hmm", seed=DEFAULT_SEED, mode="batch")
        assert body["cycles"] == cycles
        assert body["regime"] in ("latency-bound", "bandwidth-bound",
                                  "compute-bound")
        assert "mem" in body["units"] or body["units"]
        assert isinstance(body["rendered"], str)


class TestErrorSurface:
    def test_validation_error_is_structured_400(self, client):
        with pytest.raises(ServiceError) as err:
            client.cost("sum", "hmm", {"n": 1024, "p": 64, "w": 5})
        assert err.value.status == 400
        assert err.value.code == "invalid_param"
        assert err.value.field == "w"
        assert "power of two" in str(err.value)

    def test_unknown_route_404(self, server):
        status, _, body = asyncio.run(_raw_request(
            server.server.host, server.server.port, "GET", "/v2/cost"))
        assert status == 404
        assert body["error"]["code"] == "not_found"

    def test_wrong_method_405(self, server):
        status, _, body = asyncio.run(_raw_request(
            server.server.host, server.server.port, "GET", "/v1/cost"))
        assert status == 405
        assert body["error"]["code"] == "method_not_allowed"

    def test_bad_json_400(self, server):
        async def go():
            reader, writer = await asyncio.open_connection(
                server.server.host, server.server.port)
            writer.write(b"POST /v1/cost HTTP/1.1\r\nHost: x\r\n"
                         b"Content-Length: 9\r\nConnection: close\r\n\r\n"
                         b"not json!")
            await writer.drain()
            status = int((await reader.readline()).split()[1])
            writer.close()
            return status

        assert asyncio.run(go()) == 400

    def test_healthz_ok(self, client):
        body = client.healthz()
        assert body["status"] == "ok"


class _GatedOracle:
    """Stub oracle: evaluation blocks until the test releases the gate."""

    def __init__(self):
        self.gate = threading.Event()
        self.calls = 0

    def evaluate_batch(self, specs):
        self.calls += 1
        assert self.gate.wait(timeout=30), "test never released the gate"
        return [{"cycles": 1, "spec": dict(s)} for s in specs]

    def run_sweep(self, meta, specs):  # pragma: no cover - not used here
        raise AssertionError("sweep not expected")

    def advise(self, spec):  # pragma: no cover - not used here
        raise AssertionError("advise not expected")

    def cache_counters(self):
        return (0, 0)

    def close(self):
        pass


class TestOverloadAndDrain:
    def test_queue_bound_gives_429_with_retry_after(self):
        async def main():
            oracle = _GatedOracle()
            server = ServiceServer(oracle, max_batch_size=1, max_wait_s=0.0,
                                   max_queue=2)
            await server.start()
            try:
                c = AsyncServiceClient(server.url)
                blocked = [
                    asyncio.ensure_future(
                        c.cost("sum", "hmm", {"n": 1 << (9 + i), "p": 64}))
                    for i in range(2)
                ]
                # Give the two admitted requests time to fill the queue.
                while server.batcher.pending < 2:
                    await asyncio.sleep(0.01)
                status, headers, body = await _raw_request(
                    server.host, server.port, "POST", "/v1/cost",
                    {"kernel": "sum", "model": "hmm", "n": 4096, "p": 64},
                )
                assert status == 429
                assert int(headers["retry-after"]) >= 1
                assert body["error"]["code"] == "overloaded"
                metrics = await c.metrics()
                assert metrics["rejected"] == 1
                assert metrics["queue"]["bound"] == 2
                oracle.gate.set()
                results = await asyncio.gather(*blocked)
                assert all(r["cycles"] == 1 for r in results)
            finally:
                oracle.gate.set()
                await server.shutdown()

        asyncio.run(main())

    def test_drain_completes_in_flight_then_rejects(self):
        async def main():
            oracle = _GatedOracle()
            server = ServiceServer(oracle, max_batch_size=4, max_wait_s=0.0)
            await server.start()
            c = AsyncServiceClient(server.url, retries=0)
            in_flight = asyncio.ensure_future(
                c.cost("sum", "hmm", {"n": 1024, "p": 64}))
            while oracle.calls == 0:
                await asyncio.sleep(0.01)
            shutdown = asyncio.ensure_future(server.shutdown())
            await asyncio.sleep(0.05)
            assert not shutdown.done()  # still waiting on in-flight work
            oracle.gate.set()
            await shutdown
            result = await in_flight  # the admitted request completed
            assert result["cycles"] == 1
            # The listener is closed: new connections fail outright.
            with pytest.raises(Exception):
                await _raw_request(server.host, server.port, "GET", "/healthz")

        asyncio.run(main())


class TestMetrics:
    def test_metrics_shape_and_counts(self, client):
        client.cost("sum", "dmm", {"n": 512, "p": 64})
        m = client.metrics()
        assert m["requests_total"] >= 1
        assert m["requests"]["/v1/cost"]["200"] >= 1
        assert m["batches"]["count"] >= 1
        assert m["batches"]["unique_points"] >= 1
        assert m["queue"]["depth"] == 0
        assert set(m["cache"]) == {"hits", "misses", "hit_rate"}
        assert m["latency"]["count"] >= 1
        assert m["latency"]["p95_ms"] >= m["latency"]["p50_ms"] >= 0


class TestSigterm:
    def test_sigterm_drains_and_exits_zero(self):
        env = dict(os.environ, PYTHONPATH=SRC, PYTHONUNBUFFERED="1")
        proc = subprocess.Popen(
            [sys.executable, "-m", "repro.service", "serve", "--port", "0",
             "--no-cache"],
            stdout=subprocess.PIPE, stderr=subprocess.STDOUT, env=env,
            text=True,
        )
        try:
            line = proc.stdout.readline()
            assert "listening on http://" in line
            url = line.split("listening on ", 1)[1].split()[0]
            with ServiceClient(url) as c:
                assert c.healthz()["status"] == "ok"
            proc.send_signal(signal.SIGTERM)
            out, _ = proc.communicate(timeout=30)
            assert proc.returncode == 0, out
            assert "drained" in out
        finally:
            if proc.poll() is None:
                proc.kill()
                proc.wait()
