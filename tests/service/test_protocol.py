"""Every rejection path of the service wire protocol."""

import pytest

from repro.service.protocol import (
    DEFAULT_SEED,
    MAX_GRID_POINTS,
    MAX_N,
    ProtocolError,
    parse_advise_request,
    parse_cost_request,
    parse_sweep_request,
    spec_key,
)


def _cost(**overrides):
    payload = {"kernel": "sum", "model": "hmm", "n": 1024, "p": 64}
    payload.update(overrides)
    return payload


def _reject(payload, *, field=None, code=None):
    with pytest.raises(ProtocolError) as err:
        parse_cost_request(payload)
    if field is not None:
        assert err.value.field == field
    if code is not None:
        assert err.value.code == code
    return err.value


class TestCostValidation:
    def test_happy_path_defaults(self):
        spec = parse_cost_request(_cost())
        assert spec == {
            "kernel": "sum", "model": "hmm", "mode": "batch",
            "seed": DEFAULT_SEED, "n": 1024, "k": 0, "p": 64,
            "w": 16, "l": 16, "d": 8, "backend": "auto",
        }

    def test_backend_field(self):
        assert parse_cost_request(_cost(backend="native"))["backend"] == \
            "native"
        assert parse_cost_request(_cost(backend="python"))["backend"] == \
            "python"
        _reject(_cost(backend="fortran"), field="backend",
                code="invalid_param")

    def test_backend_not_in_spec_key(self):
        # Backends are bit-identical, so they must coalesce in the
        # batcher and share cache identity.
        a = parse_cost_request(_cost(backend="native"))
        b = parse_cost_request(_cost(backend="python"))
        assert spec_key(a) == spec_key(b)

    def test_body_must_be_object(self):
        err = _reject([1, 2, 3], code="invalid_body")
        assert "JSON object" in err.message

    def test_missing_kernel(self):
        payload = _cost()
        del payload["kernel"]
        _reject(payload, field="kernel", code="invalid_param")

    def test_unknown_kernel_and_model(self):
        _reject(_cost(kernel="fft"), field="kernel")
        _reject(_cost(model="tpu"), field="model")
        _reject(_cost(mode="streaming"), field="mode")

    def test_missing_n(self):
        payload = _cost()
        del payload["n"]
        _reject(payload, field="n", code="missing_param")

    @pytest.mark.parametrize("name", ["n", "p", "w", "l", "d"])
    def test_nonpositive_params_rejected(self, name):
        _reject(_cost(**{name: 0}), field=name, code="invalid_param")
        _reject(_cost(**{name: -3}), field=name, code="invalid_param")

    def test_oversized_n_rejected(self):
        _reject(_cost(n=MAX_N + 1), field="n", code="invalid_param")

    def test_bool_is_not_an_integer(self):
        err = _reject(_cost(w=True), field="w", code="invalid_param")
        assert "integer" in err.message

    def test_non_integer_param(self):
        _reject(_cost(p="many"), field="p", code="invalid_param")
        _reject(_cost(l=16.5), field="l", code="invalid_param")

    @pytest.mark.parametrize("w", [3, 5, 6, 7, 12, 1000])
    def test_width_must_be_power_of_two(self, w):
        err = _reject(_cost(w=w), field="w", code="invalid_param")
        assert "power of two" in err.message

    def test_negative_seed_rejected(self):
        _reject(_cost(seed=-1), field="seed")

    def test_unknown_field_rejected(self):
        err = _reject(_cost(warp_size=32), code="unknown_field")
        assert "warp_size" in err.message

    def test_sum_rejects_k(self):
        _reject(_cost(k=8), field="k", code="invalid_param")

    def test_convolution_requires_k(self):
        _reject(_cost(kernel="convolution"), field="k")
        _reject(_cost(kernel="convolution", k=0), field="k")

    def test_convolution_k_le_n(self):
        _reject(_cost(kernel="convolution", k=2048, n=1024), field="k")
        spec = parse_cost_request(_cost(kernel="convolution", k=16))
        assert spec["k"] == 16

    def test_error_body_is_structured(self):
        err = _reject(_cost(w=5))
        body = err.body()
        assert body["error"]["code"] == "invalid_param"
        assert body["error"]["field"] == "w"
        assert "power of two" in body["error"]["message"]


class TestAdviseValidation:
    def test_query_strings_converted(self):
        spec = parse_advise_request(
            {"kernel": "sum", "model": "dmm", "n": "1024", "p": "64"}
        )
        assert spec["n"] == 1024 and spec["p"] == 64

    def test_non_integer_query_value(self):
        with pytest.raises(ProtocolError) as err:
            parse_advise_request(
                {"kernel": "sum", "model": "dmm", "n": "lots", "p": "64"}
            )
        assert err.value.field == "n"

    @pytest.mark.parametrize("model", ["sequential", "pram"])
    def test_only_machine_models_advisable(self, model):
        with pytest.raises(ProtocolError) as err:
            parse_advise_request(
                {"kernel": "sum", "model": model, "n": "1024", "p": "64"}
            )
        assert err.value.field == "model"
        assert "memory-machine" in err.value.message


class TestSweepValidation:
    def _sweep(self, **overrides):
        payload = {
            "kernel": "sum", "model": "hmm", "p": 64,
            "axes": {"n": [512, 1024], "l": [16, 32]},
        }
        payload.update(overrides)
        return payload

    def test_expansion_order_and_meta(self):
        meta, specs = parse_sweep_request(self._sweep())
        assert meta == {"kernel": "sum", "model": "hmm", "mode": "batch",
                        "seed": DEFAULT_SEED}
        assert [(s["n"], s["l"]) for s in specs] == [
            (512, 16), (512, 32), (1024, 16), (1024, 32),
        ]

    def test_axes_required_and_object(self):
        with pytest.raises(ProtocolError):
            parse_sweep_request({"kernel": "sum", "model": "hmm"})
        with pytest.raises(ProtocolError):
            parse_sweep_request(self._sweep(axes=[1, 2]))
        with pytest.raises(ProtocolError) as err:
            parse_sweep_request(self._sweep(axes={}))
        assert err.value.field == "axes"

    def test_axis_must_be_nonempty_list(self):
        with pytest.raises(ProtocolError) as err:
            parse_sweep_request(self._sweep(axes={"n": []}))
        assert err.value.field == "axes.n"
        with pytest.raises(ProtocolError):
            parse_sweep_request(self._sweep(axes={"n": 1024}))

    def test_unsweepable_axis(self):
        with pytest.raises(ProtocolError) as err:
            parse_sweep_request(self._sweep(axes={"seed": [1, 2]}))
        assert err.value.field == "axes.seed"

    def test_grid_bound_enforced_before_expansion(self):
        side = int(MAX_GRID_POINTS ** 0.5) + 1
        axes = {"n": [1 << i for i in range(4, 4 + side)],
                "p": list(range(1, side + 1))}
        assert side * side > MAX_GRID_POINTS
        with pytest.raises(ProtocolError) as err:
            parse_sweep_request(self._sweep(axes=axes))
        assert err.value.code == "grid_too_large"

    def test_bad_grid_point_names_the_point(self):
        with pytest.raises(ProtocolError) as err:
            parse_sweep_request(self._sweep(n=1024, axes={"w": [16, 5]}))
        assert err.value.field == "w"
        assert "grid point" in err.value.message

    def test_scalars_validated_too(self):
        with pytest.raises(ProtocolError) as err:
            parse_sweep_request(self._sweep(p=0))
        assert err.value.field == "p"


class TestSpecKey:
    def test_key_is_order_insensitive_and_complete(self):
        a = parse_cost_request(_cost())
        b = parse_cost_request(dict(reversed(list(_cost().items()))))
        assert spec_key(a) == spec_key(b)
        c = parse_cost_request(_cost(seed=1))
        assert spec_key(a) != spec_key(c)
