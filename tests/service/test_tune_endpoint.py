"""``POST /v1/tune``: protocol validation and the served search."""

import pytest

from repro.service.client import ServiceClient, ServiceError
from repro.service.protocol import (
    MAX_TUNE_BUDGET,
    MAX_TUNE_LATENCIES,
    TUNE_STRATEGIES,
    TUNE_TASKS,
    ProtocolError,
    parse_tune_request,
)
from repro.service.server import BackgroundServer
from repro.tuner.demos import TASKS
from repro.tuner.search import STRATEGIES


class TestMirrors:
    """protocol.py mirrors the tuner's registries statically (so the
    protocol layer stays import-light); these tests pin the mirrors."""

    def test_tasks_mirror(self):
        assert TUNE_TASKS == tuple(sorted(TASKS))

    def test_strategies_mirror(self):
        assert TUNE_STRATEGIES == STRATEGIES


class TestParseTuneRequest:
    def test_minimal_request_defaults(self):
        spec = parse_tune_request({"task": "transpose"})
        assert spec == {
            "task": "transpose",
            "strategy": "exhaustive",
            "mode": "auto",
            "seed": 0,
            "budget": None,
            "latencies": None,
            "shape": {},
        }

    def test_full_request(self):
        spec = parse_tune_request({
            "task": "sum", "strategy": "greedy", "budget": 8,
            "mode": "batch", "seed": 3, "latencies": [4, 16],
            "shape": {"n": 512, "w": 8},
        })
        assert spec["latencies"] == [4, 16]
        assert spec["shape"] == {"n": 512, "w": 8}
        assert spec["budget"] == 8

    @pytest.mark.parametrize("payload", [
        [],                                        # not an object
        {},                                        # task required
        {"task": "fft"},                           # unknown task
        {"task": "sum", "strategy": "sgd"},        # unknown strategy
        {"task": "sum", "mode": "quantum"},        # unknown mode
        {"task": "sum", "extra": 1},               # unknown field
        {"task": "sum", "budget": 0},
        {"task": "sum", "budget": MAX_TUNE_BUDGET + 1},
        {"task": "sum", "seed": -1},
        {"task": "sum", "latencies": []},
        {"task": "sum", "latencies": "4"},
        {"task": "sum", "latencies": [4, "x"]},
        {"task": "sum", "latencies": [0]},
        {"task": "sum", "latencies": [True]},
        {"task": "sum", "latencies": list(range(1, MAX_TUNE_LATENCIES + 2))},
        {"task": "sum", "shape": 7},
        {"task": "sum", "shape": {"q": 4}},        # key not tunable
        {"task": "sum", "shape": {"n": 0}},
        {"task": "transpose", "shape": {"m": 1 << 20}},  # over the cap
    ])
    def test_rejections(self, payload):
        with pytest.raises(ProtocolError):
            parse_tune_request(payload)

    def test_error_carries_field(self):
        with pytest.raises(ProtocolError) as err:
            parse_tune_request({"task": "sum", "shape": {"q": 4}})
        assert err.value.field == "shape.q"
        assert err.value.code == "invalid_param"


@pytest.fixture(scope="module")
def server(tmp_path_factory):
    import os

    from repro.machine.replay import reset_default_store

    root = tmp_path_factory.mktemp("tune-service")
    saved = {k: os.environ.get(k)
             for k in ("REPRO_TRACE_STORE_DIR", "REPRO_TUNE_CACHE_DIR")}
    os.environ["REPRO_TRACE_STORE_DIR"] = str(root / "traces")
    os.environ["REPRO_TUNE_CACHE_DIR"] = str(root / "tune_cache")
    reset_default_store()
    try:
        with BackgroundServer(cache=False) as srv:
            yield srv
    finally:
        for key, value in saved.items():
            if value is None:
                os.environ.pop(key, None)
            else:
                os.environ[key] = value
        reset_default_store()


@pytest.fixture()
def client(server):
    with ServiceClient(server.url) as c:
        yield c


class TestServedTune:
    def test_round_trip_finds_padding(self, client):
        body = client.tune(
            "transpose",
            shape={"w": 4, "d": 2, "m": 8},
            latencies=[3, 9],
        )
        assert body["task"] == "transpose"
        assert body["certificate"] == "conflict-free"
        assert body["equivalent"] is True
        assert body["best"]["extra"]["shared_excess_slots"] == 0
        assert body["baseline"]["extra"]["shared_excess_slots"] > 0
        assert body["improvement"] > 1.0
        assert "cache" in body

    def test_served_matches_in_process(self, client):
        from repro.tuner import tune

        served = client.tune(
            "sum", shape={"n": 256, "w": 8}, latencies=[4],
            strategy="greedy", budget=6, seed=1,
        )
        local = tune("sum", shape={"n": 256, "w": 8}, latencies=(4,),
                     strategy="greedy", budget=6, seed=1, cache=False)
        assert served["best"]["config"] == local.best.config
        assert served["best"]["cost"] == local.best.cost
        assert served["evaluations"] == local.evaluations

    def test_bad_request_is_400(self, client):
        with pytest.raises(ServiceError) as err:
            client.tune("fft")
        assert err.value.status == 400
        assert err.value.code == "invalid_param"

    def test_library_config_error_maps_to_400(self, client):
        # Passes the protocol caps but fails the task's own check
        # (n not a multiple of w): the oracle converts the library's
        # ConfigurationError into a structured 400.
        with pytest.raises(ServiceError) as err:
            client.tune("permutation", shape={"n": 7, "w": 4},
                        latencies=[4])
        assert err.value.status == 400
        assert err.value.code == "invalid_param"

    def test_metrics_count_tune_requests(self, client):
        client.tune("sum", shape={"n": 128, "w": 4}, latencies=[4],
                    strategy="random", budget=3)
        rows = client.metrics()["requests"]
        assert rows["/v1/tune"]["200"] >= 1
