"""Micro-batcher semantics under an injected manual clock.

No real sleeping and no timing-dependent assertions: the tests drive
the batching window, timeouts, and drain by advancing a
:class:`~repro.service.clock.ManualClock` explicitly (the pattern
documented in CONTRIBUTING.md).
"""

import asyncio

import pytest

from repro.service.batcher import MicroBatcher, Overloaded, RequestTimeout
from repro.service.clock import ManualClock
from repro.service.metrics import ServiceMetrics


class Recorder:
    """An evaluate function that records batches; optionally gated."""

    def __init__(self, gate: "asyncio.Event | None" = None):
        self.batches: list[list] = []
        self.gate = gate

    async def __call__(self, payloads: list) -> list:
        self.batches.append(list(payloads))
        if self.gate is not None:
            await self.gate.wait()
        return [f"r:{p}" for p in payloads]


def run(coro):
    return asyncio.run(coro)


def make(evaluate, clock, **kwargs):
    defaults = dict(max_batch_size=4, max_wait_s=1.0, max_queue=8,
                    timeout_s=100.0, metrics=ServiceMetrics(clock))
    defaults.update(kwargs)
    return MicroBatcher(evaluate, clock=clock, **defaults)


class TestWindow:
    def test_window_closes_when_full_without_time_passing(self):
        async def main():
            clock = ManualClock()
            rec = Recorder()
            b = make(rec, clock, max_batch_size=2)
            await b.start()
            t1 = asyncio.ensure_future(b.submit("a", key="a"))
            t2 = asyncio.ensure_future(b.submit("b", key="b"))
            await ManualClock.drain()
            assert clock.monotonic() == 0.0
            assert await t1 == "r:a" and await t2 == "r:b"
            assert rec.batches == [["a", "b"]]
            await b.drain()

        run(main())

    def test_window_closes_on_deadline_for_partial_batch(self):
        async def main():
            clock = ManualClock()
            rec = Recorder()
            b = make(rec, clock, max_batch_size=10, max_wait_s=2.0)
            await b.start()
            t1 = asyncio.ensure_future(b.submit("a", key="a"))
            await ManualClock.drain()
            assert rec.batches == []  # window still open
            await clock.advance(1.9)
            assert rec.batches == []
            await clock.advance(0.2)
            assert await t1 == "r:a"
            assert rec.batches == [["a"]]
            await b.drain()

        run(main())

    def test_late_arrival_joins_open_window(self):
        async def main():
            clock = ManualClock()
            rec = Recorder()
            b = make(rec, clock, max_batch_size=10, max_wait_s=2.0)
            await b.start()
            t1 = asyncio.ensure_future(b.submit("a", key="a"))
            await ManualClock.drain()  # t1 enqueued at t=0
            await clock.advance(1.0)
            t2 = asyncio.ensure_future(b.submit("b", key="b"))
            await ManualClock.drain()
            await clock.advance(1.1)  # deadline measured from first arrival
            assert await t1 == "r:a" and await t2 == "r:b"
            assert rec.batches == [["a", "b"]]
            await b.drain()

        run(main())


class TestCoalescing:
    def test_queued_duplicates_share_one_evaluation(self):
        async def main():
            clock = ManualClock()
            rec = Recorder()
            metrics = ServiceMetrics(clock)
            b = make(rec, clock, max_batch_size=10, max_wait_s=1.0,
                     metrics=metrics)
            await b.start()
            tasks = [asyncio.ensure_future(b.submit("hot", key="k"))
                     for _ in range(3)]
            await ManualClock.drain()  # all three enqueued at t=0
            await clock.advance(1.0)
            assert [await t for t in tasks] == ["r:hot"] * 3
            assert rec.batches == [["hot"]]
            assert metrics.coalesced == 2
            await b.drain()

        run(main())

    def test_in_flight_duplicate_joins_running_batch(self):
        async def main():
            clock = ManualClock()
            gate = asyncio.Event()
            rec = Recorder(gate)
            b = make(rec, clock, max_batch_size=1, max_wait_s=0.0)
            await b.start()
            t1 = asyncio.ensure_future(b.submit("hot", key="k"))
            await ManualClock.drain()
            assert rec.batches == [["hot"]]  # dispatched, gate held
            t2 = asyncio.ensure_future(b.submit("hot", key="k"))
            await ManualClock.drain()
            gate.set()
            assert await t1 == "r:hot" and await t2 == "r:hot"
            assert rec.batches == [["hot"]]  # still one evaluation
            await b.drain()

        run(main())

    def test_none_key_never_coalesces(self):
        async def main():
            clock = ManualClock()
            rec = Recorder()
            b = make(rec, clock, max_batch_size=2, max_wait_s=1.0)
            await b.start()
            t1 = asyncio.ensure_future(b.submit("x"))
            t2 = asyncio.ensure_future(b.submit("x"))
            await ManualClock.drain()
            assert await t1 == "r:x" and await t2 == "r:x"
            assert rec.batches == [["x", "x"]]
            await b.drain()

        run(main())


class TestAdmission:
    def test_queue_bound_rejects_with_retry_after(self):
        async def main():
            clock = ManualClock()
            gate = asyncio.Event()
            rec = Recorder(gate)
            metrics = ServiceMetrics(clock)
            b = make(rec, clock, max_batch_size=1, max_wait_s=0.0,
                     max_queue=2, metrics=metrics)
            await b.start()
            t1 = asyncio.ensure_future(b.submit("a", key="a"))
            t2 = asyncio.ensure_future(b.submit("b", key="b"))
            await ManualClock.drain()
            with pytest.raises(Overloaded) as err:
                await b.submit("c", key="c")
            assert err.value.retry_after >= 1
            assert not err.value.draining
            assert metrics.rejected == 1
            gate.set()
            await t1, await t2
            await b.drain()

        run(main())

    def test_timeout_reclaims_slot(self):
        async def main():
            clock = ManualClock()
            gate = asyncio.Event()
            rec = Recorder(gate)
            metrics = ServiceMetrics(clock)
            b = make(rec, clock, max_batch_size=1, max_wait_s=0.0,
                     timeout_s=5.0, metrics=metrics)
            await b.start()
            t1 = asyncio.ensure_future(b.submit("slow", key="k"))
            await ManualClock.drain()
            assert b.pending == 1
            await clock.advance(5.1)
            with pytest.raises(RequestTimeout):
                await t1
            assert b.pending == 0
            assert metrics.timeouts == 1
            gate.set()  # evaluation finishes late; nothing blows up
            await b.drain()

        run(main())


class TestFailures:
    def test_evaluate_exception_fails_every_requester(self):
        async def main():
            clock = ManualClock()

            async def boom(payloads):
                raise ValueError("no oracle today")

            b = make(boom, clock, max_batch_size=2)
            await b.start()
            t1 = asyncio.ensure_future(b.submit("a", key="a"))
            t2 = asyncio.ensure_future(b.submit("b", key="b"))
            await ManualClock.drain()
            with pytest.raises(ValueError):
                await t1
            with pytest.raises(ValueError):
                await t2
            assert b.pending == 0
            await b.drain()

        run(main())

    def test_result_count_mismatch_is_an_error(self):
        async def main():
            clock = ManualClock()

            async def short(payloads):
                return ["only-one"]

            b = make(short, clock, max_batch_size=2)
            await b.start()
            t1 = asyncio.ensure_future(b.submit("a", key="a"))
            t2 = asyncio.ensure_future(b.submit("b", key="b"))
            await ManualClock.drain()
            with pytest.raises(RuntimeError):
                await t1
            with pytest.raises(RuntimeError):
                await t2
            await b.drain()

        run(main())


class TestDrain:
    def test_drain_completes_queued_and_in_flight_work(self):
        async def main():
            clock = ManualClock()
            gate = asyncio.Event()
            rec = Recorder(gate)
            b = make(rec, clock, max_batch_size=1, max_wait_s=10.0)
            await b.start()
            t1 = asyncio.ensure_future(b.submit("a", key="a"))
            await ManualClock.drain()  # "a" dispatched, gate held
            t2 = asyncio.ensure_future(b.submit("b", key="b"))
            await ManualClock.drain()
            drainer = asyncio.ensure_future(b.drain())
            await ManualClock.drain()
            with pytest.raises(Overloaded) as err:
                await b.submit("late", key="late")
            assert err.value.draining
            gate.set()
            await drainer
            assert await t1 == "r:a" and await t2 == "r:b"
            assert rec.batches == [["a"], ["b"]]
            assert b.pending == 0

        run(main())

    def test_drain_on_idle_batcher_returns(self):
        async def main():
            clock = ManualClock()
            b = make(Recorder(), clock)
            await b.start()
            await b.drain()
            assert b.draining

        run(main())
