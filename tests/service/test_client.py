"""Client retry discipline against a fake transport — no sockets, no
real sleeping: the transport scripts responses and the injected sleep
records backoff delays."""

import asyncio

import pytest

from repro.service.client import (
    AsyncServiceClient,
    ServiceClient,
    ServiceError,
    Unavailable,
)

OK_BODY = {"cycles": 42}


class FakeTransport:
    """Scripted `(status, headers, body)` outcomes; exceptions raise."""

    def __init__(self, outcomes):
        self.outcomes = list(outcomes)
        self.calls = []

    def __call__(self, method, path, payload):
        self.calls.append((method, path, payload))
        outcome = self.outcomes.pop(0)
        if isinstance(outcome, Exception):
            raise outcome
        return outcome


def make_client(outcomes, **kwargs):
    sleeps = []
    client = ServiceClient("http://127.0.0.1:1", backoff_s=0.25,
                           sleep=sleeps.append, **kwargs)
    client._once = FakeTransport(outcomes)
    return client, client._once, sleeps


class TestSyncRetries:
    def test_retry_after_header_honored(self):
        client, transport, sleeps = make_client([
            (429, {"retry-after": "3"}, {"error": {"code": "overloaded",
                                                   "message": "busy"}}),
            (200, {}, OK_BODY),
        ])
        assert client.cost("sum", "hmm", {"n": 1024, "p": 64}) == OK_BODY
        assert sleeps == [3.0]
        assert len(transport.calls) == 2

    def test_503_retried_too(self):
        client, _, sleeps = make_client([
            (503, {"retry-after": "1"}, {"error": {"code": "draining",
                                                   "message": "bye"}}),
            (200, {}, OK_BODY),
        ])
        assert client.healthz() == OK_BODY
        assert sleeps == [1.0]

    def test_exponential_backoff_without_header(self):
        client, _, sleeps = make_client([
            (429, {}, {"error": {}}),
            (429, {}, {"error": {}}),
            (200, {}, OK_BODY),
        ])
        assert client.metrics() == OK_BODY
        assert sleeps == [0.25, 0.5]

    def test_connection_refused_retried(self):
        client, _, sleeps = make_client([
            ConnectionRefusedError("nope"),
            (200, {}, OK_BODY),
        ])
        assert client.healthz() == OK_BODY
        assert len(sleeps) == 1

    def test_connection_reset_retried_with_backoff(self):
        # A shard killed mid-request surfaces as ECONNRESET; the client
        # must reconnect and retry with the same backoff as a 429.
        client, transport, sleeps = make_client([
            ConnectionResetError("peer died"),
            ConnectionResetError("still dying"),
            (200, {}, OK_BODY),
        ])
        assert client.healthz() == OK_BODY
        assert sleeps == [0.25, 0.5]
        assert len(transport.calls) == 3

    def test_truncated_body_retried(self):
        # A peer that dies while writing leaves a garbage/truncated JSON
        # body; json.loads raises ValueError inside the transport and
        # the request must be retried, not crash the caller.
        client, transport, sleeps = make_client([
            ValueError("Expecting value: line 1 column 1 (char 0)"),
            (200, {}, OK_BODY),
        ])
        assert client.healthz() == OK_BODY
        assert len(sleeps) == 1
        assert len(transport.calls) == 2

    def test_truncated_body_exhausts_to_unavailable(self):
        client, transport, _ = make_client(
            [ValueError("bad json")] * 2, retries=1,
        )
        with pytest.raises(Unavailable) as err:
            client.healthz()
        assert "2 attempts" in str(err.value)
        assert len(transport.calls) == 2

    def test_exhausted_retries_raise_unavailable(self):
        client, transport, _ = make_client(
            [(429, {}, {"error": {}})] * 3, retries=2,
        )
        with pytest.raises(Unavailable) as err:
            client.healthz()
        assert "3 attempts" in str(err.value)
        assert len(transport.calls) == 3

    def test_400_not_retried(self):
        client, transport, sleeps = make_client([
            (400, {}, {"error": {"code": "invalid_param", "field": "w",
                                 "message": "w must be a power of two"}}),
        ])
        with pytest.raises(ServiceError) as err:
            client.cost("sum", "hmm", {"n": 1024, "p": 64, "w": 5})
        assert err.value.status == 400
        assert err.value.field == "w"
        assert sleeps == []
        assert len(transport.calls) == 1

    def test_rejects_non_http_url(self):
        with pytest.raises(ValueError):
            ServiceClient("https://example.com")
        with pytest.raises(ValueError):
            ServiceClient("not-a-url")


class AsyncFakeTransport:
    def __init__(self, outcomes):
        self.outcomes = list(outcomes)
        self.calls = []

    async def __call__(self, method, path, payload):
        self.calls.append((method, path, payload))
        outcome = self.outcomes.pop(0)
        if isinstance(outcome, Exception):
            raise outcome
        return outcome


class TestAsyncRetries:
    def _make(self, outcomes, **kwargs):
        sleeps = []

        async def sleep(delay):
            sleeps.append(delay)

        client = AsyncServiceClient("http://127.0.0.1:1", backoff_s=0.25,
                                    sleep=sleep, **kwargs)
        client._once = AsyncFakeTransport(outcomes)
        return client, client._once, sleeps

    def test_retry_after_honored(self):
        client, transport, sleeps = self._make([
            (429, {"retry-after": "2"}, {"error": {}}),
            (200, {}, OK_BODY),
        ])
        result = asyncio.run(client.cost("sum", "hmm", {"n": 1024, "p": 64}))
        assert result == OK_BODY
        assert sleeps == [2.0]
        assert len(transport.calls) == 2

    def test_exhausted_retries_raise_unavailable(self):
        client, _, _ = self._make([(503, {}, {"error": {}})] * 2, retries=1)
        with pytest.raises(Unavailable):
            asyncio.run(client.healthz())

    def test_timeout_retried(self):
        client, _, sleeps = self._make([
            asyncio.TimeoutError(),
            (200, {}, OK_BODY),
        ])
        assert asyncio.run(client.healthz()) == OK_BODY
        assert len(sleeps) == 1

    def test_connection_reset_retried(self):
        client, transport, sleeps = self._make([
            ConnectionResetError("peer died"),
            (200, {}, OK_BODY),
        ])
        assert asyncio.run(client.healthz()) == OK_BODY
        assert len(sleeps) == 1
        assert len(transport.calls) == 2
