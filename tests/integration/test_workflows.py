"""Integration tests: multi-kernel workflows, persistent device memory,
paper-scale configurations, and cross-model consistency."""

import numpy as np
import pytest

from repro import DMM, GTX580, HMM, UMM, HMMParams, MachineParams, TraceRecorder
from repro.core.kernels.contiguous import contiguous_copy
from repro.core.kernels.reduction import sum_kernel

from conftest import make_hmm, make_umm


class TestMultiKernelWorkflows:
    def test_copy_then_sum_persists_memory(self, rng):
        """Device memory persists across launches: stage with one kernel,
        reduce with another (the CUDA multi-kernel idiom)."""
        eng = make_umm(width=8, latency=4)
        vals = rng.normal(size=128)
        src = eng.array_from(vals, "src")
        dst = eng.alloc(128, "dst")
        r1 = eng.launch(contiguous_copy(src, dst, 128), 32)
        r2 = eng.launch(sum_kernel(dst, 128), 32)
        assert np.isclose(dst.to_numpy()[0], vals.sum())
        assert r1.cycles > 0 and r2.cycles > 0

    def test_pipeline_sum_of_prefix(self, rng):
        """Chain library operations through host round-trips: scan, then
        sort the scan, then sum — values stay consistent throughout."""
        machine = HMM(HMMParams(num_dmms=4, width=8, global_latency=16))
        vals = rng.integers(-3, 7, 200).astype(float)
        scanned, _ = machine.prefix_sums(vals, 64)
        assert np.allclose(scanned, np.cumsum(vals))
        sorted_, _ = machine.sort(scanned, 64)
        assert np.allclose(sorted_, np.sort(scanned))
        total, _ = machine.sum(sorted_, 64)
        assert np.isclose(total, scanned.sum())

    def test_convolve_then_match(self, rng):
        """Smooth a signal, then search it for a motif — two different
        kernels on one machine spec."""
        machine = HMM(HMMParams(num_dmms=4, width=8, global_latency=32))
        window = np.ones(4) / 4
        signal = rng.normal(size=103)
        smooth, _ = machine.convolve(window, signal, 64)
        assert np.allclose(smooth, np.correlate(signal, window, "valid"))
        motif = smooth[10:14].copy()
        dist, _ = machine.approximate_match(motif, smooth, 64)
        assert dist[13] == 0.0  # the motif matches itself exactly


class TestPaperScale:
    def test_gtx580_sum(self, rng):
        """The paper's flagship machine at a realistic launch shape."""
        machine = HMM(GTX580)
        vals = rng.normal(size=1 << 14)
        total, report = machine.sum(vals, 4096)
        assert np.isclose(total, vals.sum())
        # 16 DMMs x 256 threads = 8 warps per DMM.
        assert report.num_warps == 128
        # Bandwidth floor: 16384/32 = 512 slots minimum through global.
        assert report.cycles >= 512

    def test_gtx580_convolution(self, rng):
        machine = HMM(GTX580)
        x = rng.normal(size=32)
        y = rng.normal(size=(1 << 12) + 31)
        z, report = machine.convolve(x, y, 2048)
        assert np.allclose(z, np.correlate(y, x, "valid"))

    def test_gtx580_thread_cap(self, rng):
        machine = HMM(GTX580)
        from repro.errors import ConfigurationError

        with pytest.raises(ConfigurationError):
            machine.sum(rng.normal(size=64), GTX580.max_threads() + 16)


class TestCrossModelConsistency:
    """The same algorithm on different machines must agree on values,
    differing only in time — the separation of function and cost that
    makes the simulator trustworthy."""

    def test_all_machines_same_sum(self, rng):
        vals = rng.normal(size=333)
        results = [
            DMM(MachineParams(width=8, latency=7)).sum(vals, 32)[0],
            UMM(MachineParams(width=16, latency=3)).sum(vals, 64)[0],
            HMM(HMMParams(num_dmms=4, width=8, global_latency=50)).sum(vals, 48)[0],
            HMM(HMMParams(num_dmms=2, width=4, global_latency=2)).sum_flat(vals, 16)[0],
        ]
        for r in results:
            assert np.isclose(r, vals.sum())

    def test_all_machines_same_convolution(self, rng):
        x = rng.normal(size=5)
        y = rng.normal(size=84)
        ref = np.correlate(y, x, "valid")
        for z in (
            DMM(MachineParams(width=4, latency=2)).convolve(x, y, 20)[0],
            UMM(MachineParams(width=8, latency=9)).convolve(x, y, 160)[0],
            HMM(HMMParams(num_dmms=4, width=4, global_latency=30)).convolve(x, y, 40)[0],
        ):
            assert np.allclose(z, ref)

    def test_latency_never_changes_values(self, rng):
        """Sweeping l changes time, never results."""
        vals = rng.normal(size=100)
        outs = []
        cycles = []
        for l in (1, 10, 100):
            machine = HMM(HMMParams(num_dmms=2, width=4, global_latency=l))
            out, report = machine.prefix_sums(vals, 16)
            outs.append(out)
            cycles.append(report.cycles)
        assert np.allclose(outs[0], outs[1]) and np.allclose(outs[1], outs[2])
        assert cycles[0] < cycles[1] < cycles[2]

    def test_deterministic_across_runs(self, rng):
        """Identical inputs give identical cycles AND identical traces."""
        vals = rng.normal(size=128)

        def run():
            tr = TraceRecorder()
            machine = HMM(HMMParams(num_dmms=4, width=8, global_latency=20))
            total, report = machine.sum(vals, 64, trace=tr)
            return total, report.cycles, [
                (r.warp_id, r.unit, r.start, r.slots) for r in tr.records
            ]

        first = run()
        second = run()
        assert first == second
