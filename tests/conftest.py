"""Shared fixtures and helpers for the test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.machine.engine import MachineEngine
from repro.machine.hmm import HMMEngine
from repro.machine.policy import DMMBankPolicy, UMMGroupPolicy
from repro.params import HMMParams, MachineParams


@pytest.fixture
def rng() -> np.random.Generator:
    """Deterministic RNG for reproducible tests."""
    return np.random.default_rng(20130520)  # IPDPSW 2013


def make_dmm(width: int = 4, latency: int = 5, **kw) -> MachineEngine:
    """A fresh flat DMM engine."""
    return MachineEngine(
        MachineParams(width=width, latency=latency), DMMBankPolicy(), name="dmm", **kw
    )


def make_umm(width: int = 4, latency: int = 5, **kw) -> MachineEngine:
    """A fresh flat UMM engine."""
    return MachineEngine(
        MachineParams(width=width, latency=latency), UMMGroupPolicy(), name="umm", **kw
    )


def make_hmm(
    num_dmms: int = 2,
    width: int = 4,
    global_latency: int = 5,
    shared_latency: int = 1,
    **kw,
) -> HMMEngine:
    """A fresh HMM engine."""
    return HMMEngine(
        HMMParams(
            num_dmms=num_dmms,
            width=width,
            global_latency=global_latency,
            shared_latency=shared_latency,
        ),
        **kw,
    )
