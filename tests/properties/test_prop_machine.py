"""Property-based tests of the simulation substrate."""

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.machine.banks import bank_histogram, conflict_degree, group_count
from repro.machine.ops import AccessKind
from repro.machine.pipeline import PipelinedMemoryUnit
from repro.machine.policy import DMMBankPolicy, UMMGroupPolicy

widths = st.sampled_from([1, 2, 4, 8, 16, 32])
addr_arrays = st.lists(st.integers(0, 1023), min_size=1, max_size=32).map(
    lambda xs: np.array(xs, dtype=np.int64)
)


class TestPolicyInvariants:
    @given(addrs=addr_arrays, w=widths)
    def test_conflict_degree_bounds(self, addrs, w):
        """1 <= degree <= number of distinct addresses (non-empty)."""
        deg = conflict_degree(addrs, w)
        distinct = np.unique(addrs).size
        assert 1 <= deg <= distinct
        assert deg <= -(-distinct // 1)

    @given(addrs=addr_arrays, w=widths)
    def test_group_count_bounds(self, addrs, w):
        g = group_count(addrs, w)
        distinct = np.unique(addrs).size
        assert 1 <= g <= distinct

    @given(addrs=addr_arrays, w=widths)
    def test_permutation_invariance(self, addrs, w):
        """Slot counts depend only on the address set."""
        rng = np.random.default_rng(0)
        shuffled = rng.permutation(addrs)
        assert conflict_degree(addrs, w) == conflict_degree(shuffled, w)
        assert group_count(addrs, w) == group_count(shuffled, w)

    @given(addrs=addr_arrays, w=widths)
    def test_duplicates_never_increase_cost(self, addrs, w):
        doubled = np.concatenate([addrs, addrs])
        assert conflict_degree(doubled, w) == conflict_degree(addrs, w)
        assert group_count(doubled, w) == group_count(addrs, w)

    @given(addrs=addr_arrays, w=widths)
    def test_histogram_totals_distinct_addresses(self, addrs, w):
        hist = bank_histogram(addrs, w)
        assert hist.sum() == np.unique(addrs).size

    @given(addrs=addr_arrays, w=widths)
    def test_width_one_degenerates(self, addrs, w):
        """At w = 1 every distinct address is its own slot on the DMM
        and its own group on the UMM."""
        distinct = np.unique(addrs).size
        assert conflict_degree(addrs, 1) == distinct
        assert group_count(addrs, 1) == distinct

    @given(addrs=addr_arrays, w=widths)
    def test_group_count_at_least_span_over_width(self, addrs, w):
        """g groups must cover the address span: g >= span/w bound."""
        span_groups = addrs.max() // w - addrs.min() // w + 1
        assert group_count(addrs, w) <= span_groups


class TestPipelineInvariants:
    @given(
        latency=st.integers(1, 64),
        transactions=st.lists(
            st.tuples(st.integers(0, 100), addr_arrays), min_size=1, max_size=12
        ),
    )
    @settings(max_examples=50, deadline=None)
    def test_timing_monotone_and_consistent(self, latency, transactions):
        unit = PipelinedMemoryUnit("u", 8, latency, UMMGroupPolicy())
        prev_start = -1
        for ready, addrs in transactions:
            issue = unit.issue(ready, addrs, AccessKind.READ)
            # Port never travels back in time.
            assert issue.start >= prev_start
            assert issue.start >= ready
            # Completion arithmetic.
            assert issue.complete == issue.start + issue.slots - 1 + latency - 1
            assert issue.next_ready == issue.complete + 1
            prev_start = issue.start

    @given(latency=st.integers(1, 64), addrs=addr_arrays)
    @settings(max_examples=50, deadline=None)
    def test_unpipelined_never_faster(self, latency, addrs):
        fast = PipelinedMemoryUnit("f", 8, latency, DMMBankPolicy())
        slow = PipelinedMemoryUnit("s", 8, latency, DMMBankPolicy(), pipelined=False)
        f_last = s_last = 0
        for _ in range(4):
            f_last = fast.issue(0, addrs, AccessKind.READ).complete
            s_last = slow.issue(0, addrs, AccessKind.READ).complete
        assert s_last >= f_last

    @given(addrs=addr_arrays, w=widths, latency=st.integers(1, 32))
    @settings(max_examples=50, deadline=None)
    def test_slots_match_policy(self, addrs, w, latency):
        unit = PipelinedMemoryUnit("u", w, latency, DMMBankPolicy())
        issue = unit.issue(0, addrs, AccessKind.WRITE)
        assert issue.slots == conflict_degree(addrs, w)


class TestTraceInvariants:
    """Invariants tying the trace to the unit statistics and makespan."""

    @given(
        n=st.integers(4, 256),
        p=st.integers(1, 64),
        l=st.integers(1, 32),
        stride=st.integers(1, 9),
    )
    @settings(max_examples=30, deadline=None)
    def test_trace_consistency(self, n, p, l, stride):
        from repro.machine.engine import MachineEngine
        from repro.machine.trace import (
            TraceRecorder,
            port_utilization,
            slots_histogram,
        )
        from repro.params import MachineParams
        from repro.core.kernels.contiguous import strided_read

        eng = MachineEngine(
            MachineParams(width=8, latency=l), UMMGroupPolicy()
        )
        a = eng.alloc(n)
        tr = TraceRecorder()
        report = eng.launch(strided_read(a, n, stride), p, trace=tr)
        stats = report.stats_for("mem")

        # Trace totals match the unit statistics exactly.
        assert len(tr.records) == stats.transactions
        assert sum(r.slots for r in tr.records) == stats.slots
        hist = slots_histogram(tr.records, "mem")
        assert sum(hist.values()) == stats.transactions
        assert sum(k * v for k, v in hist.items()) == stats.slots

        # Port utilization is a fraction; makespan covers completions.
        util = port_utilization(tr.records, "mem", report.cycles)
        assert 0.0 <= util <= 1.0
        assert tr.makespan() <= report.cycles
        # No two transactions overlap on the issue port.
        intervals = sorted(
            (r.start, r.start + r.slots) for r in tr.records
        )
        for (s1, e1), (s2, _e2) in zip(intervals, intervals[1:]):
            assert s2 >= e1
