"""Property-based tests of the conflict-free oblivious kernel suite.

Two families of properties:

* **Correctness** — over randomized sizes, widths and data, the
  conflict-free kernels agree with ``numpy`` ground truth.
* **Obliviousness** — for a fixed launch shape, the recorded access
  stream is byte-identical across distinct random inputs (the property
  replay eligibility and the tuner certificate rest on).
"""

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.analysis.certify import conflict_violations, trace_signature
from repro.machine.trace import TraceRecorder
from repro.core.kernels.conflict_free import (
    flat_cf_merge,
    flat_cf_permutation,
    flat_cf_sort,
    generalized_permutation_schedule,
)

from conftest import make_dmm

widths = st.sampled_from([2, 4, 8])
sizes = st.integers(1, 96)
seeds = st.integers(0, 2**32 - 1)
fused = st.booleans()


def _data(seed, n):
    return np.random.default_rng(seed).standard_normal(n)


class TestCorrectness:
    @settings(max_examples=30, deadline=None)
    @given(n=sizes, w=widths, seed=seeds, fused=fused)
    def test_sort_matches_numpy(self, n, w, seed, fused):
        vals = _data(seed, n)
        out, report = flat_cf_sort(make_dmm(width=w), vals, 4 * w,
                                   fused=fused)
        assert np.array_equal(out, np.sort(vals))
        assert report.conflict_free()

    @settings(max_examples=30, deadline=None)
    @given(na=sizes, nb=sizes, w=widths, seed=seeds, fused=fused)
    def test_merge_matches_numpy(self, na, nb, w, seed, fused):
        rng = np.random.default_rng(seed)
        a = np.sort(rng.standard_normal(na))
        b = np.sort(rng.standard_normal(nb))
        out, report = flat_cf_merge(make_dmm(width=w), a, b, 4 * w,
                                    fused=fused)
        assert np.array_equal(out, np.sort(np.concatenate([a, b])))
        assert report.conflict_free()

    @settings(max_examples=30, deadline=None)
    @given(n=sizes, w=widths, seed=seeds)
    def test_permutation_routes_and_is_conflict_free(self, n, w, seed):
        rng = np.random.default_rng(seed)
        vals = rng.standard_normal(n)
        perm = rng.permutation(n).astype(np.int64)
        out, report = flat_cf_permutation(make_dmm(width=w), vals, perm,
                                          4 * w)
        assert np.array_equal(out[perm], vals)
        assert report.conflict_free()

    @settings(max_examples=40, deadline=None)
    @given(n=sizes, w=widths, seed=seeds)
    def test_generalized_schedule_is_degree_one(self, n, w, seed):
        perm = np.random.default_rng(seed).permutation(n).astype(np.int64)
        sched = generalized_permutation_schedule(perm, w)
        live_all = sched[sched < n]
        assert np.array_equal(np.sort(live_all), np.arange(n))
        for rnd in sched:
            live = rnd[rnd < n]
            assert np.unique(live % w).size == live.size
            assert np.unique(perm[live] % w).size == live.size


class TestObliviousness:
    def _signature(self, kernel, seed):
        trace = TraceRecorder()
        kernel(np.random.default_rng(seed), trace)
        excess, _ = conflict_violations(trace, 8)
        assert excess == 0
        return trace_signature(trace)

    @settings(max_examples=15, deadline=None)
    @given(n=st.integers(2, 96), seed_a=seeds, seed_b=seeds,
           fused=fused)
    def test_sort_stream_is_data_independent(self, n, seed_a, seed_b,
                                             fused):
        def kernel(rng, trace):
            flat_cf_sort(make_dmm(width=8), rng.standard_normal(n), 16,
                         fused=fused, trace=trace)

        assert (self._signature(kernel, seed_a)
                == self._signature(kernel, seed_b))

    @settings(max_examples=15, deadline=None)
    @given(na=st.integers(1, 48), nb=st.integers(1, 48),
           seed_a=seeds, seed_b=seeds)
    def test_merge_stream_is_data_independent(self, na, nb, seed_a,
                                              seed_b):
        def kernel(rng, trace):
            a = np.sort(rng.standard_normal(na))
            b = np.sort(rng.standard_normal(nb))
            flat_cf_merge(make_dmm(width=8), a, b, 16, trace=trace)

        assert (self._signature(kernel, seed_a)
                == self._signature(kernel, seed_b))

    @settings(max_examples=15, deadline=None)
    @given(n=st.integers(1, 96), perm_seed=seeds, seed_a=seeds,
           seed_b=seeds)
    def test_permutation_stream_depends_only_on_perm(self, n, perm_seed,
                                                     seed_a, seed_b):
        perm = np.random.default_rng(perm_seed).permutation(n).astype(
            np.int64)

        def kernel(rng, trace):
            flat_cf_permutation(make_dmm(width=8), rng.standard_normal(n),
                                perm, 16, trace=trace)

        assert (self._signature(kernel, seed_a)
                == self._signature(kernel, seed_b))
