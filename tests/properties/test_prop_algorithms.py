"""Property-based tests of the algorithm kernels.

Each algorithm is checked against its numpy reference on randomized
problem shapes and thread counts, plus the universal timing invariants:
measured time respects every Table II limitation that applies, and the
contiguous kernels stay conflict-free.
"""

import numpy as np
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.analysis.lower_bounds import CONV_BOUNDS, SUM_BOUNDS
from repro.analysis.terms import Params
from repro.core.kernels.hmm_conv import hmm_convolution
from repro.core.kernels.hmm_sum import hmm_sum
from repro.core.kernels.prefix import hmm_prefix_sums
from repro.core.kernels.permutation import (
    conflict_free_permutation_schedule,
    permutation_kernel,
)
from repro.core.machines import (
    run_flat_convolution,
    run_flat_prefix_sums,
    run_flat_sum,
)
from repro.core.pram import PRAM

import sys
import pathlib

sys.path.insert(0, str(pathlib.Path(__file__).resolve().parent.parent))
from conftest import make_dmm, make_hmm, make_umm  # noqa: E402

lenient = settings(
    max_examples=25,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)

values_strategy = st.lists(
    st.integers(-8, 8), min_size=1, max_size=300
).map(lambda xs: np.array(xs, dtype=np.float64))


class TestSumProperties:
    @given(
        vals=values_strategy,
        p=st.integers(1, 128),
        w=st.sampled_from([2, 4, 8]),
        l=st.integers(1, 40),
    )
    @lenient
    def test_flat_sum_value_and_bounds(self, vals, p, w, l):
        eng = make_umm(width=w, latency=l)
        total, report = run_flat_sum(eng, vals, p)
        assert np.isclose(total, vals.sum())
        if vals.size > 1:
            q = Params(n=vals.size, p=p, w=w, l=l)
            bound = max(f(q) for f in SUM_BOUNDS["umm"].values())
            assert report.cycles >= 0.99 * bound

    @given(
        vals=values_strategy,
        p=st.integers(1, 64),
        d=st.sampled_from([1, 2, 4]),
        l=st.integers(1, 40),
    )
    @lenient
    def test_hmm_sum_value_and_bounds(self, vals, p, d, l):
        eng = make_hmm(num_dmms=d, width=4, global_latency=l)
        total, report = hmm_sum(eng, vals, p)
        assert np.isclose(total, vals.sum())
        if vals.size > 1:
            q = Params(n=vals.size, p=p, w=4, l=l, d=d)
            bound = max(f(q) for f in SUM_BOUNDS["hmm"].values())
            assert report.cycles >= 0.99 * bound


class TestPrefixProperties:
    @given(vals=values_strategy, p=st.integers(1, 64))
    @lenient
    def test_flat_scan_matches_cumsum(self, vals, p):
        out, _ = run_flat_prefix_sums(make_umm(width=4, latency=3), vals, p)
        assert np.allclose(out, np.cumsum(vals))

    @given(vals=values_strategy, p=st.integers(2, 64), d=st.sampled_from([1, 2, 4]))
    @lenient
    def test_hmm_scan_matches_cumsum(self, vals, p, d):
        eng = make_hmm(num_dmms=d, width=4, global_latency=7)
        out, _ = hmm_prefix_sums(eng, vals, p)
        assert np.allclose(out, np.cumsum(vals))


class TestConvolutionProperties:
    conv_shapes = st.tuples(
        st.integers(1, 12), st.integers(1, 80)
    ).filter(lambda t: t[0] <= t[1])

    @given(shape=conv_shapes, p=st.integers(1, 128), seed=st.integers(0, 999))
    @lenient
    def test_flat_conv_matches_numpy(self, shape, p, seed):
        k, n = shape
        rng = np.random.default_rng(seed)
        x = rng.integers(-4, 5, k).astype(float)
        y = rng.integers(-4, 5, n + k - 1).astype(float)
        z, report = run_flat_convolution(make_umm(width=4, latency=3), x, y, p)
        assert np.allclose(z, np.correlate(y, x, "valid"))
        q = Params(n=n, k=k, p=p, w=4, l=3)
        bound = max(f(q) for f in CONV_BOUNDS["umm"].values())
        assert report.cycles >= 0.99 * bound

    @given(
        shape=conv_shapes,
        p=st.integers(2, 64),
        d=st.sampled_from([1, 2, 4]),
        seed=st.integers(0, 999),
    )
    @lenient
    def test_hmm_conv_matches_numpy(self, shape, p, d, seed):
        k, n = shape
        rng = np.random.default_rng(seed)
        x = rng.integers(-4, 5, k).astype(float)
        y = rng.integers(-4, 5, n + k - 1).astype(float)
        eng = make_hmm(num_dmms=d, width=4, global_latency=5)
        z, _ = hmm_convolution(eng, x, y, p)
        assert np.allclose(z, np.correlate(y, x, "valid"))


class TestPermutationProperties:
    @given(
        rounds=st.integers(1, 16),
        w=st.sampled_from([2, 4, 8]),
        seed=st.integers(0, 999),
    )
    @lenient
    def test_schedule_decomposition(self, rounds, w, seed):
        """Any permutation of n = rounds*w cells decomposes into
        conflict-free rounds covering each element exactly once."""
        n = rounds * w
        perm = np.random.default_rng(seed).permutation(n)
        sched = conflict_free_permutation_schedule(perm, w)
        assert sorted(sched.ravel().tolist()) == list(range(n))
        for row in sched:
            assert np.unique(row % w).size == w
            assert np.unique(perm[row] % w).size == w

    @given(
        rounds=st.integers(1, 8),
        w=st.sampled_from([2, 4]),
        seed=st.integers(0, 999),
    )
    @lenient
    def test_kernel_applies_permutation_conflict_free(self, rounds, w, seed):
        n = rounds * w
        perm = np.random.default_rng(seed).permutation(n)
        eng = make_dmm(width=w, latency=2)
        a = eng.array_from(np.arange(n, dtype=float))
        b = eng.alloc(n)
        sched = conflict_free_permutation_schedule(perm, w)
        report = eng.launch(permutation_kernel(a, b, perm, sched), w)
        expected = np.empty(n)
        expected[perm] = np.arange(n)
        assert np.allclose(b.to_numpy(), expected)
        assert report.conflict_free()


class TestPRAMProperties:
    @given(vals=values_strategy, p=st.integers(1, 256))
    @lenient
    def test_sum(self, vals, p):
        r = PRAM(p).sum(vals)
        assert np.isclose(r.value, vals.sum())
        assert r.work == vals.size - 1
        # Speed-up and reduction limitations.
        assert r.cycles >= (vals.size - 1) / p - 1
        if vals.size > 1:
            assert r.cycles >= np.log2(min(p, vals.size)) - 1

    @given(shape=TestConvolutionProperties.conv_shapes, p=st.integers(1, 256),
           seed=st.integers(0, 99))
    @lenient
    def test_convolution(self, shape, p, seed):
        k, n = shape
        rng = np.random.default_rng(seed)
        x = rng.normal(size=k)
        y = rng.normal(size=n + k - 1)
        r = PRAM(p).convolution(x, y)
        assert np.allclose(r.value, np.correlate(y, x, "valid"))


class TestSortingProperties:
    @given(vals=values_strategy, p=st.integers(1, 64))
    @lenient
    def test_flat_sort_matches_numpy(self, vals, p):
        from repro.core.kernels.sorting import flat_bitonic_sort

        out, report = flat_bitonic_sort(make_umm(width=4, latency=2), vals, p)
        assert np.allclose(out, np.sort(vals))

    @given(vals=values_strategy, p=st.integers(2, 64), d=st.sampled_from([1, 2, 4]))
    @lenient
    def test_hmm_sort_matches_numpy(self, vals, p, d):
        from repro.core.kernels.sorting import hmm_bitonic_sort

        eng = make_hmm(num_dmms=d, width=4, global_latency=3)
        out, _ = hmm_bitonic_sort(eng, vals, p)
        assert np.allclose(out, np.sort(vals))


class TestStringMatchingProperties:
    @given(
        m=st.integers(1, 6),
        n=st.integers(1, 60),
        p=st.integers(1, 32),
        seed=st.integers(0, 999),
    )
    @lenient
    def test_flat_matches_reference(self, m, n, p, seed):
        from repro.core.kernels.string_matching import (
            flat_approximate_match,
            reference_approximate_match,
        )

        rng = np.random.default_rng(seed)
        pv = rng.integers(0, 3, m).astype(float)
        tv = rng.integers(0, 3, n).astype(float)
        out, _ = flat_approximate_match(make_umm(width=4, latency=2), pv, tv, p)
        assert np.allclose(out, reference_approximate_match(pv, tv))

    @given(
        m=st.integers(1, 5),
        n=st.integers(1, 60),
        p=st.integers(2, 32),
        d=st.sampled_from([2, 4, 8]),
        seed=st.integers(0, 999),
    )
    @lenient
    def test_hmm_chunking_matches_reference(self, m, n, p, d, seed):
        """The 2m-overlap warm-up must be exact for every chunking."""
        from repro.core.kernels.string_matching import (
            hmm_approximate_match,
            reference_approximate_match,
        )

        rng = np.random.default_rng(seed)
        pv = rng.integers(0, 3, m).astype(float)
        tv = rng.integers(0, 3, n).astype(float)
        eng = make_hmm(num_dmms=d, width=4, global_latency=3)
        out, _ = hmm_approximate_match(eng, pv, tv, p)
        assert np.allclose(out, reference_approximate_match(pv, tv))


class TestMatvecProperties:
    @given(
        m=st.integers(1, 24),
        n=st.integers(1, 24),
        pw=st.integers(1, 8),
        seed=st.integers(0, 999),
    )
    @lenient
    def test_flat_matvec(self, m, n, pw, seed):
        from repro.core.kernels.matvec import flat_matvec

        rng = np.random.default_rng(seed)
        A = rng.integers(-3, 4, (m, n)).astype(float)
        x = rng.integers(-3, 4, n).astype(float)
        y, _ = flat_matvec(make_umm(width=4, latency=2), A, x, pw * 4)
        assert np.allclose(y, A @ x)

    @given(
        m=st.integers(1, 24),
        n=st.integers(1, 24),
        d=st.sampled_from([1, 2, 4]),
        seed=st.integers(0, 999),
    )
    @lenient
    def test_hmm_matvec(self, m, n, d, seed):
        from repro.core.kernels.matvec import hmm_matvec

        rng = np.random.default_rng(seed)
        A = rng.integers(-3, 4, (m, n)).astype(float)
        x = rng.integers(-3, 4, n).astype(float)
        eng = make_hmm(num_dmms=d, width=4, global_latency=3)
        y, _ = hmm_matvec(eng, A, x, d * 8)
        assert np.allclose(y, A @ x)


class TestHistogramProperties:
    @given(
        n=st.integers(1, 200),
        bins=st.integers(1, 12),
        d=st.sampled_from([1, 2, 4]),
        seed=st.integers(0, 999),
    )
    @lenient
    def test_exact_counts(self, n, bins, d, seed):
        from repro.core.kernels.histogram import hmm_histogram

        rng = np.random.default_rng(seed)
        vals = rng.integers(0, bins, n).astype(float)
        eng = make_hmm(num_dmms=d, width=4, global_latency=3)
        counts, _ = hmm_histogram(eng, vals, bins)
        assert np.allclose(counts, np.bincount(vals.astype(int),
                                               minlength=bins))


class TestCompactionProperties:
    @given(
        n=st.integers(1, 200),
        p=st.integers(2, 32),
        d=st.sampled_from([1, 2, 4]),
        seed=st.integers(0, 999),
    )
    @lenient
    def test_matches_boolean_indexing(self, n, p, d, seed):
        from repro.core.kernels.compaction import hmm_compact

        rng = np.random.default_rng(seed)
        vals = rng.normal(size=n)
        keep = rng.random(n) < rng.random()
        eng = make_hmm(num_dmms=d, width=4, global_latency=3)
        out, _ = hmm_compact(eng, vals, keep, p)
        assert np.allclose(out, vals[keep])


class TestBFSProperties:
    @given(
        n=st.integers(2, 24),
        p_edge=st.floats(0.05, 0.6),
        seed=st.integers(0, 99),
        src_frac=st.floats(0, 0.999),
    )
    @settings(max_examples=15, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    def test_matches_networkx(self, n, p_edge, seed, src_frac):
        import networkx as nx

        from repro.core.kernels.bfs import adjacency_from_graph, hmm_bfs

        graph = nx.erdos_renyi_graph(n, p_edge, seed=seed)
        adj = adjacency_from_graph(graph)
        src = int(src_frac * n)
        factory = lambda: make_hmm(num_dmms=2, width=4, global_latency=4)
        dist, _ = hmm_bfs(factory, adj, src, 8)
        nodes = sorted(graph.nodes())
        ref = nx.single_source_shortest_path_length(graph, nodes[src])
        expected = np.full(n, -1)
        for node, d in ref.items():
            expected[nodes.index(node)] = d
        assert np.array_equal(dist, expected)


class TestSpMVProperties:
    @given(
        m=st.integers(1, 20),
        n=st.integers(1, 20),
        density=st.floats(0, 1),
        d=st.sampled_from([1, 2, 4]),
        seed=st.integers(0, 999),
    )
    @lenient
    def test_hmm_spmv(self, m, n, density, d, seed):
        from repro.core.kernels.spmv import hmm_spmv

        rng = np.random.default_rng(seed)
        A = rng.integers(-3, 4, (m, n)).astype(float)
        A *= rng.random((m, n)) < density
        x = rng.integers(-3, 4, n).astype(float)
        eng = make_hmm(num_dmms=d, width=4, global_latency=3)
        y, _ = hmm_spmv(eng, A, x, d * 4)
        assert np.allclose(y, A @ x)


class TestMergeProperties:
    @given(
        na=st.integers(0, 80),
        nb=st.integers(0, 80),
        p=st.integers(1, 48),
        d=st.sampled_from([1, 2, 4]),
        seed=st.integers(0, 999),
    )
    @lenient
    def test_merge_matches_sort(self, na, nb, p, d, seed):
        from repro.core.kernels.merge import flat_merge, hmm_merge

        if na + nb == 0:
            nb = 1
        rng = np.random.default_rng(seed)
        a = np.sort(rng.integers(0, 15, na).astype(float))
        b = np.sort(rng.integers(0, 15, nb).astype(float))
        ref = np.sort(np.concatenate([a, b]))
        out, _ = flat_merge(make_umm(width=4, latency=2), a, b, p)
        assert np.array_equal(out, ref)
        eng = make_hmm(num_dmms=d, width=4, global_latency=3)
        out2, _ = hmm_merge(eng, a, b, max(p, d))
        assert np.array_equal(out2, ref)
