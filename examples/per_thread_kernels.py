"""The per-thread authoring surface (CUDA-style kernels).

The engine natively runs *warp programs* (one yield describes all lanes
at once), but kernels are often easier to think about one thread at a
time.  ``thread_program`` adapts a per-thread generator into a warp
program, running one generator per lane in lockstep — and *checking*
lockstep: divergent lanes raise ``LockstepError`` instead of silently
mis-costing, because the SIMD model has no divergent execution.

Run:  python examples/per_thread_kernels.py
"""

import numpy as np

from repro import HMM, HMMParams, TraceRecorder, thread_program
from repro.errors import LockstepError


def main() -> None:
    rng = np.random.default_rng(9)
    machine = HMM(HMMParams(num_dmms=4, width=8, global_latency=40))
    eng = machine.engine()

    n = 1 << 10
    xs = rng.normal(size=n)
    ys = rng.normal(size=n)
    gx = eng.global_from(xs, "x")
    gy = eng.global_from(ys, "y")
    gout = eng.alloc_global(n, "out")

    # ------------------------------------------------------------------
    # 1. A grid-stride SAXPY, exactly as you would write it in CUDA.
    # ------------------------------------------------------------------
    def saxpy(t):
        i = t.tid
        while i < n:
            a = yield t.read(gx, i)
            b = yield t.read(gy, i)
            yield t.compute(2)  # multiply + add
            yield t.write(gout, i, 2.5 * a + b)
            i += t.num_threads

    report = eng.launch(thread_program(saxpy), 256, label="saxpy")
    assert np.allclose(gout.to_numpy(), 2.5 * xs + ys)
    print(f"per-thread SAXPY over {n} elements: {report.cycles} time units")
    print(f"  (every transaction coalesced: "
          f"{'yes' if report.conflict_free() else 'no'})")
    print()

    # ------------------------------------------------------------------
    # 2. Data-dependent divergence: threads that have nothing to do this
    #    step yield idle() — the per-thread analogue of lane masks.
    # ------------------------------------------------------------------
    gclip = eng.alloc_global(n, "clip")

    def clip_negative(t):
        i = t.tid
        while i < n:
            v = yield t.read(gx, i)
            if v < 0:
                yield t.write(gclip, i, 0.0)
            else:
                yield t.write(gclip, i, v)
            i += t.num_threads

    eng.launch(thread_program(clip_negative), 256, label="clip")
    assert np.allclose(gclip.to_numpy(), np.maximum(xs, 0.0))
    print("data-dependent control flow (clip at zero): correct")
    print()

    # ------------------------------------------------------------------
    # 3. What the adapter protects you from: true lane divergence.
    # ------------------------------------------------------------------
    def divergent(t):
        if t.tid % 2 == 0:
            yield t.read(gx, t.tid)
        else:
            yield t.compute(1)  # half the warp computes instead

    try:
        eng.launch(thread_program(divergent), 8)
    except LockstepError as exc:
        print("divergent kernel rejected, as the SIMD model requires:")
        print(f"  {exc}")
    print()

    # ------------------------------------------------------------------
    # 4. The two surfaces cost identically: the adapter emits the same
    #    transactions the hand-vectorized warp program would.
    # ------------------------------------------------------------------
    def vector_saxpy(warp):
        j = 0
        while j < n:
            idx = j + warp.tids
            mask = idx < n
            a = yield warp.read(gx, np.where(mask, idx, 0), mask=mask)
            b = yield warp.read(gy, np.where(mask, idx, 0), mask=mask)
            yield warp.compute(2)
            yield warp.write(gout, np.where(mask, idx, 0), 2.5 * a + b,
                             mask=mask)
            j += warp.num_threads

    vec_report = eng.launch(vector_saxpy, 256, label="saxpy-vector")
    print(f"hand-vectorized warp program: {vec_report.cycles} time units "
          f"(per-thread adapter: {report.cycles})")
    assert vec_report.cycles == report.cycles


if __name__ == "__main__":
    main()
