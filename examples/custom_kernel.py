"""Writing your own warp program against the engine API.

The library's algorithms are ordinary *warp programs* — generators that
yield memory and compute operations, one SIMD step per yield.  This
example implements a histogram and a dot product from scratch, runs them
on an HMM, and uses the trace tools (timeline, race detector) to debug
a deliberately racy first attempt.

Run:  python examples/custom_kernel.py
"""

import numpy as np

from repro import HMM, HMMParams, TraceRecorder
from repro.core.kernels.reduction import tree_reduce_steps
from repro.machine.ops import BarrierScope


def main() -> None:
    rng = np.random.default_rng(11)
    machine = HMM(HMMParams(num_dmms=4, width=8, global_latency=50))
    eng = machine.engine()

    # ------------------------------------------------------------------
    # Dot product: per-thread partial products in registers, per-DMM
    # tree reduction in shared memory, final combine on DMM(0) — the
    # same skeleton as the paper's Theorem 7.
    # ------------------------------------------------------------------
    n, p = 2048, 128
    xs = rng.normal(size=n)
    ys = rng.normal(size=n)
    gx = eng.global_from(xs, "x")
    gy = eng.global_from(ys, "y")
    partial = eng.alloc_global(4, "partials")
    out = eng.alloc_global(1, "out")
    scratch = eng.alloc_shared_all(p // 4, "scratch")

    def dot_kernel(warp):
        q = warp.threads_in_dmm
        acc = np.zeros(warp.num_lanes)
        rounds = -(-n // warp.num_threads)
        for j in range(rounds):
            idx = j * warp.num_threads + warp.tids
            mask = idx < n
            a = yield warp.read(gx, np.where(mask, idx, 0), mask=mask)
            b = yield warp.read(gy, np.where(mask, idx, 0), mask=mask)
            yield warp.compute(1)
            acc += a * b
        s = scratch[warp.dmm_id]
        yield warp.write(s, warp.local_tids, acc)
        yield warp.sync_dmm()
        yield from tree_reduce_steps(
            warp, s, q, scope=BarrierScope.DMM,
            num_threads=q, tids=warp.local_tids,
        )
        leader = warp.local_tids == 0
        if leader.any():
            v = yield warp.read(s, 0, mask=leader)
            yield warp.write(partial, warp.dmm_id, v, mask=leader)
        yield warp.barrier()
        if warp.dmm_id == 0 and leader.any():
            total = np.zeros(warp.num_lanes)
            for i in range(4):
                v = yield warp.read(partial, i, mask=leader)
                yield warp.compute(1)
                total += v
            yield warp.write(out, 0, total, mask=leader)

    report = eng.launch(dot_kernel, p, label="dot-product")
    got = out.to_numpy()[0]
    print(f"dot product: {got:.4f} (numpy {xs @ ys:.4f}) in "
          f"{report.cycles} time units")
    print(report.summary())
    print()

    # ------------------------------------------------------------------
    # Histogram, first attempt: every thread increments global bins
    # directly.  This races (read-modify-write with no synchronization)
    # AND serializes on hot bins.  The race detector catches it.
    # ------------------------------------------------------------------
    bins = 8
    data = rng.integers(0, bins, 512).astype(float)
    eng2 = machine.engine()
    gdata = eng2.global_from(data, "data")
    ghist = eng2.alloc_global(bins, "hist")
    tr = TraceRecorder()

    def racy_histogram(warp):
        idx = warp.tids
        v = yield warp.read(gdata, idx)
        h = yield warp.read(ghist, v.astype(np.int64))
        yield warp.compute(1)
        yield warp.write(ghist, v.astype(np.int64), h + 1.0)

    eng2.launch(racy_histogram, 512, trace=tr, label="racy-histogram")
    races = tr.detect_races()
    print(f"racy histogram: detector found {len(races)} conflicting "
          f"transaction pairs; totals are wrong: "
          f"{ghist.to_numpy().sum():.0f} != {data.size}")

    # ------------------------------------------------------------------
    # Histogram, done right: per-DMM private histograms in shared
    # memory (bank-conflict-aware), merged through global memory after
    # a device barrier — no races, no hot-bin serialization on the
    # global port.  One warp per DMM: a second warp updating the same
    # private histogram would reintroduce exactly the read-modify-write
    # race the first attempt had.
    # ------------------------------------------------------------------
    eng3 = machine.engine()
    gdata = eng3.global_from(data, "data")
    ghist = eng3.alloc_global(bins, "hist")
    gpart = eng3.alloc_global(4 * bins, "hist.partial")
    shist = eng3.alloc_shared_all(bins, "hist.local")
    tr3 = TraceRecorder()

    def private_histogram(warp):
        s = shist[warp.dmm_id]
        # Zero the private histogram (first warp of each DMM).
        if warp.warp_in_dmm == 0:
            mask = warp.local_tids < bins
            yield warp.write(s, np.where(mask, warp.local_tids, 0),
                             0.0, mask=mask)
        yield warp.sync_dmm()
        # Serial per-thread accumulation: each thread owns a slice of
        # the data and updates the private histogram one item per step.
        share = -(-data.size // warp.num_threads)
        for j in range(share):
            idx = warp.tids * share + j
            mask = idx < data.size
            v = yield warp.read(gdata, np.where(mask, idx, 0), mask=mask)
            bin_idx = v.astype(np.int64)
            # One lane at a time avoids intra-warp lost updates; the
            # model's arbitrary-CRCW write would drop colliding +1s.
            for lane in range(warp.num_lanes):
                lane_mask = mask & (warp.lanes == lane)
                if not lane_mask.any():
                    continue
                h = yield warp.read(s, bin_idx, mask=lane_mask)
                yield warp.compute(1)
                yield warp.write(s, bin_idx, h + 1.0, mask=lane_mask)
        yield warp.sync_dmm()
        # Publish the private histogram.
        if warp.warp_in_dmm == 0:
            mask = warp.local_tids < bins
            v = yield warp.read(s, np.where(mask, warp.local_tids, 0),
                                mask=mask)
            yield warp.write(gpart,
                             np.where(mask, warp.dmm_id * bins + warp.local_tids, 0),
                             v, mask=mask)
        yield warp.barrier()
        # DMM(0) merges the d partial histograms.
        if warp.dmm_id == 0 and warp.warp_in_dmm == 0:
            mask = warp.local_tids < bins
            total = np.zeros(warp.num_lanes)
            for i in range(4):
                v = yield warp.read(
                    gpart, np.where(mask, i * bins + warp.local_tids, 0),
                    mask=mask)
                yield warp.compute(1)
                total += v
            yield warp.write(ghist, np.where(mask, warp.local_tids, 0),
                             total, mask=mask)

    report = eng3.launch(private_histogram, 32, trace=tr3,
                         label="private-histogram")
    got = ghist.to_numpy()
    expected = np.bincount(data.astype(int), minlength=bins).astype(float)
    assert np.allclose(got, expected), (got, expected)
    assert tr3.detect_races() == []
    print(f"private histogram: correct ({got.astype(int).tolist()}), "
          f"race-free, {report.cycles} time units")


if __name__ == "__main__":
    main()
