"""Regenerate the paper's Tables I and II, symbolically and measured.

Prints the closed-form tables, then re-derives each row empirically from
simulator runs at a representative parameter point — the condensed
version of what ``benchmarks/`` does across full sweeps.

Run:  python examples/paper_tables.py
"""

import numpy as np

from repro import DMM, HMM, PRAM, SequentialMachine, UMM, HMMParams, MachineParams
from repro.analysis.lower_bounds import CONV_BOUNDS, SUM_BOUNDS
from repro.analysis.tables import format_grid, render_table1, render_table2
from repro.analysis.terms import Params


def main() -> None:
    rng = np.random.default_rng(3)
    # A paper-shaped point scaled to simulator-friendly size.
    n, k, p, w, l, d = 1 << 13, 16, 1024, 16, 128, 8
    q = Params(n=n, k=k, p=p, w=w, l=l, d=d)

    print(render_table1(q))
    print()
    print(render_table2(q))
    print()

    vals = rng.normal(size=n)
    x = rng.normal(size=k)
    y = rng.normal(size=n + k - 1)

    def machines():
        yield "Sequential", (
            SequentialMachine().sum(vals).cycles,
            SequentialMachine().convolution(x, y).cycles,
            None, None,
        )
        yield "PRAM", (
            PRAM(p).sum(vals).cycles,
            PRAM(p).convolution(x, y).cycles,
            SUM_BOUNDS["pram"], CONV_BOUNDS["pram"],
        )
        flat = UMM(MachineParams(width=w, latency=l))
        yield "DMM and UMM", (
            flat.sum(vals, p)[1].cycles,
            flat.convolve(x, y, p)[1].cycles,
            SUM_BOUNDS["umm"], CONV_BOUNDS["umm"],
        )
        hmm = HMM(HMMParams(num_dmms=d, width=w, global_latency=l))
        yield "HMM", (
            hmm.sum(vals, p)[1].cycles,
            hmm.convolve(x, y, p)[1].cycles,
            SUM_BOUNDS["hmm"], CONV_BOUNDS["hmm"],
        )

    rows = []
    for name, (sum_c, conv_c, sum_b, conv_b) in machines():
        sum_lb = max(f(q) for f in sum_b.values()) if sum_b else float("nan")
        conv_lb = max(f(q) for f in conv_b.values()) if conv_b else float("nan")
        rows.append([
            name,
            str(sum_c),
            f"{sum_c / sum_lb:.1f}x LB" if sum_b else "-",
            str(conv_c),
            f"{conv_c / conv_lb:.1f}x LB" if conv_b else "-",
        ])

    print(f"measured at n={n}, k={k}, p={p}, w={w}, l={l}, d={d}:")
    print(format_grid(
        ["Model", "Sum (measured)", "vs bound", "Convolution (measured)",
         "vs bound"],
        rows,
    ))
    print()
    print("every measurement sits above its Table II bound and within a")
    print("small constant of it - the paper's optimality claims, observed.")


if __name__ == "__main__":
    main()
