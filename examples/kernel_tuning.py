"""Using the models as a GPU kernel performance advisor.

The practical value the paper claims for the DMM/UMM/HMM is that they
predict which memory access patterns a real GPU punishes, *before*
touching hardware.  This example walks the three classic pitfalls and
shows the model quantifying each:

1. uncoalesced global access (stride vs contiguous) — the UMM rule;
2. shared-memory bank conflicts (matrix transpose, padded vs naive) —
   the DMM rule;
3. occupancy: too few threads to hide the global latency.

Run:  python examples/kernel_tuning.py
"""

import numpy as np

from repro import HMM, HMMParams, TraceRecorder
from repro.machine.engine import MachineEngine
from repro.machine.policy import UMMGroupPolicy
from repro.params import MachineParams
from repro.core.kernels.contiguous import contiguous_read, strided_read
from repro.core.kernels.matmul import hmm_transpose


def pitfall_1_coalescing() -> None:
    print("=" * 64)
    print("pitfall 1: uncoalesced global memory access")
    print("=" * 64)
    n, p, w, l = 1 << 14, 512, 32, 200
    eng = MachineEngine(MachineParams(width=w, latency=l), UMMGroupPolicy())
    a = eng.alloc(n)
    good = eng.launch(contiguous_read(a, n), p)
    eng2 = MachineEngine(MachineParams(width=w, latency=l), UMMGroupPolicy())
    b = eng2.alloc(n)
    bad = eng2.launch(strided_read(b, n, w), p)
    print(f"  contiguous read of {n} cells : {good.cycles:7d} time units "
          f"({good.stats_for('mem').slots} pipeline slots)")
    print(f"  stride-{w} read of {n} cells : {bad.cycles:7d} time units "
          f"({bad.stats_for('mem').slots} pipeline slots)")
    print(f"  -> the model charges {bad.cycles / good.cycles:.0f}x for "
          f"touching {w} address groups per warp instead of 1\n")


def pitfall_2_bank_conflicts() -> None:
    print("=" * 64)
    print("pitfall 2: shared-memory bank conflicts (tiled transpose)")
    print("=" * 64)
    rng = np.random.default_rng(0)
    a = rng.normal(size=(64, 64))
    machine = HMM(HMMParams(num_dmms=4, width=16, global_latency=8))
    t_naive, naive = machine.transpose(a, padded=False)
    t_padded, padded = machine.transpose(a, padded=True)
    assert np.allclose(t_naive, a.T) and np.allclose(t_padded, a.T)
    ns = naive.shared_stats()
    ps = padded.shared_stats()
    print(f"  tile stride w   : {naive.cycles:6d} time units, "
          f"{ns.conflicted_transactions} conflicted transactions, "
          f"{ns.excess_slots} wasted slots")
    print(f"  tile stride w+1 : {padded.cycles:6d} time units, "
          f"{ps.conflicted_transactions} conflicted transactions, "
          f"{ps.excess_slots} wasted slots")
    print(f"  -> one extra padding column buys "
          f"{naive.cycles / padded.cycles:.2f}x\n")


def pitfall_3_occupancy() -> None:
    print("=" * 64)
    print("pitfall 3: occupancy - hiding latency with threads")
    print("=" * 64)
    rng = np.random.default_rng(1)
    vals = rng.normal(size=1 << 14)
    machine = HMM(HMMParams(num_dmms=8, width=32, global_latency=400))
    print("  sum of 16384 numbers, d=8 w=32 l=400:")
    prev = None
    for p in (256, 512, 1024, 2048, 4096, 8192):
        _, r = machine.sum(vals, num_threads=p)
        gain = f"  ({prev / r.cycles:.2f}x)" if prev else ""
        marker = "  <- p >= lw/d per DMM" if p >= 400 * 32 // 8 else ""
        print(f"    p={p:5d}: {r.cycles:6d} time units{gain}{marker}")
        prev = r.cycles
    print("  -> returns diminish once p >= lw: the nl/p latency term has")
    print("     sunk below the n/w bandwidth floor (Theorem 7's condition)\n")


def bonus_advisor() -> None:
    print("=" * 64)
    print("bonus: the advisor diagnoses a launch automatically")
    print("=" * 64)
    rng = np.random.default_rng(2)
    from repro.analysis import diagnose

    machine = HMM(HMMParams(num_dmms=4, width=16, global_latency=300))
    # An under-occupied launch of a clean kernel:
    _, report = machine.sum(rng.normal(size=1 << 13), num_threads=128)
    print(diagnose(report, machine.params).render())
    print()
    # A conflicted kernel:
    _, report = machine.transpose(rng.normal(size=(64, 64)), padded=False)
    print(diagnose(report, machine.params).render())
    print()


def bonus_trace_inspection() -> None:
    print("=" * 64)
    print("bonus: inspecting a kernel's pipeline timeline")
    print("=" * 64)
    eng = MachineEngine(MachineParams(width=4, latency=5), UMMGroupPolicy())
    a = eng.alloc(16, "a")
    tr = TraceRecorder()
    pattern = {0: np.array([15, 2, 6, 0]), 1: np.array([8, 9, 10, 11])}

    def prog(warp):
        yield warp.read(a, pattern[warp.warp_id])

    eng.launch(prog, 8, trace=tr)
    print(tr.render_pipeline_timeline("mem", latency=5))
    print("  (the paper's Figure 4: 3 + 1 slots + latency 5 - 1 = 8)\n")


if __name__ == "__main__":
    pitfall_1_coalescing()
    pitfall_2_bank_conflicts()
    pitfall_3_occupancy()
    bonus_advisor()
    bonus_trace_inspection()
