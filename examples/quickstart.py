"""Quickstart: the memory machine models in five minutes.

Builds the paper's three machines, runs the two headline algorithms,
and shows how to read the cost reports.  Run:

    python examples/quickstart.py
"""

import numpy as np

from repro import DMM, GTX580, HMM, UMM, HMMParams, MachineParams


def main() -> None:
    rng = np.random.default_rng(7)

    # ------------------------------------------------------------------
    # 1. A flat machine: the UMM models a GPU's global memory.
    #    Width w = number of memory banks = warp size; latency l.
    # ------------------------------------------------------------------
    umm = UMM(MachineParams(width=32, latency=100))
    values = rng.normal(size=4096)

    total, report = umm.sum(values, num_threads=256)
    print("== sum on the UMM (global memory only, Lemma 5) ==")
    print(f"result: {total:.3f}  (numpy: {values.sum():.3f})")
    print(f"time:   {report.cycles} time units "
          f"(the l·log n term hurts: every tree level pays latency 100)")
    print()

    # ------------------------------------------------------------------
    # 2. The HMM: d streaming multiprocessors with latency-1 shared
    #    memories sharing one latency-l global memory.  Same problem,
    #    same threads - the Theorem 7 algorithm hides the latency.
    # ------------------------------------------------------------------
    hmm = HMM(HMMParams(num_dmms=8, width=32, global_latency=100))
    total, hmm_report = hmm.sum(values, num_threads=256)
    print("== sum on the HMM (Theorem 7) ==")
    print(f"result: {total:.3f}")
    print(f"time:   {hmm_report.cycles} time units "
          f"({report.cycles / hmm_report.cycles:.1f}x faster than the flat UMM)")
    print()

    # The report breaks the cost down per memory unit:
    print(hmm_report.summary())
    print()

    # ------------------------------------------------------------------
    # 3. Direct convolution (Theorem 9): stage into shared memories,
    #    convolve at latency 1, write back coalesced.
    # ------------------------------------------------------------------
    kernel = np.exp(-0.5 * np.linspace(-2, 2, 16) ** 2)
    signal = rng.normal(size=1024 + 15)
    z, conv_report = hmm.convolve(kernel, signal, num_threads=512)
    assert np.allclose(z, np.correlate(signal, kernel, "valid"))
    print("== direct convolution on the HMM (Theorem 9) ==")
    print(f"n=1024, k=16: {conv_report.cycles} time units; global traffic "
          f"{conv_report.stats_for('global').requests} cells "
          f"(linear in n, not n*k - the operands live in shared memory)")
    print()

    # ------------------------------------------------------------------
    # 4. The DMM vs the UMM: same program, different cost rule.
    #    Bank-distinct-but-scattered access is free on the DMM (separate
    #    address lines per bank) and w-fold slow on the UMM (one
    #    broadcast address line) - Figure 1's architectural difference.
    # ------------------------------------------------------------------
    pattern = np.array([0, 33, 66, 99])  # distinct banks, distinct groups

    def scattered(warp):
        yield warp.read(a, pattern[: warp.num_lanes])

    for machine in (DMM(MachineParams(width=4, latency=5)),
                    UMM(MachineParams(width=4, latency=5))):
        eng = machine.engine()
        a = eng.alloc(128, "a")
        r = eng.launch(scattered, 4)
        print(f"scattered access on the {type(machine).__name__}: "
              f"{r.cycles} time units")
    print()

    # ------------------------------------------------------------------
    # 5. The paper's flagship configuration is a preset.
    # ------------------------------------------------------------------
    gtx = HMM(GTX580)
    total, r = gtx.sum(values, num_threads=2048)
    print(f"GTX580 preset (d=16, w=32, l=400): sum of 4096 numbers with "
          f"2048 threads = {r.cycles} time units")


if __name__ == "__main__":
    main()
