"""Document search: fuzzy grep over a noisy log on the GPU model.

Combines three library primitives into a realistic pipeline:

1. ``find_matches`` (approximate string matching, ref [18]) locates a
   query in a corrupted log — transmission noise means exact search
   finds nothing, so we allow edits;
2. ``compact`` (stream compaction over the HMM scan) extracts the hit
   regions' scores;
3. ``histogram`` summarizes the per-position edit distances.

Everything runs on one HMM spec; the final report shows where the time
went per kernel.

Run:  python examples/log_search.py
"""

import numpy as np

from repro import HMM, HMMParams
from repro.core.kernels.string_matching import (
    find_matches,
    hmm_approximate_match,
)


def corrupt(text: str, rate: float, rng) -> str:
    """Flip a fraction of characters to simulate transmission noise."""
    chars = list(text)
    for i in range(len(chars)):
        if rng.random() < rate and chars[i] != " ":
            chars[i] = chr(ord("a") + rng.integers(0, 26))
    return "".join(chars)


def main() -> None:
    rng = np.random.default_rng(23)
    machine = HMM(HMMParams(num_dmms=8, width=16, global_latency=120))

    # A synthetic log with a repeated event signature, then noise.
    event = "disk timeout on node"
    filler_words = ["status", "heartbeat", "ok", "sync", "idle", "probe"]
    parts = []
    true_positions = []
    for _ in range(24):
        parts.append(" ".join(rng.choice(filler_words, 6)))
        if rng.random() < 0.4:
            parts.append(event)
            true_positions.append(sum(len(p) + 1 for p in parts[:-1]))
    log = corrupt(" ".join(parts), rate=0.03, rng=rng)
    occurrences = sum(1 for _ in true_positions)
    print(f"log: {len(log)} chars, {occurrences} true event occurrences, "
          f"3% character noise")

    # --- exact search fails, fuzzy search doesn't ---------------------------
    exact, _ = find_matches(machine.engine(), event, log, 0, 512)
    fuzzy, report = find_matches(machine.engine(), event, log, 3, 512)
    print(f"exact matches (0 edits): {exact.size}")
    print(f"fuzzy matches (<=3 edits): {fuzzy.size} "
          f"in {report.cycles} time units")

    # Collapse runs of adjacent hit positions into events.
    events = 1 + int(np.sum(np.diff(fuzzy) > len(event))) if fuzzy.size else 0
    print(f"distinct event regions found: {events} "
          f"(ground truth {occurrences})")
    print()

    # --- score distribution via compact + histogram -------------------------
    distances, _ = hmm_approximate_match(machine.engine(), event, log, 512)
    near = distances <= 5
    scores, compact_cycles = machine.compact(distances, near, 512)
    counts, hist_report = machine.histogram(scores, bins=6)
    print("edit-distance histogram over near-match positions "
          f"(compact: {compact_cycles} tu, histogram: "
          f"{hist_report.cycles} tu):")
    for dist, count in enumerate(counts):
        bar = "#" * int(count)
        print(f"  d={dist}: {int(count):3d} {bar}")
    print()
    print("reading: the d<=1 mass is the event cores (10 survived the")
    print("noise uncorrupted); larger distances are the shoulders of each")
    print("hit region - positions where a partial overlap of the pattern")
    print("still lands within the edit budget.")


if __name__ == "__main__":
    main()
