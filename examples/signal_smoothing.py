"""Domain scenario: smoothing a noisy sensor stream on a GPU model.

The paper motivates direct convolution as the workhorse of signal
processing on GPUs.  This example smooths a noisy 1-D sensor trace with
a Gaussian window using the Theorem 9 HMM convolution, and uses the
model to answer the questions a kernel author actually has:

* how many threads until the kernel stops scaling?
* how much does global-memory latency matter once the algorithm stages
  operands into shared memory?
* how does the optimal machine compare with a naive implementation that
  convolves straight out of global memory?

Run:  python examples/signal_smoothing.py
"""

import numpy as np

from repro import HMM, UMM, HMMParams, MachineParams
from repro.viz import ascii_chart


def make_signal(n: int, rng) -> np.ndarray:
    """A slow sine drowned in sensor noise."""
    t = np.linspace(0, 6 * np.pi, n)
    return np.sin(t) + 0.6 * rng.normal(size=n)


def gaussian_window(k: int) -> np.ndarray:
    x = np.linspace(-2.5, 2.5, k)
    w = np.exp(-0.5 * x**2)
    return w / w.sum()


def main() -> None:
    rng = np.random.default_rng(42)
    k = 32
    n = 4096
    window = gaussian_window(k)
    signal = make_signal(n + k - 1, rng)

    machine = HMM(HMMParams(num_dmms=8, width=32, global_latency=300))

    # --- correctness first -------------------------------------------------
    smoothed, report = machine.convolve(window, signal, num_threads=1024)
    assert np.allclose(smoothed, np.correlate(signal, window, "valid"))
    residual = np.std(smoothed - np.sin(np.linspace(0, 6 * np.pi, n)))
    print(f"smoothed {n} samples with a {k}-tap Gaussian: "
          f"{report.cycles} time units, residual vs ground truth "
          f"{residual:.3f} (raw noise was 0.6)")
    print()

    # --- thread scaling -----------------------------------------------------
    print("thread scaling (who saturates first: bandwidth or compute?)")
    threads = [64, 128, 256, 512, 1024, 2048, 4096]
    cycles = []
    for p in threads:
        _, r = machine.convolve(window, signal, num_threads=p)
        cycles.append(r.cycles)
        print(f"  p={p:5d}: {r.cycles:7d} time units")
    print(ascii_chart(
        [float(np.log2(p)) for p in threads],
        {"HMM convolution": cycles},
        title="time units vs log2(threads)",
        x_label="log2 p",
    ))
    print()

    # --- latency sensitivity ------------------------------------------------
    print("latency sensitivity at p=1024 (Theorem 9 pays l O(1) times):")
    for l in (50, 200, 800):
        m = HMM(HMMParams(num_dmms=8, width=32, global_latency=l))
        _, r = m.convolve(window, signal, num_threads=1024)
        naive = UMM(MachineParams(width=32, latency=l))
        _, rn = naive.convolve(window, signal, num_threads=1024)
        print(f"  l={l:4d}: HMM {r.cycles:7d}   naive global-only "
              f"{rn.cycles:8d}   ({rn.cycles / r.cycles:5.1f}x)")
    print()
    print("reading: the HMM pays the global latency O(1) times plus the"
          "\npipelined nl/p term - the window and the signal chunks are"
          "\nstaged into the latency-1 shared memories once.  The naive"
          "\nkernel re-reads operands from global memory ~2k times per"
          "\noutput batch, so its latency bill is k-fold larger and its"
          "\ndisadvantage grows with l (9x at l=50, 23x at l=800).")


if __name__ == "__main__":
    main()
