"""Exploring GPU configurations for a fixed workload.

The models make "what GPU shape does my kernel want?" a computable
question.  This example fixes a workload mix (reduction + convolution +
scan over a sensor batch) and sweeps the machine axes the paper
parameterizes — number of SMs ``d``, width ``w``, global latency ``l``
— to see which investments pay off and which are wasted on this
workload.

Run:  python examples/config_explorer.py
"""

import numpy as np

from repro import HMM, HMMParams
from repro.viz import ascii_chart


def workload_cost(params: HMMParams, rng, threads: int) -> int:
    """Total time units for one batch of the mixed workload."""
    n = 4096
    vals = rng.normal(size=n)
    kernel = np.exp(-0.5 * np.linspace(-2, 2, 16) ** 2)
    signal = rng.normal(size=n + 15)
    machine = HMM(params)
    total = 0
    _, r = machine.sum(vals, threads)
    total += r.cycles
    _, r = machine.convolve(kernel, signal, threads)
    total += r.cycles
    _, r = machine.prefix_sums(vals, threads)
    total += r.cycles
    return total


def main() -> None:
    rng = np.random.default_rng(5)
    base = HMMParams(num_dmms=8, width=16, global_latency=200)
    threads = 1024

    print("workload: sum + 16-tap convolution + prefix-sums of 4096 samples")
    print(f"baseline machine: d={base.num_dmms}, w={base.width}, "
          f"l={base.global_latency}, p={threads}")
    baseline = workload_cost(base, np.random.default_rng(5), threads)
    print(f"baseline cost: {baseline} time units\n")

    # --- axis 1: more SMs ---------------------------------------------------
    ds = [1, 2, 4, 8, 16, 32]
    d_cost = [
        workload_cost(base.with_num_dmms(d), np.random.default_rng(5), threads)
        for d in ds
    ]
    print("axis 1: number of DMMs (SMs)")
    for d, c in zip(ds, d_cost):
        print(f"  d={d:3d}: {c:7d} time units")
    print(ascii_chart([float(np.log2(d)) for d in ds],
                      {"cost": d_cost}, title="cost vs log2(d)",
                      x_label="log2 d", height=8))
    print()

    # --- axis 2: lower latency (e.g. better DRAM) ---------------------------
    ls = [800, 400, 200, 100, 50, 25]
    l_cost = [
        workload_cost(base.with_global_latency(l), np.random.default_rng(5),
                      threads)
        for l in ls
    ]
    print("axis 2: global-memory latency")
    for l, c in zip(ls, l_cost):
        print(f"  l={l:4d}: {c:7d} time units")
    print()

    # --- axis 3: wider memory (more banks) ----------------------------------
    ws = [4, 8, 16, 32, 64]
    w_cost = []
    for w in ws:
        params = HMMParams(num_dmms=base.num_dmms, width=w,
                           global_latency=base.global_latency)
        w_cost.append(workload_cost(params, np.random.default_rng(5), threads))
    print("axis 3: width (banks = warp size)")
    for w, c in zip(ws, w_cost):
        print(f"  w={w:3d}: {c:7d} time units")
    print()

    # --- the verdict --------------------------------------------------------
    d_gain = d_cost[ds.index(8)] / d_cost[-1]
    l_gain = l_cost[ls.index(200)] / l_cost[-1]
    w_gain = w_cost[ws.index(16)] / w_cost[-1]
    print("verdict for this workload (gain from one more doubling step "
          "past the baseline):")
    print(f"  4x more SMs:      {d_gain:.2f}x")
    print(f"  8x lower latency: {l_gain:.2f}x")
    print(f"  4x wider memory:  {w_gain:.2f}x")
    print()
    lw = base.global_latency * base.width
    print("the paper's parameters are not interchangeable.  Here the launch")
    print(f"is under-occupied (p = {threads} < l*w = {lw}), so the nl/p")
    print("latency term binds and buying latency pays the most — exactly")
    print("the p >= lw occupancy rule of Theorem 7.  Re-run with more")
    print("threads (or lower baseline latency) and the verdict flips toward")
    print("width and more DMMs: the model lets you check before you buy.")


if __name__ == "__main__":
    main()
