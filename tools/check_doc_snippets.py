#!/usr/bin/env python
"""Extract and execute the fenced python blocks of a markdown file.

Documentation code that does not run rots silently; this script keeps the
runnable docs honest.  Within one file the blocks execute cumulatively in
a single namespace, top to bottom, exactly as a reader following along
would type them.

Blocks are opted out with an HTML comment on the line directly above the
fence::

    <!-- doc-snippet: skip -->
    ```python
    something_illustrative_only()
    ```

Usage::

    python tools/check_doc_snippets.py docs/TUTORIAL.md docs/PERFORMANCE.md

Exits non-zero on the first failing block, printing the block's source
and the traceback.  Run from the repository root with ``PYTHONPATH=src``
(or after an editable install).
"""

from __future__ import annotations

import argparse
import sys
import time
import traceback
from pathlib import Path

SKIP_MARK = "doc-snippet: skip"


def extract_blocks(text: str) -> list[tuple[int, str, bool]]:
    """Return ``(first_line, source, skipped)`` for every python fence."""
    blocks = []
    lines = text.splitlines()
    i = 0
    while i < len(lines):
        stripped = lines[i].strip()
        if stripped in ("```python", "```py"):
            skip = i > 0 and SKIP_MARK in lines[i - 1]
            start = i + 1
            j = start
            while j < len(lines) and lines[j].strip() != "```":
                j += 1
            blocks.append((start + 1, "\n".join(lines[start:j]), skip))
            i = j + 1
        else:
            i += 1
    return blocks


def check_file(path: Path) -> int:
    """Execute ``path``'s python blocks cumulatively; return failure count."""
    try:
        text = path.read_text()
    except OSError as exc:
        print(f"  FAIL {path}: {exc}")
        return 1
    blocks = extract_blocks(text)
    if not blocks:
        print(f"{path}: no python blocks")
        return 0
    namespace: dict = {"__name__": f"docsnippet:{path.name}"}
    failures = 0
    for lineno, source, skip in blocks:
        label = f"{path}:{lineno}"
        if skip:
            print(f"  SKIP {label}")
            continue
        t0 = time.perf_counter()
        try:
            # Pad so tracebacks point at the real line in the markdown.
            code = compile("\n" * (lineno - 1) + source, str(path), "exec")
            exec(code, namespace)
        except Exception:
            failures += 1
            print(f"  FAIL {label}")
            print("    " + "\n    ".join(source.splitlines()))
            traceback.print_exc()
            break  # later blocks depend on this one's names
        else:
            dt = time.perf_counter() - t0
            print(f"  ok   {label}  ({dt:.2f}s)")
    return failures


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("files", nargs="+", type=Path, help="markdown files")
    args = parser.parse_args(argv)
    failures = 0
    for path in args.files:
        print(f"{path}:")
        failures += check_file(path)
    if failures:
        print(f"{failures} failing block(s)")
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
