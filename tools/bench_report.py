#!/usr/bin/env python
"""Aggregate every ``BENCH_*.json`` into one performance trajectory table.

Each benchmark commits a machine-readable record at the repo root
(``schema_version`` 1: host info, config, rows, metrics, pass/fail
criteria).  This script folds them into a single human-readable report —
``benchmarks/out/report.txt`` — so the whole performance history is
readable in one place and diffable across PRs.

Usage::

    python tools/bench_report.py            # writes benchmarks/out/report.txt
    python tools/bench_report.py --stdout   # print only, write nothing

Exits non-zero if any benchmark's ``criteria.pass`` is false, so the
report doubles as a gate.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

ROOT = Path(__file__).resolve().parent.parent
DEFAULT_OUT = ROOT / "benchmarks" / "out" / "report.txt"


def load_records(root: Path) -> list[dict]:
    records = []
    for path in sorted(root.glob("BENCH_*.json")):
        try:
            record = json.loads(path.read_text())
        except (OSError, json.JSONDecodeError) as exc:
            print(f"warning: skipping unreadable {path.name}: {exc}",
                  file=sys.stderr)
            continue
        record["_file"] = path.name
        records.append(record)
    return records


def _fmt_value(value) -> str:
    if isinstance(value, bool):
        return "yes" if value else "no"
    if isinstance(value, float):
        return f"{value:g}"
    return str(value)


def _table(headers: list[str], rows: list[list[str]]) -> str:
    widths = [len(h) for h in headers]
    for row in rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))

    def fmt(cells):
        return "  ".join(
            c.ljust(widths[i]) for i, c in enumerate(cells)
        ).rstrip()

    lines = [fmt(headers), "  ".join("-" * w for w in widths)]
    lines.extend(fmt(row) for row in rows)
    return "\n".join(lines)


def render(records: list[dict]) -> str:
    lines: list[str] = ["Benchmark trajectory report", ""]

    summary_rows = []
    for record in records:
        criteria = record.get("criteria", {})
        metrics = record.get("metrics", {})
        headline = ", ".join(
            f"{k}={_fmt_value(v)}" for k, v in sorted(metrics.items())
            if not isinstance(v, (list, dict))
        )
        summary_rows.append([
            record.get("bench", record["_file"]),
            "PASS" if criteria.get("pass") else "FAIL",
            headline,
        ])
    lines.append(_table(["bench", "status", "metrics"], summary_rows))
    lines.append("")

    for record in records:
        bench = record.get("bench", record["_file"])
        host = record.get("host", {})
        lines.append(f"== {bench} ({record['_file']})")
        host_bits = ", ".join(
            f"{k}={v}" for k, v in sorted(host.items()))
        if host_bits:
            lines.append(f"   host: {host_bits}")
        criteria = record.get("criteria", {})
        thresholds = ", ".join(
            f"{k}={_fmt_value(v)}" for k, v in sorted(criteria.items())
            if k != "pass")
        status = "PASS" if criteria.get("pass") else "FAIL"
        lines.append(f"   criteria: {status}"
                     + (f" ({thresholds})" if thresholds else ""))
        rows = record.get("rows", [])
        if rows and all(isinstance(r, dict) for r in rows):
            headers = sorted({k for r in rows for k in r})
            lines.append(_indent(_table(
                headers,
                [[_fmt_value(r.get(h, "")) for h in headers]
                 for r in rows],
            )))
        shard_table = _per_shard_table(record)
        if shard_table:
            lines.append("   per-shard serving (hit rates from the warm "
                         "cluster run):")
            lines.append(_indent(shard_table))
        overhead = _telemetry_overhead_line(record)
        if overhead:
            lines.append(overhead)
        lines.append("")
    return "\n".join(lines).rstrip() + "\n"


def _telemetry_overhead_line(record: dict) -> str | None:
    """One-line streaming-overhead summary (the telemetry benchmark)."""
    if record.get("bench") != "telemetry":
        return None
    metrics = record.get("metrics", {})
    criteria = record.get("criteria", {})
    if "overhead_pct" not in metrics:
        return None
    return (
        f"   streaming overhead: {metrics['overhead_pct']:g}% of the "
        f"telemetry-off rps "
        f"(budget {criteria.get('max_overhead_pct', 0):g}%; "
        f"{metrics.get('off_rps', 0):g} -> {metrics.get('on_rps', 0):g} "
        f"rps with a live SSE subscriber, "
        f"{_fmt_value(metrics.get('events_streamed', 0))} events streamed)"
    )


def _per_shard_table(record: dict) -> str | None:
    """Render ``metrics.per_shard`` (cluster benchmarks) as a table."""
    per_shard = record.get("metrics", {}).get("per_shard")
    if not isinstance(per_shard, dict) or not per_shard:
        return None
    headers = ["shard", "state", "forwarded", "hit%", "warm_rx",
               "remote_hits"]
    rows = []
    for url in sorted(per_shard):
        shard = per_shard[url]
        if not isinstance(shard, dict):
            continue
        rows.append([
            url,
            str(shard.get("state", "?")),
            _fmt_value(shard.get("forwarded", 0)),
            f"{100 * shard.get('cache_hit_rate', 0.0):.0f}",
            _fmt_value(shard.get("warm_received", 0)),
            _fmt_value(shard.get("hits_remote", 0)),
        ])
    return _table(headers, rows) if rows else None


def _indent(text: str, prefix: str = "   ") -> str:
    return "\n".join(prefix + line for line in text.splitlines())


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        description="Aggregate BENCH_*.json records into one report.")
    parser.add_argument("--root", type=Path, default=ROOT,
                        help="directory holding the BENCH_*.json files")
    parser.add_argument("--out", type=Path, default=DEFAULT_OUT,
                        help="report destination (default benchmarks/out/"
                             "report.txt)")
    parser.add_argument("--stdout", action="store_true",
                        help="print the report without writing a file")
    args = parser.parse_args(argv)

    records = load_records(args.root)
    if not records:
        print(f"no BENCH_*.json files under {args.root}", file=sys.stderr)
        return 1
    report = render(records)
    print(report, end="")
    if not args.stdout:
        args.out.parent.mkdir(parents=True, exist_ok=True)
        args.out.write_text(report)
        print(f"\nwrote {args.out}", file=sys.stderr)

    failed = [r.get("bench", r["_file"]) for r in records
              if not r.get("criteria", {}).get("pass")]
    if failed:
        print(f"failing benchmarks: {', '.join(failed)}", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
