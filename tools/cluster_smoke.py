#!/usr/bin/env python
"""CI smoke for the sharded cost-oracle cluster.

Boots one single-process ``repro.service`` server and a 3-shard
subprocess ring behind the consistent-hash router, then sends the same
mixed workload (cost, sweep, tune, advise, plus malformed requests) to
both over bare sockets and asserts every response is **byte-identical**
— status line and body.  Halfway through, one shard is SIGKILLed; the
remaining requests (fresh and repeated cost/advise specs) must still
come back byte-identical with zero failures.  Finally the router's
``/metrics`` must show the cluster counters: ring ownership, the dead
shard marked down, reroutes/shard-failure counts, and the warming
section.

Run from the repository root::

    PYTHONPATH=src python tools/cluster_smoke.py

Exits non-zero on the first divergence.  This is the executable form of
the subsystem's byte-identity + availability guarantees; the pytest
suite (``tests/cluster``) covers the same ground in finer grain.
"""

from __future__ import annotations

import json
import socket
import sys
import tempfile
import time
from pathlib import Path
from urllib.parse import urlsplit

from repro.cluster import BackgroundRouter, ClusterSupervisor
from repro.service.client import ServiceClient
from repro.service.server import BackgroundServer

#: Spec families are disjoint across endpoints: sweep/tune bodies carry
#: per-request cache {hits, misses} deltas, so both sides must see the
#: same (cold) cache history for those payloads.
COST_SPECS = [
    {"kernel": "sum", "model": "hmm", "n": 1024, "p": 64},
    {"kernel": "sum", "model": "dmm", "n": 4096, "p": 128, "w": 32},
    {"kernel": "convolution", "model": "hmm", "n": 2048, "k": 16, "p": 256},
    {"kernel": "sum", "model": "umm", "n": 8192, "p": 64, "l": 32},
]
SWEEP_PAYLOAD = {
    "kernel": "sum", "model": "hmm", "p": 64,
    "axes": {"n": [512, 1024], "l": [16, 64]},
}
TUNE_PAYLOAD = {
    "task": "transpose", "strategy": "greedy", "budget": 6,
    "shape": {"w": 4, "d": 2, "m": 8}, "latencies": [3],
}
ADVISE_TARGET = "/v1/advise?kernel=sum&model=hmm&n=4096&p=64"
BAD_REQUESTS = [
    ("POST", "/v1/cost", {"kernel": "sum", "model": "hmm", "n": 1024,
                          "p": 64, "w": 5}),
    ("POST", "/v1/cost", {"kernel": "sift", "model": "hmm", "n": 1024}),
    ("GET", "/v1/nope", None),
]
#: Cost/advise-only post-kill: their bodies carry no cache counters, so
#: a reroute onto a cold shard cannot change a byte.
POST_KILL_COST_SPECS = COST_SPECS + [
    {"kernel": "convolution", "model": "dmm", "n": 1024, "k": 8, "p": 64},
    {"kernel": "sum", "model": "hmm", "n": 16384, "p": 512},
]


def raw_request(url: str, method: str, target: str, payload=None,
                timeout: float = 120.0):
    """One HTTP request over a bare socket; returns (status, body_bytes)."""
    split = urlsplit(url)
    body = b"" if payload is None else json.dumps(payload).encode()
    with socket.create_connection((split.hostname, split.port),
                                  timeout=timeout) as sock:
        head = (
            f"{method} {target} HTTP/1.1\r\n"
            f"Host: {split.hostname}:{split.port}\r\n"
            f"Content-Length: {len(body)}\r\n"
            "Content-Type: application/json\r\n"
            "Connection: close\r\n\r\n"
        )
        sock.sendall(head.encode() + body)
        data = b""
        while True:
            chunk = sock.recv(65536)
            if not chunk:
                break
            data += chunk
    status_line, _, rest = data.partition(b"\r\n")
    _, _, body_bytes = rest.partition(b"\r\n\r\n")
    return int(status_line.split()[1]), body_bytes


def compare(single_url: str, cluster_url: str, method: str, target: str,
            payload=None) -> int:
    """Send one request to both deployments; die unless bytes match."""
    s_status, s_body = raw_request(single_url, method, target, payload)
    c_status, c_body = raw_request(cluster_url, method, target, payload)
    if (s_status, s_body) != (c_status, c_body):
        print(f"DIVERGENCE on {method} {target} payload={payload}")
        print(f"  single : {s_status} {s_body[:400]!r}")
        print(f"  cluster: {c_status} {c_body[:400]!r}")
        sys.exit(1)
    return s_status


def main() -> int:
    t0 = time.perf_counter()
    compared = 0
    with tempfile.TemporaryDirectory(prefix="repro-smoke-") as tmp:
        root = Path(tmp)
        single = BackgroundServer(cache=True, cache_dir=root / "single")
        with single, ClusterSupervisor(
            3, store_root=root / "ring", cache=True
        ) as sup, BackgroundRouter(
            sup.shard_urls, replicas=2, health_interval_s=0.2
        ) as front:
            print(f"single at {single.url}; 3-shard ring behind {front.url}")

            # -- phase 1: mixed workload, everything byte-identical ----
            for spec in COST_SPECS:
                assert compare(single.url, front.url,
                               "POST", "/v1/cost", spec) == 200
                compared += 1
            assert compare(single.url, front.url,
                           "POST", "/v1/sweep", SWEEP_PAYLOAD) == 200
            assert compare(single.url, front.url,
                           "POST", "/v1/tune", TUNE_PAYLOAD) == 200
            assert compare(single.url, front.url,
                           "GET", ADVISE_TARGET) == 200
            compared += 3
            for method, target, payload in BAD_REQUESTS:
                status = compare(single.url, front.url,
                                 method, target, payload)
                assert status in (400, 404), status
                compared += 1
            print(f"phase 1 ok: {compared} identical responses "
                  f"(incl. {len(BAD_REQUESTS)} errors)")

            # -- phase 2: SIGKILL a shard, keep going ------------------
            killed = sup.kill_shard(1)
            print(f"SIGKILLed shard {killed}; continuing the workload...")
            for spec in POST_KILL_COST_SPECS:
                assert compare(single.url, front.url,
                               "POST", "/v1/cost", spec) == 200
                compared += 1
            assert compare(single.url, front.url,
                           "GET", ADVISE_TARGET) == 200
            compared += 1
            print(f"phase 2 ok: {len(POST_KILL_COST_SPECS) + 1} identical "
                  f"responses with a dead shard in the ring")

            # -- phase 3: the router's /metrics tells the story --------
            body = ServiceClient(front.url).metrics()
            cluster = body["cluster"]
            ring, router = cluster["ring"], cluster["router"]
            assert set(ring["shards"]) == set(sup.shard_urls + [killed])
            assert abs(sum(ring["ownership"].values()) - 1.0) < 0.01
            deadline = time.monotonic() + 10
            while ring["alive"][killed] and time.monotonic() < deadline:
                time.sleep(0.2)
                ring = ServiceClient(front.url).metrics()["cluster"]["ring"]
            assert not ring["alive"][killed], ring["alive"]
            assert router["requests_total"] >= compared
            assert all(k in router for k in (
                "reroutes", "shard_failures", "no_live_shard_503",
                "hot_spread", "warm_headers_set"))
            assert router["no_live_shard_503"] == 0, router
            assert "warming" in cluster and "hot" in cluster
            live = [url for url, m in body["shards"].items()
                    if isinstance(m, dict) and "error" not in m]
            assert killed not in live and len(live) == 2, body["shards"]
            print(f"phase 3 ok: metrics report the dead shard, "
                  f"{router['requests_total']} routed requests, "
                  f"reroutes={router['reroutes']}")

    print(f"cluster smoke ok: {compared} byte-identical responses, "
          f"one shard killed, zero client-visible failures "
          f"({time.perf_counter() - t0:.1f}s)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
