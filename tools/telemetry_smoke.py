#!/usr/bin/env python
"""CI smoke for the live telemetry subsystem.

Boots an in-process 2-shard ring with multiplexed telemetry, then
checks the subsystem's externally visible guarantees end to end:

1. **Ordered stream** — after a short zipfian drive the router's
   ``/v1/events`` feed holds at least 20 events with strictly
   contiguous sequence numbers, resume-from-seq returns exactly the
   tail (no duplicates, no gaps), and the SSE transport yields
   byte-for-byte the same events as the long-poll transport.
2. **Dashboard** — the terminal dashboard renders the live cluster
   (shard table, hot keys, event feed) without placeholder values.
3. **Live membership** — while the load generator keeps driving the
   ring, a freshly spawned shard joins via ``POST /v1/ring/add`` and an
   original shard is decommissioned via ``POST /v1/ring/drain``; the
   run must finish with **zero** client-visible errors and the drain's
   hot-artifact handoff must report no failures.

Run from the repository root::

    PYTHONPATH=src python tools/telemetry_smoke.py

Exits non-zero on the first violated guarantee.  The pytest suite
(``tests/telemetry``) covers the same contracts in finer grain.
"""

from __future__ import annotations

import os
import sys
import tempfile
import time

MIN_EVENTS = 20


def poll_until(predicate, *, timeout_s: float = 15.0,
               interval_s: float = 0.1):
    deadline = time.monotonic() + timeout_s
    while time.monotonic() < deadline:
        value = predicate()
        if value:
            return value
        time.sleep(interval_s)
    raise TimeoutError(f"condition not met within {timeout_s}s")


def drain_events(client) -> list[dict]:
    """Every event currently buffered on the router, in seq order."""
    events: list[dict] = []
    cursor = 0
    while True:
        body = client.events(from_seq=cursor, timeout_s=0.0)
        if not body["events"]:
            return events
        events.extend(body["events"])
        cursor = body["next_from"]


def main() -> int:  # noqa: C901 - one linear smoke script
    t0 = time.perf_counter()
    tmp = tempfile.mkdtemp(prefix="repro-telemetry-smoke-")
    os.environ["REPRO_STORE_DIR"] = os.path.join(tmp, "store")

    from repro.cluster import BackgroundCluster
    from repro.cluster.loadgen import drive_url
    from repro.service.client import ServiceClient
    from repro.telemetry import sse_events
    from repro.viz import render_dashboard

    with BackgroundCluster(
        2, cache_root=os.path.join(tmp, "cache"),
        server_kwargs={"telemetry_resolution_s": 0.2},
        multiplex=True, telemetry_resolution_s=0.2,
        health_interval_s=0.5,
    ) as cluster:
        client = ServiceClient(cluster.url, retries=2)
        print(f"2-shard ring with telemetry behind {cluster.url}")

        # -- phase 1: ordered stream + resume + SSE/poll agreement -----
        client.sweep("sum", "hmm", {"p": 64, "n": [512, 1024], "l": [16]})
        result = drive_url(cluster.url, duration=2.0, clients=8, seed=7)
        assert result.errors == 0, result.errors
        events = poll_until(
            lambda: (lambda evs: evs if len(evs) >= MIN_EVENTS else None)(
                drain_events(client)))
        seqs = [e["seq"] for e in events]
        assert seqs == list(range(seqs[0], seqs[0] + len(seqs))), seqs
        types = {e["type"] for e in events}
        assert {"server.start", "router.start", "sample"} <= types, types
        mid = seqs[len(seqs) // 2]
        resumed = client.events(from_seq=mid, timeout_s=0.0)["events"]
        assert resumed == [e for e in events if e["seq"] > mid], "resume"
        streamed = list(sse_events(cluster.url, from_seq=0, limit=5))
        assert streamed == events[:5], "SSE != poll"
        print(f"phase 1 ok: {len(events)} events, contiguous seqs "
              f"{seqs[0]}..{seqs[-1]}, resume@{mid} exact, "
              f"SSE==poll on the head")

        # -- phase 2: the dashboard renders the live ring --------------
        board = render_dashboard(client.metrics(), source=cluster.url,
                                 events=events[-6:])
        print("\n" + board + "\n")
        for needle in [*cluster.shard_urls, "shard", "events"]:
            assert needle in board, f"dashboard lacks {needle!r}"
        print("phase 2 ok: dashboard shows every shard + the event feed")

        # -- phase 3: add + drain under load, zero visible errors ------
        spawned = cluster.add_shard()
        victim = cluster.shard_urls[0]
        handoff: dict = {}

        def membership() -> None:
            added = client.ring_add(spawned)
            assert added["added"] is True, added
            poll_until(lambda: ServiceClient(cluster.url).metrics()
                       ["cluster"]["ring"]["alive"].get(spawned))
            time.sleep(0.5)  # let some traffic land on the new shard
            handoff.update(client.ring_drain(victim))

        under_load = drive_url(cluster.url, duration=6.0, clients=8,
                               seed=11, mid_run=membership, mid_run_at=0.25)
        assert under_load.errors == 0, under_load.errors
        assert handoff.get("drained") is True, handoff
        counters = handoff["handoff"]
        assert counters["failed"] == 0, counters
        assert counters["keys"] >= 1 and counters["pushed"] >= 1, counters

        body = client.metrics()["cluster"]
        ring, router = body["ring"], body["router"]
        assert spawned in ring["shards"] and victim not in ring["shards"]
        assert router["ring_adds"] >= 1 and router["ring_drains"] >= 1
        final_types = {e["type"] for e in drain_events(client)}
        assert {"ring.add", "ring.drain"} <= final_types, final_types
        print(f"phase 3 ok: {under_load.requests} requests through "
              f"add+drain with 0 errors; handoff keys={counters['keys']} "
              f"pushed={counters['pushed']} skipped={counters['skipped']} "
              f"failed=0")

    print(f"telemetry smoke ok ({time.perf_counter() - t0:.1f}s)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
