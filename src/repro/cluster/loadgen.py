"""Closed-loop zipfian load against any URL (router or single shard).

The service-layer load generator (:mod:`repro.service.loadgen`) boots
its own single server; the cluster needs the complementary shape —
drive a *running* endpoint, record per-request outcomes, and optionally
trigger an action (kill a shard) mid-run.  Same workload model: the
Table I grid under a Zipf popularity distribution, seeded for
run-to-run reproducibility.
"""

from __future__ import annotations

import asyncio
import bisect
import random
import time
from dataclasses import dataclass, field
from typing import Callable

from repro.service.client import AsyncServiceClient, ServiceError
from repro.service.loadgen import _percentile, _zipf_cdf, table1_workload
from repro.service.protocol import DEFAULT_SEED

__all__ = ["DriveResult", "drive_url"]


@dataclass
class DriveResult:
    """Outcome of one closed-loop run against one URL."""

    requests: int = 0
    errors: int = 0
    latencies: list = field(default_factory=list)
    duration_s: float = 0.0
    seed: int = 0
    zipf_s: float = 0.0
    clients: int = 0

    @property
    def rps(self) -> float:
        return self.requests / self.duration_s if self.duration_s else 0.0

    def row(self, name: str) -> dict:
        """A benchmark result row (``BENCH_cluster.json`` schema)."""
        return {
            "name": name,
            "clients": self.clients,
            "seed": self.seed,
            "zipf_s": self.zipf_s,
            "duration_s": round(self.duration_s, 3),
            "requests": self.requests,
            "errors": self.errors,
            "rps": round(self.rps, 1),
            "p50_ms": round(_percentile(self.latencies, 0.50) * 1e3, 2),
            "p95_ms": round(_percentile(self.latencies, 0.95) * 1e3, 2),
        }


async def _client_loop(
    client: AsyncServiceClient,
    specs: list[dict],
    cdf: list[float],
    rng: random.Random,
    stop_at: float,
    result: DriveResult,
) -> None:
    while time.monotonic() < stop_at:
        spec = specs[bisect.bisect_left(cdf, rng.random())]
        params = {k: spec[k] for k in ("n", "k", "p", "w", "l", "d")}
        started = time.monotonic()
        try:
            await client.cost(spec["kernel"], spec["model"], params,
                              seed=DEFAULT_SEED)
        except ServiceError:
            # Includes Unavailable: the client's retries were exhausted,
            # so this is a *client-visible* failure — exactly what the
            # shard-kill acceptance criterion counts.
            result.errors += 1
            continue
        result.latencies.append(time.monotonic() - started)
        result.requests += 1


def drive_url(
    url: str,
    *,
    duration: float = 10.0,
    clients: int = 64,
    zipf_s: float = 2.5,
    seed: int = 7,
    model: str = "hmm",
    retries: int = 4,
    mid_run: "Callable[[], None] | None" = None,
    mid_run_at: float = 0.5,
) -> DriveResult:
    """Drive ``url`` closed-loop; optionally fire ``mid_run`` partway.

    ``mid_run`` runs in a worker thread at ``mid_run_at`` (fraction of
    ``duration``) — e.g. ``lambda: supervisor.kill_shard(1)`` for the
    chaos benchmark.  ``seed`` fixes every client's sampling sequence,
    so two runs with the same seed issue the same requests.
    """
    specs = table1_workload(model)
    cdf = _zipf_cdf(len(specs), zipf_s)
    result = DriveResult(seed=seed, zipf_s=zipf_s, clients=clients)

    async def drive() -> None:
        stop_at = time.monotonic() + duration
        tasks = [
            asyncio.ensure_future(_client_loop(
                AsyncServiceClient(url, retries=retries),
                specs, cdf, random.Random(seed * 10_000 + i),
                stop_at, result,
            ))
            for i in range(clients)
        ]
        if mid_run is not None:
            async def chaos() -> None:
                await asyncio.sleep(duration * mid_run_at)
                await asyncio.get_running_loop().run_in_executor(
                    None, mid_run
                )
            tasks.append(asyncio.ensure_future(chaos()))
        await asyncio.gather(*tasks)

    started = time.monotonic()
    asyncio.run(drive())
    result.duration_s = time.monotonic() - started
    return result
