"""The standard cluster benchmark: scaling, warming, and chaos.

Four measured configurations, each against real subprocess shards
(separate interpreters — the scaling claim must not be GIL-bound):

1. ``single-shard`` — one ``repro.service`` process driven directly,
   no router in the path, result cache off.  The honest compute-bound
   baseline: closed-loop throughput is limited by how fast one process
   evaluates the zipf-weighted unique-spec stream.
2. ``cluster-<N>shard`` — the same shard configuration ×N behind the
   consistent-hash router, cache still off.  This is the scaling row:
   ownership partitions the unique-spec work across shards, and hot-key
   replication spreads the zipf head over R owners.  On a host with ≥N
   CPUs the target is ≥2x the baseline; on fewer cores the shards
   time-slice and the row instead bounds the routing overhead.
3. ``cluster-<N>shard+cache`` — caches on: the warming showcase.  The
   hot set is promoted, replicated via framed store pushes, and served
   from replica caches; the per-shard hit-rate table comes from here.
4. ``shard-kill`` — topology of (3), one shard SIGKILLed halfway
   through.  The acceptance criterion is **zero** client-visible
   failures: the router reroutes, the client retries, nobody notices.

Used by ``python -m repro.cluster bench`` and
``benchmarks/bench_cluster.py`` (which adds the BENCH JSON envelope).
"""

from __future__ import annotations

import tempfile
from pathlib import Path

from repro.cluster.loadgen import drive_url
from repro.cluster.supervisor import BackgroundRouter, ClusterSupervisor
from repro.service.client import ServiceClient

__all__ = ["run_cluster_comparison", "render_cluster_comparison"]


def _shard_summary(router_url: str) -> dict:
    """Per-shard serving counters pulled from the router's /metrics."""
    body = ServiceClient(router_url, retries=1).metrics()
    cluster = body.get("cluster", {})
    forwards = cluster.get("router", {}).get("forwards", {})
    shards = {}
    for url, metrics in body.get("shards", {}).items():
        if not isinstance(metrics, dict) or "error" in metrics:
            shards[url] = {"state": "down", "forwarded": forwards.get(url, 0)}
            continue
        cache = metrics.get("cache", {})
        warming = metrics.get("warming", {})
        store = metrics.get("store", {})
        hits_remote = sum(
            ns.get("hits_remote", 0) for ns in store.values()
            if isinstance(ns, dict)
        )
        shards[url] = {
            "state": "up",
            "forwarded": forwards.get(url, 0),
            "requests_total": metrics.get("requests_total", 0),
            "cache_hits": cache.get("hits", 0),
            "cache_misses": cache.get("misses", 0),
            "cache_hit_rate": cache.get("hit_rate", 0.0),
            "warm_pushes_sent": warming.get("pushes_sent", 0),
            "warm_received": warming.get("received_stored", 0),
            "hits_remote": hits_remote,
        }
    return {
        "router": cluster.get("router", {}),
        "ring": cluster.get("ring", {}),
        "hot": cluster.get("hot", {}),
        "warming": cluster.get("warming", {}),
        "per_shard": shards,
    }


def run_cluster_comparison(
    *,
    shards: int = 3,
    replicas: int = 2,
    duration: float = 10.0,
    clients: int = 64,
    zipf_s: float = 2.5,
    seed: int = 7,
    jobs: "int | str" = 1,
    store_root: "Path | str | None" = None,
    warm_run: bool = True,
    kill_run: bool = True,
    log=print,
) -> dict:
    """Run the four-way comparison; returns rows + cluster telemetry.

    ``store_root=None`` uses a temporary directory (hermetic: every
    configuration starts cold).  ``speedup`` compares the two cache-off
    rows — the compute-bound scaling measurement; ``warm_run`` adds the
    cache+warming showcase row and ``kill_run`` the chaos row.
    """
    rows: list[dict] = []
    telemetry: dict = {}
    common = dict(duration=duration, clients=clients, zipf_s=zipf_s,
                  seed=seed)
    with tempfile.TemporaryDirectory(prefix="repro-cluster-bench-") as tmp:
        root = Path(store_root) if store_root is not None else Path(tmp)

        def shard_args(tag: str, cache: bool) -> dict:
            return dict(store_root=root / tag, jobs=jobs, cache=cache)

        log(f"[bench_cluster] single-shard baseline, cache off "
            f"({clients} clients, {duration:g}s, seed={seed})...")
        with ClusterSupervisor(1, **shard_args("single", False)) as single:
            result = drive_url(single.shard_urls[0], **common)
            rows.append(result.row("single-shard"))

        log(f"[bench_cluster] {shards}-shard cluster, cache off "
            f"(the scaling row)...")
        with ClusterSupervisor(shards, **shard_args("cluster", False)) as sup:
            with BackgroundRouter(sup.shard_urls, replicas=replicas) as fr:
                result = drive_url(fr.url, **common)
                rows.append(result.row(f"cluster-{shards}shard"))
                telemetry["cluster"] = _shard_summary(fr.url)

        if warm_run:
            log(f"[bench_cluster] {shards}-shard cluster, caches + "
                f"hot-key warming on...")
            with ClusterSupervisor(shards, **shard_args("warm", True)) as sup:
                with BackgroundRouter(sup.shard_urls,
                                      replicas=replicas) as fr:
                    result = drive_url(fr.url, **common)
                    rows.append(result.row(f"cluster-{shards}shard+cache"))
                    telemetry["warm"] = _shard_summary(fr.url)

        if kill_run:
            log(f"[bench_cluster] shard-kill chaos run "
                f"(SIGKILL shard 1 at t={duration / 2:g}s)...")
            with ClusterSupervisor(shards, **shard_args("chaos", True)) as sup:
                with BackgroundRouter(sup.shard_urls,
                                      replicas=replicas) as fr:
                    result = drive_url(
                        fr.url, **common,
                        mid_run=lambda: sup.kill_shard(1),
                    )
                    rows.append(result.row("shard-kill"))
                    telemetry["chaos"] = _shard_summary(fr.url)

    by_name = {row["name"]: row for row in rows}
    single_rps = by_name["single-shard"]["rps"]
    cluster_rps = by_name[f"cluster-{shards}shard"]["rps"]
    speedup = cluster_rps / single_rps if single_rps else 0.0
    kill_row = by_name.get("shard-kill")
    return {
        "rows": rows,
        "speedup": round(speedup, 2),
        "kill_errors": kill_row["errors"] if kill_row else None,
        "telemetry": telemetry,
        "config": {
            "shards": shards, "replicas": replicas, "duration": duration,
            "clients": clients, "zipf_s": zipf_s, "seed": seed,
            "jobs": str(jobs),
        },
    }


def render_cluster_comparison(result: dict) -> str:
    """Text report for the terminal and ``benchmarks/out/cluster.txt``."""
    header = (
        f"{'config':<22} {'reqs':>8} {'errs':>5} {'rps':>9} "
        f"{'p50ms':>8} {'p95ms':>8}"
    )
    lines = [header, "-" * len(header)]
    for row in result["rows"]:
        lines.append(
            f"{row['name']:<22} {row['requests']:>8} {row['errors']:>5} "
            f"{row['rps']:>9.1f} {row['p50_ms']:>8.2f} {row['p95_ms']:>8.2f}"
        )
    lines.append("")
    lines.append(f"cluster vs single-shard throughput (cache off): "
                 f"{result['speedup']:.2f}x")
    if result.get("kill_errors") is not None:
        lines.append(f"shard-kill client-visible failures: "
                     f"{result['kill_errors']}")
    telemetry = result.get("telemetry", {})
    per_shard = (telemetry.get("warm") or telemetry.get("cluster", {})) \
        .get("per_shard", {})
    if per_shard:
        lines.append("")
        lines.append(f"{'shard':<28} {'fwd':>7} {'hit%':>6} {'warm_rx':>8} "
                     f"{'remote_hits':>12}")
        for url in sorted(per_shard):
            s = per_shard[url]
            hit = f"{100 * s.get('cache_hit_rate', 0.0):.0f}"
            lines.append(
                f"{url:<28} {s.get('forwarded', 0):>7} {hit:>6} "
                f"{s.get('warm_received', 0):>8} {s.get('hits_remote', 0):>12}"
            )
    return "\n".join(lines)
