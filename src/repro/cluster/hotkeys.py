"""Hot-key detection: a sliding-window frequency sketch.

Zipfian traffic (the load generator models s = 2.5) concentrates most
requests on a handful of spec keys.  Serving each key from one shard
makes that shard the whole cluster's ceiling, so the router promotes
the current top-K keys to R replicas and spreads their traffic — the
same replicate-the-hot-set discipline the HMM applies to its memory
hierarchy, applied to shards.

The sketch is a ring of time buckets, each a plain ``Counter``: an
observation lands in the current bucket, totals sum the live window,
and advancing time clears expired buckets.  Memory is bounded by
``max_keys_per_bucket`` (beyond it, new cold keys are dropped for that
bucket — a key hot enough to matter is never dropped for long), and the
clock is injectable so promotion/demotion is deterministically testable
with :class:`~repro.service.clock.ManualClock`.
"""

from __future__ import annotations

from collections import Counter

from repro.service.clock import Clock

__all__ = ["HotKeyTracker"]


class HotKeyTracker:
    """Top-K keys of the last ``window_s`` seconds.

    Parameters
    ----------
    window_s, buckets:
        Window length and its subdivision; finer buckets = smoother
        demotion at slightly more bookkeeping.
    top_k:
        How many keys may be hot at once (the replica promotion set).
    min_count:
        Floor on a key's windowed count before it can be promoted, so a
        trickle over a quiet cluster doesn't replicate everything.
    """

    def __init__(
        self,
        *,
        window_s: float = 10.0,
        buckets: int = 10,
        top_k: int = 8,
        min_count: int = 16,
        max_keys_per_bucket: int = 4096,
        clock: "Clock | None" = None,
    ) -> None:
        if window_s <= 0 or buckets < 1:
            raise ValueError("window_s must be > 0 and buckets >= 1")
        self.window_s = window_s
        self.buckets = buckets
        self.top_k = top_k
        self.min_count = min_count
        self.max_keys_per_bucket = max_keys_per_bucket
        self.clock = clock or Clock()
        self._bucket_s = window_s / buckets
        self._counts: list[Counter[str]] = [Counter() for _ in range(buckets)]
        self._epoch = self._now_bucket()

    # -- time --------------------------------------------------------------
    def _now_bucket(self) -> int:
        return int(self.clock.monotonic() / self._bucket_s)

    def _advance(self) -> int:
        """Expire buckets the window has slid past; return current slot."""
        now = self._now_bucket()
        stale = now - self._epoch
        if stale > 0:
            for offset in range(1, min(stale, self.buckets) + 1):
                self._counts[(self._epoch + offset) % self.buckets].clear()
            self._epoch = now
        return now % self.buckets

    # -- updates / readout -------------------------------------------------
    def observe(self, key: str, weight: int = 1) -> None:
        """Count one request for ``key``."""
        bucket = self._counts[self._advance()]
        if key in bucket or len(bucket) < self.max_keys_per_bucket:
            bucket[key] += weight

    def counts(self) -> Counter:
        """Aggregate windowed counts (a copy; mutating it is harmless)."""
        self._advance()
        total: Counter[str] = Counter()
        for bucket in self._counts:
            total.update(bucket)
        return total

    def hot_keys(self) -> list[str]:
        """The promoted set: up to ``top_k`` keys at/above ``min_count``,
        hottest first (ties broken by key for determinism)."""
        totals = self.counts()
        eligible = [(count, key) for key, count in totals.items()
                    if count >= self.min_count]
        eligible.sort(key=lambda pair: (-pair[0], pair[1]))
        return [key for _, key in eligible[: self.top_k]]

    def is_hot(self, key: str) -> bool:
        return key in self.hot_keys()

    def snapshot(self) -> dict:
        """JSON-able state for ``/metrics``."""
        totals = self.counts()
        hot = self.hot_keys()
        return {
            "window_s": self.window_s,
            "top_k": self.top_k,
            "min_count": self.min_count,
            "tracked_keys": len(totals),
            "hot_keys": {key: totals[key] for key in hot},
        }
