"""``python -m repro.cluster`` — serve, inspect, and benchmark a ring.

Subcommands
-----------
``serve``
    Boot N worker shards (subprocesses, each with a private store
    directory) plus the front router in the foreground.  SIGTERM/SIGINT
    drains the whole ring gracefully: the router stops accepting and
    finishes in-flight relays, then every shard drains its batcher.
``status``
    One-shot health + ring summary against a running router.
``bench``
    The scaling + chaos comparison from :mod:`repro.cluster.bench`.
"""

from __future__ import annotations

import argparse
import asyncio
import json
import sys
import tempfile
from pathlib import Path

from repro.cluster.bench import (
    render_cluster_comparison,
    run_cluster_comparison,
)
from repro.cluster.router import ClusterRouter
from repro.cluster.supervisor import ClusterSupervisor
from repro.service.client import ServiceClient, ServiceError


def _add_serve(sub: argparse._SubParsersAction) -> None:
    p = sub.add_parser("serve", help="run a shard ring + router")
    p.add_argument("--shards", type=int, default=3)
    p.add_argument("--replicas", type=int, default=2,
                   help="owners per hot key")
    p.add_argument("--host", default="127.0.0.1")
    p.add_argument("--port", type=int, default=8799,
                   help="router port; 0 picks an ephemeral port")
    p.add_argument("--store-root", default=None,
                   help="parent dir for per-shard stores "
                        "(default: a temp dir)")
    p.add_argument("--jobs", default="1",
                   help="worker processes per shard ('auto' for cpu count)")
    p.add_argument("--no-cache", action="store_true",
                   help="disable each shard's persistent result cache")
    p.add_argument("--vnodes", type=int, default=64)
    p.add_argument("--hot-top-k", type=int, default=8)
    p.add_argument("--hot-min-count", type=int, default=16)
    p.add_argument("--hot-window-s", type=float, default=10.0)


def _add_status(sub: argparse._SubParsersAction) -> None:
    p = sub.add_parser("status", help="health + ring summary of a router")
    p.add_argument("--url", default="http://127.0.0.1:8799")
    p.add_argument("--json", action="store_true",
                   help="print the raw /metrics JSON instead")


def _add_bench(sub: argparse._SubParsersAction) -> None:
    p = sub.add_parser("bench", help="scaling + shard-kill benchmark")
    p.add_argument("--shards", type=int, default=3)
    p.add_argument("--replicas", type=int, default=2)
    p.add_argument("--duration", type=float, default=10.0)
    p.add_argument("--clients", type=int, default=64)
    p.add_argument("--zipf-s", type=float, default=2.5)
    p.add_argument("--seed", type=int, default=7,
                   help="client RNG seed, recorded in the output rows")
    p.add_argument("--jobs", default="1")
    p.add_argument("--no-warm", action="store_true",
                   help="skip the cache+warming showcase run")
    p.add_argument("--no-kill", action="store_true",
                   help="skip the shard-kill chaos run")
    p.add_argument("--out", default=None,
                   help="also write the report to this file")
    p.add_argument("--metrics-out", default=None,
                   help="write the raw result dict as JSON")


def _cmd_serve(args: argparse.Namespace) -> int:
    with tempfile.TemporaryDirectory(prefix="repro-cluster-") as tmp:
        store_root = Path(args.store_root) if args.store_root else Path(tmp)
        supervisor = ClusterSupervisor(
            args.shards, store_root=store_root,
            jobs=args.jobs if args.jobs == "auto" else int(args.jobs),
            cache=not args.no_cache,
        )
        print(f"booting {args.shards} shards under {store_root}...",
              flush=True)
        supervisor.start()
        try:
            async def main() -> None:
                router = ClusterRouter(
                    supervisor.shard_urls, host=args.host, port=args.port,
                    replicas=args.replicas, vnodes=args.vnodes,
                    hot_top_k=args.hot_top_k,
                    hot_min_count=args.hot_min_count,
                    hot_window_s=args.hot_window_s,
                )
                await router.start()
                import signal

                loop = asyncio.get_running_loop()
                for sig in (signal.SIGTERM, signal.SIGINT):
                    loop.add_signal_handler(
                        sig,
                        lambda: asyncio.ensure_future(router.shutdown()),
                    )
                print(f"repro-cluster router on {router.url} "
                      f"({args.shards} shards, replicas={args.replicas})",
                      flush=True)
                for url in supervisor.shard_urls:
                    print(f"  shard {url}", flush=True)
                await router.serve_forever()
                print("router drained; draining shards...", flush=True)

            asyncio.run(main())
        finally:
            supervisor.stop()
        print("ring drained, bye", flush=True)
    return 0


def _cmd_status(args: argparse.Namespace) -> int:
    client = ServiceClient(args.url, retries=1)
    try:
        health = client.healthz()
        metrics = client.metrics()
    except (ServiceError, Exception) as exc:  # noqa: B014 - one-shot CLI
        print(f"router at {args.url} unreachable: {exc}", file=sys.stderr)
        return 1
    if args.json:
        print(json.dumps(metrics, indent=2, sort_keys=True))
        return 0
    cluster = metrics.get("cluster", {})
    ring = cluster.get("ring", {})
    router = cluster.get("router", {})
    shards = metrics.get("shards", {})
    print(f"router {args.url}: {health.get('status')}")
    rows = []
    for url in ring.get("shards", []):
        body = shards.get(url)
        body = body if isinstance(body, dict) else {}
        cache = body.get("cache", {})
        hit_rate = cache.get("hit_rate")
        rows.append((
            url,
            "up" if ring.get("alive", {}).get(url) else "down",
            f"{ring.get('ownership', {}).get(url, 0.0):.1%}",
            str(router.get("forwards", {}).get(url, 0)),
            str(body.get("requests_total", "-")),
            f"{hit_rate:.1%}" if isinstance(hit_rate, (int, float)) else "-",
            str(body.get("warming", {}).get("received_stored", "-")),
        ))
    headers = ("shard", "state", "owns", "fwd", "req", "hit", "warm_rx")
    widths = [max(len(headers[i]), *(len(r[i]) for r in rows)) if rows
              else len(headers[i]) for i in range(len(headers))]
    print("  " + "  ".join(h.ljust(widths[i])
                           for i, h in enumerate(headers)).rstrip())
    for row in rows:
        print("  " + "  ".join(c.ljust(widths[i])
                               for i, c in enumerate(row)).rstrip())
    hot = cluster.get("hot", {})
    hot_keys = hot.get("hot_keys", {})
    print(f"hot keys ({len(hot_keys)}/{hot.get('top_k', 0)} promoted, "
          f"window={hot.get('window_s', 0):g}s):")
    for key, count in sorted(hot_keys.items(), key=lambda kv: (-kv[1], kv[0])):
        print(f"  {count:>6}  {key}")
    if not hot_keys:
        print("  (none)")
    events = cluster.get("events", {})
    print(f"requests={router.get('requests_total', 0)} "
          f"reroutes={router.get('reroutes', 0)} "
          f"503s={router.get('no_live_shard_503', 0)} "
          f"ring_adds={router.get('ring_adds', 0)} "
          f"ring_drains={router.get('ring_drains', 0)} "
          f"warm_pushes={cluster.get('warming', {}).get('pushes_sent_total', 0)} "
          f"remote_hits={cluster.get('warming', {}).get('hits_remote_total', 0)} "
          f"events={events.get('emitted', 0)}")
    return 0


def _cmd_bench(args: argparse.Namespace) -> int:
    result = run_cluster_comparison(
        shards=args.shards, replicas=args.replicas,
        duration=args.duration, clients=args.clients,
        zipf_s=args.zipf_s, seed=args.seed,
        jobs=args.jobs if args.jobs == "auto" else int(args.jobs),
        warm_run=not args.no_warm, kill_run=not args.no_kill,
    )
    report = render_cluster_comparison(result)
    print(report)
    if args.out:
        out = Path(args.out)
        out.parent.mkdir(parents=True, exist_ok=True)
        out.write_text(report + "\n")
        print(f"\nwrote {out}")
    if args.metrics_out:
        out = Path(args.metrics_out)
        out.parent.mkdir(parents=True, exist_ok=True)
        out.write_text(json.dumps(result, indent=2, sort_keys=True) + "\n")
        print(f"wrote {out}")
    return 0


def main(argv: "list[str] | None" = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.cluster",
        description="Sharded HMM cost-oracle cluster: serve, status, bench.",
    )
    sub = parser.add_subparsers(dest="command", required=True)
    _add_serve(sub)
    _add_status(sub)
    _add_bench(sub)
    args = parser.parse_args(argv)
    return {"serve": _cmd_serve, "status": _cmd_status,
            "bench": _cmd_bench}[args.command](args)


if __name__ == "__main__":
    sys.exit(main())
