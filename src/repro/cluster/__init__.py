"""repro.cluster — a sharded cost-oracle cluster over ``repro.service``.

The service layer made one process production-shaped (batching,
backpressure, caching); this package scales it out with plain stdlib
machinery, applying the HMM paper's memory-hierarchy discipline at the
service tier: partition the key space, replicate the hot set, tolerate
the tail.

* :mod:`repro.cluster.ring` — consistent hashing with virtual nodes:
  every spec key maps to an ordered list of owner shards, and a dead
  shard's ranges fall to its ring successors with no re-mapping of the
  rest of the key space.
* :mod:`repro.cluster.hotkeys` — a sliding-window frequency sketch that
  promotes the top-K hottest keys (the Zipf head) to R replicas.
* :mod:`repro.cluster.router` — the front process: routes each request
  to its owner shard, spreads hot-key traffic round-robin across
  replicas, marks warm-push peers, retries-with-reroute around dead
  shards, answers 503 + ``Retry-After`` only when *no* shard is live,
  aggregates cluster-wide ``/metrics``, multiplexes every shard's
  telemetry feed onto one ``/v1/events`` stream, and serves live ring
  membership (``/v1/ring/add`` joins a spawned shard,
  ``/v1/ring/drain`` decommissions one with a store handoff — see
  ``docs/TELEMETRY.md``).
* :mod:`repro.cluster.supervisor` — boots N worker shards (each a full
  ``repro.service`` server with its own store directory) as
  subprocesses (:class:`ClusterSupervisor`, kill-able for chaos runs)
  or as in-process threads (:class:`BackgroundCluster`, for tests and
  runnable docs).
* :mod:`repro.cluster.loadgen` — closed-loop zipfian load against any
  URL, with an optional mid-run shard kill.
* ``python -m repro.cluster`` — ``serve`` / ``status`` / ``bench``.

Shards stay byte-identical to a single-process service: the router
relays each shard's response body verbatim, and every shard computes
with the same deterministic oracle, so where a request lands never
changes what the caller sees.  Cache warming moves framed store entries
(the PR 6 integrity envelope) between shards; a receiving store
re-verifies the envelope, so a corrupted transfer is rejected, never
stored.  Walkthrough and knob reference: ``docs/CLUSTER.md``.
"""

from repro.cluster.hotkeys import HotKeyTracker
from repro.cluster.ring import HashRing
from repro.cluster.router import ClusterRouter, RouterMetrics
from repro.cluster.supervisor import (
    BackgroundCluster,
    BackgroundRouter,
    ClusterSupervisor,
)

__all__ = [
    "BackgroundCluster",
    "BackgroundRouter",
    "ClusterRouter",
    "ClusterSupervisor",
    "HashRing",
    "HotKeyTracker",
    "RouterMetrics",
]
