"""Boot, supervise, and kill the worker ring.

Two deployment shapes share one API surface:

* :class:`ClusterSupervisor` — real subprocesses, one
  ``python -m repro.service serve`` per shard, each with a private
  ``REPRO_STORE_DIR`` (its own artifact store) and result-cache
  directory.  This is what benchmarks and the ``serve`` CLI use:
  separate interpreters mean real parallelism (no shared GIL) and
  :meth:`ClusterSupervisor.kill_shard` delivers a genuine SIGKILL for
  chaos runs.
* :class:`BackgroundCluster` — the same topology inside one process
  (thread-per-shard :class:`~repro.service.server.BackgroundServer`
  plus a :class:`BackgroundRouter`).  For tests and runnable docs:
  no subprocess spawn cost, deterministic teardown, still exercising
  the full wire protocol over loopback sockets.
"""

from __future__ import annotations

import asyncio
import os
import signal
import socket
import subprocess
import sys
import threading
import time
from pathlib import Path

from repro.cluster.router import ClusterRouter

__all__ = ["ClusterSupervisor", "BackgroundCluster", "BackgroundRouter"]


def _free_port() -> int:
    """An OS-assigned free TCP port (raceable in principle, fine here)."""
    with socket.socket() as sock:
        sock.bind(("127.0.0.1", 0))
        return sock.getsockname()[1]


def _wait_healthy(url: str, timeout_s: float) -> None:
    from repro.service.client import ServiceClient

    deadline = time.monotonic() + timeout_s
    last: "Exception | None" = None
    while time.monotonic() < deadline:
        try:
            ServiceClient(url, timeout=2.0, retries=0).healthz()
            return
        except Exception as exc:  # noqa: BLE001 - still booting
            last = exc
            time.sleep(0.05)
    raise TimeoutError(f"shard at {url} not healthy after {timeout_s}s: {last}")


class ClusterSupervisor:
    """N subprocess shards, each a full ``repro.service`` server.

    Parameters
    ----------
    num_shards:
        Ring size.
    store_root:
        Parent directory; shard ``i`` gets ``store_root/shard-i`` as its
        ``REPRO_STORE_DIR`` (artifact store) and result-cache dir.
    jobs, max_batch_size, queue_bound:
        Per-shard service knobs, passed through to ``serve``.
    extra_args:
        Extra ``serve`` CLI flags appended to every shard's command
        line (e.g. ``["--no-telemetry"]``).
    """

    def __init__(
        self,
        num_shards: int = 3,
        *,
        store_root: "Path | str",
        jobs: "int | str" = 1,
        cache: bool = True,
        max_batch_size: int = 32,
        queue_bound: int = 1024,
        boot_timeout_s: float = 30.0,
        extra_args: "list[str] | None" = None,
    ) -> None:
        if num_shards < 1:
            raise ValueError("num_shards must be >= 1")
        self.num_shards = num_shards
        self.store_root = Path(store_root)
        self.jobs = jobs
        self.cache = cache
        self.max_batch_size = max_batch_size
        self.queue_bound = queue_bound
        self.boot_timeout_s = boot_timeout_s
        self.extra_args = list(extra_args or [])
        self.shard_urls: list[str] = []
        self._procs: list["subprocess.Popen | None"] = []

    # -- lifecycle ---------------------------------------------------------
    def _launch(self, index: int) -> str:
        """Boot shard ``index`` (its own store + cache dirs); no wait."""
        port = _free_port()
        shard_dir = self.store_root / f"shard-{index}"
        env = dict(os.environ)
        env["REPRO_STORE_DIR"] = str(shard_dir / "store")
        env.setdefault("PYTHONPATH", "")
        cmd = [
            sys.executable, "-m", "repro.service", "serve",
            "--host", "127.0.0.1", "--port", str(port),
            "--jobs", str(self.jobs),
            "--max-batch-size", str(self.max_batch_size),
            "--queue-bound", str(self.queue_bound),
        ]
        if self.cache:
            cmd += ["--cache-dir", str(shard_dir / "cache")]
        else:
            cmd += ["--no-cache"]
        cmd += self.extra_args
        proc = subprocess.Popen(
            cmd, env=env,
            stdout=subprocess.DEVNULL, stderr=subprocess.DEVNULL,
        )
        self._procs.append(proc)
        url = f"http://127.0.0.1:{port}"
        self.shard_urls.append(url)
        return url

    def start(self) -> list[str]:
        """Launch every shard and wait until all answer ``/healthz``."""
        assert not self._procs, "already started"
        self.store_root.mkdir(parents=True, exist_ok=True)
        for index in range(self.num_shards):
            self._launch(index)
        try:
            for url in self.shard_urls:
                _wait_healthy(url, self.boot_timeout_s)
        except Exception:
            self.stop()
            raise
        return list(self.shard_urls)

    def spawn_shard(self) -> str:
        """Boot one *additional* shard and wait for it; returns its URL.

        The new shard is not ring traffic yet — POST its URL to the
        router's ``/v1/ring/add`` to start routing to it (see
        docs/TELEMETRY.md for the membership walkthrough).
        """
        self.store_root.mkdir(parents=True, exist_ok=True)
        url = self._launch(len(self._procs))
        _wait_healthy(url, self.boot_timeout_s)
        return url

    def kill_shard(self, index: int, *, sig: int = signal.SIGKILL) -> str:
        """Abruptly kill one shard (chaos testing); returns its URL."""
        proc = self._procs[index]
        if proc is not None and proc.poll() is None:
            proc.send_signal(sig)
            proc.wait(timeout=10)
        self._procs[index] = None
        return self.shard_urls[index]

    def stop(self) -> None:
        """Graceful ring drain: SIGTERM every shard, SIGKILL stragglers."""
        for proc in self._procs:
            if proc is not None and proc.poll() is None:
                proc.terminate()
        deadline = time.monotonic() + 15
        for proc in self._procs:
            if proc is None:
                continue
            remaining = max(0.1, deadline - time.monotonic())
            try:
                proc.wait(timeout=remaining)
            except subprocess.TimeoutExpired:
                proc.kill()
                proc.wait(timeout=5)
        self._procs = []
        self.shard_urls = []

    def __enter__(self) -> "ClusterSupervisor":
        self.start()
        return self

    def __exit__(self, *exc_info) -> None:
        self.stop()


class BackgroundRouter:
    """A :class:`~repro.cluster.router.ClusterRouter` on its own thread.

    Mirrors :class:`~repro.service.server.BackgroundServer`: enter the
    context manager, talk to :attr:`url`, exit to drain.
    """

    def __init__(self, shard_urls: list[str], **router_kwargs) -> None:
        self._shard_urls = list(shard_urls)
        self._router_kwargs = router_kwargs
        self._thread: "threading.Thread | None" = None
        self._ready = threading.Event()
        self._loop: "asyncio.AbstractEventLoop | None" = None
        self._stop: "asyncio.Event | None" = None
        self._startup_error: "BaseException | None" = None
        self.router: "ClusterRouter | None" = None
        self.url = ""

    def __enter__(self) -> "BackgroundRouter":
        self._thread = threading.Thread(target=self._run, daemon=True,
                                        name="repro-cluster-router")
        self._thread.start()
        self._ready.wait()
        if self._startup_error is not None:
            raise self._startup_error
        return self

    def __exit__(self, *exc_info) -> None:
        self.stop()

    def _run(self) -> None:
        async def main() -> None:
            self._loop = asyncio.get_running_loop()
            self._stop = asyncio.Event()
            try:
                self.router = ClusterRouter(self._shard_urls,
                                            **self._router_kwargs)
                await self.router.start()
                self.url = self.router.url
            except BaseException as exc:
                self._startup_error = exc
                self._ready.set()
                return
            self._ready.set()
            await self._stop.wait()
            await self.router.shutdown()

        asyncio.run(main())

    def stop(self) -> None:
        if self._thread is None:
            return
        if self._loop is not None and self._stop is not None:
            self._loop.call_soon_threadsafe(self._stop.set)
        self._thread.join(timeout=60)
        self._thread = None


class BackgroundCluster:
    """A whole ring in one process: N thread shards + a thread router.

    >>> from repro.cluster import BackgroundCluster           # doctest: +SKIP
    >>> with BackgroundCluster(num_shards=3) as cluster:      # doctest: +SKIP
    ...     ServiceClient(cluster.url).cost("sum", "hmm", {"n": 4096, "p": 64})

    Shard result caches are isolated per shard under ``cache_root``
    (pass ``None`` for cache-off shards).  Because every shard lives in
    this process, throughput is GIL-bound — use
    :class:`ClusterSupervisor` to measure scaling; use this for
    correctness, warming, and failure-semantics tests.
    """

    def __init__(
        self,
        num_shards: int = 3,
        *,
        cache_root: "Path | str | None" = None,
        server_kwargs: "dict | None" = None,
        **router_kwargs,
    ) -> None:
        if num_shards < 1:
            raise ValueError("num_shards must be >= 1")
        self.num_shards = num_shards
        self.cache_root = None if cache_root is None else Path(cache_root)
        self._server_kwargs = dict(server_kwargs or {})
        self._router_kwargs = router_kwargs
        self.servers: list = []
        self._router: "BackgroundRouter | None" = None
        self.url = ""

    @property
    def shard_urls(self) -> list[str]:
        return [srv.url for srv in self.servers]

    @property
    def router(self) -> "ClusterRouter | None":
        return self._router.router if self._router else None

    def __enter__(self) -> "BackgroundCluster":
        from repro.service.server import BackgroundServer

        try:
            for index in range(self.num_shards):
                kwargs = dict(self._server_kwargs)
                if self.cache_root is None:
                    kwargs.setdefault("cache", False)
                else:
                    kwargs.setdefault("cache", True)
                    kwargs.setdefault(
                        "cache_dir", self.cache_root / f"shard-{index}"
                    )
                server = BackgroundServer(**kwargs)
                server.__enter__()
                self.servers.append(server)
            self._router = BackgroundRouter(self.shard_urls,
                                            **self._router_kwargs)
            self._router.__enter__()
            self.url = self._router.url
        except BaseException:
            self.__exit__()
            raise
        return self

    def __exit__(self, *exc_info) -> None:
        if self._router is not None:
            self._router.stop()
            self._router = None
        for server in self.servers:
            server.stop()
        self.servers = []

    def stop_shard(self, index: int) -> str:
        """Gracefully drain one shard (its URL keeps failing fast after).

        Thread shards can't be SIGKILLed; for abrupt-death chaos runs
        use :class:`ClusterSupervisor`.
        """
        server = self.servers[index]
        url = server.url
        server.stop()
        return url

    def add_shard(self) -> str:
        """Boot one more thread shard; returns its URL.

        Same cache layout as the initial shards (``cache_root/shard-N``).
        Like :meth:`ClusterSupervisor.spawn_shard`, the new shard serves
        but receives no ring traffic until ``/v1/ring/add`` names it.
        """
        from repro.service.server import BackgroundServer

        index = len(self.servers)
        kwargs = dict(self._server_kwargs)
        if self.cache_root is None:
            kwargs.setdefault("cache", False)
        else:
            kwargs.setdefault("cache", True)
            kwargs.setdefault("cache_dir", self.cache_root / f"shard-{index}")
        server = BackgroundServer(**kwargs)
        server.__enter__()
        self.servers.append(server)
        return server.url
