"""Consistent hashing with virtual nodes.

Each shard is hashed onto a 64-bit ring at ``vnodes`` positions; a key
hashes to one position and its owners are the next distinct shards
walking clockwise.  Two properties carry the cluster design:

* **Stability** — adding or losing one shard remaps only the ranges
  that shard owned; every other key keeps its owner (no rehash storms,
  warm caches stay warm).
* **Ordered fallback** — ``owners(key, count)`` returns a *succession
  list*: the primary first, then the shards that inherit the range if
  the primary dies.  The router's reroute and the hot-key replica set
  are both just prefixes of this list, so failure handling and
  replication agree about where a key lives.

Positions come from SHA-256, so every process (router, shards, tests)
computes an identical ring from the shard names alone — there is no
membership protocol to converge.
"""

from __future__ import annotations

import bisect
import hashlib
from typing import Callable, Iterable

__all__ = ["HashRing", "ring_position"]

_RING_BITS = 64
_RING_MASK = (1 << _RING_BITS) - 1


def ring_position(material: str) -> int:
    """Deterministic 64-bit ring position of an arbitrary string."""
    digest = hashlib.sha256(material.encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "big") & _RING_MASK


class HashRing:
    """A consistent-hash ring over named shards.

    Construction is deterministic from the shard names alone, and
    :meth:`add` / :meth:`remove` preserve that: a ring that grew into a
    membership is positioned identically to one constructed with it, so
    every process that knows the member list agrees on ownership.

    >>> ring = HashRing(["a", "b", "c"], vnodes=64)
    >>> owners = ring.owners("some-key", count=2)
    >>> len(owners), len(set(owners))
    (2, 2)
    >>> ring.owners("some-key")[0] == owners[0]
    True
    """

    def __init__(self, shards: Iterable[str], *, vnodes: int = 64) -> None:
        self.shards = list(dict.fromkeys(shards))  # order kept, dupes dropped
        if not self.shards:
            raise ValueError("a ring needs at least one shard")
        if vnodes < 1:
            raise ValueError(f"vnodes must be >= 1, got {vnodes}")
        self.vnodes = vnodes
        points: list[tuple[int, str]] = []
        for shard in self.shards:
            for replica in range(vnodes):
                points.append((ring_position(f"{shard}#{replica}"), shard))
        points.sort()
        self._positions = [pos for pos, _ in points]
        self._owners = [shard for _, shard in points]

    def add(self, shard: str) -> bool:
        """Join one shard; only its ranges change owner.

        Returns ``False`` (no-op) when the shard is already a member.
        Vnodes are spliced into the sorted point list exactly where a
        from-scratch construction would put them — including the
        position-collision tie-break on shard name — so grown and
        freshly-built rings are indistinguishable.
        """
        if shard in self.shards:
            return False
        self.shards.append(shard)
        for replica in range(self.vnodes):
            pos = ring_position(f"{shard}#{replica}")
            index = bisect.bisect_left(self._positions, pos)
            while (index < len(self._positions)
                   and self._positions[index] == pos
                   and self._owners[index] < shard):
                index += 1
            self._positions.insert(index, pos)
            self._owners.insert(index, shard)
        return True

    def remove(self, shard: str) -> None:
        """Leave the ring; the shard's ranges fall to their successors.

        Raises ``ValueError`` for a non-member or when the shard is the
        last one (an empty ring routes nothing).
        """
        if shard not in self.shards:
            raise ValueError(f"{shard!r} is not a ring member")
        if len(self.shards) == 1:
            raise ValueError("cannot remove the last shard")
        self.shards.remove(shard)
        kept = [(pos, owner)
                for pos, owner in zip(self._positions, self._owners)
                if owner != shard]
        self._positions = [pos for pos, _ in kept]
        self._owners = [owner for _, owner in kept]

    def owners(
        self,
        key: str,
        count: int = 1,
        *,
        alive: "Callable[[str], bool] | None" = None,
    ) -> list[str]:
        """The first ``count`` distinct shards clockwise from ``key``.

        With an ``alive`` predicate, dead shards are skipped — their
        ranges fall to the next live successor, which is exactly the
        reroute the router performs.  Returns fewer than ``count``
        entries (possibly none) when not enough live shards exist.
        """
        start = bisect.bisect_right(self._positions, ring_position(key))
        found: list[str] = []
        total = len(self._owners)
        for step in range(total):
            shard = self._owners[(start + step) % total]
            if shard in found:
                continue
            if alive is not None and not alive(shard):
                continue
            found.append(shard)
            if len(found) == count:
                break
        return found

    def ownership(self) -> dict[str, float]:
        """Fraction of the key space each shard owns (sums to 1.0)."""
        spans: dict[str, int] = {shard: 0 for shard in self.shards}
        total = len(self._positions)
        for i, pos in enumerate(self._positions):
            next_pos = self._positions[(i + 1) % total]
            span = (next_pos - pos) & _RING_MASK
            if total == 1:
                span = _RING_MASK + 1
            # The arc *after* point i belongs to the owner of point i+1
            # (keys bisect to the next clockwise point).
            spans[self._owners[(i + 1) % total]] += span
        scale = float(_RING_MASK + 1)
        return {shard: spans[shard] / scale for shard in self.shards}
