"""The cluster's front door: consistent-hash routing over live shards.

One asyncio process that owns no oracle at all — it parses just enough
of each request to derive a routing key, picks the owner shard from the
:class:`~repro.cluster.ring.HashRing`, and relays the shard's response
body **byte-for-byte** (the shard serialized it canonically; the router
never re-encodes), which is what makes cluster responses provably
identical to a single-process service.

Routing keys
------------
``POST /v1/cost`` and ``GET /v1/advise`` route on the canonical
:func:`~repro.service.protocol.spec_key` of the parsed spec, so two
requests that differ only in defaulted fields land on the same shard
and share its cache.  ``/v1/sweep`` and ``/v1/tune`` route on the
canonical JSON of the whole payload.  ``/v1/store/push``/``pull`` route
on the store key.  A request the router cannot parse is forwarded to
any live shard, whose authoritative 400 is relayed unchanged.

Hot keys and replication
------------------------
A sliding-window sketch (:class:`~repro.cluster.hotkeys.HotKeyTracker`)
tracks per-key traffic.  A promoted (hot) key is served by the first
``replicas`` shards of its ring succession list, round-robin; requests
forwarded for a hot key carry the
:data:`~repro.service.server.WARM_PEERS_HEADER` naming the sibling
replicas, so whichever shard computes the artifact pushes the framed
store entry to the others (see ``ServiceServer._maybe_warm_push``).

Failure handling
----------------
A health loop probes every shard's ``/healthz``; a forward that fails
at the transport level marks the shard dead *passively* and reroutes to
the next candidate in ring order (then to any live shard — every shard
can compute every answer, ownership is a cache-locality optimization,
not a correctness constraint).  Oracle requests are deterministic and
idempotent, so rerouting a request that died mid-flight is safe.  Only
when no shard at all is live does the router answer
``503 + Retry-After`` — and the client's retry/backoff (see
:mod:`repro.service.client`) rides out the gap.
"""

from __future__ import annotations

import asyncio
import json
from collections import Counter
from urllib.parse import parse_qsl, urlsplit

from repro.cluster.hotkeys import HotKeyTracker
from repro.cluster.ring import HashRing
from repro.service.clock import Clock
from repro.service.http import (
    HttpError,
    error_body,
    read_request,
    write_response,
)
from repro.service.protocol import (
    ProtocolError,
    parse_advise_request,
    parse_cost_request,
    spec_key,
)
from repro.service.server import WARM_PEERS_HEADER

__all__ = ["ClusterRouter", "RouterMetrics"]

#: Transport failures that mean "this shard is unreachable/dead now".
_SHARD_ERRORS = (ConnectionError, OSError, asyncio.TimeoutError,
                 asyncio.IncompleteReadError)

#: Response headers the router relays from the shard to the client.
_RELAYED_HEADERS = ("retry-after",)


class RouterMetrics:
    """Ring-level counters, rendered under ``/metrics`` → ``cluster``."""

    def __init__(self, clock: "Clock | None" = None) -> None:
        self.clock = clock or Clock()
        self.started_at = self.clock.monotonic()
        #: (path, status) -> count, as seen by *clients* of the router.
        self.requests: Counter = Counter()
        #: shard url -> requests forwarded there (attempts that got a
        #: response, successful or not).
        self.forwards: Counter = Counter()
        self.reroutes = 0          # forward attempts moved to another shard
        self.shard_failures = 0    # transport errors talking to shards
        self.no_live_shard = 0     # 503s: every candidate was down
        self.hot_spread = 0        # hot-key requests sent to a non-primary
        self.warm_headers_set = 0  # forwards that carried warm peers
        self.health_transitions = 0

    def observe(self, path: str, status: int) -> None:
        self.requests[(path, status)] += 1

    def snapshot(self) -> dict:
        by_path: dict[str, dict[str, int]] = {}
        for (path, status), count in sorted(self.requests.items()):
            by_path.setdefault(path, {})[str(status)] = count
        return {
            "uptime_s": round(self.clock.monotonic() - self.started_at, 3),
            "requests": by_path,
            "requests_total": sum(self.requests.values()),
            "forwards": {url: self.forwards[url]
                         for url in sorted(self.forwards)},
            "reroutes": self.reroutes,
            "shard_failures": self.shard_failures,
            "no_live_shard_503": self.no_live_shard,
            "hot_spread": self.hot_spread,
            "warm_headers_set": self.warm_headers_set,
            "health_transitions": self.health_transitions,
        }


class ClusterRouter:
    """Route requests onto a fixed set of shard URLs.

    Parameters
    ----------
    shard_urls:
        The worker ring, e.g. ``["http://127.0.0.1:9001", ...]``.  The
        set is fixed for the router's lifetime; liveness within it is
        dynamic.
    replicas:
        Owner-list length for *hot* keys (cold keys always have exactly
        one serving owner).  Clamped to the ring size.
    vnodes:
        Virtual nodes per shard on the hash ring.
    hot_window_s, hot_top_k, hot_min_count:
        Hot-key sketch knobs — see
        :class:`~repro.cluster.hotkeys.HotKeyTracker`.
    health_interval_s, connect_timeout_s, request_timeout_s:
        Probe cadence and per-forward timeouts.
    """

    def __init__(
        self,
        shard_urls: list[str],
        *,
        host: str = "127.0.0.1",
        port: int = 0,
        replicas: int = 2,
        vnodes: int = 64,
        hot_window_s: float = 10.0,
        hot_top_k: int = 8,
        hot_min_count: int = 16,
        health_interval_s: float = 0.5,
        connect_timeout_s: float = 2.0,
        request_timeout_s: float = 120.0,
        clock: "Clock | None" = None,
    ) -> None:
        if not shard_urls:
            raise ValueError("a cluster needs at least one shard URL")
        self.host = host
        self.port = port
        self.clock = clock or Clock()
        self.ring = HashRing(shard_urls, vnodes=vnodes)
        self.replicas = max(1, min(replicas, len(self.ring.shards)))
        self.hotkeys = HotKeyTracker(
            window_s=hot_window_s, buckets=10, top_k=hot_top_k,
            min_count=hot_min_count, clock=self.clock,
        )
        self.metrics = RouterMetrics(self.clock)
        self.health_interval_s = health_interval_s
        self.connect_timeout_s = connect_timeout_s
        self.request_timeout_s = request_timeout_s
        self._alive: dict[str, bool] = {url: True for url in self.ring.shards}
        self._rr: Counter = Counter()      # hot key -> round-robin cursor
        self._hot_cache: list[str] = []
        self._hot_cache_at = -1.0
        self._server: asyncio.Server | None = None
        self._health_task: asyncio.Task | None = None
        self._inflight = 0
        self._idle = asyncio.Event()
        self._idle.set()
        self._shutdown_started = False
        self._stopped = asyncio.Event()

    # -- lifecycle ---------------------------------------------------------
    async def start(self) -> None:
        self._server = await asyncio.start_server(
            self._handle_connection, self.host, self.port
        )
        self.port = self._server.sockets[0].getsockname()[1]
        self._health_task = asyncio.ensure_future(self._health_loop())

    @property
    def url(self) -> str:
        return f"http://{self.host}:{self.port}"

    async def serve_forever(self) -> None:
        assert self._server is not None, "call start() first"
        await self._stopped.wait()

    async def shutdown(self) -> None:
        """Graceful ring drain: stop accepting, finish in-flight relays."""
        if self._shutdown_started:
            await self._stopped.wait()
            return
        self._shutdown_started = True
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        try:
            await asyncio.wait_for(self._idle.wait(), timeout=30)
        except asyncio.TimeoutError:
            pass
        if self._health_task is not None:
            self._health_task.cancel()
            try:
                await self._health_task
            except asyncio.CancelledError:
                pass
        self._stopped.set()

    @property
    def draining(self) -> bool:
        return self._shutdown_started

    # -- liveness ----------------------------------------------------------
    def alive_shards(self) -> list[str]:
        return [url for url in self.ring.shards if self._alive[url]]

    def _mark(self, url: str, alive: bool) -> None:
        if self._alive[url] != alive:
            self._alive[url] = alive
            self.metrics.health_transitions += 1

    async def _health_loop(self) -> None:
        from repro.service.client import AsyncServiceClient

        while True:
            await asyncio.sleep(self.health_interval_s)
            for url in self.ring.shards:
                client = AsyncServiceClient(
                    url, timeout=self.connect_timeout_s, retries=0,
                )
                try:
                    body = await asyncio.wait_for(
                        client.healthz(), self.connect_timeout_s * 2
                    )
                    self._mark(url, body.get("status") in ("ok", "draining"))
                except Exception:  # noqa: BLE001 - any failure = down
                    self._mark(url, False)

    # -- connection handling ----------------------------------------------
    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        try:
            while True:
                try:
                    parsed = await read_request(reader)
                except HttpError as exc:
                    await write_response(
                        writer, exc.status, exc.body, exc.headers, False
                    )
                    break
                if parsed is None:
                    break
                method, target, http_version, headers, payload, raw = parsed
                path = urlsplit(target).path
                self._inflight += 1
                self._idle.clear()
                try:
                    status, body, extra = await self._dispatch(
                        method, target, path, payload, raw
                    )
                except HttpError as exc:
                    status, body, extra = exc.status, exc.body, exc.headers
                except Exception as exc:  # noqa: BLE001 - last resort
                    status = 500
                    body = error_body("internal",
                                      f"{type(exc).__name__}: {exc}")
                    extra = {}
                finally:
                    self._inflight -= 1
                    if self._inflight == 0:
                        self._idle.set()
                self.metrics.observe(path, status)
                keep_alive = (
                    not self._shutdown_started
                    and http_version != "HTTP/1.0"
                    and headers.get("connection", "").lower() != "close"
                )
                await write_response(writer, status, body, extra, keep_alive)
                if not keep_alive:
                    break
        except (ConnectionError, asyncio.IncompleteReadError):
            pass
        except asyncio.CancelledError:
            pass
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass

    # -- routing -----------------------------------------------------------
    async def _dispatch(
        self, method: str, target: str, path: str, payload, raw: bytes
    ) -> "tuple[int, dict | bytes, dict[str, str]]":
        if self._shutdown_started:
            raise HttpError(
                503, error_body("draining", "cluster is draining"),
                {"Retry-After": "1"},
            )
        if (method, path) == ("GET", "/healthz"):
            return 200, self._healthz_body(), {}
        if (method, path) == ("GET", "/metrics"):
            return 200, await self._metrics_body(), {}
        known = {
            ("POST", "/v1/cost"), ("POST", "/v1/sweep"),
            ("POST", "/v1/tune"), ("GET", "/v1/advise"),
            ("POST", "/v1/store/push"), ("GET", "/v1/store/pull"),
        }
        if (method, path) not in known:
            if path in {p for _, p in known} | {"/healthz", "/metrics"}:
                raise HttpError(
                    405, error_body("method_not_allowed",
                                    f"{method} not supported on {path}")
                )
            raise HttpError(404, error_body("not_found", f"no route {path}"))
        key = self._routing_key(method, target, path, payload)
        return await self._forward(method, target, path, raw, key)

    def _routing_key(
        self, method: str, target: str, path: str, payload
    ) -> "str | None":
        """Canonical routing key, or ``None`` for unroutable requests
        (those go to any live shard, which renders the authoritative
        error)."""
        try:
            if path == "/v1/cost":
                return "spec:" + spec_key(parse_cost_request(payload))
            if path == "/v1/advise":
                query = dict(parse_qsl(urlsplit(target).query))
                return "spec:" + spec_key(parse_advise_request(query))
            if path in ("/v1/sweep", "/v1/tune"):
                material = json.dumps(payload, sort_keys=True)
                return f"{path}:{material}"
            if path == "/v1/store/push" and isinstance(payload, dict):
                return f"store:{payload.get('namespace')}:{payload.get('key')}"
            if path == "/v1/store/pull":
                query = dict(parse_qsl(urlsplit(target).query))
                return f"store:{query.get('namespace')}:{query.get('key')}"
        except ProtocolError:
            return None
        except (TypeError, ValueError):
            return None
        return None

    def _hot_set(self) -> list[str]:
        """The promoted keys, recomputed at most once per window bucket."""
        now = self.clock.monotonic()
        if now - self._hot_cache_at >= self.hotkeys._bucket_s:
            self._hot_cache = self.hotkeys.hot_keys()
            self._hot_cache_at = now
        return self._hot_cache

    def _candidates(self, key: "str | None") -> tuple[list[str], list[str]]:
        """(try-order, warm-peers) for one request.

        Try-order: the serving owner first (round-robin over replicas
        for hot keys), then the remaining ring succession, then every
        other live shard as a last resort.  Warm-peers: the hot-key
        replica set minus the serving owner (empty for cold keys).
        """
        alive = self.alive_shards()
        if key is None:
            return alive, []
        is_alive = self._alive.__getitem__
        hot = key in self._hot_set()
        if hot:
            owners = self.ring.owners(key, self.replicas, alive=is_alive)
        else:
            owners = self.ring.owners(key, 1, alive=is_alive)
        warm_peers: list[str] = []
        order = list(owners)
        if hot and len(owners) > 1:
            cursor = self._rr[key]
            self._rr[key] = cursor + 1
            primary = owners[cursor % len(owners)]
            if primary != owners[0]:
                self.metrics.hot_spread += 1
            order = [primary] + [u for u in owners if u != primary]
            warm_peers = [u for u in owners if u != primary]
        order += [u for u in alive if u not in order]
        return order, warm_peers

    async def _forward(
        self, method: str, target: str, path: str, raw: bytes,
        key: "str | None",
    ) -> "tuple[int, bytes, dict[str, str]]":
        if key is not None and path not in ("/v1/store/push",
                                            "/v1/store/pull"):
            self.hotkeys.observe(key)
        order, warm_peers = self._candidates(key)
        for index, url in enumerate(order):
            if index > 0:
                self.metrics.reroutes += 1
            extra_request_headers = {}
            peers = [p for p in warm_peers if p != url]
            if peers:
                extra_request_headers[WARM_PEERS_HEADER] = ",".join(peers)
            try:
                status, headers, body = await self._forward_once(
                    url, method, target, raw, extra_request_headers
                )
            except _SHARD_ERRORS:
                self.metrics.shard_failures += 1
                self._mark(url, False)
                continue
            self.metrics.forwards[url] += 1
            if peers:
                self.metrics.warm_headers_set += 1
            relay = {
                name.title(): value
                for name, value in headers.items()
                if name in _RELAYED_HEADERS
            }
            return status, body, relay
        self.metrics.no_live_shard += 1
        raise HttpError(
            503,
            error_body("no_live_shard",
                       f"no live shard can serve {path} right now"),
            {"Retry-After": "1"},
        )

    async def _forward_once(
        self, url: str, method: str, target: str, raw: bytes,
        extra_headers: dict[str, str],
    ) -> tuple[int, dict[str, str], bytes]:
        """One relay attempt; returns the shard's raw response body."""
        split = urlsplit(url)
        host, port = split.hostname, split.port or 80
        reader, writer = await asyncio.wait_for(
            asyncio.open_connection(host, port), self.connect_timeout_s
        )
        try:
            head = [
                f"{method} {target} HTTP/1.1",
                f"Host: {host}:{port}",
                f"Content-Length: {len(raw)}",
                "Content-Type: application/json",
                "Connection: close",
            ]
            head.extend(f"{k}: {v}" for k, v in extra_headers.items())
            writer.write(("\r\n".join(head) + "\r\n\r\n").encode() + raw)
            await writer.drain()
            status_line = await asyncio.wait_for(
                reader.readline(), self.request_timeout_s
            )
            if not status_line:
                raise ConnectionResetError("shard closed before responding")
            status = int(status_line.split(maxsplit=2)[1])
            headers: dict[str, str] = {}
            while True:
                line = await asyncio.wait_for(
                    reader.readline(), self.request_timeout_s
                )
                if line in (b"\r\n", b"\n", b""):
                    break
                name, _, value = line.decode("latin-1").partition(":")
                headers[name.strip().lower()] = value.strip()
            length = int(headers.get("content-length", "0"))
            body = await asyncio.wait_for(
                reader.readexactly(length), self.request_timeout_s
            )
            return status, headers, body
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass

    # -- local endpoints ---------------------------------------------------
    def _healthz_body(self) -> dict:
        alive = self._alive
        return {
            "status": "draining" if self._shutdown_started else (
                "ok" if any(alive.values()) else "degraded"
            ),
            "shards": {url: ("up" if alive[url] else "down")
                       for url in self.ring.shards},
            "replicas": self.replicas,
        }

    async def _metrics_body(self) -> dict:
        from repro.service.client import AsyncServiceClient

        async def shard_metrics(url: str):
            if not self._alive[url]:
                return url, {"error": "down"}
            try:
                client = AsyncServiceClient(
                    url, timeout=self.connect_timeout_s, retries=0,
                )
                return url, await asyncio.wait_for(
                    client.metrics(), self.connect_timeout_s * 4
                )
            except Exception as exc:  # noqa: BLE001 - report, don't fail
                return url, {"error": f"{type(exc).__name__}: {exc}"}

        gathered = await asyncio.gather(
            *(shard_metrics(url) for url in self.ring.shards)
        )
        shards = dict(gathered)
        warm_hits = 0
        warm_pushes = 0
        for body in shards.values():
            store = body.get("store") if isinstance(body, dict) else None
            if isinstance(store, dict):
                warm_hits += sum(
                    ns.get("hits_remote", 0) for ns in store.values()
                    if isinstance(ns, dict)
                )
            warming = body.get("warming") if isinstance(body, dict) else None
            if isinstance(warming, dict):
                warm_pushes += warming.get("pushes_sent", 0)
        return {
            "cluster": {
                "router": self.metrics.snapshot(),
                "ring": {
                    "shards": list(self.ring.shards),
                    "alive": dict(self._alive),
                    "ownership": {
                        url: round(frac, 4)
                        for url, frac in self.ring.ownership().items()
                    },
                    "replicas": self.replicas,
                    "vnodes": self.ring.vnodes,
                },
                "hot": self.hotkeys.snapshot(),
                "warming": {
                    "pushes_sent_total": warm_pushes,
                    "hits_remote_total": warm_hits,
                },
            },
            "shards": shards,
        }
