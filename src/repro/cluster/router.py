"""The cluster's front door: consistent-hash routing over live shards.

One asyncio process that owns no oracle at all — it parses just enough
of each request to derive a routing key, picks the owner shard from the
:class:`~repro.cluster.ring.HashRing`, and relays the shard's response
body **byte-for-byte** (the shard serialized it canonically; the router
never re-encodes), which is what makes cluster responses provably
identical to a single-process service.

Routing keys
------------
``POST /v1/cost`` and ``GET /v1/advise`` route on the canonical
:func:`~repro.service.protocol.spec_key` of the parsed spec, so two
requests that differ only in defaulted fields land on the same shard
and share its cache.  ``/v1/sweep`` and ``/v1/tune`` route on the
canonical JSON of the whole payload.  ``/v1/store/push``/``pull`` route
on the store key.  A request the router cannot parse is forwarded to
any live shard, whose authoritative 400 is relayed unchanged.

Hot keys and replication
------------------------
A sliding-window sketch (:class:`~repro.cluster.hotkeys.HotKeyTracker`)
tracks per-key traffic.  A promoted (hot) key is served by the first
``replicas`` shards of its ring succession list, round-robin; requests
forwarded for a hot key carry the
:data:`~repro.service.server.WARM_PEERS_HEADER` naming the sibling
replicas, so whichever shard computes the artifact pushes the framed
store entry to the others (see ``ServiceServer._maybe_warm_push``).

Failure handling
----------------
A health loop probes every shard's ``/healthz``; a forward that fails
at the transport level marks the shard dead *passively* and reroutes to
the next candidate in ring order (then to any live shard — every shard
can compute every answer, ownership is a cache-locality optimization,
not a correctness constraint).  Oracle requests are deterministic and
idempotent, so rerouting a request that died mid-flight is safe.  Only
when no shard at all is live does the router answer
``503 + Retry-After`` — and the client's retry/backoff (see
:mod:`repro.service.client`) rides out the gap.
"""

from __future__ import annotations

import asyncio
import json
from collections import Counter
from urllib.parse import parse_qsl, urlsplit

from repro.cluster.hotkeys import HotKeyTracker
from repro.cluster.ring import HashRing
from repro.service.clock import Clock
from repro.service.http import (
    HttpError,
    error_body,
    read_request,
    write_response,
)
from repro.service.protocol import (
    ProtocolError,
    parse_advise_request,
    parse_cost_request,
    parse_events_query,
    parse_ring_change,
    spec_key,
)
from repro.service.server import WARM_PEERS_HEADER
from repro.telemetry.events import DEFAULT_CAPACITY, EventBus
from repro.telemetry.series import MetricsRecorder
from repro.telemetry.stream import stream_over_http

__all__ = ["ClusterRouter", "RouterMetrics"]

#: Transport failures that mean "this shard is unreachable/dead now".
_SHARD_ERRORS = (ConnectionError, OSError, asyncio.TimeoutError,
                 asyncio.IncompleteReadError)

#: Response headers the router relays from the shard to the client.
_RELAYED_HEADERS = ("retry-after",)


class RouterMetrics:
    """Ring-level counters, rendered under ``/metrics`` → ``cluster``."""

    def __init__(self, clock: "Clock | None" = None) -> None:
        self.clock = clock or Clock()
        self.started_at = self.clock.monotonic()
        #: (path, status) -> count, as seen by *clients* of the router.
        self.requests: Counter = Counter()
        #: shard url -> requests forwarded there (attempts that got a
        #: response, successful or not).
        self.forwards: Counter = Counter()
        self.reroutes = 0          # forward attempts moved to another shard
        self.shard_failures = 0    # transport errors talking to shards
        self.no_live_shard = 0     # 503s: every candidate was down
        self.hot_spread = 0        # hot-key requests sent to a non-primary
        self.warm_headers_set = 0  # forwards that carried warm peers
        self.health_transitions = 0
        # Live membership (POST /v1/ring/add | /v1/ring/drain).
        self.ring_adds = 0
        self.ring_drains = 0
        self.handoff_pushed = 0    # entries relayed during drains
        self.handoff_failures = 0

    def observe(self, path: str, status: int) -> None:
        self.requests[(path, status)] += 1

    def snapshot(self) -> dict:
        by_path: dict[str, dict[str, int]] = {}
        for (path, status), count in sorted(self.requests.items()):
            by_path.setdefault(path, {})[str(status)] = count
        return {
            "uptime_s": round(self.clock.monotonic() - self.started_at, 3),
            "requests": by_path,
            "requests_total": sum(self.requests.values()),
            "forwards": {url: self.forwards[url]
                         for url in sorted(self.forwards)},
            "reroutes": self.reroutes,
            "shard_failures": self.shard_failures,
            "no_live_shard_503": self.no_live_shard,
            "hot_spread": self.hot_spread,
            "warm_headers_set": self.warm_headers_set,
            "health_transitions": self.health_transitions,
            "ring_adds": self.ring_adds,
            "ring_drains": self.ring_drains,
            "handoff_pushed": self.handoff_pushed,
            "handoff_failures": self.handoff_failures,
        }


class ClusterRouter:
    """Route requests onto a fixed set of shard URLs.

    Parameters
    ----------
    shard_urls:
        The worker ring, e.g. ``["http://127.0.0.1:9001", ...]``.  The
        set is fixed for the router's lifetime; liveness within it is
        dynamic.
    replicas:
        Owner-list length for *hot* keys (cold keys always have exactly
        one serving owner).  Clamped to the ring size.
    vnodes:
        Virtual nodes per shard on the hash ring.
    hot_window_s, hot_top_k, hot_min_count:
        Hot-key sketch knobs — see
        :class:`~repro.cluster.hotkeys.HotKeyTracker`.
    health_interval_s, connect_timeout_s, request_timeout_s:
        Probe cadence and per-forward timeouts.
    multiplex, poll_timeout_s:
        When ``multiplex`` is on (default) the router long-polls every
        shard's ``/v1/events`` and re-emits each event on its own bus
        (tagged with ``shard``/``shard_seq``), so one stream shows the
        whole cluster.  ``poll_timeout_s`` is the per-round wait.
    telemetry_resolution_s, telemetry_retention, event_capacity:
        Router-side metrics recorder and event-ring knobs (see
        :mod:`repro.telemetry`).
    """

    def __init__(
        self,
        shard_urls: list[str],
        *,
        host: str = "127.0.0.1",
        port: int = 0,
        replicas: int = 2,
        vnodes: int = 64,
        hot_window_s: float = 10.0,
        hot_top_k: int = 8,
        hot_min_count: int = 16,
        health_interval_s: float = 0.5,
        connect_timeout_s: float = 2.0,
        request_timeout_s: float = 120.0,
        clock: "Clock | None" = None,
        multiplex: bool = True,
        poll_timeout_s: float = 2.0,
        telemetry_resolution_s: float = 1.0,
        telemetry_retention: int = 300,
        event_capacity: int = DEFAULT_CAPACITY,
    ) -> None:
        if not shard_urls:
            raise ValueError("a cluster needs at least one shard URL")
        self.host = host
        self.port = port
        self.clock = clock or Clock()
        self.ring = HashRing(shard_urls, vnodes=vnodes)
        self._replicas_target = max(1, replicas)
        self.replicas = max(1, min(replicas, len(self.ring.shards)))
        self.hotkeys = HotKeyTracker(
            window_s=hot_window_s, buckets=10, top_k=hot_top_k,
            min_count=hot_min_count, clock=self.clock,
        )
        self.metrics = RouterMetrics(self.clock)
        self.health_interval_s = health_interval_s
        self.connect_timeout_s = connect_timeout_s
        self.request_timeout_s = request_timeout_s
        self._alive: dict[str, bool] = {url: True for url in self.ring.shards}
        self._rr: Counter = Counter()      # hot key -> round-robin cursor
        self._hot_cache: list[str] = []
        self._hot_cache_at = -1.0
        self._server: asyncio.Server | None = None
        self._health_task: asyncio.Task | None = None
        self._inflight = 0
        self._idle = asyncio.Event()
        self._idle.set()
        self._shutdown_started = False
        self._stopped = asyncio.Event()
        # Telemetry: the router's own bus carries its lifecycle +
        # routing events, and (with multiplex on) every shard's feed,
        # re-emitted in arrival order under router-assigned seqs.
        self.multiplex = multiplex
        self.poll_timeout_s = poll_timeout_s
        self.events = EventBus(capacity=event_capacity, clock=self.clock)
        self._stream_stop = asyncio.Event()
        self._stream_tasks: set[asyncio.Task] = set()
        self.recorder = MetricsRecorder(
            self.metrics.snapshot,
            resolution_s=telemetry_resolution_s,
            retention=telemetry_retention,
            clock=self.clock,
            bus=self.events,
            name="router",
        )
        self._recorder_task: asyncio.Task | None = None
        self._mux_tasks: dict[str, asyncio.Task] = {}
        self._hot_prev: frozenset = frozenset()

    # -- lifecycle ---------------------------------------------------------
    async def start(self) -> None:
        self._server = await asyncio.start_server(
            self._handle_connection, self.host, self.port
        )
        self.port = self._server.sockets[0].getsockname()[1]
        self._health_task = asyncio.ensure_future(self._health_loop())
        self._recorder_task = asyncio.ensure_future(self.recorder.run())
        if self.multiplex:
            for url in self.ring.shards:
                self._start_multiplex(url)
        self.events.emit("router.start", port=self.port,
                         shards=len(self.ring.shards))

    @property
    def url(self) -> str:
        return f"http://{self.host}:{self.port}"

    async def serve_forever(self) -> None:
        assert self._server is not None, "call start() first"
        await self._stopped.wait()

    async def shutdown(self) -> None:
        """Graceful ring drain: stop accepting, finish in-flight relays."""
        if self._shutdown_started:
            await self._stopped.wait()
            return
        self._shutdown_started = True
        # Drain sentinel first, stop flag right after: open SSE streams
        # deliver the sentinel as their last frame and close cleanly.
        self.events.emit("router.drain", port=self.port)
        self._stream_stop.set()
        if self._stream_tasks:
            await asyncio.wait(self._stream_tasks, timeout=5)
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        try:
            await asyncio.wait_for(self._idle.wait(), timeout=30)
        except asyncio.TimeoutError:
            pass
        background = [self._health_task, self._recorder_task,
                      *self._mux_tasks.values()]
        self._mux_tasks = {}
        for task in background:
            if task is None:
                continue
            task.cancel()
            try:
                await task
            except asyncio.CancelledError:
                pass
        self._stopped.set()

    @property
    def draining(self) -> bool:
        return self._shutdown_started

    # -- liveness ----------------------------------------------------------
    def alive_shards(self) -> list[str]:
        return [url for url in self.ring.shards if self._alive[url]]

    def _mark(self, url: str, alive: bool) -> None:
        if url not in self._alive:
            return  # drained from the ring while a probe was in flight
        if self._alive[url] != alive:
            self._alive[url] = alive
            self.metrics.health_transitions += 1
            self.events.emit("shard.up" if alive else "shard.down", shard=url)

    async def _health_loop(self) -> None:
        from repro.service.client import AsyncServiceClient

        while True:
            await self.clock.sleep(self.health_interval_s)
            for url in list(self.ring.shards):
                if url not in self._alive:
                    continue  # drained while this round was running
                client = AsyncServiceClient(
                    url, timeout=self.connect_timeout_s, retries=0,
                )
                try:
                    body = await asyncio.wait_for(
                        client.healthz(), self.connect_timeout_s * 2
                    )
                    self._mark(url, body.get("status") in ("ok", "draining"))
                except Exception:  # noqa: BLE001 - any failure = down
                    self._mark(url, False)

    # -- connection handling ----------------------------------------------
    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        try:
            while True:
                try:
                    parsed = await read_request(reader)
                except HttpError as exc:
                    await write_response(
                        writer, exc.status, exc.body, exc.headers, False
                    )
                    break
                if parsed is None:
                    break
                method, target, http_version, headers, payload, raw = parsed
                path = urlsplit(target).path
                if method == "GET" and path == "/v1/events":
                    query = dict(parse_qsl(urlsplit(target).query))
                    if query.get("mode", "sse") == "sse":
                        # SSE bypasses write_response (no Content-Length)
                        # and the inflight gauge (a stream must not hold
                        # the drain barrier open).
                        await self._stream_events(writer, query, path)
                        break
                self._inflight += 1
                self._idle.clear()
                try:
                    status, body, extra = await self._dispatch(
                        method, target, path, payload, raw
                    )
                except HttpError as exc:
                    status, body, extra = exc.status, exc.body, exc.headers
                except Exception as exc:  # noqa: BLE001 - last resort
                    status = 500
                    body = error_body("internal",
                                      f"{type(exc).__name__}: {exc}")
                    extra = {}
                finally:
                    self._inflight -= 1
                    if self._inflight == 0:
                        self._idle.set()
                self.metrics.observe(path, status)
                keep_alive = (
                    not self._shutdown_started
                    and http_version != "HTTP/1.0"
                    and headers.get("connection", "").lower() != "close"
                )
                await write_response(writer, status, body, extra, keep_alive)
                if not keep_alive:
                    break
        except (ConnectionError, asyncio.IncompleteReadError):
            pass
        except asyncio.CancelledError:
            pass
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass

    # -- routing -----------------------------------------------------------
    async def _dispatch(
        self, method: str, target: str, path: str, payload, raw: bytes
    ) -> "tuple[int, dict | bytes, dict[str, str]]":
        if self._shutdown_started:
            raise HttpError(
                503, error_body("draining", "cluster is draining"),
                {"Retry-After": "1"},
            )
        if (method, path) == ("GET", "/healthz"):
            return 200, self._healthz_body(), {}
        if (method, path) == ("GET", "/metrics"):
            return 200, await self._metrics_body(), {}
        local = {
            ("GET", "/v1/events"): self._route_events,
            ("POST", "/v1/ring/add"): self._route_ring_add,
            ("POST", "/v1/ring/drain"): self._route_ring_drain,
        }
        handler = local.get((method, path))
        if handler is not None:
            query = dict(parse_qsl(urlsplit(target).query))
            try:
                return 200, await handler(payload, query), {}
            except ProtocolError as exc:
                raise HttpError(400, exc.body()) from None
        known = {
            ("POST", "/v1/cost"), ("POST", "/v1/sweep"),
            ("POST", "/v1/tune"), ("GET", "/v1/advise"),
            ("POST", "/v1/store/push"), ("GET", "/v1/store/pull"),
        }
        if (method, path) not in known:
            if path in {p for _, p in known} | {"/healthz", "/metrics"} \
                    | {p for _, p in local}:
                raise HttpError(
                    405, error_body("method_not_allowed",
                                    f"{method} not supported on {path}")
                )
            raise HttpError(404, error_body("not_found", f"no route {path}"))
        key = self._routing_key(method, target, path, payload)
        return await self._forward(method, target, path, raw, key)

    def _routing_key(
        self, method: str, target: str, path: str, payload
    ) -> "str | None":
        """Canonical routing key, or ``None`` for unroutable requests
        (those go to any live shard, which renders the authoritative
        error)."""
        try:
            if path == "/v1/cost":
                return "spec:" + spec_key(parse_cost_request(payload))
            if path == "/v1/advise":
                query = dict(parse_qsl(urlsplit(target).query))
                return "spec:" + spec_key(parse_advise_request(query))
            if path in ("/v1/sweep", "/v1/tune"):
                material = json.dumps(payload, sort_keys=True)
                return f"{path}:{material}"
            if path == "/v1/store/push" and isinstance(payload, dict):
                return f"store:{payload.get('namespace')}:{payload.get('key')}"
            if path == "/v1/store/pull":
                query = dict(parse_qsl(urlsplit(target).query))
                return f"store:{query.get('namespace')}:{query.get('key')}"
        except ProtocolError:
            return None
        except (TypeError, ValueError):
            return None
        return None

    def _hot_set(self) -> list[str]:
        """The promoted keys, recomputed at most once per window bucket."""
        now = self.clock.monotonic()
        if now - self._hot_cache_at >= self.hotkeys._bucket_s:
            self._hot_cache = self.hotkeys.hot_keys()
            self._hot_cache_at = now
            current = frozenset(self._hot_cache)
            for key in sorted(current - self._hot_prev):
                self.events.emit("hotkey.promote", key=key)
            for key in sorted(self._hot_prev - current):
                self.events.emit("hotkey.demote", key=key)
            self._hot_prev = current
        return self._hot_cache

    def _candidates(self, key: "str | None") -> tuple[list[str], list[str]]:
        """(try-order, warm-peers) for one request.

        Try-order: the serving owner first (round-robin over replicas
        for hot keys), then the remaining ring succession, then every
        other live shard as a last resort.  Warm-peers: the hot-key
        replica set minus the serving owner (empty for cold keys).
        """
        alive = self.alive_shards()
        if key is None:
            return alive, []
        is_alive = self._alive.__getitem__
        hot = key in self._hot_set()
        if hot:
            owners = self.ring.owners(key, self.replicas, alive=is_alive)
        else:
            owners = self.ring.owners(key, 1, alive=is_alive)
        warm_peers: list[str] = []
        order = list(owners)
        if hot and len(owners) > 1:
            cursor = self._rr[key]
            self._rr[key] = cursor + 1
            primary = owners[cursor % len(owners)]
            if primary != owners[0]:
                self.metrics.hot_spread += 1
            order = [primary] + [u for u in owners if u != primary]
            warm_peers = [u for u in owners if u != primary]
        order += [u for u in alive if u not in order]
        return order, warm_peers

    async def _forward(
        self, method: str, target: str, path: str, raw: bytes,
        key: "str | None",
    ) -> "tuple[int, bytes, dict[str, str]]":
        if key is not None and path not in ("/v1/store/push",
                                            "/v1/store/pull"):
            self.hotkeys.observe(key)
        order, warm_peers = self._candidates(key)
        for index, url in enumerate(order):
            if index > 0:
                self.metrics.reroutes += 1
                self.events.emit("reroute", path=path, shard=url)
            extra_request_headers = {}
            peers = [p for p in warm_peers if p != url]
            if peers:
                extra_request_headers[WARM_PEERS_HEADER] = ",".join(peers)
            try:
                status, headers, body = await self._forward_once(
                    url, method, target, raw, extra_request_headers
                )
            except _SHARD_ERRORS:
                self.metrics.shard_failures += 1
                self._mark(url, False)
                continue
            self.metrics.forwards[url] += 1
            if peers:
                self.metrics.warm_headers_set += 1
            relay = {
                name.title(): value
                for name, value in headers.items()
                if name in _RELAYED_HEADERS
            }
            return status, body, relay
        self.metrics.no_live_shard += 1
        raise HttpError(
            503,
            error_body("no_live_shard",
                       f"no live shard can serve {path} right now"),
            {"Retry-After": "1"},
        )

    async def _forward_once(
        self, url: str, method: str, target: str, raw: bytes,
        extra_headers: dict[str, str],
    ) -> tuple[int, dict[str, str], bytes]:
        """One relay attempt; returns the shard's raw response body."""
        split = urlsplit(url)
        host, port = split.hostname, split.port or 80
        reader, writer = await asyncio.wait_for(
            asyncio.open_connection(host, port), self.connect_timeout_s
        )
        try:
            head = [
                f"{method} {target} HTTP/1.1",
                f"Host: {host}:{port}",
                f"Content-Length: {len(raw)}",
                "Content-Type: application/json",
                "Connection: close",
            ]
            head.extend(f"{k}: {v}" for k, v in extra_headers.items())
            writer.write(("\r\n".join(head) + "\r\n\r\n").encode() + raw)
            await writer.drain()
            status_line = await asyncio.wait_for(
                reader.readline(), self.request_timeout_s
            )
            if not status_line:
                raise ConnectionResetError("shard closed before responding")
            status = int(status_line.split(maxsplit=2)[1])
            headers: dict[str, str] = {}
            while True:
                line = await asyncio.wait_for(
                    reader.readline(), self.request_timeout_s
                )
                if line in (b"\r\n", b"\n", b""):
                    break
                name, _, value = line.decode("latin-1").partition(":")
                headers[name.strip().lower()] = value.strip()
            length = int(headers.get("content-length", "0"))
            body = await asyncio.wait_for(
                reader.readexactly(length), self.request_timeout_s
            )
            return status, headers, body
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass

    # -- telemetry ---------------------------------------------------------
    async def _route_events(self, payload, query) -> dict:
        """The ``?mode=poll`` arm of the multiplexed event feed."""
        opts = parse_events_query(query)
        events = await self.events.wait_since(
            opts["from_seq"], opts["timeout_s"], opts["limit"]
        )
        return self.events.poll_body(opts["from_seq"], events)

    async def _stream_events(
        self, writer: asyncio.StreamWriter, query: dict[str, str], path: str
    ) -> None:
        """The SSE arm: stream until drain, client loss, or ``limit``."""
        try:
            opts = parse_events_query(query)
        except ProtocolError as exc:
            self.metrics.observe(path, 400)
            await write_response(writer, 400, exc.body(), {}, False)
            return
        self.metrics.observe(path, 200)
        heartbeat_s = min(opts["timeout_s"], 10.0) or 10.0
        task = asyncio.current_task()
        if task is not None:
            self._stream_tasks.add(task)
        try:
            await stream_over_http(
                writer, self.events,
                from_seq=opts["from_seq"],
                stop=self._stream_stop,
                heartbeat_s=heartbeat_s,
                max_events=opts["limit"],
            )
        except (ConnectionError, OSError):
            pass  # consumer went away; a normal way to end a stream
        finally:
            if task is not None:
                self._stream_tasks.discard(task)

    def _start_multiplex(self, url: str) -> None:
        if url in self._mux_tasks:
            return
        self._mux_tasks[url] = asyncio.ensure_future(
            self._multiplex_shard(url)
        )

    async def _multiplex_shard(self, url: str) -> None:
        """Long-poll one shard's feed forever, re-emitting every event.

        Re-emitted events keep their original ``type`` and ``data`` and
        gain ``shard`` (the source URL) and ``shard_seq`` (the shard's
        own sequence id); the router's bus assigns the cluster-wide
        ``seq``.  A shard outage just pauses its arm of the mux — the
        cursor survives, and the shard's retained ring backfills the gap
        on reconnect (its ``dropped`` counter says if any was lost).
        """
        from repro.service.client import AsyncServiceClient

        client = AsyncServiceClient(
            url, timeout=self.request_timeout_s, retries=0,
        )
        cursor = 0
        while True:
            try:
                body = await client.events(
                    from_seq=cursor, timeout_s=self.poll_timeout_s,
                )
            except Exception:  # noqa: BLE001 - shard down/booting; retry
                await self.clock.sleep(max(self.health_interval_s, 0.2))
                continue
            for event in body.get("events", []):
                data = dict(event.get("data", {}))
                data["shard"] = url
                data["shard_seq"] = event.get("seq")
                self.events.emit(event.get("type", "shard.event"), **data)
            cursor = body.get("next_from", cursor)

    # -- live membership ---------------------------------------------------
    async def _route_ring_add(self, payload, query) -> dict:
        """``POST /v1/ring/add`` — join a running shard to the ring."""
        url = parse_ring_change(payload)
        if url in self.ring.shards:
            return {"added": False, "reason": "already_member",
                    "shards": list(self.ring.shards)}
        from repro.service.client import AsyncServiceClient

        client = AsyncServiceClient(
            url, timeout=self.connect_timeout_s, retries=0,
        )
        try:
            body = await asyncio.wait_for(
                client.healthz(), self.connect_timeout_s * 2
            )
            healthy = body.get("status") == "ok"
        except Exception:  # noqa: BLE001 - unreachable = not joinable
            healthy = False
        if not healthy:
            raise HttpError(400, error_body(
                "shard_unreachable",
                f"{url} did not answer /healthz with status ok",
            ))
        self.ring.add(url)
        self._alive[url] = True
        self.replicas = max(
            1, min(self._replicas_target, len(self.ring.shards))
        )
        if self.multiplex:
            self._start_multiplex(url)
        self.metrics.ring_adds += 1
        self.events.emit("ring.add", shard=url,
                         shards=len(self.ring.shards))
        return {
            "added": True,
            "shard": url,
            "shards": list(self.ring.shards),
            "ownership": {u: round(frac, 4)
                          for u, frac in self.ring.ownership().items()},
        }

    async def _route_ring_drain(self, payload, query) -> dict:
        """``POST /v1/ring/drain`` — planned decommission of one shard.

        The shard leaves the ring *first* (no new traffic routes to it),
        then its store entries are handed off to their new owners over
        the pull→push relay while the shard is still up, then its mux
        arm and liveness entry go away.  The caller shuts the process
        down afterwards; in-flight requests it is still serving finish
        normally.
        """
        url = parse_ring_change(payload)
        if url not in self.ring.shards:
            raise HttpError(404, error_body(
                "unknown_shard", f"{url} is not a ring member"))
        if len(self.ring.shards) == 1:
            raise HttpError(400, error_body(
                "last_shard", "cannot drain the only shard in the ring"))
        self.ring.remove(url)
        self.replicas = max(
            1, min(self._replicas_target, len(self.ring.shards))
        )
        handoff = await self._handoff(url)
        task = self._mux_tasks.pop(url, None)
        if task is not None:
            task.cancel()
        self._alive.pop(url, None)
        self.metrics.ring_drains += 1
        self.events.emit("ring.drain", shard=url,
                         shards=len(self.ring.shards), **handoff)
        return {
            "drained": True,
            "shard": url,
            "handoff": handoff,
            "shards": list(self.ring.shards),
        }

    async def _handoff(self, url: str) -> dict:
        """Relay a leaving shard's store entries to their new owners.

        Pull→push over the existing warming endpoints, entry by entry;
        the receiver re-verifies the integrity envelope, so a corrupt
        relay is rejected, never stored.  ``skipped`` counts entries a
        server refused (oversized, rejected envelope, vanished between
        inventory and pull); ``failed`` counts transport losses.
        """
        from repro.service.client import (
            AsyncServiceClient,
            ServiceError,
            Unavailable,
        )

        counters = {"keys": 0, "pushed": 0, "skipped": 0, "failed": 0}
        source = AsyncServiceClient(
            url, timeout=self.request_timeout_s, retries=0,
        )
        try:
            inventory = await source.store_keys()
        except Exception:  # noqa: BLE001 - source gone: nothing to move
            counters["failed"] += 1
            self.metrics.handoff_failures += 1
            return counters

        def is_alive(u: str) -> bool:
            return self._alive.get(u, False)

        targets: dict[str, AsyncServiceClient] = {}
        for namespace, keys in sorted(
                inventory.get("namespaces", {}).items()):
            for key in keys:
                counters["keys"] += 1
                owners = self.ring.owners(
                    f"store:{namespace}:{key}", 1, alive=is_alive,
                )
                if not owners:
                    counters["failed"] += 1
                    self.metrics.handoff_failures += 1
                    continue
                target = targets.setdefault(owners[0], AsyncServiceClient(
                    owners[0], timeout=self.request_timeout_s, retries=1,
                ))
                try:
                    entry = await source._request(
                        "GET",
                        f"/v1/store/pull?namespace={namespace}&key={key}",
                    )
                    await target._request("POST", "/v1/store/push", {
                        "namespace": namespace,
                        "key": key,
                        "entry": entry["entry"],
                    })
                    counters["pushed"] += 1
                    self.metrics.handoff_pushed += 1
                except (ServiceError,) as exc:
                    if isinstance(exc, Unavailable):
                        counters["failed"] += 1
                        self.metrics.handoff_failures += 1
                    else:
                        counters["skipped"] += 1
                except Exception:  # noqa: BLE001 - transport loss
                    counters["failed"] += 1
                    self.metrics.handoff_failures += 1
        return counters

    # -- local endpoints ---------------------------------------------------
    def _healthz_body(self) -> dict:
        alive = self._alive
        return {
            "status": "draining" if self._shutdown_started else (
                "ok" if any(alive.values()) else "degraded"
            ),
            "shards": {url: ("up" if alive[url] else "down")
                       for url in self.ring.shards},
            "replicas": self.replicas,
        }

    async def _metrics_body(self) -> dict:
        from repro.service.client import AsyncServiceClient

        async def shard_metrics(url: str):
            if not self._alive[url]:
                return url, {"error": "down"}
            try:
                client = AsyncServiceClient(
                    url, timeout=self.connect_timeout_s, retries=0,
                )
                return url, await asyncio.wait_for(
                    client.metrics(), self.connect_timeout_s * 4
                )
            except Exception as exc:  # noqa: BLE001 - report, don't fail
                return url, {"error": f"{type(exc).__name__}: {exc}"}

        gathered = await asyncio.gather(
            *(shard_metrics(url) for url in self.ring.shards)
        )
        shards = dict(gathered)
        warm_hits = 0
        warm_pushes = 0
        for body in shards.values():
            store = body.get("store") if isinstance(body, dict) else None
            if isinstance(store, dict):
                warm_hits += sum(
                    ns.get("hits_remote", 0) for ns in store.values()
                    if isinstance(ns, dict)
                )
            warming = body.get("warming") if isinstance(body, dict) else None
            if isinstance(warming, dict):
                warm_pushes += warming.get("pushes_sent", 0)
        return {
            "cluster": {
                "router": self.metrics.snapshot(),
                "ring": {
                    "shards": list(self.ring.shards),
                    "alive": dict(self._alive),
                    "ownership": {
                        url: round(frac, 4)
                        for url, frac in self.ring.ownership().items()
                    },
                    "replicas": self.replicas,
                    "vnodes": self.ring.vnodes,
                },
                "hot": self.hotkeys.snapshot(),
                "warming": {
                    "pushes_sent_total": warm_pushes,
                    "hits_remote_total": warm_hits,
                },
                "events": self.events.snapshot(),
                "telemetry": self.recorder.snapshot(),
            },
            "shards": shards,
        }
