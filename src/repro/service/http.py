"""Minimal HTTP/1.1 framing shared by the service server and the
cluster router.

One strict, bounded reader (:func:`read_request`) and one writer
(:func:`write_response`), factored out of
:class:`~repro.service.server.ServiceServer` so the cluster's front
router (:mod:`repro.cluster.router`) speaks byte-identical HTTP without
duplicating the parser.  Stdlib only, JSON bodies only.

:class:`HttpError` is the internal "abort this request with status X"
exception both servers raise; :func:`error_body` builds the structured
JSON error bodies the protocol layer documents.
"""

from __future__ import annotations

import asyncio
import json

__all__ = [
    "MAX_BODY_BYTES",
    "MAX_HEADER_LINES",
    "REASONS",
    "HttpError",
    "error_body",
    "read_request",
    "write_response",
]

MAX_BODY_BYTES = 1 << 20
MAX_HEADER_LINES = 64

REASONS = {
    200: "OK", 400: "Bad Request", 404: "Not Found",
    405: "Method Not Allowed", 413: "Payload Too Large",
    429: "Too Many Requests", 500: "Internal Server Error",
    502: "Bad Gateway", 503: "Service Unavailable", 504: "Gateway Timeout",
}


class HttpError(Exception):
    """Internal: abort the request with this status/body."""

    def __init__(self, status: int, body: dict,
                 headers: dict[str, str] | None = None) -> None:
        super().__init__(body.get("error", {}).get("message", str(status)))
        self.status = status
        self.body = body
        self.headers = headers or {}


def error_body(code: str, message: str) -> dict:
    return {"error": {"code": code, "message": message}}


async def read_request(reader: asyncio.StreamReader):
    """One request: ``(method, target, version, headers, payload, raw)``.

    ``payload`` is the JSON-decoded body (``None`` when empty) and
    ``raw`` the undecoded body bytes (what a router forwards verbatim).
    Returns ``None`` on a cleanly closed connection; raises
    :class:`HttpError` on malformed framing.
    """
    try:
        request_line = await reader.readline()
    except (ConnectionError, OSError):
        return None
    if not request_line:
        return None
    try:
        method, target, http_version = request_line.decode("ascii").split()
    except ValueError:
        raise HttpError(
            400, error_body("bad_request_line", "malformed HTTP request line")
        ) from None
    headers: dict[str, str] = {}
    for _ in range(MAX_HEADER_LINES):
        line = await reader.readline()
        if line in (b"\r\n", b"\n", b""):
            break
        name, _, value = line.decode("latin-1").partition(":")
        headers[name.strip().lower()] = value.strip()
    else:
        raise HttpError(
            400, error_body("too_many_headers", "too many header lines")
        )
    length_raw = headers.get("content-length", "0")
    try:
        length = int(length_raw)
    except ValueError:
        raise HttpError(
            400, error_body("bad_content_length",
                            f"invalid Content-Length {length_raw!r}")
        ) from None
    if length > MAX_BODY_BYTES:
        raise HttpError(
            413, error_body("body_too_large",
                            f"body exceeds {MAX_BODY_BYTES} bytes")
        )
    payload = None
    raw = b""
    if length:
        raw = await reader.readexactly(length)
        try:
            payload = json.loads(raw)
        except ValueError:
            raise HttpError(
                400, error_body("bad_json", "body is not valid JSON")
            ) from None
    return method, target, http_version, headers, payload, raw


async def write_response(
    writer: asyncio.StreamWriter, status: int, body: "dict | bytes",
    extra_headers: dict[str, str], keep_alive: bool,
) -> None:
    """Serialize and send one response.

    ``body`` is either a dict (canonical ``sort_keys`` JSON — the
    service's native path) or pre-serialized bytes (the router's relay
    path, which must forward a shard's body byte-identically).
    """
    blob = body if isinstance(body, (bytes, bytearray)) \
        else json.dumps(body, sort_keys=True).encode()
    lines = [
        f"HTTP/1.1 {status} {REASONS.get(status, 'Unknown')}",
        "Content-Type: application/json",
        f"Content-Length: {len(blob)}",
        f"Connection: {'keep-alive' if keep_alive else 'close'}",
    ]
    lines.extend(f"{k}: {v}" for k, v in extra_headers.items())
    writer.write(("\r\n".join(lines) + "\r\n\r\n").encode() + bytes(blob))
    await writer.drain()
