"""The dynamic micro-batcher: coalesce concurrent queries into batches.

Production latency-tolerance mechanics, applied to the cost oracle:
concurrent ``/v1/cost`` requests park in a queue; a single flusher task
closes a *batching window* — when :attr:`~MicroBatcher.max_batch_size`
distinct specs are waiting, or when the oldest has waited
:attr:`~MicroBatcher.max_wait_s` — and evaluates the whole window with
**one** oracle call.  Three mechanisms do the work:

* **Coalescing (single-flight).**  Requests for the *same* spec — hot
  points repeat heavily in oracle traffic — share one evaluation: a
  duplicate joins the queued entry, or the entry already in flight, and
  every holder gets the (deterministic) result.  A batch of ``B``
  requests with ``U`` unique specs costs ``U`` evaluations.
* **Admission control.**  At most ``max_queue`` requests may be pending
  (queued + in flight).  Beyond that, :meth:`submit` raises
  :class:`Overloaded` with a ``retry_after`` estimate derived from the
  observed batch service time — the server turns this into
  ``429 Retry-After``.  Rejecting early beats queueing forever.
* **Deadlines and drain.**  A request that sits longer than
  ``timeout_s`` fails with :class:`RequestTimeout` (504); its slot is
  reclaimed.  :meth:`drain` stops admissions, flushes everything still
  queued, and returns once the last in-flight batch has resolved — the
  SIGTERM path.

All waiting goes through an injected :class:`~repro.service.clock.Clock`
so tests drive the window, timeouts, and drain deterministically with a
:class:`~repro.service.clock.ManualClock` (see CONTRIBUTING.md).
Everything runs on the event-loop thread; the only await inside the
flusher is the evaluate call itself, so state updates are atomic.
"""

from __future__ import annotations

import asyncio
from dataclasses import dataclass, field
from typing import Any, Awaitable, Callable

from repro.service.clock import Clock
from repro.service.metrics import ServiceMetrics

__all__ = ["MicroBatcher", "Overloaded", "RequestTimeout"]


class Overloaded(Exception):
    """The queue is full (or draining); retry after ``retry_after`` s."""

    def __init__(self, retry_after: float, *, draining: bool = False) -> None:
        state = "draining" if draining else "overloaded"
        super().__init__(f"service {state}; retry after {retry_after:.0f}s")
        self.retry_after = retry_after
        self.draining = draining


class RequestTimeout(Exception):
    """The request spent longer than ``timeout_s`` waiting for a result."""


@dataclass
class _Entry:
    """One unique spec awaiting evaluation, plus everyone waiting on it."""

    key: str | None
    payload: Any
    enqueued_at: float
    futures: list[asyncio.Future] = field(default_factory=list)

    def live(self) -> bool:
        return any(not fut.done() for fut in self.futures)


class MicroBatcher:
    """Batch, coalesce, bound, and drain concurrent evaluations.

    Parameters
    ----------
    evaluate:
        ``async (payloads: list) -> list`` over *unique* payloads, one
        result per payload, in order.  Exceptions fail every request in
        the batch.
    max_batch_size:
        Unique specs per evaluation call (window closes when reached).
    max_wait_s:
        Longest the window stays open after its first arrival.
    max_queue:
        Pending-request bound (queued + in flight) for admission control.
    timeout_s:
        Per-request deadline while queued/in flight.
    clock, metrics:
        Injection points; default to real time and fresh counters.
    """

    def __init__(
        self,
        evaluate: Callable[[list], Awaitable[list]],
        *,
        max_batch_size: int = 32,
        max_wait_s: float = 0.002,
        max_queue: int = 256,
        timeout_s: float = 60.0,
        clock: Clock | None = None,
        metrics: ServiceMetrics | None = None,
    ) -> None:
        if max_batch_size < 1:
            raise ValueError(f"max_batch_size must be >= 1, got {max_batch_size}")
        if max_queue < 1:
            raise ValueError(f"max_queue must be >= 1, got {max_queue}")
        self.evaluate = evaluate
        self.max_batch_size = max_batch_size
        self.max_wait_s = max_wait_s
        self.max_queue = max_queue
        self.timeout_s = timeout_s
        self.clock = clock or Clock()
        self.metrics = metrics or ServiceMetrics(self.clock)
        self._entries: list[_Entry] = []
        self._queued_by_key: dict[str, _Entry] = {}
        self._in_flight_by_key: dict[str, _Entry] = {}
        self._pending_requests = 0
        self._arrival = asyncio.Event()
        self._draining = False
        self._flusher: asyncio.Task | None = None
        # EWMA of batch service seconds, seeding the Retry-After estimate.
        self._batch_seconds = 0.05
        self.metrics.queue_depth = lambda: self._pending_requests
        self.metrics.queue_bound = max_queue

    # -- lifecycle ---------------------------------------------------------
    async def start(self) -> None:
        """Start the flusher task (idempotent)."""
        if self._flusher is None:
            self._flusher = asyncio.ensure_future(self._run())

    async def drain(self) -> None:
        """Stop admitting, flush the queue, wait for in-flight work."""
        self._draining = True
        self._arrival.set()
        if self._flusher is not None:
            await self._flusher
            self._flusher = None

    @property
    def draining(self) -> bool:
        return self._draining

    @property
    def pending(self) -> int:
        """Requests admitted but not yet resolved."""
        return self._pending_requests

    # -- the request path --------------------------------------------------
    def retry_after(self) -> int:
        """Whole seconds a rejected client should back off."""
        windows = 1 + self._pending_requests // max(1, self.max_batch_size)
        return max(1, round(windows * self._batch_seconds + 0.5))

    async def submit(self, payload: Any, *, key: str | None = None) -> Any:
        """Queue ``payload`` and wait for its result.

        ``key`` is the coalescing identity: submissions sharing a key
        share one evaluation (queued or already in flight).  ``None``
        never coalesces.  Raises :class:`Overloaded` when the pending
        bound is hit and :class:`RequestTimeout` past the deadline.
        """
        if self._draining:
            self.metrics.drained_rejects += 1
            raise Overloaded(self.retry_after(), draining=True)
        if self._pending_requests >= self.max_queue:
            self.metrics.rejected += 1
            raise Overloaded(self.retry_after())
        fut: asyncio.Future = asyncio.get_running_loop().create_future()
        entry = None
        if key is not None:
            entry = self._queued_by_key.get(key) or self._in_flight_by_key.get(key)
        if entry is not None:
            entry.futures.append(fut)
        else:
            entry = _Entry(key=key, payload=payload,
                           enqueued_at=self.clock.monotonic(), futures=[fut])
            self._entries.append(entry)
            if key is not None:
                self._queued_by_key[key] = entry
            self._arrival.set()
        self._pending_requests += 1
        finished = await self.clock.wait_future(fut, self.timeout_s)
        if not finished and fut.cancel():
            # Abandon the slot; the flusher skips cancelled futures.
            self._pending_requests -= 1
            self.metrics.timeouts += 1
            raise RequestTimeout(
                f"no result within {self.timeout_s:g}s (queue depth "
                f"{self._pending_requests})"
            )
        return fut.result()

    # -- the flusher ---------------------------------------------------------
    async def _run(self) -> None:
        while True:
            if not self._entries:
                if self._draining:
                    return
                self._arrival.clear()
                await self._arrival.wait()
                continue
            deadline = self._entries[0].enqueued_at + self.max_wait_s
            while (len(self._entries) < self.max_batch_size
                   and not self._draining):
                remaining = deadline - self.clock.monotonic()
                if remaining <= 0:
                    break
                self._arrival.clear()
                if not await self.clock.wait(self._arrival, remaining):
                    break
            batch: list[_Entry] = []
            while self._entries and len(batch) < self.max_batch_size:
                entry = self._entries.pop(0)
                if entry.key is not None:
                    self._queued_by_key.pop(entry.key, None)
                if entry.live():  # every requester may have timed out
                    batch.append(entry)
            if batch:
                await self._dispatch(batch)

    async def _dispatch(self, batch: list[_Entry]) -> None:
        for entry in batch:
            if entry.key is not None:
                self._in_flight_by_key[entry.key] = entry
        started = self.clock.monotonic()
        try:
            results = await self.evaluate([entry.payload for entry in batch])
            if len(results) != len(batch):
                raise RuntimeError(
                    f"evaluate returned {len(results)} results for "
                    f"{len(batch)} payloads"
                )
            failure = None
        except Exception as exc:  # noqa: BLE001 - forwarded to requesters
            failure = exc
            results = []
        finally:
            for entry in batch:
                if entry.key is not None:
                    self._in_flight_by_key.pop(entry.key, None)
        elapsed = self.clock.monotonic() - started
        self._batch_seconds = 0.8 * self._batch_seconds + 0.2 * elapsed
        served = 0
        for i, entry in enumerate(batch):
            for fut in entry.futures:
                if fut.done():
                    continue
                if failure is not None:
                    fut.set_exception(failure)
                else:
                    fut.set_result(results[i])
                self._pending_requests -= 1
                served += 1
        self.metrics.observe_batch(requests=served, unique=len(batch))
