"""Clients for the cost service: sync (``http.client``) and asyncio.

Both speak the same JSON protocol as the server and implement the same
retry discipline: on ``429``/``503``, on connection failure
(refused/reset/timeout), and on a garbage or truncated response body
they back off and retry up to ``retries`` times, honouring the server's
``Retry-After`` header when present and falling back to capped
exponential backoff otherwise.  Anything else non-2xx raises
:class:`ServiceError` immediately with the server's structured error
body attached.  The cluster router leans on this path: killing a shard
mid-request surfaces as exactly these errors, and the retry (plus the
router's reroute) is what keeps shard death invisible to callers.

The sleep functions are injectable so retry behaviour is tested with a
fake transport and zero real waiting (see ``tests/service``).
"""

from __future__ import annotations

import asyncio
import http.client
import json
import time
from typing import Any, Callable, Mapping
from urllib.parse import urlencode, urlsplit

__all__ = ["ServiceClient", "AsyncServiceClient", "ServiceError", "Unavailable"]


class ServiceError(Exception):
    """Non-retryable error response from the service."""

    def __init__(self, status: int, body: Any) -> None:
        detail = body.get("error", {}) if isinstance(body, dict) else {}
        message = detail.get("message") or str(body)
        super().__init__(f"HTTP {status}: {message}")
        self.status = status
        self.body = body
        self.code = detail.get("code")
        self.field = detail.get("field")


class Unavailable(ServiceError):
    """Retries exhausted against 429/503 or connection failures."""


def _retry_delay(response_headers: Mapping[str, str] | None,
                 attempt: int, backoff_s: float) -> float:
    """Server's Retry-After if sane, else capped exponential backoff."""
    if response_headers:
        retry_after = response_headers.get("retry-after")
        if retry_after is not None:
            try:
                return max(0.0, float(retry_after))
            except ValueError:
                pass
    return min(backoff_s * (2 ** attempt), 10.0)


def _query_spec(kernel: str, model: str, params: Mapping[str, int],
                **options: Any) -> dict:
    payload = {"kernel": kernel, "model": model, **dict(params)}
    payload.update(options)
    return payload


def _sweep_payload(kernel: str, model: str, grid: Mapping[str, Any],
                   **options: Any) -> dict:
    """Split ``grid`` into top-level scalars and list-valued ``axes``."""
    payload: dict[str, Any] = {"kernel": kernel, "model": model}
    axes: dict[str, list] = {}
    for name, value in dict(grid).items():
        if isinstance(value, (list, tuple)):
            axes[name] = list(value)
        else:
            payload[name] = value
    payload.update(options)
    payload["axes"] = axes
    return payload


class ServiceClient:
    """Blocking client with reconnect + Retry-After-aware retries.

    >>> client = ServiceClient("http://127.0.0.1:8787")    # doctest: +SKIP
    >>> client.cost("sum", "hmm", {"n": 1024, "p": 64})    # doctest: +SKIP
    """

    def __init__(
        self,
        base_url: str,
        *,
        timeout: float = 120.0,
        retries: int = 4,
        backoff_s: float = 0.25,
        sleep: Callable[[float], None] = time.sleep,
    ) -> None:
        split = urlsplit(base_url)
        if split.scheme != "http" or not split.hostname:
            raise ValueError(f"expected an http://host:port URL, got {base_url!r}")
        self.host = split.hostname
        self.port = split.port or 80
        self.timeout = timeout
        self.retries = retries
        self.backoff_s = backoff_s
        self._sleep = sleep
        self._conn: http.client.HTTPConnection | None = None

    # -- transport ---------------------------------------------------------
    def _connection(self) -> http.client.HTTPConnection:
        if self._conn is None:
            self._conn = http.client.HTTPConnection(
                self.host, self.port, timeout=self.timeout
            )
        return self._conn

    def close(self) -> None:
        if self._conn is not None:
            self._conn.close()
            self._conn = None

    def __enter__(self) -> "ServiceClient":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def _once(self, method: str, path: str,
              payload: Any) -> tuple[int, dict[str, str], Any]:
        conn = self._connection()
        body = None
        headers = {}
        if payload is not None:
            body = json.dumps(payload).encode()
            headers["Content-Type"] = "application/json"
        try:
            conn.request(method, path, body=body, headers=headers)
            response = conn.getresponse()
            raw = response.read()
        except (ConnectionError, OSError, http.client.HTTPException):
            self.close()
            raise
        response_headers = {k.lower(): v for k, v in response.getheaders()}
        if response_headers.get("connection", "").lower() == "close":
            self.close()
        parsed = json.loads(raw) if raw else None
        return response.status, response_headers, parsed

    def _request(self, method: str, path: str, payload: Any = None) -> Any:
        last_error: Exception | None = None
        for attempt in range(self.retries + 1):
            try:
                status, headers, body = self._once(method, path, payload)
            except (ConnectionError, OSError, http.client.HTTPException,
                    ValueError) as exc:
                # ValueError: the peer died mid-response and we read a
                # truncated/garbage JSON body.  The connection can no
                # longer be trusted, so reconnect before retrying, same
                # as for refused/reset.
                self.close()
                last_error = exc
                if attempt < self.retries:
                    self._sleep(_retry_delay(None, attempt, self.backoff_s))
                continue
            if status in (429, 503):
                last_error = ServiceError(status, body)
                if attempt < self.retries:
                    self._sleep(_retry_delay(headers, attempt, self.backoff_s))
                continue
            if status >= 400:
                raise ServiceError(status, body)
            return body
        raise Unavailable(0, {"error": {
            "code": "unavailable",
            "message": f"gave up after {self.retries + 1} attempts: {last_error}",
        }})

    # -- API ---------------------------------------------------------------
    def cost(self, kernel: str, model: str, params: Mapping[str, int],
             **options: Any) -> dict:
        """``POST /v1/cost`` — one spec, micro-batched server side."""
        return self._request(
            "POST", "/v1/cost", _query_spec(kernel, model, params, **options)
        )

    def sweep(self, kernel: str, model: str, grid: Mapping[str, Any],
              **options: Any) -> dict:
        """``POST /v1/sweep`` — scalars plus list-valued axes in ``grid``."""
        return self._request(
            "POST", "/v1/sweep", _sweep_payload(kernel, model, grid, **options)
        )

    def advise(self, kernel: str, model: str, params: Mapping[str, int],
               **options: Any) -> dict:
        """``GET /v1/advise`` — launch diagnosis for one spec."""
        spec = _query_spec(kernel, model, params, **options)
        return self._request("GET", "/v1/advise?" + urlencode(spec))

    def tune(self, task: str, **options: Any) -> dict:
        """``POST /v1/tune`` — autotune a demo task server-side.

        ``options`` are the body fields of the tune protocol: strategy,
        budget, mode, seed, latencies, shape.
        """
        return self._request("POST", "/v1/tune", {"task": task, **options})

    def healthz(self) -> dict:
        return self._request("GET", "/healthz")

    def metrics(self) -> dict:
        return self._request("GET", "/metrics")

    def events(self, *, from_seq: int = 0, timeout_s: float = 0.0,
               limit: "int | None" = None) -> dict:
        """``GET /v1/events?mode=poll`` — one long-poll round.

        Returns ``{"events", "next_from", "last_seq", "dropped"}``;
        pass ``next_from`` back as ``from_seq`` to resume.  For the
        live SSE stream use :func:`repro.telemetry.sse_events`.
        """
        return self._request("GET", "/v1/events?" + urlencode(
            _events_query(from_seq, timeout_s, limit)))

    def store_keys(self) -> dict:
        """``GET /v1/store/keys`` — per-namespace key inventory."""
        return self._request("GET", "/v1/store/keys")

    def ring_add(self, url: str) -> dict:
        """``POST /v1/ring/add`` (router only) — join a shard."""
        return self._request("POST", "/v1/ring/add", {"url": url})

    def ring_drain(self, url: str) -> dict:
        """``POST /v1/ring/drain`` (router only) — decommission a shard."""
        return self._request("POST", "/v1/ring/drain", {"url": url})


def _events_query(from_seq: int, timeout_s: float,
                  limit: "int | None") -> dict:
    query = {"mode": "poll", "from": int(from_seq), "timeout": f"{timeout_s:g}"}
    if limit is not None:
        query["limit"] = int(limit)
    return query


class AsyncServiceClient:
    """Asyncio client: one connection per request, same retry discipline.

    Used by the closed-loop load generator, where hundreds of logical
    clients multiplex on one event loop.
    """

    def __init__(
        self,
        base_url: str,
        *,
        timeout: float = 120.0,
        retries: int = 4,
        backoff_s: float = 0.25,
        sleep: "Callable[[float], Any] | None" = None,
    ) -> None:
        split = urlsplit(base_url)
        if split.scheme != "http" or not split.hostname:
            raise ValueError(f"expected an http://host:port URL, got {base_url!r}")
        self.host = split.hostname
        self.port = split.port or 80
        self.timeout = timeout
        self.retries = retries
        self.backoff_s = backoff_s
        self._sleep = sleep or asyncio.sleep

    async def _once(self, method: str, path: str,
                    payload: Any) -> tuple[int, dict[str, str], Any]:
        reader, writer = await asyncio.open_connection(self.host, self.port)
        try:
            body = b""
            if payload is not None:
                body = json.dumps(payload).encode()
            head = (
                f"{method} {path} HTTP/1.1\r\n"
                f"Host: {self.host}:{self.port}\r\n"
                f"Content-Length: {len(body)}\r\n"
                "Content-Type: application/json\r\n"
                "Connection: close\r\n\r\n"
            )
            writer.write(head.encode() + body)
            await writer.drain()
            status_line = await asyncio.wait_for(
                reader.readline(), self.timeout
            )
            parts = status_line.decode("latin-1").split(maxsplit=2)
            status = int(parts[1])
            headers: dict[str, str] = {}
            while True:
                line = await reader.readline()
                if line in (b"\r\n", b"\n", b""):
                    break
                name, _, value = line.decode("latin-1").partition(":")
                headers[name.strip().lower()] = value.strip()
            length = int(headers.get("content-length", "0"))
            raw = await asyncio.wait_for(reader.readexactly(length),
                                         self.timeout)
            return status, headers, json.loads(raw) if raw else None
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass

    async def _request(self, method: str, path: str,
                       payload: Any = None) -> Any:
        last_error: Exception | None = None
        for attempt in range(self.retries + 1):
            try:
                status, headers, body = await self._once(method, path, payload)
            except (ConnectionError, OSError, asyncio.TimeoutError,
                    asyncio.IncompleteReadError, ValueError) as exc:
                last_error = exc
                if attempt < self.retries:
                    await self._sleep(_retry_delay(None, attempt, self.backoff_s))
                continue
            if status in (429, 503):
                last_error = ServiceError(status, body)
                if attempt < self.retries:
                    await self._sleep(
                        _retry_delay(headers, attempt, self.backoff_s)
                    )
                continue
            if status >= 400:
                raise ServiceError(status, body)
            return body
        raise Unavailable(0, {"error": {
            "code": "unavailable",
            "message": f"gave up after {self.retries + 1} attempts: {last_error}",
        }})

    async def cost(self, kernel: str, model: str, params: Mapping[str, int],
                   **options: Any) -> dict:
        return await self._request(
            "POST", "/v1/cost", _query_spec(kernel, model, params, **options)
        )

    async def sweep(self, kernel: str, model: str, grid: Mapping[str, Any],
                    **options: Any) -> dict:
        return await self._request(
            "POST", "/v1/sweep", _sweep_payload(kernel, model, grid, **options)
        )

    async def advise(self, kernel: str, model: str,
                     params: Mapping[str, int], **options: Any) -> dict:
        spec = _query_spec(kernel, model, params, **options)
        return await self._request("GET", "/v1/advise?" + urlencode(spec))

    async def tune(self, task: str, **options: Any) -> dict:
        return await self._request("POST", "/v1/tune",
                                   {"task": task, **options})

    async def healthz(self) -> dict:
        return await self._request("GET", "/healthz")

    async def metrics(self) -> dict:
        return await self._request("GET", "/metrics")

    async def events(self, *, from_seq: int = 0, timeout_s: float = 0.0,
                     limit: "int | None" = None) -> dict:
        """``GET /v1/events?mode=poll`` — one long-poll round."""
        return await self._request("GET", "/v1/events?" + urlencode(
            _events_query(from_seq, timeout_s, limit)))

    async def store_keys(self) -> dict:
        return await self._request("GET", "/v1/store/keys")

    async def ring_add(self, url: str) -> dict:
        return await self._request("POST", "/v1/ring/add", {"url": url})

    async def ring_drain(self, url: str) -> dict:
        return await self._request("POST", "/v1/ring/drain", {"url": url})
