"""``python -m repro.service`` — serve, query, and benchmark the oracle.

Subcommands
-----------
``serve``
    Run a server in the foreground (graceful drain on SIGTERM/SIGINT).
``query``
    One-shot client: ``cost``, ``advise``, ``metrics``, or ``healthz``
    against a running server; prints the JSON response.
``bench``
    The closed-loop batched-vs-unbatched comparison from
    :mod:`repro.service.loadgen`; boots its own ephemeral-port server
    unless ``--url`` points at one (then only a single batched pass
    runs against it).
"""

from __future__ import annotations

import argparse
import asyncio
import json
import sys
import tempfile
from pathlib import Path

from repro.service.client import ServiceClient, ServiceError
from repro.service.loadgen import render_comparison, run_comparison
from repro.service.oracle import CostOracle
from repro.service.server import ServiceServer


def _add_serve(sub: argparse._SubParsersAction) -> None:
    p = sub.add_parser("serve", help="run the cost service in the foreground")
    p.add_argument("--host", default="127.0.0.1")
    p.add_argument("--port", type=int, default=8787,
                   help="0 picks an ephemeral port (default: 8787)")
    p.add_argument("--max-batch-size", type=int, default=32)
    p.add_argument("--max-wait-ms", type=float, default=2.0,
                   help="batching window after the first arrival")
    p.add_argument("--queue-bound", type=int, default=256,
                   help="pending-request bound before 429s")
    p.add_argument("--timeout-s", type=float, default=60.0,
                   help="per-request deadline")
    p.add_argument("--jobs", default="1",
                   help="executor worker processes ('auto' for cpu count)")
    p.add_argument("--no-cache", action="store_true",
                   help="disable the persistent result cache")
    p.add_argument("--cache-dir", default=None)
    p.add_argument("--no-telemetry", action="store_true",
                   help="disable the background metrics recorder")
    p.add_argument("--telemetry-resolution-s", type=float, default=1.0,
                   help="seconds between metrics samples (default: 1)")
    p.add_argument("--telemetry-retention", type=int, default=300,
                   help="samples retained per series (default: 300)")
    p.add_argument("--telemetry-persist", action="store_true",
                   help="persist recorded series to the store's "
                        "telemetry namespace on drain (restored on boot)")


def _add_query(sub: argparse._SubParsersAction) -> None:
    p = sub.add_parser("query", help="query a running server once")
    p.add_argument("what", choices=("cost", "advise", "metrics", "healthz"))
    p.add_argument("--url", default="http://127.0.0.1:8787")
    p.add_argument("--kernel", default="sum", choices=("sum", "convolution"))
    p.add_argument("--model", default="hmm")
    p.add_argument("--mode", default="batch", choices=("batch", "event"))
    for name, default in (("n", 1024), ("k", 0), ("p", 64), ("w", 16),
                          ("l", 16), ("d", 8)):
        p.add_argument(f"--{name}", type=int, default=default)


def _add_bench(sub: argparse._SubParsersAction) -> None:
    p = sub.add_parser("bench", help="closed-loop service benchmark")
    p.add_argument("--duration", type=float, default=10.0,
                   help="seconds per config")
    p.add_argument("--clients", type=int, default=128)
    p.add_argument("--batch-size", type=int, default=128)
    p.add_argument("--zipf-s", type=float, default=2.5,
                   help="workload skew (higher = hotter hot spots)")
    p.add_argument("--seed", type=int, default=7,
                   help="client RNG seed, recorded in the output rows "
                        "(same seed = same request sequence)")
    p.add_argument("--out", default=None,
                   help="also write the report to this file")
    p.add_argument("--metrics-out", default=None,
                   help="write the raw result rows as JSON")


def _cmd_serve(args: argparse.Namespace) -> int:
    async def main() -> None:
        oracle = CostOracle(
            jobs=args.jobs if args.jobs == "auto" else int(args.jobs),
            cache=not args.no_cache, cache_dir=args.cache_dir,
        )
        server = ServiceServer(
            oracle, host=args.host, port=args.port,
            max_batch_size=args.max_batch_size,
            max_wait_s=args.max_wait_ms / 1e3,
            max_queue=args.queue_bound, timeout_s=args.timeout_s,
            telemetry=not args.no_telemetry,
            telemetry_resolution_s=args.telemetry_resolution_s,
            telemetry_retention=args.telemetry_retention,
            telemetry_persist=args.telemetry_persist,
        )
        await server.start()
        server.install_signal_handlers()
        print(f"repro-service listening on {server.url} "
              f"(batch<={args.max_batch_size}, window={args.max_wait_ms}ms, "
              f"queue<={args.queue_bound})", flush=True)
        await server.serve_forever()
        print("repro-service drained, bye", flush=True)

    asyncio.run(main())
    return 0


def _cmd_query(args: argparse.Namespace) -> int:
    client = ServiceClient(args.url)
    params = {name: getattr(args, name) for name in
              ("n", "k", "p", "w", "l", "d")}
    try:
        if args.what == "cost":
            body = client.cost(args.kernel, args.model, params,
                               mode=args.mode)
        elif args.what == "advise":
            body = client.advise(args.kernel, args.model, params,
                                 mode=args.mode)
        elif args.what == "metrics":
            body = client.metrics()
        else:
            body = client.healthz()
    except ServiceError as exc:
        print(json.dumps(exc.body, indent=2, sort_keys=True))
        return 1
    print(json.dumps(body, indent=2, sort_keys=True))
    return 0


def _cmd_bench(args: argparse.Namespace) -> int:
    with tempfile.TemporaryDirectory(prefix="repro-service-bench-") as tmp:
        rows = run_comparison(
            duration=args.duration, clients=args.clients,
            batch_size=args.batch_size, zipf_s=args.zipf_s,
            seed=args.seed, cache_dir=Path(tmp) / "cache",
        )
    report = render_comparison(rows)
    print(report)
    if args.out:
        out = Path(args.out)
        out.parent.mkdir(parents=True, exist_ok=True)
        out.write_text(report + "\n")
        print(f"\nwrote {out}")
    if args.metrics_out:
        out = Path(args.metrics_out)
        out.parent.mkdir(parents=True, exist_ok=True)
        out.write_text(json.dumps(rows, indent=2, sort_keys=True) + "\n")
        print(f"wrote {out}")
    return 0


def main(argv: "list[str] | None" = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.service",
        description="HMM cost-oracle service: serve, query, bench.",
    )
    sub = parser.add_subparsers(dest="command", required=True)
    _add_serve(sub)
    _add_query(sub)
    _add_bench(sub)
    args = parser.parse_args(argv)
    return {"serve": _cmd_serve, "query": _cmd_query,
            "bench": _cmd_bench}[args.command](args)


if __name__ == "__main__":
    sys.exit(main())
