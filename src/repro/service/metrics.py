"""Service observability: counters, gauges, and latency quantiles.

One :class:`ServiceMetrics` instance per server.  Everything is plain
Python (no locks needed: all updates happen on the event-loop thread)
and renders to a JSON-able dict for ``GET /metrics``.  Latency quantiles
come from a bounded reservoir of the most recent samples — accurate for
the steady state, constant-memory forever.
"""

from __future__ import annotations

from collections import Counter, deque

from repro.service.clock import Clock

__all__ = ["LatencyReservoir", "ServiceMetrics"]


class LatencyReservoir:
    """Last-``capacity`` latency samples with percentile readout."""

    def __init__(self, capacity: int = 2048) -> None:
        self._samples: deque[float] = deque(maxlen=capacity)
        self.count = 0

    def observe(self, seconds: float) -> None:
        self._samples.append(seconds)
        self.count += 1

    def percentile(self, q: float) -> float:
        """The ``q``-quantile (0..1) of the retained samples, in seconds."""
        if not self._samples:
            return 0.0
        ordered = sorted(self._samples)
        index = min(len(ordered) - 1, int(q * (len(ordered) - 1) + 0.5))
        return ordered[index]

    def snapshot(self) -> dict:
        return {
            "count": self.count,
            "p50_ms": round(self.percentile(0.50) * 1e3, 3),
            "p95_ms": round(self.percentile(0.95) * 1e3, 3),
            "max_ms": round(max(self._samples, default=0.0) * 1e3, 3),
        }


class ServiceMetrics:
    """All counters the serving layer maintains.

    The batcher and server push into this; ``snapshot()`` (the
    ``/metrics`` body) pulls queue depth and cache counters from the
    live components via the hooks the server registers.
    """

    def __init__(self, clock: Clock | None = None) -> None:
        self.clock = clock or Clock()
        self.started_at = self.clock.monotonic()
        #: (route, status) -> count, e.g. ("/v1/cost", 200) -> 41.
        self.requests: Counter[tuple[str, int]] = Counter()
        self.rejected = 0          # 429s (queue full)
        self.drained_rejects = 0   # 503s (shutting down)
        self.timeouts = 0          # 504s (request timed out in queue)
        self.batches = 0
        self.batched_requests = 0  # requests served through batches
        self.batched_unique = 0    # unique specs actually evaluated
        self.coalesced = 0         # requests answered by another's evaluation
        self.max_batch_size = 0
        # Cluster cache warming (see docs/CLUSTER.md).  Sender side:
        # framed entries pushed to replica peers; receiver side: pushes
        # accepted/deduplicated/rejected by the envelope check.
        self.warm_pushes_sent = 0
        self.warm_push_failures = 0
        self.warm_push_rejected = 0
        self.warm_received = 0
        self.warm_received_duplicates = 0
        self.warm_received_rejected = 0
        self.warm_pending = lambda: 0  # gauge, registered by the server
        self.latency = LatencyReservoir()
        # Gauges, registered by the server at startup.
        self.queue_depth = lambda: 0
        self.queue_bound = 0
        self.cache_counters = lambda: (0, 0)  # (hits, misses)
        #: Trace-replay store counters (``mode="replay"`` requests);
        #: registered by the server, empty dict when replay is unused.
        self.trace_counters = lambda: {}
        #: Unified artifact-store counters, per namespace (sweep /
        #: trace / tune); registered by the server from
        #: :func:`repro.store.store_metrics_snapshot`.
        self.store_counters = lambda: {}
        #: Native-backend counters (native_calls / python_fallbacks /
        #: build_cache_hits / builds / default_backend / available);
        #: registered by the server from
        #: :func:`repro.native.native_metrics_snapshot`.
        self.native_counters = lambda: {}
        #: Telemetry counters (``{"events": EventBus.snapshot(),
        #: "recorder": MetricsRecorder.snapshot()}``); registered by the
        #: server when the telemetry subsystem is on, empty otherwise.
        self.telemetry_counters = lambda: {}

    # -- update hooks ------------------------------------------------------
    def observe_request(self, route: str, status: int, seconds: float) -> None:
        self.requests[(route, status)] += 1
        if route == "/v1/cost" and status == 200:
            self.latency.observe(seconds)

    def observe_batch(self, requests: int, unique: int) -> None:
        self.batches += 1
        self.batched_requests += requests
        self.batched_unique += unique
        self.coalesced += requests - unique
        self.max_batch_size = max(self.max_batch_size, requests)

    # -- readout -----------------------------------------------------------
    def snapshot(self) -> dict:
        hits, misses = self.cache_counters()
        lookups = hits + misses
        requests_by_route: dict[str, dict[str, int]] = {}
        for (route, status), count in sorted(self.requests.items()):
            requests_by_route.setdefault(route, {})[str(status)] = count
        mean_batch = (
            self.batched_requests / self.batches if self.batches else 0.0
        )
        return {
            "uptime_s": round(self.clock.monotonic() - self.started_at, 3),
            "requests": requests_by_route,
            "requests_total": sum(self.requests.values()),
            "rejected": self.rejected,
            "drained_rejects": self.drained_rejects,
            "timeouts": self.timeouts,
            "batches": {
                "count": self.batches,
                "requests": self.batched_requests,
                "unique_points": self.batched_unique,
                "coalesced": self.coalesced,
                "mean_size": round(mean_batch, 3),
                "max_size": self.max_batch_size,
            },
            "queue": {
                "depth": self.queue_depth(),
                "bound": self.queue_bound,
            },
            "cache": {
                "hits": hits,
                "misses": misses,
                "hit_rate": round(hits / lookups, 4) if lookups else 0.0,
            },
            "warming": {
                "pushes_sent": self.warm_pushes_sent,
                "push_failures": self.warm_push_failures,
                "push_rejected": self.warm_push_rejected,
                "received_stored": self.warm_received,
                "received_duplicates": self.warm_received_duplicates,
                "received_rejected": self.warm_received_rejected,
                "pending": self.warm_pending(),
            },
            "trace_store": dict(self.trace_counters()),
            "store": dict(self.store_counters()),
            "native": dict(self.native_counters()),
            "telemetry": dict(self.telemetry_counters()),
            "latency": self.latency.snapshot(),
        }
