"""Injectable time sources for the serving layer.

Anything in :mod:`repro.service` that waits — the micro-batcher's
batching window, per-request timeouts, client backoff — goes through a
:class:`Clock` rather than calling :func:`asyncio.sleep` /
:func:`time.monotonic` directly.  Production code uses the default
:class:`Clock`; tests inject a :class:`ManualClock` and *advance time
explicitly*, so timing tests are deterministic instead of tuned with
real sleeps (the pattern is documented in CONTRIBUTING.md).
"""

from __future__ import annotations

import asyncio
import heapq
import time
from typing import Awaitable

__all__ = ["Clock", "ManualClock"]


class Clock:
    """Real time: ``time.monotonic`` + ``asyncio.sleep``."""

    def monotonic(self) -> float:
        """Current time in seconds (monotonic)."""
        return time.monotonic()

    async def sleep(self, delay: float) -> None:
        """Suspend the calling task for ``delay`` seconds."""
        await asyncio.sleep(max(0.0, delay))

    # -- derived waits (shared by every clock) -----------------------------
    async def wait(self, event: asyncio.Event, timeout: float) -> bool:
        """Wait for ``event`` up to ``timeout`` s; True when it was set."""
        if event.is_set():
            return True
        if timeout <= 0:
            return False
        waiter = asyncio.ensure_future(event.wait())
        return await self._race(waiter, timeout)

    async def wait_future(self, future: Awaitable, timeout: float) -> bool:
        """Wait for ``future`` up to ``timeout`` s; True when it finished.

        The future is *not* cancelled on timeout — the caller decides
        (a batched request may already be in flight on its behalf).
        """
        fut = asyncio.ensure_future(future)
        if fut.done():
            return True
        if timeout <= 0:
            return False
        return await self._race(fut, timeout, cancel_waiter=False)

    async def _race(
        self, waiter: asyncio.Future, timeout: float, *,
        cancel_waiter: bool = True,
    ) -> bool:
        sleeper = asyncio.ensure_future(self.sleep(timeout))
        try:
            done, _ = await asyncio.wait(
                {waiter, sleeper}, return_when=asyncio.FIRST_COMPLETED
            )
        finally:
            sleeper.cancel()
            if cancel_waiter and not waiter.done():
                waiter.cancel()
        return waiter in done


class ManualClock(Clock):
    """A clock tests drive by hand.

    ``monotonic()`` returns a counter that only moves when the test
    calls :meth:`advance`; ``sleep`` parks the caller on a timer heap
    that :meth:`advance` fires in deadline order.  Between timer firings
    the event loop is cycled (:meth:`drain`) so tasks woken by one timer
    run to their next await before the next timer fires — exactly the
    ordering a real loop would produce, minus the wall-clock time.
    """

    def __init__(self) -> None:
        self._now = 0.0
        self._seq = 0
        self._timers: list[tuple[float, int, asyncio.Event]] = []

    def monotonic(self) -> float:
        return self._now

    async def sleep(self, delay: float) -> None:
        if delay <= 0:
            await asyncio.sleep(0)
            return
        fired = asyncio.Event()
        heapq.heappush(self._timers, (self._now + delay, self._seq, fired))
        self._seq += 1
        await fired.wait()

    async def advance(self, dt: float) -> None:
        """Move time forward ``dt`` seconds, firing due timers in order."""
        target = self._now + dt
        while self._timers and self._timers[0][0] <= target:
            deadline, _, fired = heapq.heappop(self._timers)
            self._now = max(self._now, deadline)
            fired.set()
            await self.drain()
        self._now = target
        await self.drain()

    @staticmethod
    async def drain(cycles: int = 25) -> None:
        """Cycle the event loop so ready callbacks/tasks run.

        A fixed number of zero-delay yields is deterministic (no wall
        time involved); 25 covers every await chain in this package.
        """
        for _ in range(cycles):
            await asyncio.sleep(0)
