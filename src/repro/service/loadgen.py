"""Closed-loop load generation for the cost service.

The workload models real oracle traffic: many clients querying costs
over the Table I parameter grid with a heavy-tailed (Zipf) popularity
distribution — autotuners and sweeps hammer a few hot points while the
long tail trickles.  Hot-spot traffic is exactly what the micro-batcher
exploits: concurrent requests for one spec coalesce into a single
evaluation, so batched throughput scales with the *unique*-spec rate,
not the request rate.

:func:`run_config` boots a fresh :class:`~repro.service.server.BackgroundServer`
with the given batching/caching knobs and drives it with ``clients``
closed-loop asyncio clients for ``duration`` seconds.
:func:`run_comparison` runs the standard four-way experiment —
unbatched vs micro-batched (both cache-cold and cache-off, isolating
the batching win) and batched with the persistent cache cold vs warm —
and :func:`render_comparison` formats the result for
``benchmarks/out/service.txt``.
"""

from __future__ import annotations

import asyncio
import bisect
import random
import time
from dataclasses import dataclass, field

from repro.experiments.table1 import CONV_GRID, SUM_GRID
from repro.service.client import AsyncServiceClient, ServiceError
from repro.service.protocol import DEFAULT_SEED
from repro.service.server import BackgroundServer

__all__ = [
    "table1_workload",
    "run_config",
    "run_comparison",
    "render_comparison",
]


def table1_workload(model: str = "hmm") -> list[dict]:
    """The Table I grid as cost-request payload dicts (sum + conv)."""
    specs = [
        {"kernel": "sum", "model": model, "k": 0, **q} for q in SUM_GRID
    ]
    specs += [
        {"kernel": "convolution", "model": model, **q} for q in CONV_GRID
    ]
    return specs


def _zipf_cdf(count: int, s: float) -> list[float]:
    weights = [1.0 / (rank ** s) for rank in range(1, count + 1)]
    total = sum(weights)
    cdf, acc = [], 0.0
    for w in weights:
        acc += w / total
        cdf.append(acc)
    return cdf


@dataclass
class _Stats:
    latencies: list[float] = field(default_factory=list)
    ok: int = 0
    errors: int = 0


async def _client_loop(
    client: AsyncServiceClient, specs: list[dict], cdf: list[float],
    rng: random.Random, stop_at: float, stats: _Stats,
) -> None:
    while time.monotonic() < stop_at:
        spec = specs[bisect.bisect_left(cdf, rng.random())]
        params = {k: spec[k] for k in ("n", "k", "p", "w", "l", "d")}
        started = time.monotonic()
        try:
            await client.cost(spec["kernel"], spec["model"], params,
                              seed=DEFAULT_SEED)
        except ServiceError:
            stats.errors += 1
            continue
        stats.latencies.append(time.monotonic() - started)
        stats.ok += 1


def _percentile(values: list[float], q: float) -> float:
    if not values:
        return 0.0
    ordered = sorted(values)
    idx = min(len(ordered) - 1, int(q * (len(ordered) - 1) + 0.5))
    return ordered[idx]


def run_config(
    name: str,
    *,
    max_batch_size: int,
    cache: bool,
    coalesce: bool = True,
    cache_dir=None,
    duration: float = 10.0,
    clients: int = 96,
    zipf_s: float = 1.5,
    seed: int = 7,
    max_wait_s: float = 0.01,
    max_queue: int = 1024,
    model: str = "hmm",
) -> dict:
    """Boot a server with these knobs and drive it closed-loop.

    Returns a result row: requests served, throughput, latency
    quantiles, plus the server's own ``/metrics`` snapshot (batch sizes,
    coalescing, evaluations, rejections, cache hit rate).
    """
    specs = table1_workload(model)
    cdf = _zipf_cdf(len(specs), zipf_s)
    with BackgroundServer(
        cache=cache, cache_dir=cache_dir, coalesce=coalesce,
        max_batch_size=max_batch_size, max_wait_s=max_wait_s,
        max_queue=max_queue,
    ) as srv:
        async def drive() -> tuple[_Stats, dict]:
            stats = _Stats()
            stop_at = time.monotonic() + duration
            tasks = [
                asyncio.ensure_future(_client_loop(
                    AsyncServiceClient(srv.url), specs, cdf,
                    random.Random(seed * 10_000 + i), stop_at, stats,
                ))
                for i in range(clients)
            ]
            await asyncio.gather(*tasks)
            metrics = await AsyncServiceClient(srv.url).metrics()
            return stats, metrics

        stats, metrics = asyncio.run(drive())
    elapsed = duration
    batches = metrics["batches"]
    return {
        "name": name,
        "max_batch_size": max_batch_size,
        "cache": cache,
        "clients": clients,
        "seed": seed,
        "zipf_s": zipf_s,
        "duration_s": elapsed,
        "requests": stats.ok,
        "errors": stats.errors,
        "rps": stats.ok / elapsed if elapsed else 0.0,
        "p50_ms": _percentile(stats.latencies, 0.50) * 1e3,
        "p95_ms": _percentile(stats.latencies, 0.95) * 1e3,
        "evaluations": batches["unique_points"],
        "batch_count": batches["count"],
        "mean_batch": batches["mean_size"],
        "max_batch": batches["max_size"],
        "coalesced": batches["coalesced"],
        "rejected": metrics["rejected"],
        "cache_hit_rate": metrics["cache"]["hit_rate"],
    }


def run_comparison(
    *,
    duration: float = 10.0,
    clients: int = 128,
    batch_size: int = 128,
    zipf_s: float = 2.5,
    seed: int = 7,
    cache_dir=None,
    log=print,
) -> list[dict]:
    """The standard four-way batching/caching experiment.

    ``unbatched`` vs ``batched`` (both cache-off) isolates the
    micro-batching win — the acceptance row.  ``batched+cache`` cold vs
    warm shows what the persistent result cache adds on top.
    ``cache_dir`` holds the persistent cache for the warm run; pass a
    temp dir to keep benchmark runs hermetic.  ``seed`` drives every
    client's spec sampling and is recorded in each result row, so two
    runs with the same seed replay the same request sequence.
    """
    common = dict(duration=duration, clients=clients, zipf_s=zipf_s,
                  seed=seed)
    rows = []
    for name, kwargs in (
        # batch=1, no coalescing: a naive server — one evaluation per
        # request, requests served strictly one at a time.
        ("unbatched", dict(max_batch_size=1, cache=False, coalesce=False)),
        ("batched", dict(max_batch_size=batch_size, cache=False)),
        ("batched+cache cold", dict(max_batch_size=batch_size, cache=True,
                                    cache_dir=cache_dir)),
        ("batched+cache warm", dict(max_batch_size=batch_size, cache=True,
                                    cache_dir=cache_dir)),
    ):
        log(f"[bench_service] running {name!r} "
            f"({clients} clients, {duration:g}s)...")
        rows.append(run_config(name, **common, **kwargs))
    return rows


def render_comparison(rows: list[dict]) -> str:
    """Text report: one line per config plus the headline speedup."""
    header = (
        f"{'config':<20} {'reqs':>7} {'rps':>8} {'p50ms':>8} {'p95ms':>8} "
        f"{'evals':>7} {'mean_b':>7} {'max_b':>6} {'coal':>7} "
        f"{'rej':>5} {'hit%':>6}"
    )
    lines = [header, "-" * len(header)]
    for r in rows:
        hit = f"{100 * r['cache_hit_rate']:.0f}" if r["cache"] else "-"
        lines.append(
            f"{r['name']:<20} {r['requests']:>7} {r['rps']:>8.1f} "
            f"{r['p50_ms']:>8.1f} {r['p95_ms']:>8.1f} {r['evaluations']:>7} "
            f"{r['mean_batch']:>7.1f} {r['max_batch']:>6} "
            f"{r['coalesced']:>7} {r['rejected']:>5} {hit:>6}"
        )
    by_name = {r["name"]: r for r in rows}
    base = by_name.get("unbatched")
    batched = by_name.get("batched")
    if base and batched and base["rps"] > 0:
        ratio = batched["rps"] / base["rps"]
        lines.append("")
        lines.append(
            f"micro-batched vs unbatched throughput: {ratio:.1f}x "
            f"({batched['rps']:.1f} vs {base['rps']:.1f} req/s; cache off "
            "in both — the win is window batching + coalescing)"
        )
    return "\n".join(lines)
