"""The asyncio JSON-over-HTTP front door of the cost oracle.

Stdlib only: a small, strict HTTP/1.1 handler on ``asyncio.start_server``
(keep-alive supported, bodies bounded) routing to

========================  ==================================================
``POST /v1/cost``         one cost query — coalesced and micro-batched
                          through :class:`~repro.service.batcher.MicroBatcher`
``POST /v1/sweep``        a parameter grid — routed whole through the
                          shared :class:`~repro.service.oracle.CostOracle`
                          executor (and its persistent cache)
``GET /v1/advise``        run one spec with full reporting and return
                          :func:`repro.analysis.advisor.diagnose` output
``GET /healthz``          liveness + drain state
``GET /metrics``          JSON counters (requests, batch sizes, cache hit
                          rate, queue depth, latency quantiles)
========================  ==================================================

Failure surface: malformed input → ``400`` with a structured body
(:class:`~repro.service.protocol.ProtocolError`); queue full → ``429``
with ``Retry-After``; draining → ``503`` with ``Retry-After``; request
deadline exceeded → ``504``.  On SIGTERM the server stops accepting,
drains the batcher (in-flight requests complete), then exits — the
``serve`` CLI wires the signal handlers.
"""

from __future__ import annotations

import asyncio
import json
import signal
import threading
from typing import Awaitable, Callable
from urllib.parse import parse_qsl, urlsplit

from repro.machine.replay import default_store
from repro.service.batcher import MicroBatcher, Overloaded, RequestTimeout
from repro.service.clock import Clock
from repro.native import native_metrics_snapshot
from repro.store import store_metrics_snapshot
from repro.service.metrics import ServiceMetrics
from repro.service.oracle import CostOracle
from repro.service.protocol import (
    ProtocolError,
    parse_advise_request,
    parse_cost_request,
    parse_sweep_request,
    parse_tune_request,
    spec_key,
)

__all__ = ["ServiceServer", "BackgroundServer"]

_MAX_BODY_BYTES = 1 << 20
_MAX_HEADER_LINES = 64


class _HttpError(Exception):
    """Internal: abort the request with this status/body."""

    def __init__(self, status: int, body: dict,
                 headers: dict[str, str] | None = None) -> None:
        super().__init__(body.get("error", {}).get("message", str(status)))
        self.status = status
        self.body = body
        self.headers = headers or {}


_REASONS = {
    200: "OK", 400: "Bad Request", 404: "Not Found",
    405: "Method Not Allowed", 413: "Payload Too Large",
    429: "Too Many Requests", 500: "Internal Server Error",
    503: "Service Unavailable", 504: "Gateway Timeout",
}


def _error_body(code: str, message: str) -> dict:
    return {"error": {"code": code, "message": message}}


class ServiceServer:
    """One serving process: listener + micro-batcher + oracle.

    Parameters
    ----------
    oracle:
        The evaluation core; a default (cached, jobs=1) one is built
        when omitted.
    host, port:
        Bind address; ``port=0`` picks an ephemeral port (read it back
        from :attr:`port` after :meth:`start`).
    max_batch_size, max_wait_s, max_queue, timeout_s:
        Micro-batcher knobs — see
        :class:`~repro.service.batcher.MicroBatcher`.
    coalesce:
        When ``False``, identical concurrent specs are *not* deduplicated
        — every request costs one evaluation.  Only useful as the
        baseline in benchmarks; leave on in production.
    clock, metrics:
        Injection points for deterministic tests.
    """

    def __init__(
        self,
        oracle: CostOracle | None = None,
        *,
        host: str = "127.0.0.1",
        port: int = 0,
        max_batch_size: int = 32,
        max_wait_s: float = 0.002,
        max_queue: int = 256,
        timeout_s: float = 60.0,
        coalesce: bool = True,
        clock: Clock | None = None,
        metrics: ServiceMetrics | None = None,
    ) -> None:
        self.host = host
        self.port = port
        self.coalesce = coalesce
        self.clock = clock or Clock()
        self.metrics = metrics or ServiceMetrics(self.clock)
        self.oracle = oracle if oracle is not None else CostOracle()
        self.batcher = MicroBatcher(
            self._evaluate_batch,
            max_batch_size=max_batch_size,
            max_wait_s=max_wait_s,
            max_queue=max_queue,
            timeout_s=timeout_s,
            clock=self.clock,
            metrics=self.metrics,
        )
        self.metrics.cache_counters = self.oracle.cache_counters
        self.metrics.trace_counters = lambda: default_store().stats_dict()
        self.metrics.store_counters = store_metrics_snapshot
        self.metrics.native_counters = native_metrics_snapshot
        self._server: asyncio.Server | None = None
        self._shutdown_started = False
        self._stopped = asyncio.Event()

    # -- lifecycle ---------------------------------------------------------
    async def start(self) -> None:
        """Bind the listener and start the batcher."""
        await self.batcher.start()
        self._server = await asyncio.start_server(
            self._handle_connection, self.host, self.port
        )
        self.port = self._server.sockets[0].getsockname()[1]

    @property
    def url(self) -> str:
        return f"http://{self.host}:{self.port}"

    async def serve_forever(self) -> None:
        """Block until :meth:`shutdown` completes."""
        assert self._server is not None, "call start() first"
        await self._stopped.wait()

    def install_signal_handlers(self) -> None:
        """SIGTERM/SIGINT → graceful drain (CLI path; main thread only)."""
        loop = asyncio.get_running_loop()
        for sig in (signal.SIGTERM, signal.SIGINT):
            loop.add_signal_handler(
                sig, lambda: asyncio.ensure_future(self.shutdown())
            )

    async def shutdown(self) -> None:
        """Stop accepting, drain in-flight work, release the oracle."""
        if self._shutdown_started:
            await self._stopped.wait()
            return
        self._shutdown_started = True
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        await self.batcher.drain()
        self.oracle.close()
        self._stopped.set()

    @property
    def draining(self) -> bool:
        return self._shutdown_started

    # -- evaluation glue ---------------------------------------------------
    async def _evaluate_batch(self, specs: list) -> list:
        """Batcher hook: run one window in a worker thread."""
        loop = asyncio.get_running_loop()
        return await loop.run_in_executor(
            None, self.oracle.evaluate_batch, specs
        )

    # -- HTTP --------------------------------------------------------------
    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        try:
            while True:
                try:
                    parsed = await self._read_request(reader)
                except _HttpError as exc:
                    # Framing error: answer and drop the connection (we
                    # can no longer trust the stream position).
                    await self._write_response(
                        writer, exc.status, exc.body, exc.headers, False
                    )
                    break
                if parsed is None:
                    break
                method, target, http_version, headers, payload = parsed
                path = urlsplit(target).path
                started = self.clock.monotonic()
                try:
                    status, body, extra_headers = await self._dispatch(
                        method, target, payload
                    )
                except _HttpError as exc:
                    status, body, extra_headers = exc.status, exc.body, exc.headers
                except Exception as exc:  # noqa: BLE001 - last resort
                    status = 500
                    body = _error_body("internal", f"{type(exc).__name__}: {exc}")
                    extra_headers = {}
                self.metrics.observe_request(
                    path, status, self.clock.monotonic() - started
                )
                keep_alive = (
                    not self._shutdown_started
                    and http_version != "HTTP/1.0"
                    and headers.get("connection", "").lower() != "close"
                )
                await self._write_response(
                    writer, status, body, extra_headers, keep_alive
                )
                if not keep_alive:
                    break
        except (ConnectionError, asyncio.IncompleteReadError):
            pass
        except asyncio.CancelledError:
            # Loop teardown cancels idle keep-alive handlers; not an error.
            pass
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass

    async def _read_request(self, reader: asyncio.StreamReader):
        """One request: ``(method, target, version, headers, payload)``.

        Returns ``None`` on a cleanly closed connection; raises
        :class:`_HttpError` on malformed framing.
        """
        try:
            request_line = await reader.readline()
        except (ConnectionError, OSError):
            return None
        if not request_line:
            return None
        try:
            method, target, http_version = (
                request_line.decode("ascii").split()
            )
        except ValueError:
            raise _HttpError(
                400, _error_body("bad_request_line",
                                 "malformed HTTP request line")
            ) from None
        headers: dict[str, str] = {}
        for _ in range(_MAX_HEADER_LINES):
            line = await reader.readline()
            if line in (b"\r\n", b"\n", b""):
                break
            name, _, value = line.decode("latin-1").partition(":")
            headers[name.strip().lower()] = value.strip()
        else:
            raise _HttpError(
                400, _error_body("too_many_headers", "too many header lines")
            )
        length_raw = headers.get("content-length", "0")
        try:
            length = int(length_raw)
        except ValueError:
            raise _HttpError(
                400, _error_body("bad_content_length",
                                 f"invalid Content-Length {length_raw!r}")
            ) from None
        if length > _MAX_BODY_BYTES:
            raise _HttpError(
                413, _error_body("body_too_large",
                                 f"body exceeds {_MAX_BODY_BYTES} bytes")
            )
        payload = None
        if length:
            raw = await reader.readexactly(length)
            try:
                payload = json.loads(raw)
            except ValueError:
                raise _HttpError(
                    400, _error_body("bad_json", "body is not valid JSON")
                ) from None
        return method, target, http_version, headers, payload

    async def _write_response(
        self, writer: asyncio.StreamWriter, status: int, body: dict,
        extra_headers: dict[str, str], keep_alive: bool,
    ) -> None:
        blob = json.dumps(body, sort_keys=True).encode()
        lines = [
            f"HTTP/1.1 {status} {_REASONS.get(status, 'Unknown')}",
            "Content-Type: application/json",
            f"Content-Length: {len(blob)}",
            f"Connection: {'keep-alive' if keep_alive else 'close'}",
        ]
        lines.extend(f"{k}: {v}" for k, v in extra_headers.items())
        writer.write(("\r\n".join(lines) + "\r\n\r\n").encode() + blob)
        await writer.drain()

    # -- routing -----------------------------------------------------------
    async def _dispatch(
        self, method: str, target: str, payload
    ) -> tuple[int, dict, dict[str, str]]:
        split = urlsplit(target)
        path = split.path
        routes: dict[tuple[str, str], Callable[..., Awaitable]] = {
            ("POST", "/v1/cost"): self._route_cost,
            ("POST", "/v1/sweep"): self._route_sweep,
            ("POST", "/v1/tune"): self._route_tune,
            ("GET", "/v1/advise"): self._route_advise,
            ("GET", "/healthz"): self._route_healthz,
            ("GET", "/metrics"): self._route_metrics,
        }
        handler = routes.get((method, path))
        if handler is None:
            known_paths = {p for _, p in routes}
            if path in known_paths:
                raise _HttpError(
                    405, _error_body("method_not_allowed",
                                     f"{method} not supported on {path}")
                )
            raise _HttpError(404, _error_body("not_found", f"no route {path}"))
        query = dict(parse_qsl(split.query))
        try:
            body = await handler(payload, query)
        except ProtocolError as exc:
            raise _HttpError(400, exc.body()) from None
        except Overloaded as exc:
            status = 503 if exc.draining else 429
            code = "draining" if exc.draining else "overloaded"
            raise _HttpError(
                status, _error_body(code, str(exc)),
                {"Retry-After": str(max(1, round(exc.retry_after)))},
            ) from None
        except RequestTimeout as exc:
            self.metrics  # timeouts counted by the batcher
            raise _HttpError(504, _error_body("timeout", str(exc))) from None
        return 200, body, {}

    async def _route_cost(self, payload, query) -> dict:
        spec = parse_cost_request(payload)
        key = spec_key(spec) if self.coalesce else None
        return await self.batcher.submit(spec, key=key)

    async def _route_sweep(self, payload, query) -> dict:
        meta, specs = parse_sweep_request(payload)
        if self.batcher.draining:
            raise Overloaded(self.batcher.retry_after(), draining=True)
        loop = asyncio.get_running_loop()
        return await loop.run_in_executor(
            None, self.oracle.run_sweep, meta, specs
        )

    async def _route_tune(self, payload, query) -> dict:
        spec = parse_tune_request(payload)
        if self.batcher.draining:
            raise Overloaded(self.batcher.retry_after(), draining=True)
        loop = asyncio.get_running_loop()
        return await loop.run_in_executor(None, self.oracle.tune_spec, spec)

    async def _route_advise(self, payload, query) -> dict:
        spec = parse_advise_request(query)
        if self.batcher.draining:
            raise Overloaded(self.batcher.retry_after(), draining=True)
        loop = asyncio.get_running_loop()
        return await loop.run_in_executor(None, self.oracle.advise, spec)

    async def _route_healthz(self, payload, query) -> dict:
        return {
            "status": "draining" if self._shutdown_started else "ok",
            "pending": self.batcher.pending,
        }

    async def _route_metrics(self, payload, query) -> dict:
        return self.metrics.snapshot()


class BackgroundServer:
    """A :class:`ServiceServer` on its own thread + event loop.

    For tests, benchmarks, and runnable docs: enter the context manager,
    talk to :attr:`url` with any client, exit to drain and stop.

    >>> from repro.service import BackgroundServer, ServiceClient
    >>> with BackgroundServer(cache=False) as srv:          # doctest: +SKIP
    ...     ServiceClient(srv.url).healthz()["status"]
    'ok'
    """

    def __init__(self, *, jobs: "int | str" = 1, cache: bool = True,
                 cache_dir=None, **server_kwargs) -> None:
        self._oracle_kwargs = dict(jobs=jobs, cache=cache, cache_dir=cache_dir)
        self._server_kwargs = server_kwargs
        self._thread: threading.Thread | None = None
        self._ready = threading.Event()
        self._loop: asyncio.AbstractEventLoop | None = None
        self._stop: asyncio.Event | None = None
        self._startup_error: BaseException | None = None
        self.server: ServiceServer | None = None
        self.url = ""

    def __enter__(self) -> "BackgroundServer":
        self._thread = threading.Thread(target=self._run, daemon=True,
                                        name="repro-service")
        self._thread.start()
        self._ready.wait()
        if self._startup_error is not None:
            raise self._startup_error
        return self

    def __exit__(self, *exc_info) -> None:
        self.stop()

    def _run(self) -> None:
        async def main() -> None:
            self._loop = asyncio.get_running_loop()
            self._stop = asyncio.Event()
            try:
                oracle = CostOracle(**self._oracle_kwargs)
                self.server = ServiceServer(oracle, **self._server_kwargs)
                await self.server.start()
                self.url = self.server.url
            except BaseException as exc:  # surface to the entering thread
                self._startup_error = exc
                self._ready.set()
                return
            self._ready.set()
            await self._stop.wait()
            await self.server.shutdown()

        asyncio.run(main())

    def stop(self) -> None:
        """Drain and stop the server; joins the thread."""
        if self._thread is None:
            return
        if self._loop is not None and self._stop is not None:
            self._loop.call_soon_threadsafe(self._stop.set)
        self._thread.join(timeout=30)
        self._thread = None
