"""The asyncio JSON-over-HTTP front door of the cost oracle.

Stdlib only: a small, strict HTTP/1.1 handler on ``asyncio.start_server``
(keep-alive supported, bodies bounded) routing to

========================  ==================================================
``POST /v1/cost``         one cost query — coalesced and micro-batched
                          through :class:`~repro.service.batcher.MicroBatcher`
``POST /v1/sweep``        a parameter grid — routed whole through the
                          shared :class:`~repro.service.oracle.CostOracle`
                          executor (and its persistent cache)
``GET /v1/advise``        run one spec with full reporting and return
                          :func:`repro.analysis.advisor.diagnose` output
``POST /v1/store/push``   accept a framed store entry from a cluster
                          peer (cache warming); the PR 6 integrity
                          envelope is re-verified before anything is
                          stored
``GET /v1/store/pull``    serve a framed store entry to a peer
``GET /v1/store/keys``    list the store keys this process serves, per
                          namespace (the ring-drain handoff inventory)
``GET /v1/events``        the live telemetry feed — SSE stream by
                          default, ``?mode=poll`` long-poll fallback;
                          resumable via ``?from=<seq>`` (docs/TELEMETRY.md)
``GET /healthz``          liveness + drain state
``GET /metrics``          JSON counters (requests, batch sizes, cache hit
                          rate, queue depth, latency quantiles)
========================  ==================================================

Failure surface: malformed input → ``400`` with a structured body
(:class:`~repro.service.protocol.ProtocolError`); queue full → ``429``
with ``Retry-After``; draining → ``503`` with ``Retry-After``; request
deadline exceeded → ``504``.  On SIGTERM the server stops accepting,
drains the batcher (in-flight requests complete), then exits — the
``serve`` CLI wires the signal handlers.
"""

from __future__ import annotations

import asyncio
import base64
import signal
import threading
from typing import Awaitable, Callable
from urllib.parse import parse_qsl, urlsplit

from repro.machine.replay import default_store
from repro.service.batcher import MicroBatcher, Overloaded, RequestTimeout
from repro.service.clock import Clock
from repro.native import native_metrics_snapshot
from repro.store import store_metrics_snapshot
from repro.service.http import (
    HttpError,
    error_body,
    read_request,
    write_response,
)
from repro.service.metrics import ServiceMetrics
from repro.service.oracle import CostOracle
from repro.service.protocol import (
    ProtocolError,
    parse_advise_request,
    parse_cost_request,
    parse_events_query,
    parse_store_pull,
    parse_store_push,
    parse_sweep_request,
    parse_tune_request,
    spec_key,
)
from repro.telemetry.events import DEFAULT_CAPACITY, EventBus
from repro.telemetry.series import MetricsRecorder
from repro.telemetry.stream import stream_over_http

__all__ = ["ServiceServer", "BackgroundServer", "WARM_PEERS_HEADER"]

#: Request header the cluster router sets on hot-key traffic: a
#: comma-separated list of replica base URLs this shard should warm
#: (push freshly touched store entries to) after answering.
WARM_PEERS_HEADER = "x-repro-warm-peers"

#: Bound on the remembered (peer, namespace, key) push dedupe set.
_MAX_PUSH_MEMORY = 65536


class ServiceServer:
    """One serving process: listener + micro-batcher + oracle.

    Parameters
    ----------
    oracle:
        The evaluation core; a default (cached, jobs=1) one is built
        when omitted.
    host, port:
        Bind address; ``port=0`` picks an ephemeral port (read it back
        from :attr:`port` after :meth:`start`).
    max_batch_size, max_wait_s, max_queue, timeout_s:
        Micro-batcher knobs — see
        :class:`~repro.service.batcher.MicroBatcher`.
    coalesce:
        When ``False``, identical concurrent specs are *not* deduplicated
        — every request costs one evaluation.  Only useful as the
        baseline in benchmarks; leave on in production.
    clock, metrics:
        Injection points for deterministic tests.
    telemetry, telemetry_resolution_s, telemetry_retention:
        The live telemetry subsystem (event bus + metrics recorder,
        see :mod:`repro.telemetry`).  ``telemetry=False`` disables the
        background sampler — ``/v1/events`` still answers, the feed is
        just lifecycle-only.
    telemetry_persist:
        Persist the recorded time series to the store's ``telemetry``
        namespace on shutdown (and restore on start).  Off by default
        so tests and ad-hoc servers leave no artifacts behind; the
        ``serve`` CLI turns it on.
    event_capacity:
        Event ring size (resume window of ``/v1/events``).
    """

    def __init__(
        self,
        oracle: CostOracle | None = None,
        *,
        host: str = "127.0.0.1",
        port: int = 0,
        max_batch_size: int = 32,
        max_wait_s: float = 0.002,
        max_queue: int = 256,
        timeout_s: float = 60.0,
        coalesce: bool = True,
        clock: Clock | None = None,
        metrics: ServiceMetrics | None = None,
        telemetry: bool = True,
        telemetry_resolution_s: float = 1.0,
        telemetry_retention: int = 300,
        telemetry_persist: bool = False,
        event_capacity: int = DEFAULT_CAPACITY,
    ) -> None:
        self.host = host
        self.port = port
        self.coalesce = coalesce
        self.clock = clock or Clock()
        self.metrics = metrics or ServiceMetrics(self.clock)
        self.oracle = oracle if oracle is not None else CostOracle()
        self.batcher = MicroBatcher(
            self._evaluate_batch,
            max_batch_size=max_batch_size,
            max_wait_s=max_wait_s,
            max_queue=max_queue,
            timeout_s=timeout_s,
            clock=self.clock,
            metrics=self.metrics,
        )
        self.metrics.cache_counters = self.oracle.cache_counters
        self.metrics.trace_counters = lambda: default_store().stats_dict()
        self.metrics.store_counters = store_metrics_snapshot
        self.metrics.native_counters = native_metrics_snapshot
        self.metrics.warm_pending = lambda: len(self._warm_tasks)
        # Cluster warming: the stores this process can push/pull framed
        # entries for, with recent-put tracking on so a computing shard
        # knows what it just wrote (tune artifacts especially).  Oracle
        # doubles in tests may not implement the cluster hooks.
        spaces_of = getattr(self.oracle, "store_namespaces", dict)
        self._warm_spaces: dict = dict(spaces_of())
        try:
            trace_ns = default_store().store_namespace
            self._warm_spaces.setdefault(trace_ns.name, trace_ns)
        except Exception:  # noqa: BLE001 - trace store is optional here
            pass
        for space in self._warm_spaces.values():
            space.track_recent_puts()
        self._warm_tasks: set[asyncio.Task] = set()
        self._pushed: set[tuple[str, str, str]] = set()
        self._server: asyncio.Server | None = None
        self._shutdown_started = False
        self._stopped = asyncio.Event()
        # Telemetry: event bus always exists (lifecycle events are
        # nearly free and /v1/events must answer); the sampling recorder
        # only when enabled.
        self.events = EventBus(capacity=event_capacity, clock=self.clock)
        self._stream_stop = asyncio.Event()
        self._stream_tasks: set[asyncio.Task] = set()
        self.recorder: MetricsRecorder | None = None
        self._recorder_task: asyncio.Task | None = None
        if telemetry:
            store_space = None
            if telemetry_persist:
                from repro.store import ArtifactStore

                store_space = ArtifactStore().namespace("telemetry")
                # Serve it like the other stores: listed by
                # /v1/store/keys and handed off on a ring drain.
                store_space.track_recent_puts()
                self._warm_spaces.setdefault("telemetry", store_space)
            self.recorder = MetricsRecorder(
                self.metrics.snapshot,
                resolution_s=telemetry_resolution_s,
                retention=telemetry_retention,
                clock=self.clock,
                bus=self.events,
                store_space=store_space,
                name="service",
            )
        self.metrics.telemetry_counters = lambda: {
            "events": self.events.snapshot(),
            **({"recorder": self.recorder.snapshot()}
               if self.recorder is not None else {}),
        }

    # -- lifecycle ---------------------------------------------------------
    async def start(self) -> None:
        """Bind the listener and start the batcher."""
        await self.batcher.start()
        self._server = await asyncio.start_server(
            self._handle_connection, self.host, self.port
        )
        self.port = self._server.sockets[0].getsockname()[1]
        if self.recorder is not None:
            if self.recorder.store_space is not None:
                self.recorder.restore()
            self._recorder_task = asyncio.ensure_future(self.recorder.run())
        self.events.emit("server.start", host=self.host, port=self.port)

    @property
    def url(self) -> str:
        return f"http://{self.host}:{self.port}"

    async def serve_forever(self) -> None:
        """Block until :meth:`shutdown` completes."""
        assert self._server is not None, "call start() first"
        await self._stopped.wait()

    def install_signal_handlers(self) -> None:
        """SIGTERM/SIGINT → graceful drain (CLI path; main thread only)."""
        loop = asyncio.get_running_loop()
        for sig in (signal.SIGTERM, signal.SIGINT):
            loop.add_signal_handler(
                sig, lambda: asyncio.ensure_future(self.shutdown())
            )

    async def shutdown(self) -> None:
        """Stop accepting, drain in-flight work, release the oracle."""
        if self._shutdown_started:
            await self._stopped.wait()
            return
        self._shutdown_started = True
        # Emit the drain sentinel BEFORE closing anything: it is the
        # last event streaming consumers receive, and setting the stop
        # flag right after guarantees open SSE handlers deliver it and
        # close cleanly instead of parking on a heartbeat.
        self.events.emit("server.drain", port=self.port)
        self._stream_stop.set()
        if self._stream_tasks:
            await asyncio.wait(self._stream_tasks, timeout=5)
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        await self.batcher.drain()
        if self._warm_tasks:
            await asyncio.gather(*self._warm_tasks, return_exceptions=True)
        if self._recorder_task is not None:
            self.recorder.stop()
            self._recorder_task.cancel()
            try:
                await self._recorder_task
            except asyncio.CancelledError:
                pass
        if self.recorder is not None:
            try:
                self.recorder.persist()
            except Exception:  # noqa: BLE001 - telemetry must not block exit
                pass
        self.oracle.close()
        self._stopped.set()

    @property
    def draining(self) -> bool:
        return self._shutdown_started

    # -- evaluation glue ---------------------------------------------------
    async def _evaluate_batch(self, specs: list) -> list:
        """Batcher hook: run one window in a worker thread."""
        loop = asyncio.get_running_loop()
        return await loop.run_in_executor(
            None, self.oracle.evaluate_batch, specs
        )

    # -- HTTP --------------------------------------------------------------
    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        try:
            while True:
                try:
                    parsed = await read_request(reader)
                except HttpError as exc:
                    # Framing error: answer and drop the connection (we
                    # can no longer trust the stream position).
                    await write_response(
                        writer, exc.status, exc.body, exc.headers, False
                    )
                    break
                if parsed is None:
                    break
                method, target, http_version, headers, payload, _raw = parsed
                split = urlsplit(target)
                path = split.path
                if method == "GET" and path == "/v1/events":
                    query = dict(parse_qsl(split.query))
                    if query.get("mode", "sse") == "sse":
                        # SSE is the one response with no Content-Length:
                        # stream directly and close, bypassing
                        # write_response and keep-alive.
                        await self._stream_events(writer, query, path)
                        break
                started = self.clock.monotonic()
                try:
                    status, body, extra_headers = await self._dispatch(
                        method, target, payload, headers
                    )
                except HttpError as exc:
                    status, body, extra_headers = exc.status, exc.body, exc.headers
                except Exception as exc:  # noqa: BLE001 - last resort
                    status = 500
                    body = error_body("internal", f"{type(exc).__name__}: {exc}")
                    extra_headers = {}
                self.metrics.observe_request(
                    path, status, self.clock.monotonic() - started
                )
                keep_alive = (
                    not self._shutdown_started
                    and http_version != "HTTP/1.0"
                    and headers.get("connection", "").lower() != "close"
                )
                await write_response(
                    writer, status, body, extra_headers, keep_alive
                )
                if not keep_alive:
                    break
        except (ConnectionError, asyncio.IncompleteReadError):
            pass
        except asyncio.CancelledError:
            # Loop teardown cancels idle keep-alive handlers; not an error.
            pass
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass

    # -- routing -----------------------------------------------------------
    async def _dispatch(
        self, method: str, target: str, payload, headers: dict[str, str]
    ) -> tuple[int, dict, dict[str, str]]:
        split = urlsplit(target)
        path = split.path
        routes: dict[tuple[str, str], Callable[..., Awaitable]] = {
            ("POST", "/v1/cost"): self._route_cost,
            ("POST", "/v1/sweep"): self._route_sweep,
            ("POST", "/v1/tune"): self._route_tune,
            ("GET", "/v1/advise"): self._route_advise,
            ("POST", "/v1/store/push"): self._route_store_push,
            ("GET", "/v1/store/pull"): self._route_store_pull,
            ("GET", "/v1/store/keys"): self._route_store_keys,
            ("GET", "/v1/events"): self._route_events,
            ("GET", "/healthz"): self._route_healthz,
            ("GET", "/metrics"): self._route_metrics,
        }
        handler = routes.get((method, path))
        if handler is None:
            known_paths = {p for _, p in routes}
            if path in known_paths:
                raise HttpError(
                    405, error_body("method_not_allowed",
                                    f"{method} not supported on {path}")
                )
            raise HttpError(404, error_body("not_found", f"no route {path}"))
        query = dict(parse_qsl(split.query))
        try:
            body = await handler(payload, query, headers)
        except ProtocolError as exc:
            raise HttpError(400, exc.body()) from None
        except Overloaded as exc:
            status = 503 if exc.draining else 429
            code = "draining" if exc.draining else "overloaded"
            raise HttpError(
                status, error_body(code, str(exc)),
                {"Retry-After": str(max(1, round(exc.retry_after)))},
            ) from None
        except RequestTimeout as exc:
            self.metrics  # timeouts counted by the batcher
            raise HttpError(504, error_body("timeout", str(exc))) from None
        return 200, body, {}

    async def _route_cost(self, payload, query, headers) -> dict:
        spec = parse_cost_request(payload)
        key = spec_key(spec) if self.coalesce else None
        body = await self.batcher.submit(spec, key=key)
        self._maybe_warm_push(headers, self._spec_keys([spec]))
        return body

    async def _route_sweep(self, payload, query, headers) -> dict:
        meta, specs = parse_sweep_request(payload)
        if self.batcher.draining:
            raise Overloaded(self.batcher.retry_after(), draining=True)
        loop = asyncio.get_running_loop()
        body = await loop.run_in_executor(
            None, self.oracle.run_sweep, meta, specs
        )
        self._maybe_warm_push(headers, self._spec_keys(specs))
        return body

    async def _route_tune(self, payload, query, headers) -> dict:
        spec = parse_tune_request(payload)
        if self.batcher.draining:
            raise Overloaded(self.batcher.retry_after(), draining=True)
        loop = asyncio.get_running_loop()
        body = await loop.run_in_executor(None, self.oracle.tune_spec, spec)
        # Tune artifact keys aren't derivable from the request alone;
        # the recent-put log drained by _maybe_warm_push covers them.
        self._maybe_warm_push(headers, [])
        return body

    async def _route_advise(self, payload, query, headers) -> dict:
        spec = parse_advise_request(query)
        if self.batcher.draining:
            raise Overloaded(self.batcher.retry_after(), draining=True)
        loop = asyncio.get_running_loop()
        return await loop.run_in_executor(None, self.oracle.advise, spec)

    async def _route_store_push(self, payload, query, headers) -> dict:
        namespace, key, blob = parse_store_push(payload)
        space = self._warm_spaces.get(namespace)
        if space is None:
            raise ProtocolError(
                f"namespace {namespace!r} is not served here",
                field="namespace", code="unknown_namespace",
            )
        loop = asyncio.get_running_loop()
        result = await loop.run_in_executor(
            None, lambda: space.put_framed(key, blob)
        )
        if result == "rejected":
            self.metrics.warm_received_rejected += 1
            raise HttpError(400, error_body(
                "integrity",
                f"pushed entry for {namespace}/{key} failed the envelope check",
            ))
        if result == "duplicate":
            self.metrics.warm_received_duplicates += 1
        else:
            self.metrics.warm_received += 1
        return {"namespace": namespace, "key": key, "result": result}

    async def _route_store_pull(self, payload, query, headers) -> dict:
        namespace, key = parse_store_pull(query)
        space = self._warm_spaces.get(namespace)
        if space is None:
            raise ProtocolError(
                f"namespace {namespace!r} is not served here",
                field="namespace", code="unknown_namespace",
            )
        loop = asyncio.get_running_loop()
        blob = await loop.run_in_executor(None, space.get_framed, key)
        if blob is None:
            raise HttpError(404, error_body(
                "not_found", f"no entry {namespace}/{key}"
            ))
        return {
            "namespace": namespace,
            "key": key,
            "entry": base64.b64encode(blob).decode("ascii"),
        }

    async def _route_store_keys(self, payload, query, headers) -> dict:
        """Inventory of every store entry this process serves, per
        namespace — what a ring drain hands off before decommission."""
        spaces = dict(self._warm_spaces)
        loop = asyncio.get_running_loop()

        def collect() -> dict:
            return {name: sorted(space.keys())
                    for name, space in spaces.items()}

        return {"namespaces": await loop.run_in_executor(None, collect)}

    async def _route_events(self, payload, query, headers) -> dict:
        """The ``?mode=poll`` long-poll arm of the event feed."""
        opts = parse_events_query(query)
        events = await self.events.wait_since(
            opts["from_seq"], opts["timeout_s"], opts["limit"]
        )
        return self.events.poll_body(opts["from_seq"], events)

    async def _stream_events(
        self, writer: asyncio.StreamWriter, query: dict[str, str], path: str
    ) -> None:
        """The SSE arm: stream until drain, client loss, or ``limit``."""
        try:
            opts = parse_events_query(query)
        except ProtocolError as exc:
            self.metrics.observe_request(path, 400, 0.0)
            await write_response(writer, 400, exc.body(), {}, False)
            return
        self.metrics.observe_request(path, 200, 0.0)
        heartbeat_s = min(opts["timeout_s"], 10.0) or 10.0
        task = asyncio.current_task()
        if task is not None:
            self._stream_tasks.add(task)
        try:
            await stream_over_http(
                writer, self.events,
                from_seq=opts["from_seq"],
                stop=self._stream_stop,
                heartbeat_s=heartbeat_s,
                max_events=opts["limit"],
            )
        except (ConnectionError, OSError):
            pass  # consumer went away; a normal way to end a stream
        finally:
            if task is not None:
                self._stream_tasks.discard(task)

    async def _route_healthz(self, payload, query, headers) -> dict:
        return {
            "status": "draining" if self._shutdown_started else "ok",
            "pending": self.batcher.pending,
        }

    async def _route_metrics(self, payload, query, headers) -> dict:
        return self.metrics.snapshot()

    # -- cluster cache warming ---------------------------------------------
    def _spec_keys(self, specs: list) -> list[tuple[str, str]]:
        keys_of = getattr(self.oracle, "spec_store_keys", None)
        return keys_of(specs) if keys_of is not None else []

    def _maybe_warm_push(
        self, headers: dict[str, str],
        explicit: list[tuple[str, str]],
    ) -> None:
        """Push store entries behind this request to replica peers.

        Runs only when the router marked the request hot by naming
        peers in :data:`WARM_PEERS_HEADER`.  What gets pushed: the
        request's own store keys (``explicit`` — known even on a cache
        hit, which matters right after promotion) plus everything the
        process wrote since the last drain (tune/trace artifacts whose
        keys only the executor knows).  Fire-and-forget: failures are
        counted, never surfaced to the client.
        """
        raw = headers.get(WARM_PEERS_HEADER, "")
        peers = [p.strip() for p in raw.split(",") if p.strip()]
        entries = list(explicit)
        for name, space in self._warm_spaces.items():
            entries.extend((name, key) for key in space.drain_recent_puts())
        if not peers or not entries:
            return
        batch = [
            (peer, name, key)
            for peer in peers
            for name, key in entries
            if (peer, name, key) not in self._pushed
        ]
        if not batch:
            return
        if len(self._pushed) + len(batch) > _MAX_PUSH_MEMORY:
            self._pushed.clear()
        self._pushed.update(batch)
        task = asyncio.ensure_future(self._push_entries(batch))
        self._warm_tasks.add(task)
        task.add_done_callback(self._warm_tasks.discard)

    async def _push_entries(
        self, batch: list[tuple[str, str, str]]
    ) -> None:
        from repro.service.client import ServiceError, Unavailable

        loop = asyncio.get_running_loop()
        framed: dict[tuple[str, str], bytes] = {}
        sent = failed = 0
        for peer, name, key in batch:
            blob = framed.get((name, key))
            if blob is None:
                space = self._warm_spaces[name]
                blob = await loop.run_in_executor(None, space.get_framed, key)
                framed[(name, key)] = blob = blob or b""
            if not blob:
                continue
            body = {
                "namespace": name,
                "key": key,
                "entry": base64.b64encode(blob).decode("ascii"),
            }
            try:
                await self._warm_client(peer)._request(
                    "POST", "/v1/store/push", body
                )
                self.metrics.warm_pushes_sent += 1
                sent += 1
            except Unavailable:
                self.metrics.warm_push_failures += 1
                failed += 1
            except ServiceError:
                self.metrics.warm_push_rejected += 1
                failed += 1
            except (ConnectionError, OSError, asyncio.TimeoutError):
                self.metrics.warm_push_failures += 1
                failed += 1
        if sent or failed:
            self.events.emit(
                "warm.push",
                peers=len({peer for peer, _, _ in batch}),
                sent=sent, failed=failed,
            )

    def _warm_client(self, peer: str):
        from repro.service.client import AsyncServiceClient

        return AsyncServiceClient(peer, timeout=10.0, retries=1,
                                  backoff_s=0.05)


class BackgroundServer:
    """A :class:`ServiceServer` on its own thread + event loop.

    For tests, benchmarks, and runnable docs: enter the context manager,
    talk to :attr:`url` with any client, exit to drain and stop.

    >>> from repro.service import BackgroundServer, ServiceClient
    >>> with BackgroundServer(cache=False) as srv:          # doctest: +SKIP
    ...     ServiceClient(srv.url).healthz()["status"]
    'ok'
    """

    def __init__(self, *, jobs: "int | str" = 1, cache: bool = True,
                 cache_dir=None, **server_kwargs) -> None:
        self._oracle_kwargs = dict(jobs=jobs, cache=cache, cache_dir=cache_dir)
        self._server_kwargs = server_kwargs
        self._thread: threading.Thread | None = None
        self._ready = threading.Event()
        self._loop: asyncio.AbstractEventLoop | None = None
        self._stop: asyncio.Event | None = None
        self._startup_error: BaseException | None = None
        self.server: ServiceServer | None = None
        self.url = ""

    def __enter__(self) -> "BackgroundServer":
        self._thread = threading.Thread(target=self._run, daemon=True,
                                        name="repro-service")
        self._thread.start()
        self._ready.wait()
        if self._startup_error is not None:
            raise self._startup_error
        return self

    def __exit__(self, *exc_info) -> None:
        self.stop()

    def _run(self) -> None:
        async def main() -> None:
            self._loop = asyncio.get_running_loop()
            self._stop = asyncio.Event()
            try:
                oracle = CostOracle(**self._oracle_kwargs)
                self.server = ServiceServer(oracle, **self._server_kwargs)
                await self.server.start()
                self.url = self.server.url
            except BaseException as exc:  # surface to the entering thread
                self._startup_error = exc
                self._ready.set()
                return
            self._ready.set()
            await self._stop.wait()
            await self.server.shutdown()

        asyncio.run(main())

    def stop(self) -> None:
        """Drain and stop the server; joins the thread."""
        if self._thread is None:
            return
        if self._loop is not None and self._stop is not None:
            self._loop.call_soon_threadsafe(self._stop.set)
        self._thread.join(timeout=30)
        self._thread = None
