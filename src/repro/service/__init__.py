"""repro.service — a batched, backpressured cost-oracle serving layer.

The memory machine models answer "what will this kernel cost on this
machine?" analytically and deterministically, which makes the simulator
an ideal *oracle service*: many clients, repeated queries over a hot set
of (kernel, machine) points, and answers that never change for a given
input.  This package puts a production-style front door on the compute
substrate the earlier layers built (the vectorized
:class:`~repro.machine.batch.BatchCostEngine` fast path and the cached,
sharded :class:`~repro.analysis.executor.SweepExecutor`):

* :mod:`repro.service.server` — an asyncio JSON-over-HTTP server
  (stdlib only) exposing ``POST /v1/cost``, ``POST /v1/sweep``,
  ``POST /v1/tune``, ``GET /v1/advise``, ``GET /healthz`` and
  ``GET /metrics``;
* :mod:`repro.service.batcher` — the dynamic micro-batcher that
  coalesces concurrent cost queries into one oracle evaluation, with a
  bounded queue, admission control (429 + ``Retry-After``), per-request
  timeouts, and graceful drain;
* :mod:`repro.service.oracle` — the in-process evaluation core
  (shared result cache, single-flight semantics, advisor integration);
* :mod:`repro.service.client` — sync and asyncio clients with
  retry/backoff honoring ``Retry-After``;
* ``python -m repro.service`` — ``serve`` / ``query`` / ``bench``.

Protocol reference and a runnable walkthrough: ``docs/SERVICE.md``.
"""

from repro.service.batcher import MicroBatcher, Overloaded, RequestTimeout
from repro.service.client import (
    AsyncServiceClient,
    ServiceClient,
    ServiceError,
    Unavailable,
)
from repro.service.clock import Clock, ManualClock
from repro.service.metrics import ServiceMetrics
from repro.service.oracle import CostOracle, evaluate_point
from repro.service.protocol import (
    DEFAULT_SEED,
    KERNELS,
    MAX_GRID_POINTS,
    MODELS,
    TUNE_STRATEGIES,
    TUNE_TASKS,
    ProtocolError,
    parse_advise_request,
    parse_cost_request,
    parse_store_pull,
    parse_store_push,
    parse_sweep_request,
    parse_tune_request,
)
from repro.service.server import (
    WARM_PEERS_HEADER,
    BackgroundServer,
    ServiceServer,
)

__all__ = [
    "AsyncServiceClient",
    "BackgroundServer",
    "Clock",
    "CostOracle",
    "DEFAULT_SEED",
    "KERNELS",
    "ManualClock",
    "MAX_GRID_POINTS",
    "MicroBatcher",
    "MODELS",
    "Overloaded",
    "ProtocolError",
    "RequestTimeout",
    "ServiceClient",
    "ServiceError",
    "ServiceMetrics",
    "ServiceServer",
    "TUNE_STRATEGIES",
    "TUNE_TASKS",
    "Unavailable",
    "WARM_PEERS_HEADER",
    "evaluate_point",
    "parse_advise_request",
    "parse_cost_request",
    "parse_store_pull",
    "parse_store_push",
    "parse_sweep_request",
    "parse_tune_request",
]
