"""The in-process evaluation core behind the serving layer.

A :class:`CostOracle` owns one
:class:`~repro.analysis.executor.SweepExecutor` — and through it the
persistent on-disk result cache and (optionally) a reusable worker
pool — and turns validated protocol specs into responses.  The server's
micro-batcher hands it whole windows of unique specs; direct callers
(the CLI ``query`` path, tests, benchmarks) can use it without any HTTP
in between, which is what the service's golden-equivalence guarantee is
tested against: a served answer is bit-identical to the in-process one
because it *is* the in-process one.

:func:`evaluate_point` is the single measure function: module-level and
picklable, so the executor can ship it to worker processes and key the
result cache on it.  The spec dict (see
:mod:`repro.service.protocol`) is the cache's parameter point — kernel,
model, mode, and seed included — so service traffic and offline sweeps
share hits whenever their specs match.
"""

from __future__ import annotations

import threading
from typing import Iterable, Mapping

from repro.analysis.advisor import diagnose
from repro.analysis.executor import (
    SweepExecutor,
    SweepPoint,
    describe_measure,
    point_key,
)
from repro.analysis.terms import Params
from repro.experiments.table1 import (
    conv_launch_report,
    conv_task,
    sum_launch_report,
    sum_task,
)
from repro.params import HMMParams, MachineParams

__all__ = ["CostOracle", "evaluate_point"]


def _params_of(spec: Mapping) -> Params:
    return Params(n=spec["n"], k=spec["k"], p=spec["p"], w=spec["w"],
                  l=spec["l"], d=spec["d"])


def _spec_backend(spec: Mapping) -> "str | None":
    """Engine ``backend=`` for a spec: ``"auto"`` defers to the server's
    environment (``None`` → ``$REPRO_BACKEND``)."""
    backend = spec.get("backend", "auto")
    return None if backend == "auto" else backend


def evaluate_point(spec: Mapping) -> tuple[int, dict]:
    """One oracle measurement: the Table I task named by ``spec``.

    Identical code path to the experiment drivers, so a served cycle
    count matches a direct :func:`repro.experiments.table1.sum_task` /
    ``conv_task`` call for the same inputs exactly.
    """
    task = sum_task if spec["kernel"] == "sum" else conv_task
    return task(_params_of(spec), model=spec["model"], seed=spec["seed"],
                mode=spec["mode"], backend=_spec_backend(spec))


def _machine_params(spec: Mapping) -> "MachineParams | HMMParams":
    if spec["model"] == "hmm":
        return HMMParams(num_dmms=spec["d"], width=spec["w"],
                         global_latency=spec["l"])
    return MachineParams(width=spec["w"], latency=spec["l"])


class CostOracle:
    """Evaluate cost queries against the shared executor + cache.

    Thread-safe: the server calls :meth:`evaluate_batch` /
    :meth:`run_sweep` from worker threads (via ``run_in_executor``), and
    a lock serializes access to the underlying executor and its cache.

    Parameters mirror :class:`~repro.analysis.executor.SweepExecutor`;
    ``jobs`` > 1 shards large batches/sweeps over a worker pool that is
    kept alive between calls (``keep_pool``), so a serving process pays
    pool startup once, not per batch.
    """

    def __init__(
        self,
        *,
        jobs: "int | str" = 1,
        cache: bool = True,
        cache_dir=None,
    ) -> None:
        self.executor = SweepExecutor(jobs=jobs, cache=cache,
                                      cache_dir=cache_dir, keep_pool=True)
        self._lock = threading.Lock()

    # -- evaluation --------------------------------------------------------
    def _run(self, specs: list[dict], label: str) -> list[SweepPoint]:
        with self._lock:
            return self.executor.run(evaluate_point, specs, label=label)

    def evaluate_batch(self, specs: Iterable[Mapping]) -> list[dict]:
        """Evaluate unique specs (one micro-batch) into response bodies."""
        specs = [self._strip_auto_backend(s) for s in specs]
        points = self._run(specs, "service/cost")
        return [self._cost_body(spec, pt) for spec, pt in zip(specs, points)]

    def run_sweep(self, meta: Mapping, specs: list[dict]) -> dict:
        """Evaluate an expanded ``/v1/sweep`` grid into one response."""
        before_hits, before_misses = self.cache_counters()
        specs = [self._strip_auto_backend(s) for s in specs]
        points = self._run(specs, "service/sweep")
        hits, misses = self.cache_counters()
        return {
            **{k: meta[k] for k in ("kernel", "model", "mode", "seed")},
            "points": [
                {
                    "params": self._point_params(spec),
                    "cycles": pt.cycles,
                    "engine": pt.extra.get("engine", "exact"),
                }
                for spec, pt in zip(specs, points)
            ],
            "cache": {"hits": hits - before_hits,
                      "misses": misses - before_misses},
        }

    def advise(self, spec: Mapping) -> dict:
        """Run the spec once with full reporting and diagnose the launch."""
        q = _params_of(spec)
        launch = (sum_launch_report if spec["kernel"] == "sum"
                  else conv_launch_report)
        with self._lock:
            report = launch(q, model=spec["model"], seed=spec["seed"],
                            mode=spec["mode"], backend=_spec_backend(spec))
        advice = diagnose(report, _machine_params(spec))
        return {
            "kernel": spec["kernel"],
            "model": spec["model"],
            "params": self._point_params(spec),
            "cycles": report.cycles,
            "engine": report.engine,
            "regime": advice.regime.value,
            "occupancy_ratio": advice.occupancy_ratio,
            "units": {
                name: {
                    "transactions": unit.transactions,
                    "slots": unit.slots,
                    "efficiency": unit.efficiency,
                    "requests_per_slot": unit.requests_per_slot,
                }
                for name, unit in advice.units.items()
            },
            "findings": list(advice.findings),
            "rendered": advice.render(),
        }

    def tune_spec(self, spec: Mapping) -> dict:
        """Run an autotune job (``POST /v1/tune``) on the shared executor.

        The tuner fans candidate evaluations out over the oracle's own
        :class:`SweepExecutor`, so tune traffic shares the worker pool,
        the admission-controlled thread, and the persistent result
        cache with cost/sweep traffic.  Library-level
        :class:`~repro.errors.ConfigurationError` (an impossible shape
        for the task, say) is reported as a protocol error → HTTP 400.
        """
        from repro.errors import ConfigurationError
        from repro.service.protocol import ProtocolError
        from repro.tuner import tune

        before_hits, before_misses = self.cache_counters()
        try:
            with self._lock:
                report = tune(
                    spec["task"],
                    shape=spec["shape"] or None,
                    latencies=spec["latencies"],
                    strategy=spec["strategy"],
                    budget=spec["budget"],
                    mode=spec["mode"],
                    seed=spec["seed"],
                    executor=self.executor,
                )
        except ConfigurationError as exc:
            raise ProtocolError(str(exc), code="invalid_param") from exc
        hits, misses = self.cache_counters()
        body = report.to_dict()
        # Served responses are deterministic functions of the request
        # (the cluster relies on this for byte-identical relay); the
        # search's wall-clock is operational detail, not an answer.
        body.pop("search_seconds", None)
        return {
            **body,
            "cache": {"hits": hits - before_hits,
                      "misses": misses - before_misses},
        }

    # -- cluster support ---------------------------------------------------
    def store_namespaces(self) -> dict:
        """``{name: Namespace}`` of the stores this oracle writes into.

        What a cluster shard exposes for warm push/pull; empty when
        caching is off.
        """
        cache = self.executor.cache
        if cache is None:
            return {}
        ns = cache.store_namespace
        return {ns.name: ns}

    def spec_store_keys(self, specs: Iterable[Mapping]) -> list[tuple[str, str]]:
        """``(namespace, key)`` store identities for cost/sweep specs.

        Exactly the keys :meth:`evaluate_batch` / :meth:`run_sweep`
        read or write for these specs — same measure description, same
        auto-backend stripping, same fingerprint — so a shard can name
        the artifacts behind a request without re-evaluating anything.
        """
        cache = self.executor.cache
        if cache is None:
            return []
        desc = describe_measure(evaluate_point)
        return [
            (
                cache.namespace,
                point_key(desc, self._strip_auto_backend(spec), mode=None,
                          fingerprint=self.executor.fingerprint),
            )
            for spec in specs
        ]

    # -- observability / lifecycle ----------------------------------------
    def cache_counters(self) -> tuple[int, int]:
        """(hits, misses) of the persistent cache this session."""
        cache = self.executor.cache
        return (cache.hits, cache.misses) if cache else (0, 0)

    def close(self) -> None:
        """Release the executor's retained worker pool, if any."""
        self.executor.close()

    # -- response shaping ---------------------------------------------------
    @staticmethod
    def _strip_auto_backend(spec: Mapping) -> dict:
        """Drop ``backend: "auto"`` before the executor keys its cache.

        Backends return bit-identical cycles, so the default choice must
        not perturb cache identity (entries written before the backend
        field existed keep hitting); an *explicit* backend stays in the
        spec and keys separately, which is merely redundant.
        """
        spec = dict(spec)
        if spec.get("backend", "auto") == "auto":
            spec.pop("backend", None)
        return spec

    @staticmethod
    def _point_params(spec: Mapping) -> dict:
        return {name: spec[name] for name in ("n", "k", "p", "w", "l", "d")}

    @classmethod
    def _cost_body(cls, spec: Mapping, point: SweepPoint) -> dict:
        return {
            "kernel": spec["kernel"],
            "model": spec["model"],
            "mode": spec["mode"],
            "seed": spec["seed"],
            "params": cls._point_params(spec),
            "cycles": point.cycles,
            "engine": point.extra.get("engine", "exact"),
        }
