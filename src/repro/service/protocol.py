"""Wire protocol of the cost-oracle service: parsing and validation.

Every endpoint speaks JSON.  Requests are validated *here*, before any
simulator work is queued, and malformed input is rejected with a
:class:`ProtocolError` that the server renders as a structured ``400``
body::

    {"error": {"code": "invalid_param", "field": "w",
               "message": "w must be a positive power of two, got 0"}}

The parsed form of a cost query is a **spec**: a flat, JSON-able,
picklable dict ``{kernel, model, mode, seed, n, k, p, w, l, d}``.  The
spec doubles as

* the micro-batcher's coalescing key (identical specs in one batching
  window are evaluated once — see :mod:`repro.service.batcher`), and
* the parameter point of the sweep executor's persistent result cache
  (see :class:`repro.analysis.executor.SweepExecutor`),

so a spec *is* the identity of a measurement, end to end.

Size limits (``MAX_N``, ``MAX_THREADS``, ``MAX_GRID_POINTS``, ...) bound
the work one request can demand; they protect the service, not the
model — library callers can go as large as they like in-process.
"""

from __future__ import annotations

import json
from typing import Any, Mapping

__all__ = [
    "DEFAULT_SEED",
    "KERNELS",
    "MODELS",
    "MODES",
    "BACKENDS",
    "MACHINE_MODELS",
    "MAX_N",
    "MAX_KERNEL_LEN",
    "MAX_THREADS",
    "MAX_WIDTH",
    "MAX_LATENCY",
    "MAX_DMMS",
    "MAX_GRID_POINTS",
    "TUNE_TASKS",
    "TUNE_STRATEGIES",
    "TUNE_MODES",
    "MAX_TUNE_BUDGET",
    "MAX_TUNE_LATENCIES",
    "MAX_PUSH_ENTRY_BYTES",
    "ProtocolError",
    "parse_cost_request",
    "parse_sweep_request",
    "parse_advise_request",
    "parse_tune_request",
    "parse_store_push",
    "parse_store_pull",
    "parse_events_query",
    "parse_ring_change",
    "MAX_EVENTS_TIMEOUT_S",
    "spec_key",
]

#: Seed of the experiment drivers (table1's default); using the same
#: default keeps service answers bit-identical to the offline sweeps.
DEFAULT_SEED = 20130520

KERNELS = ("sum", "convolution")
MODELS = ("sequential", "pram", "dmm", "umm", "hmm")
#: Models that simulate a memory machine (and therefore can be advised).
MACHINE_MODELS = ("dmm", "umm", "hmm")
MODES = ("batch", "event", "replay")
#: Cost-model backends a request may name.  ``"auto"`` (the default)
#: defers to the server's ``$REPRO_BACKEND``; results are bit-identical
#: under every choice, so the backend is not part of the cache identity
#: (:func:`spec_key`).
BACKENDS = ("auto", "python", "native")

MAX_N = 1 << 22
MAX_KERNEL_LEN = 1 << 12
MAX_THREADS = 1 << 18
MAX_WIDTH = 1 << 10
MAX_LATENCY = 1 << 16
MAX_DMMS = 1 << 10
#: Ceiling on the expanded size of a ``/v1/sweep`` grid.
MAX_GRID_POINTS = 4096

#: Spec fields in canonical order (the wire and cache-key layout).
_SPEC_FIELDS = ("kernel", "model", "mode", "seed", "n", "k", "p", "w", "l", "d")

_PARAM_LIMITS = {
    "n": (1, MAX_N),
    "p": (1, MAX_THREADS),
    "w": (1, MAX_WIDTH),
    "l": (1, MAX_LATENCY),
    "d": (1, MAX_DMMS),
}
_PARAM_DEFAULTS = {"w": 16, "l": 16, "d": 8, "k": 0}


class ProtocolError(Exception):
    """A request the service refuses to act on (rendered as HTTP 400)."""

    def __init__(
        self, message: str, *, field: str | None = None,
        code: str = "invalid_request",
    ) -> None:
        super().__init__(message)
        self.message = message
        self.field = field
        self.code = code

    def body(self) -> dict:
        """The structured JSON error body."""
        error: dict[str, Any] = {"code": self.code, "message": self.message}
        if self.field is not None:
            error["field"] = self.field
        return {"error": error}


def _require_object(payload: Any, what: str) -> Mapping:
    if not isinstance(payload, Mapping):
        raise ProtocolError(
            f"{what} must be a JSON object, got {type(payload).__name__}",
            code="invalid_body",
        )
    return payload


def _int_field(
    payload: Mapping, name: str, *, default: int | None = None,
    low: int = 1, high: int | None = None,
) -> int:
    value = payload.get(name, default)
    if value is None:
        raise ProtocolError(f"missing required field {name!r}", field=name,
                            code="missing_param")
    # bool is an int subclass; `"w": true` is malformed, not width 1.
    if isinstance(value, bool) or not isinstance(value, int):
        raise ProtocolError(
            f"{name} must be an integer, got {value!r}", field=name,
            code="invalid_param",
        )
    if value < low or (high is not None and value > high):
        bound = f">= {low}" if high is None else f"in [{low}, {high}]"
        raise ProtocolError(
            f"{name} must be {bound}, got {value}", field=name,
            code="invalid_param",
        )
    return value


def _choice_field(
    payload: Mapping, name: str, choices: tuple[str, ...], default: str | None,
) -> str:
    value = payload.get(name, default)
    if value not in choices:
        raise ProtocolError(
            f"{name} must be one of {', '.join(choices)}, got {value!r}",
            field=name, code="invalid_param",
        )
    return value


def _validate_shape(spec: dict) -> dict:
    """Cross-field rules shared by every endpoint."""
    w = spec["w"]
    if w & (w - 1) != 0:
        raise ProtocolError(
            f"w must be a positive power of two, got {w}", field="w",
            code="invalid_param",
        )
    if spec["kernel"] == "convolution":
        if spec["k"] < 1:
            raise ProtocolError(
                "convolution requires k >= 1", field="k", code="invalid_param",
            )
        if spec["k"] > spec["n"]:
            raise ProtocolError(
                f"the paper assumes k <= n; got k={spec['k']}, n={spec['n']}",
                field="k", code="invalid_param",
            )
    elif spec["k"] != 0:
        raise ProtocolError(
            f"k only applies to the convolution kernel, got k={spec['k']}",
            field="k", code="invalid_param",
        )
    return spec


def _parse_spec(payload: Mapping) -> dict:
    """One validated (kernel, model, mode, seed, point) spec."""
    spec: dict[str, Any] = {
        "kernel": _choice_field(payload, "kernel", KERNELS, None),
        "model": _choice_field(payload, "model", MODELS, None),
        "mode": _choice_field(payload, "mode", MODES, "batch"),
        "backend": _choice_field(payload, "backend", BACKENDS, "auto"),
        "seed": _int_field(payload, "seed", default=DEFAULT_SEED, low=0,
                           high=(1 << 63) - 1),
    }
    for name, (low, high) in _PARAM_LIMITS.items():
        spec[name] = _int_field(payload, name,
                                default=_PARAM_DEFAULTS.get(name),
                                low=low, high=high)
    spec["k"] = _int_field(payload, "k", default=0, low=0, high=MAX_KERNEL_LEN)
    unknown = set(payload) - set(_SPEC_FIELDS) - {"backend"}
    if unknown:
        raise ProtocolError(
            f"unknown field(s): {', '.join(sorted(unknown))}",
            field=sorted(unknown)[0], code="unknown_field",
        )
    out = {name: spec[name] for name in _SPEC_FIELDS}
    out["backend"] = spec["backend"]
    return _validate_shape(out)


def parse_cost_request(payload: Any) -> dict:
    """Validate a ``POST /v1/cost`` body into a spec dict."""
    return _parse_spec(_require_object(payload, "cost request"))


def parse_advise_request(params: Mapping[str, str]) -> dict:
    """Validate ``GET /v1/advise`` query parameters into a spec dict.

    Query values arrive as strings; integers are converted before the
    shared spec validation runs.  Advice needs per-unit statistics, so
    only the memory-machine models qualify.
    """
    converted: dict[str, Any] = {}
    for name, raw in params.items():
        if name in ("kernel", "model", "mode", "backend"):
            converted[name] = raw
        else:
            try:
                converted[name] = int(raw)
            except (TypeError, ValueError):
                raise ProtocolError(
                    f"{name} must be an integer, got {raw!r}", field=name,
                    code="invalid_param",
                ) from None
    spec = _parse_spec(converted)
    if spec["model"] not in MACHINE_MODELS:
        raise ProtocolError(
            "advise requires a memory-machine model "
            f"({', '.join(MACHINE_MODELS)}), got {spec['model']!r}",
            field="model", code="invalid_param",
        )
    return spec


def parse_sweep_request(payload: Any) -> tuple[dict, list[dict]]:
    """Validate a ``POST /v1/sweep`` body.

    The body names one (kernel, model, mode, seed) and an ``axes``
    object mapping parameter names to value lists::

        {"kernel": "sum", "model": "hmm",
         "axes": {"n": [1024, 4096], "p": [64, 256], "l": [16, 128]}}

    Returns ``(base_spec, specs)`` where ``specs`` is the expanded grid
    (cartesian product, axis order preserved), every point individually
    validated.  Grids larger than :data:`MAX_GRID_POINTS` are rejected
    before expansion.
    """
    body = _require_object(payload, "sweep request")
    axes_raw = body.get("axes")
    axes = _require_object(
        axes_raw if axes_raw is not None else None, "axes")
    if not axes:
        raise ProtocolError("axes must name at least one parameter",
                            field="axes", code="invalid_param")
    sweepable = set(_PARAM_LIMITS) | {"k"}
    total = 1
    for name, values in axes.items():
        if name not in sweepable:
            raise ProtocolError(
                f"axes.{name} is not sweepable (allowed: "
                f"{', '.join(sorted(sweepable))})",
                field=f"axes.{name}", code="invalid_param",
            )
        if not isinstance(values, (list, tuple)) or not values:
            raise ProtocolError(
                f"axes.{name} must be a non-empty list", field=f"axes.{name}",
                code="invalid_param",
            )
        total *= len(values)
        if total > MAX_GRID_POINTS:
            raise ProtocolError(
                f"sweep grid exceeds {MAX_GRID_POINTS} points",
                field="axes", code="grid_too_large",
            )
    scalars = {k: v for k, v in body.items() if k != "axes"}
    points: list[dict] = [{}]
    for name, values in axes.items():
        points = [{**pt, name: v} for pt in points for v in values]
    specs = []
    for pt in points:
        merged = {**scalars, **pt}
        try:
            specs.append(_parse_spec(merged))
        except ProtocolError as exc:
            raise ProtocolError(
                f"grid point {pt}: {exc.message}", field=exc.field,
                code=exc.code,
            ) from None
    meta = {name: specs[0][name] for name in ("kernel", "model", "mode", "seed")}
    return meta, specs


def spec_key(spec: Mapping) -> str:
    """Canonical string identity of a spec (batcher coalescing key)."""
    return json.dumps({k: spec[k] for k in _SPEC_FIELDS}, sort_keys=True)


# ---------------------------------------------------------------------------
# POST /v1/tune
# ---------------------------------------------------------------------------

#: Demo task names, mirrored statically from ``repro.tuner.demos.TASKS``
#: so the protocol layer stays import-light (a test pins the mirror).
TUNE_TASKS = ("gather", "permutation", "sort", "sum", "transpose")
TUNE_STRATEGIES = ("exhaustive", "random", "greedy", "anneal")
TUNE_MODES = ("auto",) + MODES

MAX_TUNE_BUDGET = 256
MAX_TUNE_LATENCIES = 16

#: Shape overrides a tune request may set, with service-side caps (the
#: library accepts anything; these bound one HTTP request's work).
_TUNE_SHAPE_LIMITS = {
    "w": (1, 64),
    "d": (1, 64),
    "m": (1, 256),
    "n": (1, 1 << 16),
}


def parse_tune_request(payload: Any) -> dict:
    """Validate a ``POST /v1/tune`` body into a tune spec dict.

    The body names a demo task and, optionally, the search strategy,
    evaluation budget, engine mode, seed, latency grid, and shape
    overrides::

        {"task": "transpose", "strategy": "greedy", "budget": 8,
         "latencies": [4, 16, 64], "shape": {"m": 64}}

    Returns ``{task, strategy, budget, mode, seed, latencies, shape}``
    with ``budget``/``latencies`` as ``None`` when defaulted.  Shape
    keys are capped but not cross-checked against the task here — the
    oracle maps the library's ``ConfigurationError`` to a 400.
    """
    body = _require_object(payload, "tune request")
    allowed = {"task", "strategy", "budget", "mode", "seed", "latencies",
               "shape"}
    unknown = sorted(set(body) - allowed)
    if unknown:
        raise ProtocolError(
            f"unknown field {unknown[0]!r} (allowed: "
            f"{', '.join(sorted(allowed))})",
            field=unknown[0], code="invalid_param",
        )
    spec: dict[str, Any] = {
        "task": _choice_field(body, "task", TUNE_TASKS, None),
        "strategy": _choice_field(body, "strategy", TUNE_STRATEGIES,
                                  "exhaustive"),
        "mode": _choice_field(body, "mode", TUNE_MODES, "auto"),
        "seed": _int_field(body, "seed", default=0, low=0),
    }
    spec["budget"] = (
        None if body.get("budget") is None
        else _int_field(body, "budget", low=1, high=MAX_TUNE_BUDGET)
    )
    lats = body.get("latencies")
    if lats is None:
        spec["latencies"] = None
    else:
        if not isinstance(lats, (list, tuple)) or not lats:
            raise ProtocolError(
                "latencies must be a non-empty list of integers",
                field="latencies", code="invalid_param",
            )
        if len(lats) > MAX_TUNE_LATENCIES:
            raise ProtocolError(
                f"at most {MAX_TUNE_LATENCIES} latency points per tune "
                f"request, got {len(lats)}",
                field="latencies", code="grid_too_large",
            )
        for v in lats:
            if isinstance(v, bool) or not isinstance(v, int) \
                    or not 1 <= v <= MAX_LATENCY:
                raise ProtocolError(
                    f"latencies entries must be integers in "
                    f"[1, {MAX_LATENCY}], got {v!r}",
                    field="latencies", code="invalid_param",
                )
        spec["latencies"] = [int(v) for v in lats]
    shape_raw = body.get("shape")
    shape: dict[str, int] = {}
    if shape_raw is not None:
        shape_body = _require_object(shape_raw, "shape")
        for key in shape_body:
            if key not in _TUNE_SHAPE_LIMITS:
                raise ProtocolError(
                    f"shape.{key} is not tunable over HTTP (allowed: "
                    f"{', '.join(sorted(_TUNE_SHAPE_LIMITS))})",
                    field=f"shape.{key}", code="invalid_param",
                )
            low, high = _TUNE_SHAPE_LIMITS[key]
            shape[key] = _int_field(shape_body, key, low=low, high=high)
    spec["shape"] = shape
    return spec


# ---------------------------------------------------------------------------
# POST /v1/store/push · GET /v1/store/pull  (cluster cache warming)
# ---------------------------------------------------------------------------

#: Ceiling on one pushed entry's framed size, decoded.  Must leave room
#: for base64 expansion (4/3) plus the JSON wrapper inside the server's
#: 1 MiB body cap.
MAX_PUSH_ENTRY_BYTES = 700_000

_STORE_NAME_OK = frozenset("abcdefghijklmnopqrstuvwxyz0123456789-_")
_STORE_KEY_OK = _STORE_NAME_OK | set("abcdef0123456789.")


def _store_name_field(payload: Mapping, name: str, allowed: frozenset,
                      max_len: int) -> str:
    value = payload.get(name)
    if not isinstance(value, str) or not value or len(value) > max_len \
            or not set(value.lower()) <= allowed:
        raise ProtocolError(
            f"{name} must be a short [a-z0-9-_] string, got {value!r}",
            field=name, code="invalid_param",
        )
    return value


def parse_store_push(payload: Any) -> tuple[str, str, bytes]:
    """Validate a ``POST /v1/store/push`` body into (namespace, key, blob).

    ``blob`` is the base64-decoded framed store entry — the PR 6
    integrity envelope plus payload, exactly as it sits on the sender's
    disk.  Only the transport is validated here; the envelope itself
    (magic, digest, size) is checked by
    :meth:`repro.store.Namespace.put_framed` on the receiving store, so
    an entry corrupted in flight is rejected, never stored.
    """
    import base64
    import binascii

    body = _require_object(payload, "store push")
    namespace = _store_name_field(body, "namespace", frozenset(_STORE_NAME_OK),
                                  64)
    key = _store_name_field(body, "key", frozenset(_STORE_KEY_OK), 256)
    entry = body.get("entry")
    if not isinstance(entry, str) or not entry:
        raise ProtocolError("entry must be a base64 string", field="entry",
                            code="invalid_param")
    try:
        blob = base64.b64decode(entry.encode("ascii"), validate=True)
    except (binascii.Error, ValueError, UnicodeEncodeError):
        raise ProtocolError("entry is not valid base64", field="entry",
                            code="invalid_param") from None
    if len(blob) > MAX_PUSH_ENTRY_BYTES:
        raise ProtocolError(
            f"entry exceeds {MAX_PUSH_ENTRY_BYTES} bytes", field="entry",
            code="body_too_large",
        )
    return namespace, key, blob


def parse_store_pull(params: Mapping[str, str]) -> tuple[str, str]:
    """Validate ``GET /v1/store/pull`` query params into (namespace, key)."""
    namespace = _store_name_field(params, "namespace",
                                  frozenset(_STORE_NAME_OK), 64)
    key = _store_name_field(params, "key", frozenset(_STORE_KEY_OK), 256)
    return namespace, key


# ---------------------------------------------------------------------------
# GET /v1/events · POST /v1/ring/{add,drain}  (telemetry + membership)
# ---------------------------------------------------------------------------

#: Ceiling on one long-poll's server-side wait.  Keeps a poll request
#: from pinning a connection longer than the clients' own timeouts.
MAX_EVENTS_TIMEOUT_S = 60.0


def parse_events_query(params: Mapping[str, str]) -> dict:
    """Validate ``GET /v1/events`` query params.

    Returns ``{"mode", "from_seq", "timeout_s", "limit"}``.  ``mode``
    is ``"sse"`` (default — a live stream, no Content-Length) or
    ``"poll"`` (one long-poll round returning a JSON body).  ``from``
    is the resume cursor (events with ``seq > from`` are delivered);
    ``timeout`` bounds a poll's wait; ``limit`` caps delivered events —
    under SSE the *server* closes the stream once it is reached.
    """
    mode = params.get("mode", "sse")
    if mode not in ("sse", "poll"):
        raise ProtocolError(
            f"mode must be 'sse' or 'poll', got {mode!r}", field="mode",
            code="invalid_param",
        )
    out: dict[str, Any] = {"mode": mode}
    raw = params.get("from", "0")
    try:
        from_seq = int(raw)
    except (TypeError, ValueError):
        raise ProtocolError(f"from must be an integer, got {raw!r}",
                            field="from", code="invalid_param") from None
    if from_seq < 0:
        raise ProtocolError(f"from must be >= 0, got {from_seq}",
                            field="from", code="invalid_param")
    out["from_seq"] = from_seq
    raw = params.get("timeout", "25")
    try:
        timeout_s = float(raw)
    except (TypeError, ValueError):
        raise ProtocolError(f"timeout must be a number, got {raw!r}",
                            field="timeout", code="invalid_param") from None
    if not 0.0 <= timeout_s <= MAX_EVENTS_TIMEOUT_S:
        raise ProtocolError(
            f"timeout must be in [0, {MAX_EVENTS_TIMEOUT_S:g}], got {raw}",
            field="timeout", code="invalid_param",
        )
    out["timeout_s"] = timeout_s
    raw = params.get("limit")
    if raw is None:
        out["limit"] = None
    else:
        try:
            limit = int(raw)
        except (TypeError, ValueError):
            raise ProtocolError(f"limit must be an integer, got {raw!r}",
                                field="limit", code="invalid_param") from None
        if limit < 1:
            raise ProtocolError(f"limit must be >= 1, got {limit}",
                                field="limit", code="invalid_param")
        out["limit"] = limit
    return out


def parse_ring_change(payload: Any) -> str:
    """Validate a ``POST /v1/ring/add`` / ``/v1/ring/drain`` body.

    The body names one shard: ``{"url": "http://host:port"}``.  Returns
    the normalized base URL (scheme + host + explicit port, no path),
    which is the ring's member identity.
    """
    from urllib.parse import urlsplit

    body = _require_object(payload, "ring change")
    unknown = sorted(set(body) - {"url"})
    if unknown:
        raise ProtocolError(
            f"unknown field {unknown[0]!r} (allowed: url)",
            field=unknown[0], code="invalid_param",
        )
    raw = body.get("url")
    if not isinstance(raw, str) or not raw:
        raise ProtocolError("url must be a non-empty string", field="url",
                            code="missing_param")
    split = urlsplit(raw)
    if split.scheme != "http" or not split.hostname or split.port is None:
        raise ProtocolError(
            f"url must look like http://host:port, got {raw!r}",
            field="url", code="invalid_param",
        )
    return f"http://{split.hostname}:{split.port}"
