"""repro — the Hierarchical Memory Machine model for GPUs, reproduced.

A cycle-accurate simulator and algorithm library for Nakano's memory
machine models (IPDPS Workshops 2013): the **DMM** (banked shared memory,
bank-conflict costs), the **UMM** (global memory, coalescing costs), and
the **HMM** (``d`` DMMs sharing one UMM — the whole-GPU model), together
with the paper's optimal algorithms for the sum and the direct
convolution, their PRAM/sequential baselines, closed-form cost models
(Table I), and lower bounds (Table II).

Quickstart::

    from repro import HMM, HMMParams

    gpu = HMM(HMMParams(num_dmms=8, width=32, global_latency=200))
    total, report = gpu.sum(range(1 << 14), num_threads=1024)
    print(total, report.cycles)           # value and model time units

    z, report = gpu.convolve(x, y, num_threads=2048)

Main entry points:

* :class:`repro.DMM`, :class:`repro.UMM`, :class:`repro.HMM` — machine
  façades with ``sum`` / ``convolve`` / ``prefix_sums`` / ... methods;
* :class:`repro.PRAM`, :class:`repro.SequentialMachine` — baselines;
* :mod:`repro.analysis` — Table I/II formulas, fitting, optimality checks;
* :mod:`repro.machine` — the simulation substrate, for writing custom
  warp programs against :meth:`repro.HMM.engine`.
"""

from repro.core.machines import DMM, HMM, UMM
from repro.core.pram import PRAM
from repro.core.sequential import SequentialMachine
from repro.errors import ReproError
from repro.machine.batch import BatchCostEngine, BatchFallback
from repro.machine.report import RunReport
from repro.machine.threadprog import ThreadContext, thread_program
from repro.machine.trace import TraceRecorder
from repro.params import FIG4_PARAMS, GTX580, TINY, HMMParams, MachineParams

__version__ = "1.0.0"

__all__ = [
    "BatchCostEngine",
    "BatchFallback",
    "DMM",
    "FIG4_PARAMS",
    "GTX580",
    "HMM",
    "HMMParams",
    "MachineParams",
    "PRAM",
    "ReproError",
    "RunReport",
    "SequentialMachine",
    "TINY",
    "ThreadContext",
    "thread_program",
    "TraceRecorder",
    "UMM",
    "__version__",
]
