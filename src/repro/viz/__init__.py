"""Text renderings of the paper's figures and of sweep data.

No plotting dependency: everything renders to plain text, suitable for
terminals, logs, and EXPERIMENTS.md.

* :func:`render_banks_and_groups` — Figure 3 (banks and address groups);
* :func:`render_sum_tree` — Figure 5 (the pairwise summing tree);
* :func:`ascii_chart` — log-log style series charts for the sweeps;
* :func:`render_dashboard` / :func:`sparkline` — the live telemetry
  dashboard (``python -m repro.telemetry watch``);
* Figure 4's pipeline timeline lives on
  :meth:`repro.machine.trace.TraceRecorder.render_pipeline_timeline`.
"""

from repro.viz.dashboard import render_dashboard, sparkline
from repro.viz.figures import (
    ascii_chart,
    render_banks_and_groups,
    render_heatmap,
    render_sum_tree,
)

__all__ = [
    "ascii_chart",
    "render_banks_and_groups",
    "render_dashboard",
    "render_heatmap",
    "render_sum_tree",
    "sparkline",
]
