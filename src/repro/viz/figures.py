"""Plain-text figure renderings."""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.errors import ConfigurationError
from repro.machine.banks import bank_group_table

__all__ = ["render_banks_and_groups", "render_sum_tree", "ascii_chart"]


def render_banks_and_groups(num_cells: int, width: int) -> str:
    """The paper's Figure 3: the memory layout for a given width.

    Rows are address groups ``A[g]`` (the UMM's coalescing unit), columns
    are banks ``B[b]`` (the DMM's conflict unit); each cell shows the
    address stored there.
    """
    table = bank_group_table(num_cells, width)
    cell_w = max(len(str(num_cells - 1)), 2)
    header = " " * 6 + " ".join(f"B[{b}]".rjust(cell_w + 2) for b in range(width))
    lines = [
        f"banks and address groups for w = {width} "
        f"(cell value = memory address)",
        header,
    ]
    for g, row in enumerate(table):
        cells = " ".join(
            (str(a) if a >= 0 else "-").rjust(cell_w + 2) for a in row
        )
        lines.append(f"A[{g}]".ljust(6) + cells)
    return "\n".join(lines)


def render_sum_tree(n: int) -> str:
    """The paper's Figure 5: the pairwise summing tree for ``n`` values.

    Each line is one level of ``a`` after the level's pairwise additions
    (using the general ceil-halving rule of the implementation), written
    as index ranges of the original input that each cell now sums.
    """
    if n < 1:
        raise ConfigurationError(f"need n >= 1, got {n}")
    # Track, per cell, the set of input indices it currently sums.
    sets = [frozenset({i}) for i in range(n)]
    lines = [f"pairwise summing of n = {n} values (cell = input indices summed)"]

    def fmt(level_sets: list[frozenset[int]]) -> str:
        return "  ".join(
            "{" + ",".join(str(i) for i in sorted(s)) + "}" for s in level_sets
        )

    lines.append("level 0:  " + fmt(sets))
    level = 1
    m = n
    while m > 1:
        half = -(-m // 2)
        sets = [
            sets[i] | sets[i + half] if i + half < m else sets[i]
            for i in range(half)
        ]
        lines.append(f"level {level}:  " + fmt(sets))
        m = half
        level += 1
    return "\n".join(lines)


def ascii_chart(
    x: Sequence[float],
    series: dict[str, Sequence[float]],
    *,
    title: str = "",
    x_label: str = "x",
    height: int = 12,
    width: int = 60,
    log_y: bool = True,
) -> str:
    """A simple multi-series scatter chart in text.

    Each series gets a marker character; points land on a
    ``height x width`` character grid with (optionally log-scaled) y.
    Designed for the sweep benchmarks: enough to see slopes and
    crossovers in a terminal.
    """
    xs = np.asarray(x, dtype=np.float64)
    if xs.size == 0 or not series:
        raise ConfigurationError("need at least one point and one series")
    markers = "ox+*#@%&"
    all_y = np.concatenate([np.asarray(v, dtype=np.float64) for v in series.values()])
    if log_y:
        all_y = np.log10(np.maximum(all_y, 1e-12))
    lo, hi = float(all_y.min()), float(all_y.max())
    if hi - lo < 1e-12:
        hi = lo + 1.0
    x_lo, x_hi = float(xs.min()), float(xs.max())
    if x_hi - x_lo < 1e-12:
        x_hi = x_lo + 1.0

    grid_rows = [[" "] * width for _ in range(height)]
    for si, (name, ys) in enumerate(series.items()):
        marker = markers[si % len(markers)]
        yv = np.asarray(ys, dtype=np.float64)
        if log_y:
            yv = np.log10(np.maximum(yv, 1e-12))
        for xi, yi in zip(xs, yv):
            col = int(round((xi - x_lo) / (x_hi - x_lo) * (width - 1)))
            row = int(round((yi - lo) / (hi - lo) * (height - 1)))
            grid_rows[height - 1 - row][col] = marker

    lines = []
    if title:
        lines.append(title)
    y_unit = "log10(y)" if log_y else "y"
    lines.append(f"{y_unit} in [{lo:.2f}, {hi:.2f}]")
    lines.extend("|" + "".join(r) for r in grid_rows)
    lines.append("+" + "-" * width)
    lines.append(f" {x_label} in [{x_lo:.3g}, {x_hi:.3g}]")
    legend = "  ".join(
        f"{markers[i % len(markers)]}={name}" for i, name in enumerate(series)
    )
    lines.append(" " + legend)
    return "\n".join(lines)


def render_heatmap(
    row_values: Sequence[float],
    col_values: Sequence[float],
    cells: "np.ndarray",
    *,
    title: str = "",
    row_label: str = "rows",
    col_label: str = "cols",
    log_scale: bool = True,
) -> str:
    """A text heatmap for 2-D parameter sweeps.

    ``cells[i][j]`` is the measurement at ``(row_values[i],
    col_values[j])``.  Shading uses a ten-step ramp over (optionally
    log-scaled) values — enough to see ridges and valleys in a
    terminal; exact numbers are printed alongside.
    """
    grid_vals = np.asarray(cells, dtype=np.float64)
    if grid_vals.shape != (len(row_values), len(col_values)):
        raise ConfigurationError(
            f"cells shape {grid_vals.shape} does not match "
            f"({len(row_values)}, {len(col_values)})"
        )
    scaled = np.log10(np.maximum(grid_vals, 1e-12)) if log_scale else grid_vals
    lo, hi = float(scaled.min()), float(scaled.max())
    span = hi - lo if hi > lo else 1.0
    ramp = " .:-=+*#%@"
    cell_w = max(len(f"{v:.0f}") for v in grid_vals.ravel()) + 1

    lines = []
    if title:
        lines.append(title)
    header = " " * 8 + "".join(str(c).rjust(cell_w) for c in col_values)
    lines.append(header + f"   <- {col_label}")
    for rv, srow, vrow in zip(row_values, scaled, grid_vals):
        shades = "".join(
            (ramp[int((s - lo) / span * (len(ramp) - 1))] * 1).rjust(cell_w)
            for s in srow
        )
        nums = "".join(f"{v:.0f}".rjust(cell_w) for v in vrow)
        lines.append(f"{str(rv):>7} {shades}   {nums}")
    lines.append(f"rows: {row_label}; shade ramp '{ramp}' spans "
                 f"[{grid_vals.min():.0f}, {grid_vals.max():.0f}]")
    return "\n".join(lines)
