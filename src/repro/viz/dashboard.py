"""Terminal dashboard for the live telemetry feed.

Pure functions from a ``/metrics`` payload (cluster or single service)
plus optional client-kept history to plain text — no cursor tricks, no
dependencies beyond numpy (via :func:`~repro.viz.figures.ascii_chart`).
``python -m repro.telemetry watch <url>`` drives this in a loop; tests
golden-snapshot the exact render.

Layout::

    == repro telemetry =============================================
    source http://127.0.0.1:8799  status ok  requests 1234  up 63s
    rps (cluster)  ▁▂▄▆██▆  last 102.4
    <ascii_chart of aggregate rps when history is long enough>
    shard                        state     req  hit%  warm_rx  rps
    http://127.0.0.1:9001        up        512    93        4  51.2
    ...
    hot keys (2/8): 412 spec:{...}  97 spec:{...}
    events: 57 emitted, 0 dropped | recent:
      #55 12.4s shard.down {"shard": "..."}
"""

from __future__ import annotations

from typing import Mapping, Sequence

__all__ = ["sparkline", "render_dashboard"]

_SPARK = " ▁▂▃▄▅▆▇█"


def sparkline(
    values: Sequence[float], *, width: int = 24,
    lo: "float | None" = None, hi: "float | None" = None,
) -> str:
    """A one-line block graph of the last ``width`` values.

    Scale is min..max of the rendered window unless pinned with
    ``lo``/``hi`` (pin ``0..1`` for rates so full bars mean 100%).
    """
    tail = [float(v) for v in list(values)[-width:]]
    if not tail:
        return ""
    low = min(tail) if lo is None else float(lo)
    high = max(tail) if hi is None else float(hi)
    span = high - low
    if span <= 0:
        return _SPARK[1] * len(tail)
    steps = len(_SPARK) - 1
    out = []
    for v in tail:
        frac = min(1.0, max(0.0, (v - low) / span))
        out.append(_SPARK[max(1, round(frac * steps))])
    return "".join(out)


def _fmt_rate(value) -> str:
    return f"{100 * value:.0f}" if isinstance(value, (int, float)) else "-"


def _shard_rows(metrics: Mapping, history: Mapping) -> list[list[str]]:
    """One table row per shard, cluster and single-service payloads."""
    rps_hist = history.get("rps", {})
    rows = []
    if "cluster" in metrics:
        ring = metrics["cluster"].get("ring", {})
        shards = metrics.get("shards", {})
        for url in ring.get("shards", []):
            body = shards.get(url)
            body = body if isinstance(body, dict) else {}
            cache = body.get("cache", {})
            warming = body.get("warming", {})
            rps = rps_hist.get(url, [])
            rows.append([
                url,
                "up" if ring.get("alive", {}).get(url) else "down",
                str(body.get("requests_total", "-")),
                _fmt_rate(cache.get("hit_rate")),
                str(warming.get("received_stored", "-")),
                f"{rps[-1]:.1f}" if rps else "-",
                sparkline(rps, width=16),
            ])
    else:
        cache = metrics.get("cache", {})
        warming = metrics.get("warming", {})
        rps = rps_hist.get("service", [])
        rows.append([
            "service",
            "up",
            str(metrics.get("requests_total", "-")),
            _fmt_rate(cache.get("hit_rate")),
            str(warming.get("received_stored", "-")),
            f"{rps[-1]:.1f}" if rps else "-",
            sparkline(rps, width=16),
        ])
    return rows


def _table(headers: list[str], rows: list[list[str]]) -> list[str]:
    widths = [len(h) for h in headers]
    for row in rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))

    def fmt(cells):
        return "  ".join(c.ljust(widths[i])
                         for i, c in enumerate(cells)).rstrip()

    return [fmt(headers)] + [fmt(row) for row in rows]


def render_dashboard(
    metrics: Mapping,
    *,
    source: str = "",
    history: "Mapping | None" = None,
    events: "Sequence[Mapping] | None" = None,
    width: int = 64,
    max_events: int = 6,
    max_hot: int = 4,
) -> str:
    """Render one dashboard frame from a ``/metrics`` payload.

    ``history`` is client-kept (the ``watch`` CLI computes it from
    successive polls): ``{"rps": {shard_url_or_"cluster": [..]},
    "hit_rate": {...}}``.  ``events`` is a recent-events window (dicts
    with ``seq``/``ts``/``type``/``data``).  Deterministic: same
    inputs, same text.
    """
    history = history or {}
    cluster = metrics.get("cluster", {})
    router = cluster.get("router", {})
    lines = ["== repro telemetry " + "=" * max(4, width - 19)]

    if cluster:
        header = (
            f"source {source or 'cluster'}  shards "
            f"{sum(1 for v in cluster.get('ring', {}).get('alive', {}).values() if v)}"
            f"/{len(cluster.get('ring', {}).get('shards', []))} up  "
            f"requests {router.get('requests_total', 0)}  "
            f"reroutes {router.get('reroutes', 0)}  "
            f"503s {router.get('no_live_shard_503', 0)}"
        )
    else:
        header = (
            f"source {source or 'service'}  "
            f"requests {metrics.get('requests_total', 0)}  "
            f"rejected {metrics.get('rejected', 0)}  "
            f"uptime {metrics.get('uptime_s', 0):.0f}s"
        )
    lines.append(header)

    agg = history.get("rps", {}).get("cluster") \
        or history.get("rps", {}).get("service") or []
    if agg:
        lines.append(
            f"rps {sparkline(agg, width=min(32, width // 2))}  "
            f"last {agg[-1]:.1f}"
        )
    if len(agg) >= 4:
        from repro.viz.figures import ascii_chart

        lines.append(ascii_chart(
            list(range(len(agg))), {"rps": list(agg)},
            x_label="poll", height=5, width=min(48, width - 8),
            log_y=False,
        ))

    rows = _shard_rows(metrics, history)
    lines.extend(_table(
        ["shard", "state", "req", "hit%", "warm_rx", "rps", "trend"], rows,
    ))

    hot = cluster.get("hot", {}) if cluster else {}
    hot_keys = hot.get("hot_keys", {})
    if cluster:
        shown = sorted(hot_keys.items(), key=lambda kv: (-kv[1], kv[0]))
        bits = "  ".join(
            f"{count} {key if len(key) <= 44 else key[:43] + '…'}"
            for key, count in shown[:max_hot]
        )
        lines.append(
            f"hot keys ({len(hot_keys)}/{hot.get('top_k', 0)})"
            + (f": {bits}" if bits else "")
        )

    bus = (cluster.get("events") if cluster
           else (metrics.get("telemetry") or {}).get("events")) or {}
    if bus:
        lines.append(
            f"events: {bus.get('emitted', 0)} emitted, "
            f"{bus.get('dropped', 0)} dropped"
        )
    for event in list(events or [])[-max_events:]:
        data = event.get("data", {})
        bits = " ".join(f"{k}={data[k]}" for k in sorted(data))
        lines.append(
            f"  #{event.get('seq')} {event.get('ts')}s "
            f"{event.get('type')}" + (f" {bits}" if bits else "")
        )
    return "\n".join(lines)
