"""``python -m repro.tuner`` — tune a demo task from the command line.

Examples::

    python -m repro.tuner transpose
    python -m repro.tuner transpose --strategy greedy --budget 8 --json
    python -m repro.tuner sum --shape n=4096 w=8 --latencies 4 16 64
    python -m repro.tuner --list
"""

from __future__ import annotations

import argparse
import json
import sys

from repro.errors import ReproError
from repro.tuner.demos import TASKS
from repro.tuner.search import STRATEGIES
from repro.tuner.tuner import DEFAULT_LATENCIES, tune


def _parse_shape(pairs: list[str]) -> dict:
    shape = {}
    for pair in pairs:
        key, sep, value = pair.partition("=")
        if not sep or not key or not value:
            raise SystemExit(f"--shape expects key=value pairs, got {pair!r}")
        try:
            shape[key] = int(value)
        except ValueError:
            raise SystemExit(f"--shape values must be ints, got {pair!r}")
    return shape


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.tuner",
        description="Search a demo kernel's layout/launch space for the "
                    "configuration minimizing modeled time units.",
    )
    parser.add_argument("task", nargs="?", choices=sorted(TASKS),
                        help="demo task to tune")
    parser.add_argument("--list", action="store_true",
                        help="list the demo tasks and exit")
    parser.add_argument("--strategy", default="exhaustive",
                        choices=STRATEGIES)
    parser.add_argument("--budget", type=int, default=None,
                        help="max configurations to evaluate")
    parser.add_argument("--mode", default="auto",
                        choices=("auto", "event", "batch", "replay"),
                        help="evaluation engine (auto = replay when the "
                             "task is oblivious, else batch)")
    parser.add_argument("--latencies", type=int, nargs="+",
                        default=list(DEFAULT_LATENCIES), metavar="L",
                        help="latency grid the objective sums over")
    parser.add_argument("--shape", nargs="+", default=[], metavar="K=V",
                        help="shape overrides, e.g. --shape m=64 w=8")
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--jobs", default=1,
                        help="worker processes (int or 'auto')")
    parser.add_argument("--no-cache", action="store_true",
                        help="skip the on-disk result cache")
    parser.add_argument("--json", action="store_true",
                        help="print the full TuneReport as JSON")
    args = parser.parse_args(argv)

    if args.list:
        for name in sorted(TASKS):
            task = TASKS[name]
            tag = "oblivious" if task.oblivious else "data-dependent"
            print(f"{name:12s} {task.summary} [{tag}]")
        return 0
    if not args.task:
        parser.error("a task name (or --list) is required")

    jobs = args.jobs if args.jobs == "auto" else int(args.jobs)
    try:
        report = tune(
            args.task,
            shape=_parse_shape(args.shape),
            latencies=args.latencies,
            strategy=args.strategy,
            budget=args.budget,
            mode=args.mode,
            seed=args.seed,
            jobs=jobs,
            cache=not args.no_cache,
        )
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    if args.json:
        print(json.dumps(report.to_dict(), indent=2, sort_keys=True))
    else:
        print(report.render())
    return 0


if __name__ == "__main__":
    sys.exit(main())
