"""Oblivious demo kernels the tuner optimizes.

The kernels here index their scratch arrays with *logical* indices and
natural stride — deliberately the pathological layout.  The tuner never
touches them: every candidate layout is supplied by wrapping the
scratch array in a :class:`~repro.tuner.transforms.TransformedArray`
before the launch, so a single generator function serves the whole
padding/skew search space.

All kernels are memory-access oblivious (addresses depend only on the
launch shape, never on stored values), so ``mode="replay"`` is sound
for them; the genuinely data-dependent demo lives in
:mod:`repro.tuner.datadep` and is registered in the replay refusal
registry.
"""

from __future__ import annotations

from repro.errors import ConfigurationError
from repro.machine.warp import WarpContext

__all__ = ["tile_transpose_kernel"]


def tile_transpose_kernel(a, b, m: int, tile: list, num_dmms: int):
    """``B = A^T`` via shared tiles, addressed at logical stride ``w``.

    The same access pattern as
    :func:`repro.core.kernels.matmul.hmm_transpose_kernel`, but the tile
    is indexed as a dense logical ``w x w`` matrix (cell ``(r, c)`` at
    ``r * w + c``): lane ``j`` writes column ``j`` of the tile — a full
    ``w``-way bank conflict under the identity layout.  Padding or
    skewing the tile wrapper (and *only* the wrapper) removes it.
    """

    def program(warp: WarpContext):
        w = warp.width
        if m % w:
            raise ConfigurationError(
                f"matrix size {m} must be a multiple of the width {w}"
            )
        if warp.num_lanes != warp.width or warp.warp_in_dmm != 0:
            raise ConfigurationError(
                "tile kernels expect exactly one full warp per DMM "
                f"(launch with num_threads = d*w = {num_dmms * warp.width})"
            )
        tiles = m // w
        i = warp.dmm_id
        lane = warp.local_tids
        my_tile = tile[i]

        for tile_id in range(i, tiles * tiles, num_dmms):
            ti, tj = divmod(tile_id, tiles)
            for r in range(w):
                av = yield warp.read(a, (ti * w + r) * m + tj * w + lane)
                # Transposed store: lane j -> logical tile cell (j, r).
                yield warp.write(my_tile, lane * w + r, av)
            yield warp.sync_dmm()
            for r in range(w):
                tv = yield warp.read(my_tile, r * w + lane)
                yield warp.write(b, (tj * w + r) * m + ti * w + lane, tv)
            yield warp.sync_dmm()

    return program
