"""Search strategies over a :class:`~repro.tuner.space.ParamSpace`.

Strategies are ask/tell objects: :meth:`SearchStrategy.propose` returns
the next batch of configurations to cost (so the tuner can fan a whole
batch out over the :class:`~repro.analysis.executor.SweepExecutor`),
and :meth:`SearchStrategy.observe` feeds the measured costs back.
``propose`` returning an empty list ends the search.

All strategies respect an evaluation ``budget`` and never re-propose a
configuration they have already observed.  Determinism: random choices
come from a seeded :class:`numpy.random.Generator` only.
"""

from __future__ import annotations

import json
import math

import numpy as np

from repro.errors import ConfigurationError
from repro.tuner.space import ParamSpace

__all__ = [
    "SearchStrategy",
    "ExhaustiveSearch",
    "RandomSearch",
    "GreedySearch",
    "AnnealSearch",
    "STRATEGIES",
    "make_strategy",
]


def _key(config: dict) -> str:
    return json.dumps(config, sort_keys=True)


class SearchStrategy:
    """Ask/tell protocol shared by every strategy."""

    def __init__(self, space: ParamSpace, *, budget: int | None = None) -> None:
        if budget is not None and budget < 1:
            raise ConfigurationError(f"budget must be >= 1, got {budget}")
        self.space = space
        self.budget = budget
        self.seen: dict[str, float] = {}
        self.best: dict | None = None
        self.best_cost = math.inf

    # -- protocol -------------------------------------------------------
    def propose(self) -> list[dict]:
        raise NotImplementedError

    def observe(self, config: dict, cost: float) -> None:
        self.seen[_key(config)] = cost
        if cost < self.best_cost:
            self.best_cost = cost
            self.best = dict(config)

    # -- shared helpers -------------------------------------------------
    @property
    def evaluations(self) -> int:
        return len(self.seen)

    def remaining(self) -> int:
        if self.budget is None:
            return self.space.size - self.evaluations
        return max(0, self.budget - self.evaluations)

    def _fresh(self, configs) -> list[dict]:
        out, batch_seen = [], set()
        for c in configs:
            k = _key(c)
            if k not in self.seen and k not in batch_seen:
                batch_seen.add(k)
                out.append(c)
        return out


class ExhaustiveSearch(SearchStrategy):
    """Walk the whole grid (chunked so batches stay bounded)."""

    def __init__(self, space: ParamSpace, *, budget: int | None = None,
                 chunk: int = 64) -> None:
        super().__init__(space, budget=budget)
        self._grid = space.grid()
        self._chunk = chunk

    def propose(self) -> list[dict]:
        n = min(self._chunk, self.remaining())
        out = []
        while len(out) < n:
            try:
                c = next(self._grid)
            except StopIteration:
                break
            if _key(c) not in self.seen:
                out.append(c)
        return out


class RandomSearch(SearchStrategy):
    """Uniform sampling without replacement up to the budget."""

    def __init__(self, space: ParamSpace, *, budget: int | None = None,
                 seed: int = 0, chunk: int = 64) -> None:
        super().__init__(space, budget=budget)
        rng = np.random.default_rng(seed)
        limit = space.size if budget is None else min(budget, space.size)
        self._queue = space.sample(limit, rng)

    def propose(self) -> list[dict]:
        n = min(len(self._queue), self.remaining())
        batch, self._queue = self._queue[:n], self._queue[n:]
        return self._fresh(batch)


class GreedySearch(SearchStrategy):
    """Hill-climb: evaluate all neighbours of the incumbent, move to the
    best, restart from a random point when stuck."""

    def __init__(self, space: ParamSpace, *, budget: int | None = None,
                 seed: int = 0, start: dict | None = None) -> None:
        super().__init__(space, budget=budget)
        self._rng = np.random.default_rng(seed)
        self._current = space.validate(dict(start)) if start else None
        self._current_cost = math.inf

    def _restart(self) -> dict | None:
        for c in self.space.sample(min(8, self.space.size), self._rng):
            if _key(c) not in self.seen:
                return c
        for c in self.space.grid():
            if _key(c) not in self.seen:
                return c
        return None

    def propose(self) -> list[dict]:
        if self.remaining() == 0:
            return []
        if self._current is None or _key(self._current) not in self.seen:
            start = self._current if self._current is not None else self._restart()
            return [] if start is None else [start]
        frontier = self._fresh(self.space.neighbors(self._current))
        if not frontier:  # local optimum: random restart
            fresh = self._restart()
            if fresh is None:
                return []
            self._current = fresh
            return [fresh]
        return frontier[: self.remaining()]

    def observe(self, config: dict, cost: float) -> None:
        super().observe(config, cost)
        if self._current is None or cost < self._current_cost:
            self._current = dict(config)
            self._current_cost = cost


class AnnealSearch(SearchStrategy):
    """Simulated annealing: random neighbour steps, worse moves accepted
    with probability ``exp(-delta / T)`` under a geometric cooldown."""

    def __init__(self, space: ParamSpace, *, budget: int | None = None,
                 seed: int = 0, start: dict | None = None,
                 temperature: float = 1.0, cooling: float = 0.9) -> None:
        super().__init__(space, budget=budget)
        if not 0.0 < cooling < 1.0:
            raise ConfigurationError(f"cooling must be in (0, 1), got {cooling}")
        self._rng = np.random.default_rng(seed)
        self._state = space.validate(dict(start)) if start else None
        self._state_cost = math.inf
        self._temp = temperature
        self._cooling = cooling
        self._pending: dict | None = None

    def propose(self) -> list[dict]:
        if self.remaining() == 0 or self.evaluations >= self.space.size:
            return []
        if self._state is None:
            self._state = self.space.sample(1, self._rng)[0]
            return [self._state]
        moves = self.space.neighbors(self._state)
        fresh = self._fresh(moves)
        pool = fresh if fresh else self._fresh(
            self.space.sample(min(8, self.space.size), self._rng))
        if not pool:
            pool = [c for c in self.space.grid() if _key(c) not in self.seen][:1]
        if not pool:
            return []
        self._pending = pool[int(self._rng.integers(len(pool)))]
        return [self._pending]

    def observe(self, config: dict, cost: float) -> None:
        super().observe(config, cost)
        if _key(config) != (_key(self._pending) if self._pending else None):
            return
        delta = cost - self._state_cost
        scale = max(abs(self._state_cost), 1.0)
        if delta <= 0 or (
            self._temp > 0
            and self._rng.random() < math.exp(-delta / (scale * self._temp))
        ):
            self._state = dict(config)
            self._state_cost = cost
        self._temp *= self._cooling
        self._pending = None


STRATEGIES = ("exhaustive", "random", "greedy", "anneal")


def make_strategy(
    name: str,
    space: ParamSpace,
    *,
    budget: int | None = None,
    seed: int = 0,
    start: dict | None = None,
) -> SearchStrategy:
    """Build a strategy by name (one of :data:`STRATEGIES`)."""
    if name == "exhaustive":
        return ExhaustiveSearch(space, budget=budget)
    if name == "random":
        return RandomSearch(space, budget=budget, seed=seed)
    if name == "greedy":
        return GreedySearch(space, budget=budget, seed=seed, start=start)
    if name == "anneal":
        return AnnealSearch(space, budget=budget, seed=seed, start=start)
    raise ConfigurationError(
        f"unknown search strategy {name!r} (choices: {list(STRATEGIES)})"
    )
