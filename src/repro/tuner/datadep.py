"""A genuinely data-dependent demo kernel (replay must refuse it).

The gather kernel reads its index vector from memory and then accesses
``a`` *at the values it just read* — the address stream depends on
stored data, so a captured trace is only valid for one input and
``mode="replay"`` would be unsound.  The module is therefore registered
in :data:`repro.machine.replay.NON_OBLIVIOUS_MODULES`; the tuner
detects that via ``is_replay_oblivious`` and falls back to the batch
engine for this task.
"""

from __future__ import annotations

from repro.errors import ConfigurationError
from repro.machine.warp import WarpContext

__all__ = ["gather_kernel"]


def gather_kernel(idx, a, out, n: int):
    """``out[i] = a[idx[i]]`` — addresses come from memory contents."""

    def program(warp: WarpContext):
        per_thread = n // warp.num_threads
        if per_thread * warp.num_threads != n:
            raise ConfigurationError(
                f"n={n} must be a multiple of num_threads={warp.num_threads}"
            )
        for k in range(per_thread):
            pos = warp.tids * per_thread + k
            targets = yield warp.read(idx, pos)
            vals = yield warp.read(a, targets.astype(int))
            yield warp.write(out, pos, vals)

    return program
