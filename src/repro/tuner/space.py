"""Typed discrete parameter spaces for the autotuner.

A :class:`ParamSpace` is an ordered set of named :class:`Axis` objects,
each a finite, ordered list of JSON-able values (ints, floats, strings,
bools).  A *configuration* is a plain ``{axis_name: value}`` dict — the
representation is deliberately primitive so configurations can key the
:class:`~repro.analysis.executor.SweepExecutor` result cache and travel
through the service protocol unchanged.

The space knows how to enumerate itself (:meth:`ParamSpace.grid`),
sample without replacement (:meth:`ParamSpace.sample`), and produce the
±1-step neighbourhood used by the greedy and annealing strategies
(:meth:`ParamSpace.neighbors`).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass

import numpy as np

from repro.errors import ConfigurationError

__all__ = ["Axis", "ParamSpace"]


@dataclass(frozen=True)
class Axis:
    """One named, ordered, finite tuning dimension."""

    name: str
    values: tuple

    def __post_init__(self) -> None:
        if not self.name:
            raise ConfigurationError("axis name must be non-empty")
        vals = tuple(self.values)
        if not vals:
            raise ConfigurationError(f"axis {self.name!r} has no values")
        if len(set(vals)) != len(vals):
            raise ConfigurationError(f"axis {self.name!r} repeats values")
        object.__setattr__(self, "values", vals)

    def index_of(self, value) -> int:
        try:
            return self.values.index(value)
        except ValueError:
            raise ConfigurationError(
                f"{value!r} is not a value of axis {self.name!r} "
                f"(choices: {list(self.values)})"
            ) from None


class ParamSpace:
    """A finite product of named axes."""

    def __init__(self, axes: list[Axis] | tuple[Axis, ...]) -> None:
        if not axes:
            raise ConfigurationError("a parameter space needs at least one axis")
        names = [a.name for a in axes]
        if len(set(names)) != len(names):
            raise ConfigurationError(f"duplicate axis names in {names}")
        self.axes: tuple[Axis, ...] = tuple(axes)
        self._by_name = {a.name: a for a in self.axes}

    @property
    def size(self) -> int:
        """Total number of configurations in the grid."""
        n = 1
        for a in self.axes:
            n *= len(a.values)
        return n

    def axis(self, name: str) -> Axis:
        if name not in self._by_name:
            raise ConfigurationError(
                f"no axis named {name!r} (have {sorted(self._by_name)})"
            )
        return self._by_name[name]

    def validate(self, config: dict) -> dict:
        """Check ``config`` names every axis with a legal value."""
        if set(config) != set(self._by_name):
            raise ConfigurationError(
                f"configuration keys {sorted(config)} do not match axes "
                f"{sorted(self._by_name)}"
            )
        for name, value in config.items():
            self._by_name[name].index_of(value)
        return config

    def grid(self):
        """Every configuration, row-major in axis order."""
        names = [a.name for a in self.axes]
        for combo in itertools.product(*(a.values for a in self.axes)):
            yield dict(zip(names, combo))

    def config_at(self, indices: tuple[int, ...]) -> dict:
        """The configuration at per-axis value indices."""
        return {
            a.name: a.values[i % len(a.values)]
            for a, i in zip(self.axes, indices)
        }

    def indices_of(self, config: dict) -> tuple[int, ...]:
        """Per-axis value indices of ``config`` (validates on the way)."""
        return tuple(a.index_of(config[a.name]) for a in self.axes)

    def sample(self, k: int, rng: np.random.Generator) -> list[dict]:
        """``k`` distinct configurations, uniform without replacement.

        When ``k`` meets or exceeds the grid size this is a shuffled
        full grid.
        """
        if k < 1:
            raise ConfigurationError(f"sample size must be >= 1, got {k}")
        total = self.size
        k = min(k, total)
        flat = rng.choice(total, size=k, replace=False)
        out = []
        for f in flat:
            indices = []
            for a in reversed(self.axes):
                f, i = divmod(int(f), len(a.values))
                indices.append(i)
            out.append(self.config_at(tuple(reversed(indices))))
        return out

    def neighbors(self, config: dict) -> list[dict]:
        """Configurations one value-index step away along one axis."""
        base = self.indices_of(config)
        out = []
        for pos, a in enumerate(self.axes):
            for step in (-1, 1):
                i = base[pos] + step
                if 0 <= i < len(a.values):
                    moved = list(base)
                    moved[pos] = i
                    out.append(self.config_at(tuple(moved)))
        return out

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        dims = " x ".join(f"{a.name}[{len(a.values)}]" for a in self.axes)
        return f"ParamSpace({dims} = {self.size})"
