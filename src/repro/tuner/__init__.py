"""Layout & launch autotuner.

Searches a kernel's tunable space — per-array bank padding/skew,
index permutations, thread count against the ``p >= lw`` occupancy
rule, dispatch policy — for the configuration minimizing modeled time
units, using trace replay to re-cost oblivious candidates and the
:class:`~repro.analysis.executor.SweepExecutor` to fan evaluation out.
See ``docs/TUNER.md``.
"""

from repro.tuner.demos import TASKS, TuneTask, get_task, run_config
from repro.tuner.search import (
    STRATEGIES,
    AnnealSearch,
    ExhaustiveSearch,
    GreedySearch,
    RandomSearch,
    SearchStrategy,
    make_strategy,
)
from repro.tuner.space import Axis, ParamSpace
from repro.tuner.transforms import (
    Compose,
    Identity,
    Pad,
    Permute,
    Skew,
    Transform,
    TransformedArray,
    compose,
    wrap,
)
from repro.tuner.tuner import (
    DEFAULT_LATENCIES,
    CandidateResult,
    TuneReport,
    default_tune_cache_dir,
    measure_candidate,
    resolve_tune_mode,
    tune,
)

__all__ = [
    # spaces
    "Axis",
    "ParamSpace",
    # transforms
    "Transform",
    "Identity",
    "Pad",
    "Skew",
    "Permute",
    "Compose",
    "compose",
    "TransformedArray",
    "wrap",
    # search
    "SearchStrategy",
    "ExhaustiveSearch",
    "RandomSearch",
    "GreedySearch",
    "AnnealSearch",
    "STRATEGIES",
    "make_strategy",
    # tasks
    "TuneTask",
    "TASKS",
    "get_task",
    "run_config",
    # orchestrator
    "tune",
    "TuneReport",
    "CandidateResult",
    "DEFAULT_LATENCIES",
    "default_tune_cache_dir",
    "resolve_tune_mode",
    "measure_candidate",
]
