"""The autotuner orchestrator.

:func:`tune` searches a demo task's parameter space for the
configuration minimizing modeled time units, summed over a latency
grid.  Mechanics:

* **Costing** — every ``(configuration, latency)`` pair becomes one
  JSON-able point fanned out over a
  :class:`~repro.analysis.executor.SweepExecutor` (parallel workers +
  persistent result cache in the unified store's ``tune`` namespace,
  default ``benchmarks/.store/tune``).
* **Replay** — for oblivious tasks the default mode is ``"replay"``:
  each candidate layout is captured once and re-priced from its trace
  at every other latency, which is what makes wide searches cheap.
  Non-oblivious tasks (see :data:`repro.machine.replay.NON_OBLIVIOUS_MODULES`)
  fall back to the batch engine.
* **Early exit** — the search stops as soon as a candidate is
  *certified*: its run was conflict-free (no unit issued an avoidable
  slot) or its cost reached the task's Table II lower bound from
  :mod:`repro.analysis.lower_bounds`.
* **Verdicts** — the returned :class:`TuneReport` carries before/after
  :func:`repro.analysis.advisor.diagnose` advice, an output-equivalence
  flag, and the full evaluation history.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from pathlib import Path

import numpy as np

from repro.analysis.advisor import Advice, diagnose
from repro.store import config as _store_config
from repro.analysis.executor import SweepExecutor
from repro.errors import ConfigurationError
from repro.machine.engine import resolve_mode
from repro.tuner.demos import TuneTask, get_task, run_config
from repro.tuner.search import STRATEGIES, make_strategy

__all__ = [
    "DEFAULT_LATENCIES",
    "TUNE_CACHE_DIR_ENV",
    "default_tune_cache_dir",
    "resolve_tune_mode",
    "measure_candidate",
    "CandidateResult",
    "TuneReport",
    "tune",
]

#: Latency grid a candidate is costed over (objective = sum of cycles).
DEFAULT_LATENCIES = (4, 16, 64)

#: Deprecated alias of ``REPRO_STORE_TUNE_DIR`` (see docs/STORAGE.md).
TUNE_CACHE_DIR_ENV = "REPRO_TUNE_CACHE_DIR"


def default_tune_cache_dir() -> Path:
    """Where tune measurements live: the ``tune`` namespace of the
    unified artifact store — ``$REPRO_STORE_TUNE_DIR`` (or the
    deprecated ``$REPRO_TUNE_CACHE_DIR``), else ``benchmarks/.store/tune``
    under the working directory."""
    return _store_config.namespace_dir("tune")


def resolve_tune_mode(task: TuneTask, mode: str) -> str:
    """``"auto"`` becomes replay for oblivious tasks, batch otherwise."""
    if mode == "auto":
        return "replay" if task.oblivious else "batch"
    return resolve_mode(mode)


def measure_candidate(point: dict) -> tuple[int, dict]:
    """Cost one ``(task, config, shape, latency, mode)`` point.

    Module-level (picklable) and fed a JSON-able dict, so it can run in
    :class:`SweepExecutor` workers and key the on-disk result cache.
    """
    return run_config(point["task"], point["config"], point["shape"],
                      point["l"], point["mode"])


@dataclass(frozen=True)
class CandidateResult:
    """One configuration costed over the whole latency grid."""

    config: dict
    #: Objective: total cycles across the latency grid.
    cost: float
    #: Per-latency cycle counts, keyed by ``str(l)``.
    cycles: dict
    #: Slot accounting from the first grid point (latency-independent).
    extra: dict

    def to_dict(self) -> dict:
        return {"config": dict(self.config), "cost": self.cost,
                "cycles": dict(self.cycles), "extra": dict(self.extra)}


def _advice_dict(advice: Advice) -> dict:
    return {
        "regime": advice.regime.value,
        "occupancy_ratio": round(advice.occupancy_ratio, 4),
        "findings": list(advice.findings),
        "units": {
            name: {
                "transactions": d.transactions,
                "slots": d.slots,
                "efficiency": round(d.efficiency, 4),
                "requests_per_slot": round(d.requests_per_slot, 4),
            }
            for name, d in advice.units.items()
        },
    }


@dataclass(frozen=True)
class TuneReport:
    """Everything :func:`tune` learned about one task."""

    task: str
    strategy: str
    mode: str
    shape: dict
    latencies: tuple
    baseline: CandidateResult
    best: CandidateResult
    #: ``baseline.cost / best.cost`` (1.0 = no improvement found).
    improvement: float
    evaluations: int
    search_seconds: float
    #: The search stopped on an analytic certificate ("conflict-free",
    #: "lower-bound") rather than exhausting its budget; else ``None``.
    certificate: str | None
    #: Baseline and best produce (numerically) identical outputs.
    equivalent: bool
    advice_before: dict
    advice_after: dict
    #: ``(config, cost)`` in evaluation order.
    history: tuple

    @property
    def certified(self) -> bool:
        return self.certificate is not None

    def to_dict(self) -> dict:
        return {
            "task": self.task,
            "strategy": self.strategy,
            "mode": self.mode,
            "shape": dict(self.shape),
            "latencies": list(self.latencies),
            "baseline": self.baseline.to_dict(),
            "best": self.best.to_dict(),
            "improvement": round(self.improvement, 4),
            "evaluations": self.evaluations,
            "search_seconds": round(self.search_seconds, 6),
            "certificate": self.certificate,
            "certified": self.certified,
            "equivalent": self.equivalent,
            "advice_before": self.advice_before,
            "advice_after": self.advice_after,
            "history": [
                {"config": dict(c), "cost": cost} for c, cost in self.history
            ],
        }

    def render(self) -> str:
        lines = [
            f"tune {self.task}: {self.strategy} search over "
            f"{self.evaluations} configurations ({self.mode} mode, "
            f"{self.search_seconds:.2f}s)",
            f"  baseline {self.baseline.config}: {self.baseline.cost:.0f} "
            "time units",
            f"  best     {self.best.config}: {self.best.cost:.0f} "
            f"time units  ({self.improvement:.2f}x)",
        ]
        if self.certificate:
            lines.append(f"  certified optimal early: {self.certificate}")
        lines.append(
            "  outputs equivalent: " + ("yes" if self.equivalent else "NO"))
        lines.append(
            f"  before: {self.advice_before['regime']}, "
            f"after: {self.advice_after['regime']}")
        for finding in self.advice_after["findings"]:
            lines.append(f"  - {finding}")
        return "\n".join(lines)


def _certificate_for(task: TuneTask, result: CandidateResult,
                     bound: float | None) -> str | None:
    if task.conflict_certificate and result.extra.get("conflict_free"):
        return "conflict-free"
    if bound is not None and result.cost <= bound:
        return "lower-bound"
    return None


def tune(
    task_name: str,
    *,
    shape: dict | None = None,
    latencies=None,
    strategy: str = "exhaustive",
    budget: int | None = None,
    mode: str = "auto",
    seed: int = 0,
    jobs: int | str = 1,
    cache: bool = True,
    cache_dir: str | Path | None = None,
    executor: SweepExecutor | None = None,
    progress=None,
) -> TuneReport:
    """Search ``task_name``'s parameter space; return a :class:`TuneReport`.

    ``shape`` overrides the task's default problem shape; ``latencies``
    sets the grid the objective sums over; ``budget`` caps the number of
    configurations evaluated (baseline included).  A caller-provided
    ``executor`` is reused and left open (the service path); otherwise a
    private one is built from ``jobs``/``cache``/``cache_dir``.
    """
    if strategy not in STRATEGIES:
        raise ConfigurationError(
            f"unknown search strategy {strategy!r} "
            f"(choices: {list(STRATEGIES)})")
    task = get_task(task_name)
    shape = task.shape(shape)
    lats = tuple(int(l) for l in (latencies or DEFAULT_LATENCIES))
    if not lats or any(l < 1 for l in lats):
        raise ConfigurationError(f"latencies must be >= 1, got {lats}")
    run_mode = resolve_tune_mode(task, mode)

    space = task.space(shape)
    baseline_config = space.validate(task.baseline(shape))
    search = make_strategy(strategy, space, budget=budget, seed=seed,
                           start=baseline_config)
    try:
        bounds = [task.lower_bound(shape, l) for l in lats]
        total_bound = sum(bounds) if None not in bounds else None
    except ConfigurationError:
        total_bound = None

    own_executor = executor is None
    ex = executor if executor is not None else SweepExecutor(
        jobs=jobs, cache=cache, cache_dir=cache_dir,
        progress=progress, namespace="tune",
    )

    history: list[tuple[dict, float]] = []
    certificate: str | None = None
    t0 = time.perf_counter()

    def evaluate(configs: list[dict]) -> list[CandidateResult]:
        points = [
            {"task": task.name, "config": c, "shape": shape,
             "l": l, "mode": run_mode}
            for c in configs for l in lats
        ]
        rows = ex.run(measure_candidate, points, mode=run_mode,
                      label=f"tune:{task.name}")
        out = []
        for i, c in enumerate(configs):
            chunk = rows[i * len(lats):(i + 1) * len(lats)]
            cycles = {str(l): row.cycles for l, row in zip(lats, chunk)}
            out.append(CandidateResult(
                config=c, cost=float(sum(cycles.values())),
                cycles=cycles, extra=dict(chunk[0].extra)))
        return out

    try:
        baseline = evaluate([baseline_config])[0]
        search.observe(baseline.config, baseline.cost)
        history.append((baseline.config, baseline.cost))
        best = baseline
        certificate = _certificate_for(task, best, total_bound)

        while certificate is None:
            batch = search.propose()
            if not batch:
                break
            for result in evaluate(batch):
                search.observe(result.config, result.cost)
                history.append((result.config, result.cost))
                if result.cost < best.cost:
                    best = result
                certificate = certificate or _certificate_for(
                    task, result, total_bound)
            # Re-check after the whole batch so the certified candidate
            # also had the chance to become the incumbent.
            if certificate is not None:
                break
    finally:
        if own_executor:
            ex.close()
    search_seconds = time.perf_counter() - t0

    # Before/after verdicts + output equivalence on the exact engine
    # (largest latency of the grid, batch mode for speed).
    verdict_l = lats[-1]
    base_out, base_report, params = task.run(
        baseline.config, shape, verdict_l, "batch")
    best_out, best_report, _ = task.run(best.config, shape, verdict_l, "batch")
    equivalent = bool(np.allclose(np.asarray(base_out), np.asarray(best_out)))

    return TuneReport(
        task=task.name,
        strategy=strategy,
        mode=run_mode,
        shape=shape,
        latencies=lats,
        baseline=baseline,
        best=best,
        improvement=(baseline.cost / best.cost) if best.cost else 1.0,
        evaluations=search.evaluations,
        search_seconds=search_seconds,
        certificate=certificate,
        equivalent=equivalent,
        advice_before=_advice_dict(diagnose(base_report, params)),
        advice_after=_advice_dict(diagnose(best_report, params)),
        history=tuple(history),
    )
