"""Demo tuning tasks: named, self-contained tunable kernel launches.

A :class:`TuneTask` bundles everything the tuner needs to optimize one
kernel: the tunable :class:`~repro.tuner.space.ParamSpace`, the
baseline configuration, a runner that builds a fresh engine and
executes the kernel under a candidate configuration, and (where the
model provides one) an analytic certificate — a Table II lower bound or
the conflict-free slot count — that lets the search stop early.

Runners are deterministic: input data derives from a seeded RNG keyed
by the task shape, so every candidate (and every worker process) costs
the identical launch, which is what keys the sweep cache and the replay
trace store correctly.

Tasks:

* ``transpose`` — the classic: a tiled HMM transpose whose shared tile
  is addressed at natural stride ``w`` (a ``w``-way bank conflict).
  Axes: per-tile padding and skew.  Oblivious, so replay-backed.
* ``sum`` — flat UMM sum; axes: thread count ``p`` (the ``p >= lw``
  occupancy rule) and warp dispatch policy.  Oblivious.
* ``sort`` — flat DMM bitonic sort; axes: network (naive strided vs the
  Sitchinava-Weichert conflict-free block layout, transaction-for-
  transaction identical) and dispatch.  The conflict-free network is
  oblivious and replay-backed; naive candidates come from the
  replay-refusing ``sorting`` module and fall back to the event engine.
* ``permutation`` — flat DMM offline permutation with a
  bank-adversarial target; axes: round schedule (naive vs conflict-free
  matching) and dispatch.  The schedule is *offline* — part of the
  launch closure, hashed into the LaunchKey — so both schedules are
  replay-backed through the oblivious kernel in
  :mod:`repro.core.kernels.conflict_free`.
* ``gather`` — data-dependent gather through an index array; axis:
  thread count.  Registered in the replay refusal registry.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

import numpy as np

from repro.analysis.lower_bounds import sum_lower_bound
from repro.analysis.terms import Params
from repro.core.kernels.conflict_free import (
    flat_cf_sort,
    generalized_naive_schedule,
    generalized_permutation_schedule,
    oblivious_permutation_kernel,
)
from repro.core.kernels.sorting import flat_bitonic_sort
from repro.core.machines import run_flat_sum
from repro.errors import ConfigurationError
from repro.machine.engine import MachineEngine
from repro.machine.hmm import HMMEngine
from repro.machine.policy import DMMBankPolicy, UMMGroupPolicy
from repro.machine.report import RunReport
from repro.params import HMMParams, MachineParams
from repro.tuner.datadep import gather_kernel
from repro.tuner.kernels import tile_transpose_kernel
from repro.tuner.space import Axis, ParamSpace
from repro.tuner.transforms import Pad, Skew, compose, wrap

__all__ = ["TuneTask", "TASKS", "get_task", "run_config"]

_SEED = 20130520


@dataclass(frozen=True)
class TuneTask:
    """One named tunable kernel launch."""

    name: str
    summary: str
    #: Memory-access oblivious — ``mode="replay"`` is sound.
    oblivious: bool
    default_shape: dict
    space_fn: Callable[[dict], ParamSpace]
    baseline_fn: Callable[[dict], dict]
    #: ``(config, shape, l, mode) -> (output, report, machine_params)``.
    run_fn: Callable
    #: Optional Table II bound at ``(shape, l)`` — enables certified
    #: early exit when a measured candidate reaches it.
    lower_bound_fn: Callable[[dict, int], float] | None = None
    #: A conflict-free run certifies the search done.  Only sound when
    #: the axes change the layout/schedule but not the transaction
    #: count (transpose, permutation, sort) — an occupancy search can
    #: be conflict-free at every point and still improve.  The claim
    #: itself is machine-checked, not author-asserted: the trace-level
    #: pass in :mod:`repro.analysis.certify` replays each certified
    #: kernel over distinct random inputs and verifies identical access
    #: streams and zero avoidable conflicted transactions (see
    #: ``tests/tuner/test_certified_tasks.py``).
    conflict_certificate: bool = False

    def space(self, shape: dict) -> ParamSpace:
        return self.space_fn(shape)

    def baseline(self, shape: dict) -> dict:
        return self.baseline_fn(shape)

    def run(self, config: dict, shape: dict, l: int, mode: str):
        return self.run_fn(config, shape, l, mode)

    def lower_bound(self, shape: dict, l: int) -> float | None:
        if self.lower_bound_fn is None:
            return None
        return self.lower_bound_fn(shape, l)

    def shape(self, overrides: dict | None = None) -> dict:
        """The default shape with validated overrides applied."""
        shape = dict(self.default_shape)
        for key, value in (overrides or {}).items():
            if key not in shape:
                raise ConfigurationError(
                    f"task {self.name!r} has no shape key {key!r} "
                    f"(have {sorted(shape)})"
                )
            shape[key] = int(value)
            if shape[key] < 1:
                raise ConfigurationError(f"shape {key} must be >= 1")
        return shape


def _rng(shape: dict) -> np.random.Generator:
    return np.random.default_rng(
        [_SEED] + [int(shape[k]) for k in sorted(shape)])


# ---------------------------------------------------------------------------
# transpose: padding/skew search on the conflicted tiled transpose.
# ---------------------------------------------------------------------------

def _transpose_space(shape: dict) -> ParamSpace:
    return ParamSpace([
        Axis("pad", (0, 1, 2, 3)),
        Axis("skew", tuple(range(min(3, shape["w"])))),
    ])


def _transpose_matrix(shape: dict) -> np.ndarray:
    m = shape["m"]
    return _rng(shape).standard_normal((m, m))


def _run_transpose(config: dict, shape: dict, l: int, mode: str):
    w, d, m = shape["w"], shape["d"], shape["m"]
    engine = HMMEngine(
        HMMParams(num_dmms=d, width=w, global_latency=l), mode=mode)
    av = _transpose_matrix(shape)
    a = engine.global_from(av.ravel(), "tune.A")
    b = engine.alloc_global(m * m, "tune.B")
    layout = compose(Skew(w, config["skew"]), Pad(w, config["pad"]))
    tiles = [
        wrap(engine.alloc_shared(i, layout.physical_size(w * w), "tune.tile"),
             layout, w * w, "tune.tile")
        for i in range(d)
    ]
    report = engine.launch(
        tile_transpose_kernel(a, b, m, tiles, d), d * w,
        label="tune-transpose")
    return b.to_numpy().reshape(m, m), report, engine.params


# ---------------------------------------------------------------------------
# sum: occupancy (p >= lw) and dispatch on the flat UMM sum.
# ---------------------------------------------------------------------------

def _sum_space(shape: dict) -> ParamSpace:
    n = shape["n"]
    ps = tuple(p for p in (16, 32, 64, 128, 256, 512) if p <= n)
    return ParamSpace([
        Axis("p", ps),
        Axis("dispatch", ("fifo", "round-robin")),
    ])


def _run_sum(config: dict, shape: dict, l: int, mode: str):
    w, n = shape["w"], shape["n"]
    params = MachineParams(width=w, latency=l)
    engine = MachineEngine(params, UMMGroupPolicy(), name="umm",
                           dispatch=config["dispatch"], mode=mode)
    values = _rng(shape).standard_normal(n)
    total, report = run_flat_sum(engine, values, config["p"])
    return np.asarray([total]), report, params


def _sum_lower_bound(shape: dict, l: int) -> float:
    space = _sum_space(shape)
    return min(
        sum_lower_bound(
            "dmm", Params(n=shape["n"], p=p, w=shape["w"], l=l))
        for p in space.axis("p").values
    )


# ---------------------------------------------------------------------------
# sort: naive strided vs conflict-free block-layout bitonic network.
# ---------------------------------------------------------------------------

def _sort_space(shape: dict) -> ParamSpace:
    return ParamSpace([
        Axis("network", ("naive", "conflict-free")),
        Axis("dispatch", ("fifo", "round-robin")),
    ])


def _run_sort(config: dict, shape: dict, l: int, mode: str):
    w, n = shape["w"], shape["n"]
    params = MachineParams(width=w, latency=l)
    engine = MachineEngine(params, DMMBankPolicy(), name="dmm",
                           dispatch=config["dispatch"], mode=mode)
    values = _rng(shape).standard_normal(n)
    p = min(4 * w, n)
    if config["network"] == "naive":
        out, report = flat_bitonic_sort(engine, values, p)
    else:
        # fused=False: transaction-for-transaction identical to the
        # naive network (what makes the conflict certificate sound);
        # the fused burst variant is benchmarked separately.
        out, report = flat_cf_sort(engine, values, p, fused=False)
    return out, report, params


# ---------------------------------------------------------------------------
# permutation: naive vs conflict-free round schedule on a flat DMM.
# The offline schedule is launch-closure data, so both variants are
# replay-backed through the oblivious kernel.
# ---------------------------------------------------------------------------

def _adversarial_perm(shape: dict) -> np.ndarray:
    """A transpose-style permutation whose naive rounds are one-bank."""
    n, w = shape["n"], shape["w"]
    if n % w:
        raise ConfigurationError(f"n={n} must be a multiple of w={w}")
    i = np.arange(n, dtype=np.int64)
    return (i % w) * (n // w) + i // w


def _permutation_space(shape: dict) -> ParamSpace:
    return ParamSpace([
        Axis("schedule", ("naive", "conflict-free")),
        Axis("dispatch", ("fifo", "round-robin")),
    ])


def _run_permutation(config: dict, shape: dict, l: int, mode: str):
    w, n = shape["w"], shape["n"]
    params = MachineParams(width=w, latency=l)
    engine = MachineEngine(params, DMMBankPolicy(), name="dmm",
                           dispatch=config["dispatch"], mode=mode)
    values = _rng(shape).standard_normal(n)
    perm = _adversarial_perm(shape)
    if config["schedule"] == "naive":
        schedule = generalized_naive_schedule(n, w)
    else:
        schedule = generalized_permutation_schedule(perm, w)
    a = engine.array_from(values, "tune.a")
    b = engine.alloc(n, "tune.b")
    report = engine.launch(
        oblivious_permutation_kernel(a, b, perm, schedule), min(8 * w, n),
        label="tune-permutation")
    return b.to_numpy(), report, params


# ---------------------------------------------------------------------------
# gather: data-dependent addressing (replay must refuse).
# ---------------------------------------------------------------------------

def _gather_space(shape: dict) -> ParamSpace:
    n = shape["n"]
    return ParamSpace([
        Axis("p", tuple(p for p in (16, 32, 64, 128) if p <= n)),
    ])


def _run_gather(config: dict, shape: dict, l: int, mode: str):
    w, n = shape["w"], shape["n"]
    params = MachineParams(width=w, latency=l)
    engine = MachineEngine(params, UMMGroupPolicy(), name="umm", mode=mode)
    rng = _rng(shape)
    values = rng.standard_normal(n)
    targets = rng.permutation(n)
    idx = engine.array_from(targets.astype(np.float64), "tune.idx")
    a = engine.array_from(values, "tune.in")
    out = engine.alloc(n, "tune.out")
    report = engine.launch(
        gather_kernel(idx, a, out, n), config["p"], label="tune-gather")
    return out.to_numpy(), report, params


TASKS: dict[str, TuneTask] = {
    "transpose": TuneTask(
        name="transpose",
        summary="tiled HMM transpose; search per-tile padding and skew",
        oblivious=True,
        default_shape={"w": 8, "d": 4, "m": 32},
        space_fn=_transpose_space,
        baseline_fn=lambda shape: {"pad": 0, "skew": 0},
        run_fn=_run_transpose,
        conflict_certificate=True,
    ),
    "sum": TuneTask(
        name="sum",
        summary="flat UMM sum; search thread count and dispatch",
        oblivious=True,
        default_shape={"w": 8, "n": 2048},
        space_fn=_sum_space,
        baseline_fn=lambda shape: {
            "p": _sum_space(shape).axis("p").values[0], "dispatch": "fifo"},
        run_fn=_run_sum,
        lower_bound_fn=_sum_lower_bound,
    ),
    "sort": TuneTask(
        name="sort",
        summary="flat DMM bitonic sort; search network layout and dispatch",
        oblivious=True,
        default_shape={"w": 8, "n": 256},
        space_fn=_sort_space,
        baseline_fn=lambda shape: {"network": "naive", "dispatch": "fifo"},
        run_fn=_run_sort,
        conflict_certificate=True,
    ),
    "permutation": TuneTask(
        name="permutation",
        summary="flat DMM offline permutation; search round schedule "
        "and dispatch (replay-backed)",
        oblivious=True,
        default_shape={"w": 8, "n": 512},
        space_fn=_permutation_space,
        baseline_fn=lambda shape: {"schedule": "naive", "dispatch": "fifo"},
        run_fn=_run_permutation,
        conflict_certificate=True,
    ),
    "gather": TuneTask(
        name="gather",
        summary="data-dependent gather; search thread count",
        oblivious=False,
        default_shape={"w": 8, "n": 512},
        space_fn=_gather_space,
        baseline_fn=lambda shape: {"p": _gather_space(shape).axis("p").values[0]},
        run_fn=_run_gather,
    ),
}


def get_task(name: str) -> TuneTask:
    if name not in TASKS:
        raise ConfigurationError(
            f"unknown tune task {name!r} (choices: {sorted(TASKS)})")
    return TASKS[name]


def summarize_report(report: RunReport) -> dict:
    """The per-candidate extras recorded next to the cycle count."""
    excess = sum(s.excess_slots for s in report.unit_stats.values())
    shared = [s for name, s in report.unit_stats.items()
              if name.startswith("shared")]
    return {
        "engine": report.engine,
        "slots": report.total_slots(),
        "excess_slots": excess,
        "shared_slots": sum(s.slots for s in shared),
        "shared_excess_slots": sum(s.excess_slots for s in shared),
        "conflict_free": report.conflict_free(),
    }


def run_config(
    task_name: str, config: dict, shape: dict, l: int, mode: str,
) -> tuple[int, dict]:
    """Cost one candidate: ``(cycles, extras)``.  Module-level and fed
    by JSON-able arguments so :class:`SweepExecutor` workers can call it
    and cache it."""
    task = get_task(task_name)
    _, report, _ = task.run(config, shape, l, mode)
    return report.cycles, summarize_report(report)
