"""Address-space transforms: pad, skew, permute — as array wrappers.

The tuner never edits a kernel.  A kernel addresses its arrays through
*logical* indices; a :class:`TransformedArray` wraps the physical
:class:`~repro.machine.memory.ArrayHandle` and remaps every index
through a composable :class:`Transform` at the moment the op is built
(``warp.read``/``warp.write`` call ``array.addresses`` eagerly), so the
same generator function runs unchanged under any candidate layout.

All transforms are frozen dataclasses built from primitive fields, so a
wrapped array is hashable by the replay engine's launch-key walk —
different layouts produce different keys and therefore separate
captured traces, exactly as required for ``mode="replay"`` soundness.

Transforms must be *injective* on the logical index range (two logical
cells may never share a physical cell); :func:`wrap` checks the
physical footprint fits the backing handle, and the unit tests check
injectivity per transform.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import AddressError, ConfigurationError
from repro.machine.memory import ArrayHandle, MemorySpace

__all__ = [
    "Transform",
    "Identity",
    "Pad",
    "Skew",
    "Permute",
    "Compose",
    "compose",
    "TransformedArray",
    "wrap",
]


class Transform:
    """Base: an injective map from logical to physical indices."""

    def map_indices(self, idx: np.ndarray) -> np.ndarray:
        raise NotImplementedError

    def physical_size(self, logical: int) -> int:
        """Physical cells needed to hold ``logical`` mapped cells."""
        raise NotImplementedError

    def describe(self) -> str:
        return repr(self)


def _rows_cols(idx: np.ndarray, row_length: int) -> tuple[np.ndarray, np.ndarray]:
    return idx // row_length, idx % row_length


def _ceil_div(a: int, b: int) -> int:
    return -(-a // b)


@dataclass(frozen=True)
class Identity(Transform):
    """The do-nothing layout."""

    def map_indices(self, idx: np.ndarray) -> np.ndarray:
        return idx

    def physical_size(self, logical: int) -> int:
        return logical

    def describe(self) -> str:
        return "identity"


@dataclass(frozen=True)
class Pad(Transform):
    """Insert ``pad`` unused cells after every ``row_length`` cells.

    The classic CUDA shared-memory fix: logical cell ``(row, col)``
    lands at ``row * (row_length + pad) + col``, so consecutive rows
    start in different banks whenever ``gcd(row_length + pad, w) < w``.
    ``pad=0`` is the identity.
    """

    row_length: int
    pad: int

    def __post_init__(self) -> None:
        if self.row_length < 1:
            raise ConfigurationError(
                f"row_length must be >= 1, got {self.row_length}"
            )
        if self.pad < 0:
            raise ConfigurationError(f"pad must be >= 0, got {self.pad}")

    def map_indices(self, idx: np.ndarray) -> np.ndarray:
        rows, cols = _rows_cols(idx, self.row_length)
        return rows * (self.row_length + self.pad) + cols

    def physical_size(self, logical: int) -> int:
        return _ceil_div(logical, self.row_length) * (self.row_length + self.pad)

    def describe(self) -> str:
        return f"pad(+{self.pad} per {self.row_length})"


@dataclass(frozen=True)
class Skew(Transform):
    """Rotate row ``r`` by ``skew * r`` cells within the row.

    Logical ``(row, col)`` lands at ``(col + skew * row) mod
    row_length`` of the same row — zero extra memory, and with
    ``gcd(skew, row_length) = 1`` a column of the logical matrix spreads
    across all ``row_length`` banks.  ``skew=0`` is the identity.
    """

    row_length: int
    skew: int

    def __post_init__(self) -> None:
        if self.row_length < 1:
            raise ConfigurationError(
                f"row_length must be >= 1, got {self.row_length}"
            )
        if not 0 <= self.skew < self.row_length:
            raise ConfigurationError(
                f"skew must be in [0, {self.row_length}), got {self.skew}"
            )

    def map_indices(self, idx: np.ndarray) -> np.ndarray:
        rows, cols = _rows_cols(idx, self.row_length)
        return rows * self.row_length + (cols + self.skew * rows) % self.row_length

    def physical_size(self, logical: int) -> int:
        # Size-preserving, but a skewed partial last row may touch any
        # column of it, so round up to whole rows.
        return _ceil_div(logical, self.row_length) * self.row_length

    def describe(self) -> str:
        return f"skew({self.skew} per {self.row_length})"


@dataclass(frozen=True)
class Permute(Transform):
    """An arbitrary permutation of the logical index range."""

    perm: tuple

    def __post_init__(self) -> None:
        perm = tuple(int(v) for v in self.perm)
        if sorted(perm) != list(range(len(perm))):
            raise ConfigurationError(
                f"perm must be a permutation of 0..{len(perm) - 1}"
            )
        object.__setattr__(self, "perm", perm)

    def map_indices(self, idx: np.ndarray) -> np.ndarray:
        table = np.asarray(self.perm, dtype=np.int64)
        if idx.size and (idx.min() < 0 or idx.max() >= table.size):
            raise AddressError(
                f"index out of range for permutation of size {table.size}"
            )
        return table[idx]

    def physical_size(self, logical: int) -> int:
        if logical > len(self.perm):
            raise ConfigurationError(
                f"permutation of size {len(self.perm)} cannot hold "
                f"{logical} cells"
            )
        return len(self.perm)

    def describe(self) -> str:
        return f"permute[{len(self.perm)}]"


@dataclass(frozen=True)
class Compose(Transform):
    """``outer`` after ``inner``: physical = outer(inner(logical))."""

    inner: Transform
    outer: Transform

    def map_indices(self, idx: np.ndarray) -> np.ndarray:
        return self.outer.map_indices(self.inner.map_indices(idx))

    def physical_size(self, logical: int) -> int:
        return self.outer.physical_size(self.inner.physical_size(logical))

    def describe(self) -> str:
        return f"{self.outer.describe()} . {self.inner.describe()}"


def compose(*transforms: Transform) -> Transform:
    """Compose left-to-right (first applied first), dropping identities."""
    stages = [t for t in transforms if not isinstance(t, Identity)]
    if not stages:
        return Identity()
    out = stages[0]
    for t in stages[1:]:
        out = Compose(inner=out, outer=t)
    return out


@dataclass(frozen=True, eq=False)
class TransformedArray:
    """An :class:`ArrayHandle` seen through a layout transform.

    Duck-typed to the handle interface the engines and warp-op
    constructors use (``space``, ``addresses``, ``describe``, plus the
    host-side accessors), so a kernel written against logical indices
    runs unmodified on any layout.  ``size`` is the *logical* element
    count; the wrapped handle must be at least
    ``transform.physical_size(size)`` cells (checked by :func:`wrap`).
    """

    handle: ArrayHandle
    transform: Transform
    size: int
    name: str = ""

    @property
    def space(self) -> MemorySpace:
        return self.handle.space

    def addresses(self, indices: np.ndarray | int) -> np.ndarray:
        idx = np.asarray(indices, dtype=np.int64).ravel()
        if idx.size:
            lo, hi = int(idx.min()), int(idx.max())
            if lo < 0 or hi >= self.size:
                raise AddressError(
                    f"index out of range for array {self.describe()}: "
                    f"min={lo}, max={hi}, size={self.size}"
                )
        return self.handle.addresses(self.transform.map_indices(idx))

    # -- host-side access (untimed, like ArrayHandle's) -----------------
    def to_numpy(self) -> np.ndarray:
        return self.space.load(self.addresses(np.arange(self.size)))

    def set(self, values: np.ndarray | list | float) -> None:
        vals = np.asarray(values, dtype=np.float64).ravel()
        if vals.size == 1 and self.size != 1:
            vals = np.full(self.size, float(vals[0]))
        if vals.size != self.size:
            raise AddressError(
                f"cannot set array {self.describe()} of size {self.size} "
                f"with {vals.size} values"
            )
        self.space.store(self.addresses(np.arange(self.size)), vals)

    def fill(self, value: float) -> None:
        self.set(np.full(self.size, float(value)))

    def __len__(self) -> int:
        return self.size

    def describe(self) -> str:
        label = self.name or self.handle.name or "<anon>"
        return f"{label}<{self.transform.describe()}>@{self.space.name}"

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"TransformedArray({self.describe()})"


def wrap(
    handle: ArrayHandle,
    transform: Transform,
    size: int | None = None,
    name: str = "",
) -> TransformedArray:
    """View ``handle`` through ``transform`` over ``size`` logical cells."""
    logical = handle.size if size is None else size
    need = transform.physical_size(logical)
    if need > handle.size:
        raise ConfigurationError(
            f"layout {transform.describe()} needs {need} cells but "
            f"{handle.describe()} has {handle.size}"
        )
    return TransformedArray(handle=handle, transform=transform,
                            size=logical, name=name)
