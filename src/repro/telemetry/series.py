"""Metrics time series: fixed-size rings sampled from live snapshots.

A :class:`MetricsRecorder` periodically calls a ``source`` callable (a
metrics ``snapshot()`` — the service's, the router's, anything that
returns a JSON-able dict), flattens every numeric leaf to a dotted
path (``cache.hit_rate``, ``batches.mean_size``,
``store.sweep.hits_local`` ...), and appends each to a
:class:`RingSeries` of bounded length.  Resolution and retention are
knobs; the clock is injectable, so a test drives sampling with
:class:`~repro.service.clock.ManualClock` and gets bit-identical
series every run.

Recorded history persists through the unified artifact store under the
``telemetry`` namespace (one JSON artifact per recorder name, key =
``content_key({"telemetry": name})``), so a restarted process can show
what happened before it was restarted, and dashboards can be rebuilt
offline from the store alone.
"""

from __future__ import annotations

from collections import deque
from typing import Any, Callable, Mapping

from repro.service.clock import Clock

__all__ = ["RingSeries", "MetricsRecorder", "flatten_numeric",
           "telemetry_store_key"]

#: Ceiling on distinct series one recorder tracks; snapshot paths past
#: it are ignored (stable: the first ``max_series`` observed win).
DEFAULT_MAX_SERIES = 512


def flatten_numeric(
    snapshot: Mapping, prefix: str = "",
    out: "dict[str, float] | None" = None,
) -> dict[str, float]:
    """Numeric leaves of a nested dict as ``{"a.b.c": value}``.

    Booleans and strings are skipped (they are states, not series);
    lists are skipped too — a snapshot that wants a list graphed should
    expose it as separate keyed leaves.
    """
    if out is None:
        out = {}
    for name, value in snapshot.items():
        path = f"{prefix}.{name}" if prefix else str(name)
        if isinstance(value, bool):
            continue
        if isinstance(value, (int, float)):
            out[path] = float(value)
        elif isinstance(value, Mapping):
            flatten_numeric(value, path, out)
    return out


def telemetry_store_key(name: str) -> str:
    """The store key one recorder's history persists under."""
    from repro.store import content_key

    return content_key({"telemetry": name})


class RingSeries:
    """One metric's last-``capacity`` samples: ``(t, value)`` pairs."""

    __slots__ = ("times", "values")

    def __init__(self, capacity: int) -> None:
        self.times: deque[float] = deque(maxlen=capacity)
        self.values: deque[float] = deque(maxlen=capacity)

    def append(self, t: float, value: float) -> None:
        self.times.append(t)
        self.values.append(value)

    def __len__(self) -> int:
        return len(self.values)

    @property
    def last(self) -> "float | None":
        return self.values[-1] if self.values else None

    def as_dict(self) -> dict:
        """JSON-able form (what :meth:`MetricsRecorder.persist` writes)."""
        return {"t": [round(t, 3) for t in self.times],
                "v": list(self.values)}


class MetricsRecorder:
    """Sample one snapshot source into ring-buffer time series.

    Parameters
    ----------
    source:
        Zero-arg callable returning a JSON-able dict (e.g.
        ``ServiceMetrics.snapshot``).  Exceptions are counted, never
        propagated — a broken gauge must not kill the sampling loop.
    resolution_s, retention:
        Sample cadence and per-series ring length; history spans
        ``resolution_s * retention`` seconds.
    clock:
        Injectable time source; :meth:`run` sleeps on it.
    bus:
        Optional :class:`~repro.telemetry.events.EventBus`; every
        sample emits a compact ``sample`` event on it (the streaming
        heartbeat dashboards ride).
    store_space:
        Optional store :class:`~repro.store.Namespace` (conventionally
        the ``telemetry`` namespace) that :meth:`persist` writes to.
    name:
        Identity of this recorder's persisted artifact.
    """

    def __init__(
        self,
        source: Callable[[], Mapping],
        *,
        resolution_s: float = 1.0,
        retention: int = 300,
        clock: "Clock | None" = None,
        bus=None,
        store_space=None,
        name: str = "service",
        max_series: int = DEFAULT_MAX_SERIES,
    ) -> None:
        if resolution_s <= 0:
            raise ValueError(f"resolution_s must be > 0, got {resolution_s}")
        if retention < 1:
            raise ValueError(f"retention must be >= 1, got {retention}")
        self.source = source
        self.resolution_s = resolution_s
        self.retention = retention
        self.clock = clock or Clock()
        self.bus = bus
        self.store_space = store_space
        self.name = name
        self.max_series = max_series
        self.samples = 0
        self.source_errors = 0
        self._series: dict[str, RingSeries] = {}
        self._stopped = False

    # -- sampling ----------------------------------------------------------
    def sample(self) -> dict[str, float]:
        """Take one sample now; returns the flattened leaves recorded."""
        now = self.clock.monotonic()
        try:
            snapshot = dict(self.source())
        except Exception:  # noqa: BLE001 - a gauge must not kill sampling
            self.source_errors += 1
            return {}
        leaves = flatten_numeric(snapshot)
        for path, value in leaves.items():
            series = self._series.get(path)
            if series is None:
                if len(self._series) >= self.max_series:
                    continue
                series = self._series[path] = RingSeries(self.retention)
            series.append(now, value)
        self.samples += 1
        if self.bus is not None:
            self.bus.emit("sample", t=round(now, 3),
                          series=len(self._series), n=self.samples)
        return leaves

    async def run(self) -> None:
        """Sample every ``resolution_s`` until :meth:`stop` (or cancel)."""
        while not self._stopped:
            await self.clock.sleep(self.resolution_s)
            if self._stopped:
                break
            self.sample()

    def stop(self) -> None:
        self._stopped = True

    # -- readout -----------------------------------------------------------
    def series_names(self) -> list[str]:
        return sorted(self._series)

    def series(self, path: str) -> "RingSeries | None":
        return self._series.get(path)

    def values(self, path: str) -> list[float]:
        """The retained values of one series (empty when unknown)."""
        series = self._series.get(path)
        return list(series.values) if series is not None else []

    def snapshot(self) -> dict:
        """JSON-able summary for ``/metrics`` → ``telemetry``."""
        return {
            "samples": self.samples,
            "series": len(self._series),
            "resolution_s": self.resolution_s,
            "retention": self.retention,
            "source_errors": self.source_errors,
            "persisted": self.store_space is not None,
        }

    # -- persistence -------------------------------------------------------
    def persist(self) -> "str | None":
        """Write the retained history to the store; returns the key.

        No-op (returns ``None``) when no store namespace was wired.
        """
        if self.store_space is None:
            return None
        key = telemetry_store_key(self.name)
        artifact = {
            "name": self.name,
            "resolution_s": self.resolution_s,
            "retention": self.retention,
            "samples": self.samples,
            "series": {path: s.as_dict()
                       for path, s in sorted(self._series.items())},
        }
        self.store_space.put(key, artifact)
        return key

    @staticmethod
    def load(store_space, name: str) -> "dict | None":
        """Read one persisted history back (``None`` when absent)."""
        return store_space.get(telemetry_store_key(name))

    def restore(self) -> bool:
        """Preload history persisted by a previous run of this name.

        Appends the stored points in front of live sampling so a
        restarted process keeps its graphs.  Returns ``True`` when
        something was restored.
        """
        if self.store_space is None:
            return False
        artifact = self.load(self.store_space, self.name)
        if not isinstance(artifact, dict):
            return False
        for path, data in artifact.get("series", {}).items():
            if len(self._series) >= self.max_series:
                break
            series = self._series.setdefault(path, RingSeries(self.retention))
            for t, v in zip(data.get("t", []), data.get("v", [])):
                series.append(float(t), float(v))
        return True
