"""SSE framing and streaming clients for ``GET /v1/events``.

Server side, :func:`stream_over_http` writes a standard Server-Sent
Events response directly to an asyncio writer — this is the one
response in the system without a ``Content-Length`` (the stream ends
when the connection closes), so it bypasses
:func:`repro.service.http.write_response` and both servers special-case
the route before normal dispatch.  Frames are::

    id: <seq>
    event: <type>
    data: {"seq": ..., "ts": ..., "type": ..., "data": {...}}

``data`` carries the whole event JSON, so a consumer needs no SSE
field semantics beyond "lines until blank line"; ``id``/``event`` are
the conventional conveniences (``Last-Event-ID`` resume works, and so
does ``?from=<seq>``).  Comment frames (``: heartbeat``) keep idle
connections visibly alive.

Client side: :func:`sse_events` is a blocking generator over a live
stream (stdlib ``http.client``), and :func:`poll_events` is the
long-poll fallback — one ``?mode=poll`` request per call, returning
``(events, next_cursor)``.  Both honour the resume-from-seq contract
documented in docs/TELEMETRY.md.
"""

from __future__ import annotations

import asyncio
import http.client
import json
from typing import Iterator
from urllib.parse import urlsplit

__all__ = [
    "sse_head",
    "sse_frame",
    "SSE_HEARTBEAT",
    "stream_over_http",
    "sse_events",
    "poll_events",
]

SSE_HEARTBEAT = b": heartbeat\n\n"


def sse_head(status: int = 200) -> bytes:
    """The response head of an SSE stream (no Content-Length)."""
    return (
        f"HTTP/1.1 {status} OK\r\n"
        "Content-Type: text/event-stream\r\n"
        "Cache-Control: no-store\r\n"
        "Connection: close\r\n\r\n"
    ).encode()


def sse_frame(event: dict) -> bytes:
    """One event as an SSE frame (``data`` = the full event JSON)."""
    data = json.dumps(event, sort_keys=True)
    return (
        f"id: {event['seq']}\nevent: {event['type']}\ndata: {data}\n\n"
    ).encode()


async def stream_over_http(
    writer: asyncio.StreamWriter,
    bus,
    *,
    from_seq: int = 0,
    stop: "asyncio.Event | None" = None,
    heartbeat_s: float = 10.0,
    max_events: "int | None" = None,
) -> int:
    """Stream ``bus`` events after ``from_seq`` until stop/limit/EOF.

    Returns the number of events sent.  ``stop`` is the server's drain
    signal: the final events emitted before it was set (the
    ``server.drain`` / ``router.drain`` sentinel) are still delivered,
    then the stream closes cleanly.  A vanished client surfaces as
    ``ConnectionError`` from ``drain()`` — the caller treats that as a
    normal disconnect.
    """
    writer.write(sse_head())
    await writer.drain()
    cursor = from_seq
    sent = 0
    while True:
        events = await bus.wait_since(cursor, heartbeat_s)
        for event in events:
            writer.write(sse_frame(event))
            cursor = event["seq"]
            sent += 1
            if max_events is not None and sent >= max_events:
                await writer.drain()
                return sent
        if events:
            await writer.drain()
        else:
            writer.write(SSE_HEARTBEAT)
            await writer.drain()
        if stop is not None and stop.is_set() and not bus.since(cursor):
            return sent


def sse_events(
    url: str,
    *,
    from_seq: int = 0,
    limit: "int | None" = None,
    timeout: float = 60.0,
) -> Iterator[dict]:
    """Blocking generator over ``GET /v1/events`` SSE frames.

    Yields event dicts (``{"seq", "ts", "type", "data"}``).  ``limit``
    asks the *server* to close the stream after that many events —
    handy for scripts and smoke tests; without it the generator runs
    until the server drains or the caller breaks out.
    """
    split = urlsplit(url)
    if split.scheme != "http" or not split.hostname:
        raise ValueError(f"expected an http://host:port URL, got {url!r}")
    conn = http.client.HTTPConnection(split.hostname, split.port or 80,
                                      timeout=timeout)
    path = f"/v1/events?from={int(from_seq)}"
    if limit is not None:
        path += f"&limit={int(limit)}"
    try:
        conn.request("GET", path, headers={"Accept": "text/event-stream"})
        response = conn.getresponse()
        if response.status != 200:
            from repro.service.client import ServiceError

            raw = response.read()
            try:
                body = json.loads(raw)
            except ValueError:
                body = {"error": {"message": raw.decode("latin-1")}}
            raise ServiceError(response.status, body)
        data_lines: list[bytes] = []
        while True:
            line = response.readline()
            if not line:
                return  # server closed the stream
            line = line.rstrip(b"\r\n")
            if line.startswith(b":"):
                continue  # heartbeat comment
            if line.startswith(b"data:"):
                data_lines.append(line[5:].strip())
                continue
            if line == b"" and data_lines:
                payload = b"\n".join(data_lines)
                data_lines = []
                try:
                    yield json.loads(payload)
                except ValueError:
                    continue  # torn frame on disconnect; skip
    finally:
        conn.close()


def poll_events(
    url: str,
    *,
    from_seq: int = 0,
    timeout_s: float = 0.0,
    limit: "int | None" = None,
    client=None,
) -> tuple[list[dict], int]:
    """One long-poll round: ``(events, next_cursor)``.

    The fallback transport for environments where a hanging GET is
    awkward; semantically identical to the SSE stream (same events,
    same seq cursor).  Pass the returned cursor back as ``from_seq``.
    """
    if client is None:
        from repro.service.client import ServiceClient

        client = ServiceClient(url, retries=1)
    body = client.events(from_seq=from_seq, timeout_s=timeout_s, limit=limit)
    return body["events"], body["next_from"]
