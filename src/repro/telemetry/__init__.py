"""Live telemetry: event streaming, metrics time series, dashboards.

Three cooperating pieces (see docs/TELEMETRY.md for the contracts):

* :class:`EventBus` — per-process ordered event ring with monotonic
  sequence ids; the resume-from-seq cursor of the streaming layer.
* :class:`MetricsRecorder` — samples a metrics snapshot into bounded
  :class:`RingSeries`, persisted through the artifact store's
  ``telemetry`` namespace.
* :mod:`repro.telemetry.stream` — SSE framing over the stdlib asyncio
  servers (``GET /v1/events``), plus the long-poll fallback and the
  blocking :func:`sse_events` consumer.

``python -m repro.telemetry watch <url>`` renders the terminal
dashboard (:func:`repro.viz.render_dashboard`) from a live service or
cluster router; ``python -m repro.telemetry events <url>`` tails the
raw event feed.
"""

# The submodules below import repro.service.clock, which triggers
# repro.service.__init__ — and that imports repro.telemetry.events
# back.  Completing the service package first keeps the events module
# from being entered twice when this package is imported standalone
# (``python -m repro.telemetry``).
import repro.service  # noqa: F401  (import-cycle breaker)

from repro.telemetry.events import DEFAULT_CAPACITY, EventBus
from repro.telemetry.series import (
    MetricsRecorder,
    RingSeries,
    flatten_numeric,
    telemetry_store_key,
)
from repro.telemetry.stream import (
    SSE_HEARTBEAT,
    poll_events,
    sse_events,
    sse_frame,
    sse_head,
    stream_over_http,
)

__all__ = [
    "DEFAULT_CAPACITY",
    "EventBus",
    "MetricsRecorder",
    "RingSeries",
    "flatten_numeric",
    "telemetry_store_key",
    "SSE_HEARTBEAT",
    "poll_events",
    "sse_events",
    "sse_frame",
    "sse_head",
    "stream_over_http",
]
